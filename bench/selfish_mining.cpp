// SELFISH — the Eyal–Sirer baseline the paper's §I cites ("majority is
// not enough"): selfish-mining revenue vs hashrate α and race-win fraction
// γ, with the closed-form profitability thresholds.
//
// Expected shape: revenue crosses the honest y = α line exactly at
// α = (1−γ)/(3−2γ): 1/3 for γ = 0, 1/4 for γ = 0.5, 0 for γ = 1. Combined
// with the fault pipeline: a correlated component fault that aggregates
// pools above the threshold enables the strategy outright.
#include <iostream>

#include "config/catalog.h"
#include "faults/injector.h"
#include "nakamoto/pools.h"
#include "nakamoto/selfish.h"
#include "support/table.h"

int main() {
  using namespace findep;
  using namespace findep::nakamoto;

  support::print_banner(std::cout,
                        "Selfish mining: relative revenue vs hashrate "
                        "(2M simulated blocks per cell)");
  {
    support::Table table({"alpha", "revenue g=0", "revenue g=0.5",
                          "revenue g=1", "advantage g=0.5"});
    support::Rng rng(2718);
    for (const double alpha : {0.10, 0.20, 0.25, 0.30, 1.0 / 3.0, 0.40,
                               0.45}) {
      const auto g0 = simulate_selfish_mining(alpha, 0.0, 2'000'000, rng);
      const auto g5 = simulate_selfish_mining(alpha, 0.5, 2'000'000, rng);
      const auto g1 = simulate_selfish_mining(alpha, 1.0, 2'000'000, rng);
      table.add(alpha, g0.revenue_share(), g5.revenue_share(),
                g1.revenue_share(), g5.advantage());
    }
    table.print(std::cout);
    std::cout << "profitability thresholds: g=0: "
              << selfish_mining_threshold(0.0)
              << ", g=0.5: " << selfish_mining_threshold(0.5)
              << ", g=1: " << selfish_mining_threshold(1.0) << '\n';
  }

  support::print_banner(std::cout,
                        "Fault pipeline: does one component fault hand an "
                        "attacker a selfish-mining-capable share?");
  {
    const config::ComponentCatalog catalog = config::standard_catalog();
    support::Table table({"pool configuration model", "1-fault share",
                          "exceeds g=0 threshold", "selfish revenue g=0"});
    support::Rng rng(31);
    const auto row = [&](const std::string& label, const PoolSet& pools) {
      faults::FaultInjector injector(pools.as_population());
      const double q =
          injector.worst_case_components(1).compromised_fraction;
      const bool above = q > selfish_mining_threshold(0.0);
      const double revenue =
          q < 0.5
              ? simulate_selfish_mining(q, 0.0, 1'000'000, rng)
                    .revenue_share()
              : 1.0;
      table.add(label, q, std::string(above ? "YES" : "no"), revenue);
    };
    row("paper best case (unique configs)",
        PoolSet::example1(catalog, true));
    row("realistic (zipf-skewed software)",
        PoolSet::example1(catalog, false, 21));
    table.print(std::cout);
  }

  std::cout << "\npaper check: even sub-majority correlated faults are "
               "dangerous — the aggregated share clears the selfish-mining "
               "threshold and earns super-proportional revenue.\n";
  return 0;
}
