// SELFISH — the Eyal–Sirer baseline the paper's §I cites ("majority is
// not enough"): selfish-mining revenue vs hashrate α and race-win fraction
// γ, with the closed-form profitability thresholds.
//
// Expected shape: revenue crosses the honest y = α line exactly at
// α = (1−γ)/(3−2γ): 1/3 for γ = 0, 1/4 for γ = 0.5, 0 for γ = 1. Combined
// with the fault pipeline: a correlated component fault that aggregates
// pools above the threshold enables the strategy outright.
#include <iostream>

#include "nakamoto/selfish.h"
#include "runtime/suite.h"
#include "scenarios/selfish_mining.h"

int main(int argc, char** argv) {
  using findep::scenarios::SelfishMiningScenario;

  findep::runtime::SuiteOptions options;
  if (!findep::runtime::parse_suite_options(argc, argv, options,
                                            std::cerr)) {
    return 2;
  }
  // Free-text preamble only in table mode: --csv/--json/--list output
  // must stay machine-parseable.
  if (!options.csv && !options.json && !options.list) {
    std::cout << "profitability thresholds: g=0: "
              << findep::nakamoto::selfish_mining_threshold(0.0)
              << ", g=0.5: "
              << findep::nakamoto::selfish_mining_threshold(0.5)
              << ", g=1: " << findep::nakamoto::selfish_mining_threshold(1.0)
              << "\n";
  }

  findep::runtime::ScenarioSuite suite(
      "Selfish mining: relative revenue vs hashrate (1M simulated blocks "
      "per gamma per seed)");
  for (const double alpha :
       {0.10, 0.20, 0.25, 0.30, 1.0 / 3.0, 0.40, 0.45}) {
    suite.emplace<SelfishMiningScenario>(
        SelfishMiningScenario::Params{.alpha = alpha});
  }
  return suite.run(options, std::cout, std::cerr);
}
