// SELFISH — the Eyal–Sirer baseline the paper's §I cites ("majority is
// not enough"): selfish-mining revenue vs hashrate α at the canonical
// race-win fractions γ ∈ {0, 0.5, 1}.
//
// Expected shape: revenue crosses the honest y = α line exactly at the
// closed-form threshold α = (1−γ)/(3−2γ): 1/3 for γ = 0, 1/4 for
// γ = 0.5, 0 for γ = 1 (findep::nakamoto::selfish_mining_threshold).
// Combined with the fault pipeline: a correlated component fault that
// aggregates pools above the threshold enables the strategy outright.
//
// Thin driver: the `selfish_mining` family lives in
// src/scenarios/selfish_mining.cpp.
#include "runtime/registry.h"

int main(int argc, char** argv) {
  return findep::runtime::run_families_main(
      argc, argv, {"selfish_mining"},
      "Selfish mining: relative revenue vs hashrate (1M blocks per γ per seed)");
}
