// FIG1 — regenerates Figure 1 of the paper: best-case entropy of Bitcoin
// replica diversity as the residual 0.87% hashrate is spread uniformly
// over x = 1..1000 additional miners.
//
// Expected shape (paper): a monotone but saturating curve that stays
// below 3 bits everywhere — i.e. below an 8-replica uniform BFT system —
// because the 17-pool oligopoly dominates the distribution.
//
// Thin driver: the `fig1_entropy` family lives in
// src/scenarios/bitcoin.cpp.
#include "runtime/registry.h"

int main(int argc, char** argv) {
  return findep::runtime::run_families_main(
      argc, argv, {"fig1_entropy"},
      "Figure 1: best-case entropy of Bitcoin replica diversity");
}
