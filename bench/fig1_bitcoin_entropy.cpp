// FIG1 — regenerates Figure 1 of the paper: best-case entropy of Bitcoin
// replica diversity as the residual 0.87% hashrate is spread uniformly
// over x = 1..1000 additional miners.
//
// Expected shape (paper): a monotone but saturating curve that stays below
// 3 bits everywhere — i.e. below an 8-replica uniform BFT system — because
// the 17-pool oligopoly dominates the distribution.
#include <cmath>
#include <iostream>

#include "diversity/datasets.h"
#include "diversity/metrics.h"
#include "diversity/optimality.h"
#include "support/table.h"

int main() {
  using namespace findep;
  using namespace findep::diversity;

  support::print_banner(std::cout,
                        "Figure 1: best-case entropy of Bitcoin replica "
                        "diversity (2023-02-02 pool snapshot)");

  const auto series = datasets::figure1_entropy_series(1000);
  support::Table table({"x (residual miners)", "miners total",
                        "H(p) bits", "2^H (effective configs)",
                        "gap to BFT-8 (bits)"});
  for (const std::size_t x :
       {1u,   2u,   5u,   10u,  20u,  50u,  101u, 200u,
        300u, 400u, 500u, 600u, 700u, 800u, 900u, 1000u}) {
    const double h = series[x - 1];
    table.add(x, x + datasets::kBitcoinPoolCount, h, std::exp2(h),
              3.0 - h);
  }
  table.print(std::cout);

  const double h_max = series.back();
  std::cout << "\npaper check: entropy stays below 3 bits for all x: "
            << (h_max < 3.0 ? "YES" : "NO") << " (max " << h_max << ")\n";
  std::cout << "equivalent uniform-BFT size at x=1000: "
            << equivalent_uniform_configs(h_max) << " replicas (paper: 8)\n";
  return h_max < 3.0 ? 0 : 1;
}
