// TIER — §V's proposal: mix attested (configuration known) and
// non-attested replicas, give attested replicas a higher voting weight,
// and measure resilience of the effective voting-power distribution.
//
// Expected shape: with low attested fractions the unknown mass is a single
// point of failure; raising the attested weight α pushes the unknown share
// below the BFT third and raises the number of independent faults needed.
#include <iostream>

#include "config/sampler.h"
#include "diversity/manager.h"
#include "diversity/metrics.h"
#include "support/table.h"

namespace {

std::vector<findep::diversity::ReplicaRecord> mixed_population(
    double attested_fraction, std::uint64_t seed) {
  using namespace findep;
  const config::ComponentCatalog catalog = config::standard_catalog();
  config::SamplerOptions opts;
  opts.zipf_exponent = 0.5;
  opts.attestable_fraction = 1.0;
  config::ConfigurationSampler sampler(catalog, opts);
  support::Rng rng(seed);
  std::vector<diversity::ReplicaRecord> population;
  for (std::size_t i = 0; i < 60; ++i) {
    diversity::ReplicaRecord rec{sampler.sample(rng), 1.0,
                                 rng.chance(attested_fraction)};
    if (!rec.attested) {
      rec.configuration.clear(
          config::ComponentKind::kTrustedHardware);
    }
    population.push_back(rec);
  }
  return population;
}

}  // namespace

int main() {
  using namespace findep;
  using namespace findep::diversity;

  support::print_banner(std::cout,
                        "Two-tier voting (60 replicas): attested weight α "
                        "vs resilience of the effective distribution");

  support::Table table({"attested frac", "alpha", "unknown share %",
                        "H effective", "faults >1/3", "SPOF"});
  for (const double fraction : {0.25, 0.5, 0.75}) {
    const auto population = mixed_population(fraction, 5);
    for (const double alpha : {1.0, 2.0, 4.0, 8.0}) {
      const TwoTierOutcome out = TwoTierPolicy(alpha).apply(population);
      table.add(fraction, alpha, out.unknown_share * 100.0,
                shannon_entropy(out.effective), out.bft.min_faults,
                std::string(out.bft.single_point_of_failure ? "YES" : "no"));
    }
  }
  table.print(std::cout);

  std::cout << "\npaper check (§V): weighting attested replicas higher "
               "shrinks the correlated unknown mass below the BFT third "
               "without excluding open participation.\n";
  return 0;
}
