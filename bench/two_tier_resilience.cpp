// TIER — §V's proposal: mix attested (configuration known) and
// non-attested replicas, give attested replicas a higher voting weight,
// and measure resilience of the effective voting-power distribution.
//
// Expected shape: with low attested fractions the unknown mass is a
// single point of failure; raising the attested weight α pushes the
// unknown share below the BFT third and raises the number of independent
// faults needed.
//
// Thin driver: the `two_tier` family lives in src/scenarios/two_tier.cpp.
#include "runtime/registry.h"

int main(int argc, char** argv) {
  return findep::runtime::run_families_main(
      argc, argv, {"two_tier"},
      "Two-tier voting: attested weight α vs effective-distribution resilience");
}
