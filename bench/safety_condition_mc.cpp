// SAFE — the §II-C safety condition f ≥ Σ f_t^i, Monte-Carlo: probability
// that k random component faults push compromised voting power past the
// BFT third / the honest majority, as a function of the population's
// entropy (swept via the sampler's Zipf skew).
//
// Expected shape: the single-fault break probability (k = 1) and the
// worst-case single-fault compromise grow steadily with monoculture skew.
// Sweeping seeds also samples fresh populations per run, so the ± spread
// quantifies population-to-population variance.
//
// Thin driver: the `safety_condition` family lives in
// src/scenarios/safety_condition.cpp.
#include "runtime/registry.h"

int main(int argc, char** argv) {
  return findep::runtime::run_families_main(
      argc, argv, {"safety_condition"},
      "Safety condition: P[compromise > threshold] under k component faults");
}
