// SAFE — the §II-C safety condition f ≥ Σ f_t^i, Monte-Carlo: probability
// that k random component faults push compromised voting power past the
// BFT third / the honest majority, as a function of the population's
// entropy (swept via the sampler's Zipf skew).
//
// Expected shape: the single-fault break probability (k = 1) and the
// worst-case single-fault compromise grow steadily with monoculture skew —
// a uniform population is unbreakable by any one fault, a skewed one often
// falls to one. Sweeping seeds now also samples fresh populations per
// run, so the ± spread quantifies population-to-population variance.
#include "runtime/suite.h"
#include "scenarios/safety_condition.h"

int main(int argc, char** argv) {
  using findep::scenarios::SafetyConditionScenario;

  findep::runtime::ScenarioSuite suite(
      "Safety condition: P[compromise > threshold] under k random "
      "component faults (100 replicas, 2000 trials per seed)");
  for (const double skew : {0.0, 0.5, 1.0, 1.5, 2.0, 3.0}) {
    suite.emplace<SafetyConditionScenario>(
        SafetyConditionScenario::Params{.zipf_exponent = skew});
  }
  return suite.run_main(argc, argv);
}
