// SAFE — the §II-C safety condition f ≥ Σ f_t^i, Monte-Carlo: probability
// that k random component faults push compromised voting power past the
// BFT third / the honest majority, as a function of the population's
// entropy (swept via the sampler's Zipf skew).
//
// Expected shape: the single-fault break probability (k = 1) and the
// worst-case single-fault compromise grow steadily with monoculture skew —
// a uniform population is unbreakable by any one fault, a skewed one often
// falls to one. (At larger k the *random*-fault columns also reflect a
// coverage effect: uniform populations spread power over fewer, larger
// component groups per axis, so many random faults aggregate coverage
// faster; the worst-case attacker is always served best by skew.)
#include <iostream>

#include "config/sampler.h"
#include "diversity/analyzer.h"
#include "diversity/metrics.h"
#include "faults/injector.h"
#include "support/table.h"

int main() {
  using namespace findep;
  using namespace findep::diversity;

  support::print_banner(std::cout,
                        "Safety condition: P[Σ f_i > threshold] under k "
                        "random component faults (100 replicas, 2000 "
                        "trials)");

  const config::ComponentCatalog catalog = config::standard_catalog();
  support::Table table({"zipf skew", "H(p) bits", "P[>1/3] k=1",
                        "P[>1/3] k=2", "P[>1/3] k=4", "P[>1/2] k=4",
                        "worst k=1"});
  for (const double skew : {0.0, 0.5, 1.0, 1.5, 2.0, 3.0}) {
    config::SamplerOptions opts;
    opts.zipf_exponent = skew;
    opts.attestable_fraction = 0.5;
    config::ConfigurationSampler sampler(catalog, opts);
    support::Rng rng(2024 + static_cast<std::uint64_t>(skew * 10));
    std::vector<ReplicaRecord> population;
    for (const auto& cfg : sampler.sample_population(rng, 100)) {
      population.push_back(ReplicaRecord{cfg, 1.0, true});
    }
    const double h =
        shannon_entropy(DiversityAnalyzer::distribution_of(population));
    faults::FaultInjector injector(population);
    support::Rng mc(99);
    table.add(skew, h,
              injector.break_probability(1, kBftThreshold, 2000, mc),
              injector.break_probability(2, kBftThreshold, 2000, mc),
              injector.break_probability(4, kBftThreshold, 2000, mc),
              injector.break_probability(4, kNakamotoThreshold, 2000, mc),
              injector.worst_case_components(1).compromised_fraction);
  }
  table.print(std::cout);

  std::cout << "\npaper check: under monoculture (high skew) a SINGLE "
               "random fault violates the safety condition with growing "
               "probability, and the worst-case single fault approaches "
               "total compromise — fault independence is what keeps "
               "Σ f_i below f.\n";
  return 0;
}
