// campaign — declarative fault-injection campaigns over the scenario
// catalog.
//
//   campaign                               # default grid (every target ×
//                                          # every fault × two rates)
//   campaign --spec nightly.spec           # axis overrides from a file
//   campaign --set fault=crash,collude     # ... or straight from the CLI
//   campaign --spec s.spec --emit-tasks    # shard cells across workers
//   campaign --worker < shard > r1.jsonl
//   campaign --merge r1.jsonl r2.jsonl     # byte-identical to in-process
//   campaign --report r1.jsonl r2.jsonl    # outcome rates per faulted
//                                          # component kind / target / fault
//
// A spec file lowers to the exact `--set` overrides the CLI takes (see
// campaign/spec.h for the format), so every execution path — in-process,
// sharded, spec-driven or flag-driven — expands cells through the same
// registry pipeline. The reporter runs strictly downstream of the result
// shards and never perturbs the byte-identity contract.
#include <iostream>
#include <string>
#include <vector>

#include "campaign/report.h"
#include "campaign/spec.h"
#include "runtime/registry.h"

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);

  // --report consumes the rest of the command line as shard paths.
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--report") {
      const std::vector<std::string> paths(args.begin() +
                                               static_cast<long>(i) + 1,
                                           args.end());
      if (paths.empty()) {
        std::cerr << "usage: campaign --report RESULTS.jsonl...\n";
        return 2;
      }
      return findep::campaign::report_main(paths, std::cout, std::cerr);
    }
  }

  findep::campaign::CampaignSpec spec;
  std::vector<const char*> forwarded;
  forwarded.push_back(argv[0]);
  bool cli_seeds = false;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--spec") {
      if (i + 1 >= args.size()) {
        std::cerr << "campaign: --spec needs a file argument\n";
        return 2;
      }
      try {
        spec = findep::campaign::load_campaign_spec(args[++i]);
      } catch (const std::exception& e) {
        std::cerr << "campaign: " << e.what() << "\n";
        return 2;
      }
      continue;
    }
    if (args[i] == "--seeds") cli_seeds = true;
    forwarded.push_back(args[i].c_str());
  }
  // The spec's seed count applies unless the CLI pins its own.
  std::string spec_seeds;
  if (spec.seeds.has_value() && !cli_seeds) {
    spec_seeds = std::to_string(*spec.seeds);
    forwarded.push_back("--seeds");
    forwarded.push_back(spec_seeds.c_str());
  }
  return findep::runtime::run_families_main(
      static_cast<int>(forwarded.size()), forwarded.data(), {"campaign"},
      "campaign: declarative fault-injection campaigns (cells = target "
      "fleet x fault kind x rate)",
      spec.overrides);
}
