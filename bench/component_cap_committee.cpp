// CCAP — component-aware committee formation: the enforcement answer to
// the paper's Challenge 2 residual. Configuration-level caps bound the
// worst configuration fault but not the worst *component* fault (distinct
// configurations share OSes and libraries); this bench sweeps the
// component cap and reports the exposure actually achieved and the honest
// voting power the cap discounts.
//
// Expected shape: worst component exposure tracks the cap down to the
// population's structural floor; admitted power falls in exchange — the
// same performance/reliability trade the paper notes for abundance.
//
// Thin driver: the `component_cap` family lives in
// src/scenarios/component_cap.cpp.
#include "runtime/registry.h"

int main(int argc, char** argv) {
  return findep::runtime::run_families_main(
      argc, argv, {"component_cap"},
      "Component-aware committee caps (zipf-skewed software market)");
}
