// CCAP — component-aware committee formation: the enforcement answer to
// the paper's Challenge 2 residual. Configuration-level caps bound the
// worst configuration fault but not the worst *component* fault (distinct
// configurations share OSes and libraries); this bench sweeps the
// component cap and reports the exposure actually achieved and the honest
// voting power the cap discounts.
//
// Expected shape: worst component exposure tracks the cap down to the
// population's structural floor; admitted power falls in exchange — the
// same performance/reliability trade the paper notes for abundance.
#include <iostream>

#include "committee/diversity_aware.h"
#include "config/sampler.h"
#include "support/table.h"

int main() {
  using namespace findep;
  using namespace findep::committee;

  support::print_banner(std::cout,
                        "Component-aware committee caps (40 candidates, "
                        "zipf-skewed software market)");

  crypto::KeyRegistry keys;
  StakeRegistry stake;
  const config::ComponentCatalog catalog = config::standard_catalog();
  config::SamplerOptions opts;
  opts.zipf_exponent = 1.0;
  opts.attestable_fraction = 1.0;
  config::ConfigurationSampler sampler(catalog, opts);
  support::Rng rng(404);
  std::vector<ParticipantId> everyone;
  for (std::size_t i = 0; i < 40; ++i) {
    const auto kp = crypto::KeyPair::derive(8800 + i);
    keys.enroll(kp);
    everyone.push_back(stake.add("p" + std::to_string(i),
                                 rng.uniform(1.0, 3.0), sampler.sample(rng),
                                 true, kp.public_key()));
  }

  support::Table table({"component cap", "worst component exposure",
                        "worst config share", "admitted power %",
                        "H bits", "faults >1/3"});
  for (const double cap : {1.0, 0.5, 1.0 / 3.0, 0.25, 0.15, 0.10}) {
    SelectionPolicy policy;
    policy.per_config_cap = 0.25;
    policy.per_component_cap = cap;
    const Committee c = form_committee(stake, everyone, policy);
    table.add(cap, c.worst_component_exposure,
              diversity::berger_parker(c.distribution),
              c.admitted_fraction * 100.0, c.entropy_bits,
              c.bft.min_faults);
  }
  table.print(std::cout);

  std::cout << "\npaper check: bounding per-component exposure bounds the "
               "true single-fault blast radius Σ f_i of §II-C — at the "
               "price of discounted honest power (the caps cannot beat "
               "the structural floor set by the candidate pool's own "
               "monoculture).\n";
  return 0;
}
