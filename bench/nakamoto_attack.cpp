// NAK — the Nakamoto substrate: (a) fork rate vs propagation delay,
// (b) the §I attack pipeline — a single component fault hands the attacker
// the combined hashrate of every pool sharing that component, escalating
// the double-spend success probability.
//
// Expected shape: fork rate grows with delay/interval ratio; attack
// success at 6 confirmations jumps from ≈0.3% (lone 10% pool) to ≈100%
// once a shared component aggregates >50% hashrate.
#include <string>

#include "config/catalog.h"
#include "faults/injector.h"
#include "nakamoto/attack.h"
#include "nakamoto/pools.h"
#include "runtime/suite.h"
#include "scenarios/nakamoto.h"

namespace {

using namespace findep;

/// Pool-software compromise: one component fault -> aggregated hashrate
/// -> double-spend success. A driver-local scenario: the zipf-skewed pool
/// assignment derives from the run seed.
class PoolCompromiseScenario : public runtime::Scenario {
 public:
  PoolCompromiseScenario(std::string label, bool unique_configs)
      : label_(std::move(label)), unique_configs_(unique_configs) {}

  [[nodiscard]] std::string name() const override {
    return "pool_compromise/" + label_;
  }

  [[nodiscard]] runtime::MetricRecord run(
      const runtime::RunContext& ctx) const override {
    const config::ComponentCatalog catalog =
        label_ == "monoculture" ? config::monoculture_catalog()
                                : config::standard_catalog();
    const nakamoto::PoolSet pools =
        unique_configs_ ? nakamoto::PoolSet::example1(catalog, true)
                        : nakamoto::PoolSet::example1(catalog, false,
                                                      ctx.seed);
    faults::FaultInjector injector(pools.as_population());
    const double q = injector.worst_case_components(1).compromised_fraction;

    runtime::MetricRecord metrics;
    metrics.set("worst_1fault_share", q);
    metrics.set("attack_z6", nakamoto::attack_success_closed_form(q, 6));
    metrics.set("attack_z24", nakamoto::attack_success_closed_form(q, 24));
    return metrics;
  }

 private:
  std::string label_;
  bool unique_configs_;
};

}  // namespace

int main(int argc, char** argv) {
  using findep::scenarios::DoubleSpendScenario;
  using findep::scenarios::ForkRateScenario;

  findep::runtime::ScenarioSuite suite(
      "Nakamoto substrate: fork rates and the correlated-fault attack "
      "pipeline");
  for (const double delay : {0.1, 1.0, 5.0, 15.0, 40.0}) {
    suite.emplace<ForkRateScenario>(
        ForkRateScenario::Params{.mean_one_way_delay = delay});
  }
  for (const double q : {0.05, 0.10, 0.20, 0.30, 0.40, 0.45}) {
    suite.emplace<DoubleSpendScenario>(
        DoubleSpendScenario::Params{.attacker_share = q});
  }
  suite.emplace<PoolCompromiseScenario>("paper best case (unique configs)",
                                        true);
  suite.emplace<PoolCompromiseScenario>("realistic (zipf-skewed software)",
                                        false);
  suite.emplace<PoolCompromiseScenario>("monoculture", false);
  return suite.run_main(argc, argv);
}
