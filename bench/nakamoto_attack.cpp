// NAK — the Nakamoto substrate: (a) fork rate vs propagation delay,
// (b) the §I attack pipeline — a single component fault hands the attacker
// the combined hashrate of every pool sharing that component, escalating
// the double-spend success probability.
//
// Expected shape: fork rate grows with delay/interval ratio; attack
// success at 6 confirmations jumps from ≈0.3% (lone 10% pool) to ≈100%
// once a shared component aggregates >50% hashrate.
#include <iostream>

#include "diversity/datasets.h"
#include "faults/injector.h"
#include "nakamoto/attack.h"
#include "nakamoto/miner.h"
#include "nakamoto/pools.h"
#include "support/table.h"

int main() {
  using namespace findep;
  using namespace findep::nakamoto;

  support::print_banner(std::cout,
                        "Fork rate vs propagation delay (10 equal miners, "
                        "120 s block interval, 6000 blocks-time horizon)");
  {
    support::Table table({"mean one-way delay (s)", "delay/interval",
                          "blocks mined", "stale rate %"});
    for (const double delay : {0.1, 1.0, 5.0, 15.0, 40.0}) {
      NakamotoOptions opt;
      opt.mean_block_interval = 120.0;
      opt.network.min_latency = delay / 2.0;
      opt.network.mean_extra_latency = delay / 2.0;
      opt.seed = 77;
      NakamotoSim sim(std::vector<double>(10, 1.0), opt);
      sim.run_for(120.0 * 2000.0);
      const ChainStats stats = sim.stats();
      table.add(delay, delay / 120.0, stats.total_blocks,
                stats.stale_rate * 100.0);
    }
    table.print(std::cout);
  }

  support::print_banner(std::cout,
                        "Double-spend success: closed form vs Monte-Carlo");
  {
    support::Table table({"attacker share q", "z=1", "z=2", "z=6 closed",
                          "z=6 MC", "z for <0.1% risk"});
    support::Rng rng(13);
    for (const double q : {0.05, 0.10, 0.20, 0.30, 0.40, 0.45}) {
      table.add(q, attack_success_closed_form(q, 1),
                attack_success_closed_form(q, 2),
                attack_success_closed_form(q, 6),
                attack_success_monte_carlo(q, 6, 40000, rng),
                confirmations_for_risk(q, 0.001));
    }
    table.print(std::cout);
  }

  support::print_banner(std::cout,
                        "Pool-software compromise (Example-1 pools): one "
                        "component fault -> aggregated hashrate -> attack");
  {
    const config::ComponentCatalog catalog = config::standard_catalog();
    support::Table table({"pool configuration model", "worst 1-fault share",
                          "attack success z=6", "attack success z=24"});
    const auto row = [&](const std::string& label, const PoolSet& pools) {
      faults::FaultInjector injector(pools.as_population());
      const double q =
          injector.worst_case_components(1).compromised_fraction;
      table.add(label, q, attack_success_closed_form(q, 6),
                attack_success_closed_form(q, 24));
    };
    row("paper best case (unique configs)",
        PoolSet::example1(catalog, true));
    row("realistic (zipf-skewed software)",
        PoolSet::example1(catalog, false, 21));
    row("monoculture", PoolSet::example1(config::monoculture_catalog(),
                                         false, 22));
    table.print(std::cout);
  }

  std::cout << "\npaper check: correlated software faults turn a minority "
               "attacker into a majority one — honest-majority accounting "
               "must count fault domains, not miners.\n";
  return 0;
}
