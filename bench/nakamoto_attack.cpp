// NAK — the Nakamoto substrate: (a) fork rate vs propagation delay,
// (b) the double-spend race, (c) the §I attack pipeline — a single
// component fault hands the attacker the combined hashrate of every pool
// sharing that component, escalating the double-spend success
// probability.
//
// Expected shape: fork rate grows with delay/interval ratio; attack
// success at 6 confirmations jumps from ≈0.3% (lone 10% pool) to ≈100%
// once a shared component aggregates >50% hashrate.
//
// Thin driver: the `fork_rate`, `double_spend` and `pool_compromise`
// families live in src/scenarios/nakamoto.cpp.
#include "runtime/registry.h"

int main(int argc, char** argv) {
  return findep::runtime::run_families_main(
      argc, argv, {"fork_rate", "double_spend", "pool_compromise"},
      "Nakamoto substrate: fork rates and the correlated-fault attack pipeline");
}
