// PROP3 — Proposition 3: higher configuration abundance ω improves
// permissionless resilience against *malicious operators* (each defection
// yields 1/(κω) of the power) while buying nothing against
// *vulnerabilities* (a component fault still takes a whole configuration,
// 1/κ) — and it costs quadratically more consensus messages.
//
// Expected shape: operator-adversary compromise falls ∝ 1/ω; the
// vulnerability column is flat in ω; measured PBFT messages grow ≈ (κω)².
//
// Thin driver: the `prop3_abundance` and `prop3_cost` families live in
// src/scenarios/propositions.cpp.
#include "runtime/registry.h"

int main(int argc, char** argv) {
  return findep::runtime::run_families_main(
      argc, argv, {"prop3_abundance", "prop3_cost"},
      "Proposition 3: abundance ω vs adversaries, and its quadratic cost");
}
