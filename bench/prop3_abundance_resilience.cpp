// PROP3 — Proposition 3: higher configuration abundance ω improves
// permissionless resilience against *malicious operators* (each defection
// yields 1/(κω) of the power) while buying nothing against
// *vulnerabilities* (a component fault still takes a whole configuration,
// 1/κ) — and it costs quadratically more consensus messages.
//
// Expected shape: operator-adversary compromise falls ∝ 1/ω; the
// vulnerability column is flat in ω; measured PBFT messages grow ≈ (κω)².
#include <iostream>

#include "bft/cluster.h"
#include "config/sampler.h"
#include "diversity/propositions.h"
#include "faults/adversary.h"
#include "support/table.h"

namespace {

// Builds a (κ, ω) population: κ distinct configurations, ω independent
// operators per configuration, one replica each.
findep::faults::OperatedPopulation make_population(std::size_t kappa,
                                                   std::size_t omega) {
  using namespace findep;
  const config::ComponentCatalog catalog = config::standard_catalog();
  config::ConfigurationSampler sampler(catalog, config::SamplerOptions{});
  const auto configs = sampler.distinct_configurations(kappa);
  faults::OperatedPopulation pop;
  faults::OperatorId next_operator = 0;
  for (std::size_t c = 0; c < kappa; ++c) {
    for (std::size_t o = 0; o < omega; ++o) {
      pop.replicas.push_back(
          findep::diversity::ReplicaRecord{configs[c], 1.0, true});
      pop.operator_of.push_back(next_operator++);
    }
  }
  return pop;
}

std::uint64_t measured_messages(std::size_t n) {
  using namespace findep::bft;
  ClusterOptions opt;
  opt.seed = n;
  BftCluster cluster(n, opt);
  for (int i = 0; i < 3; ++i) cluster.submit();
  cluster.run_until_executed(3, 120.0);
  return cluster.network().stats().messages_sent / 3;
}

}  // namespace

int main() {
  using namespace findep;
  using namespace findep::diversity;

  support::print_banner(std::cout,
                        "Proposition 3: abundance ω vs adversaries "
                        "(κ = 8 configurations, worst-case attacks)");
  {
    support::Table table({"omega", "replicas", "1 operator defects",
                          "1 component fault", "analytic 1/(κω)",
                          "analytic 1/κ"});
    for (const std::size_t omega : {1u, 2u, 4u, 8u, 16u}) {
      const auto pop = make_population(8, omega);
      faults::FaultInjector injector(pop.replicas);
      const double op_fraction =
          faults::OperatorAdversary{1}.attack(pop).compromised_fraction;
      const double vuln_fraction =
          injector.worst_case_components(1).compromised_fraction;
      const Prop3Result analytic = analyze_proposition3(8, omega);
      table.add(omega, pop.replicas.size(), op_fraction, vuln_fraction,
                analytic.operator_fraction,
                analytic.vulnerability_fraction);
    }
    table.print(std::cout);
  }

  support::print_banner(std::cout,
                        "Proposition 3 cost side: measured PBFT messages "
                        "per request vs cluster size (κω)");
  {
    support::Table table({"replicas (κω)", "messages/request",
                          "ratio to n=4", "(n/4)^2 reference"});
    const std::uint64_t base = measured_messages(4);
    for (const std::size_t n : {4u, 8u, 12u, 16u, 24u}) {
      const std::uint64_t msgs = n == 4 ? base : measured_messages(n);
      const double ratio =
          static_cast<double>(msgs) / static_cast<double>(base);
      const double quad = (static_cast<double>(n) / 4.0) *
                          (static_cast<double>(n) / 4.0);
      table.add(n, msgs, ratio, quad);
    }
    table.print(std::cout);
  }

  std::cout << "\npaper check: ω dilutes operator power but not "
               "vulnerability blast radius, at quadratic message cost — "
               "the performance/reliability trade-off of §IV-B.\n";
  return 0;
}
