// BFT — the PBFT substrate's scaling behaviour: commit latency, messages
// and bytes per request vs cluster size, plus the cost of tolerated
// faults. This is the quantitative basis of the paper's §IV-B remark that
// "higher configuration abundance always introduces more network
// overhead".
//
// Expected shape: latency grows mildly with n (more quorum stragglers);
// messages per request grow quadratically; a silent minority slows
// nothing fundamentally, while a silent primary costs a view change.
#include <iostream>

#include "bft/cluster.h"
#include "support/table.h"

namespace {

struct RunResult {
  double latency_ms = 0.0;
  std::uint64_t messages_per_request = 0;
  std::uint64_t kilobytes_per_request = 0;
  std::uint64_t view_changes = 0;
  bool completed = false;
};

RunResult run_cluster(std::size_t n, std::vector<findep::bft::Behavior>
                                         behaviors,
                      int requests = 5) {
  using namespace findep::bft;
  ClusterOptions opt;
  opt.seed = 40 + n;
  BftCluster cluster(n, opt, std::move(behaviors));
  for (int i = 0; i < requests; ++i) cluster.submit();
  RunResult out;
  out.completed = cluster.run_until_executed(
      static_cast<std::size_t>(requests), 240.0);
  if (out.completed) {
    out.latency_ms = cluster.mean_latency() * 1000.0;
  }
  const auto& stats = cluster.network().stats();
  out.messages_per_request =
      stats.messages_sent / static_cast<std::uint64_t>(requests);
  out.kilobytes_per_request =
      stats.bytes_sent / 1024 / static_cast<std::uint64_t>(requests);
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    out.view_changes = std::max(
        out.view_changes, cluster.replica(i).view_changes_started());
  }
  return out;
}

}  // namespace

int main() {
  using namespace findep;
  using bft::Behavior;

  support::print_banner(std::cout,
                        "PBFT scaling: all-honest clusters");
  {
    support::Table table({"n", "latency (ms)", "msgs/request",
                          "KiB/request", "msgs ratio to n=4"});
    std::uint64_t base = 0;
    for (const std::size_t n : {4u, 7u, 10u, 16u, 25u, 40u}) {
      const RunResult r = run_cluster(n, {});
      if (base == 0) base = r.messages_per_request;
      table.add(n, r.latency_ms, r.messages_per_request,
                r.kilobytes_per_request,
                static_cast<double>(r.messages_per_request) /
                    static_cast<double>(base));
    }
    table.print(std::cout);
  }

  support::print_banner(std::cout,
                        "PBFT under faults (n = 7, f = 2 tolerated)");
  {
    support::Table table({"scenario", "completed", "latency (ms)",
                          "msgs/request", "max view changes"});
    const auto row = [&](const std::string& label,
                         std::vector<Behavior> behaviors) {
      const RunResult r = run_cluster(7, std::move(behaviors));
      table.add(label, std::string(r.completed ? "yes" : "NO"),
                r.latency_ms, r.messages_per_request, r.view_changes);
    };
    row("all honest", {});
    row("1 silent backup", {Behavior::kHonest, Behavior::kSilent});
    row("2 silent backups", {Behavior::kHonest, Behavior::kSilent,
                             Behavior::kSilent});
    row("silent primary", {Behavior::kSilent});
    row("equivocating primary", {Behavior::kEquivocate});
    table.print(std::cout);
  }

  std::cout << "\npaper check: quadratic message growth is the price of "
               "each additional replica — the overhead side of the "
               "(κ, ω) trade-off.\n";
  return 0;
}
