// BFT — the PBFT substrate's scaling behaviour: commit latency, messages
// and bytes per request vs cluster size, plus the cost of tolerated
// faults. This is the quantitative basis of the paper's §IV-B remark that
// "higher configuration abundance always introduces more network
// overhead".
//
// Expected shape: latency grows mildly with n (more quorum stragglers);
// messages per request grow quadratically; a silent minority slows
// nothing fundamentally, while a silent primary costs a view change.
//
// All setup/run/aggregate plumbing lives in the runtime harness; every
// row below is one Scenario instance swept across --seeds seeds.
#include "runtime/suite.h"
#include "scenarios/bft_scaling.h"

int main(int argc, char** argv) {
  using findep::bft::Behavior;
  using findep::scenarios::BftScalingScenario;

  findep::runtime::ScenarioSuite suite(
      "PBFT scaling: cluster sizes and fault mixes");
  for (const std::size_t n : {4u, 7u, 10u, 16u, 25u, 40u}) {
    suite.emplace<BftScalingScenario>(BftScalingScenario::Params{.n = n});
  }
  const auto faulty = [&](std::string label,
                          std::vector<Behavior> behaviors) {
    suite.emplace<BftScalingScenario>(BftScalingScenario::Params{
        .n = 7, .behaviors = std::move(behaviors),
        .label = std::move(label)});
  };
  faulty("n=7 1 silent backup", {Behavior::kHonest, Behavior::kSilent});
  faulty("n=7 2 silent backups",
         {Behavior::kHonest, Behavior::kSilent, Behavior::kSilent});
  faulty("n=7 silent primary", {Behavior::kSilent});
  faulty("n=7 equivocating primary", {Behavior::kEquivocate});
  return suite.run_main(argc, argv);
}
