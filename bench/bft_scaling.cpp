// BFT — the PBFT substrate's scaling behaviour: commit latency, messages
// and bytes per request vs cluster size, plus the cost of tolerated
// faults. This is the quantitative basis of the paper's §IV-B remark that
// "higher configuration abundance always introduces more network
// overhead".
//
// Expected shape: latency grows mildly with n (more quorum stragglers);
// messages per request grow quadratically; a silent minority slows
// nothing fundamentally, while a silent primary costs a view change.
//
// Thin driver: the `bft_scaling` family and its default grid (size sweep
// plus n = 7 fault mixes) live in src/scenarios/bft_scaling.cpp.
#include "runtime/registry.h"

int main(int argc, char** argv) {
  return findep::runtime::run_families_main(
      argc, argv, {"bft_scaling"},
      "PBFT scaling: cluster sizes and fault mixes");
}
