// findep-bench — the unified experiment CLI over the scenario registry.
//
// Every scenario family in the repository (all former bench drivers and
// examples) registers itself with the process-wide ScenarioRegistry; this
// binary can list, filter, re-parameterize and run any of them:
//
//   findep-bench --list                       # families, grids, sizes
//   findep-bench --family bft_scaling         # one family, default grid
//   findep-bench --family fig1_entropy --set x=1,10,100,1000
//   findep-bench --only "alpha=2" --seeds 16 --json
//   findep-bench --seeds 1                    # whole catalog, one seed
//
// The same catalog shards across processes (or machines) through the
// task wire format — coordinator, workers, merge:
//
//   findep-bench --emit-tasks | findep-bench --worker |
//     findep-bench --merge - --json        # ≡ findep-bench --json
//   findep-bench --emit-tasks > tasks.jsonl && split -n l/3 tasks.jsonl s.
//   findep-bench --worker < s.aa > r1.jsonl   # ... one per shard/host
//   findep-bench --merge r1.jsonl r2.jsonl r3.jsonl --csv --out sweep.csv
//
// All selected scenarios are swept through ONE global (scenario, seed)
// work queue, so even --seeds 1 fills every core; per-run results are
// bit-identical to --threads 1, and a merged distributed sweep is
// byte-identical to the in-process one (see DESIGN.md for the contract
// and the `micro` family's measured-timing exemption).
#include "runtime/registry.h"

int main(int argc, char** argv) {
  return findep::runtime::run_families_main(
      argc, argv, /*default_families=*/{},
      "findep-bench: the registered scenario catalog");
}
