// RECOV — proactive recovery ablation (§III-A's proactive-security
// pointer, executed): exposed voting power over a year as a function of
// the rejuvenation period, against patch-lag-only operation (period 0).
//
// Expected shape: peak exposure and time-above-1/3 fall monotonically as
// the recovery period shrinks; recovery bounds the *post-patch* tail (it
// cannot shorten zero-day windows), so even aggressive schedules leave a
// floor set by disclosure→patch latency.
//
// Thin driver: the `proactive_recovery` family lives in
// src/scenarios/proactive_recovery.cpp.
#include "runtime/registry.h"

int main(int argc, char** argv) {
  return findep::runtime::run_families_main(
      argc, argv, {"proactive_recovery"},
      "Proactive recovery: one-year exposure vs rejuvenation period");
}
