// RECOV — proactive recovery ablation (§III-A's proactive-security
// pointer, executed): exposed voting power over a year as a function of
// the rejuvenation period, against patch-lag-only operation.
//
// Expected shape: peak exposure and time-above-1/3 fall monotonically as
// the recovery period shrinks; recovery bounds the *post-patch* tail (it
// cannot shorten zero-day windows), so even aggressive schedules leave a
// floor set by disclosure→patch latency.
#include <iostream>

#include "config/sampler.h"
#include "diversity/manager.h"
#include "faults/recovery.h"
#include "support/table.h"

int main() {
  using namespace findep;
  using namespace findep::faults;

  support::print_banner(std::cout,
                        "Proactive recovery: one-year exposure vs "
                        "rejuvenation period (24 replicas, Lazarus-diverse)");

  const config::ComponentCatalog catalog = config::standard_catalog();
  // Vendors patch quickly (5 days); the *fleet* deploys slowly (45-day
  // mean lag) — the regime where rejuvenation helps most, since recovery
  // bounds the deploy tail but cannot shorten zero-day windows.
  SynthesisOptions synth;
  synth.mean_vulns_per_component = 0.8;
  synth.horizon_days = 365.0;
  synth.mean_patch_latency_days = 5.0;
  const VulnerabilityCatalog vulns = synthesize_catalog(catalog, synth);

  std::vector<diversity::ReplicaRecord> population;
  for (const auto& cfg :
       diversity::LazarusStyleAssigner(catalog).assign(24)) {
    population.push_back(diversity::ReplicaRecord{cfg, 1.0, true});
  }
  PatchLagModel patching;
  patching.mean_deploy_lag_days = 45.0;  // sluggish fleet operations

  support::Table table({"recovery period (days)", "peak exposed %",
                        "days >1/3", "days >1/2"});
  const ExposureTimeline none =
      compute_exposure(population, vulns, 365.0, 366, patching);
  table.add(std::string("none (patch lag only)"),
            none.peak_exposed_fraction * 100.0,
            none.time_above_bft_threshold * 365.0,
            none.time_above_majority_threshold * 365.0);
  for (const double period : {180.0, 90.0, 30.0, 14.0, 7.0, 2.0}) {
    RecoverySchedule schedule;
    schedule.period_days = period;
    const ExposureTimeline timeline = compute_exposure_with_recovery(
        population, vulns, 365.0, 366, patching, schedule);
    table.add(period, timeline.peak_exposed_fraction * 100.0,
              timeline.time_above_bft_threshold * 365.0,
              timeline.time_above_majority_threshold * 365.0);
  }
  table.print(std::cout);

  std::cout << "\npaper check: rejuvenation bounds the post-patch tail of "
               "every vulnerability window by the recovery period; the "
               "remaining floor is the zero-day (pre-patch) exposure that "
               "only diversity can dilute.\n";
  return 0;
}
