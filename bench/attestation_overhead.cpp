// ATT — configuration-discovery cost (§III-B): the challenge–quote–
// verify–admit pipeline run *over the simulated network* at growing
// registry sizes, metering admission outcomes, per-join traffic,
// sim-time latency under churn, and the entropy of the auditor's
// reconstructed distribution.
//
// Expected shape: per-replica admission cost is flat (two round-trips,
// O(1) verification); entropy grows with the population.
#include "runtime/suite.h"
#include "scenarios/attestation_churn.h"

int main(int argc, char** argv) {
  using findep::scenarios::AttestationChurnScenario;

  findep::runtime::ScenarioSuite suite(
      "Attestation pipeline over the network vs registry size");
  for (const std::size_t n : {16u, 64u, 256u, 1024u}) {
    suite.emplace<AttestationChurnScenario>(
        AttestationChurnScenario::Params{.replicas = n});
  }
  return suite.run_main(argc, argv);
}
