// ATT — configuration-discovery cost (§III-B): the challenge–quote–
// verify–admit pipeline run *over the simulated network* at growing
// registry sizes, metering admission outcomes, per-join traffic,
// sim-time latency under churn, and the entropy of the auditor's
// reconstructed distribution.
//
// Expected shape: per-replica admission cost is flat (two round-trips,
// O(1) verification); entropy grows with the population.
//
// Thin driver: the `attestation_churn` family and its default grid live
// in src/scenarios/attestation_churn.cpp.
#include "runtime/registry.h"

int main(int argc, char** argv) {
  return findep::runtime::run_families_main(
      argc, argv, {"attestation_churn"},
      "Attestation pipeline over the network vs registry size");
}
