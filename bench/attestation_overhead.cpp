// ATT — configuration-discovery cost (§III-B): wall-clock cost of the
// challenge–quote–verify–admit pipeline per replica, Merkle publication
// cost, and auditor reconstruction, at growing registry sizes.
//
// Expected shape: per-replica admission cost is flat (O(1) hashes and
// signature checks); Merkle root and reconstruction grow linearly.
#include <chrono>
#include <iostream>

#include "attest/registry.h"
#include "config/sampler.h"
#include "diversity/metrics.h"
#include "support/table.h"

int main() {
  using namespace findep;
  using Clock = std::chrono::steady_clock;
  const auto ms_since = [](Clock::time_point start) {
    return std::chrono::duration<double, std::milli>(Clock::now() - start)
        .count();
  };

  support::print_banner(std::cout,
                        "Attestation pipeline cost vs registry size");

  support::Table table({"replicas", "admit total (ms)", "admit per replica (us)",
                        "merkle root (ms)", "reconstruct (ms)",
                        "H of reconstruction"});
  for (const std::size_t n : {16u, 64u, 256u, 1024u}) {
    crypto::KeyRegistry keys;
    support::Rng rng(n);
    const config::ComponentCatalog catalog = config::standard_catalog();
    attest::AttestationAuthority authority(keys, rng);
    attest::AttestationRegistry registry(keys, authority.root_key());
    config::ConfigurationSampler sampler(
        catalog, config::SamplerOptions{.zipf_exponent = 0.8,
                                        .attestable_fraction = 1.0});

    std::vector<attest::PlatformModule> platforms;
    platforms.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      const auto cfg = sampler.sample(rng);
      const auto hw =
          cfg.component(config::ComponentKind::kTrustedHardware);
      platforms.emplace_back(keys, rng, authority, *hw, cfg);
    }

    const auto admit_start = Clock::now();
    for (auto& platform : platforms) {
      if (!registry.admit(platform.quote(registry.challenge()), 1.0)) {
        std::cerr << "admission unexpectedly failed\n";
        return 1;
      }
    }
    const double admit_ms = ms_since(admit_start);

    const auto merkle_start = Clock::now();
    const crypto::Digest root = registry.merkle_root();
    const double merkle_ms = ms_since(merkle_start);
    (void)root;

    std::unordered_map<crypto::PublicKey, attest::CommitmentOpening>
        openings;
    for (const auto& platform : platforms) {
      openings[platform.vote_key()] = platform.open_commitment();
    }
    const auto recon_start = Clock::now();
    const auto dist = registry.reconstruct_distribution(openings);
    const double recon_ms = ms_since(recon_start);

    table.add(n, admit_ms, admit_ms * 1000.0 / static_cast<double>(n),
              merkle_ms, recon_ms, diversity::shannon_entropy(dist));
  }
  table.print(std::cout);

  std::cout << "\npaper check: remote-attestation-based configuration "
               "discovery costs O(1) per joining replica — practical for "
               "permissionless churn.\n";
  return 0;
}
