// PROP2 — Proposition 2: with unique configurations per replica, *more
// replicas* do not buy more resilience unless relative abundances stay
// identical. We extend the Bitcoin oligopoly with ever more dust-weight
// unique miners and watch entropy saturate far below the optimum.
//
// Expected shape: the oligopoly's entropy saturates below 3 bits while
// log2(k) grows unboundedly (gap widens); the uniform control tracks
// log2(k) exactly.
//
// Thin driver: the `prop2_unique` family lives in
// src/scenarios/propositions.cpp.
#include "runtime/registry.h"

int main(int argc, char** argv) {
  return findep::runtime::run_families_main(
      argc, argv, {"prop2_unique"},
      "Proposition 2: adding unique replicas to the Bitcoin oligopoly");
}
