// PROP2 — Proposition 2: with unique configurations per replica, *more
// replicas* do not buy more resilience unless relative abundances stay
// identical. We extend the Bitcoin oligopoly with ever more dust-weight
// unique miners and watch entropy saturate far below the optimum, then
// contrast with uniform extensions that do reach the optimum.
//
// Expected shape: the oligopoly's entropy saturates below 3 bits while
// log2(k) grows unboundedly (gap widens); the uniform control tracks
// log2(k) exactly.
#include <cmath>
#include <iostream>
#include <vector>

#include "diversity/datasets.h"
#include "diversity/metrics.h"
#include "diversity/propositions.h"
#include "diversity/resilience.h"
#include "support/table.h"

int main() {
  using namespace findep;
  using namespace findep::diversity;

  support::print_banner(std::cout,
                        "Proposition 2: adding unique replicas to the "
                        "Bitcoin oligopoly");

  support::Table table({"replicas k", "H oligopoly", "log2(k) optimum",
                        "gap (bits)", "H uniform control",
                        "faults >1/3 oligopoly", "faults >1/3 uniform"});
  for (const std::size_t extra : {1u, 10u, 100u, 1000u, 10000u}) {
    const ConfigDistribution oligopoly =
        datasets::bitcoin_best_case_distribution(extra);
    const std::size_t k = oligopoly.support_size();
    const ConfigDistribution uniform = ConfigDistribution::uniform(k);
    table.add(k, shannon_entropy(oligopoly),
              std::log2(static_cast<double>(k)),
              kl_from_uniform(oligopoly), shannon_entropy(uniform),
              min_faults_to_exceed(oligopoly, kBftThreshold),
              min_faults_to_exceed(uniform, kBftThreshold));
  }
  table.print(std::cout);

  std::cout
      << "\npaper check: oligopoly resilience stays at 1 fault and its\n"
         "entropy saturates < 3 bits regardless of replica count, while\n"
         "the identical-relative-abundance control scales with log2(k).\n";
  return 0;
}
