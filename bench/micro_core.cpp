// MICRO — google-benchmark microbenchmarks of the hot primitives: SHA-256,
// Merkle trees, entropy metrics, configuration digests, analyzer runs.
#include <benchmark/benchmark.h>

#include <vector>

#include "config/sampler.h"
#include "crypto/merkle.h"
#include "crypto/sha256.h"
#include "diversity/analyzer.h"
#include "diversity/datasets.h"
#include "diversity/metrics.h"
#include "support/rng.h"

namespace {

using namespace findep;

void BM_Sha256(benchmark::State& state) {
  const std::vector<std::uint8_t> data(
      static_cast<std::size_t>(state.range(0)), 0xab);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::sha256(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(65536);

void BM_MerkleBuild(benchmark::State& state) {
  std::vector<crypto::Digest> leaves;
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    leaves.push_back(crypto::Sha256{}
                         .update_u64(static_cast<std::uint64_t>(i))
                         .finish());
  }
  for (auto _ : state) {
    crypto::MerkleTree tree(leaves);
    benchmark::DoNotOptimize(tree.root());
  }
}
BENCHMARK(BM_MerkleBuild)->Arg(64)->Arg(1024)->Arg(8192);

void BM_MerkleProveVerify(benchmark::State& state) {
  std::vector<crypto::Digest> leaves;
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    leaves.push_back(crypto::Sha256{}
                         .update_u64(static_cast<std::uint64_t>(i))
                         .finish());
  }
  const crypto::MerkleTree tree(leaves);
  std::size_t index = 0;
  for (auto _ : state) {
    const auto proof = tree.prove(index);
    benchmark::DoNotOptimize(
        crypto::MerkleTree::verify(leaves[index], proof, tree.root()));
    index = (index + 1) % leaves.size();
  }
}
BENCHMARK(BM_MerkleProveVerify)->Arg(1024);

void BM_ShannonEntropy(benchmark::State& state) {
  support::Rng rng(1);
  std::vector<double> weights(static_cast<std::size_t>(state.range(0)));
  for (auto& w : weights) w = rng.uniform(0.01, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(diversity::shannon_entropy(weights));
  }
}
BENCHMARK(BM_ShannonEntropy)->Arg(17)->Arg(1000)->Arg(100000);

void BM_Figure1Series(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        diversity::datasets::figure1_entropy_series(
            static_cast<std::size_t>(state.range(0))));
  }
}
BENCHMARK(BM_Figure1Series)->Arg(100)->Arg(1000);

void BM_ConfigDigest(benchmark::State& state) {
  const config::ComponentCatalog catalog = config::standard_catalog();
  config::ConfigurationSampler sampler(catalog, config::SamplerOptions{});
  support::Rng rng(2);
  const auto cfg = sampler.sample(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cfg.digest());
  }
}
BENCHMARK(BM_ConfigDigest);

void BM_AnalyzePopulation(benchmark::State& state) {
  const config::ComponentCatalog catalog = config::standard_catalog();
  config::ConfigurationSampler sampler(
      catalog, config::SamplerOptions{.zipf_exponent = 1.0,
                                      .attestable_fraction = 0.5});
  support::Rng rng(3);
  std::vector<diversity::ReplicaRecord> population;
  for (const auto& cfg : sampler.sample_population(
           rng, static_cast<std::size_t>(state.range(0)))) {
    population.push_back(diversity::ReplicaRecord{cfg, 1.0, true});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(diversity::DiversityAnalyzer::analyze(population));
  }
}
BENCHMARK(BM_AnalyzePopulation)->Arg(100)->Arg(1000);

}  // namespace
