// EX1 — regenerates Example 1: the 17-pool Bitcoin distribution's
// entropy compared against uniform BFT systems of growing size.
//
// Expected shape (paper): Bitcoin's best-case entropy < 3 bits while an
// 8-replica uniform BFT already reaches exactly 3 bits; the oligopoly
// (top pool 34%, top-2 > 50%) means one configuration fault breaks the
// BFT third and two break the honest majority.
//
// Thin driver: the `example1_entropy` family lives in
// src/scenarios/bitcoin.cpp.
#include "runtime/registry.h"

int main(int argc, char** argv) {
  return findep::runtime::run_families_main(
      argc, argv, {"example1_entropy"},
      "Example 1: Bitcoin 2023-02-02 snapshot vs uniform BFT entropy");
}
