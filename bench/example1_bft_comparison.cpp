// EX1 — regenerates Example 1: the 17-pool Bitcoin distribution and its
// entropy, compared against uniform BFT systems of growing size.
//
// Expected shape (paper): Bitcoin's best-case entropy < 3 bits while an
// 8-replica uniform BFT already reaches exactly 3 bits; the oligopoly (top
// pool 34%, top-2 > 50%) means one configuration fault breaks the BFT
// third and two break the honest majority.
#include <iostream>

#include "diversity/datasets.h"
#include "diversity/metrics.h"
#include "diversity/resilience.h"
#include "support/table.h"

int main() {
  using namespace findep;
  using namespace findep::diversity;

  support::print_banner(std::cout,
                        "Example 1a: the 2023-02-02 Bitcoin mining-pool "
                        "distribution");
  {
    support::Table table({"pool", "share %", "cumulative %"});
    const auto shares = datasets::bitcoin_pool_shares_percent();
    const auto names = datasets::bitcoin_pool_names();
    double cumulative = 0.0;
    for (std::size_t i = 0; i < shares.size(); ++i) {
      cumulative += shares[i];
      table.add(std::string(names[i]), shares[i], cumulative);
    }
    table.add(std::string("(residual, uniform)"),
              datasets::bitcoin_residual_percent(), 100.0);
    table.print(std::cout);
  }

  support::print_banner(std::cout,
                        "Example 1b: Bitcoin vs uniform BFT entropy");
  {
    support::Table table({"system", "configs", "H bits", "min faults >1/3",
                          "min faults >1/2"});
    const ConfigDistribution bitcoin =
        datasets::bitcoin_best_case_distribution(101);
    table.add(std::string("Bitcoin (x=101, 118 miners)"),
              bitcoin.support_size(), shannon_entropy(bitcoin),
              min_faults_to_exceed(bitcoin, kBftThreshold),
              min_faults_to_exceed(bitcoin, kNakamotoThreshold));
    for (const std::size_t n : {4u, 8u, 16u, 32u, 64u, 128u}) {
      const ConfigDistribution bft = ConfigDistribution::uniform(n);
      table.add("uniform BFT n=" + std::to_string(n), n,
                shannon_entropy(bft),
                min_faults_to_exceed(bft, kBftThreshold),
                min_faults_to_exceed(bft, kNakamotoThreshold));
    }
    table.print(std::cout);

    const double h_bitcoin = shannon_entropy(bitcoin);
    std::cout << "\npaper check: Bitcoin entropy (" << h_bitcoin
              << ") < BFT-8 entropy (3.0): "
              << (h_bitcoin < 3.0 ? "YES" : "NO") << '\n';
    std::cout << "paper check: one fault breaks Bitcoin's BFT third "
                 "(Foundry 34.2% > 1/3): "
              << (min_faults_to_exceed(bitcoin, kBftThreshold) == 1
                      ? "YES"
                      : "NO")
              << '\n';
  }
  return 0;
}
