// PROP1 — Proposition 1: for a κ-optimal system, growing configuration
// abundance *non-uniformly* strictly decreases entropy; growing it
// uniformly (identical relative abundance) leaves entropy unchanged.
//
// Expected shape: the "uniform growth" column is flat at log2 κ; the
// "skewed growth" column decreases monotonically as the skew increases.
//
// Thin driver: the `prop1_entropy` family lives in
// src/scenarios/propositions.cpp.
#include "runtime/registry.h"

int main(int argc, char** argv) {
  return findep::runtime::run_families_main(
      argc, argv, {"prop1_entropy"},
      "Proposition 1: abundance growth vs entropy (κ = 16)");
}
