// PROP1 — Proposition 1: for a κ-optimal system, growing configuration
// abundance *non-uniformly* strictly decreases entropy; growing it
// uniformly (identical relative abundance) leaves entropy unchanged.
//
// Expected shape: the "uniform growth" column is flat at log2 κ; the
// "skewed growth" column decreases monotonically as the skew increases.
#include <iostream>
#include <vector>

#include "diversity/metrics.h"
#include "diversity/propositions.h"
#include "support/table.h"

int main() {
  using namespace findep;
  using namespace findep::diversity;

  support::print_banner(std::cout,
                        "Proposition 1: abundance growth vs entropy "
                        "(κ = 16, base H = 4 bits)");

  constexpr std::size_t kKappa = 16;
  const ConfigDistribution base = ConfigDistribution::uniform(kKappa);

  support::Table table({"skew (max/min growth)", "H uniform growth",
                        "H skewed growth", "entropy lost (bits)",
                        "Prop.1 holds"});
  for (const double skew : {1.0, 1.5, 2.0, 3.0, 5.0, 8.0, 16.0, 32.0}) {
    // Uniform growth: every configuration ×2.
    const Prop1Result uniform =
        check_proposition1(base, std::vector<double>(kKappa, 2.0));
    // Skewed growth: configuration i grows by 1 + (skew-1)·i/(κ-1).
    std::vector<double> growth(kKappa);
    for (std::size_t i = 0; i < kKappa; ++i) {
      growth[i] = 1.0 + (skew - 1.0) * static_cast<double>(i) /
                            static_cast<double>(kKappa - 1);
    }
    const Prop1Result skewed = check_proposition1(base, growth);
    table.add(skew, uniform.entropy_after, skewed.entropy_after,
              skewed.entropy_before - skewed.entropy_after,
              std::string(uniform.holds() && skewed.holds() ? "yes"
                                                            : "NO"));
  }
  table.print(std::cout);

  std::cout << "\npaper check: entropy decreases under non-uniform "
               "abundance growth, is preserved under uniform growth.\n";
  return 0;
}
