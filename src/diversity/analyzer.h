// DiversityAnalyzer: from a population of (configuration, voting power)
// records to the paper's diversity and resilience quantities.
//
// Beyond the configuration-level entropy of §IV, the analyzer also works
// at *component* granularity: a vulnerability lives in one component
// (§II-B), so the true blast radius of a single fault is the total power
// of all replicas sharing that component — across configurations. This is
// the quantity the safety condition Σ f_t^i actually depends on; the
// configuration-level view is the upper bound the paper analyzes.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "config/replica_config.h"
#include "diversity/distribution.h"
#include "diversity/resilience.h"

namespace findep::diversity {

/// One replica as seen by the analyzer (e.g. from the attestation
/// registry): its attested configuration and voting power.
struct ReplicaRecord {
  config::ReplicaConfiguration configuration;
  VotingPower power = 0.0;
  /// Whether the configuration is known through remote attestation (§V);
  /// non-attested replicas are treated as a correlated unknown mass in
  /// worst-case analyses.
  bool attested = true;
};

/// Blast radius of the single worst component fault.
struct ComponentExposure {
  config::ComponentId component;
  config::ComponentKind kind = config::ComponentKind::kOperatingSystem;
  /// Fraction of total power running this component.
  double power_fraction = 0.0;
  std::size_t replicas = 0;
};

/// Full diversity report.
struct DiversityReport {
  std::size_t replica_count = 0;
  VotingPower total_power = 0.0;
  double attested_fraction = 1.0;  // power-weighted

  // Configuration-level (§IV-A).
  std::size_t support = 0;                // k' = |p'|
  double entropy_bits = 0.0;              // H(p)
  double max_entropy_bits = 0.0;          // log2 support
  double evenness = 0.0;                  // H / log2 k'
  double effective_configs = 0.0;         // 2^H
  double dominance = 0.0;                 // Berger–Parker
  ResilienceSummary bft;                  // threshold 1/3
  ResilienceSummary nakamoto;             // threshold 1/2

  // Component-level.
  std::vector<ComponentExposure> worst_per_kind;  // one per kind present
  std::optional<ComponentExposure> worst_overall;

  /// Per-kind Shannon entropy of the power distribution over that kind's
  /// variants (diversity per axis). Ordered so report consumers can
  /// iterate it without pinning hash-bucket layout into their output.
  std::map<config::ComponentKind, double> kind_entropy_bits;

  /// Human-readable multi-line rendering.
  [[nodiscard]] std::string to_string(
      const config::ComponentCatalog* catalog = nullptr) const;
};

/// Computes reports from replica populations.
class DiversityAnalyzer {
 public:
  /// Builds the configuration-level distribution of a population
  /// (attested replicas only unless `include_unattested`).
  [[nodiscard]] static ConfigDistribution distribution_of(
      const std::vector<ReplicaRecord>& population,
      bool include_unattested = true);

  /// Full report over a population. Requires non-empty population with
  /// positive total power.
  ///
  /// Memoized process-wide: results are cached under a digest of the
  /// population (configuration digests, power bits, attestation flags),
  /// so scenario instances that differ only in downstream parameters —
  /// e.g. every α point of a two_tier sweep at one (fraction, seed) —
  /// pay for the distribution computations once (ROADMAP hot path). The
  /// cache is thread-safe; since analyze() is a pure function, a cached
  /// result is bit-identical to a recomputed one.
  [[nodiscard]] static DiversityReport analyze(
      const std::vector<ReplicaRecord>& population);

  struct CacheStats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
  };
  /// Process-wide memoization counters (surfaced as suite counters in
  /// table output; totals depend on worker interleaving, so they are
  /// intentionally NOT per-run metrics).
  [[nodiscard]] static CacheStats cache_stats() noexcept;
  /// Drops every memoized report and zeroes the counters (tests).
  static void reset_cache() noexcept;
};

}  // namespace findep::diversity
