// Resilience analysis: connects the configuration distribution to the
// paper's safety condition  ∀t:  f ≥ Σ_{i≤k_t} f_t^i  (§II-C).
//
// At the distribution level a single vulnerability compromises (at least)
// one whole configuration's voting power, so worst-case analysis reduces
// to order statistics of the share vector: j simultaneous faults
// compromise at most the sum of the j largest shares.
#pragma once

#include <cstddef>
#include <span>

#include "diversity/distribution.h"

namespace findep::diversity {

/// Common protocol fault thresholds, as fractions of total voting power.
inline constexpr double kBftThreshold = 1.0 / 3.0;       // n > 3f quorum BFT
inline constexpr double kNakamotoThreshold = 1.0 / 2.0;  // honest majority

/// Sum of the j largest shares: worst-case fraction of voting power an
/// attacker holding j independent faults (each hitting one distinct
/// configuration) can control. j larger than the support is clamped.
[[nodiscard]] double worst_case_compromise(std::span<const double> weights,
                                           std::size_t j);
[[nodiscard]] double worst_case_compromise(const ConfigDistribution& dist,
                                           std::size_t j);

/// Smallest number of distinct configuration faults whose combined share
/// strictly exceeds `threshold`. Returns support_size + 1 when even
/// compromising every configuration does not exceed it (threshold ≥ 1).
/// This is the paper's notion of *fault independence as resilience*: a
/// κ-optimal system requires ⌊κ·threshold⌋ + 1 distinct faults.
[[nodiscard]] std::size_t min_faults_to_exceed(
    std::span<const double> weights, double threshold);
[[nodiscard]] std::size_t min_faults_to_exceed(const ConfigDistribution& dist,
                                               double threshold);

/// The remaining safety margin after j worst-case faults:
/// threshold − worst_case_compromise(j). Negative means safety is lost.
[[nodiscard]] double safety_margin(const ConfigDistribution& dist,
                                   std::size_t j, double threshold);

/// Resilience summary for one distribution at one threshold.
struct ResilienceSummary {
  double threshold = 0.0;
  std::size_t support = 0;
  /// Distinct faults needed to exceed the threshold (worst case).
  std::size_t min_faults = 0;
  /// Power compromised by a single worst-case fault (Berger–Parker share).
  double single_fault_power = 0.0;
  /// True when one fault alone already breaks the threshold.
  bool single_point_of_failure = false;
};

[[nodiscard]] ResilienceSummary summarize_resilience(
    const ConfigDistribution& dist, double threshold);

}  // namespace findep::diversity
