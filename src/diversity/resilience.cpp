#include "diversity/resilience.h"

#include <algorithm>
#include <vector>

#include "diversity/metrics.h"
#include "support/assert.h"

namespace findep::diversity {

namespace {
std::vector<double> descending_shares(std::span<const double> weights) {
  double total = 0.0;
  for (const double w : weights) {
    FINDEP_REQUIRE(w >= 0.0);
    total += w;
  }
  FINDEP_REQUIRE_MSG(total > 0.0, "resilience needs positive total power");
  std::vector<double> shares;
  shares.reserve(weights.size());
  for (const double w : weights) {
    if (w > 0.0) shares.push_back(w / total);
  }
  std::sort(shares.begin(), shares.end(), std::greater<>());
  return shares;
}
}  // namespace

double worst_case_compromise(std::span<const double> weights, std::size_t j) {
  const std::vector<double> shares = descending_shares(weights);
  const std::size_t take = std::min(j, shares.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < take; ++i) sum += shares[i];
  return sum;
}

double worst_case_compromise(const ConfigDistribution& dist, std::size_t j) {
  return worst_case_compromise(dist.shares(), j);
}

std::size_t min_faults_to_exceed(std::span<const double> weights,
                                 double threshold) {
  FINDEP_REQUIRE(threshold >= 0.0);
  const std::vector<double> shares = descending_shares(weights);
  double sum = 0.0;
  // The epsilon guards against accumulated rounding making an exactly-at-
  // threshold prefix (e.g. 10 shares of 1/30 vs 1/3) appear to exceed it.
  constexpr double kEps = 1e-12;
  for (std::size_t i = 0; i < shares.size(); ++i) {
    sum += shares[i];
    if (sum > threshold + kEps) return i + 1;
  }
  return shares.size() + 1;  // unreachable threshold (≥ total power)
}

std::size_t min_faults_to_exceed(const ConfigDistribution& dist,
                                 double threshold) {
  return min_faults_to_exceed(dist.shares(), threshold);
}

double safety_margin(const ConfigDistribution& dist, std::size_t j,
                     double threshold) {
  return threshold - worst_case_compromise(dist, j);
}

ResilienceSummary summarize_resilience(const ConfigDistribution& dist,
                                       double threshold) {
  ResilienceSummary out;
  out.threshold = threshold;
  out.support = dist.support_size();
  out.min_faults = min_faults_to_exceed(dist, threshold);
  out.single_fault_power = berger_parker(dist);
  out.single_point_of_failure = out.single_fault_power > threshold;
  return out;
}

}  // namespace findep::diversity
