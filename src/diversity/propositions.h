// Executable forms of Propositions 1–3 (§IV-B).
//
// The paper states the propositions informally; here each becomes a
// checkable experiment over concrete distributions, so the test suite can
// verify them across parameter sweeps and the bench harness can print the
// curves behind them.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "diversity/distribution.h"

namespace findep::diversity {

/// Proposition 1: "For a κ-optimal fault-independence system, increasing
/// configuration abundance decreases entropy, unless the relative
/// configuration abundance remains identical."
///
/// Experiment form: start from the κ-optimal `base`, multiply the power
/// and abundance of configuration i by `growth[i]`, and compare entropies.
struct Prop1Result {
  double entropy_before = 0.0;
  double entropy_after = 0.0;
  /// True when the growth vector preserved relative abundance (all
  /// factors equal).
  bool relative_abundance_preserved = false;
  /// The proposition's claim: entropy_after < entropy_before unless
  /// relative abundance is preserved (then equal).
  [[nodiscard]] bool holds(double tolerance = 1e-9) const;
};

[[nodiscard]] Prop1Result check_proposition1(
    const ConfigDistribution& base, std::span<const double> growth);

/// Proposition 2: "Assuming each replica has a unique configuration,
/// having more replicas does not provide more resilience, unless the
/// relative configuration abundances are identical."
///
/// Experiment form: extend `base` with `added` extra unique configurations
/// carrying shares `added_shares` (of the *new* total). Resilience proxy is
/// entropy; the claim is that the extended system's entropy stays below
/// the κ-optimal entropy of the extended support unless uniform, and in
/// particular adding dust-weight replicas leaves entropy ≈ unchanged.
struct Prop2Result {
  double entropy_before = 0.0;
  double entropy_after = 0.0;
  double max_entropy_after = 0.0;  // log2(k_before + added)
  /// Gap to the optimum after extension; > 0 unless uniform.
  [[nodiscard]] double gap_after() const {
    return max_entropy_after - entropy_after;
  }
};

[[nodiscard]] Prop2Result check_proposition2(
    const ConfigDistribution& base, std::span<const double> added_shares);

/// Proposition 3: "Higher configuration abundance improves the resilience
/// of permissionless blockchains."
///
/// Analytic form (the Monte-Carlo form lives in faults/ and bench/): with
/// κ configurations of abundance ω and per-replica voting power 1, a
/// malicious *operator* (not a vulnerability) controls a single replica,
/// i.e. fraction 1/(κω) of the power; a vulnerability still controls a
/// whole configuration, fraction 1/κ. Returns both fractions so callers
/// can see that operator-compromise shrinks with ω while
/// vulnerability-compromise is ω-invariant.
struct Prop3Result {
  std::size_t kappa = 0;
  std::size_t omega = 0;
  double operator_fraction = 0.0;       // 1/(κω)
  double vulnerability_fraction = 0.0;  // 1/κ
  /// Messages per consensus round proportional to (κω)² for quadratic
  /// BFT — the performance cost of abundance the paper warns about.
  double relative_message_cost = 0.0;
};

[[nodiscard]] Prop3Result analyze_proposition3(std::size_t kappa,
                                               std::size_t omega);

}  // namespace findep::diversity
