// Diversity enforcement policies.
//
// Three enforcement mechanisms, matching the paper's discussion:
//  1. `LazarusStyleAssigner` — the permissioned baseline (§III-A, [2]):
//     a trusted coordinator assigns maximally-diverse configurations.
//  2. `WeightCapPolicy` — a permissionless mechanism: cap the voting
//     weight any single configuration can carry, redistributing the
//     excess pro-rata. Caps directly raise entropy/evenness at the cost
//     of discounting some honest voting power.
//  3. `TwoTierPolicy` — the paper's §V proposal: attested replicas (whose
//     configuration is known via remote attestation) receive a higher
//     voting weight than non-attested replicas, whose unknown
//     configurations must be treated as a single correlated mass in
//     worst-case analysis.
#pragma once

#include <cstddef>
#include <vector>

#include "config/sampler.h"
#include "diversity/analyzer.h"
#include "diversity/distribution.h"

namespace findep::diversity {

/// Permissioned baseline: deterministic assignment of maximally distinct
/// configurations to n replicas (round-robin over the catalog's variants).
class LazarusStyleAssigner {
 public:
  explicit LazarusStyleAssigner(const config::ComponentCatalog& catalog);

  /// Configurations for n replicas; adjacent assignments share no
  /// component while n does not exceed each kind's variety.
  [[nodiscard]] std::vector<config::ReplicaConfiguration> assign(
      std::size_t n) const;

 private:
  const config::ComponentCatalog* catalog_;
};

/// Result of applying a weight cap.
struct CappedDistribution {
  ConfigDistribution distribution;
  /// Fraction of the original voting power still counted (≤ 1).
  double retained_fraction = 1.0;
  /// Cap actually applied, as a fraction of original total power.
  double cap = 1.0;
};

/// Permissionless weight capping: every configuration's counted power is
/// min(power, cap·total). The paper's oligopoly problem (34% Foundry) is
/// exactly a cap violation.
class WeightCapPolicy {
 public:
  /// `cap_fraction` in (0, 1].
  explicit WeightCapPolicy(double cap_fraction);

  [[nodiscard]] CappedDistribution apply(
      const ConfigDistribution& dist) const;

  /// Smallest cap (searched over the distribution's distinct shares) that
  /// achieves at least `target_entropy_bits`, or the tightest achievable
  /// cap if the target is unreachable.
  [[nodiscard]] static WeightCapPolicy tightest_for_entropy(
      const ConfigDistribution& dist, double target_entropy_bits);

  [[nodiscard]] double cap_fraction() const noexcept { return cap_; }

 private:
  double cap_;
};

/// Effective voting-power view under the two-tier scheme.
struct TwoTierOutcome {
  /// Effective distribution: attested configurations individually, plus
  /// (at most) one aggregated "unknown" configuration for the
  /// non-attested mass.
  ConfigDistribution effective;
  double attested_weight = 1.0;
  /// Share of effective power held by the unknown (non-attested) mass.
  double unknown_share = 0.0;
  /// Resilience of the effective distribution at the BFT threshold.
  ResilienceSummary bft;
  /// Resilience at the honest-majority threshold.
  ResilienceSummary nakamoto;
};

/// §V: attested replicas get weight `attested_weight` ≥ 1 per unit of
/// voting power, non-attested replicas weight 1, and the non-attested mass
/// is one correlated configuration in the worst-case analysis.
class TwoTierPolicy {
 public:
  explicit TwoTierPolicy(double attested_weight);

  [[nodiscard]] TwoTierOutcome apply(
      const std::vector<ReplicaRecord>& population) const;

  [[nodiscard]] double attested_weight() const noexcept { return weight_; }

 private:
  double weight_;
};

}  // namespace findep::diversity
