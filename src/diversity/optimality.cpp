#include "diversity/optimality.h"

#include <cmath>

#include "diversity/metrics.h"
#include "support/assert.h"

namespace findep::diversity {

bool is_kappa_optimal(std::span<const double> weights, std::size_t kappa,
                      double tolerance) {
  FINDEP_REQUIRE(tolerance >= 0.0);
  double total = 0.0;
  std::size_t support = 0;
  for (const double w : weights) {
    FINDEP_REQUIRE(w >= 0.0);
    total += w;
    if (w > 0.0) ++support;
  }
  if (support != kappa || total <= 0.0) return false;
  const double expected = total / static_cast<double>(kappa);
  for (const double w : weights) {
    if (w > 0.0 && std::abs(w - expected) > tolerance * total) {
      return false;
    }
  }
  return true;
}

bool is_kappa_optimal(const ConfigDistribution& dist, std::size_t kappa,
                      double tolerance) {
  std::vector<double> weights;
  weights.reserve(dist.entries().size());
  for (const auto& e : dist.entries()) weights.push_back(e.power);
  return is_kappa_optimal(weights, kappa, tolerance);
}

std::size_t kappa_of(const ConfigDistribution& dist) {
  return dist.support_size();
}

bool is_kappa_omega_optimal(const ConfigDistribution& dist,
                            std::size_t kappa, std::size_t omega,
                            double tolerance) {
  if (!is_kappa_optimal(dist, kappa, tolerance)) return false;
  for (const auto& e : dist.entries()) {
    if (e.power > 0.0 && e.abundance != omega) return false;
  }
  return true;
}

double max_entropy_bits(std::size_t kappa) {
  FINDEP_REQUIRE(kappa > 0);
  return std::log2(static_cast<double>(kappa));
}

double optimality_gap_bits(const ConfigDistribution& dist) {
  return kl_from_uniform(dist);
}

std::size_t equivalent_uniform_configs(double entropy_bits) {
  FINDEP_REQUIRE(entropy_bits >= 0.0);
  return static_cast<std::size_t>(std::ceil(std::exp2(entropy_bits) - 1e-9));
}

}  // namespace findep::diversity
