#include "diversity/analyzer.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cmath>
#include <map>
#include <mutex>
#include <shared_mutex>
#include <sstream>
#include <unordered_map>

#include "crypto/sha256.h"
#include "diversity/metrics.h"
#include "diversity/optimality.h"
#include "support/assert.h"

namespace findep::diversity {

namespace {

/// Process-wide memo for analyze(): population digest → report. Bounded
/// by wholesale eviction — sweeps reuse a population while it is hot;
/// once the table fills, the working set has long moved on.
struct AnalyzeCache {
  static constexpr std::size_t kMaxEntries = 4096;

  struct DigestHash {
    std::size_t operator()(const crypto::Digest& d) const noexcept {
      return static_cast<std::size_t>(d.prefix64());
    }
  };

  std::shared_mutex mutex;
  std::unordered_map<crypto::Digest, DiversityReport, DigestHash> entries;
  std::atomic<std::uint64_t> hits{0};
  std::atomic<std::uint64_t> misses{0};
};

AnalyzeCache& analyze_cache() {
  static AnalyzeCache cache;
  return cache;
}

/// Identity of a population for memoization: order, configuration
/// digests, exact power bits and attestation flags all contribute.
crypto::Digest population_digest(
    const std::vector<ReplicaRecord>& population) {
  crypto::Sha256 hash;
  for (const ReplicaRecord& rec : population) {
    hash.update(rec.configuration.digest().bytes);
    hash.update_u64(std::bit_cast<std::uint64_t>(rec.power));
    hash.update_u64(rec.attested ? 1 : 0);
  }
  return hash.finish();
}

DiversityReport compute_report(const std::vector<ReplicaRecord>& population);

}  // namespace

ConfigDistribution DiversityAnalyzer::distribution_of(
    const std::vector<ReplicaRecord>& population, bool include_unattested) {
  ConfigDistribution dist;
  for (const auto& rec : population) {
    if (!rec.attested && !include_unattested) continue;
    dist.add(rec.configuration, rec.power, 1);
  }
  return dist;
}

DiversityReport DiversityAnalyzer::analyze(
    const std::vector<ReplicaRecord>& population) {
  FINDEP_REQUIRE(!population.empty());
  AnalyzeCache& cache = analyze_cache();
  const crypto::Digest key = population_digest(population);
  {
    std::shared_lock lock(cache.mutex);
    const auto it = cache.entries.find(key);
    if (it != cache.entries.end()) {
      cache.hits.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }
  cache.misses.fetch_add(1, std::memory_order_relaxed);
  DiversityReport report = compute_report(population);
  {
    std::unique_lock lock(cache.mutex);
    if (cache.entries.size() >= AnalyzeCache::kMaxEntries) {
      cache.entries.clear();
    }
    cache.entries.emplace(key, report);
  }
  return report;
}

DiversityAnalyzer::CacheStats DiversityAnalyzer::cache_stats() noexcept {
  const AnalyzeCache& cache = analyze_cache();
  return CacheStats{cache.hits.load(std::memory_order_relaxed),
                    cache.misses.load(std::memory_order_relaxed)};
}

void DiversityAnalyzer::reset_cache() noexcept {
  AnalyzeCache& cache = analyze_cache();
  std::unique_lock lock(cache.mutex);
  cache.entries.clear();
  cache.hits.store(0, std::memory_order_relaxed);
  cache.misses.store(0, std::memory_order_relaxed);
}

namespace {

DiversityReport compute_report(
    const std::vector<ReplicaRecord>& population) {
  DiversityReport report;
  report.replica_count = population.size();

  double attested_power = 0.0;
  for (const auto& rec : population) {
    FINDEP_REQUIRE(rec.power >= 0.0);
    report.total_power += rec.power;
    if (rec.attested) attested_power += rec.power;
  }
  FINDEP_REQUIRE_MSG(report.total_power > 0.0,
                     "population must carry positive voting power");
  report.attested_fraction = attested_power / report.total_power;

  const ConfigDistribution dist =
      DiversityAnalyzer::distribution_of(population);
  report.support = dist.support_size();
  report.entropy_bits = shannon_entropy(dist);
  report.max_entropy_bits = max_entropy_bits(report.support);
  report.evenness = evenness(dist);
  report.effective_configs = std::exp2(report.entropy_bits);
  report.dominance = berger_parker(dist);
  report.bft = summarize_resilience(dist, kBftThreshold);
  report.nakamoto = summarize_resilience(dist, kNakamotoThreshold);

  // Component-level exposure: aggregate power per concrete component.
  struct Acc {
    double power = 0.0;
    std::size_t replicas = 0;
    config::ComponentKind kind = config::ComponentKind::kOperatingSystem;
  };
  // Ordered maps: the worst-exposure argmax and the per-kind entropy
  // folds below consume these in iteration order, and both FP ties and
  // FP addition are order-sensitive — component-id order pins the
  // report bytes across stdlib hash implementations.
  std::map<config::ComponentId, Acc> per_component;
  std::map<config::ComponentKind, std::map<config::ComponentId, double>>
      per_kind_power;
  for (const auto& rec : population) {
    for (const config::ComponentKind kind : config::all_component_kinds()) {
      const auto comp = rec.configuration.component(kind);
      if (!comp.has_value()) continue;
      Acc& acc = per_component[*comp];
      acc.power += rec.power;
      acc.replicas += 1;
      acc.kind = kind;
      per_kind_power[kind][*comp] += rec.power;
    }
  }

  std::map<config::ComponentKind, ComponentExposure> worst_by_kind;
  for (const auto& [id, acc] : per_component) {
    ComponentExposure exp;
    exp.component = id;
    exp.kind = acc.kind;
    exp.power_fraction = acc.power / report.total_power;
    exp.replicas = acc.replicas;
    auto [it, inserted] = worst_by_kind.try_emplace(acc.kind, exp);
    if (!inserted && exp.power_fraction > it->second.power_fraction) {
      it->second = exp;
    }
    if (!report.worst_overall.has_value() ||
        exp.power_fraction > report.worst_overall->power_fraction) {
      report.worst_overall = exp;
    }
  }
  for (const config::ComponentKind kind : config::all_component_kinds()) {
    const auto it = worst_by_kind.find(kind);
    if (it != worst_by_kind.end()) {
      report.worst_per_kind.push_back(it->second);
    }
  }

  for (const auto& [kind, powers] : per_kind_power) {
    std::vector<double> weights;
    weights.reserve(powers.size());
    for (const auto& [id, p] : powers) weights.push_back(p);
    report.kind_entropy_bits[kind] = shannon_entropy(weights);
  }

  return report;
}

}  // namespace

std::string DiversityReport::to_string(
    const config::ComponentCatalog* catalog) const {
  std::ostringstream out;
  out << "diversity report: " << replica_count << " replicas, total power "
      << total_power << " (" << attested_fraction * 100.0 << "% attested)\n";
  out << "  configurations: support=" << support << "  H=" << entropy_bits
      << " bits (max " << max_entropy_bits << ", evenness " << evenness
      << ")\n";
  out << "  effective configurations (2^H): " << effective_configs
      << ", dominance (largest share): " << dominance << '\n';
  out << "  faults to break BFT 1/3: " << bft.min_faults
      << ", Nakamoto 1/2: " << nakamoto.min_faults << '\n';
  if (worst_overall.has_value()) {
    out << "  worst single component: ";
    if (catalog != nullptr) {
      out << catalog->get(worst_overall->component).display();
    } else {
      out << "component#" << worst_overall->component.value;
    }
    out << " (" << config::to_string(worst_overall->kind) << ") affects "
        << worst_overall->power_fraction * 100.0 << "% of power across "
        << worst_overall->replicas << " replicas\n";
  }
  for (const config::ComponentKind kind : config::all_component_kinds()) {
    const auto it = kind_entropy_bits.find(kind);
    if (it == kind_entropy_bits.end()) continue;
    out << "  axis " << config::to_string(kind) << ": H=" << it->second
        << " bits\n";
  }
  return out.str();
}

}  // namespace findep::diversity
