#include "diversity/distribution.h"

#include <algorithm>

#include "support/assert.h"

namespace findep::diversity {

namespace {
config::ConfigurationId synthetic_id(std::uint64_t index) {
  return crypto::Sha256{}
      .update("findep/synthetic-config/v1")
      .update_u64(index)
      .finish();
}
}  // namespace

void ConfigDistribution::add(const config::ConfigurationId& id,
                             VotingPower power, std::size_t individuals) {
  FINDEP_REQUIRE(power >= 0.0);
  const auto it = index_.find(id);
  if (it == index_.end()) {
    index_.emplace(id, entries_.size());
    entries_.push_back(ConfigEntry{id, power, individuals});
  } else {
    entries_[it->second].power += power;
    entries_[it->second].abundance += individuals;
  }
  total_ += power;
}

void ConfigDistribution::add(const config::ReplicaConfiguration& cfg,
                             VotingPower power, std::size_t individuals) {
  add(cfg.digest(), power, individuals);
}

ConfigDistribution ConfigDistribution::from_shares(
    std::span<const double> shares) {
  ConfigDistribution dist;
  for (std::size_t i = 0; i < shares.size(); ++i) {
    dist.add(synthetic_id(i), shares[i], 1);
  }
  return dist;
}

ConfigDistribution ConfigDistribution::uniform(std::size_t k,
                                               std::size_t omega,
                                               VotingPower total) {
  FINDEP_REQUIRE(k > 0);
  FINDEP_REQUIRE(omega > 0);
  FINDEP_REQUIRE(total > 0.0);
  ConfigDistribution dist;
  const VotingPower per = total / static_cast<double>(k);
  for (std::size_t i = 0; i < k; ++i) {
    dist.add(synthetic_id(i), per, omega);
  }
  return dist;
}

std::size_t ConfigDistribution::support_size() const noexcept {
  std::size_t k = 0;
  for (const auto& e : entries_) {
    if (e.power > 0.0) ++k;
  }
  return k;
}

std::size_t ConfigDistribution::total_abundance() const noexcept {
  std::size_t n = 0;
  for (const auto& e : entries_) n += e.abundance;
  return n;
}

bool ConfigDistribution::contains(const config::ConfigurationId& id) const {
  return index_.contains(id);
}

VotingPower ConfigDistribution::power_of(
    const config::ConfigurationId& id) const {
  const auto it = index_.find(id);
  return it == index_.end() ? 0.0 : entries_[it->second].power;
}

std::size_t ConfigDistribution::abundance_of(
    const config::ConfigurationId& id) const {
  const auto it = index_.find(id);
  return it == index_.end() ? 0 : entries_[it->second].abundance;
}

double ConfigDistribution::share_of(const config::ConfigurationId& id) const {
  FINDEP_REQUIRE(total_ > 0.0);
  return power_of(id) / total_;
}

std::vector<double> ConfigDistribution::shares() const {
  FINDEP_REQUIRE_MSG(total_ > 0.0, "shares need positive total power");
  std::vector<double> out;
  out.reserve(entries_.size());
  for (const auto& e : entries_) {
    if (e.power > 0.0) out.push_back(e.power / total_);
  }
  return out;
}

std::vector<ConfigEntry> ConfigDistribution::sorted_by_power() const {
  std::vector<ConfigEntry> sorted = entries_;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const ConfigEntry& a, const ConfigEntry& b) {
                     return a.power > b.power;
                   });
  return sorted;
}

void ConfigDistribution::scale(const config::ConfigurationId& id,
                               double power_factor,
                               std::size_t abundance_factor) {
  FINDEP_REQUIRE(power_factor >= 0.0);
  FINDEP_REQUIRE(abundance_factor > 0);
  const auto it = index_.find(id);
  FINDEP_REQUIRE_MSG(it != index_.end(), "unknown configuration");
  ConfigEntry& e = entries_[it->second];
  total_ -= e.power;
  e.power *= power_factor;
  e.abundance *= abundance_factor;
  total_ += e.power;
}

ConfigDistribution ConfigDistribution::normalized() const {
  FINDEP_REQUIRE(total_ > 0.0);
  ConfigDistribution out;
  for (const auto& e : entries_) {
    out.add(e.id, e.power / total_, e.abundance);
  }
  return out;
}

}  // namespace findep::diversity
