#include "diversity/propositions.h"

#include <cmath>

#include "diversity/metrics.h"
#include "diversity/optimality.h"
#include "support/assert.h"

namespace findep::diversity {

bool Prop1Result::holds(double tolerance) const {
  if (relative_abundance_preserved) {
    return std::abs(entropy_after - entropy_before) <= tolerance;
  }
  return entropy_after < entropy_before + tolerance;
}

Prop1Result check_proposition1(const ConfigDistribution& base,
                               std::span<const double> growth) {
  FINDEP_REQUIRE(growth.size() == base.entries().size());
  FINDEP_REQUIRE_MSG(
      is_kappa_optimal(base, base.support_size()),
      "Proposition 1 is stated for κ-optimal starting distributions");
  Prop1Result out;
  out.entropy_before = shannon_entropy(base);

  ConfigDistribution grown = base;
  bool preserved = true;
  double first_factor = 0.0;
  bool saw_first = false;
  for (std::size_t i = 0; i < growth.size(); ++i) {
    const double factor = growth[i];
    FINDEP_REQUIRE_MSG(factor >= 1.0,
                       "abundance growth factors must be >= 1");
    if (base.entries()[i].power <= 0.0) continue;
    if (!saw_first) {
      first_factor = factor;
      saw_first = true;
    } else if (std::abs(factor - first_factor) > 1e-12) {
      preserved = false;
    }
    grown.scale(base.entries()[i].id, factor,
                std::max<std::size_t>(
                    1, static_cast<std::size_t>(std::llround(factor))));
  }
  out.relative_abundance_preserved = preserved;
  out.entropy_after = shannon_entropy(grown);
  return out;
}

Prop2Result check_proposition2(const ConfigDistribution& base,
                               std::span<const double> added_shares) {
  Prop2Result out;
  out.entropy_before = shannon_entropy(base);

  ConfigDistribution extended = base.normalized();
  double added_total = 0.0;
  for (const double s : added_shares) {
    FINDEP_REQUIRE(s >= 0.0);
    added_total += s;
  }
  FINDEP_REQUIRE_MSG(added_total < 1.0,
                     "added shares are fractions of the new total");
  // Rescale the existing power to (1 - added_total), then append the new
  // unique configurations.
  ConfigDistribution result;
  for (const auto& e : extended.entries()) {
    result.add(e.id, e.power * (1.0 - added_total), e.abundance);
  }
  for (std::size_t i = 0; i < added_shares.size(); ++i) {
    const auto id = crypto::Sha256{}
                        .update("findep/prop2-added/v1")
                        .update_u64(i)
                        .finish();
    result.add(id, added_shares[i], 1);
  }
  out.entropy_after = shannon_entropy(result);
  out.max_entropy_after = max_entropy_bits(result.support_size());
  return out;
}

Prop3Result analyze_proposition3(std::size_t kappa, std::size_t omega) {
  FINDEP_REQUIRE(kappa > 0);
  FINDEP_REQUIRE(omega > 0);
  Prop3Result out;
  out.kappa = kappa;
  out.omega = omega;
  const double replicas = static_cast<double>(kappa * omega);
  out.operator_fraction = 1.0 / replicas;
  out.vulnerability_fraction = 1.0 / static_cast<double>(kappa);
  out.relative_message_cost = replicas * replicas;
  return out;
}

}  // namespace findep::diversity
