// The configuration distribution p = (p1, ..., pk) of §IV-A.
//
// A `ConfigDistribution` tracks, per distinct replica configuration d_i:
//   - its *voting power* (hashrate, stake, or replica count — the paper's
//     abstraction n_t),
//   - its *configuration abundance* (number of individual replicas running
//     that configuration, §IV-B).
// Relative configuration abundance (= mining-power share) is the
// normalized power vector, which is what all entropy metrics consume.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "config/replica_config.h"
#include "crypto/sha256.h"

namespace findep::diversity {

/// Voting power: replica counts, hashrate shares and stake all map onto
/// this abstraction (§II-A).
using VotingPower = double;

/// Per-configuration entry.
struct ConfigEntry {
  config::ConfigurationId id;
  VotingPower power = 0.0;
  /// Configuration abundance: individuals running this configuration.
  std::size_t abundance = 0;
};

/// A distribution of voting power over distinct replica configurations.
class ConfigDistribution {
 public:
  ConfigDistribution() = default;

  /// Adds `power` (and `individuals` replicas) to configuration `id`.
  /// Power must be non-negative.
  void add(const config::ConfigurationId& id, VotingPower power,
           std::size_t individuals = 1);

  /// Convenience for populations of concrete configurations.
  void add(const config::ReplicaConfiguration& cfg, VotingPower power,
           std::size_t individuals = 1);

  /// Builds a distribution from raw shares; synthetic configuration ids
  /// are derived from the index. Intended for literature datasets (e.g.
  /// the Example-1 mining-pool vector).
  [[nodiscard]] static ConfigDistribution from_shares(
      std::span<const double> shares);

  /// Uniform distribution over `k` synthetic configurations, each with
  /// abundance `omega` — the (κ, ω) populations of Definition 2.
  [[nodiscard]] static ConfigDistribution uniform(std::size_t k,
                                                  std::size_t omega = 1,
                                                  VotingPower total = 1.0);

  [[nodiscard]] std::size_t support_size() const noexcept;  // k' = |p'|
  [[nodiscard]] VotingPower total_power() const noexcept { return total_; }
  [[nodiscard]] std::size_t total_abundance() const noexcept;

  [[nodiscard]] bool contains(const config::ConfigurationId& id) const;
  [[nodiscard]] VotingPower power_of(const config::ConfigurationId& id) const;
  [[nodiscard]] std::size_t abundance_of(
      const config::ConfigurationId& id) const;
  /// Relative configuration abundance (share of total power) of one
  /// configuration. Requires total_power() > 0.
  [[nodiscard]] double share_of(const config::ConfigurationId& id) const;

  /// Normalized power shares of the support (nonzero entries only), in
  /// insertion order. Requires total_power() > 0.
  [[nodiscard]] std::vector<double> shares() const;

  /// Entries in insertion order (stable across runs).
  [[nodiscard]] const std::vector<ConfigEntry>& entries() const noexcept {
    return entries_;
  }

  /// Entries sorted by descending power (oligopoly view).
  [[nodiscard]] std::vector<ConfigEntry> sorted_by_power() const;

  /// Multiplies the abundance (and power proportionally, when
  /// `scale_power`) of one configuration — the abundance-scaling operation
  /// behind Proposition 1.
  void scale(const config::ConfigurationId& id, double power_factor,
             std::size_t abundance_factor);

  /// Returns a copy whose power vector is renormalized to sum to 1.
  [[nodiscard]] ConfigDistribution normalized() const;

 private:
  std::vector<ConfigEntry> entries_;
  std::unordered_map<config::ConfigurationId, std::size_t> index_;
  VotingPower total_ = 0.0;
};

}  // namespace findep::diversity
