#include "diversity/datasets.h"

#include <array>

#include "diversity/metrics.h"
#include "support/assert.h"

namespace findep::diversity::datasets {

namespace {

// Example 1, §IV-B (blockchain.com pool chart, 2023-02-02, 7-day avg).
constexpr std::array<double, kBitcoinPoolCount> kPoolShares = {
    34.239, 19.981, 12.997, 11.348, 8.826, 2.619, 2.037, 1.649, 1.358,
    1.261,  0.78,   0.68,   0.68,   0.39,  0.10,  0.10,  0.10};

constexpr std::array<std::string_view, kBitcoinPoolCount> kPoolNames = {
    "Foundry USA", "AntPool",  "F2Pool",  "Binance Pool", "ViaBTC",
    "Braiins Pool", "BTC.com", "Poolin",  "Luxor",        "SBI Crypto",
    "pool-11",      "pool-12", "pool-13", "pool-14",      "pool-15",
    "pool-16",      "pool-17"};

config::ConfigurationId pool_id(std::uint64_t index) {
  return crypto::Sha256{}
      .update("findep/bitcoin-pool/v1")
      .update_u64(index)
      .finish();
}

config::ConfigurationId residual_id(std::uint64_t index) {
  return crypto::Sha256{}
      .update("findep/bitcoin-residual-miner/v1")
      .update_u64(index)
      .finish();
}

}  // namespace

std::span<const double> bitcoin_pool_shares_percent() {
  return kPoolShares;
}

std::span<const std::string_view> bitcoin_pool_names() { return kPoolNames; }

double bitcoin_residual_percent() {
  double sum = 0.0;
  for (const double s : kPoolShares) sum += s;
  return 100.0 - sum;
}

ConfigDistribution bitcoin_best_case_distribution(
    std::size_t residual_miners) {
  FINDEP_REQUIRE(residual_miners >= 1);
  ConfigDistribution dist;
  // Best case (as in the paper): every pool has a unique configuration.
  for (std::size_t i = 0; i < kPoolShares.size(); ++i) {
    dist.add(pool_id(i), kPoolShares[i], 1);
  }
  const double residual_each =
      bitcoin_residual_percent() / static_cast<double>(residual_miners);
  for (std::size_t i = 0; i < residual_miners; ++i) {
    dist.add(residual_id(i), residual_each, 1);
  }
  return dist;
}

std::vector<double> figure1_entropy_series(std::size_t max_miners) {
  FINDEP_REQUIRE(max_miners >= 1);
  std::vector<double> series;
  series.reserve(max_miners);
  // H(x) = H(pools ∪ uniform residual). Computing it incrementally from
  // the closed form avoids rebuilding the distribution per x:
  //   H(x) = H_pools_part + r·log2(x/r_each(x)) where r is the residual
  // fraction; we just evaluate the definition directly on the share
  // vector, which is O(k + x) per point but still instant at x ≤ 1000.
  for (std::size_t x = 1; x <= max_miners; ++x) {
    series.push_back(shannon_entropy(bitcoin_best_case_distribution(x)));
  }
  return series;
}

}  // namespace findep::diversity::datasets
