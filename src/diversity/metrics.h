// Diversity metrics over configuration distributions (§IV-A).
//
// The paper proposes Shannon entropy as the replica-diversity measure; we
// implement it (in bits, so "8 uniform replicas ⇒ H = 3" as in Example 1)
// together with the standard ecology companions — Rényi spectra, Hill
// numbers ("effective number of configurations"), Simpson/Gini–Simpson and
// the Berger–Parker dominance index — which the paper's abundance
// discussion (§IV-B) borrows its vocabulary from.
//
// All functions accept either a raw share vector (need not be normalized;
// zero entries are skipped, matching the paper's convention log(1/0) := 0)
// or a `ConfigDistribution`.
#pragma once

#include <span>

#include "diversity/distribution.h"

namespace findep::diversity {

/// Shannon entropy in bits: H(p) = −Σ p_i log2 p_i.
/// Requires all weights ≥ 0 and a positive sum; weights are normalized
/// internally, zero weights contribute 0.
[[nodiscard]] double shannon_entropy(std::span<const double> weights);
[[nodiscard]] double shannon_entropy(const ConfigDistribution& dist);

/// H(p) / log2 k over the support size k (Pielou evenness); 1 for uniform.
/// Defined as 1 when k == 1.
[[nodiscard]] double evenness(std::span<const double> weights);
[[nodiscard]] double evenness(const ConfigDistribution& dist);

/// Rényi entropy of order alpha (alpha ≥ 0, alpha ≠ 1; alpha == 1 is
/// handled as the Shannon limit). In bits.
[[nodiscard]] double renyi_entropy(std::span<const double> weights,
                                   double alpha);

/// Hill number of order q: the "effective number of configurations".
/// q = 0: support size; q = 1: 2^H; q = 2: 1/Σp_i²; q → ∞: 1/max p_i.
[[nodiscard]] double hill_number(std::span<const double> weights, double q);
[[nodiscard]] double hill_number(const ConfigDistribution& dist, double q);

/// Simpson concentration Σ p_i² (probability two random voting-power
/// units share a configuration — i.e. share every fault domain).
[[nodiscard]] double simpson_index(std::span<const double> weights);

/// Gini–Simpson diversity 1 − Σ p_i².
[[nodiscard]] double gini_simpson(std::span<const double> weights);

/// Berger–Parker dominance: the largest share (the paper's "oligopoly"
/// indicator — 0.34 for Foundry USA in Example 1).
[[nodiscard]] double berger_parker(std::span<const double> weights);
[[nodiscard]] double berger_parker(const ConfigDistribution& dist);

/// Kullback–Leibler divergence (bits) from `p` to the uniform distribution
/// on p's support: log2 k − H(p). Zero iff p is uniform on its support —
/// the "distance to κ-optimality" used throughout the experiments.
[[nodiscard]] double kl_from_uniform(std::span<const double> weights);
[[nodiscard]] double kl_from_uniform(const ConfigDistribution& dist);

}  // namespace findep::diversity
