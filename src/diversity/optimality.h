// Definition 1 (κ-optimal fault independence) and Definition 2
// ((κ, ω)-optimal resilience) as executable predicates, plus gap metrics
// quantifying how far a real distribution is from optimal.
#pragma once

#include <cstddef>
#include <span>

#include "diversity/distribution.h"

namespace findep::diversity {

/// Tolerance used when comparing floating-point shares for equality.
inline constexpr double kShareTolerance = 1e-9;

/// Definition 1: p achieves κ-optimal fault independence iff its support
/// has exactly κ configurations and all nonzero shares are equal.
[[nodiscard]] bool is_kappa_optimal(std::span<const double> weights,
                                    std::size_t kappa,
                                    double tolerance = kShareTolerance);
[[nodiscard]] bool is_kappa_optimal(const ConfigDistribution& dist,
                                    std::size_t kappa,
                                    double tolerance = kShareTolerance);

/// The κ for which the distribution *could* be κ-optimal: its support
/// size. (The distribution is actually κ-optimal only if also uniform.)
[[nodiscard]] std::size_t kappa_of(const ConfigDistribution& dist);

/// Definition 2: κ-optimal fault independence with configuration abundance
/// exactly ω for every configuration in the support.
[[nodiscard]] bool is_kappa_omega_optimal(const ConfigDistribution& dist,
                                          std::size_t kappa,
                                          std::size_t omega,
                                          double tolerance = kShareTolerance);

/// Maximum achievable entropy for a support of size κ: log2 κ bits.
[[nodiscard]] double max_entropy_bits(std::size_t kappa);

/// Entropy shortfall of the distribution relative to κ-optimality on its
/// own support: log2 k' − H(p) ≥ 0 (equals kl_from_uniform).
[[nodiscard]] double optimality_gap_bits(const ConfigDistribution& dist);

/// Smallest number of configurations whose uniform distribution reaches at
/// least the given entropy: κ_min = ceil(2^H). This is the paper's
/// Example-1 comparison direction — "Bitcoin's entropy < 3 means it is no
/// more diverse than a κ-optimal system with 8 configurations".
[[nodiscard]] std::size_t equivalent_uniform_configs(double entropy_bits);

}  // namespace findep::diversity
