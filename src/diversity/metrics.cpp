#include "diversity/metrics.h"

#include <algorithm>
#include <cmath>

#include "support/assert.h"

namespace findep::diversity {

namespace {

/// Validates weights and returns their sum (> 0).
double checked_total(std::span<const double> weights) {
  FINDEP_REQUIRE(!weights.empty());
  double total = 0.0;
  for (const double w : weights) {
    FINDEP_REQUIRE_MSG(w >= 0.0, "weights must be non-negative");
    total += w;
  }
  FINDEP_REQUIRE_MSG(total > 0.0, "weights must have a positive sum");
  return total;
}

std::size_t support_of(std::span<const double> weights) {
  std::size_t k = 0;
  for (const double w : weights) {
    if (w > 0.0) ++k;
  }
  return k;
}

}  // namespace

double shannon_entropy(std::span<const double> weights) {
  const double total = checked_total(weights);
  double h = 0.0;
  for (const double w : weights) {
    if (w <= 0.0) continue;  // p log(1/p) := 0 at p = 0 (§IV-A)
    const double p = w / total;
    h -= p * std::log2(p);
  }
  return h;
}

double shannon_entropy(const ConfigDistribution& dist) {
  return shannon_entropy(dist.shares());
}

double evenness(std::span<const double> weights) {
  const std::size_t k = support_of(weights);
  FINDEP_REQUIRE(k > 0);
  if (k == 1) return 1.0;
  return shannon_entropy(weights) / std::log2(static_cast<double>(k));
}

double evenness(const ConfigDistribution& dist) {
  return evenness(dist.shares());
}

double renyi_entropy(std::span<const double> weights, double alpha) {
  FINDEP_REQUIRE(alpha >= 0.0);
  if (std::abs(alpha - 1.0) < 1e-12) return shannon_entropy(weights);
  const double total = checked_total(weights);
  if (alpha == 0.0) {
    return std::log2(static_cast<double>(support_of(weights)));
  }
  double sum = 0.0;
  for (const double w : weights) {
    if (w <= 0.0) continue;
    sum += std::pow(w / total, alpha);
  }
  return std::log2(sum) / (1.0 - alpha);
}

double hill_number(std::span<const double> weights, double q) {
  FINDEP_REQUIRE(q >= 0.0);
  return std::exp2(renyi_entropy(weights, q));
}

double hill_number(const ConfigDistribution& dist, double q) {
  return hill_number(dist.shares(), q);
}

double simpson_index(std::span<const double> weights) {
  const double total = checked_total(weights);
  double sum = 0.0;
  for (const double w : weights) {
    const double p = w / total;
    sum += p * p;
  }
  return sum;
}

double gini_simpson(std::span<const double> weights) {
  return 1.0 - simpson_index(weights);
}

double berger_parker(std::span<const double> weights) {
  const double total = checked_total(weights);
  double max_w = 0.0;
  for (const double w : weights) max_w = std::max(max_w, w);
  return max_w / total;
}

double berger_parker(const ConfigDistribution& dist) {
  return berger_parker(dist.shares());
}

double kl_from_uniform(std::span<const double> weights) {
  const std::size_t k = support_of(weights);
  FINDEP_REQUIRE(k > 0);
  return std::log2(static_cast<double>(k)) - shannon_entropy(weights);
}

double kl_from_uniform(const ConfigDistribution& dist) {
  return kl_from_uniform(dist.shares());
}

}  // namespace findep::diversity
