// Literature datasets used by the paper's evaluation.
//
// Example 1 / Figure 1 are computed from the Bitcoin mining-pool power
// distribution observed on blockchain.com on 2023-02-02 (7-day average):
// 17 pools holding 99.13% of the hashrate. The share vector below is the
// one printed in the paper, in the paper's order (Foundry USA first).
#pragma once

#include <cstddef>
#include <span>
#include <string_view>
#include <vector>

#include "diversity/distribution.h"

namespace findep::diversity::datasets {

/// Number of named pools in the Example-1 snapshot.
inline constexpr std::size_t kBitcoinPoolCount = 17;

/// The 17 pool shares, in percent of total network hashrate, exactly as
/// printed in Example 1. They sum to ≈99.145% (the paper rounds the
/// residual to 0.87%); `bitcoin_residual_percent()` returns the exact
/// complement so totals always sum to 100%.
[[nodiscard]] std::span<const double> bitcoin_pool_shares_percent();

/// Display names for the pools (top-10 names from the cited chart; the
/// tail entries are labeled pool-11..pool-17 as the paper does not name
/// them).
[[nodiscard]] std::span<const std::string_view> bitcoin_pool_names();

/// 100 − Σ shares: the unattributed hashrate (paper: "the rest 0.87%").
[[nodiscard]] double bitcoin_residual_percent();

/// The Figure-1 distribution: the 17 pools plus the residual hashrate
/// split uniformly over `residual_miners` additional unique
/// configurations. `residual_miners` ranges over 1..1000 in the figure.
[[nodiscard]] ConfigDistribution bitcoin_best_case_distribution(
    std::size_t residual_miners);

/// Entropy series for Figure 1: H(x) for x in [1, max_miners].
/// Index i holds H(i + 1... ); entry j corresponds to x = j + 1.
[[nodiscard]] std::vector<double> figure1_entropy_series(
    std::size_t max_miners);

}  // namespace findep::diversity::datasets
