#include "diversity/manager.h"

#include <algorithm>
#include <cmath>

#include "diversity/metrics.h"
#include "support/assert.h"

namespace findep::diversity {

LazarusStyleAssigner::LazarusStyleAssigner(
    const config::ComponentCatalog& catalog)
    : catalog_(&catalog) {}

std::vector<config::ReplicaConfiguration> LazarusStyleAssigner::assign(
    std::size_t n) const {
  config::ConfigurationSampler sampler(*catalog_, config::SamplerOptions{});
  return sampler.distinct_configurations(n);
}

WeightCapPolicy::WeightCapPolicy(double cap_fraction) : cap_(cap_fraction) {
  FINDEP_REQUIRE(cap_fraction > 0.0 && cap_fraction <= 1.0);
}

CappedDistribution WeightCapPolicy::apply(
    const ConfigDistribution& dist) const {
  FINDEP_REQUIRE(dist.total_power() > 0.0);
  CappedDistribution out;
  out.cap = cap_;
  const double cap_power = cap_ * dist.total_power();
  double retained = 0.0;
  for (const auto& e : dist.entries()) {
    const double counted = std::min(e.power, cap_power);
    retained += counted;
    if (counted > 0.0) {
      out.distribution.add(e.id, counted, e.abundance);
    }
  }
  out.retained_fraction = retained / dist.total_power();
  return out;
}

WeightCapPolicy WeightCapPolicy::tightest_for_entropy(
    const ConfigDistribution& dist, double target_entropy_bits) {
  FINDEP_REQUIRE(target_entropy_bits >= 0.0);
  // Candidate caps are the distinct shares themselves (capping between two
  // consecutive shares behaves like capping at the lower one) plus 1.
  std::vector<double> candidates = dist.shares();
  candidates.push_back(1.0);
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());

  WeightCapPolicy best(1.0);
  double best_entropy = -1.0;
  // Scan from loosest (1.0) to tightest; remember the loosest cap that
  // meets the target, else the cap with the highest entropy.
  for (auto it = candidates.rbegin(); it != candidates.rend(); ++it) {
    if (*it <= 0.0) continue;
    const WeightCapPolicy policy(*it);
    const double h = shannon_entropy(policy.apply(dist).distribution);
    if (h >= target_entropy_bits) {
      return policy;  // loosest sufficient cap
    }
    if (h > best_entropy) {
      best_entropy = h;
      best = policy;
    }
  }
  return best;
}

TwoTierPolicy::TwoTierPolicy(double attested_weight)
    : weight_(attested_weight) {
  FINDEP_REQUIRE(attested_weight >= 1.0);
}

TwoTierOutcome TwoTierPolicy::apply(
    const std::vector<ReplicaRecord>& population) const {
  FINDEP_REQUIRE(!population.empty());
  TwoTierOutcome out;
  out.attested_weight = weight_;

  double unknown_power = 0.0;
  std::size_t unknown_count = 0;
  for (const auto& rec : population) {
    FINDEP_REQUIRE(rec.power >= 0.0);
    if (rec.attested) {
      out.effective.add(rec.configuration, rec.power * weight_, 1);
    } else {
      unknown_power += rec.power;  // weight 1
      ++unknown_count;
    }
  }
  if (unknown_power > 0.0) {
    // One correlated mass: without attestation we cannot rule out that all
    // non-attested replicas share a configuration (worst case, §V).
    const auto unknown_id = crypto::Sha256{}
                                .update("findep/two-tier-unknown/v1")
                                .finish();
    out.effective.add(unknown_id, unknown_power,
                      std::max<std::size_t>(1, unknown_count));
  }
  FINDEP_REQUIRE_MSG(out.effective.total_power() > 0.0,
                     "population carries no voting power");
  out.unknown_share = unknown_power / out.effective.total_power();
  out.bft = summarize_resilience(out.effective, kBftThreshold);
  out.nakamoto = summarize_resilience(out.effective, kNakamotoThreshold);
  return out;
}

}  // namespace findep::diversity
