// Fault injection: who falls when a vulnerability is exploited.
//
// The injector maps exploited vulnerabilities onto a replica population:
// every replica whose configuration contains the vulnerable component is
// compromised (subject to the exploit's per-replica success probability).
// This realizes the paper's correlated-failure mechanism — "a single fault
// affecting multiple machines" (§I) — and provides the Monte-Carlo
// machinery behind the safety-condition experiments.
#pragma once

#include <cstdint>
#include <vector>

#include "diversity/analyzer.h"
#include "faults/vulnerability.h"

namespace findep::faults {

/// Result of injecting a set of faults into a population.
struct CompromiseResult {
  /// Indices (into the population) of compromised replicas.
  std::vector<std::size_t> compromised;
  /// Total voting power compromised.
  double compromised_power = 0.0;
  /// Fraction of total population power compromised — the Σ f_t^i of the
  /// safety condition, normalized.
  double compromised_fraction = 0.0;
  /// Number of distinct faults that contributed (k_t).
  std::size_t faults_used = 0;

  [[nodiscard]] bool breaks(double threshold) const noexcept {
    return compromised_fraction > threshold;
  }
};

/// Injects component faults into a fixed population.
class FaultInjector {
 public:
  explicit FaultInjector(std::vector<diversity::ReplicaRecord> population);

  [[nodiscard]] const std::vector<diversity::ReplicaRecord>& population()
      const noexcept {
    return population_;
  }
  [[nodiscard]] double total_power() const noexcept { return total_power_; }

  /// Deterministic worst-case: compromise every replica exposed to any of
  /// `components` (exploitability treated as 1).
  [[nodiscard]] CompromiseResult inject_components(
      std::span<const config::ComponentId> components) const;

  /// Stochastic: exploit the given vulnerabilities at time `t`; a replica
  /// exposed to an open vulnerability falls with that vulnerability's
  /// exploitability.
  [[nodiscard]] CompromiseResult inject_vulnerabilities(
      const VulnerabilityCatalog& catalog, std::span<const VulnId> vulns,
      double t, support::Rng& rng) const;

  /// Greedy worst-case attacker with a budget of `k` component faults:
  /// repeatedly exploits the component adding the most not-yet-compromised
  /// power. (Optimal coverage is NP-hard; greedy gives the standard
  /// (1−1/e) guarantee and matches how the paper reasons about top-k
  /// shares.)
  [[nodiscard]] CompromiseResult worst_case_components(std::size_t k) const;

  /// Monte-Carlo probability that `k` *uniformly random distinct*
  /// component faults (among components actually present in the
  /// population) compromise more than `threshold` of the power.
  [[nodiscard]] double break_probability(std::size_t k, double threshold,
                                         std::size_t trials,
                                         support::Rng& rng) const;

  /// Components present in the population (deduplicated).
  [[nodiscard]] const std::vector<config::ComponentId>& present_components()
      const noexcept {
    return components_;
  }

 private:
  [[nodiscard]] CompromiseResult finalize(
      std::vector<bool>& hit, std::size_t faults_used) const;

  std::vector<diversity::ReplicaRecord> population_;
  double total_power_ = 0.0;
  std::vector<config::ComponentId> components_;
  /// exposure_[c] = indices of replicas exposed to component c (by dense
  /// position in components_).
  std::vector<std::vector<std::size_t>> exposure_;
};

}  // namespace findep::faults
