// Adversary models (§II-B, §IV-B discussion of Proposition 3).
//
// Two root causes of Byzantine replicas, with different relationships to
// configuration abundance ω:
//  - *Vulnerability adversary*: compromises components; gets every replica
//    sharing the component. More abundance does NOT help against it.
//  - *Malicious-operator adversary*: operators turn coin — each defection
//    yields exactly the operator's own replicas, independent of who else
//    runs the same configuration. Higher abundance (more independent
//    operators per configuration) dilutes each defection — this is what
//    Proposition 3 claims.
// The hybrid adversary composes both under one budget.
#pragma once

#include <span>
#include <vector>

#include "faults/injector.h"

namespace findep::faults {

/// Identifies which operator (administrative domain) runs each replica.
/// Replicas with the same operator defect together (mining-pool model).
using OperatorId = std::uint32_t;

/// A population annotated with operators.
struct OperatedPopulation {
  std::vector<diversity::ReplicaRecord> replicas;
  /// operator_of[i] = operator of replicas[i]. Same size as `replicas`.
  std::vector<OperatorId> operator_of;
};

/// Budgeted vulnerability adversary: exploits up to `budget` component
/// faults, chosen worst-case (greedy max-coverage).
struct VulnerabilityAdversary {
  std::size_t budget = 1;

  [[nodiscard]] CompromiseResult attack(const FaultInjector& injector) const {
    return injector.worst_case_components(budget);
  }
};

/// Budgeted malicious-operator adversary: corrupts up to `budget`
/// operators, chosen worst-case (richest operators first).
struct OperatorAdversary {
  std::size_t budget = 1;

  [[nodiscard]] CompromiseResult attack(const OperatedPopulation& pop) const;
};

/// Hybrid: splits the budget between component faults and operator
/// corruption, taking the best split (exhaustive over the budget, which is
/// small in all experiments).
struct HybridAdversary {
  std::size_t budget = 2;

  [[nodiscard]] CompromiseResult attack(const FaultInjector& injector,
                                        const OperatedPopulation& pop) const;
};

}  // namespace findep::faults
