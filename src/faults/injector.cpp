#include "faults/injector.h"

#include <algorithm>
#include <unordered_map>

#include "support/assert.h"

namespace findep::faults {

FaultInjector::FaultInjector(
    std::vector<diversity::ReplicaRecord> population)
    : population_(std::move(population)) {
  FINDEP_REQUIRE(!population_.empty());
  std::unordered_map<config::ComponentId, std::size_t> index;
  for (std::size_t r = 0; r < population_.size(); ++r) {
    const auto& rec = population_[r];
    FINDEP_REQUIRE(rec.power >= 0.0);
    total_power_ += rec.power;
    for (const config::ComponentId comp : rec.configuration.components()) {
      const auto [it, inserted] = index.try_emplace(comp, components_.size());
      if (inserted) {
        components_.push_back(comp);
        exposure_.emplace_back();
      }
      exposure_[it->second].push_back(r);
    }
  }
  FINDEP_REQUIRE_MSG(total_power_ > 0.0,
                     "population must carry positive voting power");
}

CompromiseResult FaultInjector::finalize(std::vector<bool>& hit,
                                         std::size_t faults_used) const {
  CompromiseResult out;
  out.faults_used = faults_used;
  for (std::size_t r = 0; r < population_.size(); ++r) {
    if (!hit[r]) continue;
    out.compromised.push_back(r);
    out.compromised_power += population_[r].power;
  }
  out.compromised_fraction = out.compromised_power / total_power_;
  return out;
}

CompromiseResult FaultInjector::inject_components(
    std::span<const config::ComponentId> components) const {
  std::vector<bool> hit(population_.size(), false);
  std::size_t used = 0;
  for (const config::ComponentId target : components) {
    const auto it = std::find(components_.begin(), components_.end(), target);
    ++used;
    if (it == components_.end()) continue;  // component not in population
    const auto dense = static_cast<std::size_t>(it - components_.begin());
    for (const std::size_t r : exposure_[dense]) hit[r] = true;
  }
  return finalize(hit, used);
}

CompromiseResult FaultInjector::inject_vulnerabilities(
    const VulnerabilityCatalog& catalog, std::span<const VulnId> vulns,
    double t, support::Rng& rng) const {
  std::vector<bool> hit(population_.size(), false);
  std::size_t used = 0;
  for (const VulnId vid : vulns) {
    const Vulnerability& v = catalog.get(vid);
    if (!v.window_open(t)) continue;
    const auto it =
        std::find(components_.begin(), components_.end(), v.component);
    ++used;
    if (it == components_.end()) continue;
    const auto dense = static_cast<std::size_t>(it - components_.begin());
    for (const std::size_t r : exposure_[dense]) {
      if (hit[r]) continue;
      if (rng.chance(v.exploitability)) hit[r] = true;
    }
  }
  return finalize(hit, used);
}

CompromiseResult FaultInjector::worst_case_components(std::size_t k) const {
  std::vector<bool> hit(population_.size(), false);
  std::vector<bool> used_component(components_.size(), false);
  std::size_t used = 0;

  for (std::size_t round = 0; round < k; ++round) {
    double best_gain = -1.0;
    std::size_t best = components_.size();
    for (std::size_t c = 0; c < components_.size(); ++c) {
      if (used_component[c]) continue;
      double gain = 0.0;
      for (const std::size_t r : exposure_[c]) {
        if (!hit[r]) gain += population_[r].power;
      }
      if (gain > best_gain) {
        best_gain = gain;
        best = c;
      }
    }
    if (best == components_.size() || best_gain <= 0.0) break;
    used_component[best] = true;
    ++used;
    for (const std::size_t r : exposure_[best]) hit[r] = true;
  }
  return finalize(hit, used);
}

double FaultInjector::break_probability(std::size_t k, double threshold,
                                        std::size_t trials,
                                        support::Rng& rng) const {
  FINDEP_REQUIRE(trials > 0);
  const std::size_t pool = components_.size();
  const std::size_t draw = std::min(k, pool);
  std::size_t breaks = 0;
  for (std::size_t trial = 0; trial < trials; ++trial) {
    const std::vector<std::size_t> picks = rng.sample_indices(pool, draw);
    std::vector<bool> hit(population_.size(), false);
    for (const std::size_t c : picks) {
      for (const std::size_t r : exposure_[c]) hit[r] = true;
    }
    double power = 0.0;
    for (std::size_t r = 0; r < population_.size(); ++r) {
      if (hit[r]) power += population_[r].power;
    }
    if (power / total_power_ > threshold) ++breaks;
  }
  return static_cast<double>(breaks) / static_cast<double>(trials);
}

}  // namespace findep::faults
