// Proactive recovery / software rejuvenation.
//
// §III-A points to proactive security and self-stabilization as ways to
// reduce the risk of long-lived compromise when N-version diversity of
// the consensus module is too expensive. We model the classic mechanism
// (PBFT-PR, Sousa et al., SPARE): every replica is periodically
// re-provisioned from a clean image with all released patches applied —
// which ends any standing compromise and closes its exposure window at
// the next recovery boundary. The experiment question: how short must the
// recovery period be to keep Σ f_t^i below the tolerated bound, compared
// against patch-lag-only operation?
#pragma once

#include "faults/windows.h"

namespace findep::faults {

/// Proactive-recovery schedule: replica r is re-provisioned at times
/// offset_r + k·period (offsets staggered uniformly so the system never
/// loses a large weight fraction to simultaneous reboots).
struct RecoverySchedule {
  /// Days between recoveries of one replica. Infinity = no recovery.
  double period_days = 30.0;
  /// Staggering: replica r's offset is (r / n) · period.
  bool staggered = true;
};

/// Exposure timeline when proactive recovery is active: per (replica,
/// vulnerability), exposure starts at the vulnerability's discovery and
/// ends at the *earliest* of (patch release + deploy lag) and (the first
/// recovery boundary after exposure starts — recovery re-provisions with
/// current patches, and a recovered replica is only re-exposed if the
/// vulnerability is still unpatched at recovery time, until its next
/// boundary or the patch).
[[nodiscard]] ExposureTimeline compute_exposure_with_recovery(
    const std::vector<diversity::ReplicaRecord>& population,
    const VulnerabilityCatalog& catalog, double horizon_days,
    std::size_t samples, const PatchLagModel& patching,
    const RecoverySchedule& recovery);

}  // namespace findep::faults
