// Vulnerability-window analysis (§I, Remark 1).
//
// "Even though vulnerabilities can be patched, there exists a
// vulnerability window due to the latency in patching" — attacks happen
// inside these windows. This module turns a vulnerability catalog plus a
// replica population into a timeline of exposed voting power, the k_t
// process (number of simultaneously open vulnerabilities) and the peak of
// Σ f_t^i, which is what the safety condition bounds.
#pragma once

#include <vector>

#include "faults/injector.h"
#include "faults/vulnerability.h"

namespace findep::faults {

/// Per-replica patching behaviour: the replica applies a patch
/// `deploy_lag` days after the patch is released. Sampled per (replica,
/// vulnerability) from an exponential with the given mean.
struct PatchLagModel {
  double mean_deploy_lag_days = 7.0;
  std::uint64_t seed = 7;
};

/// One sample point of the exposure timeline.
struct ExposurePoint {
  double t = 0.0;
  /// Number of vulnerabilities whose windows are open (k_t).
  std::size_t open_vulnerabilities = 0;
  /// Worst-case fraction of voting power an attacker exploiting all open
  /// vulnerabilities controls at t (Σ f_t^i, deduplicated per replica).
  double exposed_fraction = 0.0;
};

struct ExposureTimeline {
  std::vector<ExposurePoint> points;
  double peak_exposed_fraction = 0.0;
  double peak_time = 0.0;
  std::size_t peak_open_vulnerabilities = 0;
  /// Fraction of sampled time where exposure exceeded the threshold.
  double time_above_bft_threshold = 0.0;
  double time_above_majority_threshold = 0.0;
};

/// Computes the exposure timeline on a uniform grid of `samples` points
/// over [0, horizon_days]. Per-replica deploy lags extend each
/// vulnerability's per-replica window beyond `patched_at`.
[[nodiscard]] ExposureTimeline compute_exposure(
    const std::vector<diversity::ReplicaRecord>& population,
    const VulnerabilityCatalog& catalog, double horizon_days,
    std::size_t samples, const PatchLagModel& patching);

}  // namespace findep::faults
