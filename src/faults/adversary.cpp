#include "faults/adversary.h"

#include <algorithm>
#include <numeric>
#include <unordered_map>
#include <unordered_set>

#include "support/assert.h"

namespace findep::faults {

CompromiseResult OperatorAdversary::attack(
    const OperatedPopulation& pop) const {
  FINDEP_REQUIRE(pop.replicas.size() == pop.operator_of.size());
  FINDEP_REQUIRE(!pop.replicas.empty());

  double total = 0.0;
  std::unordered_map<OperatorId, double> power_of_operator;
  for (std::size_t i = 0; i < pop.replicas.size(); ++i) {
    total += pop.replicas[i].power;
    power_of_operator[pop.operator_of[i]] += pop.replicas[i].power;
  }
  FINDEP_REQUIRE(total > 0.0);

  // findep-lint: allow(unordered-iteration) -- materialization-only walk; `ranked` is sorted with a total order (power desc, id asc) right below
  std::vector<std::pair<OperatorId, double>> ranked(power_of_operator.begin(),
                                                    power_of_operator.end());
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;  // deterministic tie-break
  });

  std::unordered_set<OperatorId> corrupted;
  const std::size_t take = std::min(budget, ranked.size());
  for (std::size_t i = 0; i < take; ++i) corrupted.insert(ranked[i].first);

  CompromiseResult out;
  out.faults_used = take;
  for (std::size_t i = 0; i < pop.replicas.size(); ++i) {
    if (corrupted.contains(pop.operator_of[i])) {
      out.compromised.push_back(i);
      out.compromised_power += pop.replicas[i].power;
    }
  }
  out.compromised_fraction = out.compromised_power / total;
  return out;
}

CompromiseResult HybridAdversary::attack(
    const FaultInjector& injector, const OperatedPopulation& pop) const {
  FINDEP_REQUIRE(pop.replicas.size() == pop.operator_of.size());
  CompromiseResult best;
  for (std::size_t vuln_budget = 0; vuln_budget <= budget; ++vuln_budget) {
    const std::size_t op_budget = budget - vuln_budget;
    const CompromiseResult vuln_part =
        injector.worst_case_components(vuln_budget);
    const CompromiseResult op_part =
        OperatorAdversary{op_budget}.attack(pop);

    // Union the two compromised sets (a replica may be hit twice).
    std::vector<bool> hit(pop.replicas.size(), false);
    for (const std::size_t r : vuln_part.compromised) hit[r] = true;
    for (const std::size_t r : op_part.compromised) hit[r] = true;

    CompromiseResult combined;
    combined.faults_used = vuln_part.faults_used + op_part.faults_used;
    double total = 0.0;
    for (std::size_t r = 0; r < pop.replicas.size(); ++r) {
      total += pop.replicas[r].power;
      if (hit[r]) {
        combined.compromised.push_back(r);
        combined.compromised_power += pop.replicas[r].power;
      }
    }
    combined.compromised_fraction = combined.compromised_power / total;
    if (combined.compromised_fraction > best.compromised_fraction) {
      best = std::move(combined);
    }
  }
  return best;
}

}  // namespace findep::faults
