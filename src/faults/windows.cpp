#include "faults/windows.h"

#include <algorithm>

#include "diversity/resilience.h"
#include "support/assert.h"

namespace findep::faults {

ExposureTimeline compute_exposure(
    const std::vector<diversity::ReplicaRecord>& population,
    const VulnerabilityCatalog& catalog, double horizon_days,
    std::size_t samples, const PatchLagModel& patching) {
  FINDEP_REQUIRE(!population.empty());
  FINDEP_REQUIRE(horizon_days > 0.0);
  FINDEP_REQUIRE(samples >= 2);

  double total_power = 0.0;
  for (const auto& rec : population) total_power += rec.power;
  FINDEP_REQUIRE(total_power > 0.0);

  // Pre-compute, per vulnerability, which replicas are exposed and until
  // when (patch release + per-replica deploy lag).
  support::Rng rng(patching.seed);
  struct PerVuln {
    double open_from = 0.0;
    double open_until_global = 0.0;  // patch release
    std::vector<std::size_t> replicas;
    std::vector<double> replica_until;  // patched_at + deploy lag
  };
  std::vector<PerVuln> windows;
  windows.reserve(catalog.size());
  for (const Vulnerability& v : catalog.all()) {
    PerVuln w;
    w.open_from = v.discovered_at;
    w.open_until_global = v.patched_at;
    for (std::size_t r = 0; r < population.size(); ++r) {
      const auto comp =
          population[r].configuration.components();
      if (std::find(comp.begin(), comp.end(), v.component) == comp.end()) {
        continue;
      }
      w.replicas.push_back(r);
      w.replica_until.push_back(
          v.patched_at +
          rng.exponential(1.0 / patching.mean_deploy_lag_days));
    }
    windows.push_back(std::move(w));
  }

  ExposureTimeline timeline;
  timeline.points.reserve(samples);
  std::size_t above_bft = 0;
  std::size_t above_majority = 0;

  for (std::size_t s = 0; s < samples; ++s) {
    const double t = horizon_days * static_cast<double>(s) /
                     static_cast<double>(samples - 1);
    ExposurePoint point;
    point.t = t;
    std::vector<bool> hit(population.size(), false);
    for (const PerVuln& w : windows) {
      if (t < w.open_from) continue;
      bool any_open = false;
      for (std::size_t i = 0; i < w.replicas.size(); ++i) {
        if (t < w.replica_until[i]) {
          hit[w.replicas[i]] = true;
          any_open = true;
        }
      }
      // A vulnerability counts as open while any replica remains unpatched
      // (or, with no exposed replicas, while the global window is open).
      if (any_open || (w.replicas.empty() && t < w.open_until_global)) {
        ++point.open_vulnerabilities;
      }
    }
    double exposed = 0.0;
    for (std::size_t r = 0; r < population.size(); ++r) {
      if (hit[r]) exposed += population[r].power;
    }
    point.exposed_fraction = exposed / total_power;
    if (point.exposed_fraction > timeline.peak_exposed_fraction) {
      timeline.peak_exposed_fraction = point.exposed_fraction;
      timeline.peak_time = t;
    }
    timeline.peak_open_vulnerabilities = std::max(
        timeline.peak_open_vulnerabilities, point.open_vulnerabilities);
    if (point.exposed_fraction > diversity::kBftThreshold) ++above_bft;
    if (point.exposed_fraction > diversity::kNakamotoThreshold) {
      ++above_majority;
    }
    timeline.points.push_back(point);
  }
  timeline.time_above_bft_threshold =
      static_cast<double>(above_bft) / static_cast<double>(samples);
  timeline.time_above_majority_threshold =
      static_cast<double>(above_majority) / static_cast<double>(samples);
  return timeline;
}

}  // namespace findep::faults
