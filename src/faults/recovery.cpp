#include "faults/recovery.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "diversity/resilience.h"
#include "support/assert.h"

namespace findep::faults {

namespace {

/// First recovery boundary of a replica at or after time t.
double next_recovery(double t, double offset, double period) {
  if (t <= offset) return offset;
  const double k = std::ceil((t - offset) / period);
  return offset + k * period;
}

}  // namespace

ExposureTimeline compute_exposure_with_recovery(
    const std::vector<diversity::ReplicaRecord>& population,
    const VulnerabilityCatalog& catalog, double horizon_days,
    std::size_t samples, const PatchLagModel& patching,
    const RecoverySchedule& recovery) {
  FINDEP_REQUIRE(!population.empty());
  FINDEP_REQUIRE(horizon_days > 0.0);
  FINDEP_REQUIRE(samples >= 2);
  FINDEP_REQUIRE(recovery.period_days > 0.0);

  double total_power = 0.0;
  for (const auto& rec : population) total_power += rec.power;
  FINDEP_REQUIRE(total_power > 0.0);

  const auto offset_of = [&](std::size_t r) {
    if (!recovery.staggered) return 0.0;
    return recovery.period_days * static_cast<double>(r) /
           static_cast<double>(population.size());
  };

  // Per (vulnerability, exposed replica): window [discovered_at, until).
  // Without recovery, until = patch release + deploy lag. Recovery
  // re-provisions with all *released* patches, so the first boundary at
  // or after the patch release also ends the window. Boundaries before
  // the patch evict the attacker but re-exploitation follows immediately
  // — we conservatively grant no pre-patch benefit.
  support::Rng rng(patching.seed);
  struct Window {
    std::size_t vulnerability;
    std::size_t replica;
    double from;
    double until;
  };
  std::vector<Window> windows;
  for (std::size_t v_idx = 0; v_idx < catalog.size(); ++v_idx) {
    const Vulnerability& v = catalog.get(VulnId{
        static_cast<std::uint32_t>(v_idx)});
    for (std::size_t r = 0; r < population.size(); ++r) {
      const auto comps = population[r].configuration.components();
      if (std::find(comps.begin(), comps.end(), v.component) ==
          comps.end()) {
        continue;
      }
      const double lag_end =
          v.patched_at +
          rng.exponential(1.0 / patching.mean_deploy_lag_days);
      const double recovery_end =
          next_recovery(v.patched_at, offset_of(r), recovery.period_days);
      windows.push_back(Window{v_idx, r, v.discovered_at,
                               std::min(lag_end, recovery_end)});
    }
  }

  ExposureTimeline timeline;
  timeline.points.reserve(samples);
  std::size_t above_bft = 0;
  std::size_t above_majority = 0;
  std::vector<bool> hit(population.size());
  std::vector<bool> vuln_open(catalog.size());
  for (std::size_t s = 0; s < samples; ++s) {
    const double t = horizon_days * static_cast<double>(s) /
                     static_cast<double>(samples - 1);
    ExposurePoint point;
    point.t = t;
    std::fill(hit.begin(), hit.end(), false);
    std::fill(vuln_open.begin(), vuln_open.end(), false);
    for (const Window& w : windows) {
      if (t >= w.from && t < w.until) {
        hit[w.replica] = true;
        vuln_open[w.vulnerability] = true;
      }
    }
    for (const bool open : vuln_open) {
      if (open) ++point.open_vulnerabilities;  // k_t
    }
    double exposed = 0.0;
    for (std::size_t r = 0; r < population.size(); ++r) {
      if (hit[r]) exposed += population[r].power;
    }
    point.exposed_fraction = exposed / total_power;
    if (point.exposed_fraction > timeline.peak_exposed_fraction) {
      timeline.peak_exposed_fraction = point.exposed_fraction;
      timeline.peak_time = t;
    }
    timeline.peak_open_vulnerabilities = std::max(
        timeline.peak_open_vulnerabilities, point.open_vulnerabilities);
    if (point.exposed_fraction > diversity::kBftThreshold) ++above_bft;
    if (point.exposed_fraction > diversity::kNakamotoThreshold) {
      ++above_majority;
    }
    timeline.points.push_back(point);
  }
  timeline.time_above_bft_threshold =
      static_cast<double>(above_bft) / static_cast<double>(samples);
  timeline.time_above_majority_threshold =
      static_cast<double>(above_majority) / static_cast<double>(samples);
  return timeline;
}

}  // namespace findep::faults
