// Gossip/flood overlay for block and transaction dissemination.
//
// Nakamoto-style protocols propagate blocks over a sparse random overlay
// rather than all-to-all links. The overlay builds a connected random
// k-regular-ish graph; `publish` floods an item with per-node
// deduplication. Fork rates in the PoW experiments are driven directly by
// the propagation delays this overlay produces.
#pragma once

#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "crypto/sha256.h"
#include "net/envelope.h"  // GossipItem lives with the typed envelope
#include "net/network.h"

namespace findep::net {

class GossipOverlay {
 public:
  /// Called exactly once per node per item (first receipt), including on
  /// the publisher itself.
  using DeliverFn = std::function<void(NodeId node, const GossipItem& item)>;

  /// Builds the overlay over `nodes`, wiring handlers into `network`.
  /// Each node gets `degree` random outgoing neighbours (the union graph
  /// is almost surely connected for degree ≥ 3; we additionally force a
  /// ring edge so connectivity is guaranteed).
  GossipOverlay(SimNetwork& network, std::vector<NodeId> nodes,
                std::size_t degree, std::uint64_t seed, DeliverFn deliver);

  /// Injects an item at `origin`; it is delivered locally and flooded.
  void publish(NodeId origin, GossipItem item);

  [[nodiscard]] const std::vector<NodeId>& neighbours(NodeId node) const;

  /// True when `node` has already seen `id`.
  [[nodiscard]] bool has_seen(NodeId node, const crypto::Digest& id) const;

 private:
  void receive(NodeId node, const GossipItem& item);
  void forward(NodeId node, const GossipItem& item);

  SimNetwork* network_;
  std::vector<NodeId> nodes_;
  std::unordered_map<NodeId, std::vector<NodeId>> adjacency_;
  std::unordered_map<NodeId, std::unordered_set<crypto::Digest>> seen_;
  DeliverFn deliver_;
};

}  // namespace findep::net
