// Simulated point-to-point network.
//
// Delivery runs on the discrete-event engine with configurable latency,
// loss and partitions. The adversary surface matches §II-B: through the
// `MessageFilter`/`DelayPolicy` hooks an attacker may "arbitrarily delay,
// drop, re-order" traffic of compromised links — injection and
// modification are modeled at the protocol layer (a Byzantine node sends
// whatever it wants; honest-node signatures make undetected modification
// of others' messages impossible, which the protocols rely on).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "net/envelope.h"
#include "net/types.h"
#include "sim/simulator.h"
#include "support/rng.h"

namespace findep::net {

/// A delivered message. The envelope body is shared and immutable: a
/// broadcast delivers the same body to every recipient.
struct Message {
  NodeId from = 0;
  NodeId to = 0;
  std::uint64_t bytes = 0;
  Envelope envelope;
  /// Payload bits were flipped in flight (CorruptPolicy). The envelope
  /// body itself is shared and never mutated; receivers model the
  /// signature-verification failure a real deployment would hit and must
  /// reject the message without dispatching it.
  bool corrupted = false;
};

/// Latency/loss parameters.
struct NetworkOptions {
  /// Propagation floor in seconds (one-way).
  double min_latency = 0.010;
  /// Mean of the exponential latency tail added on top of the floor.
  double mean_extra_latency = 0.040;
  /// Uniform random loss applied to every link.
  double drop_probability = 0.0;
  std::uint64_t seed = 1;
};

/// Traffic counters (per network).
struct TrafficStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t messages_dropped = 0;
  std::uint64_t messages_corrupted = 0;
  std::uint64_t bytes_sent = 0;
};

/// Simulated network. Nodes register handlers; send() schedules delivery.
class SimNetwork {
 public:
  using Handler = std::function<void(const Message&)>;
  /// Return false to drop the message (adversarial or partition cut).
  using MessageFilter = std::function<bool(NodeId from, NodeId to)>;
  /// Extra one-way delay in seconds for a link (adversarial delay).
  using DelayPolicy = std::function<double(NodeId from, NodeId to)>;
  /// Return true to flip payload bits in flight: the message is still
  /// delivered, flagged `corrupted`, and the receiver rejects it as a
  /// signature failure. Distinct from a drop — corruption is *observable*
  /// at the receiver, which is what fault-detection experiments measure.
  using CorruptPolicy = std::function<bool(NodeId from, NodeId to)>;

  SimNetwork(sim::Simulator& simulator, NetworkOptions options);

  /// Registers (or replaces) the delivery handler of a node.
  void attach(NodeId node, Handler handler);

  [[nodiscard]] std::size_t node_count() const noexcept {
    return handlers_.size();
  }

  /// Sends `envelope` from -> to; delivery is scheduled unless dropped by
  /// loss, partition or the filter. Self-sends are delivered with zero
  /// latency (local loopback). Copying the envelope only bumps the shared
  /// body's refcount.
  void send(NodeId from, NodeId to, Envelope envelope,
            std::uint64_t bytes = 256);

  /// Sends to every attached node except `from`. All deliveries share one
  /// immutable body; `bytes` is accounted once per recipient, exactly as
  /// the equivalent per-recipient send() loop would.
  void broadcast(NodeId from, const Envelope& envelope,
                 std::uint64_t bytes = 256);

  /// Assigns `node` to a partition group; messages crossing groups are
  /// dropped. All nodes start in group 0.
  void set_partition_group(NodeId node, std::uint32_t group);
  /// Returns every node to group 0.
  void heal_partitions();

  /// Crashes (down = true) or restarts (down = false) a node. A down node
  /// neither sends nor receives: sends are dropped at the source, and
  /// in-flight messages addressed to it are dropped at delivery time —
  /// exactly the window a real crash loses. The node's handler stays
  /// attached, so a restart resumes delivery with no re-registration.
  void set_node_down(NodeId node, bool down);
  [[nodiscard]] bool is_down(NodeId node) const {
    return down_.contains(node);
  }

  /// Installs an adversarial filter (nullptr clears).
  void set_filter(MessageFilter filter) { filter_ = std::move(filter); }
  /// Installs an adversarial delay policy (nullptr clears).
  void set_delay_policy(DelayPolicy policy) {
    delay_policy_ = std::move(policy);
  }
  /// Installs a corruption policy (nullptr clears).
  void set_corrupt_policy(CorruptPolicy policy) {
    corrupt_ = std::move(policy);
  }

  [[nodiscard]] const TrafficStats& stats() const noexcept { return stats_; }
  void reset_stats() { stats_ = TrafficStats{}; }

  [[nodiscard]] sim::Simulator& simulator() noexcept { return *sim_; }

 private:
  [[nodiscard]] double sample_latency(NodeId from, NodeId to);

  sim::Simulator* sim_;
  NetworkOptions options_;
  support::Rng rng_;
  std::unordered_map<NodeId, Handler> handlers_;
  /// Sorted broadcast destinations, rebuilt only when the node set
  /// changes: a 10k-node broadcast must not re-sort 10k ids per call.
  std::vector<NodeId> broadcast_order_;
  bool broadcast_order_stale_ = true;
  std::unordered_map<NodeId, std::uint32_t> partition_group_;
  /// Nodes currently crashed (lookup-only; never iterated).
  std::unordered_set<NodeId> down_;
  MessageFilter filter_;
  DelayPolicy delay_policy_;
  CorruptPolicy corrupt_;
  TrafficStats stats_;
};

}  // namespace findep::net
