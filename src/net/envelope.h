// Typed message envelope for the simulated network.
//
// Every payload that crosses SimNetwork is one alternative of a tagged
// variant — the BFT, Nakamoto-gossip and attestation families plus a
// generic `Probe` for tests and examples — so receivers dispatch with
// `std::visit`/`get<T>()` instead of `std::any_cast` guesswork, and the
// compiler enumerates every family a handler must consider.
//
// The body is immutable and held behind a `shared_ptr`: fan-out paths
// (broadcast, gossip flooding) hand the *same* body to every recipient
// instead of deep-copying it per delivery, which is what makes the
// all-to-all BFT phases and ~1 MB gossip blocks cheap to simulate.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <type_traits>
#include <utility>
#include <variant>

#include "attest/wire.h"
#include "bft/messages.h"
#include "crypto/sha256.h"
#include "nakamoto/block.h"

namespace findep::net {

/// Generic payload for tests, examples and harness plumbing.
struct Probe {
  std::int64_t value = 0;
  std::string note;
};

/// A flooded overlay item, identified by digest for deduplication. The
/// content is typed: today only Nakamoto blocks flow over gossip; probe
/// items (monostate) exercise the overlay itself.
struct GossipItem {
  crypto::Digest id;
  std::variant<std::monostate, nakamoto::Block> content;
  std::uint64_t bytes = 1024;

  [[nodiscard]] const nakamoto::Block* block() const noexcept {
    return std::get_if<nakamoto::Block>(&content);
  }
};

/// Shared immutable message body: one allocation per *send or broadcast*,
/// never per recipient.
class Envelope {
 public:
  using Body = std::variant<std::monostate, Probe, GossipItem,
                            bft::Envelope, attest::WireMessage>;

  Envelope() = default;

  template <typename T,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<T>, Envelope> &&
                std::is_constructible_v<Body, T&&>>>
  Envelope(T&& body)  // NOLINT(google-explicit-constructor)
      : body_(std::make_shared<const Body>(std::forward<T>(body))) {}

  [[nodiscard]] bool empty() const noexcept { return body_ == nullptr; }

  /// The tagged body; an empty envelope reads as `std::monostate`.
  [[nodiscard]] const Body& body() const noexcept;

  /// Pointer to the alternative of type T, or nullptr.
  template <typename T>
  [[nodiscard]] const T* get() const noexcept {
    return body_ ? std::get_if<T>(body_.get()) : nullptr;
  }

  /// std::visit over the body (monostate when empty).
  template <typename Visitor>
  decltype(auto) visit(Visitor&& visitor) const {
    return std::visit(std::forward<Visitor>(visitor), body());
  }

  /// How many envelopes currently share this body (0 when empty) —
  /// observability for the no-deep-copy broadcast contract.
  [[nodiscard]] long body_use_count() const noexcept {
    return body_ ? body_.use_count() : 0;
  }

 private:
  std::shared_ptr<const Body> body_;
};

/// Human-readable name of the active payload family ("bft", "gossip",
/// "attest", "probe", "empty") for logs and assertions.
[[nodiscard]] const char* family_name(const Envelope& envelope) noexcept;

}  // namespace findep::net
