#include "net/network.h"

#include <algorithm>
#include <utility>

#include "support/assert.h"

namespace findep::net {

SimNetwork::SimNetwork(sim::Simulator& simulator, NetworkOptions options)
    : sim_(&simulator), options_(options), rng_(options.seed) {
  FINDEP_REQUIRE(options.min_latency >= 0.0);
  FINDEP_REQUIRE(options.mean_extra_latency >= 0.0);
  FINDEP_REQUIRE(options.drop_probability >= 0.0 &&
                 options.drop_probability <= 1.0);
}

void SimNetwork::attach(NodeId node, Handler handler) {
  FINDEP_REQUIRE(handler != nullptr);
  const auto [it, inserted] = handlers_.insert_or_assign(node, std::move(handler));
  (void)it;
  if (inserted) broadcast_order_stale_ = true;
}

double SimNetwork::sample_latency(NodeId from, NodeId to) {
  double latency = options_.min_latency;
  if (options_.mean_extra_latency > 0.0) {
    latency += rng_.exponential(1.0 / options_.mean_extra_latency);
  }
  if (delay_policy_) {
    const double extra = delay_policy_(from, to);
    FINDEP_ASSERT(extra >= 0.0);
    latency += extra;
  }
  return latency;
}

void SimNetwork::send(NodeId from, NodeId to, Envelope envelope,
                      std::uint64_t bytes) {
  ++stats_.messages_sent;
  stats_.bytes_sent += bytes;

  const auto handler_it = handlers_.find(to);
  if (handler_it == handlers_.end()) {
    ++stats_.messages_dropped;
    return;
  }

  if (!down_.empty() && (down_.contains(from) || down_.contains(to))) {
    // A crashed node neither sends nor receives (the delivery-time check
    // below covers messages already in flight when the target crashed).
    ++stats_.messages_dropped;
    return;
  }

  if (from != to) {
    if (!partition_group_.empty()) {  // all nodes in group 0 otherwise
      const auto ga = partition_group_.find(from);
      const auto gb = partition_group_.find(to);
      const std::uint32_t group_a =
          ga == partition_group_.end() ? 0 : ga->second;
      const std::uint32_t group_b =
          gb == partition_group_.end() ? 0 : gb->second;
      if (group_a != group_b) {
        ++stats_.messages_dropped;
        return;
      }
    }
    if (filter_ && !filter_(from, to)) {
      ++stats_.messages_dropped;
      return;
    }
    if (options_.drop_probability > 0.0 &&
        rng_.chance(options_.drop_probability)) {
      ++stats_.messages_dropped;
      return;
    }
  }

  bool corrupted = false;
  if (corrupt_ && from != to && corrupt_(from, to)) {
    corrupted = true;
    ++stats_.messages_corrupted;
  }

  const double latency = from == to ? 0.0 : sample_latency(from, to);
  // Capture by value: the handler table may change between schedule and
  // delivery, so we look the handler up again at delivery time. The
  // capture shares the envelope body, it does not copy it.
  Message msg{from, to, bytes, std::move(envelope), corrupted};
  sim_->schedule_after(latency, [this, msg = std::move(msg)]() mutable {
    if (down_.contains(msg.to)) {
      ++stats_.messages_dropped;  // crashed while the message was in flight
      return;
    }
    const auto it = handlers_.find(msg.to);
    if (it == handlers_.end() || !it->second) {
      ++stats_.messages_dropped;
      return;
    }
    ++stats_.messages_delivered;
    it->second(msg);
  });
}

void SimNetwork::broadcast(NodeId from, const Envelope& envelope,
                           std::uint64_t bytes) {
  // Deterministic order regardless of hash-map iteration, same order the
  // per-call sort used to produce. The snapshot also keeps iteration
  // safe if a re-entrant simulator step attaches nodes mid-broadcast
  // (new nodes then join from the *next* broadcast on, as before). Each
  // send() copies only the envelope handle; the body is shared by all
  // recipients (one allocation for the whole broadcast).
  if (broadcast_order_stale_) {
    broadcast_order_.clear();
    broadcast_order_.reserve(handlers_.size());
    // findep-lint: allow(unordered-iteration) -- collect-only walk; the snapshot is sorted by NodeId two lines below
    for (const auto& [node, handler] : handlers_) {
      broadcast_order_.push_back(node);
    }
    std::sort(broadcast_order_.begin(), broadcast_order_.end());
    broadcast_order_stale_ = false;
  }
  for (const NodeId to : broadcast_order_) {
    if (to != from) send(from, to, envelope, bytes);
  }
}

void SimNetwork::set_partition_group(NodeId node, std::uint32_t group) {
  partition_group_[node] = group;
}

void SimNetwork::heal_partitions() { partition_group_.clear(); }

void SimNetwork::set_node_down(NodeId node, bool down) {
  if (down) {
    down_.insert(node);
  } else {
    down_.erase(node);
  }
}

}  // namespace findep::net
