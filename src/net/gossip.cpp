#include "net/gossip.h"

#include <algorithm>

#include "support/assert.h"

namespace findep::net {

GossipOverlay::GossipOverlay(SimNetwork& network, std::vector<NodeId> nodes,
                             std::size_t degree, std::uint64_t seed,
                             DeliverFn deliver)
    : network_(&network), nodes_(std::move(nodes)),
      deliver_(std::move(deliver)) {
  FINDEP_REQUIRE(!nodes_.empty());
  FINDEP_REQUIRE(deliver_ != nullptr);

  support::Rng rng(seed);
  const std::size_t n = nodes_.size();
  for (std::size_t i = 0; i < n; ++i) {
    auto& adj = adjacency_[nodes_[i]];
    // Guaranteed-connectivity ring edge.
    if (n > 1) adj.push_back(nodes_[(i + 1) % n]);
    // Random extra edges.
    for (std::size_t d = 0; d + 1 < degree && n > 2; ++d) {
      for (int attempt = 0; attempt < 16; ++attempt) {
        const NodeId candidate = nodes_[rng.below(n)];
        if (candidate == nodes_[i]) continue;
        if (std::find(adj.begin(), adj.end(), candidate) != adj.end()) {
          continue;
        }
        adj.push_back(candidate);
        break;
      }
    }
  }

  for (const NodeId node : nodes_) {
    seen_[node];  // materialize
    network_->attach(node, [this, node](const Message& msg) {
      const auto* item = msg.envelope.get<GossipItem>();
      FINDEP_ASSERT(item != nullptr);
      receive(node, *item);
    });
  }
}

void GossipOverlay::publish(NodeId origin, GossipItem item) {
  receive(origin, item);
}

void GossipOverlay::receive(NodeId node, const GossipItem& item) {
  auto& seen = seen_[node];
  if (!seen.insert(item.id).second) return;  // duplicate
  deliver_(node, item);
  forward(node, item);
}

void GossipOverlay::forward(NodeId node, const GossipItem& item) {
  const auto it = adjacency_.find(node);
  if (it == adjacency_.end()) return;
  // One envelope body shared across every neighbour hop.
  const Envelope envelope(item);
  for (const NodeId neighbour : it->second) {
    network_->send(node, neighbour, envelope, item.bytes);
  }
}

const std::vector<NodeId>& GossipOverlay::neighbours(NodeId node) const {
  const auto it = adjacency_.find(node);
  FINDEP_REQUIRE(it != adjacency_.end());
  return it->second;
}

bool GossipOverlay::has_seen(NodeId node,
                             const crypto::Digest& id) const {
  const auto it = seen_.find(node);
  return it != seen_.end() && it->second.contains(id);
}

}  // namespace findep::net
