// Basic network identifiers, split out so protocol-layer message headers
// (bft, nakamoto, attest) can name node ids without pulling in the whole
// SimNetwork — the typed envelope (net/envelope.h) needs those headers,
// and SimNetwork needs the envelope, so this breaks the cycle.
#pragma once

#include <cstdint>

namespace findep::net {

using NodeId = std::uint32_t;

}  // namespace findep::net
