#include "net/envelope.h"

namespace findep::net {

const Envelope::Body& Envelope::body() const noexcept {
  static const Body kEmpty{};
  return body_ ? *body_ : kEmpty;
}

const char* family_name(const Envelope& envelope) noexcept {
  struct Namer {
    const char* operator()(std::monostate) const { return "empty"; }
    const char* operator()(const Probe&) const { return "probe"; }
    const char* operator()(const GossipItem&) const { return "gossip"; }
    const char* operator()(const bft::Envelope&) const { return "bft"; }
    const char* operator()(const attest::WireMessage&) const {
      return "attest";
    }
  };
  return envelope.visit(Namer{});
}

}  // namespace findep::net
