#include "bft/messages.h"

#include <type_traits>

namespace findep::bft {

crypto::Digest Request::digest() const {
  return crypto::Sha256{}
      .update("findep/bft/request/v1")
      .update_u64(id)
      .update(operation.bytes)
      .finish();
}

crypto::Digest Batch::digest() const {
  // Commits to count and order: the i-th request digest is folded in at
  // position i, so reordering or dropping a request changes the batch.
  crypto::Sha256 h;
  h.update("findep/bft/batch/v1");
  h.update_u64(requests.size());
  for (const Request& r : requests) {
    h.update(r.digest().bytes);
  }
  return h.finish();
}

crypto::Digest PrePrepare::digest() const {
  return crypto::Sha256{}
      .update("findep/bft/preprepare/v1")
      .update_u64(view)
      .update_u64(seq)
      .update(batch.digest().bytes)
      .finish();
}

crypto::Digest Prepare::digest() const {
  return crypto::Sha256{}
      .update("findep/bft/prepare/v1")
      .update_u64(view)
      .update_u64(seq)
      .update(request_digest.bytes)
      .finish();
}

crypto::Digest Commit::digest() const {
  return crypto::Sha256{}
      .update("findep/bft/commit/v1")
      .update_u64(view)
      .update_u64(seq)
      .update(request_digest.bytes)
      .finish();
}

crypto::Digest Checkpoint::digest() const {
  return crypto::Sha256{}
      .update("findep/bft/checkpoint/v1")
      .update_u64(seq)
      .update(state_digest.bytes)
      .finish();
}

crypto::Digest ViewChange::digest() const {
  crypto::Sha256 h;
  h.update("findep/bft/viewchange/v1");
  h.update_u64(new_view);
  h.update_u64(last_executed);
  h.update_u64(prepared.size());
  for (const PreparedEntry& e : prepared) {
    h.update_u64(e.view);
    h.update_u64(e.seq);
    h.update(e.batch.digest().bytes);
  }
  return h.finish();
}

crypto::Digest NewView::digest() const {
  crypto::Sha256 h;
  h.update("findep/bft/newview/v1");
  h.update_u64(view);
  h.update_u64(proofs.size());
  for (const SignedViewChange& svc : proofs) {
    h.update_u64(svc.sender);
    h.update(svc.vc.digest().bytes);
    h.update(svc.signature.tag.bytes);
  }
  h.update_u64(reproposals.size());
  for (const PrePrepare& pp : reproposals) {
    h.update(pp.digest().bytes);
  }
  return h.finish();
}

crypto::Digest StateRequest::digest() const {
  return crypto::Sha256{}
      .update("findep/bft/staterequest/v1")
      .update_u64(last_executed)
      .finish();
}

crypto::Digest StateResponse::digest() const {
  crypto::Sha256 h;
  h.update("findep/bft/stateresponse/v1");
  h.update_u64(request_from);
  h.update(checkpoint.digest().bytes);
  h.update_u64(proof.size());
  for (const SignedCheckpoint& sc : proof) {
    h.update_u64(sc.sender);
    h.update(sc.checkpoint.digest().bytes);
    h.update(sc.signature.tag.bytes);
  }
  h.update_u64(entries.size());
  for (const ExecutedEntry& e : entries) {
    h.update_u64(e.seq);
    h.update(e.request.digest().bytes);
  }
  h.update_u64(new_view.has_value() ? 1 : 0);
  if (new_view.has_value()) h.update(new_view->digest().bytes);
  return h.finish();
}

crypto::Digest QuorumCert::digest() const {
  crypto::Sha256 h;
  h.update("findep/hs/qc/v1");
  h.update_u64(round);
  h.update_u64(height);
  h.update(block_digest.bytes);
  h.update_u64(votes.size());
  for (const HsSignedVote& v : votes) {
    h.update_u64(v.voter);
    h.update(v.signature.tag.bytes);
  }
  return h.finish();
}

crypto::Digest HsBlock::digest() const {
  // Commits to the full chain position: round, height, parent link and
  // the justifying QC, so two blocks with the same batch at different
  // chain points (or extending different parents) are distinct.
  return crypto::Sha256{}
      .update("findep/hs/block/v1")
      .update_u64(round)
      .update_u64(height)
      .update(parent.bytes)
      .update(justify.digest().bytes)
      .update(batch.digest().bytes)
      .finish();
}

crypto::Digest HsProposal::digest() const {
  return crypto::Sha256{}
      .update("findep/hs/proposal/v1")
      .update(block.digest().bytes)
      .finish();
}

crypto::Digest HsVote::digest() const {
  return crypto::Sha256{}
      .update("findep/hs/vote/v1")
      .update_u64(round)
      .update_u64(height)
      .update(block_digest.bytes)
      .finish();
}

crypto::Digest HsTimeout::digest() const {
  return crypto::Sha256{}
      .update("findep/hs/timeout/v1")
      .update_u64(round)
      .update(high_qc.digest().bytes)
      .finish();
}

crypto::Digest HsBlockRequest::digest() const {
  return crypto::Sha256{}
      .update("findep/hs/blockrequest/v1")
      .update(block_digest.bytes)
      .finish();
}

crypto::Digest HsBlockResponse::digest() const {
  return crypto::Sha256{}
      .update("findep/hs/blockresponse/v1")
      .update(block.digest().bytes)
      .finish();
}

crypto::Digest HsQcNotice::digest() const {
  return crypto::Sha256{}
      .update("findep/hs/qcnotice/v1")
      .update(qc.digest().bytes)
      .finish();
}

crypto::Digest payload_digest(const Payload& payload) {
  return std::visit([](const auto& msg) { return msg.digest(); }, payload);
}

namespace {
/// Wire-size model constants (bytes). kControlBytes covers the fixed
/// header of the small fixed-size messages (prepare/commit/checkpoint);
/// kRequestBytes is a full client request; kBatchedRequestBytes is a
/// request body inside a batch (the envelope header is shared), chosen so
/// control header + one batched request == one unbatched request message.
constexpr std::uint64_t kControlBytes = 192;
constexpr std::uint64_t kRequestBytes = 512;
constexpr std::uint64_t kBatchedRequestBytes = kRequestBytes - kControlBytes;
constexpr std::uint64_t kViewChangeBytes = 1024;
constexpr std::uint64_t kPreparedEntryBytes = 48;  // (view, seq, digest) frame
constexpr std::uint64_t kNewViewBytes = 4096;

std::uint64_t batch_body_bytes(const Batch& batch) {
  return kBatchedRequestBytes * batch.size();
}

std::uint64_t viewchange_wire_bytes(const ViewChange& vc) {
  std::uint64_t bytes = kViewChangeBytes;
  for (const PreparedEntry& e : vc.prepared) {
    bytes += kPreparedEntryBytes + batch_body_bytes(e.batch);
  }
  return bytes;
}

std::uint64_t newview_wire_bytes(const NewView& nv) {
  // A new-view embeds its full view-change quorum plus the re-proposals
  // derived from it.
  std::uint64_t bytes = kNewViewBytes;
  for (const SignedViewChange& s : nv.proofs) {
    bytes += viewchange_wire_bytes(s.vc);
  }
  for (const PrePrepare& pp : nv.reproposals) {
    bytes += kControlBytes + batch_body_bytes(pp.batch);
  }
  return bytes;
}

/// A replayed log entry inside a state response: (seq, request) frame
/// plus the request body at the shared-header batch rate.
constexpr std::uint64_t kStateEntryBytes = 16 + kBatchedRequestBytes;

/// One (voter, signature) pair inside a quorum certificate.
constexpr std::uint64_t kQcVoteBytes = 96;
/// QC header: round, height, block digest, vote count frame.
constexpr std::uint64_t kQcHeaderBytes = 64;

std::uint64_t quorumcert_wire_bytes(const QuorumCert& qc) {
  return kQcHeaderBytes + kQcVoteBytes * qc.votes.size();
}

std::uint64_t hsblock_wire_bytes(const HsBlock& block) {
  // Chain-position header plus the embedded QC and the batch body — a
  // proposal is charged for the certificate it carries, which is what
  // makes HotStuff's per-decision bytes linear in n instead of the
  // quadratic vote fan-out paying per message.
  return kControlBytes + quorumcert_wire_bytes(block.justify) +
         batch_body_bytes(block.batch);
}

std::uint64_t stateresponse_wire_bytes(const StateResponse& resp) {
  // Header, one signed checkpoint vote per proof entry, the committed
  // log suffix, and the optional embedded NEW-VIEW at its own rate —
  // state transfer is the most variable-length payload in the protocol,
  // so it is charged for exactly what it carries.
  std::uint64_t bytes = kControlBytes;
  bytes += kControlBytes * resp.proof.size();
  bytes += kStateEntryBytes * resp.entries.size();
  if (resp.new_view.has_value()) bytes += newview_wire_bytes(*resp.new_view);
  return bytes;
}
}  // namespace

std::uint64_t payload_wire_bytes(const Payload& payload) {
  return std::visit(
      [](const auto& msg) -> std::uint64_t {
        using T = std::decay_t<decltype(msg)>;
        if constexpr (std::is_same_v<T, Request>) {
          return kRequestBytes;
        } else if constexpr (std::is_same_v<T, PrePrepare>) {
          return kControlBytes + batch_body_bytes(msg.batch);
        } else if constexpr (std::is_same_v<T, ViewChange>) {
          return viewchange_wire_bytes(msg);
        } else if constexpr (std::is_same_v<T, NewView>) {
          return newview_wire_bytes(msg);
        } else if constexpr (std::is_same_v<T, StateResponse>) {
          return stateresponse_wire_bytes(msg);
        } else if constexpr (std::is_same_v<T, HsProposal>) {
          return hsblock_wire_bytes(msg.block);
        } else if constexpr (std::is_same_v<T, HsTimeout>) {
          return kControlBytes + quorumcert_wire_bytes(msg.high_qc);
        } else if constexpr (std::is_same_v<T, HsQcNotice>) {
          return kControlBytes + quorumcert_wire_bytes(msg.qc);
        } else if constexpr (std::is_same_v<T, HsBlockResponse>) {
          return hsblock_wire_bytes(msg.block);
        } else {
          // Prepare / Commit / Checkpoint / StateRequest / HsVote /
          // HsBlockRequest
          return kControlBytes;
        }
      },
      payload);
}

Envelope make_envelope(ReplicaId sender, const crypto::KeyPair& keys,
                       Payload payload) {
  Envelope env;
  env.sender = sender;
  env.sender_key = keys.public_key();
  env.signature = keys.sign(payload_digest(payload));
  env.payload = std::move(payload);
  return env;
}

bool verify_envelope(const crypto::KeyRegistry& registry,
                     const Envelope& envelope) {
  return registry.verify(envelope.sender_key,
                         payload_digest(envelope.payload),
                         envelope.signature);
}

}  // namespace findep::bft
