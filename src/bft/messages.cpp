#include "bft/messages.h"

namespace findep::bft {

crypto::Digest Request::digest() const {
  return crypto::Sha256{}
      .update("findep/bft/request/v1")
      .update_u64(id)
      .update(operation.bytes)
      .finish();
}

crypto::Digest PrePrepare::digest() const {
  return crypto::Sha256{}
      .update("findep/bft/preprepare/v1")
      .update_u64(view)
      .update_u64(seq)
      .update(request.digest().bytes)
      .finish();
}

crypto::Digest Prepare::digest() const {
  return crypto::Sha256{}
      .update("findep/bft/prepare/v1")
      .update_u64(view)
      .update_u64(seq)
      .update(request_digest.bytes)
      .finish();
}

crypto::Digest Commit::digest() const {
  return crypto::Sha256{}
      .update("findep/bft/commit/v1")
      .update_u64(view)
      .update_u64(seq)
      .update(request_digest.bytes)
      .finish();
}

crypto::Digest Checkpoint::digest() const {
  return crypto::Sha256{}
      .update("findep/bft/checkpoint/v1")
      .update_u64(seq)
      .update(state_digest.bytes)
      .finish();
}

crypto::Digest ViewChange::digest() const {
  crypto::Sha256 h;
  h.update("findep/bft/viewchange/v1");
  h.update_u64(new_view);
  h.update_u64(last_executed);
  h.update_u64(prepared.size());
  for (const PreparedEntry& e : prepared) {
    h.update_u64(e.view);
    h.update_u64(e.seq);
    h.update(e.request.digest().bytes);
  }
  return h.finish();
}

crypto::Digest NewView::digest() const {
  crypto::Sha256 h;
  h.update("findep/bft/newview/v1");
  h.update_u64(view);
  h.update_u64(proofs.size());
  for (const SignedViewChange& svc : proofs) {
    h.update_u64(svc.sender);
    h.update(svc.vc.digest().bytes);
    h.update(svc.signature.tag.bytes);
  }
  h.update_u64(reproposals.size());
  for (const PrePrepare& pp : reproposals) {
    h.update(pp.digest().bytes);
  }
  return h.finish();
}

crypto::Digest payload_digest(const Payload& payload) {
  return std::visit([](const auto& msg) { return msg.digest(); }, payload);
}

Envelope make_envelope(ReplicaId sender, const crypto::KeyPair& keys,
                       Payload payload) {
  Envelope env;
  env.sender = sender;
  env.sender_key = keys.public_key();
  env.signature = keys.sign(payload_digest(payload));
  env.payload = std::move(payload);
  return env;
}

bool verify_envelope(const crypto::KeyRegistry& registry,
                     const Envelope& envelope) {
  return registry.verify(envelope.sender_key,
                         payload_digest(envelope.payload),
                         envelope.signature);
}

}  // namespace findep::bft
