#include "bft/messages.h"

#include <type_traits>

namespace findep::bft {

crypto::Digest Request::digest() const {
  return crypto::Sha256{}
      .update("findep/bft/request/v1")
      .update_u64(id)
      .update(operation.bytes)
      .finish();
}

crypto::Digest Batch::digest() const {
  // Commits to count and order: the i-th request digest is folded in at
  // position i, so reordering or dropping a request changes the batch.
  crypto::Sha256 h;
  h.update("findep/bft/batch/v1");
  h.update_u64(requests.size());
  for (const Request& r : requests) {
    h.update(r.digest().bytes);
  }
  return h.finish();
}

crypto::Digest PrePrepare::digest() const {
  return crypto::Sha256{}
      .update("findep/bft/preprepare/v1")
      .update_u64(view)
      .update_u64(seq)
      .update(batch.digest().bytes)
      .finish();
}

crypto::Digest Prepare::digest() const {
  return crypto::Sha256{}
      .update("findep/bft/prepare/v1")
      .update_u64(view)
      .update_u64(seq)
      .update(request_digest.bytes)
      .finish();
}

crypto::Digest Commit::digest() const {
  return crypto::Sha256{}
      .update("findep/bft/commit/v1")
      .update_u64(view)
      .update_u64(seq)
      .update(request_digest.bytes)
      .finish();
}

crypto::Digest Checkpoint::digest() const {
  return crypto::Sha256{}
      .update("findep/bft/checkpoint/v1")
      .update_u64(seq)
      .update(state_digest.bytes)
      .finish();
}

crypto::Digest ViewChange::digest() const {
  crypto::Sha256 h;
  h.update("findep/bft/viewchange/v1");
  h.update_u64(new_view);
  h.update_u64(last_executed);
  h.update_u64(prepared.size());
  for (const PreparedEntry& e : prepared) {
    h.update_u64(e.view);
    h.update_u64(e.seq);
    h.update(e.batch.digest().bytes);
  }
  return h.finish();
}

crypto::Digest NewView::digest() const {
  crypto::Sha256 h;
  h.update("findep/bft/newview/v1");
  h.update_u64(view);
  h.update_u64(proofs.size());
  for (const SignedViewChange& svc : proofs) {
    h.update_u64(svc.sender);
    h.update(svc.vc.digest().bytes);
    h.update(svc.signature.tag.bytes);
  }
  h.update_u64(reproposals.size());
  for (const PrePrepare& pp : reproposals) {
    h.update(pp.digest().bytes);
  }
  return h.finish();
}

crypto::Digest StateRequest::digest() const {
  return crypto::Sha256{}
      .update("findep/bft/staterequest/v1")
      .update_u64(last_executed)
      .finish();
}

crypto::Digest StateResponse::digest() const {
  crypto::Sha256 h;
  h.update("findep/bft/stateresponse/v1");
  h.update_u64(request_from);
  h.update(checkpoint.digest().bytes);
  h.update_u64(proof.size());
  for (const SignedCheckpoint& sc : proof) {
    h.update_u64(sc.sender);
    h.update(sc.checkpoint.digest().bytes);
    h.update(sc.signature.tag.bytes);
  }
  h.update_u64(entries.size());
  for (const ExecutedEntry& e : entries) {
    h.update_u64(e.seq);
    h.update(e.request.digest().bytes);
  }
  h.update_u64(new_view.has_value() ? 1 : 0);
  if (new_view.has_value()) h.update(new_view->digest().bytes);
  return h.finish();
}

crypto::Digest payload_digest(const Payload& payload) {
  return std::visit([](const auto& msg) { return msg.digest(); }, payload);
}

namespace {
/// Wire-size model constants (bytes). kControlBytes covers the fixed
/// header of the small fixed-size messages (prepare/commit/checkpoint);
/// kRequestBytes is a full client request; kBatchedRequestBytes is a
/// request body inside a batch (the envelope header is shared), chosen so
/// control header + one batched request == one unbatched request message.
constexpr std::uint64_t kControlBytes = 192;
constexpr std::uint64_t kRequestBytes = 512;
constexpr std::uint64_t kBatchedRequestBytes = kRequestBytes - kControlBytes;
constexpr std::uint64_t kViewChangeBytes = 1024;
constexpr std::uint64_t kPreparedEntryBytes = 48;  // (view, seq, digest) frame
constexpr std::uint64_t kNewViewBytes = 4096;

std::uint64_t batch_body_bytes(const Batch& batch) {
  return kBatchedRequestBytes * batch.size();
}

std::uint64_t viewchange_wire_bytes(const ViewChange& vc) {
  std::uint64_t bytes = kViewChangeBytes;
  for (const PreparedEntry& e : vc.prepared) {
    bytes += kPreparedEntryBytes + batch_body_bytes(e.batch);
  }
  return bytes;
}

std::uint64_t newview_wire_bytes(const NewView& nv) {
  // A new-view embeds its full view-change quorum plus the re-proposals
  // derived from it.
  std::uint64_t bytes = kNewViewBytes;
  for (const SignedViewChange& s : nv.proofs) {
    bytes += viewchange_wire_bytes(s.vc);
  }
  for (const PrePrepare& pp : nv.reproposals) {
    bytes += kControlBytes + batch_body_bytes(pp.batch);
  }
  return bytes;
}

/// A replayed log entry inside a state response: (seq, request) frame
/// plus the request body at the shared-header batch rate.
constexpr std::uint64_t kStateEntryBytes = 16 + kBatchedRequestBytes;

std::uint64_t stateresponse_wire_bytes(const StateResponse& resp) {
  // Header, one signed checkpoint vote per proof entry, the committed
  // log suffix, and the optional embedded NEW-VIEW at its own rate —
  // state transfer is the most variable-length payload in the protocol,
  // so it is charged for exactly what it carries.
  std::uint64_t bytes = kControlBytes;
  bytes += kControlBytes * resp.proof.size();
  bytes += kStateEntryBytes * resp.entries.size();
  if (resp.new_view.has_value()) bytes += newview_wire_bytes(*resp.new_view);
  return bytes;
}
}  // namespace

std::uint64_t payload_wire_bytes(const Payload& payload) {
  return std::visit(
      [](const auto& msg) -> std::uint64_t {
        using T = std::decay_t<decltype(msg)>;
        if constexpr (std::is_same_v<T, Request>) {
          return kRequestBytes;
        } else if constexpr (std::is_same_v<T, PrePrepare>) {
          return kControlBytes + batch_body_bytes(msg.batch);
        } else if constexpr (std::is_same_v<T, ViewChange>) {
          return viewchange_wire_bytes(msg);
        } else if constexpr (std::is_same_v<T, NewView>) {
          return newview_wire_bytes(msg);
        } else if constexpr (std::is_same_v<T, StateResponse>) {
          return stateresponse_wire_bytes(msg);
        } else {
          // Prepare / Commit / Checkpoint / StateRequest
          return kControlBytes;
        }
      },
      payload);
}

Envelope make_envelope(ReplicaId sender, const crypto::KeyPair& keys,
                       Payload payload) {
  Envelope env;
  env.sender = sender;
  env.sender_key = keys.public_key();
  env.signature = keys.sign(payload_digest(payload));
  env.payload = std::move(payload);
  return env;
}

bool verify_envelope(const crypto::KeyRegistry& registry,
                     const Envelope& envelope) {
  return registry.verify(envelope.sender_key,
                         payload_digest(envelope.payload),
                         envelope.signature);
}

}  // namespace findep::bft
