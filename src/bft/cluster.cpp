#include "bft/cluster.h"

#include <algorithm>
#include <cmath>

#include "support/assert.h"

namespace findep::bft {

BftCluster::BftCluster(std::size_t n, ClusterOptions options,
                       std::vector<Behavior> behaviors)
    : options_(options) {
  FINDEP_REQUIRE(n >= 4);
  init(std::vector<double>(n, 1.0), std::move(behaviors));
}

BftCluster::BftCluster(std::vector<double> weights, ClusterOptions options,
                       std::vector<Behavior> behaviors)
    : options_(options) {
  init(std::move(weights), std::move(behaviors));
}

void BftCluster::init(std::vector<double> weights,
                      std::vector<Behavior> behaviors) {
  const std::size_t n = weights.size();
  FINDEP_REQUIRE(n >= 4);
  behaviors.resize(n, Behavior::kHonest);
  behaviors_ = behaviors;

  net::NetworkOptions net_options = options_.network;
  net_options.seed = support::mix64(options_.seed ^ 0x6e65740a);
  network_ = std::make_unique<net::SimNetwork>(sim_, net_options);

  // Keys: deterministic per replica id, plus one client key.
  std::vector<crypto::PublicKey> directory;
  std::vector<crypto::KeyPair> keys;
  directory.reserve(n);
  keys.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    keys.push_back(crypto::KeyPair::derive(options_.seed * 1000003 + i));
    registry_.enroll(keys.back());
    directory.push_back(keys.back().public_key());
  }
  client_keys_ = std::make_unique<crypto::KeyPair>(
      crypto::KeyPair::derive(options_.seed * 1000003 + n));
  registry_.enroll(*client_keys_);
  client_id_ = static_cast<net::NodeId>(n);

  ReplicaOptions ropts = options_.replica;
  for (std::size_t i = 0; i < n; ++i) {
    ropts.behavior = behaviors_[i];
    // Replica-local RNG (random peer choice in state transfer), derived
    // per replica from the cluster seed so runs stay reproducible.
    ropts.rng_seed = support::mix64(options_.seed ^ (0xb1f70000ULL + i));
    if (options_.protocol == replication::Protocol::kHotStuff) {
      replicas_.push_back(std::make_unique<replication::HotStuff>(
          static_cast<ReplicaId>(i), weights, directory, registry_,
          keys[i], *network_, ropts));
    } else {
      replicas_.push_back(std::make_unique<Replica>(
          static_cast<ReplicaId>(i), weights, directory, registry_,
          keys[i], *network_, ropts));
    }
    replicas_.back()->start();
  }
  observed_.assign(n, 0);
  real_executed_.assign(n, 0);
}

Replica& BftCluster::replica(std::size_t i) {
  FINDEP_REQUIRE_MSG(options_.protocol == replication::Protocol::kPbft,
                     "replica() requires protocol=pbft; use node()");
  return static_cast<Replica&>(*replicas_[i]);
}

const Replica& BftCluster::replica(std::size_t i) const {
  FINDEP_REQUIRE_MSG(options_.protocol == replication::Protocol::kPbft,
                     "replica() requires protocol=pbft; use node()");
  return static_cast<const Replica&>(*replicas_[i]);
}

replication::HotStuff& BftCluster::hotstuff(std::size_t i) {
  FINDEP_REQUIRE_MSG(
      options_.protocol == replication::Protocol::kHotStuff,
      "hotstuff() requires protocol=hotstuff; use node()");
  return static_cast<replication::HotStuff&>(*replicas_[i]);
}

const replication::HotStuff& BftCluster::hotstuff(std::size_t i) const {
  FINDEP_REQUIRE_MSG(
      options_.protocol == replication::Protocol::kHotStuff,
      "hotstuff() requires protocol=hotstuff; use node()");
  return static_cast<const replication::HotStuff&>(*replicas_[i]);
}

std::uint64_t BftCluster::submit() {
  const std::uint64_t rid = next_request_id_++;
  Request request;
  request.id = rid;
  request.operation = crypto::Sha256{}
                          .update("findep/bft/op/v1")
                          .update_u64(rid)
                          .update_u64(options_.seed)
                          .finish();
  traces_.push_back(RequestTrace{rid, sim_.now(), -1.0});

  // The client is not attached, so a network broadcast reaches exactly
  // the replicas — with one shared body instead of n payload copies.
  const net::Envelope wire(make_envelope(client_id_, *client_keys_, request));
  network_->broadcast(client_id_, wire, payload_wire_bytes(Payload{request}));
  return rid;
}

void BftCluster::observe_executions() {
  // Record the earliest honest execution time per request; scans only
  // entries appended since the previous observation.
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    const auto& log = replicas_[i]->executed();
    for (std::size_t j = observed_[i]; j < log.size(); ++j) {
      const ExecutedEntry& e = log[j];
      if (e.request.id == 0) continue;
      ++real_executed_[i];
      if (behaviors_[i] != Behavior::kHonest) continue;
      const std::size_t idx = static_cast<std::size_t>(e.request.id) - 1;
      if (idx < traces_.size() && !traces_[idx].done()) {
        traces_[idx].executed_at = sim_.now();
      }
    }
    observed_[i] = log.size();
  }
}

bool BftCluster::run_until_executed(std::size_t count, double deadline) {
  while (sim_.now() < deadline) {
    if (min_honest_executed() >= count) return true;
    if (!sim_.has_pending()) break;
    sim_.step();
    observe_executions();
  }
  observe_executions();
  return min_honest_executed() >= count;
}

void BftCluster::run_for(double duration) {
  const double deadline = sim_.now() + duration;
  while (sim_.now() < deadline && sim_.has_pending()) {
    sim_.step();
    observe_executions();
  }
}

bool BftCluster::logs_consistent() const {
  const replication::OrderingProtocol* reference = nullptr;
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    if (behaviors_[i] != Behavior::kHonest) continue;
    if (reference == nullptr) {
      reference = replicas_[i].get();
      continue;
    }
    const auto& a = reference->executed();
    const auto& b = replicas_[i]->executed();
    const std::size_t common = std::min(a.size(), b.size());
    for (std::size_t j = 0; j < common; ++j) {
      if (a[j].seq != b[j].seq ||
          !(a[j].request == b[j].request)) {
        return false;
      }
    }
  }
  return true;
}

std::size_t BftCluster::min_honest_executed() const {
  std::size_t min_count = SIZE_MAX;
  bool any = false;
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    if (behaviors_[i] != Behavior::kHonest) continue;
    any = true;
    min_count = std::min(min_count, real_executed_[i]);
  }
  return any ? min_count : 0;
}

std::size_t BftCluster::completed_requests() const {
  std::size_t count = 0;
  for (const RequestTrace& t : traces_) {
    if (t.done()) ++count;
  }
  return count;
}

double BftCluster::last_completion_time() const {
  double latest = 0.0;
  for (const RequestTrace& t : traces_) {
    if (t.done()) latest = std::max(latest, t.executed_at);
  }
  return latest;
}

SeqNum BftCluster::max_honest_last_executed() const {
  SeqNum max_seq = 0;
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    if (behaviors_[i] != Behavior::kHonest) continue;
    max_seq = std::max(max_seq, replicas_[i]->last_executed());
  }
  return max_seq;
}

std::size_t BftCluster::stranded_replicas() const {
  const SeqNum horizon = max_honest_last_executed();
  std::size_t count = 0;
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    if (behaviors_[i] != Behavior::kHonest) continue;
    if (replicas_[i]->last_executed() < horizon) ++count;
  }
  return count;
}

std::uint64_t BftCluster::state_transfers_completed() const {
  std::uint64_t sum = 0;
  for (const auto& replica : replicas_) {
    sum += replica->state_transfers_completed();
  }
  return sum;
}

std::uint64_t BftCluster::state_transfer_bytes() const {
  std::uint64_t sum = 0;
  for (const auto& replica : replicas_) {
    sum += replica->state_transfer_bytes();
  }
  return sum;
}

std::uint64_t BftCluster::verify_tasks() const {
  std::uint64_t sum = 0;
  for (const auto& replica : replicas_) sum += replica->verify_tasks();
  return sum;
}

std::uint64_t BftCluster::verify_dropped_stale() const {
  std::uint64_t sum = 0;
  for (const auto& replica : replicas_) {
    sum += replica->verify_dropped_stale();
  }
  return sum;
}

double BftCluster::mean_latency() const {
  double sum = 0.0;
  std::size_t count = 0;
  for (const RequestTrace& t : traces_) {
    if (t.done()) {
      sum += t.latency();
      ++count;
    }
  }
  FINDEP_REQUIRE_MSG(count > 0, "no completed requests");
  return sum / static_cast<double>(count);
}

double BftCluster::latency_percentile(double q) const {
  FINDEP_REQUIRE(q > 0.0 && q <= 1.0);
  std::vector<double> latencies;
  latencies.reserve(traces_.size());
  for (const RequestTrace& t : traces_) {
    if (t.done()) latencies.push_back(t.latency());
  }
  FINDEP_REQUIRE_MSG(!latencies.empty(), "no completed requests");
  std::sort(latencies.begin(), latencies.end());
  // Nearest-rank: the smallest latency with at least q of the mass at or
  // below it.
  const std::size_t rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(latencies.size())));
  return latencies[std::max<std::size_t>(rank, 1) - 1];
}

}  // namespace findep::bft
