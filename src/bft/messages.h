// PBFT message set (Castro–Liskov '99/'02, the protocol the paper's BFT
// baseline numbers assume), with voting-*power* quorums so the same core
// serves classic count-based BFT (unit weights) and stake/hash-weighted
// committees (§II-A's voting-power abstraction).
//
// Every message is signed; receivers verify via the KeyRegistry before
// processing, so a Byzantine replica cannot forge others' votes — it can
// only equivocate with its own weight, which the quorum intersection
// argument charges to f.
#pragma once

#include <cstdint>
#include <optional>
#include <variant>
#include <vector>

#include "crypto/keys.h"
#include "crypto/sha256.h"

namespace findep::bft {

using ReplicaId = std::uint32_t;
using View = std::uint64_t;
using SeqNum = std::uint64_t;

/// A client operation (opaque payload digest + unique id).
struct Request {
  std::uint64_t id = 0;
  crypto::Digest operation;

  [[nodiscard]] crypto::Digest digest() const;
  bool operator==(const Request&) const = default;
};

/// An ordered block of client requests agreed on as one consensus
/// instance: the primary amortizes the O(n²) prepare/commit fan-out over
/// every request in the batch. The combined digest commits to count and
/// order, so two batches over the same requests in different order are
/// distinct proposals. An empty batch is the no-op filler used for
/// sequence gaps during view changes (it executes nothing).
struct Batch {
  std::vector<Request> requests;

  [[nodiscard]] std::size_t size() const noexcept { return requests.size(); }
  [[nodiscard]] bool empty() const noexcept { return requests.empty(); }
  [[nodiscard]] crypto::Digest digest() const;
  bool operator==(const Batch&) const = default;
};

struct PrePrepare {
  View view = 0;
  SeqNum seq = 0;
  Batch batch;

  [[nodiscard]] crypto::Digest digest() const;
};

struct Prepare {
  View view = 0;
  SeqNum seq = 0;
  crypto::Digest request_digest;

  [[nodiscard]] crypto::Digest digest() const;
};

struct Commit {
  View view = 0;
  SeqNum seq = 0;
  crypto::Digest request_digest;

  [[nodiscard]] crypto::Digest digest() const;
};

struct Checkpoint {
  SeqNum seq = 0;  // executions up to and including seq are stable
  crypto::Digest state_digest;

  [[nodiscard]] crypto::Digest digest() const;
};

/// A checkpoint vote together with its sender's signature. Replicas keep
/// the signed votes of the quorum that made their checkpoint stable so a
/// state-transfer response can *prove* the checkpoint to the requester
/// (the requester re-verifies every vote, exactly like NEW-VIEW proofs).
struct SignedCheckpoint {
  ReplicaId sender = 0;
  Checkpoint checkpoint;
  crypto::Signature signature;
};

/// One executed log entry (what the state machine saw). Also the replay
/// unit of state transfer: a response carries the responder's committed
/// log suffix as ExecutedEntry records, one per request, each tagged with
/// the slot (batch) seq it executed under.
struct ExecutedEntry {
  SeqNum seq = 0;
  Request request;

  bool operator==(const ExecutedEntry&) const = default;
};

/// A prepared certificate entry carried inside a view change: the replica
/// prepared `batch` at (view, seq). View changes operate at batch
/// granularity — a prepared batch survives into the new view whole, so
/// safety at the request level follows from safety at the batch level.
struct PreparedEntry {
  View view = 0;
  SeqNum seq = 0;
  Batch batch;
};

struct ViewChange {
  View new_view = 0;
  SeqNum last_executed = 0;
  std::vector<PreparedEntry> prepared;

  [[nodiscard]] crypto::Digest digest() const;
};

/// A view-change message together with its sender's signature, embeddable
/// as a proof inside NEW-VIEW (receivers re-verify each one, so a
/// Byzantine new primary cannot invent the view-change quorum or alter
/// what was prepared).
struct SignedViewChange {
  ReplicaId sender = 0;
  ViewChange vc;
  crypto::Signature signature;
};

struct NewView {
  View view = 0;
  /// The view-change quorum justifying this view.
  std::vector<SignedViewChange> proofs;
  /// Re-proposals the new primary derived from the proofs; receivers
  /// recompute them from `proofs` and reject mismatches.
  std::vector<PrePrepare> reproposals;

  [[nodiscard]] crypto::Digest digest() const;
};

/// Checkpoint-anchored state transfer, request side: "I have executed up
/// to `last_executed`; send me everything you can prove stable above it."
struct StateRequest {
  SeqNum last_executed = 0;

  [[nodiscard]] crypto::Digest digest() const;
};

/// State-transfer response. Everything in it is verifiable by the
/// requester without trusting the responder:
///   - `checkpoint` + `proof`: the responder's stable checkpoint with the
///     signed vote quorum that made it stable;
///   - `entries`: the committed log suffix in (`request_from`,
///     `checkpoint.seq`], whose replay onto the requester's own log must
///     reproduce `checkpoint.state_digest` (wrong or tampered entries are
///     rejected wholesale and the requester retries elsewhere);
///   - `new_view`: the NEW-VIEW the responder last installed, so a
///     replica that also missed view changes during its outage can
///     re-verify and adopt the current view (NEW-VIEW is self-certifying
///     through its embedded view-change quorum).
struct StateResponse {
  SeqNum request_from = 0;
  Checkpoint checkpoint;
  std::vector<SignedCheckpoint> proof;
  std::vector<ExecutedEntry> entries;
  std::optional<NewView> new_view;

  [[nodiscard]] crypto::Digest digest() const;
};

// --- HotStuff lane (chained quorum-certificate protocol) -------------------
//
// The pipelined, linear-communication lane shares the request/batch/
// checkpoint/state-transfer types above and adds the chained-HotStuff wire
// set: one proposal per round extending the highest known quorum
// certificate, votes sent to the *next* round's leader (who aggregates
// them into a QC instead of every replica hearing every vote — this is
// what turns the O(n²) prepare/commit fan-out into O(n) per decision),
// and timeout messages carrying the sender's high-QC so a new leader can
// always extend the freshest certified block.

/// One vote signature inside a quorum certificate. The signature is over
/// the voter's HsVote digest, so a QC is re-verifiable by anyone holding
/// the directory (exactly like NEW-VIEW / checkpoint proof quorums).
struct HsSignedVote {
  ReplicaId voter = 0;
  crypto::Signature signature;
};

/// Quorum certificate: > 2/3 of voting power signed HsVote{round, height,
/// block_digest}. The genesis QC (round 0, height 0) is the one
/// certificate that carries no votes — every chain hangs off it.
struct QuorumCert {
  std::uint64_t round = 0;
  SeqNum height = 0;
  crypto::Digest block_digest;
  std::vector<HsSignedVote> votes;

  [[nodiscard]] crypto::Digest digest() const;
};

/// One chain block: a batch proposed at (round, height) extending the
/// block certified by `justify` (parent == justify.block_digest — the
/// chained variant always extends the freshest QC). Height is the
/// execution sequence number; round advances past height on timeouts.
struct HsBlock {
  std::uint64_t round = 0;
  SeqNum height = 0;
  crypto::Digest parent;
  QuorumCert justify;
  Batch batch;

  [[nodiscard]] crypto::Digest digest() const;
};

struct HsProposal {
  HsBlock block;

  [[nodiscard]] crypto::Digest digest() const;
};

/// A replica's vote for the block proposed at `round`, sent to the leader
/// of round + 1 (leader-collects-votes: the quadratic all-to-all of PBFT
/// prepare/commit collapses to one linear collection per round).
struct HsVote {
  std::uint64_t round = 0;
  SeqNum height = 0;
  crypto::Digest block_digest;

  [[nodiscard]] crypto::Digest digest() const;
};

/// Pacemaker timeout for `round`, sent to that round's leader. Carries the
/// sender's highest QC; a leader collecting a > 2/3 timeout quorum learns
/// the freshest certified block any honest replica is locked behind and
/// may propose extending it.
struct HsTimeout {
  std::uint64_t round = 0;
  QuorumCert high_qc;

  [[nodiscard]] crypto::Digest digest() const;
};

/// Orphan-chain repair: "send me the block with this digest" (a commit
/// walk hit a parent we never received). Broadcast; any peer still
/// holding the block answers.
struct HsBlockRequest {
  crypto::Digest block_digest;

  [[nodiscard]] crypto::Digest digest() const;
};

struct HsBlockResponse {
  HsBlock block;

  [[nodiscard]] crypto::Digest digest() const;
};

/// Tail-quiescence QC announcement. In leader-collects-votes HotStuff only
/// the collecting leader learns a QC formed; normally it shares it inside
/// its next proposal. When the chain has drained (no pending requests, no
/// further block to propose) there *is* no next proposal, so the final QC
/// — and with it the last commit — would be stranded at one replica while
/// everyone else waits out a pacemaker timeout. The collecting leader
/// instead broadcasts the bare QC; receivers adopt it and run the commit
/// rule, and since a notice triggers no votes or round entry, the cluster
/// quiesces symmetrically.
struct HsQcNotice {
  QuorumCert qc;

  [[nodiscard]] crypto::Digest digest() const;
};

using Payload = std::variant<Request, PrePrepare, Prepare, Commit,
                             Checkpoint, ViewChange, NewView, StateRequest,
                             StateResponse, HsProposal, HsVote, HsTimeout,
                             HsBlockRequest, HsBlockResponse, HsQcNotice>;

/// Envelope: sender identity + signature over the payload digest.
struct Envelope {
  ReplicaId sender = 0;
  crypto::PublicKey sender_key;
  Payload payload;
  crypto::Signature signature;
};

/// Digest of any payload alternative (dispatches on the variant).
[[nodiscard]] crypto::Digest payload_digest(const Payload& payload);

/// Wire-size model (bytes) of a payload, used for traffic accounting.
/// Sizes are per-message header plus per-element body for the
/// variable-length payloads (batches, view changes carrying prepared
/// batches, new-views embedding their proof quorum), so `bytes_sent`
/// tracks what a real deployment would put on the wire instead of a flat
/// per-type constant. A single-request batch costs exactly what the
/// unbatched protocol charged, keeping batch_size=1 accounting identical.
[[nodiscard]] std::uint64_t payload_wire_bytes(const Payload& payload);

/// Signs a payload as `sender`.
[[nodiscard]] Envelope make_envelope(ReplicaId sender,
                                     const crypto::KeyPair& keys,
                                     Payload payload);

/// Verifies the envelope signature.
[[nodiscard]] bool verify_envelope(const crypto::KeyRegistry& registry,
                                   const Envelope& envelope);

}  // namespace findep::bft
