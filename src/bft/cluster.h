// BftCluster: a whole replicated deployment in one object — replicas,
// client, simulated network — plus the safety/liveness checkers the
// experiments assert on. This is the harness both the test suite and the
// benchmark binaries drive. The ordering protocol is an axis: the same
// cluster object runs a PBFT deployment or a chained-HotStuff one
// (ClusterOptions::protocol), exposing the protocol-neutral observable
// surface either way.
#pragma once

#include <memory>
#include <vector>

#include "bft/replica.h"
#include "net/network.h"
#include "replication/hotstuff.h"
#include "sim/simulator.h"

namespace findep::bft {

struct ClusterOptions {
  net::NetworkOptions network;
  ReplicaOptions replica;
  std::uint64_t seed = 99;
  /// Which ordering protocol every replica runs.
  replication::Protocol protocol = replication::Protocol::kPbft;
};

/// Per-request latency record (submit time → first honest execution).
struct RequestTrace {
  std::uint64_t request_id = 0;
  double submitted_at = 0.0;
  double executed_at = -1.0;  // < 0 while unexecuted

  [[nodiscard]] bool done() const noexcept { return executed_at >= 0.0; }
  [[nodiscard]] double latency() const noexcept {
    return executed_at - submitted_at;
  }
};

class BftCluster {
 public:
  /// Unit-weight cluster of n replicas with the given behaviours
  /// (`behaviors` may be shorter than n; missing entries are honest).
  BftCluster(std::size_t n, ClusterOptions options,
             std::vector<Behavior> behaviors = {});

  /// Weighted cluster: `weights[i]` is replica i's voting power.
  BftCluster(std::vector<double> weights, ClusterOptions options,
             std::vector<Behavior> behaviors);

  /// Submits a fresh client request (to every replica, as a PBFT client
  /// would on retry; dedup is by request id). Returns the request id.
  std::uint64_t submit();

  /// Runs the simulation until all honest replicas have executed at least
  /// `count` entries or `deadline` (simulated seconds) passes. Returns
  /// true when the target was reached.
  bool run_until_executed(std::size_t count, double deadline);

  /// Runs the simulation for `duration` simulated seconds.
  void run_for(double duration);

  /// Safety: executed logs of honest replicas are pairwise
  /// prefix-consistent (same request digest at every common seq).
  [[nodiscard]] bool logs_consistent() const;

  /// Minimum executed count over honest replicas.
  [[nodiscard]] std::size_t min_honest_executed() const;

  [[nodiscard]] std::size_t size() const noexcept { return replicas_.size(); }
  /// Protocol-neutral view of replica i (what generic metrics read).
  [[nodiscard]] replication::OrderingProtocol& node(std::size_t i) {
    return *replicas_[i];
  }
  [[nodiscard]] const replication::OrderingProtocol& node(
      std::size_t i) const {
    return *replicas_[i];
  }
  /// PBFT-typed view of replica i. Requires protocol == kPbft.
  [[nodiscard]] Replica& replica(std::size_t i);
  [[nodiscard]] const Replica& replica(std::size_t i) const;
  /// HotStuff-typed view of replica i. Requires protocol == kHotStuff.
  [[nodiscard]] replication::HotStuff& hotstuff(std::size_t i);
  [[nodiscard]] const replication::HotStuff& hotstuff(std::size_t i) const;
  [[nodiscard]] sim::Simulator& simulator() noexcept { return sim_; }
  [[nodiscard]] net::SimNetwork& network() noexcept { return *network_; }
  [[nodiscard]] const std::vector<RequestTrace>& traces() const noexcept {
    return traces_;
  }

  /// Mean commit latency over completed requests (seconds); requires at
  /// least one completed request.
  [[nodiscard]] double mean_latency() const;

  /// Nearest-rank latency percentile over completed requests (seconds);
  /// `q` in (0, 1], e.g. 0.5 for the median, 0.99 for p99. Requires at
  /// least one completed request.
  [[nodiscard]] double latency_percentile(double q) const;

  /// Number of submitted requests some honest replica has executed.
  /// Batching note: a RequestTrace completes when its *request* first
  /// executes at an honest replica — slot (batch) granularity never leaks
  /// into latency semantics.
  [[nodiscard]] std::size_t completed_requests() const;

  /// Simulated time of the last request completion (0 when none).
  [[nodiscard]] double last_completion_time() const;

  /// Highest execution horizon over honest replicas.
  [[nodiscard]] SeqNum max_honest_last_executed() const;

  /// Honest replicas whose execution horizon trails the honest maximum —
  /// the laggards state transfer exists to rescue (0 once converged).
  [[nodiscard]] std::size_t stranded_replicas() const;

  /// Completed state transfers summed over all replicas.
  [[nodiscard]] std::uint64_t state_transfers_completed() const;

  /// StateResponse wire bytes received, summed over all replicas.
  [[nodiscard]] std::uint64_t state_transfer_bytes() const;

  /// Verification tasks submitted to replica worker pools, summed over
  /// all replicas (0 under crypto=free).
  [[nodiscard]] std::uint64_t verify_tasks() const;

  /// Pool tasks shed as stale, summed over all replicas.
  [[nodiscard]] std::uint64_t verify_dropped_stale() const;

 private:
  void init(std::vector<double> weights, std::vector<Behavior> behaviors);
  void observe_executions();

  sim::Simulator sim_;
  ClusterOptions options_;
  std::unique_ptr<net::SimNetwork> network_;
  crypto::KeyRegistry registry_;
  std::unique_ptr<crypto::KeyPair> client_keys_;
  std::vector<std::unique_ptr<replication::OrderingProtocol>> replicas_;
  std::vector<Behavior> behaviors_;
  std::vector<RequestTrace> traces_;
  /// Per-replica cursor into executed() already scanned (and the count of
  /// real, non-noop entries seen so far), so observation is O(new).
  std::vector<std::size_t> observed_;
  std::vector<std::size_t> real_executed_;
  std::uint64_t next_request_id_ = 1;
  net::NodeId client_id_ = 0;
};

}  // namespace findep::bft
