// Compatibility shim: the PBFT replica moved behind the layered
// replication core (src/replication/) as one of several ordering
// protocols. The wire vocabulary stays here in findep::bft
// (bft/messages.h); the replica itself, its options and the behaviour
// enum now live in findep::replication. Existing code — the cluster
// harness, scenarios, campaign engine, tests — keeps compiling against
// the bft:: names via the aliases below.
#pragma once

#include "replication/pbft.h"

namespace findep::bft {

using Behavior = replication::Behavior;
using ReplicaOptions = replication::ReplicaOptions;
using Replica = replication::Pbft;

}  // namespace findep::bft
