// A PBFT replica over the simulated network.
//
// Implements the normal three-phase case (pre-prepare / prepare / commit)
// over *request batches* (one consensus instance orders a block of client
// requests; see ReplicaOptions::batch_size), checkpointing, and view
// changes with NEW-VIEW proof verification, using
// *weighted* quorums: each replica carries a voting power w_i and
// certificates require strictly more than 2/3 of the total power (for
// unit weights and n = 3f+1 this is exactly the classic 2f+1). Safety
// holds while Byzantine power ≤ 1/3 of total — precisely the budget the
// diversity core bounds via the configuration distribution.
//
// Byzantine behaviours built in for fault-injection experiments:
//   kSilent     — never sends anything (fail-stop from the start).
//   kEquivocate — as primary, proposes conflicting requests for the same
//                 sequence number to different halves of the cluster.
//   kCollude    — kEquivocate as primary, and additionally lends its
//                 commit weight to *every* digest it hears of (prepare +
//                 commit without conflict checks). A coalition of
//                 colluders with power > 1/3 of the total can drive two
//                 conflicting commit certificates through — the exact
//                 safety threshold of the paper — whereas any weaker
//                 coalition (and any number of plain equivocators)
//                 cannot.
//   kCensor     — as primary, silently ignores requests with odd ids
//                 (a client-selective starvation attack: the cluster
//                 keeps making progress on everything else).
//
// Checkpoint-anchored state transfer (DESIGN.md "State transfer"): a
// replica that observes credible evidence of committed state above its
// own execution horizon — a stable-checkpoint quorum it adopted, or
// > 1/3 of voting power claiming checkpoints it has not executed —
// fetches the missing log suffix from a random up-to-date peer, verifies
// the checkpoint digest against the signed vote quorum carried in the
// response, and resumes normal execution. This is what un-strands
// laggards after long outages (churn experiments with < 1/3 of weight
// offline for many checkpoint intervals).
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "bft/messages.h"
#include "crypto/cost.h"
#include "net/network.h"
#include "runtime/workers.h"
#include "sim/simulator.h"
#include "support/rng.h"

namespace findep::bft {

enum class Behavior : std::uint8_t {
  kHonest,
  kSilent,
  kEquivocate,
  kCollude,
  kCensor,
};

struct ReplicaOptions {
  /// Seconds a known-but-unexecuted request may age before the replica
  /// starts a view change.
  double request_timeout = 1.0;
  /// Patience for a new view to be installed before escalating further.
  double view_change_timeout = 1.5;
  /// Execute-to-checkpoint distance.
  SeqNum checkpoint_interval = 16;
  /// Primary-side batching: accumulate pending requests and cut a batch
  /// as soon as `batch_size` are queued, or `batch_timeout` simulated
  /// seconds after the first queued request — whichever comes first.
  /// batch_size = 1 cuts on every request immediately and never arms the
  /// timer, which is behaviourally identical to the unbatched protocol.
  /// batch_timeout must stay strictly below request_timeout — a lone
  /// request waiting out a slower batch timer lets the backups' request
  /// timers fire first, costing a spurious view change per light-load
  /// lull. The constructor rejects the misconfiguration outright.
  std::size_t batch_size = 1;
  double batch_timeout = 0.05;
  /// Checkpoint-anchored state transfer (off only for regression sweeps
  /// that need the historical stranding behaviour).
  bool enable_state_transfer = true;
  /// Grace before the first fetch once lag is observed: in-flight slots
  /// usually commit from live traffic within a round trip, so a fetch is
  /// only worth its bytes when the gap persists.
  double state_transfer_grace = 0.2;
  /// Patience per fetch attempt before retrying another random peer.
  double state_transfer_timeout = 1.0;
  /// Primary flow control: the primary never proposes a sequence number
  /// more than this far ahead of its stable checkpoint. Without the
  /// bound, a primary outrunning a slow checkpoint quorum piles up
  /// unbounded in-flight slots (each one full consensus state on every
  /// replica); with it, a stalled checkpoint back-pressures proposals
  /// instead of memory. Deferred batches stay queued and are cut as soon
  /// as the stable checkpoint advances. Must be at least
  /// 2 * checkpoint_interval, or the bound would bite during the
  /// perfectly healthy execute-ahead-of-stability phase.
  SeqNum high_watermark_window = 128;
  /// Seed of the replica-local RNG (random peer choice during state
  /// transfer). The cluster harness derives one per replica from the
  /// cluster seed.
  std::uint64_t rng_seed = 0x5eedb1f7;
  Behavior behavior = Behavior::kHonest;
  /// Modeled CPU cost of the signature primitives. The default
  /// (CostModel::free()) disables cost modeling entirely: no worker
  /// pool is created, sends are not delayed, and runs are bit-identical
  /// to the historical protocol. A non-free model (a) serializes sends
  /// behind a per-replica signing accumulator and (b) offloads inbound
  /// signature verification onto `crypto_workers` modeled cores
  /// (runtime::WorkerPool) — consensus traffic at critical priority,
  /// client requests speculative, dead-view work shed on dequeue.
  crypto::CostModel cost_model{};
  /// Modeled verification cores per replica (>= 1). Only read when
  /// cost_model is non-free.
  std::size_t crypto_workers = 1;
};

class Replica {
 public:
  /// `weights[i]` is replica i's voting power; `directory[i]` its public
  /// key (both indexed by ReplicaId, same size). `keys` must match
  /// `directory[id]` and be enrolled in `registry`.
  Replica(ReplicaId id, std::vector<double> weights,
          std::vector<crypto::PublicKey> directory,
          crypto::KeyRegistry& registry, crypto::KeyPair keys,
          net::SimNetwork& network, ReplicaOptions options);

  Replica(const Replica&) = delete;
  Replica& operator=(const Replica&) = delete;

  /// Attaches the network handler. Call once before the simulation runs.
  void start();

  /// Client entry point: hands a request to this replica (it forwards to
  /// the primary if needed and arms the liveness timer).
  void submit(const Request& request);

  [[nodiscard]] ReplicaId id() const noexcept { return id_; }
  [[nodiscard]] View view() const noexcept { return view_; }
  [[nodiscard]] Behavior behavior() const noexcept {
    return options_.behavior;
  }
  [[nodiscard]] const std::vector<ExecutedEntry>& executed() const noexcept {
    return executed_;
  }
  [[nodiscard]] SeqNum last_executed() const noexcept {
    return last_executed_;
  }
  [[nodiscard]] SeqNum stable_checkpoint() const noexcept {
    return stable_checkpoint_;
  }
  [[nodiscard]] std::uint64_t view_changes_started() const noexcept {
    return view_changes_started_;
  }
  /// Batch cuts deferred by the high-watermark bound (primary only;
  /// each deferral event counts, including repeats for the same batch).
  [[nodiscard]] std::uint64_t proposals_deferred() const noexcept {
    return proposals_deferred_;
  }
  /// State digest of this replica's stable checkpoint (meaningful only
  /// when stable_checkpoint() > 0).
  [[nodiscard]] const crypto::Digest& stable_checkpoint_digest()
      const noexcept {
    return stable_checkpoint_digest_;
  }
  /// Completed (verified + adopted) state transfers.
  [[nodiscard]] std::uint64_t state_transfers_completed() const noexcept {
    return state_transfers_completed_;
  }
  /// State responses rejected for a bad proof, bad entries or a state
  /// digest mismatch (each followed by a retry at another peer).
  [[nodiscard]] std::uint64_t state_transfers_rejected() const noexcept {
    return state_transfers_rejected_;
  }
  /// StateRequest messages sent (first attempts and retries).
  [[nodiscard]] std::uint64_t state_transfer_requests() const noexcept {
    return state_transfer_requests_;
  }
  /// Wire bytes of every StateResponse received (adopted or rejected).
  [[nodiscard]] std::uint64_t state_transfer_bytes() const noexcept {
    return state_transfer_bytes_;
  }
  /// Messages rejected because they arrived corrupted (the simulated
  /// equivalent of a signature-verification failure over flipped wire
  /// bits). A nonzero count is direct evidence the fault was *detected*.
  [[nodiscard]] std::uint64_t corrupted_rejected() const noexcept {
    return corrupted_rejected_;
  }
  /// Verification tasks submitted to the worker pool (0 under
  /// crypto=free, which never builds a pool).
  [[nodiscard]] std::uint64_t verify_tasks() const noexcept {
    return verify_pool_ != nullptr ? verify_pool_->stats().submitted : 0;
  }
  /// Pool tasks shed by the stale check (dead-view traffic dropped at
  /// dequeue without consuming worker time).
  [[nodiscard]] std::uint64_t verify_dropped_stale() const noexcept {
    return verify_pool_ != nullptr ? verify_pool_->stats().dropped_stale
                                   : 0;
  }
  /// Modeled worker-occupancy seconds spent verifying.
  [[nodiscard]] double verify_busy_seconds() const noexcept {
    return verify_pool_ != nullptr ? verify_pool_->stats().busy_seconds
                                   : 0.0;
  }

  [[nodiscard]] ReplicaId primary_of(View v) const noexcept {
    return static_cast<ReplicaId>(v % weights_.size());
  }
  [[nodiscard]] bool is_primary() const noexcept {
    return primary_of(view_) == id_;
  }

  /// The batch used to fill sequence gaps during view changes: empty, so
  /// executing it is a no-op at request granularity.
  [[nodiscard]] static Batch noop_batch();

 private:
  /// Consensus state of one sequence number. One slot agrees on one
  /// *batch*; execution unrolls the batch into per-request log entries.
  struct Slot {
    bool have_preprepare = false;
    Batch batch;
    crypto::Digest batch_digest;
    /// Votes keyed by digest then sender (handles out-of-order arrival
    /// and equivocation).
    std::map<crypto::Digest, std::map<ReplicaId, double>> prepare_votes;
    std::map<crypto::Digest, std::map<ReplicaId, double>> commit_votes;
    bool sent_prepare = false;
    bool sent_commit = false;
    bool prepared = false;
    View prepared_view = 0;
    bool committed = false;
  };

  // --- dispatch ---------------------------------------------------------
  void on_message(const net::Message& raw);
  /// The post-verification half of on_message: routes the payload to its
  /// handler. Shared by the inline crypto=free path and the worker-pool
  /// completion path, so offloading cannot drift from the historical
  /// dispatch semantics.
  void dispatch_payload(const Envelope& env, net::NodeId raw_from,
                        std::uint64_t raw_bytes);
  /// Modeled-crypto inbound path: queues envelope verification on the
  /// worker pool (critical lane for consensus/recovery traffic,
  /// speculative for client requests; dead-view work shed on dequeue)
  /// and dispatches from the in-order completion.
  void offload_verify(const net::Message& raw, const Envelope& env);
  /// Stale predicate for a pool task carrying `payload`, or null when
  /// the payload class never goes stale.
  [[nodiscard]] runtime::WorkerPool::StaleCheck make_stale_check(
      const Payload& payload) const;
  void on_request(const Request& request, net::NodeId from);
  void on_preprepare(const PrePrepare& pp, ReplicaId from);
  void on_prepare(const Prepare& p, ReplicaId from);
  void on_commit(const Commit& c, ReplicaId from);
  void on_checkpoint(const Checkpoint& cp, ReplicaId from,
                     const crypto::Signature& signature);
  void on_viewchange(const ViewChange& vc, ReplicaId from,
                     const crypto::Signature& signature);
  void on_newview(const NewView& nv, ReplicaId from);
  void on_state_request(const StateRequest& sr, ReplicaId from);
  void on_state_response(const StateResponse& resp, ReplicaId from);

  // --- normal case --------------------------------------------------------
  void enqueue_for_proposal(const Request& request);
  void cut_batch();
  /// Re-attempts a batch cut that the high-watermark bound deferred.
  /// Called wherever the stable checkpoint advances.
  void retry_deferred_cut();
  void propose(Batch batch);
  void accept_preprepare(const PrePrepare& pp);
  void maybe_prepared(SeqNum seq);
  void maybe_committed(SeqNum seq);
  void execute_ready();
  void maybe_checkpoint();

  // --- view change ----------------------------------------------------
  void replay_future_messages();
  void start_view_change(View target);
  void maybe_assemble_new_view(View target);
  [[nodiscard]] static std::vector<PrePrepare> compute_reproposals(
      View target, const std::vector<SignedViewChange>& proofs);
  /// Verifies a NEW-VIEW's embedded view-change quorum and recomputed
  /// re-proposals (shared by on_newview and state-transfer adoption —
  /// NEW-VIEW is self-certifying, so it can be relayed).
  [[nodiscard]] bool verify_new_view(const NewView& nv) const;
  void install_new_view(const NewView& nv);

  // --- state transfer -------------------------------------------------
  /// Records a peer's signed claim of a stable/executed seq (checkpoint
  /// votes, view-change stable fields, new-view proofs). One cell per
  /// replica, so Byzantine peers cannot bloat it.
  void note_peer_claim(ReplicaId from, SeqNum seq);
  /// The highest seq claimed at-or-above by > 1/3 of voting power beyond
  /// our execution horizon — at least one *honest* replica can prove a
  /// stable checkpoint there. 0 when we are not credibly behind.
  [[nodiscard]] SeqNum claims_catchup_target() const;
  /// Arms the grace timer when we are credibly behind and no fetch is in
  /// flight.
  void maybe_schedule_state_fetch();
  /// One fetch attempt: re-check the target, pick a random up-to-date
  /// peer (avoiding the previous one when possible), send StateRequest,
  /// re-arm the retry timer.
  void state_fetch_tick();
  void disarm_state_fetch_timer();
  /// State digest of this log extended by `extra` (what maybe_checkpoint
  /// hashes, and what a state response's entries must reproduce).
  [[nodiscard]] crypto::Digest state_digest_with(
      const std::vector<ExecutedEntry>& extra) const;

  // --- helpers ------------------------------------------------------------
  // Byte accounting is derived from the payload itself
  // (payload_wire_bytes), so variable-length payloads — batches,
  // view changes carrying prepared batches — are charged what they carry.
  void broadcast(Payload payload);
  void send_to(net::NodeId to, Payload payload);
  [[nodiscard]] double weight_of(ReplicaId r) const;
  [[nodiscard]] double vote_weight(
      const std::map<ReplicaId, double>& votes) const;
  [[nodiscard]] bool is_quorum(double weight) const noexcept {
    return weight > 2.0 * total_weight_ / 3.0;
  }
  [[nodiscard]] bool is_third(double weight) const noexcept {
    return weight > total_weight_ / 3.0;
  }
  /// Registers a liveness deadline for a request id that just became
  /// pending (no-op if one is already tracked — retransmissions must not
  /// push a starved request's deadline back).
  void track_request_deadline(std::uint64_t request_id);
  /// Rebases every tracked deadline to now + request_timeout (view
  /// installation and state-transfer adoption grant the new regime a
  /// fresh timeout, as the single-timer design did).
  void refresh_request_deadlines();
  void arm_request_timer();
  void disarm_request_timer();
  void request_timer_fired();
  /// kCollude: endorse (prepare + commit) a digest we heard of, once.
  void collude_endorse(View v, SeqNum seq, const crypto::Digest& digest);
  void arm_viewchange_timer(View target);
  void disarm_viewchange_timer();
  void arm_batch_timer();
  void disarm_batch_timer();

  ReplicaId id_;
  std::vector<double> weights_;
  std::vector<crypto::PublicKey> directory_;
  double total_weight_ = 0.0;
  crypto::KeyRegistry* registry_;
  crypto::KeyPair keys_;
  net::SimNetwork* network_;
  ReplicaOptions options_;

  View view_ = 0;
  bool in_view_change_ = false;
  View pending_view_ = 0;
  SeqNum next_seq_ = 1;  // primary's allocator
  std::map<SeqNum, Slot> slots_;
  SeqNum last_executed_ = 0;
  std::vector<ExecutedEntry> executed_;
  std::unordered_map<std::uint64_t, Request> pending_requests_;
  std::unordered_map<std::uint64_t, SeqNum> assigned_;  // primary only
  std::unordered_map<std::uint64_t, bool> executed_ids_;

  /// Primary-side batching: requests accepted but not yet proposed, in
  /// arrival order, plus their ids for O(1) duplicate suppression.
  std::vector<Request> batch_queue_;
  std::unordered_map<std::uint64_t, bool> queued_ids_;
  /// A batch cut is waiting for the stable checkpoint to advance
  /// (high-watermark back-pressure).
  bool cut_deferred_ = false;
  std::uint64_t proposals_deferred_ = 0;

  SeqNum stable_checkpoint_ = 0;
  crypto::Digest stable_checkpoint_digest_;
  /// The signed vote quorum that made stable_checkpoint_ stable — what a
  /// StateResponse hands a requester as proof.
  std::vector<SignedCheckpoint> stable_checkpoint_proof_;
  SeqNum last_checkpoint_sent_ = 0;
  /// seq -> state digest -> voters (digest-keyed so a Byzantine replica
  /// cannot contribute to a checkpoint it does not actually hold).
  /// Bounded two ways: seqs outside the watermark window above the
  /// stable checkpoint are rejected, and each sender gets one vote per
  /// seq — so Byzantine peers cannot bloat the map with far-future seqs
  /// or per-seq digest spam.
  std::map<SeqNum,
           std::map<crypto::Digest, std::map<ReplicaId, SignedCheckpoint>>>
      checkpoint_votes_;
  /// Highest checkpoint/stable seq each peer has credibly (signed)
  /// claimed; fixed size n. Feeds claims_catchup_target().
  std::vector<SeqNum> peer_claims_;

  std::map<View, std::vector<SignedViewChange>> viewchange_votes_;
  View newview_assembled_for_ = 0;
  std::uint64_t view_changes_started_ = 0;
  /// The NEW-VIEW we last installed, relayed inside state responses so a
  /// requester that missed the view change can re-verify and adopt it.
  std::optional<NewView> last_new_view_;

  /// State-transfer fetch machine: the timer doubles as the state (armed
  /// = a fetch is scheduled or awaiting a response).
  std::optional<sim::EventId> state_fetch_timer_;
  std::optional<ReplicaId> last_fetch_peer_;
  support::Rng st_rng_;
  std::uint64_t state_transfers_completed_ = 0;
  std::uint64_t state_transfers_rejected_ = 0;
  std::uint64_t state_transfer_requests_ = 0;
  std::uint64_t state_transfer_bytes_ = 0;

  /// Normal-case messages that arrived for a view we have not installed
  /// yet (we lag behind a view change); replayed after installation.
  /// Replaces the retransmission machinery of a real deployment.
  std::vector<Envelope> future_messages_;

  /// Per-request liveness deadlines in arrival order. Deadlines are
  /// nondecreasing (every entry is its arm-time + request_timeout), so
  /// one simulator timer armed for the front entry suffices; entries
  /// whose request already executed are popped lazily. This is what
  /// detects client-selective starvation: progress on *other* requests
  /// never pushes a starved request's deadline back.
  std::deque<std::pair<double, std::uint64_t>> request_deadlines_;
  /// kCollude bookkeeping: digests already endorsed per seq (pruned with
  /// slots_ at checkpoints).
  std::map<SeqNum, std::vector<crypto::Digest>> colluded_;
  std::uint64_t corrupted_rejected_ = 0;

  std::optional<sim::EventId> request_timer_;
  std::optional<sim::EventId> viewchange_timer_;
  std::optional<sim::EventId> batch_timer_;
  bool started_ = false;

  /// Modeled verification cores; null under crypto=free (the historical
  /// inline path, bit-identical to pre-cost-model builds).
  std::unique_ptr<runtime::WorkerPool> verify_pool_;
  /// Signing accumulator: the simulated time at which the protocol core
  /// finishes its last queued signature. Each send under a non-free cost
  /// model is scheduled at max(now, sign_ready_at_) + sign_seconds, so
  /// back-to-back sends serialize the way one signing core would.
  double sign_ready_at_ = 0.0;
};

}  // namespace findep::bft
