// A PBFT replica over the simulated network.
//
// Implements the normal three-phase case (pre-prepare / prepare / commit)
// over *request batches* (one consensus instance orders a block of client
// requests; see ReplicaOptions::batch_size), checkpointing, and view
// changes with NEW-VIEW proof verification, using
// *weighted* quorums: each replica carries a voting power w_i and
// certificates require strictly more than 2/3 of the total power (for
// unit weights and n = 3f+1 this is exactly the classic 2f+1). Safety
// holds while Byzantine power ≤ 1/3 of total — precisely the budget the
// diversity core bounds via the configuration distribution.
//
// Byzantine behaviours built in for fault-injection experiments:
//   kSilent     — never sends anything (fail-stop from the start).
//   kEquivocate — as primary, proposes conflicting requests for the same
//                 sequence number to different halves of the cluster.
//
// Known simplification (documented in DESIGN.md): there is no state
// transfer; a replica that falls behind a *stable checkpoint* (possible
// only for < 1/3 of weight) stays behind until the next checkpoint. The
// experiments never rely on such replicas.
#pragma once

#include <map>
#include <optional>
#include <unordered_map>
#include <vector>

#include "bft/messages.h"
#include "net/network.h"
#include "sim/simulator.h"

namespace findep::bft {

enum class Behavior : std::uint8_t {
  kHonest,
  kSilent,
  kEquivocate,
};

struct ReplicaOptions {
  /// Seconds a known-but-unexecuted request may age before the replica
  /// starts a view change.
  double request_timeout = 1.0;
  /// Patience for a new view to be installed before escalating further.
  double view_change_timeout = 1.5;
  /// Execute-to-checkpoint distance.
  SeqNum checkpoint_interval = 16;
  /// Primary-side batching: accumulate pending requests and cut a batch
  /// as soon as `batch_size` are queued, or `batch_timeout` simulated
  /// seconds after the first queued request — whichever comes first.
  /// batch_size = 1 cuts on every request immediately and never arms the
  /// timer, which is behaviourally identical to the unbatched protocol.
  /// Keep batch_timeout well below request_timeout unless batches always
  /// fill by size: a lone request waiting out a slower batch timer lets
  /// the backups' request timers fire first, costing a spurious view
  /// change (the new primary flushes the partial batch on install, so it
  /// recovers — but each light-load lull pays one view change).
  std::size_t batch_size = 1;
  double batch_timeout = 0.05;
  Behavior behavior = Behavior::kHonest;
};

/// One executed log entry (what the state machine saw).
struct ExecutedEntry {
  SeqNum seq = 0;
  Request request;
};

class Replica {
 public:
  /// `weights[i]` is replica i's voting power; `directory[i]` its public
  /// key (both indexed by ReplicaId, same size). `keys` must match
  /// `directory[id]` and be enrolled in `registry`.
  Replica(ReplicaId id, std::vector<double> weights,
          std::vector<crypto::PublicKey> directory,
          crypto::KeyRegistry& registry, crypto::KeyPair keys,
          net::SimNetwork& network, ReplicaOptions options);

  Replica(const Replica&) = delete;
  Replica& operator=(const Replica&) = delete;

  /// Attaches the network handler. Call once before the simulation runs.
  void start();

  /// Client entry point: hands a request to this replica (it forwards to
  /// the primary if needed and arms the liveness timer).
  void submit(const Request& request);

  [[nodiscard]] ReplicaId id() const noexcept { return id_; }
  [[nodiscard]] View view() const noexcept { return view_; }
  [[nodiscard]] Behavior behavior() const noexcept {
    return options_.behavior;
  }
  [[nodiscard]] const std::vector<ExecutedEntry>& executed() const noexcept {
    return executed_;
  }
  [[nodiscard]] SeqNum last_executed() const noexcept {
    return last_executed_;
  }
  [[nodiscard]] SeqNum stable_checkpoint() const noexcept {
    return stable_checkpoint_;
  }
  [[nodiscard]] std::uint64_t view_changes_started() const noexcept {
    return view_changes_started_;
  }

  [[nodiscard]] ReplicaId primary_of(View v) const noexcept {
    return static_cast<ReplicaId>(v % weights_.size());
  }
  [[nodiscard]] bool is_primary() const noexcept {
    return primary_of(view_) == id_;
  }

  /// The batch used to fill sequence gaps during view changes: empty, so
  /// executing it is a no-op at request granularity.
  [[nodiscard]] static Batch noop_batch();

 private:
  /// Consensus state of one sequence number. One slot agrees on one
  /// *batch*; execution unrolls the batch into per-request log entries.
  struct Slot {
    bool have_preprepare = false;
    Batch batch;
    crypto::Digest batch_digest;
    /// Votes keyed by digest then sender (handles out-of-order arrival
    /// and equivocation).
    std::map<crypto::Digest, std::map<ReplicaId, double>> prepare_votes;
    std::map<crypto::Digest, std::map<ReplicaId, double>> commit_votes;
    bool sent_prepare = false;
    bool sent_commit = false;
    bool prepared = false;
    View prepared_view = 0;
    bool committed = false;
  };

  // --- dispatch ---------------------------------------------------------
  void on_message(const net::Message& raw);
  void on_request(const Request& request, net::NodeId from);
  void on_preprepare(const PrePrepare& pp, ReplicaId from);
  void on_prepare(const Prepare& p, ReplicaId from);
  void on_commit(const Commit& c, ReplicaId from);
  void on_checkpoint(const Checkpoint& cp, ReplicaId from);
  void on_viewchange(const ViewChange& vc, ReplicaId from,
                     const crypto::Signature& signature);
  void on_newview(const NewView& nv, ReplicaId from);

  // --- normal case --------------------------------------------------------
  void enqueue_for_proposal(const Request& request);
  void cut_batch();
  void propose(Batch batch);
  void accept_preprepare(const PrePrepare& pp);
  void maybe_prepared(SeqNum seq);
  void maybe_committed(SeqNum seq);
  void execute_ready();
  void maybe_checkpoint();

  // --- view change ----------------------------------------------------
  void replay_future_messages();
  void start_view_change(View target);
  void maybe_assemble_new_view(View target);
  [[nodiscard]] static std::vector<PrePrepare> compute_reproposals(
      View target, const std::vector<SignedViewChange>& proofs);
  void install_new_view(const NewView& nv);

  // --- helpers ------------------------------------------------------------
  // Byte accounting is derived from the payload itself
  // (payload_wire_bytes), so variable-length payloads — batches,
  // view changes carrying prepared batches — are charged what they carry.
  void broadcast(Payload payload);
  void send_to(net::NodeId to, Payload payload);
  [[nodiscard]] double weight_of(ReplicaId r) const;
  [[nodiscard]] double vote_weight(
      const std::map<ReplicaId, double>& votes) const;
  [[nodiscard]] bool is_quorum(double weight) const noexcept {
    return weight > 2.0 * total_weight_ / 3.0;
  }
  [[nodiscard]] bool is_third(double weight) const noexcept {
    return weight > total_weight_ / 3.0;
  }
  void arm_request_timer();
  void disarm_request_timer();
  void arm_viewchange_timer(View target);
  void disarm_viewchange_timer();
  void arm_batch_timer();
  void disarm_batch_timer();

  ReplicaId id_;
  std::vector<double> weights_;
  std::vector<crypto::PublicKey> directory_;
  double total_weight_ = 0.0;
  crypto::KeyRegistry* registry_;
  crypto::KeyPair keys_;
  net::SimNetwork* network_;
  ReplicaOptions options_;

  View view_ = 0;
  bool in_view_change_ = false;
  View pending_view_ = 0;
  SeqNum next_seq_ = 1;  // primary's allocator
  std::map<SeqNum, Slot> slots_;
  SeqNum last_executed_ = 0;
  std::vector<ExecutedEntry> executed_;
  std::unordered_map<std::uint64_t, Request> pending_requests_;
  std::unordered_map<std::uint64_t, SeqNum> assigned_;  // primary only
  std::unordered_map<std::uint64_t, bool> executed_ids_;

  /// Primary-side batching: requests accepted but not yet proposed, in
  /// arrival order, plus their ids for O(1) duplicate suppression.
  std::vector<Request> batch_queue_;
  std::unordered_map<std::uint64_t, bool> queued_ids_;

  SeqNum stable_checkpoint_ = 0;
  SeqNum last_checkpoint_sent_ = 0;
  /// seq -> state digest -> voters (digest-keyed so a Byzantine replica
  /// cannot contribute to a checkpoint it does not actually hold).
  std::map<SeqNum, std::map<crypto::Digest, std::map<ReplicaId, double>>>
      checkpoint_votes_;

  std::map<View, std::vector<SignedViewChange>> viewchange_votes_;
  View newview_assembled_for_ = 0;
  std::uint64_t view_changes_started_ = 0;

  /// Normal-case messages that arrived for a view we have not installed
  /// yet (we lag behind a view change); replayed after installation.
  /// Replaces the retransmission machinery of a real deployment.
  std::vector<Envelope> future_messages_;

  std::optional<sim::EventId> request_timer_;
  std::optional<sim::EventId> viewchange_timer_;
  std::optional<sim::EventId> batch_timer_;
  bool started_ = false;
};

}  // namespace findep::bft
