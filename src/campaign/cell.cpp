#include "campaign/cell.h"

#include <memory>
#include <utility>

#include "bft/cluster.h"
#include "campaign/fault.h"
#include "campaign/outcome.h"
#include "campaign/target.h"
#include "config/catalog.h"
#include "diversity/analyzer.h"
#include "runtime/registry.h"
#include "support/assert.h"
#include "support/rng.h"

namespace findep::campaign {

CampaignCellScenario::CampaignCellScenario(Params params)
    : params_(std::move(params)) {
  FINDEP_REQUIRE(params_.n >= 4);
  FINDEP_REQUIRE(params_.rate > 0.0 && params_.rate <= 1.0);
  FINDEP_REQUIRE(params_.requests >= 1);
  FINDEP_REQUIRE(params_.period_s > 0.0);
  FINDEP_REQUIRE(params_.deadline > 0.0);
  // Fail at construction, not mid-sweep: an unknown name in an overridden
  // axis should abort before any cell runs.
  (void)parse_fault_kind(params_.fault);
  (void)require_target_family(params_.target);
  if (params_.label.empty()) params_.label = grid_label(params_);
}

// Axis-explicit (the same "axis=value" form ParamSet::label() renders):
// the campaign reporter parses target/fault back out of instance names.
std::string CampaignCellScenario::grid_label(const Params& p) {
  std::string label = "target=" + p.target + " fault=" + p.fault +
                      " rate=" + runtime::ParamValue(p.rate).to_string() +
                      " n=" + std::to_string(p.n);
  if (p.protocol_axis) {
    label += std::string(" proto=") + replication::protocol_name(p.protocol);
  }
  return label;
}

std::string CampaignCellScenario::name() const {
  return "campaign/" + params_.label;
}

runtime::MetricRecord CampaignCellScenario::run(
    const runtime::RunContext& ctx) const {
  // Three independent streams off the cell seed: the fleet draw, the
  // fault draw, and the per-message corruption draws. Forked so a target
  // family consuming a different amount of randomness cannot perturb the
  // fault plan of an otherwise-identical cell.
  support::Rng root(support::mix64(ctx.seed ^ 0xca3ba1610f5eed11ULL));
  support::Rng fleet_rng = root.fork(1);
  support::Rng fault_rng = root.fork(2);
  auto link_rng = std::make_shared<support::Rng>(root.fork(3));

  const std::vector<diversity::ReplicaRecord> fleet =
      build_target_fleet(params_.target, params_.n, fleet_rng);
  const config::ComponentCatalog catalog = config::standard_catalog();
  const FaultKind kind = parse_fault_kind(params_.fault);
  const FaultPlan plan =
      plan_fault(kind, params_.rate, fleet, catalog, fault_rng);
  const diversity::DiversityReport diversity =
      diversity::DiversityAnalyzer::analyze(fleet);

  bft::ClusterOptions options;
  options.seed = ctx.seed;
  // Fast-LAN profile (same as the BFT suites): the subject is the fault,
  // not overload, so the offered load must commit comfortably inside
  // request_timeout on the healthy path.
  options.network.min_latency = 0.005;
  options.network.mean_extra_latency = 0.01;
  // Small checkpoint distance so a healed outage spans several intervals
  // and state transfer (not just live traffic) does the catching up.
  options.replica.checkpoint_interval = 4;
  options.protocol = params_.protocol;
  bft::BftCluster cluster(params_.n, options,
                          planned_behaviors(plan, params_.n));
  schedule_fault(plan, cluster, link_rng);

  for (std::size_t i = 0; i < params_.requests; ++i) {
    cluster.simulator().schedule_at(
        static_cast<double>(i) * params_.period_s,
        [&cluster] { (void)cluster.submit(); });
  }

  // Drive in slices until converged or out of time. Convergence is only
  // meaningful once the fault has settled (healed, or permanently
  // injected); the slice width quantizes times but keeps them
  // deterministic.
  constexpr double kSlice = 0.25;
  while (cluster.simulator().now() < params_.deadline) {
    cluster.run_for(kSlice);
    if (cluster.simulator().now() > plan.settle_at() &&
        cluster.completed_requests() == params_.requests &&
        unresolved_stragglers(cluster, plan) == 0) {
      break;
    }
    if (!cluster.simulator().has_pending()) break;
  }

  const Outcome outcome = classify_outcome(cluster, plan, params_.requests);

  runtime::MetricRecord metrics;
  metrics.set("faults_injected", static_cast<double>(plan.victims.size()));
  metrics.set("exposed_fraction", plan.exposed_fraction);
  metrics.set("victim_fraction", plan.victim_fraction);
  metrics.set("component_kind", static_cast<double>(plan.component_kind));
  metrics.set("fleet_entropy_bits", diversity.entropy_bits);
  metrics.set("worst_component_share",
              diversity.worst_overall ? diversity.worst_overall->power_fraction
                                      : 0.0);
  metrics.set("fault_detected", outcome.detected ? 1.0 : 0.0);
  metrics.set("recovered", outcome.recovered ? 1.0 : 0.0);
  metrics.set("safety_violated", outcome.safety_violated ? 1.0 : 0.0);
  metrics.set("liveness_stalled", outcome.liveness_stalled ? 1.0 : 0.0);
  metrics.set("committed_requests", static_cast<double>(outcome.committed));
  metrics.set("recovery_time_s", outcome.recovery_time_s);
  metrics.set("max_view_changes",
              static_cast<double>(outcome.max_view_changes));
  metrics.set("corrupted_rejected",
              static_cast<double>(outcome.corrupted_rejected));
  metrics.set("state_transfers", static_cast<double>(outcome.state_transfers));
  return metrics;
}

runtime::ParamGrid CampaignCellScenario::default_grid() {
  runtime::ParamGrid grid;
  std::vector<runtime::ParamValue> targets;
  for (const TargetFamily& family : target_families()) {
    targets.emplace_back(family.name);
  }
  grid.add_axis("target", std::move(targets));
  std::vector<runtime::ParamValue> faults;
  for (const auto& [fault_name, fault_kind] : fault_kinds()) {
    faults.emplace_back(fault_name);
  }
  grid.add_axis("fault", std::move(faults));
  grid.add_axis("rate", {1.0, 0.5});
  grid.add_axis("n", {7});
  return grid;
}

namespace {

const runtime::ScenarioRegistration kCampaign{{
    .name = "campaign",
    .description = "fault-injection campaign cells: target fleet × "
                   "component-correlated fault kind × exploitability rate, "
                   "classified as detected/recovered/safety/liveness",
    .grids =
        {
            CampaignCellScenario::default_grid(),
            // A compact HotStuff block over the same fault engine: the
            // faults live entirely in the network and behaviour layers,
            // so the campaign machinery is protocol-neutral — only the
            // detection evidence differs (pacemaker timeouts instead of
            // view changes).
            runtime::ParamGrid{{"target", {"uniform", "diverse"}},
                               {"fault",
                                {"crash", "partition", "corrupt", "censor"}},
                               {"rate", {1.0}},
                               {"n", {7}},
                               {"protocol", {"hotstuff"}}},
        },
    .factory =
        [](const runtime::ParamSet& p) -> std::unique_ptr<runtime::Scenario> {
      const std::string protocol =
          p.has("protocol") ? p.get_string("protocol") : "";
      return std::make_unique<CampaignCellScenario>(CampaignCellScenario::Params{
          .target = p.get_string("target"),
          .fault = p.get_string("fault"),
          .rate = p.get_double("rate"),
          .n = p.get_size("n"),
          .protocol = protocol.empty()
                          ? replication::Protocol::kPbft
                          : replication::parse_protocol(protocol),
          .protocol_axis = !protocol.empty()});
    },
}};

}  // namespace

}  // namespace findep::campaign
