// Campaign target families: named replica-fleet compositions a campaign
// cell can aim faults at.
//
// A *target family* fixes how the cell's replica configurations are drawn
// from the component catalog — the diversity profile under test. The four
// registered families span the paper's spectrum: a monoculture (every
// replica identical, one fault domain), sampled fleets at two popularity
// skews (§IV's zipf model), and the Lazarus-style round-robin assigner.
// Campaign rates and outcomes are then attributable to the *component*
// that was faulted, which is exactly the per-component resilience view
// the paper's safety condition reasons about.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "diversity/analyzer.h"
#include "support/rng.h"

namespace findep::campaign {

/// One registered fleet composition. `build` is deterministic in (n, rng):
/// a campaign cell derives the rng from its cell seed, so the same cell
/// always targets the same fleet no matter which worker runs it.
struct TargetFamily {
  std::string name;
  std::string description;
  std::function<std::vector<diversity::ReplicaRecord>(std::size_t n,
                                                      support::Rng& rng)>
      build;
};

/// All registered target families, in registration order (uniform,
/// diverse, skewed, lazarus).
[[nodiscard]] const std::vector<TargetFamily>& target_families();

/// Returns nullptr when `name` is not registered.
[[nodiscard]] const TargetFamily* find_target_family(const std::string& name);

/// Like find_target_family, but throws std::invalid_argument (listing the
/// registered names) instead of returning nullptr.
[[nodiscard]] const TargetFamily& require_target_family(
    const std::string& name);

/// Builds the named fleet. Throws std::invalid_argument (listing the
/// registered names) on an unknown family.
[[nodiscard]] std::vector<diversity::ReplicaRecord> build_target_fleet(
    const std::string& name, std::size_t n, support::Rng& rng);

}  // namespace findep::campaign
