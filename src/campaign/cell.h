// The campaign scenario family: one cell = one (target, fault, rate, n)
// grid point, run per seed like any other scenario.
//
// Registering campaign cells as a `runtime::ScenarioFamily` is the whole
// distribution story: every cell is a `runtime::TaskSpec`, so campaigns
// shard across workers through the existing `--emit-tasks` / `--worker` /
// `--merge` pipeline and merged output is byte-identical to an in-process
// run — nothing campaign-specific was added to the task layer.
//
// A cell derives three rng streams from its run seed (fleet draw, fault
// draw, per-message corruption draws), builds the target fleet, resolves
// the fault plan, runs a PBFT cluster under open-loop load with the fault
// scheduled at t = inject_at, and emits the outcome classification plus
// the fleet's diversity quantities so the reporter can attribute rates to
// the faulted component kind.
#pragma once

#include <cstddef>
#include <string>

#include "replication/options.h"
#include "runtime/param.h"
#include "runtime/scenario.h"

namespace findep::campaign {

class CampaignCellScenario : public runtime::Scenario {
 public:
  struct Params {
    /// Target-family name (see campaign/target.h).
    std::string target = "diverse";
    /// Fault-kind name (see campaign/fault.h).
    std::string fault = "crash";
    /// Exploitability in (0, 1]: per-exposed-replica success probability
    /// (per-message flip probability for the corruption kind).
    double rate = 1.0;
    std::size_t n = 7;
    /// Open-loop load: one request every `period_s`, `requests` total.
    std::size_t requests = 21;
    double period_s = 0.5;
    double deadline = 45.0;
    /// Ordering protocol under fault (the optional `protocol` axis).
    /// Cells from protocol-less grids keep their historical labels; a
    /// grid spelling the axis out appends " proto=<name>" (always last).
    replication::Protocol protocol = replication::Protocol::kPbft;
    bool protocol_axis = false;
    std::string label;
  };

  [[nodiscard]] static std::string grid_label(const Params& p);

  explicit CampaignCellScenario(Params params);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] runtime::MetricRecord run(
      const runtime::RunContext& ctx) const override;

  /// The default campaign grid (every target × every fault × two rates),
  /// the grid `findep-campaign` spec files override axes of.
  [[nodiscard]] static runtime::ParamGrid default_grid();

 private:
  Params params_;
};

}  // namespace findep::campaign
