#include "campaign/spec.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "campaign/cell.h"
#include "campaign/fault.h"
#include "campaign/target.h"
#include "support/assert.h"

namespace findep::campaign {

namespace {

[[noreturn]] void fail(std::size_t line, const std::string& what) {
  throw std::invalid_argument("campaign spec line " + std::to_string(line) +
                              ": " + what);
}

std::string trim(const std::string& text) {
  std::size_t begin = text.find_first_not_of(" \t");
  if (begin == std::string::npos) return {};
  std::size_t end = text.find_last_not_of(" \t");
  return text.substr(begin, end - begin + 1);
}

double parse_double(const std::string& text, std::size_t line) {
  std::size_t consumed = 0;
  double value = 0.0;
  try {
    value = std::stod(text, &consumed);
  } catch (const std::exception&) {
    fail(line, "'" + text + "' is not a number");
  }
  if (consumed != text.size()) fail(line, "'" + text + "' is not a number");
  return value;
}

std::uint64_t parse_u64(const std::string& text, std::size_t line) {
  std::size_t consumed = 0;
  unsigned long long value = 0;
  try {
    value = std::stoull(text, &consumed);
  } catch (const std::exception&) {
    fail(line, "'" + text + "' is not a positive integer");
  }
  if (consumed != text.size() || text[0] == '-') {
    fail(line, "'" + text + "' is not a positive integer");
  }
  return value;
}

/// Per-axis semantic validation, so a bad spec dies at parse time with a
/// line number instead of mid-campaign in a factory.
void validate_axis_value(const std::string& axis, const std::string& value,
                         std::size_t line) {
  if (axis == "target") {
    try {
      (void)require_target_family(value);
    } catch (const std::invalid_argument& e) {
      fail(line, e.what());
    }
  } else if (axis == "fault") {
    try {
      (void)parse_fault_kind(value);
    } catch (const std::invalid_argument& e) {
      fail(line, e.what());
    }
  } else if (axis == "rate") {
    const double rate = parse_double(value, line);
    if (rate <= 0.0 || rate > 1.0) {
      fail(line, "rate " + value + " outside (0, 1]");
    }
  } else if (axis == "n") {
    if (parse_u64(value, line) < 4) {
      fail(line, "n must be at least 4 (got " + value + ")");
    }
  }
}

}  // namespace

CampaignSpec parse_campaign_spec(const std::string& text) {
  static const std::vector<std::string> kAxes = {"target", "fault", "rate",
                                                 "n"};
  CampaignSpec spec;
  std::istringstream in(text);
  std::string raw;
  std::size_t line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    if (const std::size_t hash = raw.find('#'); hash != std::string::npos) {
      raw.resize(hash);
    }
    const std::string line = trim(raw);
    if (line.empty()) continue;

    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) {
      fail(line_no, "expected 'axis = value, ...' (no '=')");
    }
    const std::string axis = trim(line.substr(0, eq));
    const std::string rhs = trim(line.substr(eq + 1));
    if (axis.empty()) fail(line_no, "missing axis name before '='");
    if (rhs.empty()) fail(line_no, "axis '" + axis + "' has no values");

    if (axis == "seeds") {
      if (spec.seeds.has_value()) fail(line_no, "duplicate 'seeds'");
      const std::uint64_t seeds = parse_u64(rhs, line_no);
      if (seeds == 0) fail(line_no, "seeds must be positive");
      spec.seeds = seeds;
      continue;
    }

    bool known = false;
    for (const std::string& name : kAxes) known = known || name == axis;
    if (!known) {
      std::string all = "seeds";
      for (const std::string& name : kAxes) all = name + ", " + all;
      fail(line_no, "unknown axis '" + axis + "' (known: " + all + ")");
    }
    for (const auto& [seen, values] : spec.overrides) {
      if (seen == axis) fail(line_no, "duplicate axis '" + axis + "'");
    }

    std::vector<std::string> values;
    std::size_t start = 0;
    while (start <= rhs.size()) {
      const std::size_t comma = rhs.find(',', start);
      const std::string value =
          trim(comma == std::string::npos ? rhs.substr(start)
                                          : rhs.substr(start, comma - start));
      if (value.empty()) fail(line_no, "empty value in axis '" + axis + "'");
      validate_axis_value(axis, value, line_no);
      for (const std::string& prior : values) {
        if (prior == value) {
          fail(line_no, "axis '" + axis + "' lists '" + value +
                            "' twice (overlapping cells)");
        }
      }
      values.push_back(value);
      if (comma == std::string::npos) break;
      start = comma + 1;
    }
    spec.overrides.emplace_back(axis, std::move(values));
  }
  return spec;
}

CampaignSpec load_campaign_spec(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot read campaign spec: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_campaign_spec(buffer.str());
}

runtime::ParamGrid campaign_grid(const CampaignSpec& spec) {
  runtime::ParamGrid grid = CampaignCellScenario::default_grid();
  for (const auto& [axis, values] : spec.overrides) {
    const bool known = grid.override_axis(axis, values);
    FINDEP_ASSERT(known);  // parse validated the axis names
  }
  return grid;
}

}  // namespace findep::campaign
