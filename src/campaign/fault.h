// Campaign fault kinds: what a campaign cell does to its target fleet.
//
// Every kind is *component-correlated*, the paper's failure mechanism: a
// cell first draws one faulted component, and the fault then hits exactly
// the replicas whose configuration contains it. Environmental kinds
// (crash, partition, corruption) draw the component uniformly from those
// present in the fleet; adversarial kinds (collude, censor) pick it
// through the existing worst-case vulnerability adversary
// (`faults::VulnerabilityAdversary`, greedy max-coverage) — an attacker
// exploits the component with the biggest blast radius, the environment
// does not choose. The per-cell `rate` is the exploitability: each exposed
// replica succumbs independently with probability `rate` (for the
// corruption kind, `rate` is instead the per-message flip probability on
// links touching exposed replicas).
//
// Injection happens through the runtime hooks PR 8 added: node crash /
// restart (`net::SimNetwork::set_node_down`), partition groups,
// in-flight corruption (`set_corrupt_policy` + receiver-side rejection),
// and the `bft::Behavior` models for colluding equivocation and
// client-selective censorship.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "bft/cluster.h"
#include "config/catalog.h"
#include "diversity/analyzer.h"
#include "support/rng.h"

namespace findep::campaign {

enum class FaultKind : std::uint8_t {
  kCrash,         ///< exposed replicas drop off the network, no restart
  kCrashRestart,  ///< crash, then restart after the heal delay
  kPartition,     ///< exposed replicas split into their own partition,
                  ///< healed after the heal delay
  kCorrupt,       ///< messages on links touching exposed replicas flip
                  ///< bits with probability `rate` until the heal
  kCollude,       ///< exposed replicas turn Byzantine: equivocate as
                  ///< primary, endorse every digest (bft::kCollude)
  kCensor,        ///< exposed replicas censor odd-id client requests when
                  ///< primary (bft::kCensor)
};

/// All kinds in declaration order, with their spelled names (the `fault`
/// axis values of a campaign spec).
[[nodiscard]] const std::vector<std::pair<std::string, FaultKind>>&
fault_kinds();

[[nodiscard]] const std::string& to_string(FaultKind kind);

/// Throws std::invalid_argument (listing the known names) on an unknown
/// kind name.
[[nodiscard]] FaultKind parse_fault_kind(const std::string& name);

/// True for kinds realized as a `bft::Behavior` fixed at cluster
/// construction (the vulnerability is present from t = 0) rather than a
/// scheduled runtime injection.
[[nodiscard]] bool is_byzantine(FaultKind kind) noexcept;

/// One cell's resolved fault: the component drawn, who it hits, when.
struct FaultPlan {
  FaultKind kind = FaultKind::kCrash;
  config::ComponentId component;
  config::ComponentKind component_kind = config::ComponentKind::kOperatingSystem;
  /// Replica indices that succumbed (for kCorrupt: the exposed link
  /// endpoints; per-message draws happen at send time).
  std::vector<std::size_t> victims;
  /// Power fraction exposed to the component (pre-rate) — the Σ f_t^i
  /// blast radius of the safety condition.
  double exposed_fraction = 0.0;
  /// Power fraction that actually succumbed.
  double victim_fraction = 0.0;
  double rate = 1.0;
  double inject_at = 2.0;
  /// Crash-restart / partition / corruption end this long after
  /// inject_at; kCrash never heals.
  double heal_after = 4.0;

  /// True when the fault stops acting at inject_at + heal_after.
  [[nodiscard]] bool heals() const noexcept {
    return kind == FaultKind::kCrashRestart || kind == FaultKind::kPartition ||
           kind == FaultKind::kCorrupt;
  }
  /// Simulated time after which the cluster is expected to converge.
  [[nodiscard]] double settle_at() const noexcept {
    return heals() ? inject_at + heal_after : inject_at;
  }
};

/// Resolves a cell's fault against a fleet: draws the component (worst-
/// case for adversarial kinds, uniform via `rng` otherwise), applies the
/// per-replica rate, and looks the component's kind up in `catalog` (the
/// catalog the target families sample from). Deterministic in (fleet,
/// rng state).
[[nodiscard]] FaultPlan plan_fault(
    FaultKind kind, double rate,
    const std::vector<diversity::ReplicaRecord>& fleet,
    const config::ComponentCatalog& catalog, support::Rng& rng);

/// Behaviors vector for cluster construction: victims of a byzantine
/// kind get their Behavior, everyone else stays honest.
[[nodiscard]] std::vector<bft::Behavior> planned_behaviors(
    const FaultPlan& plan, std::size_t n);

/// Schedules the plan's runtime injections on the cluster's simulator
/// (no-op for byzantine kinds). `link_rng` feeds the per-message
/// corruption draws and must stay alive for the whole run — the shared
/// pointer is captured by the installed policy.
void schedule_fault(const FaultPlan& plan, bft::BftCluster& cluster,
                    const std::shared_ptr<support::Rng>& link_rng);

}  // namespace findep::campaign
