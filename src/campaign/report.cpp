#include "campaign/report.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <stdexcept>

#include "config/component.h"

namespace findep::campaign {

namespace {

/// Extracts one "axis=value" from a cell instance name
/// ("campaign/target=uniform fault=crash rate=1 n=7").
std::string axis_of(const std::string& scenario, const std::string& axis) {
  const std::string needle = axis + "=";
  std::size_t pos = scenario.find(needle);
  while (pos != std::string::npos &&
         !(pos == 0 || scenario[pos - 1] == ' ' || scenario[pos - 1] == '/')) {
    pos = scenario.find(needle, pos + 1);
  }
  if (pos == std::string::npos) return "?";
  const std::size_t begin = pos + needle.size();
  const std::size_t end = scenario.find(' ', begin);
  return scenario.substr(begin, end == std::string::npos ? std::string::npos
                                                         : end - begin);
}

std::string component_kind_name(double value) {
  const auto raw = static_cast<long long>(value);
  if (raw < 0 || raw >= static_cast<long long>(config::kComponentKindCount)) {
    return "?";
  }
  return std::string(
      config::to_string(static_cast<config::ComponentKind>(raw)));
}

struct Accum {
  std::string key;
  std::size_t cells = 0;
  double detected = 0.0;
  double recovered = 0.0;
  double safety = 0.0;
  double stalled = 0.0;
  double recovery_sum = 0.0;
  std::size_t recovered_count = 0;
};

void accumulate(std::vector<Accum>& groups, const std::string& key,
                const runtime::MetricRecord& metrics) {
  Accum* group = nullptr;
  for (Accum& g : groups) {
    if (g.key == key) {
      group = &g;
      break;
    }
  }
  if (group == nullptr) {
    groups.push_back(Accum{.key = key});
    group = &groups.back();
  }
  ++group->cells;
  group->detected += metrics.get("fault_detected");
  group->recovered += metrics.get("recovered");
  group->safety += metrics.get("safety_violated");
  group->stalled += metrics.get("liveness_stalled");
  if (metrics.get("recovered") > 0.0) {
    group->recovery_sum += metrics.get("recovery_time_s");
    ++group->recovered_count;
  }
}

std::vector<CampaignGroupStats> finalize(const std::vector<Accum>& groups) {
  std::vector<CampaignGroupStats> stats;
  stats.reserve(groups.size());
  for (const Accum& g : groups) {
    const auto cells = static_cast<double>(g.cells);
    stats.push_back(CampaignGroupStats{
        .key = g.key,
        .cells = g.cells,
        .detected_rate = g.detected / cells,
        .recovered_rate = g.recovered / cells,
        .safety_violation_rate = g.safety / cells,
        .liveness_stall_rate = g.stalled / cells,
        .mean_recovery_s =
            g.recovered_count == 0
                ? -1.0
                : g.recovery_sum / static_cast<double>(g.recovered_count)});
  }
  return stats;
}

void render_groups(std::string& out, const std::string& title,
                   const std::vector<CampaignGroupStats>& groups) {
  out += "  by " + title + ":\n";
  std::size_t width = 0;
  for (const CampaignGroupStats& g : groups) {
    width = std::max(width, g.key.size());
  }
  for (const CampaignGroupStats& g : groups) {
    char buffer[160];
    std::snprintf(buffer, sizeof(buffer),
                  "    %-*s cells=%-3zu detected=%.3f recovered=%.3f "
                  "safety_violated=%.3f liveness_stalled=%.3f",
                  static_cast<int>(width), g.key.c_str(), g.cells,
                  g.detected_rate, g.recovered_rate, g.safety_violation_rate,
                  g.liveness_stall_rate);
    out += buffer;
    if (g.mean_recovery_s >= 0.0) {
      std::snprintf(buffer, sizeof(buffer), " recovery=%.2fs",
                    g.mean_recovery_s);
      out += buffer;
    }
    out += "\n";
  }
}

}  // namespace

std::string CampaignReport::to_string() const {
  std::string out = "fault campaign: " + std::to_string(cells) + " cells";
  if (errored_cells > 0) {
    out += " (" + std::to_string(errored_cells) + " errored, skipped)";
  }
  out += "\n";
  render_groups(out, "faulted component kind", by_component_kind);
  render_groups(out, "target", by_target);
  render_groups(out, "fault", by_fault);
  return out;
}

CampaignReport build_campaign_report(
    const std::vector<runtime::TaskResult>& results) {
  CampaignReport report;
  std::vector<Accum> by_kind;
  std::vector<Accum> by_target;
  std::vector<Accum> by_fault;
  for (const runtime::TaskResult& result : results) {
    if (result.family != "campaign") continue;
    if (!result.record.ok()) {
      ++report.errored_cells;
      continue;
    }
    ++report.cells;
    const runtime::MetricRecord& metrics = result.record.metrics;
    accumulate(by_kind, component_kind_name(metrics.get("component_kind")),
               metrics);
    accumulate(by_target, axis_of(result.scenario, "target"), metrics);
    accumulate(by_fault, axis_of(result.scenario, "fault"), metrics);
  }
  report.by_component_kind = finalize(by_kind);
  report.by_target = finalize(by_target);
  report.by_fault = finalize(by_fault);
  return report;
}

int report_main(const std::vector<std::string>& paths, std::ostream& out,
                std::ostream& err) {
  std::vector<runtime::TaskResult> results;
  for (const std::string& path : paths) {
    std::ifstream file;
    std::istream* in = &std::cin;
    if (path != "-") {
      file.open(path);
      if (!file) {
        err << "campaign report: cannot read " << path << "\n";
        return 2;
      }
      in = &file;
    }
    std::string line;
    std::size_t line_no = 0;
    while (std::getline(*in, line)) {
      ++line_no;
      if (line.empty()) continue;
      try {
        results.push_back(runtime::task_result_from_json(line));
      } catch (const std::exception& e) {
        err << "campaign report: " << path << ":" << line_no << ": "
            << e.what() << "\n";
        return 2;
      }
    }
  }
  const CampaignReport report = build_campaign_report(results);
  out << report.to_string();
  return report.errored_cells > 0 ? 1 : 0;
}

}  // namespace findep::campaign
