// Declarative campaign specs.
//
// A campaign spec is a tiny axis-override file over the campaign grid —
// the declarative surface of the engine. Format (one axis per line,
// '#' comments, blank lines ignored):
//
//   # nightly resilience campaign
//   target = uniform, diverse, skewed
//   fault  = crash, partition, collude
//   rate   = 1.0, 0.5
//   n      = 7
//   seeds  = 3
//
// Axes omitted keep the registered campaign defaults. `seeds` is not a
// grid axis: it sets the per-cell seed count (the CLI's --seeds wins when
// both are given). Validation is strict and happens at parse time, before
// any cell runs: unknown axes, duplicate axis lines, duplicate values
// within an axis (two identical cells — an overlapping campaign is almost
// always a spec bug), unknown target/fault names, rates outside (0, 1]
// and n < 4 are all rejected with the offending line number.
//
// A parsed spec lowers to the same `--set`-style overrides the CLI takes,
// so `findep-campaign --spec FILE` and hand-written `--set` flags drive
// the identical expansion path (run_families_main), including
// `--emit-tasks` sharding.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "runtime/param.h"

namespace findep::campaign {

struct CampaignSpec {
  /// Axis overrides in file order, CLI `--set` shaped: axis name and its
  /// value strings.
  std::vector<std::pair<std::string, std::vector<std::string>>> overrides;
  /// Per-cell seed count, when the spec pins one.
  std::optional<std::uint64_t> seeds;
};

/// Parses spec text. Throws std::invalid_argument with "line N" context
/// on any malformed or semantically invalid input (see header comment).
[[nodiscard]] CampaignSpec parse_campaign_spec(const std::string& text);

/// Reads and parses a spec file. Throws std::runtime_error when the file
/// cannot be read; parse errors as parse_campaign_spec.
[[nodiscard]] CampaignSpec load_campaign_spec(const std::string& path);

/// The campaign grid with the spec's overrides applied — the cells this
/// spec expands to (cartesian product of the resulting axes).
[[nodiscard]] runtime::ParamGrid campaign_grid(const CampaignSpec& spec);

}  // namespace findep::campaign
