// The campaign reporter: outcome rates attributed to what was faulted.
//
// Consumes executed campaign cells as `runtime::TaskResult`s — either
// in-process or parsed back from worker JSONL shards — and aggregates the
// outcome classification three ways: by the *faulted component kind* (the
// per-component resilience view the paper's safety condition reasons
// about; carried in each cell's `component_kind` metric), by target
// family, and by fault kind (both parsed from the cell's axis-explicit
// instance name). The reporter sits strictly downstream of `--merge`, so
// it never touches the byte-identity contract of the shard pipeline.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "runtime/task.h"

namespace findep::campaign {

/// Aggregated outcomes of one group of cells (rates are means over the
/// group's per-seed records).
struct CampaignGroupStats {
  std::string key;
  std::size_t cells = 0;
  double detected_rate = 0.0;
  double recovered_rate = 0.0;
  double safety_violation_rate = 0.0;
  double liveness_stall_rate = 0.0;
  /// Mean recovery_time_s over recovered cells; -1 when none recovered.
  double mean_recovery_s = -1.0;
};

struct CampaignReport {
  std::size_t cells = 0;          ///< ok records aggregated
  std::size_t errored_cells = 0;  ///< records carrying an error (skipped)
  /// Groups in first-appearance order of the (deterministically ordered)
  /// input, so the rendering is stable across runs and shardings.
  std::vector<CampaignGroupStats> by_component_kind;
  std::vector<CampaignGroupStats> by_target;
  std::vector<CampaignGroupStats> by_fault;

  [[nodiscard]] std::string to_string() const;
};

/// Aggregates campaign TaskResults (non-campaign families are ignored).
[[nodiscard]] CampaignReport build_campaign_report(
    const std::vector<runtime::TaskResult>& results);

/// Reads result-JSONL shard files ("-" = stdin), builds and prints the
/// report. Unreadable files or malformed lines go to `err` with exit
/// code 2; returns 1 when any record carried an error, else 0.
int report_main(const std::vector<std::string>& paths, std::ostream& out,
                std::ostream& err);

}  // namespace findep::campaign
