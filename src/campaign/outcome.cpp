#include "campaign/outcome.h"

#include <algorithm>

namespace findep::campaign {

std::size_t unresolved_stragglers(const bft::BftCluster& cluster,
                                  const FaultPlan& plan) {
  if (plan.kind != FaultKind::kCrash) return cluster.stranded_replicas();
  std::vector<bool> is_victim(cluster.size(), false);
  for (const std::size_t r : plan.victims) is_victim[r] = true;
  bft::SeqNum horizon = 0;
  for (std::size_t r = 0; r < cluster.size(); ++r) {
    if (is_victim[r]) continue;
    horizon = std::max(horizon, cluster.node(r).last_executed());
  }
  std::size_t stragglers = 0;
  for (std::size_t r = 0; r < cluster.size(); ++r) {
    if (is_victim[r]) continue;
    if (cluster.node(r).last_executed() < horizon) ++stragglers;
  }
  return stragglers;
}

Outcome classify_outcome(const bft::BftCluster& cluster,
                         const FaultPlan& plan, std::size_t submitted) {
  Outcome out;
  out.submitted = submitted;
  out.committed = cluster.completed_requests();
  out.safety_violated = !cluster.logs_consistent();
  out.liveness_stalled = out.committed < out.submitted;
  out.state_transfers = cluster.state_transfers_completed();

  std::vector<bool> is_victim(cluster.size(), false);
  for (const std::size_t r : plan.victims) is_victim[r] = true;

  for (std::size_t r = 0; r < cluster.size(); ++r) {
    // Protocol-neutral detection evidence: PBFT reports view changes
    // started (and a nonzero installed view), HotStuff pacemaker
    // timeouts. For PBFT these are the exact expressions the classifier
    // always used, so pbft campaign outputs are unchanged.
    const replication::OrderingProtocol& replica = cluster.node(r);
    out.max_view_changes =
        std::max(out.max_view_changes, replica.progress_disruptions());
    out.corrupted_rejected += replica.corrupted_rejected();
    if (!is_victim[r] && replica.observed_disruption()) {
      out.detected = true;
    }
  }
  if (out.corrupted_rejected > 0 || out.state_transfers > 0) {
    out.detected = true;
  }

  out.recovered = !out.safety_violated && !out.liveness_stalled &&
                  unresolved_stragglers(cluster, plan) == 0;
  if (out.recovered) {
    out.recovery_time_s =
        std::max(0.0, cluster.last_completion_time() - plan.inject_at);
  }
  return out;
}

}  // namespace findep::campaign
