#include "campaign/fault.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

#include "faults/adversary.h"
#include "faults/injector.h"
#include "support/assert.h"

namespace findep::campaign {

const std::vector<std::pair<std::string, FaultKind>>& fault_kinds() {
  static const std::vector<std::pair<std::string, FaultKind>> kinds = {
      {"crash", FaultKind::kCrash},
      {"crash_restart", FaultKind::kCrashRestart},
      {"partition", FaultKind::kPartition},
      {"corrupt", FaultKind::kCorrupt},
      {"collude", FaultKind::kCollude},
      {"censor", FaultKind::kCensor},
  };
  return kinds;
}

const std::string& to_string(FaultKind kind) {
  for (const auto& [name, k] : fault_kinds()) {
    if (k == kind) return name;
  }
  throw std::invalid_argument("unnamed fault kind");
}

FaultKind parse_fault_kind(const std::string& name) {
  for (const auto& [known, kind] : fault_kinds()) {
    if (known == name) return kind;
  }
  std::string all;
  for (const auto& [known, kind] : fault_kinds()) {
    if (!all.empty()) all += ", ";
    all += known;
  }
  throw std::invalid_argument("unknown fault kind '" + name +
                              "' (known: " + all + ")");
}

bool is_byzantine(FaultKind kind) noexcept {
  return kind == FaultKind::kCollude || kind == FaultKind::kCensor;
}

FaultPlan plan_fault(FaultKind kind, double rate,
                     const std::vector<diversity::ReplicaRecord>& fleet,
                     const config::ComponentCatalog& catalog,
                     support::Rng& rng) {
  FINDEP_REQUIRE(rate > 0.0 && rate <= 1.0);
  const faults::FaultInjector injector(fleet);

  // Adversarial kinds exploit the worst-case component (the attacker
  // maximizes blast radius); environmental kinds fault a uniformly random
  // one. Both draws use the injector's first-appearance component order,
  // which is deterministic in fleet order.
  faults::CompromiseResult exposed;
  config::ComponentId component;
  if (is_byzantine(kind)) {
    exposed = faults::VulnerabilityAdversary{1}.attack(injector);
    FINDEP_ASSERT(!exposed.compromised.empty());
    // Recover which component the worst-case adversary picked: every
    // compromised replica shares it, so probe the first victim's
    // components for one whose exposure set matches. (In a monoculture
    // several components tie — all with the identical full-fleet set —
    // and the first probe wins, which is deterministic.)
    bool found = false;
    for (const config::ComponentId c :
         fleet[exposed.compromised.front()].configuration.components()) {
      if (injector.inject_components({&c, 1}).compromised ==
          exposed.compromised) {
        component = c;
        found = true;
        break;
      }
    }
    FINDEP_REQUIRE_MSG(found, "worst-case component not recoverable");
  } else {
    const auto& present = injector.present_components();
    FINDEP_ASSERT(!present.empty());
    component = present[rng.below(present.size())];
    exposed = injector.inject_components({&component, 1});
    FINDEP_ASSERT(!exposed.compromised.empty());
  }

  FaultPlan plan;
  plan.kind = kind;
  plan.rate = rate;
  plan.component = component;
  plan.component_kind = catalog.get(component).kind;
  plan.exposed_fraction = exposed.compromised_fraction;

  // The rate is the exploitability: each exposed replica succumbs
  // independently. Corruption keeps every exposed replica as a faulted
  // link endpoint and spends the rate per message instead.
  double victim_power = 0.0;
  for (const std::size_t r : exposed.compromised) {
    if (kind != FaultKind::kCorrupt && !rng.chance(rate)) continue;
    plan.victims.push_back(r);
    victim_power += fleet[r].power;
  }
  plan.victim_fraction = victim_power / injector.total_power();
  return plan;
}

std::vector<bft::Behavior> planned_behaviors(const FaultPlan& plan,
                                             std::size_t n) {
  std::vector<bft::Behavior> behaviors(n, bft::Behavior::kHonest);
  if (!is_byzantine(plan.kind)) return behaviors;
  const bft::Behavior turned = plan.kind == FaultKind::kCollude
                                   ? bft::Behavior::kCollude
                                   : bft::Behavior::kCensor;
  for (const std::size_t r : plan.victims) {
    FINDEP_ASSERT(r < n);
    behaviors[r] = turned;
  }
  return behaviors;
}

void schedule_fault(const FaultPlan& plan, bft::BftCluster& cluster,
                    const std::shared_ptr<support::Rng>& link_rng) {
  if (is_byzantine(plan.kind) || plan.victims.empty()) return;
  sim::Simulator& sim = cluster.simulator();
  net::SimNetwork& network = cluster.network();
  const double heal_at = plan.inject_at + plan.heal_after;

  switch (plan.kind) {
    case FaultKind::kCrash:
    case FaultKind::kCrashRestart: {
      sim.schedule_at(plan.inject_at, [&network, victims = plan.victims] {
        for (const std::size_t r : victims) {
          network.set_node_down(static_cast<net::NodeId>(r), true);
        }
      });
      if (plan.kind == FaultKind::kCrashRestart) {
        sim.schedule_at(heal_at, [&network, victims = plan.victims] {
          for (const std::size_t r : victims) {
            network.set_node_down(static_cast<net::NodeId>(r), false);
          }
        });
      }
      break;
    }
    case FaultKind::kPartition: {
      // All victims land in one non-zero group: they can still talk to
      // each other (a correlated netsplit along the shared component),
      // just not to the healthy remainder.
      sim.schedule_at(plan.inject_at, [&network, victims = plan.victims] {
        for (const std::size_t r : victims) {
          network.set_partition_group(static_cast<net::NodeId>(r), 1);
        }
      });
      sim.schedule_at(heal_at,
                      [&network] { network.heal_partitions(); });
      break;
    }
    case FaultKind::kCorrupt: {
      sim.schedule_at(plan.inject_at, [&network, link_rng,
                                       rate = plan.rate,
                                       victims = plan.victims] {
        // Membership is checked against a by-value copy so the policy
        // owns everything it touches; the rng draw happens in
        // deterministic event order (send time).
        std::unordered_set<net::NodeId> faulted;
        for (const std::size_t r : victims) {
          faulted.insert(static_cast<net::NodeId>(r));
        }
        network.set_corrupt_policy(
            [link_rng, rate, faulted = std::move(faulted)](
                net::NodeId from, net::NodeId to) {
              if (!faulted.contains(from) && !faulted.contains(to)) {
                return false;
              }
              return link_rng->chance(rate);
            });
      });
      sim.schedule_at(heal_at,
                      [&network] { network.set_corrupt_policy(nullptr); });
      break;
    }
    case FaultKind::kCollude:
    case FaultKind::kCensor:
      break;  // handled at construction via planned_behaviors
  }
}

}  // namespace findep::campaign
