#include "campaign/target.h"

#include <stdexcept>

#include "config/catalog.h"
#include "config/sampler.h"
#include "diversity/manager.h"

namespace findep::campaign {

namespace {

std::vector<diversity::ReplicaRecord> records_of(
    const std::vector<config::ReplicaConfiguration>& configs) {
  std::vector<diversity::ReplicaRecord> fleet;
  fleet.reserve(configs.size());
  for (const config::ReplicaConfiguration& cfg : configs) {
    fleet.push_back(diversity::ReplicaRecord{cfg, 1.0, true});
  }
  return fleet;
}

std::vector<diversity::ReplicaRecord> sampled_fleet(double zipf_exponent,
                                                    std::size_t n,
                                                    support::Rng& rng) {
  const config::ComponentCatalog catalog = config::standard_catalog();
  config::SamplerOptions options;
  options.zipf_exponent = zipf_exponent;
  options.attestable_fraction = 0.5;
  const config::ConfigurationSampler sampler(catalog, options);
  return records_of(sampler.sample_population(rng, n));
}

std::vector<TargetFamily> make_target_families() {
  std::vector<TargetFamily> families;
  families.push_back(TargetFamily{
      "uniform",
      "monoculture: every replica runs one sampled configuration "
      "(single fault domain)",
      [](std::size_t n, support::Rng& rng) {
        const config::ComponentCatalog catalog = config::standard_catalog();
        const config::ConfigurationSampler sampler(catalog,
                                                   config::SamplerOptions{});
        const config::ReplicaConfiguration cfg = sampler.sample(rng);
        return records_of(
            std::vector<config::ReplicaConfiguration>(n, cfg));
      }});
  families.push_back(TargetFamily{
      "diverse", "uniformly sampled components (zipf 0)",
      [](std::size_t n, support::Rng& rng) {
        return sampled_fleet(0.0, n, rng);
      }});
  families.push_back(TargetFamily{
      "skewed", "popularity-skewed components (zipf 2)",
      [](std::size_t n, support::Rng& rng) {
        return sampled_fleet(2.0, n, rng);
      }});
  families.push_back(TargetFamily{
      "lazarus",
      "Lazarus-style round-robin assignment (adjacent replicas share "
      "no component)",
      [](std::size_t n, support::Rng&) {
        const config::ComponentCatalog catalog = config::standard_catalog();
        return records_of(
            diversity::LazarusStyleAssigner(catalog).assign(n));
      }});
  return families;
}

}  // namespace

const std::vector<TargetFamily>& target_families() {
  static const std::vector<TargetFamily> families = make_target_families();
  return families;
}

const TargetFamily* find_target_family(const std::string& name) {
  for (const TargetFamily& family : target_families()) {
    if (family.name == name) return &family;
  }
  return nullptr;
}

const TargetFamily& require_target_family(const std::string& name) {
  const TargetFamily* family = find_target_family(name);
  if (family == nullptr) {
    std::string known;
    for (const TargetFamily& f : target_families()) {
      if (!known.empty()) known += ", ";
      known += f.name;
    }
    throw std::invalid_argument("unknown campaign target '" + name +
                                "' (registered: " + known + ")");
  }
  return *family;
}

std::vector<diversity::ReplicaRecord> build_target_fleet(
    const std::string& name, std::size_t n, support::Rng& rng) {
  return require_target_family(name).build(n, rng);
}

}  // namespace findep::campaign
