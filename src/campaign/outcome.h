// Campaign outcome taxonomy: what happened to a cell's cluster.
//
// Four orthogonal verdicts, each measurable from existing cluster
// counters — no protocol instrumentation was added for classification:
//
//   detected   — some *non-victim* replica reacted to the fault (started
//                a view change or moved past view 0), a corrupted message
//                was rejected, or a state transfer completed. Victims'
//                own timers do not count: a crashed replica firing its
//                local timeout is not the cluster noticing the crash.
//   recovered  — every submitted request eventually committed, no honest
//                replica is stranded behind the honest execution horizon
//                once the fault settled, and safety held.
//   safety_violated  — honest executed logs diverged (two conflicting
//                commits); only coalitions above the 1/3 power threshold
//                can cause this, which is the paper's safety condition.
//   liveness_stalled — at least one submitted request never committed
//                within the cell horizon.
#pragma once

#include <cstddef>
#include <cstdint>

#include "bft/cluster.h"
#include "campaign/fault.h"

namespace findep::campaign {

struct Outcome {
  bool detected = false;
  bool recovered = false;
  bool safety_violated = false;
  bool liveness_stalled = false;
  /// Requests committed (executed at some honest replica) / submitted.
  std::size_t committed = 0;
  std::size_t submitted = 0;
  /// Seconds from fault injection to the last request commit when the
  /// cell recovered; -1 otherwise.
  double recovery_time_s = -1.0;
  /// Max view_changes_started over all replicas (victims included —
  /// this is a cost metric, not a detection verdict).
  std::uint64_t max_view_changes = 0;
  std::uint64_t corrupted_rejected = 0;
  std::uint64_t state_transfers = 0;
};

/// Replicas that should have converged but trail the execution horizon.
/// For healing and byzantine kinds this is the cluster's own
/// stranded_replicas() (byzantine victims are already skipped there);
/// for a permanent crash the victims are dead, not unrecovered, so both
/// the horizon and the stragglers are computed over survivors only.
[[nodiscard]] std::size_t unresolved_stragglers(const bft::BftCluster& cluster,
                                                const FaultPlan& plan);

/// Classifies a finished cell run. Deterministic: reads only cluster
/// counters, in replica-index order.
[[nodiscard]] Outcome classify_outcome(const bft::BftCluster& cluster,
                                       const FaultPlan& plan,
                                       std::size_t submitted);

}  // namespace findep::campaign
