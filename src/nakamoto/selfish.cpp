#include "nakamoto/selfish.h"

#include "support/assert.h"

namespace findep::nakamoto {

double selfish_mining_threshold(double gamma) {
  FINDEP_REQUIRE(gamma >= 0.0 && gamma <= 1.0);
  return (1.0 - gamma) / (3.0 - 2.0 * gamma);
}

SelfishMiningResult simulate_selfish_mining(double alpha, double gamma,
                                            std::size_t rounds,
                                            support::Rng& rng) {
  FINDEP_REQUIRE(alpha >= 0.0 && alpha < 0.5);
  FINDEP_REQUIRE(gamma >= 0.0 && gamma <= 1.0);
  FINDEP_REQUIRE(rounds > 0);

  SelfishMiningResult out;
  out.attacker_hashrate = alpha;
  out.gamma = gamma;

  // Eyal–Sirer state machine. `lead` is the attacker's private lead;
  // `tied_race` marks the 1-1 fork race after the attacker published its
  // single withheld block in response to an honest find.
  std::uint64_t lead = 0;
  bool tied_race = false;

  for (std::size_t round = 0; round < rounds; ++round) {
    const bool attacker_finds = rng.chance(alpha);
    if (tied_race) {
      // Branches of equal length are public; the next block decides.
      if (attacker_finds) {
        // Attacker extends its own branch: both its blocks win.
        out.attacker_blocks += 2;
      } else if (rng.chance(gamma)) {
        // Honest power mining on the attacker's branch extends it: the
        // attacker's published block and the honest new block win.
        out.attacker_blocks += 1;
        out.honest_blocks += 1;
      } else {
        // Honest branch wins: the attacker's withheld block is orphaned.
        out.honest_blocks += 2;
      }
      tied_race = false;
      lead = 0;
      continue;
    }

    if (attacker_finds) {
      ++lead;  // withhold
      continue;
    }

    // An honest block is found and published.
    switch (lead) {
      case 0:
        out.honest_blocks += 1;  // nothing withheld; honest chain grows
        break;
      case 1:
        tied_race = true;  // attacker publishes its one block: 1-1 race
        break;
      case 2:
        // Attacker publishes both and overrides the honest block.
        out.attacker_blocks += 2;
        lead = 0;
        break;
      default:
        // Far ahead: attacker reveals one block, keeping a safe lead; the
        // honest block is doomed once the rest is revealed — account the
        // attacker block now, the honest one never lands on-chain.
        out.attacker_blocks += 1;
        --lead;
        break;
    }
  }
  // Unresolved private blocks at the horizon are published and win (the
  // attacker only carries a lead while strictly ahead).
  out.attacker_blocks += lead;
  return out;
}

}  // namespace findep::nakamoto
