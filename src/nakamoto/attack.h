// Majority / private-chain attacks on Nakamoto consensus.
//
// The paper's §I motivation: a correlated fault can hand an attacker a
// *large* fraction of honest mining power at once (e.g. a pool-software
// vulnerability), pushing it past the tolerated bound. This module
// quantifies what that hashrate buys: the classic double-spend race, both
// in closed form (Nakamoto's Poisson/gambler's-ruin analysis) and as a
// Monte-Carlo block race for cross-validation.
#pragma once

#include <cstdint>

#include "support/rng.h"

namespace findep::nakamoto {

/// Nakamoto's closed-form success probability for an attacker with
/// hashrate fraction `q` catching up from `z` confirmations behind.
/// Returns 1 when q >= 0.5.
[[nodiscard]] double attack_success_closed_form(double q, unsigned z);

/// Monte-Carlo estimate of the same race: honest and attacker chains grow
/// as Poisson processes; the attacker pre-mines from z behind and wins if
/// it ever gets ahead within `max_blocks` total events (the truncation
/// matches the closed form's convergence for q < 0.5).
[[nodiscard]] double attack_success_monte_carlo(double q, unsigned z,
                                                std::size_t trials,
                                                support::Rng& rng,
                                                std::size_t max_blocks = 4096);

/// Confirmations needed to push the attacker's success probability below
/// `target` (caps at `max_z`). Mirrors the table in Nakamoto's paper.
[[nodiscard]] unsigned confirmations_for_risk(double q, double target,
                                              unsigned max_z = 340);

}  // namespace findep::nakamoto
