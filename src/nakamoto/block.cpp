#include "nakamoto/block.h"

#include <algorithm>

#include "support/assert.h"

namespace findep::nakamoto {

crypto::Digest Block::compute_hash(const crypto::Digest& parent,
                                   MinerId miner, std::uint64_t nonce) {
  return crypto::Sha256{}
      .update("findep/block/v1")
      .update(parent.bytes)
      .update_u64(miner)
      .update_u64(nonce)
      .finish();
}

const Block& genesis() {
  static const Block g = [] {
    Block b;
    b.hash = crypto::Sha256{}.update("findep/genesis/v1").finish();
    b.parent = crypto::Digest{};
    b.height = 0;
    b.miner = UINT32_MAX;
    b.mined_at = 0.0;
    return b;
  }();
  return g;
}

BlockTree::BlockTree() {
  blocks_.emplace(genesis().hash, genesis());
  tip_ = genesis().hash;
}

bool BlockTree::add(const Block& block) {
  if (blocks_.contains(block.hash)) return false;
  const auto parent_it = blocks_.find(block.parent);
  if (parent_it == blocks_.end()) return false;
  FINDEP_REQUIRE_MSG(block.height == parent_it->second.height + 1,
                     "block height must be parent height + 1");
  blocks_.emplace(block.hash, block);
  // Longest-chain rule; strictly-greater keeps the first-seen tip on ties.
  if (block.height > blocks_.at(tip_).height) {
    tip_ = block.hash;
  }
  return true;
}

bool BlockTree::contains(const crypto::Digest& hash) const {
  return blocks_.contains(hash);
}

const Block& BlockTree::get(const crypto::Digest& hash) const {
  const auto it = blocks_.find(hash);
  FINDEP_REQUIRE_MSG(it != blocks_.end(), "unknown block");
  return it->second;
}

const Block& BlockTree::tip() const { return blocks_.at(tip_); }

std::vector<crypto::Digest> BlockTree::main_chain() const {
  std::vector<crypto::Digest> chain;
  chain.reserve(tip_height());
  crypto::Digest cursor = tip_;
  while (cursor != genesis().hash) {
    chain.push_back(cursor);
    cursor = blocks_.at(cursor).parent;
  }
  std::reverse(chain.begin(), chain.end());
  return chain;
}

bool BlockTree::on_main_chain(const crypto::Digest& hash) const {
  const auto it = blocks_.find(hash);
  if (it == blocks_.end()) return false;
  // Walk down from the tip to the block's height.
  crypto::Digest cursor = tip_;
  while (blocks_.at(cursor).height > it->second.height) {
    cursor = blocks_.at(cursor).parent;
  }
  return cursor == hash;
}

std::unordered_map<MinerId, std::size_t> BlockTree::miner_shares() const {
  std::unordered_map<MinerId, std::size_t> shares;
  for (const crypto::Digest& hash : main_chain()) {
    ++shares[blocks_.at(hash).miner];
  }
  return shares;
}

Height BlockTree::reorg_depth(const crypto::Digest& candidate_tip) const {
  const auto it = blocks_.find(candidate_tip);
  FINDEP_REQUIRE(it != blocks_.end());
  // Find the fork point between the main chain and the candidate branch.
  crypto::Digest a = tip_;
  crypto::Digest b = candidate_tip;
  while (blocks_.at(a).height > blocks_.at(b).height) {
    a = blocks_.at(a).parent;
  }
  while (blocks_.at(b).height > blocks_.at(a).height) {
    b = blocks_.at(b).parent;
  }
  Height depth = 0;
  while (a != b) {
    a = blocks_.at(a).parent;
    b = blocks_.at(b).parent;
    ++depth;
  }
  // Depth counted from the current tip down to the fork point.
  return depth == 0 ? 0 : blocks_.at(tip_).height - blocks_.at(a).height;
}

}  // namespace findep::nakamoto
