#include "nakamoto/miner.h"

#include <algorithm>

#include "support/assert.h"

namespace findep::nakamoto {

NakamotoSim::NakamotoSim(std::vector<double> hashrates,
                         NakamotoOptions options)
    : hashrates_(std::move(hashrates)),
      options_(options),
      rng_(options.seed) {
  FINDEP_REQUIRE(!hashrates_.empty());
  FINDEP_REQUIRE(options_.mean_block_interval > 0.0);
  for (const double h : hashrates_) {
    FINDEP_REQUIRE(h >= 0.0);
    total_hashrate_ += h;
  }
  FINDEP_REQUIRE_MSG(total_hashrate_ > 0.0, "no mining power");

  net::NetworkOptions net_options = options_.network;
  net_options.seed = support::mix64(options_.seed ^ 0x6d696e65);
  network_ = std::make_unique<net::SimNetwork>(sim_, net_options);

  std::vector<net::NodeId> nodes;
  nodes.reserve(hashrates_.size());
  views_.resize(hashrates_.size());
  orphans_.resize(hashrates_.size());
  for (MinerId m = 0; m < hashrates_.size(); ++m) nodes.push_back(m);

  gossip_ = std::make_unique<net::GossipOverlay>(
      *network_, nodes, options_.gossip_degree,
      support::mix64(options_.seed ^ 0x676f7353),
      [this](net::NodeId node, const net::GossipItem& item) {
        const Block* block = item.block();
        FINDEP_ASSERT(block != nullptr);
        on_block(node, *block);
      });

  for (MinerId m = 0; m < hashrates_.size(); ++m) {
    schedule_next_find(m);
  }
}

void NakamotoSim::schedule_next_find(MinerId miner) {
  if (hashrates_[miner] <= 0.0) return;
  const double rate =
      hashrates_[miner] / total_hashrate_ / options_.mean_block_interval;
  const double delay = rng_.exponential(rate);
  sim_.schedule_after(delay, [this, miner] { on_found(miner); });
}

void NakamotoSim::on_found(MinerId miner) {
  // Extend the miner's current best tip (decided at find time — the
  // exponential race is memoryless, so this is exactly the honest
  // strategy).
  const Block& parent = views_[miner].tip();
  Block block;
  block.parent = parent.hash;
  block.height = parent.height + 1;
  block.miner = miner;
  block.mined_at = sim_.now();
  block.hash = Block::compute_hash(parent.hash, miner, nonce_++);

  net::GossipItem item;
  item.id = block.hash;
  item.content = block;
  item.bytes = 1'000'000;  // ~1 MB block
  gossip_->publish(miner, std::move(item));

  schedule_next_find(miner);
}

void NakamotoSim::on_block(MinerId miner, const Block& block) {
  BlockTree& tree = views_[miner];
  if (!tree.add(block)) {
    if (!tree.contains(block.hash)) {
      orphans_[miner].push_back(block);  // parent not yet seen
    }
    return;
  }
  // Drain any orphans now connectable (repeat until fixpoint).
  bool progress = true;
  while (progress) {
    progress = false;
    auto& pool = orphans_[miner];
    for (std::size_t i = 0; i < pool.size();) {
      if (tree.add(pool[i])) {
        pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(i));
        progress = true;
      } else if (tree.contains(pool[i].hash)) {
        pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(i));
      } else {
        ++i;
      }
    }
  }
}

void NakamotoSim::run_for(double duration) {
  sim_.run_until(sim_.now() + duration);
}

const BlockTree& NakamotoSim::view(MinerId miner) const {
  FINDEP_REQUIRE(miner < views_.size());
  return views_[miner];
}

ChainStats NakamotoSim::stats() const {
  const BlockTree& tree = views_[0];
  ChainStats out;
  out.main_chain_height = tree.tip_height();
  out.total_blocks = tree.block_count();
  out.stale_blocks = tree.stale_count();
  out.stale_rate =
      out.total_blocks == 0
          ? 0.0
          : static_cast<double>(out.stale_blocks) /
                static_cast<double>(out.total_blocks);
  out.miner_main_share.assign(hashrates_.size(), 0.0);
  const auto shares = tree.miner_shares();
  for (const auto& [miner, blocks] : shares) {
    if (miner < out.miner_main_share.size() && out.main_chain_height > 0) {
      out.miner_main_share[miner] =
          static_cast<double>(blocks) /
          static_cast<double>(out.main_chain_height);
    }
  }
  return out;
}

}  // namespace findep::nakamoto
