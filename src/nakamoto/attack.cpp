#include "nakamoto/attack.h"

#include <cmath>

#include "support/assert.h"

namespace findep::nakamoto {

double attack_success_closed_form(double q, unsigned z) {
  FINDEP_REQUIRE(q >= 0.0 && q <= 1.0);
  if (q >= 0.5) return 1.0;
  if (q == 0.0) return 0.0;
  const double p = 1.0 - q;
  const double lambda = static_cast<double>(z) * q / p;
  // P = 1 - Σ_{k=0}^{z} Poisson(k; λ) (1 - (q/p)^{z-k})
  double sum = 0.0;
  double poisson = std::exp(-lambda);  // k = 0 term
  for (unsigned k = 0; k <= z; ++k) {
    if (k > 0) poisson *= lambda / static_cast<double>(k);
    sum += poisson * (1.0 - std::pow(q / p, static_cast<double>(z - k)));
  }
  return 1.0 - sum;
}

double attack_success_monte_carlo(double q, unsigned z, std::size_t trials,
                                  support::Rng& rng,
                                  std::size_t max_blocks) {
  FINDEP_REQUIRE(q >= 0.0 && q <= 1.0);
  FINDEP_REQUIRE(trials > 0);
  if (q == 0.0) return 0.0;
  std::size_t wins = 0;
  for (std::size_t t = 0; t < trials; ++t) {
    // While the merchant waits for z confirmations the attacker pre-mines
    // k ~ Poisson(z q/p) blocks; then it is a biased random walk. As in
    // Nakamoto's analysis, the attacker succeeds when it *catches up*
    // (deficit reaches 0) — gambler's-ruin probability (q/p)^{z-k}.
    const double p = 1.0 - q;
    std::int64_t deficit;  // honest lead
    if (q >= 0.5) {
      deficit = 0;
    } else {
      const double lambda = static_cast<double>(z) * q / p;
      deficit = static_cast<std::int64_t>(z) -
                static_cast<std::int64_t>(rng.poisson(lambda));
    }
    bool win = deficit <= 0;
    for (std::size_t step = 0; !win && step < max_blocks; ++step) {
      deficit += rng.chance(q) ? -1 : 1;
      if (deficit <= 0) win = true;
      // Far behind: the walk drifts away; bail out as the closed form's
      // geometric tail does.
      if (deficit > 256) break;
    }
    if (win) ++wins;
  }
  return static_cast<double>(wins) / static_cast<double>(trials);
}

unsigned confirmations_for_risk(double q, double target, unsigned max_z) {
  FINDEP_REQUIRE(target > 0.0 && target < 1.0);
  for (unsigned z = 0; z <= max_z; ++z) {
    if (attack_success_closed_form(q, z) < target) return z;
  }
  return max_z;
}

}  // namespace findep::nakamoto
