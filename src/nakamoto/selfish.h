// Selfish mining (Eyal–Sirer, FC'14) — the §I-cited baseline showing that
// "majority is not enough": a pool with hashrate α > (1−γ)/(3−2γ) earns a
// *super-proportional* revenue share by withholding blocks. In this
// repository it plays two roles: (a) a baseline attacker strategy for the
// Nakamoto substrate, and (b) the motivation for why correlated faults
// matter even below 50% — a component fault that aggregates hashrate into
// one decision-maker enables exactly this strategy.
#pragma once

#include <cstddef>

#include "support/rng.h"

namespace findep::nakamoto {

/// Outcome of a selfish-mining simulation.
struct SelfishMiningResult {
  double attacker_hashrate = 0.0;   // α
  double gamma = 0.0;               // honest split won during races
  std::uint64_t attacker_blocks = 0;  // attacker blocks on the main chain
  std::uint64_t honest_blocks = 0;    // honest blocks on the main chain
  /// Attacker's relative revenue (main-chain share).
  [[nodiscard]] double revenue_share() const noexcept {
    const double total =
        static_cast<double>(attacker_blocks + honest_blocks);
    return total == 0.0 ? 0.0
                        : static_cast<double>(attacker_blocks) / total;
  }
  /// Advantage over honest mining (revenue − α); positive = profitable.
  [[nodiscard]] double advantage() const noexcept {
    return revenue_share() - attacker_hashrate;
  }
};

/// Simulates the Eyal–Sirer state machine for `rounds` block discoveries.
/// `alpha` ∈ [0, 0.5): attacker hashrate share. `gamma` ∈ [0, 1]: fraction
/// of honest power that mines on the attacker's branch during a 1-1 race.
[[nodiscard]] SelfishMiningResult simulate_selfish_mining(
    double alpha, double gamma, std::size_t rounds, support::Rng& rng);

/// Eyal–Sirer closed-form profitability threshold: selfish mining beats
/// honest mining when α > (1−γ)/(3−2γ).
[[nodiscard]] double selfish_mining_threshold(double gamma);

}  // namespace findep::nakamoto
