// The Nakamoto-consensus network simulator.
//
// Mining is a Poisson race: miner i with hashrate share s_i finds its next
// block after Exp(mean_block_interval / s_i) seconds, always extending the
// longest chain it currently knows (honest policy). Blocks propagate over
// the gossip overlay; the stale/fork rate emerges from the propagation
// delay relative to the block interval, matching the classic analysis.
//
// The paper's voting-power abstraction (§II-A) maps hashrate shares
// straight onto the configuration distribution: `hashrates[i]` is both
// miner i's mining power and its voting power in the diversity analysis.
#pragma once

#include <memory>
#include <vector>

#include "nakamoto/block.h"
#include "net/gossip.h"
#include "sim/simulator.h"
#include "support/rng.h"

namespace findep::nakamoto {

struct NakamotoOptions {
  /// Network-wide expected time between blocks (Bitcoin: 600 s).
  double mean_block_interval = 600.0;
  /// Gossip overlay degree.
  std::size_t gossip_degree = 4;
  net::NetworkOptions network;
  std::uint64_t seed = 2023;
};

/// Aggregate statistics from an observer's point of view.
struct ChainStats {
  Height main_chain_height = 0;
  std::size_t total_blocks = 0;
  std::size_t stale_blocks = 0;
  double stale_rate = 0.0;  // stale / total
  /// Main-chain block share per miner (index = miner id); sums to 1.
  std::vector<double> miner_main_share;
};

/// Simulates honest Nakamoto consensus among weighted miners.
class NakamotoSim {
 public:
  /// `hashrates` need not be normalized; relative values matter.
  NakamotoSim(std::vector<double> hashrates, NakamotoOptions options);

  /// Runs the mining race for `duration` simulated seconds.
  void run_for(double duration);

  [[nodiscard]] std::size_t miner_count() const noexcept {
    return hashrates_.size();
  }
  /// Local chain view of one miner.
  [[nodiscard]] const BlockTree& view(MinerId miner) const;
  /// Stats from miner 0's view (all views converge after propagation).
  [[nodiscard]] ChainStats stats() const;
  [[nodiscard]] sim::Simulator& simulator() noexcept { return sim_; }
  [[nodiscard]] net::SimNetwork& network() noexcept { return *network_; }

  /// Total blocks mined by anyone (including stale).
  [[nodiscard]] std::uint64_t blocks_mined() const noexcept {
    return nonce_;
  }

 private:
  void schedule_next_find(MinerId miner);
  void on_found(MinerId miner);
  void on_block(MinerId miner, const Block& block);

  std::vector<double> hashrates_;
  double total_hashrate_ = 0.0;
  NakamotoOptions options_;
  sim::Simulator sim_;
  std::unique_ptr<net::SimNetwork> network_;
  std::unique_ptr<net::GossipOverlay> gossip_;
  support::Rng rng_;
  std::vector<BlockTree> views_;
  /// Blocks whose parent was unknown on arrival, retried on next receipt.
  std::vector<std::vector<Block>> orphans_;
  std::uint64_t nonce_ = 0;
};

}  // namespace findep::nakamoto
