#include "nakamoto/pools.h"

#include <algorithm>

#include "diversity/datasets.h"
#include "support/assert.h"

namespace findep::nakamoto {

void PoolSet::add(MiningPool pool) {
  FINDEP_REQUIRE(pool.share_percent >= 0.0);
  pools_.push_back(std::move(pool));
}

const MiningPool& PoolSet::get(std::size_t i) const {
  FINDEP_REQUIRE(i < pools_.size());
  return pools_[i];
}

double PoolSet::total_share_percent() const noexcept {
  double total = 0.0;
  for (const auto& p : pools_) total += p.share_percent;
  return total;
}

std::vector<diversity::ReplicaRecord> PoolSet::as_population() const {
  std::vector<diversity::ReplicaRecord> out;
  out.reserve(pools_.size());
  for (const auto& p : pools_) {
    out.push_back(
        diversity::ReplicaRecord{p.configuration, p.share_percent, true});
  }
  return out;
}

std::vector<double> PoolSet::hashrates() const {
  std::vector<double> out;
  out.reserve(pools_.size());
  for (const auto& p : pools_) out.push_back(p.share_percent);
  return out;
}

double PoolSet::share_exposed_to(config::ComponentId component) const {
  const double total = total_share_percent();
  FINDEP_REQUIRE(total > 0.0);
  double exposed = 0.0;
  for (const auto& p : pools_) {
    const auto comps = p.configuration.components();
    if (std::find(comps.begin(), comps.end(), component) != comps.end()) {
      exposed += p.share_percent;
    }
  }
  return exposed / total;
}

PoolSet PoolSet::example1(const config::ComponentCatalog& catalog,
                          bool distinct_configs, std::uint64_t seed) {
  const auto shares = diversity::datasets::bitcoin_pool_shares_percent();
  const auto names = diversity::datasets::bitcoin_pool_names();
  FINDEP_ASSERT(shares.size() == names.size());

  std::vector<config::ReplicaConfiguration> configs;
  if (distinct_configs) {
    config::ConfigurationSampler sampler(catalog, config::SamplerOptions{});
    configs = sampler.distinct_configurations(shares.size());
  } else {
    config::SamplerOptions options;
    options.zipf_exponent = 1.5;  // heavy monoculture across pools
    options.attestable_fraction = 1.0;
    config::ConfigurationSampler sampler(catalog, options);
    support::Rng rng(seed);
    configs = sampler.sample_population(rng, shares.size());
  }

  PoolSet out;
  for (std::size_t i = 0; i < shares.size(); ++i) {
    out.add(MiningPool{std::string(names[i]), shares[i], configs[i]});
  }
  return out;
}

}  // namespace findep::nakamoto
