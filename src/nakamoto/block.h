// Blocks and the block tree (fork-aware chain state).
//
// Each node keeps a `BlockTree`: all blocks it has seen, the longest-chain
// tip (first-seen tie-break, as Bitcoin Core implements), and fork
// accounting. Stale-block rate as a function of propagation delay is one
// of the substrate benchmarks backing the paper's performance-vs-ω
// trade-off discussion.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "crypto/sha256.h"
#include "net/types.h"

namespace findep::nakamoto {

using MinerId = net::NodeId;
using Height = std::uint64_t;

struct Block {
  crypto::Digest hash;
  crypto::Digest parent;
  Height height = 0;  // genesis = 0
  MinerId miner = 0;
  double mined_at = 0.0;

  [[nodiscard]] static crypto::Digest compute_hash(
      const crypto::Digest& parent, MinerId miner, std::uint64_t nonce);
};

/// The unique genesis block shared by every tree.
[[nodiscard]] const Block& genesis();

class BlockTree {
 public:
  BlockTree();

  /// Adds a block whose parent is already known. Returns false (without
  /// inserting) when the parent is unknown or the hash is a duplicate.
  bool add(const Block& block);

  [[nodiscard]] bool contains(const crypto::Digest& hash) const;
  [[nodiscard]] const Block& get(const crypto::Digest& hash) const;

  /// Longest chain tip; ties broken by first arrival.
  [[nodiscard]] const Block& tip() const;
  [[nodiscard]] Height tip_height() const { return tip().height; }

  /// Total non-genesis blocks known.
  [[nodiscard]] std::size_t block_count() const {
    return blocks_.size() - 1;
  }

  /// Blocks not on the main chain (stale/orphaned work).
  [[nodiscard]] std::size_t stale_count() const {
    return block_count() - tip_height();
  }

  /// Main chain from genesis (exclusive) to the tip (inclusive).
  [[nodiscard]] std::vector<crypto::Digest> main_chain() const;

  /// True when `hash` lies on the main chain.
  [[nodiscard]] bool on_main_chain(const crypto::Digest& hash) const;

  /// Number of main-chain blocks mined by each miner (index = MinerId).
  [[nodiscard]] std::unordered_map<MinerId, std::size_t> miner_shares()
      const;

  /// Depth of the reorg that adopting `candidate_tip` over the current
  /// tip would cause (0 when it extends the main chain).
  [[nodiscard]] Height reorg_depth(const crypto::Digest& candidate_tip) const;

 private:
  std::unordered_map<crypto::Digest, Block> blocks_;
  crypto::Digest tip_;
};

}  // namespace findep::nakamoto
