// Mining pools: the delegation layer that concentrates Bitcoin's voting
// power (§III-A "oligopoly") and couples it to software configurations.
//
// A pool is an operator aggregating member hashrate behind one software
// stack (pool server + full node + wallet). Example 1's dataset becomes a
// `PoolSet`; compromising a component compromises every pool running it,
// and the resulting hashrate feeds the attack math in attack.h — the full
// pipeline behind the paper's "single fault → large hashrate" concern.
#pragma once

#include <string>
#include <vector>

#include "config/sampler.h"
#include "diversity/analyzer.h"
#include "faults/injector.h"

namespace findep::nakamoto {

struct MiningPool {
  std::string name;
  /// Hashrate share, in percent of the network (as in Example 1).
  double share_percent = 0.0;
  config::ReplicaConfiguration configuration;
};

class PoolSet {
 public:
  void add(MiningPool pool);

  [[nodiscard]] std::size_t size() const noexcept { return pools_.size(); }
  [[nodiscard]] const MiningPool& get(std::size_t i) const;
  [[nodiscard]] const std::vector<MiningPool>& pools() const noexcept {
    return pools_;
  }

  /// Total share in percent.
  [[nodiscard]] double total_share_percent() const noexcept;

  /// As a replica population (power = share) for the diversity/faults
  /// pipeline.
  [[nodiscard]] std::vector<diversity::ReplicaRecord> as_population() const;

  /// Hashrate vector (index = pool) for NakamotoSim.
  [[nodiscard]] std::vector<double> hashrates() const;

  /// Combined share (fraction of total, in [0,1]) of pools whose
  /// configuration contains `component` — the hashrate a single component
  /// fault hands the attacker.
  [[nodiscard]] double share_exposed_to(config::ComponentId component) const;

  /// The Example-1 snapshot with configurations assigned from `catalog`:
  /// `distinct_configs = true` gives every pool a unique configuration
  /// (the paper's best case); false assigns configurations Zipf-skewed
  /// with `seed`, modelling realistic software monoculture across pools.
  [[nodiscard]] static PoolSet example1(
      const config::ComponentCatalog& catalog, bool distinct_configs,
      std::uint64_t seed = 17);

 private:
  std::vector<MiningPool> pools_;
};

}  // namespace findep::nakamoto
