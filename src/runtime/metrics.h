// Metric records and the deterministic sweep sink.
//
// Every per-seed scenario run produces a `MetricRecord` (named values in
// insertion order). The `MetricsSink` merges per-seed records *sorted by
// seed, never by completion order*, so a parallel sweep prints and
// serializes byte-identically to a serial one — the reproducibility
// contract every experiment in this repo leans on.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

namespace findep::runtime {

/// Named doubles in insertion order (order is part of the record's
/// identity: tables and JSON render in it).
class MetricRecord {
 public:
  /// Inserts or overwrites; first insertion fixes the position.
  void set(const std::string& name, double value);

  [[nodiscard]] bool has(const std::string& name) const noexcept;
  /// Requires `has(name)`.
  [[nodiscard]] double get(const std::string& name) const;

  [[nodiscard]] const std::vector<std::pair<std::string, double>>& entries()
      const noexcept {
    return entries_;
  }
  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }

  bool operator==(const MetricRecord&) const = default;

 private:
  std::vector<std::pair<std::string, double>> entries_;
};

/// Outcome of one seed of a sweep.
struct RunRecord {
  std::uint64_t seed = 0;
  std::size_t run_index = 0;
  MetricRecord metrics;
  std::string error;  // non-empty when the run threw

  [[nodiscard]] bool ok() const noexcept { return error.empty(); }
};

/// Collects per-scenario sweep results and renders them as aligned
/// tables (one per scenario family), CSV, or JSON.
class MetricsSink {
 public:
  struct Entry {
    std::string scenario;
    std::string family;
    std::vector<RunRecord> records;  // sorted by seed
  };

  /// Stores `records` sorted by seed (stable, independent of the order
  /// workers finished in).
  void add(std::string scenario, std::string family,
           std::vector<RunRecord> records);

  [[nodiscard]] const std::vector<Entry>& entries() const noexcept {
    return entries_;
  }
  [[nodiscard]] bool any_errors() const noexcept;

  /// One aligned table per family: a row per scenario, a column per
  /// metric (mean, with ±stddev when the sweep has several seeds).
  void print_tables(std::ostream& out) const;
  /// CSV rows: family,scenario,seeds,metric,mean,stddev,min,max. Fields
  /// containing commas, quotes or newlines are RFC-4180 quoted.
  void print_csv(std::ostream& out) const;
  /// Full per-seed values plus aggregates; doubles are emitted with 17
  /// significant digits so output is bit-faithful.
  void print_json(std::ostream& out) const;

 private:
  std::vector<Entry> entries_;
};

/// Shortest-round-trip rendering of a double (17 significant digits) for
/// the bit-faithful JSON path.
[[nodiscard]] std::string format_exact(double v);

/// JSON string-body escaping (quotes, backslashes, control characters)
/// shared by the sink's JSON rendering and the task wire format.
[[nodiscard]] std::string json_escape(const std::string& text);

/// RFC-4180 CSV field escaping: returns `field` unchanged unless it
/// contains a comma, quote or line break, in which case it is wrapped in
/// quotes with embedded quotes doubled.
[[nodiscard]] std::string csv_escape(const std::string& field);

}  // namespace findep::runtime
