// The task wire format: serializable sweep tasks and results (JSONL).
//
// A distributed sweep is the in-process sweep cut at the global work
// queue: the coordinator expands the selected catalog into `TaskSpec`
// lines (`--emit-tasks`), any number of workers execute tasks through the
// same registry + TaskSource/ResultCollector seam the in-process sweep
// uses (`--worker`: task JSONL on stdin, `TaskResult` JSONL on stdout),
// and a merge step gathers the result shards back into the standard
// MetricsSink rendering (`--merge`). Because a worker derives the run
// seed exactly like `SweepRunner` (`derive_seed(base_seed, run_index)`)
// and doubles travel as 17-significant-digit shortest-round-trip text,
// the merged table/CSV/JSON is byte-identical to sweeping the same
// catalog in one process — the repo's reproducibility contract survives
// sharding.
//
// Wire schema (one JSON object per line; doubles may be the bare tokens
// `inf`, `-inf`, `nan` — a deliberate JSONL extension, parsed by this
// module on both sides):
//
//   task:   {"family": "...", "params": [{"name": "...", "type":
//           "bool|int|double|string", "value": "..."}, ...],
//           "base_seed": N, "run_index": N, "sequence": N}
//   result: {"family": "...", "scenario": "...", "sequence": N,
//           "seed": N, "run_index": N, "metrics": {...}}   (ok)
//           {..., "error": "..."}                          (failed run)
//
// `sequence` is the scenario instance's position in the emitted catalog;
// the merge orders scenarios by it (ties by first appearance), which
// reproduces the in-process suite order no matter how tasks were sharded.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "runtime/metrics.h"
#include "runtime/param.h"
#include "runtime/registry.h"
#include "runtime/sweep.h"

namespace findep::runtime {

/// One executable unit of a sweep, self-contained on the wire: which
/// family, which grid point, and which run of the sweep (the worker
/// derives the actual seed as derive_seed(base_seed, run_index)).
struct TaskSpec {
  std::string family;
  ParamSet params;
  std::uint64_t base_seed = 1;
  std::size_t run_index = 0;
  /// Catalog position of the scenario instance (merge ordering key).
  std::size_t sequence = 0;
};

/// One executed task: the task's identity plus its RunRecord.
struct TaskResult {
  std::string family;
  std::string scenario;  // instance name, e.g. "bft_scaling/n=7"
  std::size_t sequence = 0;
  RunRecord record;
};

// --- JSON round-trips -------------------------------------------------------
// Values round-trip bit-faithfully: doubles are rendered shortest-exact
// (params) or with 17 significant digits (metrics), including inf/nan and
// denormals. The from_json parsers throw std::invalid_argument with a
// descriptive message on malformed or type-mismatched input.

[[nodiscard]] std::string to_json(const ParamValue& value);
[[nodiscard]] std::string to_json(const ParamSet& params);
[[nodiscard]] std::string to_json(const MetricRecord& metrics);
[[nodiscard]] std::string to_json(const RunRecord& record);
[[nodiscard]] std::string to_json(const TaskSpec& task);
[[nodiscard]] std::string to_json(const TaskResult& result);

[[nodiscard]] ParamValue param_value_from_json(const std::string& text);
[[nodiscard]] ParamSet param_set_from_json(const std::string& text);
[[nodiscard]] MetricRecord metric_record_from_json(const std::string& text);
[[nodiscard]] RunRecord run_record_from_json(const std::string& text);
[[nodiscard]] TaskSpec task_spec_from_json(const std::string& text);
[[nodiscard]] TaskResult task_result_from_json(const std::string& text);

// --- the three pipeline stages ---------------------------------------------

/// One selected family with its (possibly axis-overridden) grids, in
/// catalog order — what `run_families_main` resolves from `--family` /
/// `--set` before either sweeping in-process or emitting tasks.
using FamilySelection =
    std::vector<std::pair<const ScenarioFamily*, std::vector<ParamGrid>>>;

/// Coordinator: expands `selection` into task JSONL on `out`,
/// scenario-major (all run indices of one instance consecutively),
/// `num_seeds` tasks per instance, `sequence` numbering instances in
/// catalog order. Instances whose name does not contain `only`, or does
/// contain a non-empty `exclude`, are skipped (same filters as the
/// in-process sweep). Factories run once per instance so parameter
/// validation fails here, not on a worker. Returns the number of tasks
/// emitted; throws on a factory error.
std::size_t emit_task_catalog(const FamilySelection& selection,
                              const SweepOptions& sweep,
                              const std::string& only,
                              const std::string& exclude, std::ostream& out);

/// Worker: reads task JSONL from `in` (blank lines ignored), executes
/// every task through the global registry on `threads` workers via the
/// run_task_pool seam, and streams result JSONL to `out` in input order.
/// A malformed line or an unknown family is a protocol error: reported on
/// `err` with its line number, exit code 2, nothing executed. A task
/// whose factory rejects its parameters or whose run throws becomes an
/// error-carrying result instead. Returns 0 when every record is ok, 1
/// when any run failed.
int run_worker(std::istream& in, std::ostream& out, std::ostream& err,
               std::size_t threads);

/// Merge: reads result JSONL from `paths` (a path of "-" means stdin),
/// groups records by (family, scenario, sequence) — sequence keeps
/// same-named catalog instances apart — ordered by (sequence, first
/// appearance), and renders through MetricsSink: `csv`/`json` exactly as
/// the in-process sweep would, otherwise tables under a shard-count
/// banner.
/// Duplicate (scenario, seed, run_index) records — overlapping shards —
/// and unreadable files or lines are reported on `err` with exit code 2.
/// Returns 1 when any merged record carries an error, else 0.
int merge_shards(const std::vector<std::string>& paths, bool csv, bool json,
                 std::ostream& out, std::ostream& err);

}  // namespace findep::runtime
