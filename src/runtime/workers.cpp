#include "runtime/workers.h"

#include <algorithm>
#include <utility>

#include "support/assert.h"

namespace findep::runtime {

WorkerPool::WorkerPool(sim::Simulator& sim, std::size_t workers)
    : sim_(&sim), busy_(workers, false), idle_(workers) {
  FINDEP_REQUIRE_MSG(workers >= 1, "a pool needs at least one worker");
}

void WorkerPool::submit(TaskPriority priority, double cost_seconds,
                        StaleCheck stale, Completion done) {
  FINDEP_REQUIRE(cost_seconds >= 0.0);
  FINDEP_REQUIRE(done != nullptr);
  const auto lane_index = static_cast<std::size_t>(priority);
  FINDEP_REQUIRE(lane_index < kPriorityLanes);
  ++stats_.submitted;
  lanes_[lane_index].pending.push_back(Task{
      next_seq_++, cost_seconds, std::move(stale), std::move(done)});
  pump();
}

std::size_t WorkerPool::queued() const noexcept {
  std::size_t count = 0;
  for (const Lane& lane : lanes_) count += lane.pending.size();
  return count;
}

std::size_t WorkerPool::in_flight() const noexcept {
  std::size_t count = 0;
  for (const Lane& lane : lanes_) count += lane.in_flight.size();
  return count;
}

void WorkerPool::pump() {
  if (pumping_) return;  // fold re-entrant submits into the outer pump
  pumping_ = true;
  for (;;) {
    // Highest-priority lane with queued work; drops do not need a
    // worker, so the scan runs even when every worker is busy.
    Lane* lane = nullptr;
    for (Lane& candidate : lanes_) {
      if (!candidate.pending.empty()) {
        lane = &candidate;
        break;
      }
    }
    if (lane == nullptr) break;

    if (lane->pending.front().stale && lane->pending.front().stale()) {
      // Stale-drop on dequeue: no worker time, but the slot still
      // completes in lane order (flagged), so the submitter's reorder
      // expectations hold.
      Task task = std::move(lane->pending.front());
      lane->pending.pop_front();
      ++stats_.dropped_stale;
      lane->in_flight.push_back(
          InFlight{task.seq, std::move(task.done), true, true});
      flush(*lane);  // callbacks may submit; the outer loop re-scans
      continue;
    }

    if (idle_ == 0) break;
    const auto it = std::find(busy_.begin(), busy_.end(), false);
    FINDEP_ASSERT(it != busy_.end());
    const auto worker = static_cast<std::size_t>(it - busy_.begin());
    Task task = std::move(lane->pending.front());
    lane->pending.pop_front();
    busy_[worker] = true;
    --idle_;
    stats_.busy_seconds += task.cost;
    lane->in_flight.push_back(
        InFlight{task.seq, std::move(task.done), false, false});
    Lane* const lane_ptr = lane;
    const std::uint64_t seq = task.seq;
    sim_->schedule_after(task.cost, [this, worker, lane_ptr, seq] {
      busy_[worker] = false;
      ++idle_;
      ++stats_.completed;
      // Dispatch is lane-FIFO, so the entry sits at or near the front
      // (behind at most the other in-flight entries of this lane).
      const auto entry = std::find_if(
          lane_ptr->in_flight.begin(), lane_ptr->in_flight.end(),
          [seq](const InFlight& f) { return f.seq == seq; });
      FINDEP_ASSERT(entry != lane_ptr->in_flight.end());
      entry->finished = true;
      flush(*lane_ptr);
      pump();  // the freed worker can take the next queued task
    });
  }
  pumping_ = false;
}

void WorkerPool::flush(Lane& lane) {
  while (!lane.in_flight.empty() && lane.in_flight.front().finished) {
    InFlight entry = std::move(lane.in_flight.front());
    lane.in_flight.pop_front();
    entry.done(entry.dropped);
  }
}

}  // namespace findep::runtime
