#include "runtime/counters.h"

#include <mutex>

namespace findep::runtime {

namespace {

struct CounterRegistry {
  std::mutex mutex;
  std::vector<std::pair<std::string, CounterSampler>> counters;
};

CounterRegistry& counter_registry() {
  static CounterRegistry registry;
  return registry;
}

}  // namespace

void register_process_counter(std::string name, CounterSampler sampler) {
  CounterRegistry& registry = counter_registry();
  const std::lock_guard<std::mutex> lock(registry.mutex);
  registry.counters.emplace_back(std::move(name), std::move(sampler));
}

std::vector<std::pair<std::string, std::uint64_t>>
sample_process_counters() {
  CounterRegistry& registry = counter_registry();
  const std::lock_guard<std::mutex> lock(registry.mutex);
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(registry.counters.size());
  for (const auto& [name, sampler] : registry.counters) {
    out.emplace_back(name, sampler());
  }
  return out;
}

}  // namespace findep::runtime
