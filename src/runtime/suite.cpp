#include "runtime/suite.h"

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <ostream>

#include "runtime/counters.h"
#include "support/assert.h"
#include "support/table.h"

namespace findep::runtime {

namespace {

bool parse_u64(const std::string& text, std::uint64_t& out) {
  // strtoull happily wraps "-1" to 2^64-1; only plain digits are valid.
  if (text.empty()) return false;
  for (const char c : text) {
    if (c < '0' || c > '9') return false;
  }
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (end != text.c_str() + text.size()) return false;
  out = v;
  return true;
}

std::vector<std::string> split_commas(const std::string& text) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t comma = text.find(',', start);
    if (comma == std::string::npos) {
      out.push_back(text.substr(start));
      break;
    }
    out.push_back(text.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

void print_usage(std::ostream& err) {
  err << "usage: [--seed S] [--seeds K] [--threads T] [--only SUBSTR] "
         "[--exclude SUBSTR] [--family NAME[,NAME]] [--set AXIS=V[,V]] "
         "[--list] [--csv] [--json] [--out FILE]\n"
         "       [--emit-tasks | --worker | --merge SHARD...]  "
         "(distributed sweep; see DESIGN.md)\n";
}

bool fail(std::ostream& err, const std::string& message) {
  err << "error: " << message << '\n';
  print_usage(err);
  return false;
}

}  // namespace

bool parse_suite_options(int argc, const char* const* argv,
                         SuiteOptions& options, std::ostream& err) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list") {
      options.list = true;
      continue;
    }
    if (arg == "--csv") {
      options.csv = true;
      continue;
    }
    if (arg == "--json") {
      options.json = true;
      continue;
    }
    if (arg == "--emit-tasks") {
      options.emit_tasks = true;
      continue;
    }
    if (arg == "--worker") {
      options.worker = true;
      continue;
    }
    if (arg == "--merge") {
      // Consumes every following non-flag argument as a shard path; "-"
      // alone names stdin.
      options.merge_mode = true;
      while (i + 1 < argc) {
        const std::string path = argv[i + 1];
        if (path.size() >= 2 && path.compare(0, 2, "--") == 0) break;
        options.merge.push_back(path);
        ++i;
      }
      if (options.merge.empty()) {
        return fail(err, "--merge expects at least one shard file "
                         "(or '-' for stdin)");
      }
      continue;
    }
    // Everything else takes a value.
    if (i + 1 >= argc) {
      return fail(err, arg + " expects a value");
    }
    const std::string value = argv[++i];
    std::uint64_t parsed = 0;
    if (arg == "--seed") {
      if (!parse_u64(value, options.sweep.base_seed)) {
        return fail(err,
                    "--seed expects a non-negative integer, got '" + value +
                        "'");
      }
    } else if (arg == "--seeds") {
      if (!parse_u64(value, parsed) || parsed == 0) {
        return fail(
            err, "--seeds expects a positive integer, got '" + value + "'");
      }
      options.sweep.num_seeds = static_cast<std::size_t>(parsed);
    } else if (arg == "--threads") {
      if (!parse_u64(value, parsed)) {
        return fail(err, "--threads expects a non-negative integer, got '" +
                             value + "'");
      }
      options.sweep.threads = static_cast<std::size_t>(parsed);
    } else if (arg == "--only") {
      options.only = value;
    } else if (arg == "--exclude") {
      if (value.empty()) {
        return fail(err, "--exclude expects a non-empty substring");
      }
      options.exclude = value;
    } else if (arg == "--out") {
      if (value.empty()) return fail(err, "--out expects a file path");
      options.out_file = value;
    } else if (arg == "--family") {
      for (std::string& name : split_commas(value)) {
        if (name.empty()) {
          return fail(err, "--family expects family names, got '" + value +
                               "'");
        }
        options.families.push_back(std::move(name));
      }
    } else if (arg == "--set") {
      const std::size_t eq = value.find('=');
      if (eq == std::string::npos || eq == 0 || eq + 1 >= value.size()) {
        return fail(err, "--set expects AXIS=V1[,V2,...], got '" + value +
                             "'");
      }
      AxisOverride over;
      over.axis = value.substr(0, eq);
      over.values = split_commas(value.substr(eq + 1));
      for (const std::string& v : over.values) {
        if (v.empty()) {
          return fail(err,
                      "--set " + over.axis + ": empty value in '" + value +
                          "'");
        }
      }
      options.sets.push_back(std::move(over));
    } else {
      return fail(err, "unknown flag '" + arg + "'");
    }
  }
  const int modes = static_cast<int>(options.emit_tasks) +
                    static_cast<int>(options.worker) +
                    static_cast<int>(options.merge_mode);
  if (modes > 1) {
    return fail(err, "--emit-tasks, --worker and --merge are mutually "
                     "exclusive");
  }
  return true;
}

bool open_output(const std::string& path, std::ofstream& file,
                 std::ostream*& dest) {
  if (path.empty()) return true;
  file.open(path);
  if (!file) return false;
  dest = &file;
  return true;
}

bool close_output(const std::string& path, std::ofstream& file,
                  const std::ostream* dest, std::ostream& err) {
  if (dest != &file) return true;
  file.flush();
  if (!file) {
    err << "error: failed writing --out file '" << path << "'\n";
    return false;
  }
  return true;
}

void ScenarioSuite::add(std::unique_ptr<Scenario> scenario) {
  FINDEP_REQUIRE(scenario != nullptr);
  scenarios_.push_back(std::move(scenario));
}

int ScenarioSuite::run(const SuiteOptions& options, std::ostream& out,
                       std::ostream& err) const {
  if (options.list) {
    for (const auto& scenario : scenarios_) out << scenario->name() << '\n';
    return 0;
  }

  // Select first, then sweep everything through one global work queue so
  // the whole suite shares the worker pool (fills cores at --seeds 1).
  std::vector<const Scenario*> selected;
  for (const auto& scenario : scenarios_) {
    if (!options.only.empty() &&
        scenario->name().find(options.only) == std::string::npos) {
      continue;
    }
    if (!options.exclude.empty() &&
        scenario->name().find(options.exclude) != std::string::npos) {
      continue;
    }
    selected.push_back(scenario.get());
  }

  // --out FILE redirects the rendered results; stdout keeps a one-line
  // confirmation so scripted sweeps can pipe stdout/stderr freely. Opened
  // before the sweep so a bad path fails before the work, not after.
  std::ofstream file;
  std::ostream* dest = &out;
  if (!open_output(options.out_file, file, dest)) {
    err << "error: cannot open --out file '" << options.out_file << "'\n";
    return 2;
  }

  const SweepRunner runner(options.sweep);
  std::vector<std::vector<RunRecord>> results = runner.run_all(selected);

  MetricsSink sink;
  for (std::size_t s = 0; s < selected.size(); ++s) {
    sink.add(selected[s]->name(), selected[s]->family(),
             std::move(results[s]));
  }

  if (options.json) {
    sink.print_json(*dest);
  } else if (options.csv) {
    sink.print_csv(*dest);
  } else {
    if (!intro_.empty()) support::print_banner(*dest, intro_);
    *dest << "sweep: " << options.sweep.num_seeds << " seed(s) from --seed "
          << options.sweep.base_seed << '\n';
    sink.print_tables(*dest);
    // Informational process counters (e.g. analyzer memo hits). Table
    // mode only: their totals depend on worker interleaving, so they
    // stay out of the deterministic CSV/JSON record.
    const auto counters = sample_process_counters();
    if (!counters.empty()) {
      *dest << "\ncounters:";
      for (const auto& [name, value] : counters) {
        *dest << ' ' << name << '=' << value;
      }
      *dest << '\n';
    }
  }
  if (!close_output(options.out_file, file, dest, err)) return 2;
  if (dest == &file) {
    out << "wrote " << options.out_file << " ("
        << (options.json ? "json" : options.csv ? "csv" : "tables") << ")\n";
  }

  if (sink.any_errors()) {
    for (const auto& entry : sink.entries()) {
      for (const RunRecord& record : entry.records) {
        if (!record.ok()) {
          err << entry.scenario << " seed " << record.seed
              << " failed: " << record.error << '\n';
        }
      }
    }
    return 1;
  }
  return 0;
}

int ScenarioSuite::run_main(int argc, const char* const* argv) const {
  SuiteOptions options;
  if (!parse_suite_options(argc, argv, options, std::cerr)) return 2;
  return run(options, std::cout, std::cerr);
}

}  // namespace findep::runtime
