#include "runtime/suite.h"

#include <cstdlib>
#include <iostream>
#include <ostream>

#include "support/assert.h"
#include "support/table.h"

namespace findep::runtime {

namespace {

bool parse_u64(const char* text, std::uint64_t& out) {
  // strtoull happily wraps "-1" to 2^64-1; only plain digits are valid.
  if (text[0] == '\0') return false;
  for (const char* c = text; *c != '\0'; ++c) {
    if (*c < '0' || *c > '9') return false;
  }
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0') return false;
  out = v;
  return true;
}

void print_usage(std::ostream& err) {
  err << "usage: [--seed S] [--seeds K] [--threads T] [--only SUBSTR] "
         "[--list] [--csv] [--json]\n";
}

}  // namespace

bool parse_suite_options(int argc, const char* const* argv,
                         SuiteOptions& options, std::ostream& err) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list") {
      options.list = true;
      continue;
    }
    if (arg == "--csv") {
      options.csv = true;
      continue;
    }
    if (arg == "--json") {
      options.json = true;
      continue;
    }
    // Everything else takes a value.
    if (i + 1 >= argc) {
      print_usage(err);
      return false;
    }
    const char* value = argv[++i];
    std::uint64_t parsed = 0;
    bool ok = true;
    if (arg == "--seed") {
      ok = parse_u64(value, options.sweep.base_seed);
    } else if (arg == "--seeds") {
      ok = parse_u64(value, parsed) && parsed > 0;
      options.sweep.num_seeds = static_cast<std::size_t>(parsed);
    } else if (arg == "--threads") {
      ok = parse_u64(value, parsed);
      options.sweep.threads = static_cast<std::size_t>(parsed);
    } else if (arg == "--only") {
      options.only = value;
    } else {
      ok = false;
    }
    if (!ok) {
      print_usage(err);
      return false;
    }
  }
  return true;
}

void ScenarioSuite::add(std::unique_ptr<Scenario> scenario) {
  FINDEP_REQUIRE(scenario != nullptr);
  scenarios_.push_back(std::move(scenario));
}

int ScenarioSuite::run(const SuiteOptions& options, std::ostream& out,
                       std::ostream& err) const {
  if (options.list) {
    for (const auto& scenario : scenarios_) out << scenario->name() << '\n';
    return 0;
  }

  const SweepRunner runner(options.sweep);
  MetricsSink sink;
  for (const auto& scenario : scenarios_) {
    const std::string name = scenario->name();
    if (!options.only.empty() &&
        name.find(options.only) == std::string::npos) {
      continue;
    }
    sink.add(name, scenario->family(), runner.run(*scenario));
  }

  if (options.json) {
    sink.print_json(out);
  } else if (options.csv) {
    sink.print_csv(out);
  } else {
    if (!intro_.empty()) support::print_banner(out, intro_);
    out << "sweep: " << options.sweep.num_seeds << " seed(s) from --seed "
        << options.sweep.base_seed << '\n';
    sink.print_tables(out);
  }

  if (sink.any_errors()) {
    for (const auto& entry : sink.entries()) {
      for (const RunRecord& record : entry.records) {
        if (!record.ok()) {
          err << entry.scenario << " seed " << record.seed
              << " failed: " << record.error << '\n';
        }
      }
    }
    return 1;
  }
  return 0;
}

int ScenarioSuite::run_main(int argc, const char* const* argv) const {
  SuiteOptions options;
  if (!parse_suite_options(argc, argv, options, std::cerr)) return 2;
  return run(options, std::cout, std::cerr);
}

}  // namespace findep::runtime
