// A modeled multicore worker pool over the deterministic simulator.
//
// One pool stands for the cores of a single replica: tasks (signature
// verifications, in practice) are submitted with a priority and a
// modeled CPU cost, occupy one of W simulated workers for exactly that
// long, and complete through the simulator clock. The pool is *modeled*
// compute, not OS threads — every state change happens inside simulator
// events, so a sweep over worker counts is bit-reproducible and the
// whole simulation stays a pure function of (program, seed) at any
// `--threads` setting of the sweep runner.
//
// Semantics (the contract the differential test in tests/test_workers.cpp
// pins against a serial reference):
//
//   - Two priority lanes: protocol-critical work always dequeues ahead
//     of speculative work, regardless of submission interleaving.
//   - Stale-drop on dequeue: a task whose `stale` predicate has become
//     true by the time a worker would pick it up is dropped without
//     consuming worker time (dsnet's taskqueue shape: verification of a
//     message from a dead view is wasted work, shed at the latest
//     possible moment).
//   - Ordered completion *per lane*: results re-enter the submitter in
//     submission order within their lane, no matter which worker ran
//     them or how their costs interleaved. (Cross-lane reordering is the
//     entire point of prioritization; within a lane, the reorder buffer
//     keeps the protocol's message-arrival determinism.) Dropped tasks
//     occupy their slot in the order too — they complete, flagged, in
//     sequence.
//   - Workers are picked lowest-index-first; dispatch is greedy. Both
//     choices are arbitrary but fixed, which is all determinism needs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "sim/simulator.h"

namespace findep::runtime {

/// Dequeue priority of a pool task. Lower value = served first.
enum class TaskPriority : std::uint8_t {
  kCritical = 0,     ///< protocol-critical: consensus and recovery traffic
  kSpeculative = 1,  ///< speculative: work the protocol can tolerate late
};
inline constexpr std::size_t kPriorityLanes = 2;

class WorkerPool {
 public:
  /// Returns true when the task is no longer worth running (checked at
  /// dequeue, not submission).
  using StaleCheck = std::function<bool()>;
  /// Invoked exactly once per submitted task, in lane submission order;
  /// `dropped` is true when the stale check shed the task.
  using Completion = std::function<void(bool dropped)>;

  struct Stats {
    std::uint64_t submitted = 0;
    std::uint64_t completed = 0;      ///< ran to completion (not dropped)
    std::uint64_t dropped_stale = 0;  ///< shed by the stale check
    /// Modeled worker-occupancy seconds summed over workers; divide by
    /// (workers * span) for utilization.
    double busy_seconds = 0.0;
  };

  /// `workers` >= 1 modeled cores on `sim`'s clock.
  WorkerPool(sim::Simulator& sim, std::size_t workers);

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Enqueues a task costing `cost_seconds` of one worker's time.
  /// `stale` may be null (never stale). `done` must be non-null.
  void submit(TaskPriority priority, double cost_seconds, StaleCheck stale,
              Completion done);

  [[nodiscard]] std::size_t workers() const noexcept {
    return busy_.size();
  }
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  /// Tasks queued behind the workers (submitted, not yet dispatched).
  [[nodiscard]] std::size_t queued() const noexcept;
  /// Tasks dispatched (or dropped) whose completion has not fired yet.
  [[nodiscard]] std::size_t in_flight() const noexcept;

 private:
  struct Task {
    std::uint64_t seq = 0;
    double cost = 0.0;
    StaleCheck stale;
    Completion done;
  };
  /// One dispatched-or-dropped task awaiting its in-order completion.
  struct InFlight {
    std::uint64_t seq = 0;
    Completion done;
    bool dropped = false;
    bool finished = false;
  };
  struct Lane {
    std::deque<Task> pending;
    /// Dispatch is lane-FIFO, so this deque is ordered by seq; the front
    /// gates every completion behind it (the reorder buffer).
    std::deque<InFlight> in_flight;
  };

  /// Greedy dispatch: fill idle workers from the highest-priority
  /// non-empty lane until workers or work run out. Re-entrant calls
  /// (a completion callback submitting new work) fold into the
  /// outermost pump.
  void pump();
  /// Fires every in-order completion that is ready at the lane front.
  void flush(Lane& lane);

  sim::Simulator* sim_;
  std::vector<bool> busy_;  ///< per worker; lowest idle index dispatches
  std::size_t idle_ = 0;
  Lane lanes_[kPriorityLanes];
  std::uint64_t next_seq_ = 0;
  Stats stats_;
  bool pumping_ = false;
};

}  // namespace findep::runtime
