#include "runtime/metrics.h"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "support/assert.h"
#include "support/stats.h"
#include "support/table.h"

namespace findep::runtime {

void MetricRecord::set(const std::string& name, double value) {
  for (auto& [existing, v] : entries_) {
    if (existing == name) {
      v = value;
      return;
    }
  }
  entries_.emplace_back(name, value);
}

bool MetricRecord::has(const std::string& name) const noexcept {
  return std::any_of(entries_.begin(), entries_.end(),
                     [&](const auto& e) { return e.first == name; });
}

double MetricRecord::get(const std::string& name) const {
  for (const auto& [existing, v] : entries_) {
    if (existing == name) return v;
  }
  FINDEP_REQUIRE_MSG(false, "unknown metric: " + name);
  return 0.0;  // unreachable
}

void MetricsSink::add(std::string scenario, std::string family,
                      std::vector<RunRecord> records) {
  std::stable_sort(
      records.begin(), records.end(),
      [](const RunRecord& a, const RunRecord& b) { return a.seed < b.seed; });
  entries_.push_back(
      Entry{std::move(scenario), std::move(family), std::move(records)});
}

bool MetricsSink::any_errors() const noexcept {
  for (const Entry& e : entries_) {
    for (const RunRecord& r : e.records) {
      if (!r.ok()) return true;
    }
  }
  return false;
}

namespace {

/// Metric names of the first successful record (the scenario contract is
/// that every seed emits the same metric set).
std::vector<std::string> metric_names(const MetricsSink::Entry& entry) {
  for (const RunRecord& r : entry.records) {
    if (!r.ok()) continue;
    std::vector<std::string> names;
    names.reserve(r.metrics.entries().size());
    for (const auto& [name, value] : r.metrics.entries()) {
      names.push_back(name);
    }
    return names;
  }
  return {};
}

support::RunningStats aggregate(const MetricsSink::Entry& entry,
                                const std::string& metric) {
  support::RunningStats stats;
  for (const RunRecord& r : entry.records) {
    if (r.ok() && r.metrics.has(metric)) stats.add(r.metrics.get(metric));
  }
  return stats;
}

std::string mean_cell(const support::RunningStats& stats) {
  if (stats.count() == 0) return "ERROR";
  std::string cell = support::Table::format_cell(stats.mean());
  if (stats.count() > 1) {
    cell += " ±" + support::Table::format_cell(stats.stddev());
  }
  return cell;
}

}  // namespace

void MetricsSink::print_tables(std::ostream& out) const {
  // Group by family, preserving first-appearance order.
  std::vector<std::string> families;
  for (const Entry& e : entries_) {
    if (std::find(families.begin(), families.end(), e.family) ==
        families.end()) {
      families.push_back(e.family);
    }
  }
  for (const std::string& family : families) {
    std::vector<const Entry*> group;
    for (const Entry& e : entries_) {
      if (e.family == family) group.push_back(&e);
    }
    // Columns come from the first group member that has a successful
    // record (a scenario that failed on every seed must not blank the
    // whole family's metric columns).
    std::vector<std::string> names;
    for (const Entry* e : group) {
      names = metric_names(*e);
      if (!names.empty()) break;
    }
    std::vector<std::string> headers = {"scenario", "seeds"};
    headers.insert(headers.end(), names.begin(), names.end());
    support::print_banner(out, family);
    support::Table table(std::move(headers));
    for (const Entry* e : group) {
      std::vector<std::string> cells = {
          e->scenario, std::to_string(e->records.size())};
      for (const std::string& name : names) {
        cells.push_back(mean_cell(aggregate(*e, name)));
      }
      table.add_row(std::move(cells));
    }
    table.print(out);
  }
}

void MetricsSink::print_csv(std::ostream& out) const {
  out << "family,scenario,seeds,metric,mean,stddev,min,max\n";
  for (const Entry& e : entries_) {
    for (const std::string& name : metric_names(e)) {
      const support::RunningStats stats = aggregate(e, name);
      out << csv_escape(e.family) << ',' << csv_escape(e.scenario) << ','
          << e.records.size() << ',' << csv_escape(name) << ','
          << format_exact(stats.mean()) << ',' << format_exact(stats.stddev())
          << ',' << format_exact(stats.min()) << ','
          << format_exact(stats.max()) << '\n';
    }
  }
}

void MetricsSink::print_json(std::ostream& out) const {
  out << "{\n  \"scenarios\": [";
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const Entry& e = entries_[i];
    out << (i == 0 ? "\n" : ",\n");
    out << "    {\"name\": \"" << json_escape(e.scenario)
        << "\", \"family\": \"" << json_escape(e.family)
        << "\", \"runs\": [";
    for (std::size_t j = 0; j < e.records.size(); ++j) {
      const RunRecord& r = e.records[j];
      out << (j == 0 ? "\n" : ",\n");
      out << "      {\"seed\": " << r.seed;
      if (!r.ok()) {
        out << ", \"error\": \"" << json_escape(r.error) << "\"}";
        continue;
      }
      out << ", \"metrics\": {";
      const auto& metrics = r.metrics.entries();
      for (std::size_t k = 0; k < metrics.size(); ++k) {
        if (k != 0) out << ", ";
        out << '"' << json_escape(metrics[k].first)
            << "\": " << format_exact(metrics[k].second);
      }
      out << "}}";
    }
    out << "\n    ]}";
  }
  out << "\n  ]\n}\n";
}

std::string format_exact(double v) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", v);
  return buffer;
}

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string csv_escape(const std::string& field) {
  if (field.find_first_of(",\"\n\r") == std::string::npos) return field;
  std::string out = "\"";
  for (const char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace findep::runtime
