// SweepRunner: executes scenarios across K seeds on a worker pool fed
// from a single global (scenario, seed) work queue.
//
// Determinism contract: run i of a sweep with base seed S always executes
// with seed derive_seed(S, i); each run owns its whole simulation stack
// (Scenario::run is a pure function of the context), and results land in
// slot (scenario, i) of the output regardless of which worker finishes
// first. Hence a sweep on any thread count — including 1 — produces
// bit-identical per-seed records.
//
// The queue is suite-wide, not per-scenario: every (scenario, run_index)
// pair of a multi-scenario sweep is one task claimed off one atomic
// counter, so a suite of S scenarios keeps all workers busy even at
// --seeds 1 (the old per-scenario pools left S−1 scenarios waiting).
//
// The queue itself is an abstraction: `run_task_pool` drains any
// `TaskSource` into any `ResultCollector` on the worker pool. The
// in-process sweep (`SweepRunner::run_all`) and the wire-format worker
// (`runtime/task.h`, tasks read as JSONL off stdin) are two
// implementations of the same seam, so distributing a sweep across
// processes cannot change per-run execution.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "runtime/metrics.h"
#include "runtime/scenario.h"

namespace findep::runtime {

/// One claimed unit of sweep work: a scenario instance to execute at an
/// already-derived seed. `slot` is an opaque position assigned by the
/// TaskSource (in-process: the flat scenario×run index; wire worker: the
/// task's input ordinal) that the ResultCollector uses to place the
/// record independently of completion order. The shared_ptr keeps
/// wire-built instances alive until their run completes; in-process
/// sources alias suite-owned scenarios without ownership.
struct SweepTask {
  std::shared_ptr<const Scenario> scenario;
  std::uint64_t seed = 0;
  std::size_t run_index = 0;
  std::size_t slot = 0;
};

/// Hands out tasks to the worker pool. `next` must be safe to call from
/// several workers concurrently.
class TaskSource {
 public:
  virtual ~TaskSource() = default;
  /// Claims the next task into `task`; returns false when drained.
  virtual bool next(SweepTask& task) = 0;
};

/// Receives one RunRecord per claimed task, in completion order (use
/// `task.slot` to restore a deterministic order). Must be thread-safe.
class ResultCollector {
 public:
  virtual ~ResultCollector() = default;
  virtual void collect(const SweepTask& task, RunRecord record) = 0;
};

/// Drains `source` into `collector` on `threads` workers (0 = hardware
/// concurrency; <=1 runs inline on the calling thread). Each task's
/// scenario runs with RunContext{task.seed, task.run_index}; a throwing
/// run yields a record carrying the message in `error`. The seed and
/// run_index of the task are copied into the record verbatim.
void run_task_pool(TaskSource& source, ResultCollector& collector,
                   std::size_t threads);

struct SweepOptions {
  /// Master seed of the sweep; per-run seeds derive from it.
  std::uint64_t base_seed = 1;
  /// Number of seeds (runs) per scenario.
  std::size_t num_seeds = 1;
  /// Worker threads; 0 = hardware concurrency. Runs never share state,
  /// so any value is safe.
  std::size_t threads = 0;
};

/// Per-run seed derivation: one splitmix64 round over the base seed at
/// gamma-stride `run_index` (the splitmix64 stream at position i).
[[nodiscard]] std::uint64_t derive_seed(std::uint64_t base_seed,
                                        std::size_t run_index) noexcept;

class SweepRunner {
 public:
  explicit SweepRunner(SweepOptions options = {});

  /// Runs `scenario` once per seed. The returned vector is indexed by
  /// run_index (= ascending derive_seed order of definition); a run that
  /// threw carries its message in `error` instead of metrics.
  [[nodiscard]] std::vector<RunRecord> run(const Scenario& scenario) const;

  /// Sweeps every scenario across the seeds on ONE worker pool: the
  /// global (scenario, run_index) work queue. Result r[s][i] is the
  /// record of scenarios[s] at run_index i — bit-identical to running
  /// each scenario serially. Null scenario pointers are not allowed.
  [[nodiscard]] std::vector<std::vector<RunRecord>> run_all(
      const std::vector<const Scenario*>& scenarios) const;

  [[nodiscard]] const SweepOptions& options() const noexcept {
    return options_;
  }

 private:
  SweepOptions options_;
};

}  // namespace findep::runtime
