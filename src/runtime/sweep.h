// SweepRunner: executes scenarios across K seeds on a worker pool fed
// from a single global (scenario, seed) work queue.
//
// Determinism contract: run i of a sweep with base seed S always executes
// with seed derive_seed(S, i); each run owns its whole simulation stack
// (Scenario::run is a pure function of the context), and results land in
// slot (scenario, i) of the output regardless of which worker finishes
// first. Hence a sweep on any thread count — including 1 — produces
// bit-identical per-seed records.
//
// The queue is suite-wide, not per-scenario: every (scenario, run_index)
// pair of a multi-scenario sweep is one task claimed off one atomic
// counter, so a suite of S scenarios keeps all workers busy even at
// --seeds 1 (the old per-scenario pools left S−1 scenarios waiting).
#pragma once

#include <cstdint>
#include <vector>

#include "runtime/metrics.h"
#include "runtime/scenario.h"

namespace findep::runtime {

struct SweepOptions {
  /// Master seed of the sweep; per-run seeds derive from it.
  std::uint64_t base_seed = 1;
  /// Number of seeds (runs) per scenario.
  std::size_t num_seeds = 1;
  /// Worker threads; 0 = hardware concurrency. Runs never share state,
  /// so any value is safe.
  std::size_t threads = 0;
};

/// Per-run seed derivation: one splitmix64 round over the base seed at
/// gamma-stride `run_index` (the splitmix64 stream at position i).
[[nodiscard]] std::uint64_t derive_seed(std::uint64_t base_seed,
                                        std::size_t run_index) noexcept;

class SweepRunner {
 public:
  explicit SweepRunner(SweepOptions options = {});

  /// Runs `scenario` once per seed. The returned vector is indexed by
  /// run_index (= ascending derive_seed order of definition); a run that
  /// threw carries its message in `error` instead of metrics.
  [[nodiscard]] std::vector<RunRecord> run(const Scenario& scenario) const;

  /// Sweeps every scenario across the seeds on ONE worker pool: the
  /// global (scenario, run_index) work queue. Result r[s][i] is the
  /// record of scenarios[s] at run_index i — bit-identical to running
  /// each scenario serially. Null scenario pointers are not allowed.
  [[nodiscard]] std::vector<std::vector<RunRecord>> run_all(
      const std::vector<const Scenario*>& scenarios) const;

  [[nodiscard]] const SweepOptions& options() const noexcept {
    return options_;
  }

 private:
  SweepOptions options_;
};

}  // namespace findep::runtime
