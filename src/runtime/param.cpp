#include "runtime/param.h"

#include <algorithm>
#include <cerrno>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace findep::runtime {

namespace {

[[noreturn]] void type_error(const std::string& what,
                             const std::string& detail) {
  throw std::invalid_argument("parameter " + what + ": " + detail);
}

std::string alternative_name(const ParamValue::Storage& v) {
  switch (v.index()) {
    case 0:
      return "bool";
    case 1:
      return "int";
    case 2:
      return "double";
    default:
      return "string";
  }
}

/// Shortest decimal rendering that round-trips the double exactly;
/// integral values print without exponent or decimal point.
std::string format_double(double v) {
  char buf[32];
  if (v >= -9.0e18 && v <= 9.0e18 &&
      v == static_cast<double>(static_cast<long long>(v))) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    return buf;
  }
  for (int precision = 1; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

}  // namespace

bool ParamValue::is_bool() const noexcept {
  return std::holds_alternative<bool>(value_);
}
bool ParamValue::is_int() const noexcept {
  return std::holds_alternative<std::int64_t>(value_);
}
bool ParamValue::is_double() const noexcept {
  return std::holds_alternative<double>(value_);
}
bool ParamValue::is_string() const noexcept {
  return std::holds_alternative<std::string>(value_);
}

bool ParamValue::as_bool() const {
  if (!is_bool()) {
    type_error("as_bool", "holds " + alternative_name(value_));
  }
  return std::get<bool>(value_);
}

std::int64_t ParamValue::as_int() const {
  if (!is_int()) type_error("as_int", "holds " + alternative_name(value_));
  return std::get<std::int64_t>(value_);
}

std::size_t ParamValue::as_size() const {
  const std::int64_t v = as_int();
  if (v < 0) type_error("as_size", "negative value " + std::to_string(v));
  return static_cast<std::size_t>(v);
}

double ParamValue::as_double() const {
  if (is_int()) return static_cast<double>(std::get<std::int64_t>(value_));
  if (!is_double()) {
    type_error("as_double", "holds " + alternative_name(value_));
  }
  return std::get<double>(value_);
}

const std::string& ParamValue::as_string() const {
  if (!is_string()) {
    type_error("as_string", "holds " + alternative_name(value_));
  }
  return std::get<std::string>(value_);
}

std::string ParamValue::to_string() const {
  switch (value_.index()) {
    case 0:
      return std::get<bool>(value_) ? "true" : "false";
    case 1:
      return std::to_string(std::get<std::int64_t>(value_));
    case 2:
      return format_double(std::get<double>(value_));
    default:
      return std::get<std::string>(value_);
  }
}

ParamValue ParamValue::parse_as(const std::string& text,
                                const ParamValue& like) {
  if (like.is_bool()) {
    if (text == "true" || text == "1" || text == "on") return ParamValue(true);
    if (text == "false" || text == "0" || text == "off") {
      return ParamValue(false);
    }
    throw std::invalid_argument("'" + text + "' is not a boolean");
  }
  if (like.is_int()) {
    std::int64_t v = 0;
    const auto [ptr, ec] =
        std::from_chars(text.data(), text.data() + text.size(), v);
    if (ec != std::errc{} || ptr != text.data() + text.size()) {
      throw std::invalid_argument("'" + text + "' is not an integer");
    }
    return ParamValue(v);
  }
  if (like.is_double()) {
    if (text.empty()) throw std::invalid_argument("empty value");
    char* end = nullptr;
    errno = 0;
    const double v = std::strtod(text.c_str(), &end);
    if (end != text.c_str() + text.size()) {
      throw std::invalid_argument("'" + text + "' is not a number");
    }
    // Overflow to ±inf is a typo'd magnitude; underflow to a denormal
    // (also ERANGE) is the closest representable value and must parse —
    // the task wire format round-trips denormal parameters through here.
    if (errno == ERANGE && (v == HUGE_VAL || v == -HUGE_VAL)) {
      throw std::invalid_argument("'" + text + "' overflows a double");
    }
    return ParamValue(v);
  }
  return ParamValue(text);
}

void ParamSet::set(std::string name, ParamValue value) {
  for (auto& [n, v] : entries_) {
    if (n == name) {
      v = std::move(value);
      return;
    }
  }
  entries_.emplace_back(std::move(name), std::move(value));
}

bool ParamSet::has(const std::string& name) const noexcept {
  return std::any_of(entries_.begin(), entries_.end(),
                     [&](const auto& e) { return e.first == name; });
}

const ParamValue& ParamSet::get(const std::string& name) const {
  for (const auto& [n, v] : entries_) {
    if (n == name) return v;
  }
  throw std::invalid_argument("unknown parameter '" + name + "'");
}

bool ParamSet::get_bool(const std::string& name) const {
  return get(name).as_bool();
}
std::int64_t ParamSet::get_int(const std::string& name) const {
  return get(name).as_int();
}
std::size_t ParamSet::get_size(const std::string& name) const {
  return get(name).as_size();
}
double ParamSet::get_double(const std::string& name) const {
  return get(name).as_double();
}
const std::string& ParamSet::get_string(const std::string& name) const {
  return get(name).as_string();
}

std::string ParamSet::label() const {
  std::string out;
  for (const auto& [name, value] : entries_) {
    if (!out.empty()) out += ' ';
    out += name + '=' + value.to_string();
  }
  return out;
}

ParamGrid::ParamGrid(
    std::initializer_list<std::pair<std::string, std::vector<ParamValue>>>
        axes) {
  for (const auto& [name, values] : axes) add_axis(name, values);
}

void ParamGrid::add_axis(std::string name, std::vector<ParamValue> values) {
  if (values.empty()) {
    throw std::invalid_argument("axis '" + name + "' has no values");
  }
  if (has_axis(name)) {
    throw std::invalid_argument("duplicate axis '" + name + "'");
  }
  // A consistent kind per axis keeps override parsing and factory access
  // unambiguous; int and double values may mix on one numeric axis.
  const auto kind = [](const ParamValue& v) {
    return v.is_bool() ? 0 : v.is_string() ? 2 : 1;
  };
  for (const ParamValue& v : values) {
    if (kind(v) != kind(values.front())) {
      throw std::invalid_argument("axis '" + name + "' mixes value types");
    }
  }
  axes_.push_back(Axis{std::move(name), std::move(values)});
}

bool ParamGrid::has_axis(const std::string& name) const noexcept {
  return std::any_of(axes_.begin(), axes_.end(),
                     [&](const Axis& a) { return a.name == name; });
}

bool ParamGrid::override_axis(const std::string& name,
                              const std::vector<std::string>& values) {
  for (Axis& axis : axes_) {
    if (axis.name != name) continue;
    if (values.empty()) {
      throw std::invalid_argument("axis '" + name + "' has no values");
    }
    // Parse with the axis's kind: a mixed int/double numeric axis must
    // accept double overrides, so prefer a double representative.
    const ParamValue* like = &axis.values.front();
    if (like->is_int()) {
      for (const ParamValue& v : axis.values) {
        if (v.is_double()) {
          like = &v;
          break;
        }
      }
    }
    std::vector<ParamValue> parsed;
    parsed.reserve(values.size());
    for (const std::string& text : values) {
      try {
        parsed.push_back(ParamValue::parse_as(text, *like));
      } catch (const std::invalid_argument& e) {
        throw std::invalid_argument("axis '" + name + "': " + e.what());
      }
    }
    axis.values = std::move(parsed);
    return true;
  }
  return false;
}

std::size_t ParamGrid::size() const noexcept {
  std::size_t n = 1;
  for (const Axis& axis : axes_) n *= axis.values.size();
  return n;
}

std::vector<ParamSet> ParamGrid::expand() const {
  std::vector<ParamSet> out;
  out.reserve(size());
  std::vector<std::size_t> index(axes_.size(), 0);
  for (;;) {
    ParamSet point;
    for (std::size_t a = 0; a < axes_.size(); ++a) {
      point.set(axes_[a].name, axes_[a].values[index[a]]);
    }
    out.push_back(std::move(point));
    // Odometer increment, last axis fastest.
    std::size_t a = axes_.size();
    while (a > 0) {
      --a;
      if (++index[a] < axes_[a].values.size()) break;
      index[a] = 0;
      if (a == 0) return out;
    }
    if (axes_.empty()) return out;
  }
}

}  // namespace findep::runtime
