// The declarative scenario registry.
//
// A *scenario family* is one experiment kind (a bench table, a paper
// figure) described declaratively: a name, a one-line description, the
// default parameter grids, and a factory that turns one grid point into a
// `Scenario` instance. Families register themselves process-wide at
// static-initialization time (`ScenarioRegistration` in the family's
// translation unit), so every binary linking the scenario library — the
// unified `findep-bench` CLI, the thin per-bench drivers, the tests —
// sees the same catalog.
//
// `run_families_main()` is the shared driver main on top of it: select
// families (`--family`, or the binary's built-in subset), override grid
// axes (`--set axis=v1,v2`), expand, and sweep everything through the
// suite's global (scenario, seed) work queue.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "runtime/param.h"
#include "runtime/scenario.h"

namespace findep::runtime {

struct ScenarioFamily {
  /// Unique registry key, [a-z0-9_]+ by convention.
  std::string name;
  /// One line, shown by `--list`.
  std::string description;
  /// Union of cartesian blocks: most families have one grid; families
  /// whose parameter space is not a single product (e.g. a size sweep
  /// plus fault mixes at one size) register several. Empty = one
  /// parameterless instance.
  std::vector<ParamGrid> grids;
  /// Builds the scenario for one grid point.
  std::function<std::unique_ptr<Scenario>(const ParamSet&)> factory;
  /// False for measured (wall-clock timing) families, which are exempt
  /// from the bit-identical determinism contract.
  bool deterministic = true;

  /// Total instances across all grids.
  [[nodiscard]] std::size_t instance_count() const noexcept;
};

class ScenarioRegistry {
 public:
  /// The process-wide registry every family registers into.
  [[nodiscard]] static ScenarioRegistry& global();

  /// Throws std::invalid_argument on a duplicate or unnamed family or a
  /// null factory.
  void register_family(ScenarioFamily family);

  [[nodiscard]] const ScenarioFamily* find(const std::string& name) const;
  /// All families, sorted by name.
  [[nodiscard]] std::vector<const ScenarioFamily*> families() const;
  [[nodiscard]] std::size_t size() const noexcept {
    return families_.size();
  }

 private:
  std::vector<ScenarioFamily> families_;
};

/// Registers a family with the global registry at static-init time:
///   const ScenarioRegistration kFamily{{.name = ..., .factory = ...}};
struct ScenarioRegistration {
  explicit ScenarioRegistration(ScenarioFamily family);
};

/// Expands `grids` through `family.factory`, one scenario per grid point,
/// grids in order.
[[nodiscard]] std::vector<std::unique_ptr<Scenario>> instantiate_family(
    const ScenarioFamily& family, const std::vector<ParamGrid>& grids);

/// The shared registry-driven main for `findep-bench` and the thin
/// per-bench binaries. `default_families` restricts the binary to a
/// subset of the registry (empty = every registered family); `overrides`
/// are baked-in `--set`-style axis overrides applied before the command
/// line's (used by example drivers that re-aim a family's grid).
/// Understands every suite flag plus `--family` and `--set`.
int run_families_main(
    int argc, const char* const* argv,
    const std::vector<std::string>& default_families, std::string intro,
    const std::vector<std::pair<std::string, std::vector<std::string>>>&
        overrides = {});

}  // namespace findep::runtime
