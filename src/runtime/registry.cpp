#include "runtime/registry.h"

#include <algorithm>
#include <fstream>
#include <iostream>
#include <stdexcept>

#include "runtime/suite.h"
#include "runtime/task.h"

namespace findep::runtime {

std::size_t ScenarioFamily::instance_count() const noexcept {
  if (grids.empty()) return 1;
  std::size_t total = 0;
  for (const ParamGrid& grid : grids) total += grid.size();
  return total;
}

ScenarioRegistry& ScenarioRegistry::global() {
  static ScenarioRegistry registry;
  return registry;
}

void ScenarioRegistry::register_family(ScenarioFamily family) {
  if (family.name.empty()) {
    throw std::invalid_argument("scenario family must have a name");
  }
  if (family.factory == nullptr) {
    throw std::invalid_argument("scenario family '" + family.name +
                                "' has no factory");
  }
  if (find(family.name) != nullptr) {
    throw std::invalid_argument("scenario family '" + family.name +
                                "' registered twice");
  }
  families_.push_back(std::move(family));
}

const ScenarioFamily* ScenarioRegistry::find(const std::string& name) const {
  for (const ScenarioFamily& family : families_) {
    if (family.name == name) return &family;
  }
  return nullptr;
}

std::vector<const ScenarioFamily*> ScenarioRegistry::families() const {
  std::vector<const ScenarioFamily*> out;
  out.reserve(families_.size());
  for (const ScenarioFamily& family : families_) out.push_back(&family);
  std::sort(out.begin(), out.end(),
            [](const ScenarioFamily* a, const ScenarioFamily* b) {
              return a->name < b->name;
            });
  return out;
}

ScenarioRegistration::ScenarioRegistration(ScenarioFamily family) {
  ScenarioRegistry::global().register_family(std::move(family));
}

std::vector<std::unique_ptr<Scenario>> instantiate_family(
    const ScenarioFamily& family, const std::vector<ParamGrid>& grids) {
  std::vector<std::unique_ptr<Scenario>> out;
  if (grids.empty()) {
    out.push_back(family.factory(ParamSet{}));
    return out;
  }
  for (const ParamGrid& grid : grids) {
    for (const ParamSet& point : grid.expand()) {
      std::unique_ptr<Scenario> scenario = family.factory(point);
      if (scenario == nullptr) {
        throw std::invalid_argument("family '" + family.name +
                                    "' factory returned null for {" +
                                    point.label() + "}");
      }
      out.push_back(std::move(scenario));
    }
  }
  return out;
}

namespace {

std::string grid_summary(const std::vector<ParamGrid>& grids) {
  std::string out;
  for (const ParamGrid& grid : grids) {
    if (!out.empty()) out += "; ";
    if (grid.axes().empty()) {
      out += "(fixed)";
      continue;
    }
    std::string axes;
    for (const ParamGrid::Axis& axis : grid.axes()) {
      if (!axes.empty()) axes += ' ';
      axes += axis.name + "=[";
      for (std::size_t i = 0; i < axis.values.size(); ++i) {
        if (i != 0) axes += ',';
        axes += axis.values[i].to_string();
      }
      axes += ']';
    }
    out += axes;
  }
  return out.empty() ? "(fixed)" : out;
}

void list_families(const std::vector<const ScenarioFamily*>& selected,
                   std::ostream& out) {
  std::size_t width = 0;
  for (const ScenarioFamily* family : selected) {
    width = std::max(width, family->name.size());
  }
  for (const ScenarioFamily* family : selected) {
    out << family->name << std::string(width - family->name.size(), ' ')
        << "  " << family->instance_count() << " scenario(s)";
    if (!family->deterministic) out << "  [measured]";
    out << "  " << family->description << '\n'
        << std::string(width + 2, ' ') << grid_summary(family->grids)
        << '\n';
  }
}

int usage_error(std::ostream& err, const std::string& message) {
  err << "error: " << message << '\n';
  return 2;
}

}  // namespace

int run_families_main(
    int argc, const char* const* argv,
    const std::vector<std::string>& default_families, std::string intro,
    const std::vector<std::pair<std::string, std::vector<std::string>>>&
        overrides) {
  SuiteOptions options;
  if (!parse_suite_options(argc, argv, options, std::cerr)) return 2;

  // The two wire-side modes need no family selection: a worker executes
  // whatever tasks arrive, a merge only re-renders results.
  if (options.worker || options.merge_mode) {
    std::ofstream out_file;
    std::ostream* dest = &std::cout;
    if (!open_output(options.out_file, out_file, dest)) {
      return usage_error(std::cerr, "cannot open --out file '" +
                                        options.out_file + "'");
    }
    const int code =
        options.worker
            ? run_worker(std::cin, *dest, std::cerr, options.sweep.threads)
            : merge_shards(options.merge, options.csv, options.json, *dest,
                           std::cerr);
    if (!close_output(options.out_file, out_file, dest, std::cerr)) return 2;
    return code;
  }

  const ScenarioRegistry& registry = ScenarioRegistry::global();

  // The binary's built-in subset (empty = the whole registry). A missing
  // name here is a programming error in the driver, not user input.
  std::vector<const ScenarioFamily*> selected;
  if (default_families.empty()) {
    selected = registry.families();
  } else {
    for (const std::string& name : default_families) {
      const ScenarioFamily* family = registry.find(name);
      if (family == nullptr) {
        return usage_error(std::cerr, "driver references unregistered "
                                      "scenario family '" +
                                          name + "'");
      }
      selected.push_back(family);
    }
    std::sort(selected.begin(), selected.end(),
              [](const ScenarioFamily* a, const ScenarioFamily* b) {
                return a->name < b->name;
              });
  }

  // --family narrows further; every requested name must resolve.
  if (!options.families.empty()) {
    std::vector<const ScenarioFamily*> narrowed;
    for (const std::string& name : options.families) {
      const auto it = std::find_if(
          selected.begin(), selected.end(),
          [&](const ScenarioFamily* f) { return f->name == name; });
      if (it == selected.end()) {
        std::string known;
        for (const ScenarioFamily* f : selected) {
          if (!known.empty()) known += ", ";
          known += f->name;
        }
        return usage_error(std::cerr, "unknown family '" + name +
                                          "' (available: " + known + ")");
      }
      if (std::find(narrowed.begin(), narrowed.end(), *it) ==
          narrowed.end()) {
        narrowed.push_back(*it);
      }
    }
    std::sort(narrowed.begin(), narrowed.end(),
              [](const ScenarioFamily* a, const ScenarioFamily* b) {
                return a->name < b->name;
              });
    selected = std::move(narrowed);
  }

  if (options.list) {
    list_families(selected, std::cout);
    return 0;
  }

  // Working copies of the grids, then axis overrides: the driver's
  // baked-in ones first, the command line's on top. Every override must
  // hit at least one selected grid — a typoed axis is a usage error.
  std::vector<std::vector<ParamGrid>> grids;
  grids.reserve(selected.size());
  for (const ScenarioFamily* family : selected) {
    grids.push_back(family->grids);
  }
  std::vector<AxisOverride> all_sets;
  for (const auto& [axis, values] : overrides) {
    all_sets.push_back(AxisOverride{axis, values});
  }
  all_sets.insert(all_sets.end(), options.sets.begin(), options.sets.end());
  for (const AxisOverride& over : all_sets) {
    bool applied = false;
    for (std::vector<ParamGrid>& family_grids : grids) {
      for (ParamGrid& grid : family_grids) {
        try {
          applied = grid.override_axis(over.axis, over.values) || applied;
        } catch (const std::invalid_argument& e) {
          return usage_error(std::cerr, std::string("--set ") + e.what());
        }
      }
    }
    if (!applied) {
      return usage_error(std::cerr, "--set " + over.axis +
                                        ": no selected family has that "
                                        "axis");
    }
  }

  // Coordinator mode: print the selected catalog as task JSONL instead of
  // sweeping it. The same selection + overridden grids feed both paths,
  // so `--emit-tasks | --worker | --merge -` reproduces the in-process
  // sweep byte-for-byte.
  if (options.emit_tasks) {
    FamilySelection selection;
    for (std::size_t f = 0; f < selected.size(); ++f) {
      selection.emplace_back(selected[f], grids[f]);
    }
    std::ofstream out_file;
    std::ostream* dest = &std::cout;
    if (!open_output(options.out_file, out_file, dest)) {
      return usage_error(std::cerr, "cannot open --out file '" +
                                        options.out_file + "'");
    }
    try {
      emit_task_catalog(selection, options.sweep, options.only,
                        options.exclude, *dest);
    } catch (const std::exception& e) {
      return usage_error(std::cerr, e.what());
    }
    if (!close_output(options.out_file, out_file, dest, std::cerr)) return 2;
    return 0;
  }

  ScenarioSuite suite(std::move(intro));
  for (std::size_t f = 0; f < selected.size(); ++f) {
    // Factories and scenario constructors validate their parameters
    // (string axes like mix/fleet/case, numeric preconditions); with
    // overridden grids those throws are user input, not bugs.
    try {
      for (auto& scenario : instantiate_family(*selected[f], grids[f])) {
        suite.add(std::move(scenario));
      }
    } catch (const std::exception& e) {
      return usage_error(std::cerr,
                         "family '" + selected[f]->name + "': " + e.what());
    }
  }
  // `list` was handled above at family granularity; everything else
  // (sweep, --only, rendering) is the suite's job.
  return suite.run(options, std::cout, std::cerr);
}

}  // namespace findep::runtime
