// Process-wide counters surfaced in suite output.
//
// Library layers register named samplers (e.g. the DiversityAnalyzer
// memo cache's hit/miss counters) and the suite prints a "counters:"
// footer under its tables. Counters are informational: their totals
// depend on worker interleaving (two workers can race to a miss on the
// same key), so they are deliberately excluded from the deterministic
// CSV/JSON record.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

namespace findep::runtime {

/// Samples a process-wide counter.
using CounterSampler = std::function<std::uint64_t()>;

/// Registers a named counter (typically at static-init time, like the
/// scenario registrations). Thread-safe.
void register_process_counter(std::string name, CounterSampler sampler);

/// Current values, in registration order.
[[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>>
sample_process_counters();

}  // namespace findep::runtime
