// Declarative experiment parameters.
//
// A `ParamGrid` describes a scenario family's parameter space as named
// *axes* of values; `expand()` walks the cartesian product in definition
// order (first axis outermost, matching the nested for-loops the old
// bench drivers hand-rolled) and yields one `ParamSet` per grid point.
// The CLI overrides axes with `--set axis=v1,v2`; override values are
// parsed with the type of the axis's default values, so a typo in a
// numeric axis is a usage error, not a silently-stringly parameter.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

namespace findep::runtime {

/// One typed parameter value. The alternatives cover everything the
/// scenario factories consume; `as_double()` accepts integers so grids
/// may write `n=[4, 7]` for a double-typed parameter.
class ParamValue {
 public:
  using Storage = std::variant<bool, std::int64_t, double, std::string>;

  ParamValue() : value_(std::int64_t{0}) {}
  ParamValue(bool v) : value_(v) {}                 // NOLINT(runtime/explicit)
  ParamValue(std::int64_t v) : value_(v) {}         // NOLINT(runtime/explicit)
  ParamValue(int v) : value_(std::int64_t{v}) {}    // NOLINT(runtime/explicit)
  ParamValue(std::size_t v)                         // NOLINT(runtime/explicit)
      : value_(static_cast<std::int64_t>(v)) {}
  ParamValue(double v) : value_(v) {}               // NOLINT(runtime/explicit)
  ParamValue(std::string v)                         // NOLINT(runtime/explicit)
      : value_(std::move(v)) {}
  ParamValue(const char* v) : value_(std::string(v)) {}  // NOLINT

  [[nodiscard]] bool is_bool() const noexcept;
  [[nodiscard]] bool is_int() const noexcept;
  [[nodiscard]] bool is_double() const noexcept;
  [[nodiscard]] bool is_string() const noexcept;

  /// Typed access. Throws std::invalid_argument on an incompatible
  /// alternative; `as_double` additionally accepts int, `as_size`/`as_int`
  /// reject negative values where the target cannot hold them.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] std::int64_t as_int() const;
  [[nodiscard]] std::size_t as_size() const;
  [[nodiscard]] double as_double() const;
  [[nodiscard]] const std::string& as_string() const;

  /// Round-trippable rendering: booleans as true/false, doubles with up
  /// to 17 significant digits trimmed to the shortest exact form.
  [[nodiscard]] std::string to_string() const;

  /// Parses `text` as the same alternative `like` holds. Throws
  /// std::invalid_argument with a descriptive message on mismatch.
  [[nodiscard]] static ParamValue parse_as(const std::string& text,
                                           const ParamValue& like);

  bool operator==(const ParamValue&) const = default;

 private:
  Storage value_;
};

/// Named parameter values in axis-definition order (one grid point).
class ParamSet {
 public:
  void set(std::string name, ParamValue value);

  [[nodiscard]] bool has(const std::string& name) const noexcept;
  /// Throws std::invalid_argument when `name` is absent.
  [[nodiscard]] const ParamValue& get(const std::string& name) const;

  // Typed shorthands (throw on missing name or incompatible type).
  [[nodiscard]] bool get_bool(const std::string& name) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name) const;
  [[nodiscard]] std::size_t get_size(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name) const;
  [[nodiscard]] const std::string& get_string(const std::string& name) const;

  [[nodiscard]] const std::vector<std::pair<std::string, ParamValue>>&
  entries() const noexcept {
    return entries_;
  }

  /// "a=1 b=2.5 c=on" in insertion order — the scenario-name suffix for
  /// grid-built instances.
  [[nodiscard]] std::string label() const;

 private:
  std::vector<std::pair<std::string, ParamValue>> entries_;
};

/// Cartesian parameter grid: ordered named axes, each a non-empty list
/// of values of one consistent alternative.
class ParamGrid {
 public:
  ParamGrid() = default;
  /// Convenience literal form:
  ///   ParamGrid{{"n", {4, 7, 10}}, {"skew", {0.5, 1.0}}}
  ParamGrid(std::initializer_list<
            std::pair<std::string, std::vector<ParamValue>>>
                axes);

  /// Appends an axis. Throws std::invalid_argument on duplicate names,
  /// empty value lists, or mixed value alternatives within one axis.
  void add_axis(std::string name, std::vector<ParamValue> values);

  [[nodiscard]] bool has_axis(const std::string& name) const noexcept;

  /// Replaces an axis's values, parsing each string with the type of the
  /// axis's current first value. Returns false when the axis does not
  /// exist; throws std::invalid_argument when a value fails to parse.
  bool override_axis(const std::string& name,
                     const std::vector<std::string>& values);

  /// Number of grid points (product of axis sizes; 1 for an empty grid).
  [[nodiscard]] std::size_t size() const noexcept;

  /// The cartesian product in definition order: the first axis varies
  /// slowest (outermost loop), the last axis fastest. An empty grid
  /// expands to a single empty ParamSet.
  [[nodiscard]] std::vector<ParamSet> expand() const;

  struct Axis {
    std::string name;
    std::vector<ParamValue> values;
  };
  [[nodiscard]] const std::vector<Axis>& axes() const noexcept {
    return axes_;
  }

 private:
  std::vector<Axis> axes_;
};

}  // namespace findep::runtime
