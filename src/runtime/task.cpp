#include "runtime/task.h"

#include <algorithm>
#include <atomic>
#include <charconv>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "support/table.h"

namespace findep::runtime {

namespace {

// --- a minimal JSON reader --------------------------------------------------
// Just enough for the wire schema: objects (key order preserved), arrays,
// strings, booleans, and numbers kept as raw tokens so doubles can be
// re-parsed exactly. Accepts the bare tokens inf/-inf/nan that
// format_exact produces — the documented JSONL extension.

struct Json {
  enum class Kind { Null, Bool, Number, String, Array, Object };
  Kind kind = Kind::Null;
  bool boolean = false;
  std::string number;  // raw token, e.g. "1e-310", "inf"
  std::string str;
  std::vector<Json> array;
  std::vector<std::pair<std::string, Json>> object;

  [[nodiscard]] const Json* find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
  [[nodiscard]] const Json& at(const std::string& key) const {
    const Json* v = find(key);
    if (v == nullptr) {
      throw std::invalid_argument("missing key '" + key + "'");
    }
    return *v;
  }
  [[nodiscard]] const std::string& as_string() const {
    if (kind != Kind::String) throw std::invalid_argument("expected string");
    return str;
  }
  [[nodiscard]] double as_double() const {
    if (kind != Kind::Number) throw std::invalid_argument("expected number");
    char* end = nullptr;
    const double v = std::strtod(number.c_str(), &end);
    if (end != number.c_str() + number.size()) {
      throw std::invalid_argument("bad number '" + number + "'");
    }
    return v;
  }
  [[nodiscard]] std::uint64_t as_u64() const {
    if (kind != Kind::Number) throw std::invalid_argument("expected number");
    std::uint64_t v = 0;
    const auto [ptr, ec] =
        std::from_chars(number.data(), number.data() + number.size(), v);
    if (ec != std::errc{} || ptr != number.data() + number.size()) {
      throw std::invalid_argument("expected unsigned integer, got '" +
                                  number + "'");
    }
    return v;
  }
  [[nodiscard]] std::size_t as_size() const {
    return static_cast<std::size_t>(as_u64());
  }
};

class JsonReader {
 public:
  explicit JsonReader(const std::string& text) : text_(text) {}

  Json parse() {
    Json value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::invalid_argument("JSON error at offset " +
                                std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool literal(const char* word) {
    const std::size_t n = std::string(word).size();
    if (text_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }

  Json parse_value() {
    // Depth bound (found by tests/fuzz_task_json): without it, a line of
    // a few hundred kilobytes of '[' recurses the parser off the stack.
    // The wire schema nests 3 levels deep; 64 is far beyond any legal
    // document and still at most a few dozen stack frames.
    if (depth_ >= kMaxDepth) fail("nesting too deep");
    ++depth_;
    Json v = parse_value_inner();
    --depth_;
    return v;
  }

  Json parse_value_inner() {
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') {
      Json v;
      v.kind = Json::Kind::String;
      v.str = parse_string();
      return v;
    }
    Json v;
    if (literal("true")) {
      v.kind = Json::Kind::Bool;
      v.boolean = true;
      return v;
    }
    if (literal("false")) {
      v.kind = Json::Kind::Bool;
      v.boolean = false;
      return v;
    }
    if (literal("null")) return v;
    return parse_number();
  }

  Json parse_number() {
    Json v;
    v.kind = Json::Kind::Number;
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    if (literal("inf") || literal("nan")) {
      v.number = text_.substr(start, pos_ - start);
      return v;
    }
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
          c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) fail("expected a value");
    v.number = text_.substr(start, pos_ - start);
    return v;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad \\u escape");
            }
          }
          // The writer only emits \u for control characters; decode the
          // BMP anyway (UTF-8) so foreign JSONL parses too.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xc0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3f));
          } else {
            out += static_cast<char>(0xe0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (code & 0x3f));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  Json parse_array() {
    expect('[');
    Json v;
    v.kind = Json::Kind::Array;
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(parse_value());
      const char c = peek();
      ++pos_;
      if (c == ']') return v;
      if (c != ',') fail("expected ',' or ']'");
    }
  }

  Json parse_object() {
    expect('{');
    Json v;
    v.kind = Json::Kind::Object;
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      std::string key = parse_string();
      expect(':');
      v.object.emplace_back(std::move(key), parse_value());
      const char c = peek();
      ++pos_;
      if (c == '}') return v;
      if (c != ',') fail("expected ',' or '}'");
    }
  }

  static constexpr int kMaxDepth = 64;

  const std::string& text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

Json parse_json(const std::string& text) { return JsonReader(text).parse(); }

const char* type_tag(const ParamValue& value) {
  if (value.is_bool()) return "bool";
  if (value.is_int()) return "int";
  if (value.is_double()) return "double";
  return "string";
}

/// A representative value of the tagged type, for ParamValue::parse_as.
ParamValue exemplar(const std::string& type) {
  if (type == "bool") return ParamValue(false);
  if (type == "int") return ParamValue(std::int64_t{0});
  if (type == "double") return ParamValue(0.0);
  if (type == "string") return ParamValue(std::string{});
  throw std::invalid_argument("unknown parameter type '" + type + "'");
}

ParamValue param_value_from(const Json& json) {
  const std::string& type = json.at("type").as_string();
  const std::string& text = json.at("value").as_string();
  try {
    return ParamValue::parse_as(text, exemplar(type));
  } catch (const std::invalid_argument& e) {
    throw std::invalid_argument("parameter value '" + text + "' as " + type +
                                ": " + e.what());
  }
}

ParamSet param_set_from(const Json& json) {
  if (json.kind != Json::Kind::Array) {
    throw std::invalid_argument("params must be an array");
  }
  ParamSet set;
  for (const Json& entry : json.array) {
    set.set(entry.at("name").as_string(), param_value_from(entry));
  }
  return set;
}

MetricRecord metric_record_from(const Json& json) {
  if (json.kind != Json::Kind::Object) {
    throw std::invalid_argument("metrics must be an object");
  }
  MetricRecord metrics;
  for (const auto& [name, value] : json.object) {
    metrics.set(name, value.as_double());
  }
  return metrics;
}

RunRecord run_record_from(const Json& json) {
  RunRecord record;
  record.seed = json.at("seed").as_u64();
  record.run_index = json.at("run_index").as_size();
  if (const Json* error = json.find("error");
      error != nullptr && !error->as_string().empty()) {
    record.error = error->as_string();
  } else {
    record.metrics = metric_record_from(json.at("metrics"));
  }
  return record;
}

/// The shared body of RunRecord / TaskResult JSON (no braces).
void append_run_record_body(const RunRecord& record, std::string& out) {
  out += "\"seed\": " + std::to_string(record.seed) +
         ", \"run_index\": " + std::to_string(record.run_index);
  if (!record.ok()) {
    out += ", \"error\": \"" + json_escape(record.error) + '"';
    return;
  }
  out += ", \"metrics\": " + to_json(record.metrics);
}

}  // namespace

// --- writers ----------------------------------------------------------------

std::string to_json(const ParamValue& value) {
  // The value travels as a string rendered exactly (shortest round-trip
  // for doubles), with an explicit type tag: "7" the int and "7" the
  // double are different wire values.
  return std::string("{\"type\": \"") + type_tag(value) + "\", \"value\": \"" +
         json_escape(value.to_string()) + "\"}";
}

std::string to_json(const ParamSet& params) {
  std::string out = "[";
  bool first = true;
  for (const auto& [name, value] : params.entries()) {
    if (!first) out += ", ";
    first = false;
    out += "{\"name\": \"" + json_escape(name) + "\", \"type\": \"" +
           type_tag(value) + "\", \"value\": \"" +
           json_escape(value.to_string()) + "\"}";
  }
  return out + "]";
}

std::string to_json(const MetricRecord& metrics) {
  std::string out = "{";
  bool first = true;
  for (const auto& [name, value] : metrics.entries()) {
    if (!first) out += ", ";
    first = false;
    out += '"' + json_escape(name) + "\": " + format_exact(value);
  }
  return out + "}";
}

std::string to_json(const RunRecord& record) {
  std::string out = "{";
  append_run_record_body(record, out);
  return out + "}";
}

std::string to_json(const TaskSpec& task) {
  return "{\"family\": \"" + json_escape(task.family) +
         "\", \"params\": " + to_json(task.params) +
         ", \"base_seed\": " + std::to_string(task.base_seed) +
         ", \"run_index\": " + std::to_string(task.run_index) +
         ", \"sequence\": " + std::to_string(task.sequence) + "}";
}

std::string to_json(const TaskResult& result) {
  std::string out = "{\"family\": \"" + json_escape(result.family) +
                    "\", \"scenario\": \"" + json_escape(result.scenario) +
                    "\", \"sequence\": " + std::to_string(result.sequence) +
                    ", ";
  append_run_record_body(result.record, out);
  return out + "}";
}

// --- parsers ----------------------------------------------------------------

ParamValue param_value_from_json(const std::string& text) {
  return param_value_from(parse_json(text));
}

ParamSet param_set_from_json(const std::string& text) {
  return param_set_from(parse_json(text));
}

MetricRecord metric_record_from_json(const std::string& text) {
  return metric_record_from(parse_json(text));
}

RunRecord run_record_from_json(const std::string& text) {
  return run_record_from(parse_json(text));
}

TaskSpec task_spec_from_json(const std::string& text) {
  const Json json = parse_json(text);
  TaskSpec task;
  task.family = json.at("family").as_string();
  task.params = param_set_from(json.at("params"));
  task.base_seed = json.at("base_seed").as_u64();
  task.run_index = json.at("run_index").as_size();
  if (const Json* sequence = json.find("sequence")) {
    task.sequence = sequence->as_size();
  }
  return task;
}

TaskResult task_result_from_json(const std::string& text) {
  const Json json = parse_json(text);
  TaskResult result;
  result.family = json.at("family").as_string();
  result.scenario = json.at("scenario").as_string();
  if (const Json* sequence = json.find("sequence")) {
    result.sequence = sequence->as_size();
  }
  result.record = run_record_from(json);
  return result;
}

// --- coordinator: --emit-tasks ----------------------------------------------

std::size_t emit_task_catalog(const FamilySelection& selection,
                              const SweepOptions& sweep,
                              const std::string& only,
                              const std::string& exclude, std::ostream& out) {
  std::size_t sequence = 0;
  std::size_t emitted = 0;
  for (const auto& [family, grids] : selection) {
    // Empty grid list = one parameterless instance, like instantiate_family.
    std::vector<ParamSet> points;
    if (grids.empty()) {
      points.emplace_back();
    } else {
      for (const ParamGrid& grid : grids) {
        for (ParamSet& point : grid.expand()) points.push_back(std::move(point));
      }
    }
    for (const ParamSet& point : points) {
      // Build the instance once: validates the grid point where the
      // coordinator can report it, and yields the name for --only.
      const std::unique_ptr<Scenario> scenario = family->factory(point);
      if (scenario == nullptr) {
        throw std::invalid_argument("family '" + family->name +
                                    "' factory returned null for {" +
                                    point.label() + "}");
      }
      const std::size_t seq = sequence++;
      if (!only.empty() &&
          scenario->name().find(only) == std::string::npos) {
        continue;
      }
      if (!exclude.empty() &&
          scenario->name().find(exclude) != std::string::npos) {
        continue;
      }
      for (std::size_t i = 0; i < sweep.num_seeds; ++i) {
        out << to_json(TaskSpec{family->name, point, sweep.base_seed, i,
                                seq})
            << '\n';
        ++emitted;
      }
    }
  }
  return emitted;
}

// --- worker: --worker -------------------------------------------------------

namespace {

/// Stand-in for a task whose factory rejected its parameters: carries the
/// error into the normal execute/collect path so the result record is an
/// error-carrying TaskResult rather than a dead worker.
class FailedScenario final : public Scenario {
 public:
  FailedScenario(std::string name, std::string message)
      : name_(std::move(name)), message_(std::move(message)) {}
  std::string name() const override { return name_; }
  MetricRecord run(const RunContext&) const override {
    throw std::runtime_error(message_);
  }

 private:
  std::string name_;
  std::string message_;
};

struct LoadedTask {
  TaskSpec spec;
  std::shared_ptr<const Scenario> scenario;
};

/// Hands out pre-parsed wire tasks by input ordinal.
class LoadedTaskSource final : public TaskSource {
 public:
  explicit LoadedTaskSource(const std::vector<LoadedTask>& tasks)
      : tasks_(tasks) {}

  bool next(SweepTask& task) override {
    const std::size_t i = next_.fetch_add(1);
    if (i >= tasks_.size()) return false;
    task.scenario = tasks_[i].scenario;
    task.seed = derive_seed(tasks_[i].spec.base_seed,
                            tasks_[i].spec.run_index);
    task.run_index = tasks_[i].spec.run_index;
    task.slot = i;
    return true;
  }

 private:
  const std::vector<LoadedTask>& tasks_;
  std::atomic<std::size_t> next_{0};
};

/// Streams result lines in input order regardless of completion order, so
/// a worker's stdout is deterministic on any thread count.
class OrderedJsonlCollector final : public ResultCollector {
 public:
  OrderedJsonlCollector(const std::vector<LoadedTask>& tasks,
                        std::ostream& out)
      : tasks_(tasks), pending_(tasks.size()), done_(tasks.size(), false),
        out_(out) {}

  void collect(const SweepTask& task, RunRecord record) override {
    if (!record.ok()) any_error_ = true;
    TaskResult result;
    // The *scenario's* rendered family, not the registry family the task
    // named: the two can differ (bft_batching instantiates bft_scaling
    // scenarios), and the merge must render exactly what the in-process
    // sink would — that's the byte-identity contract.
    result.family = task.scenario->family();
    result.scenario = task.scenario->name();
    result.sequence = tasks_[task.slot].spec.sequence;
    result.record = std::move(record);
    std::string line = to_json(result);

    const std::lock_guard<std::mutex> lock(mutex_);
    pending_[task.slot] = std::move(line);
    done_[task.slot] = true;
    while (next_to_emit_ < done_.size() && done_[next_to_emit_]) {
      out_ << pending_[next_to_emit_] << '\n';
      pending_[next_to_emit_].clear();
      ++next_to_emit_;
    }
  }

  [[nodiscard]] bool any_error() const noexcept { return any_error_; }

 private:
  const std::vector<LoadedTask>& tasks_;
  std::vector<std::string> pending_;
  std::vector<bool> done_;
  std::size_t next_to_emit_ = 0;
  std::ostream& out_;
  std::mutex mutex_;
  std::atomic<bool> any_error_{false};
};

}  // namespace

int run_worker(std::istream& in, std::ostream& out, std::ostream& err,
               std::size_t threads) {
  const ScenarioRegistry& registry = ScenarioRegistry::global();

  // Parse and resolve everything up front: a malformed task list fails
  // fast (before any work runs) with the offending line number.
  std::vector<LoadedTask> tasks;
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    LoadedTask task;
    try {
      task.spec = task_spec_from_json(line);
    } catch (const std::invalid_argument& e) {
      err << "error: task line " << line_number << ": " << e.what() << '\n';
      return 2;
    }
    const ScenarioFamily* family = registry.find(task.spec.family);
    if (family == nullptr) {
      err << "error: task line " << line_number << ": unknown scenario "
          << "family '" << task.spec.family << "'\n";
      return 2;
    }
    // A factory throw is data, not a protocol error: the run's record
    // carries it to the merge like any failed run.
    try {
      task.scenario = family->factory(task.spec.params);
      if (task.scenario == nullptr) {
        throw std::invalid_argument("factory returned null");
      }
    } catch (const std::exception& e) {
      task.scenario = std::make_shared<FailedScenario>(
          task.spec.family + "/" + task.spec.params.label(), e.what());
    }
    tasks.push_back(std::move(task));
  }

  if (tasks.empty()) return 0;
  if (threads == 0) threads = std::thread::hardware_concurrency();
  if (threads == 0) threads = 1;
  LoadedTaskSource source(tasks);
  OrderedJsonlCollector collector(tasks, out);
  run_task_pool(source, collector, std::min(threads, tasks.size()));
  out.flush();
  return collector.any_error() ? 1 : 0;
}

// --- merge: --merge ---------------------------------------------------------

namespace {

struct MergeGroup {
  std::string family;
  std::string scenario;
  std::size_t sequence = 0;
  std::vector<RunRecord> records;
};

bool read_shard(std::istream& in, const std::string& label,
                std::vector<MergeGroup>& groups, std::ostream& err) {
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    TaskResult result;
    try {
      result = task_result_from_json(line);
    } catch (const std::invalid_argument& e) {
      err << "error: " << label << " line " << line_number << ": "
          << e.what() << '\n';
      return false;
    }
    // Sequence is part of the group key: two catalog instances may share
    // a display name (e.g. a --set collapsing both bft_scaling grids onto
    // the same point), and the in-process sweep renders them as two
    // entries — the merge must too.
    MergeGroup* group = nullptr;
    for (MergeGroup& g : groups) {
      if (g.scenario == result.scenario && g.family == result.family &&
          g.sequence == result.sequence) {
        group = &g;
        break;
      }
    }
    if (group == nullptr) {
      groups.push_back(MergeGroup{result.family, result.scenario,
                                  result.sequence, {}});
      group = &groups.back();
    }
    for (const RunRecord& existing : group->records) {
      if (existing.seed == result.record.seed &&
          existing.run_index == result.record.run_index) {
        err << "error: " << label << " line " << line_number
            << ": duplicate record for scenario '" << result.scenario
            << "' seed " << result.record.seed
            << " (overlapping shards?)\n";
        return false;
      }
    }
    group->records.push_back(std::move(result.record));
  }
  return true;
}

}  // namespace

int merge_shards(const std::vector<std::string>& paths, bool csv, bool json,
                 std::ostream& out, std::ostream& err) {
  std::vector<MergeGroup> groups;
  for (const std::string& path : paths) {
    if (path == "-") {
      if (!read_shard(std::cin, "<stdin>", groups, err)) return 2;
      continue;
    }
    std::ifstream file(path);
    if (!file) {
      err << "error: cannot open shard file '" << path << "'\n";
      return 2;
    }
    if (!read_shard(file, path, groups, err)) return 2;
  }

  // Scenario order: by catalog sequence, first appearance breaking ties —
  // reproduces the in-process suite order however tasks were sharded.
  std::stable_sort(groups.begin(), groups.end(),
                   [](const MergeGroup& a, const MergeGroup& b) {
                     return a.sequence < b.sequence;
                   });

  MetricsSink sink;
  std::size_t total_records = 0;
  for (MergeGroup& group : groups) {
    total_records += group.records.size();
    sink.add(std::move(group.scenario), std::move(group.family),
             std::move(group.records));
  }

  if (json) {
    sink.print_json(out);
  } else if (csv) {
    sink.print_csv(out);
  } else {
    support::print_banner(
        out, "merged " + std::to_string(total_records) + " record(s) from " +
                 std::to_string(paths.size()) + " shard(s)");
    sink.print_tables(out);
  }

  if (sink.any_errors()) {
    for (const auto& entry : sink.entries()) {
      for (const RunRecord& record : entry.records) {
        if (!record.ok()) {
          err << entry.scenario << " seed " << record.seed
              << " failed: " << record.error << '\n';
        }
      }
    }
    return 1;
  }
  return 0;
}

}  // namespace findep::runtime
