#include "runtime/scenario.h"

namespace findep::runtime {

std::string Scenario::family() const {
  const std::string n = name();
  const std::size_t slash = n.find('/');
  return slash == std::string::npos ? n : n.substr(0, slash);
}

}  // namespace findep::runtime
