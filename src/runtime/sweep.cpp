#include "runtime/sweep.h"

#include <atomic>
#include <exception>
#include <thread>

#include "support/assert.h"
#include "support/rng.h"

namespace findep::runtime {

std::uint64_t derive_seed(std::uint64_t base_seed,
                          std::size_t run_index) noexcept {
  // splitmix64's state after i steps is base + i*gamma; mixing it yields
  // the stream's i-th output without iterating.
  constexpr std::uint64_t kGamma = 0x9e3779b97f4a7c15ULL;
  return support::mix64(base_seed + kGamma * static_cast<std::uint64_t>(
                                                 run_index + 1));
}

SweepRunner::SweepRunner(SweepOptions options) : options_(options) {
  FINDEP_REQUIRE(options_.num_seeds > 0);
}

std::vector<RunRecord> SweepRunner::run(const Scenario& scenario) const {
  const std::size_t n = options_.num_seeds;
  std::vector<RunRecord> records(n);
  for (std::size_t i = 0; i < n; ++i) {
    records[i].seed = derive_seed(options_.base_seed, i);
    records[i].run_index = i;
  }

  const auto execute = [&](std::size_t i) {
    RunRecord& record = records[i];
    try {
      record.metrics =
          scenario.run(RunContext{record.seed, record.run_index});
    } catch (const std::exception& e) {
      record.error = e.what();
    } catch (...) {
      record.error = "unknown exception";
    }
  };

  std::size_t threads = options_.threads != 0
                            ? options_.threads
                            : std::thread::hardware_concurrency();
  if (threads == 0) threads = 1;
  threads = std::min(threads, n);

  if (threads <= 1) {
    for (std::size_t i = 0; i < n; ++i) execute(i);
    return records;
  }

  // Work-stealing by atomic counter: workers claim run indices; each run
  // writes only its own slot, so no further synchronization is needed.
  std::atomic<std::size_t> next{0};
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    pool.emplace_back([&] {
      for (std::size_t i = next.fetch_add(1); i < n;
           i = next.fetch_add(1)) {
        execute(i);
      }
    });
  }
  for (std::thread& worker : pool) worker.join();
  return records;
}

}  // namespace findep::runtime
