#include "runtime/sweep.h"

#include <atomic>
#include <exception>
#include <thread>

#include "support/assert.h"
#include "support/rng.h"

namespace findep::runtime {

std::uint64_t derive_seed(std::uint64_t base_seed,
                          std::size_t run_index) noexcept {
  // splitmix64's state after i steps is base + i*gamma; mixing it yields
  // the stream's i-th output without iterating.
  constexpr std::uint64_t kGamma = 0x9e3779b97f4a7c15ULL;
  return support::mix64(base_seed + kGamma * static_cast<std::uint64_t>(
                                                 run_index + 1));
}

SweepRunner::SweepRunner(SweepOptions options) : options_(options) {
  FINDEP_REQUIRE(options_.num_seeds > 0);
}

std::vector<RunRecord> SweepRunner::run(const Scenario& scenario) const {
  return run_all({&scenario}).front();
}

std::vector<std::vector<RunRecord>> SweepRunner::run_all(
    const std::vector<const Scenario*>& scenarios) const {
  const std::size_t n = options_.num_seeds;
  std::vector<std::vector<RunRecord>> records(scenarios.size());
  for (std::size_t s = 0; s < scenarios.size(); ++s) {
    FINDEP_REQUIRE(scenarios[s] != nullptr);
    records[s].resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      records[s][i].seed = derive_seed(options_.base_seed, i);
      records[s][i].run_index = i;
    }
  }

  // One flat task per (scenario, run_index); scenario-major order so the
  // serial path executes exactly like the old per-scenario loop.
  const std::size_t total = scenarios.size() * n;
  const auto execute = [&](std::size_t task) {
    const std::size_t s = task / n;
    RunRecord& record = records[s][task % n];
    try {
      record.metrics =
          scenarios[s]->run(RunContext{record.seed, record.run_index});
    } catch (const std::exception& e) {
      record.error = e.what();
    } catch (...) {
      record.error = "unknown exception";
    }
  };

  std::size_t threads = options_.threads != 0
                            ? options_.threads
                            : std::thread::hardware_concurrency();
  if (threads == 0) threads = 1;
  threads = std::min(threads, total);

  if (threads <= 1) {
    for (std::size_t task = 0; task < total; ++task) execute(task);
    return records;
  }

  // Work-stealing by atomic counter: workers claim flat task indices off
  // the global queue; each task writes only its own (scenario, run) slot,
  // so no further synchronization is needed.
  std::atomic<std::size_t> next{0};
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    pool.emplace_back([&] {
      for (std::size_t task = next.fetch_add(1); task < total;
           task = next.fetch_add(1)) {
        execute(task);
      }
    });
  }
  for (std::thread& worker : pool) worker.join();
  return records;
}

}  // namespace findep::runtime
