#include "runtime/sweep.h"

#include <atomic>
#include <exception>
#include <thread>

#include "support/assert.h"
#include "support/rng.h"

namespace findep::runtime {

std::uint64_t derive_seed(std::uint64_t base_seed,
                          std::size_t run_index) noexcept {
  // splitmix64's state after i steps is base + i*gamma; mixing it yields
  // the stream's i-th output without iterating.
  constexpr std::uint64_t kGamma = 0x9e3779b97f4a7c15ULL;
  return support::mix64(base_seed + kGamma * static_cast<std::uint64_t>(
                                                 run_index + 1));
}

namespace {

RunRecord execute_task(const SweepTask& task) {
  RunRecord record;
  record.seed = task.seed;
  record.run_index = task.run_index;
  try {
    record.metrics =
        task.scenario->run(RunContext{task.seed, task.run_index});
  } catch (const std::exception& e) {
    record.error = e.what();
  } catch (...) {
    record.error = "unknown exception";
  }
  return record;
}

/// The in-process source: flat (scenario, run_index) indices claimed off
/// one atomic counter, scenario-major so a serial drain executes exactly
/// like the old per-scenario loop.
class IndexedTaskSource final : public TaskSource {
 public:
  IndexedTaskSource(const std::vector<const Scenario*>& scenarios,
                    const SweepOptions& options)
      : scenarios_(scenarios), options_(options) {}

  bool next(SweepTask& task) override {
    const std::size_t flat = next_.fetch_add(1);
    if (flat >= scenarios_.size() * options_.num_seeds) return false;
    const std::size_t i = flat % options_.num_seeds;
    // Aliasing shared_ptr: the suite owns the scenario for the whole
    // sweep, so the task needs no ownership of its own.
    task.scenario = std::shared_ptr<const Scenario>(
        std::shared_ptr<const Scenario>{}, scenarios_[flat / options_.num_seeds]);
    task.seed = derive_seed(options_.base_seed, i);
    task.run_index = i;
    task.slot = flat;
    return true;
  }

 private:
  const std::vector<const Scenario*>& scenarios_;
  const SweepOptions& options_;
  std::atomic<std::size_t> next_{0};
};

/// The in-process collector: each record lands in its own (scenario,
/// run_index) slot, so no synchronization beyond the slot math is needed.
class SlottedCollector final : public ResultCollector {
 public:
  SlottedCollector(std::vector<std::vector<RunRecord>>& records,
                   std::size_t num_seeds)
      : records_(records), num_seeds_(num_seeds) {}

  void collect(const SweepTask& task, RunRecord record) override {
    records_[task.slot / num_seeds_][task.slot % num_seeds_] =
        std::move(record);
  }

 private:
  std::vector<std::vector<RunRecord>>& records_;
  std::size_t num_seeds_;
};

}  // namespace

void run_task_pool(TaskSource& source, ResultCollector& collector,
                   std::size_t threads) {
  if (threads == 0) threads = std::thread::hardware_concurrency();
  if (threads <= 1) {
    SweepTask task;
    while (source.next(task)) collector.collect(task, execute_task(task));
    return;
  }

  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    pool.emplace_back([&] {
      SweepTask task;
      while (source.next(task)) collector.collect(task, execute_task(task));
    });
  }
  for (std::thread& worker : pool) worker.join();
}

SweepRunner::SweepRunner(SweepOptions options) : options_(options) {
  FINDEP_REQUIRE(options_.num_seeds > 0);
}

std::vector<RunRecord> SweepRunner::run(const Scenario& scenario) const {
  return run_all({&scenario}).front();
}

std::vector<std::vector<RunRecord>> SweepRunner::run_all(
    const std::vector<const Scenario*>& scenarios) const {
  const std::size_t n = options_.num_seeds;
  std::vector<std::vector<RunRecord>> records(scenarios.size());
  for (std::size_t s = 0; s < scenarios.size(); ++s) {
    FINDEP_REQUIRE(scenarios[s] != nullptr);
    records[s].resize(n);
  }

  std::size_t threads = options_.threads != 0
                            ? options_.threads
                            : std::thread::hardware_concurrency();
  if (threads == 0) threads = 1;
  threads = std::min(threads, scenarios.size() * n);

  IndexedTaskSource source(scenarios, options_);
  SlottedCollector collector(records, n);
  run_task_pool(source, collector, threads);
  return records;
}

}  // namespace findep::runtime
