// The Scenario interface: one experiment, parameterized, run per seed.
//
// A scenario is a *pure function of the run context*: `run()` builds its
// own Simulator, SimNetwork, Rng and protocol objects from `ctx.seed`,
// executes, and returns metrics. Nothing is shared between runs, which is
// what lets SweepRunner execute seeds on a thread pool while keeping each
// run bit-identical to its serial execution (the seed-determinism
// contract, documented in DESIGN.md).
#pragma once

#include <cstdint>
#include <string>

#include "runtime/metrics.h"

namespace findep::runtime {

/// Everything a run may depend on.
struct RunContext {
  /// Per-run seed (already derived from the sweep's base seed).
  std::uint64_t seed = 1;
  /// Position of this run in its sweep, 0-based.
  std::size_t run_index = 0;
};

class Scenario {
 public:
  virtual ~Scenario() = default;

  /// Unique name; by convention "<family>/<params>" (e.g.
  /// "bft_scaling/n=7").
  [[nodiscard]] virtual std::string name() const = 0;

  /// Table-grouping key. Scenarios of one family must emit the same
  /// metric names. Defaults to the name() prefix before the first '/'.
  [[nodiscard]] virtual std::string family() const;

  /// Executes one seed. Must be thread-safe and deterministic: a pure
  /// function of `ctx`, owning all mutable state it touches.
  [[nodiscard]] virtual MetricRecord run(const RunContext& ctx) const = 0;
};

}  // namespace findep::runtime
