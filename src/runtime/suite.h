// ScenarioSuite: the shared driver main for benches and examples.
//
// A driver registers its scenarios and delegates to run_main(), which
// parses the uniform experiment flags, sweeps every scenario across the
// requested seeds on a worker pool, and renders results through the
// MetricsSink. This replaces the per-binary setup/run/aggregate loops the
// old bench drivers each hand-rolled.
//
//   --seed S      master seed (default 1); every per-run seed derives
//                 from it, so one flag reproduces an entire sweep
//   --seeds K     seeds per scenario (default 3)
//   --threads T   worker threads (default: hardware concurrency)
//   --only SUB    run only scenarios whose name contains SUB
//   --exclude SUB skip scenarios whose name contains SUB (applied after
//                 --only; what CI uses to carve protocol-comparison
//                 cells out of byte-identity cmp's)
//   --family F    run only the named families (repeatable / comma list;
//                 interpreted by the registry driver, run_families_main)
//   --set A=V,V   override grid axis A with the listed values (registry
//                 driver only)
//   --list        print scenario families / names and exit
//   --csv / --json  machine-readable output instead of tables
//   --out FILE    write the rendered results to FILE instead of stdout
//                 (stdout keeps a one-line confirmation, so scripted
//                 sweeps can pipe freely)
//
// Distributed-sweep modes (registry driver only; mutually exclusive —
// see runtime/task.h for the wire protocol):
//   --emit-tasks  print the selected catalog as task JSONL and exit
//   --worker      execute task JSONL from stdin, stream result JSONL
//   --merge F...  gather result shards ("-" = stdin) into the standard
//                 table/CSV/JSON rendering
//
// All scenarios of a suite are swept through ONE global (scenario, seed)
// work queue, so a multi-scenario suite fills every worker even at
// --seeds 1; per-run results are still bit-identical to --threads 1.
#pragma once

#include <iosfwd>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "runtime/metrics.h"
#include "runtime/scenario.h"
#include "runtime/sweep.h"

namespace findep::runtime {

/// One `--set axis=v1,v2` occurrence; values stay raw strings until they
/// are parsed against the typed axis they override.
struct AxisOverride {
  std::string axis;
  std::vector<std::string> values;
};

struct SuiteOptions {
  SweepOptions sweep{.base_seed = 1, .num_seeds = 3, .threads = 0};
  std::string only;                    // substring filter; empty = all
  std::string exclude;                 // drop names containing this
  std::vector<std::string> families;   // --family; empty = all
  std::vector<AxisOverride> sets;      // --set axis=v1,v2
  bool list = false;
  bool csv = false;
  bool json = false;
  std::string out_file;                // --out; empty = stdout
  bool emit_tasks = false;             // --emit-tasks
  bool worker = false;                 // --worker
  std::vector<std::string> merge;      // --merge shard paths ("-" = stdin)
  bool merge_mode = false;
};

/// Parses the uniform flags; returns false (after printing a specific
/// "error: ..." line plus usage to `err`) on a malformed command line —
/// including non-numeric, negative, or zero values where a positive
/// count is required.
[[nodiscard]] bool parse_suite_options(int argc, const char* const* argv,
                                       SuiteOptions& options,
                                       std::ostream& err);

/// Routes driver output for `--out`: leaves `dest` untouched when `path`
/// is empty, otherwise opens `file` at `path` and points `dest` at it.
/// Returns false when the file cannot be opened. Open the output BEFORE
/// doing any work, so a bad path cannot discard a finished sweep.
[[nodiscard]] bool open_output(const std::string& path, std::ofstream& file,
                               std::ostream*& dest);

/// Flushes a file previously routed by open_output and reports write
/// failures: returns false (after an "error: ..." line on `err`) when
/// any write to `file` failed — a truncated results file must not exit
/// 0. No-op returning true when `dest` was never redirected.
[[nodiscard]] bool close_output(const std::string& path, std::ofstream& file,
                                const std::ostream* dest, std::ostream& err);

class ScenarioSuite {
 public:
  /// `intro` is printed (as a banner) before the results.
  explicit ScenarioSuite(std::string intro) : intro_(std::move(intro)) {}

  void add(std::unique_ptr<Scenario> scenario);

  template <typename S, typename... Args>
  void emplace(Args&&... args) {
    add(std::make_unique<S>(std::forward<Args>(args)...));
  }

  [[nodiscard]] std::size_t size() const noexcept {
    return scenarios_.size();
  }

  /// Sweeps every (matching) scenario and renders results to `out`.
  /// Returns a process exit code (non-zero when any run failed).
  int run(const SuiteOptions& options, std::ostream& out,
          std::ostream& err) const;

  /// Convenience for driver main(): parse flags, run, return exit code.
  int run_main(int argc, const char* const* argv) const;

 private:
  std::string intro_;
  std::vector<std::unique_ptr<Scenario>> scenarios_;
};

}  // namespace findep::runtime
