#include "scenarios/bft_churn.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "bft/cluster.h"
#include "runtime/registry.h"
#include "support/assert.h"

namespace findep::scenarios {

BftChurnScenario::BftChurnScenario(Params params)
    : params_(std::move(params)) {
  FINDEP_REQUIRE(params_.n >= 4);
  FINDEP_REQUIRE(params_.crash_fraction >= 0.0 &&
                 params_.crash_fraction < 1.0 / 3.0 + 1e-9);
  FINDEP_REQUIRE(params_.outage_s > 0.0);
  FINDEP_REQUIRE(params_.batch_size >= 1);
  FINDEP_REQUIRE(params_.checkpoint_interval >= 1);
  FINDEP_REQUIRE(params_.offered_load > 0.0);
  if (params_.label.empty()) params_.label = grid_label(params_);
}

std::string BftChurnScenario::grid_label(const Params& p) {
  std::string label = "n=" + std::to_string(p.n);
  label += " c=" + runtime::ParamValue(p.crash_fraction).to_string();
  label += " o=" + runtime::ParamValue(p.outage_s).to_string();
  label += " b=" + std::to_string(p.batch_size);
  if (!p.state_transfer) label += " nost";
  if (p.protocol_axis) {
    label += std::string(" proto=") + replication::protocol_name(p.protocol);
  }
  return label;
}

std::string BftChurnScenario::name() const {
  return "bft_churn/" + params_.label;
}

runtime::MetricRecord BftChurnScenario::run(
    const runtime::RunContext& ctx) const {
  bft::ClusterOptions options;
  options.seed = ctx.seed;
  // Fast-LAN profile (the same one the BFT test suite uses): the subject
  // here is churn recovery, not overload — the sustained offered load
  // must commit comfortably inside request_timeout, or spurious view
  // changes (a known fragility under backlog) drown the signal.
  options.network.min_latency = 0.005;
  options.network.mean_extra_latency = 0.01;
  options.replica.batch_size = params_.batch_size;
  options.replica.checkpoint_interval = params_.checkpoint_interval;
  options.replica.enable_state_transfer = params_.state_transfer;
  options.protocol = params_.protocol;
  bft::BftCluster cluster(params_.n, options);

  // Open-loop load sustained from t = 0 until tail_s past the heal, so
  // the live quorum advances checkpoints *during* the outage (that is
  // what strands the crashed slice) and keeps advancing them after it
  // (that is what lets the laggards detect and fetch the missing state).
  const double heal_at = params_.outage_start + params_.outage_s;
  const double submit_until = heal_at + params_.tail_s;
  const auto requests = static_cast<std::size_t>(
      std::floor(submit_until * params_.offered_load)) + 1;
  for (std::size_t i = 0; i < requests; ++i) {
    cluster.simulator().schedule_at(
        static_cast<double>(i) / params_.offered_load,
        [&cluster] { (void)cluster.submit(); });
  }

  // The outage: the highest-id floor(n * crash_fraction) replicas drop
  // off the network entirely (each in its own partition group — a crash,
  // not a netsplit among survivors), then everyone heals at once.
  const auto crashed = static_cast<std::size_t>(
      static_cast<double>(params_.n) * params_.crash_fraction);
  cluster.simulator().schedule_at(params_.outage_start, [&cluster, this,
                                                         crashed] {
    for (std::size_t k = 0; k < crashed; ++k) {
      const auto node = static_cast<net::NodeId>(params_.n - 1 - k);
      cluster.network().set_partition_group(node,
                                            static_cast<std::uint32_t>(1 + k));
    }
  });
  cluster.simulator().schedule_at(heal_at,
                                  [&cluster] { cluster.network().heal_partitions(); });

  // Drive in slices, watching for full convergence: every request
  // executed and every replica at the same execution horizon. The slice
  // width quantizes recovery_time_s but keeps it deterministic.
  constexpr double kSlice = 0.25;
  double recovered_at = -1.0;
  while (cluster.simulator().now() < params_.deadline) {
    cluster.run_for(kSlice);
    if (cluster.simulator().now() > heal_at &&
        cluster.completed_requests() == requests &&
        cluster.stranded_replicas() == 0) {
      recovered_at = cluster.simulator().now();
      break;
    }
    if (!cluster.simulator().has_pending()) break;
  }

  // PBFT view changes / HotStuff pacemaker timeouts — identical values
  // to the historical expression on the PBFT lane.
  std::uint64_t view_changes = 0;
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    view_changes = std::max(view_changes,
                            cluster.node(i).progress_disruptions());
  }

  runtime::MetricRecord metrics;
  metrics.set("committed_requests",
              static_cast<double>(cluster.completed_requests()));
  metrics.set("stranded_replicas",
              static_cast<double>(cluster.stranded_replicas()));
  metrics.set("recovery_time_s",
              recovered_at < 0.0 ? -1.0 : recovered_at - heal_at);
  metrics.set("state_transfers",
              static_cast<double>(cluster.state_transfers_completed()));
  metrics.set("state_transfer_bytes",
              static_cast<double>(cluster.state_transfer_bytes()));
  metrics.set("max_view_changes", static_cast<double>(view_changes));
  return metrics;
}

namespace {

const runtime::ScenarioRegistration kBftChurn{{
    .name = "bft_churn",
    .description = "PBFT churn: crash just-under-1/3 through a multi-"
                   "checkpoint outage, heal, measure state-transfer "
                   "recovery (stranded_replicas must be 0)",
    .grids =
        {
            runtime::ParamGrid{{"n", {4, 10}},
                               {"crash", {0.3}},
                               {"outage", {6.0}},
                               {"batch_size", {1, 4}},
                               {"state_transfer", {1, 0}}},
            // The HotStuff lane reuses the shared durability layer
            // (CheckpointStore + StateFetchMachine), so the same outage
            // must recover with zero stranded replicas there too.
            runtime::ParamGrid{{"n", {4, 10}},
                               {"crash", {0.3}},
                               {"outage", {6.0}},
                               {"batch_size", {4}},
                               {"state_transfer", {1}},
                               {"protocol", {"hotstuff"}}},
        },
    .factory =
        [](const runtime::ParamSet& p) -> std::unique_ptr<runtime::Scenario> {
      const std::string protocol =
          p.has("protocol") ? p.get_string("protocol") : "";
      return std::make_unique<BftChurnScenario>(BftChurnScenario::Params{
          .n = p.get_size("n"),
          .crash_fraction = p.get_double("crash"),
          .outage_s = p.get_double("outage"),
          .batch_size = p.get_size("batch_size"),
          .state_transfer = p.get_int("state_transfer") != 0,
          .protocol = protocol.empty()
                          ? replication::Protocol::kPbft
                          : replication::parse_protocol(protocol),
          .protocol_axis = !protocol.empty()});
    },
}};

}  // namespace

}  // namespace findep::scenarios
