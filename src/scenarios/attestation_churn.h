// Attestation-churn scenario (§III-B configuration discovery): n replicas
// join a verifier-side registry *over the simulated network* via the
// typed challenge–quote–admit wire protocol, with join times spread over
// a churn window. Meters admission outcomes, traffic and sim-time
// latency, then audits the reconstructed configuration distribution —
// the exact input the diversity core consumes.
#pragma once

#include <string>

#include "runtime/scenario.h"

namespace findep::scenarios {

class AttestationChurnScenario : public runtime::Scenario {
 public:
  struct Params {
    std::size_t replicas = 64;
    /// Joins are spread uniformly over this many simulated seconds.
    double churn_window = 60.0;
    double zipf_exponent = 0.8;
  };

  explicit AttestationChurnScenario(Params params) : params_(params) {}

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] runtime::MetricRecord run(
      const runtime::RunContext& ctx) const override;

 private:
  Params params_;
};

}  // namespace findep::scenarios
