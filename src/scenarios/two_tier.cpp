#include "scenarios/two_tier.h"

#include <memory>
#include <vector>

#include "config/sampler.h"
#include "diversity/analyzer.h"
#include "diversity/manager.h"
#include "diversity/metrics.h"
#include "runtime/registry.h"
#include "support/assert.h"
#include "support/table.h"

namespace findep::scenarios {

namespace {

/// The mixed population is a function of (replicas, attested_fraction,
/// seed) only — all α instances of one fraction share it, which is what
/// makes the analyzer's population memoization (ROADMAP hot path) pay.
std::vector<diversity::ReplicaRecord> mixed_population(
    std::size_t replicas, double attested_fraction, std::uint64_t seed) {
  const config::ComponentCatalog catalog = config::standard_catalog();
  config::SamplerOptions opts;
  opts.zipf_exponent = 0.5;
  opts.attestable_fraction = 1.0;
  config::ConfigurationSampler sampler(catalog, opts);
  support::Rng rng(seed);
  std::vector<diversity::ReplicaRecord> population;
  population.reserve(replicas);
  for (std::size_t i = 0; i < replicas; ++i) {
    diversity::ReplicaRecord rec{sampler.sample(rng), 1.0,
                                 rng.chance(attested_fraction)};
    if (!rec.attested) {
      rec.configuration.clear(config::ComponentKind::kTrustedHardware);
    }
    population.push_back(std::move(rec));
  }
  return population;
}

}  // namespace

TwoTierScenario::TwoTierScenario(Params params) : params_(params) {
  FINDEP_REQUIRE(params_.replicas > 0);
  FINDEP_REQUIRE(params_.attested_fraction >= 0.0 &&
                 params_.attested_fraction <= 1.0);
  FINDEP_REQUIRE(params_.alpha >= 1.0);
}

std::string TwoTierScenario::name() const {
  return "two_tier/attested=" +
         support::Table::format_cell(params_.attested_fraction) +
         " alpha=" + support::Table::format_cell(params_.alpha);
}

runtime::MetricRecord TwoTierScenario::run(
    const runtime::RunContext& ctx) const {
  const auto population =
      mixed_population(params_.replicas, params_.attested_fraction, ctx.seed);

  // Baseline diversity of the raw population (memoized across the α
  // instances sharing this population).
  const diversity::DiversityReport report =
      diversity::DiversityAnalyzer::analyze(population);
  const diversity::TwoTierOutcome out =
      diversity::TwoTierPolicy(params_.alpha).apply(population);

  runtime::MetricRecord metrics;
  metrics.set("unknown_share_pct", out.unknown_share * 100.0);
  metrics.set("h_effective_bits", diversity::shannon_entropy(out.effective));
  metrics.set("h_population_bits", report.entropy_bits);
  metrics.set("faults_over_third",
              static_cast<double>(out.bft.min_faults));
  metrics.set("single_point_of_failure",
              out.bft.single_point_of_failure ? 1.0 : 0.0);
  return metrics;
}

namespace {

const runtime::ScenarioRegistration kTwoTier{{
    .name = "two_tier",
    .description = "attested-weight two-tier voting: α vs resilience of "
                   "the effective distribution (§V)",
    .grids = {runtime::ParamGrid{
        {"attested_fraction", {0.25, 0.5, 0.75}},
        {"alpha", {1.0, 2.0, 4.0, 8.0}},
        {"replicas", {60}},
    }},
    .factory =
        [](const runtime::ParamSet& p) -> std::unique_ptr<runtime::Scenario> {
      return std::make_unique<TwoTierScenario>(TwoTierScenario::Params{
          .attested_fraction = p.get_double("attested_fraction"),
          .alpha = p.get_double("alpha"),
          .replicas = p.get_size("replicas")});
    },
}};

}  // namespace

}  // namespace findep::scenarios
