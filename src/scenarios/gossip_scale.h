// The 10k-node gossip sweep: Nakamoto block propagation at full network
// scale. This is the event-engine's stress shape — thousands of
// far-future mining timers parked beyond the calendar window while dense
// near-term delivery bursts churn through it — promoted to a first-class
// scenario family so CI exercises the engine at the scale the sweeps
// actually run.
#pragma once

#include <cstddef>
#include <string>

#include "runtime/scenario.h"

namespace findep::scenarios {

/// One honest mining race at `nodes` miners over a degree-`degree`
/// gossip overlay, run for `horizon_blocks` expected block intervals.
/// Every metric is seed-derived (block and message counts), never
/// wall-clock, so the family is deterministic and CI-comparable.
class GossipScaleScenario : public runtime::Scenario {
 public:
  struct Params {
    std::size_t nodes = 10000;
    std::size_t degree = 4;
    double mean_block_interval = 600.0;
    double horizon_blocks = 12.0;
  };

  explicit GossipScaleScenario(Params params) : params_(params) {}

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] runtime::MetricRecord run(
      const runtime::RunContext& ctx) const override;

 private:
  Params params_;
};

}  // namespace findep::scenarios
