#include "scenarios/attestation_churn.h"

#include <memory>
#include <unordered_map>
#include <vector>

#include "runtime/registry.h"

#include "attest/authority.h"
#include "attest/registry.h"
#include "attest/service.h"
#include "config/sampler.h"
#include "diversity/metrics.h"
#include "net/network.h"
#include "sim/simulator.h"
#include "support/rng.h"

namespace findep::scenarios {

std::string AttestationChurnScenario::name() const {
  return "attestation_churn/n=" + std::to_string(params_.replicas);
}

runtime::MetricRecord AttestationChurnScenario::run(
    const runtime::RunContext& ctx) const {
  support::Rng rng(ctx.seed);
  crypto::KeyRegistry keys;
  attest::AttestationAuthority authority(keys, rng);
  attest::AttestationRegistry registry(keys, authority.root_key(),
                                       support::mix64(ctx.seed ^ 0x5eed));

  const config::ComponentCatalog catalog = config::standard_catalog();
  config::ConfigurationSampler sampler(
      catalog, config::SamplerOptions{
                   .zipf_exponent = params_.zipf_exponent,
                   .attestable_fraction = 1.0});

  std::vector<attest::PlatformModule> platforms;
  platforms.reserve(params_.replicas);
  for (std::size_t i = 0; i < params_.replicas; ++i) {
    const auto cfg = sampler.sample(rng);
    const auto hw = cfg.component(config::ComponentKind::kTrustedHardware);
    platforms.emplace_back(keys, rng, authority, *hw, cfg);
  }

  sim::Simulator sim;
  net::NetworkOptions net_options;
  net_options.seed = support::mix64(ctx.seed ^ 0x6e6574);
  net::SimNetwork network(sim, net_options);

  const auto service_node = static_cast<net::NodeId>(params_.replicas);
  attest::RegistryService service(network, service_node, registry);

  std::vector<std::unique_ptr<attest::EnrollmentClient>> clients;
  clients.reserve(params_.replicas);
  for (std::size_t i = 0; i < params_.replicas; ++i) {
    clients.push_back(std::make_unique<attest::EnrollmentClient>(
        network, static_cast<net::NodeId>(i), service_node, platforms[i],
        1.0));
    // Churn: replica i joins at a random point of the window.
    const double join_at = rng.uniform(0.0, params_.churn_window);
    sim.schedule_at(join_at, [client = clients.back().get()] {
      client->enroll();
    });
  }
  sim.run();

  double latency_sum = 0.0;
  std::size_t decided = 0;
  for (const auto& client : clients) {
    if (client->decided()) {
      latency_sum += client->enrollment_latency();
      ++decided;
    }
  }

  // Auditor path: reconstruct the configuration distribution from the
  // openings and measure its entropy.
  std::unordered_map<crypto::PublicKey, attest::CommitmentOpening> openings;
  for (const auto& platform : platforms) {
    openings[platform.vote_key()] = platform.open_commitment();
  }
  const double entropy = diversity::shannon_entropy(
      registry.reconstruct_distribution(openings));

  const net::TrafficStats& traffic = network.stats();
  runtime::MetricRecord metrics;
  metrics.set("admitted", static_cast<double>(service.admitted()));
  metrics.set("rejected", static_cast<double>(service.rejected()));
  metrics.set("undecided",
              static_cast<double>(params_.replicas - decided));
  metrics.set("mean_admission_latency_s",
              decided == 0 ? -1.0
                           : latency_sum / static_cast<double>(decided));
  metrics.set("msgs_per_join",
              static_cast<double>(traffic.messages_sent) /
                  static_cast<double>(params_.replicas));
  metrics.set("entropy_bits", entropy);
  return metrics;
}

namespace {

const runtime::ScenarioRegistration kAttestationChurn{{
    .name = "attestation_churn",
    .description = "§III-B configuration discovery: challenge–quote–admit "
                   "over the simulated network vs registry size",
    .grids = {runtime::ParamGrid{
        {"replicas", {16, 64, 256, 1024}},
        {"churn_window", {60.0}},
        {"zipf", {0.8}},
    }},
    .factory =
        [](const runtime::ParamSet& p) -> std::unique_ptr<runtime::Scenario> {
      return std::make_unique<AttestationChurnScenario>(
          AttestationChurnScenario::Params{
              .replicas = p.get_size("replicas"),
              .churn_window = p.get_double("churn_window"),
              .zipf_exponent = p.get_double("zipf")});
    },
}};

}  // namespace

}  // namespace findep::scenarios
