// Component-aware committee caps (the enforcement answer to the paper's
// Challenge 2 residual): sweep the per-component cap over a zipf-skewed
// candidate pool and report the exposure actually achieved and the honest
// power the cap discounts. Replaces the hand-rolled cap loop of the old
// component_cap_committee bench; the candidate pool derives from the run
// seed.
#pragma once

#include <cstddef>
#include <string>

#include "runtime/scenario.h"

namespace findep::scenarios {

class ComponentCapScenario : public runtime::Scenario {
 public:
  struct Params {
    /// Max fraction of committee power exposed to one component.
    double component_cap = 1.0;
    /// Max fraction of committee power held by one configuration.
    double config_cap = 0.25;
    std::size_t candidates = 40;
    double zipf_exponent = 1.0;
  };

  explicit ComponentCapScenario(Params params);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] runtime::MetricRecord run(
      const runtime::RunContext& ctx) const override;

 private:
  Params params_;
};

}  // namespace findep::scenarios
