// The bft_churn family: long-horizon replica churn against the PBFT
// core's checkpoint-anchored state transfer.
//
// Each instance crashes (partitions away) a just-under-1/3 slice of the
// committee for an outage spanning multiple checkpoint intervals while
// client load keeps flowing, heals the partition, and measures how the
// laggards rejoin: recovery time, state-transfer traffic, and — the
// invariant the tentpole exists for — zero stranded replicas. The same
// instance with `state_transfer = 0` regression-pins the historical
// stranding, so the sweep proves the fix in both directions.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "replication/options.h"
#include "runtime/param.h"
#include "runtime/scenario.h"

namespace findep::scenarios {

class BftChurnScenario : public runtime::Scenario {
 public:
  struct Params {
    std::size_t n = 4;
    /// Fraction of the committee crashed through the outage; the crashed
    /// count is floor(n * crash_fraction) (highest ids, so the view-0
    /// primary stays up and view changes measure churn, not leader loss).
    double crash_fraction = 0.3;
    /// Outage length in simulated seconds. With the default load and
    /// checkpoint interval this spans many checkpoint intervals.
    double outage_s = 6.0;
    std::size_t batch_size = 1;
    /// 0 disables state transfer (regression mode: laggards strand).
    bool state_transfer = true;
    /// Execute-to-checkpoint distance (small, so an outage covers many
    /// intervals cheaply).
    std::uint64_t checkpoint_interval = 4;
    /// Open-loop client arrival rate (requests/second), sustained from
    /// t = 0 until past the heal so laggards have live traffic and fresh
    /// checkpoints to catch up against.
    double offered_load = 12.0;
    /// Outage start / post-heal traffic tail (seconds).
    double outage_start = 1.0;
    double tail_s = 2.0;
    double deadline = 60.0;
    /// Ordering protocol (the optional `protocol` axis); when it came
    /// from a grid that spells it out, the label ends in " proto=<name>"
    /// (legacy protocol-less cells keep their historical labels).
    replication::Protocol protocol = replication::Protocol::kPbft;
    bool protocol_axis = false;
    std::string label;
  };

  [[nodiscard]] static std::string grid_label(const Params& p);

  explicit BftChurnScenario(Params params);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] runtime::MetricRecord run(
      const runtime::RunContext& ctx) const override;

 private:
  Params params_;
};

}  // namespace findep::scenarios
