// Bitcoin-snapshot scenarios (Example 1 / Figure 1 of the paper), built
// on the 2023-02-02 mining-pool distribution:
//  - example1_entropy: the snapshot vs uniform BFT systems of growing
//    size (Example 1's table).
//  - fig1_entropy: best-case entropy as the residual hashrate spreads
//    over x extra miners (Figure 1's curve).
//  - bitcoin_audit: the end-to-end audit — entropy, worst shared
//    component under realistic software monoculture, the double-spend
//    success that hashrate buys, and what a weight cap would recover.
#pragma once

#include <cstddef>
#include <string>

#include "runtime/scenario.h"

namespace findep::scenarios {

/// One row of Example 1's comparison table: either the Bitcoin snapshot
/// (`uniform = false`, n = residual miners) or a uniform BFT system of n
/// configurations.
class Example1Scenario : public runtime::Scenario {
 public:
  struct Params {
    bool uniform = false;
    /// Uniform system size, or the residual-miner count x for Bitcoin.
    std::size_t n = 101;
  };

  explicit Example1Scenario(Params params) : params_(params) {}

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] runtime::MetricRecord run(
      const runtime::RunContext& ctx) const override;

 private:
  Params params_;
};

/// One x-point of Figure 1: best-case entropy with the residual 0.87%
/// hashrate spread over x additional unique miners.
class Fig1Scenario : public runtime::Scenario {
 public:
  struct Params {
    std::size_t x = 101;
  };

  explicit Fig1Scenario(Params params);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] runtime::MetricRecord run(
      const runtime::RunContext& ctx) const override;

 private:
  Params params_;
};

/// The Example-1 audit end to end, including the attack the numbers
/// predict and the recovery a weight cap buys. The realistic (monocultural)
/// software assignment derives from the run seed.
class BitcoinAuditScenario : public runtime::Scenario {
 public:
  struct Params {
    std::size_t residual_miners = 101;
    /// Per-configuration voting cap evaluated in the final step.
    double cap = 0.10;
  };

  explicit BitcoinAuditScenario(Params params);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] runtime::MetricRecord run(
      const runtime::RunContext& ctx) const override;

 private:
  Params params_;
};

}  // namespace findep::scenarios
