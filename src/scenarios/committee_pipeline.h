// The full §V pipeline as one scenario: permissionless participants
// attest their configurations, a diversity-aware committee forms from
// sortition winners under a per-configuration cap, the committee runs
// weighted PBFT, and the worst single configuration fault is injected to
// show the margin held. Replaces the diversity_aware_committee example's
// hand-rolled main; population, keys and sortition all derive from the
// run seed.
#pragma once

#include <cstddef>
#include <string>

#include "runtime/scenario.h"

namespace findep::scenarios {

class CommitteePipelineScenario : public runtime::Scenario {
 public:
  struct Params {
    std::size_t participants = 40;
    double expected_committee = 20.0;
    double per_config_cap = 0.25;
    double zipf_exponent = 1.0;
    int requests = 5;
  };

  explicit CommitteePipelineScenario(Params params);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] runtime::MetricRecord run(
      const runtime::RunContext& ctx) const override;

 private:
  Params params_;
};

}  // namespace findep::scenarios
