// The quickstart scenario: sample a replica population with
// market-share-like popularity skew and report the paper's headline
// diversity quantities (§IV-A). Doubles as the smallest example of
// writing a scenario family — see examples/quickstart.cpp for the tour.
#pragma once

#include <cstddef>
#include <string>

#include "runtime/scenario.h"

namespace findep::scenarios {

class DiversityAuditScenario : public runtime::Scenario {
 public:
  struct Params {
    std::size_t replicas = 32;
    double zipf_exponent = 1.0;        // market-share-like skew
    double attestable_fraction = 0.5;  // half the replicas have a TEE
  };

  explicit DiversityAuditScenario(Params params);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] runtime::MetricRecord run(
      const runtime::RunContext& ctx) const override;

 private:
  Params params_;
};

}  // namespace findep::scenarios
