#include "scenarios/selfish_mining.h"

#include <memory>

#include "nakamoto/selfish.h"
#include "runtime/registry.h"
#include "support/rng.h"
#include "support/table.h"

namespace findep::scenarios {

std::string SelfishMiningScenario::name() const {
  return "selfish_mining/alpha=" +
         support::Table::format_cell(params_.alpha);
}

runtime::MetricRecord SelfishMiningScenario::run(
    const runtime::RunContext& ctx) const {
  support::Rng rng(ctx.seed);
  // Independent substreams so the three γ simulations never share draws.
  support::Rng rng_g0 = rng.fork(0);
  support::Rng rng_g5 = rng.fork(1);
  support::Rng rng_g1 = rng.fork(2);
  const auto g0 = nakamoto::simulate_selfish_mining(params_.alpha, 0.0,
                                                    params_.rounds, rng_g0);
  const auto g5 = nakamoto::simulate_selfish_mining(params_.alpha, 0.5,
                                                    params_.rounds, rng_g5);
  const auto g1 = nakamoto::simulate_selfish_mining(params_.alpha, 1.0,
                                                    params_.rounds, rng_g1);

  runtime::MetricRecord metrics;
  metrics.set("revenue_g0", g0.revenue_share());
  metrics.set("revenue_g05", g5.revenue_share());
  metrics.set("revenue_g1", g1.revenue_share());
  metrics.set("advantage_g05", g5.advantage());
  return metrics;
}

namespace {

const runtime::ScenarioRegistration kSelfishMining{{
    .name = "selfish_mining",
    .description = "Eyal–Sirer selfish mining: relative revenue vs "
                   "hashrate α at γ ∈ {0, 0.5, 1}",
    .grids = {runtime::ParamGrid{
        {"alpha", {0.10, 0.20, 0.25, 0.30, 1.0 / 3.0, 0.40, 0.45}},
        {"rounds", {1'000'000}},
    }},
    .factory =
        [](const runtime::ParamSet& p) -> std::unique_ptr<runtime::Scenario> {
      return std::make_unique<SelfishMiningScenario>(
          SelfishMiningScenario::Params{.alpha = p.get_double("alpha"),
                                        .rounds = p.get_size("rounds")});
    },
}};

}  // namespace

}  // namespace findep::scenarios
