#include "scenarios/selfish_mining.h"

#include "nakamoto/selfish.h"
#include "support/rng.h"
#include "support/table.h"

namespace findep::scenarios {

std::string SelfishMiningScenario::name() const {
  return "selfish_mining/alpha=" +
         support::Table::format_cell(params_.alpha);
}

runtime::MetricRecord SelfishMiningScenario::run(
    const runtime::RunContext& ctx) const {
  support::Rng rng(ctx.seed);
  // Independent substreams so the three γ simulations never share draws.
  support::Rng rng_g0 = rng.fork(0);
  support::Rng rng_g5 = rng.fork(1);
  support::Rng rng_g1 = rng.fork(2);
  const auto g0 = nakamoto::simulate_selfish_mining(params_.alpha, 0.0,
                                                    params_.rounds, rng_g0);
  const auto g5 = nakamoto::simulate_selfish_mining(params_.alpha, 0.5,
                                                    params_.rounds, rng_g5);
  const auto g1 = nakamoto::simulate_selfish_mining(params_.alpha, 1.0,
                                                    params_.rounds, rng_g1);

  runtime::MetricRecord metrics;
  metrics.set("revenue_g0", g0.revenue_share());
  metrics.set("revenue_g05", g5.revenue_share());
  metrics.set("revenue_g1", g1.revenue_share());
  metrics.set("advantage_g05", g5.advantage());
  return metrics;
}

}  // namespace findep::scenarios
