#include "scenarios/bitcoin.h"

#include <cmath>
#include <memory>

#include "config/catalog.h"
#include "diversity/datasets.h"
#include "diversity/manager.h"
#include "diversity/metrics.h"
#include "diversity/optimality.h"
#include "diversity/resilience.h"
#include "faults/injector.h"
#include "nakamoto/attack.h"
#include "nakamoto/pools.h"
#include "runtime/registry.h"
#include "support/assert.h"
#include "support/table.h"

namespace findep::scenarios {

// --- example1_entropy ------------------------------------------------------

std::string Example1Scenario::name() const {
  return params_.uniform
             ? "example1_entropy/uniform n=" + std::to_string(params_.n)
             : "example1_entropy/bitcoin x=" + std::to_string(params_.n);
}

runtime::MetricRecord Example1Scenario::run(
    const runtime::RunContext&) const {
  const diversity::ConfigDistribution dist =
      params_.uniform
          ? diversity::ConfigDistribution::uniform(params_.n)
          : diversity::datasets::bitcoin_best_case_distribution(params_.n);

  runtime::MetricRecord metrics;
  metrics.set("configs", static_cast<double>(dist.support_size()));
  metrics.set("entropy_bits", diversity::shannon_entropy(dist));
  metrics.set("faults_over_third",
              static_cast<double>(diversity::min_faults_to_exceed(
                  dist, diversity::kBftThreshold)));
  metrics.set("faults_over_half",
              static_cast<double>(diversity::min_faults_to_exceed(
                  dist, diversity::kNakamotoThreshold)));
  return metrics;
}

// --- fig1_entropy ----------------------------------------------------------

Fig1Scenario::Fig1Scenario(Params params) : params_(params) {
  FINDEP_REQUIRE(params_.x >= 1);
}

std::string Fig1Scenario::name() const {
  return "fig1_entropy/x=" + std::to_string(params_.x);
}

runtime::MetricRecord Fig1Scenario::run(const runtime::RunContext&) const {
  const diversity::ConfigDistribution dist =
      diversity::datasets::bitcoin_best_case_distribution(params_.x);
  const double h = diversity::shannon_entropy(dist);

  runtime::MetricRecord metrics;
  metrics.set("miners_total",
              static_cast<double>(params_.x +
                                  diversity::datasets::kBitcoinPoolCount));
  metrics.set("entropy_bits", h);
  metrics.set("effective_configs", std::exp2(h));
  metrics.set("gap_to_bft8_bits", 3.0 - h);
  return metrics;
}

// --- bitcoin_audit ---------------------------------------------------------

BitcoinAuditScenario::BitcoinAuditScenario(Params params) : params_(params) {
  FINDEP_REQUIRE(params_.residual_miners >= 1);
  FINDEP_REQUIRE(params_.cap > 0.0 && params_.cap <= 1.0);
}

std::string BitcoinAuditScenario::name() const {
  return "bitcoin_audit/cap=" + support::Table::format_cell(params_.cap);
}

runtime::MetricRecord BitcoinAuditScenario::run(
    const runtime::RunContext& ctx) const {
  // Step 1: the best-case distribution (every pool a unique config).
  const diversity::ConfigDistribution bitcoin =
      diversity::datasets::bitcoin_best_case_distribution(
          params_.residual_miners);
  const double h = diversity::shannon_entropy(bitcoin);
  const std::size_t faults_third =
      diversity::min_faults_to_exceed(bitcoin, diversity::kBftThreshold);

  // Step 2: drop the best case — realistic Zipf-skewed software stacks
  // (seeded per run), worst shared component.
  const config::ComponentCatalog catalog = config::standard_catalog();
  const nakamoto::PoolSet pools = nakamoto::PoolSet::example1(
      catalog, /*distinct_configs=*/false, ctx.seed);
  faults::FaultInjector injector(pools.as_population());
  const faults::CompromiseResult worst = injector.worst_case_components(1);
  const double q = worst.compromised_fraction;

  // Step 4: the recovery a per-configuration weight cap buys.
  const diversity::CappedDistribution capped =
      diversity::WeightCapPolicy(params_.cap).apply(bitcoin);

  runtime::MetricRecord metrics;
  metrics.set("entropy_bits", h);
  metrics.set("effective_configs", std::exp2(h));
  metrics.set("faults_over_third", static_cast<double>(faults_third));
  metrics.set("faults_over_half",
              static_cast<double>(diversity::min_faults_to_exceed(
                  bitcoin, diversity::kNakamotoThreshold)));
  metrics.set("worst_1fault_share", q);
  // Step 3: what that hashrate buys the attacker.
  metrics.set("attack_z6", nakamoto::attack_success_closed_form(q, 6));
  metrics.set("attack_z24", nakamoto::attack_success_closed_form(q, 24));
  metrics.set("capped_entropy_bits",
              diversity::shannon_entropy(capped.distribution));
  metrics.set("capped_retained_pct", capped.retained_fraction * 100.0);
  metrics.set("capped_faults_over_third",
              static_cast<double>(diversity::min_faults_to_exceed(
                  capped.distribution, diversity::kBftThreshold)));
  return metrics;
}

// --- registrations ---------------------------------------------------------

namespace {

const runtime::ScenarioRegistration kExample1{{
    .name = "example1_entropy",
    .description = "Example 1: the 2023-02-02 Bitcoin snapshot vs uniform "
                   "BFT systems of growing size",
    .grids =
        {
            runtime::ParamGrid{{"uniform", {false}}, {"n", {101}}},
            runtime::ParamGrid{{"uniform", {true}},
                               {"n", {4, 8, 16, 32, 64, 128}}},
        },
    .factory =
        [](const runtime::ParamSet& p) -> std::unique_ptr<runtime::Scenario> {
      return std::make_unique<Example1Scenario>(Example1Scenario::Params{
          .uniform = p.get_bool("uniform"), .n = p.get_size("n")});
    },
}};

const runtime::ScenarioRegistration kFig1{{
    .name = "fig1_entropy",
    .description = "Figure 1: best-case Bitcoin entropy vs residual-miner "
                   "count x (saturates below BFT-8's 3 bits)",
    .grids = {runtime::ParamGrid{
        {"x", {1, 2, 5, 10, 20, 50, 101, 200, 300, 400, 500, 600, 700, 800,
               900, 1000}},
    }},
    .factory =
        [](const runtime::ParamSet& p) -> std::unique_ptr<runtime::Scenario> {
      return std::make_unique<Fig1Scenario>(
          Fig1Scenario::Params{.x = p.get_size("x")});
    },
}};

const runtime::ScenarioRegistration kBitcoinAudit{{
    .name = "bitcoin_audit",
    .description = "Example 1 end to end: audit, worst shared component, "
                   "double-spend odds, weight-cap recovery",
    .grids = {runtime::ParamGrid{
        {"cap", {0.10}},
        {"residual_miners", {101}},
    }},
    .factory =
        [](const runtime::ParamSet& p) -> std::unique_ptr<runtime::Scenario> {
      return std::make_unique<BitcoinAuditScenario>(
          BitcoinAuditScenario::Params{
              .residual_miners = p.get_size("residual_miners"),
              .cap = p.get_double("cap")});
    },
}};

}  // namespace

}  // namespace findep::scenarios
