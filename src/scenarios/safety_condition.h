// Safety-condition Monte-Carlo scenario (§II-C, f ≥ Σ f_t^i): for one
// population skew, the probability that k random component faults push
// compromised voting power past the BFT third / honest majority. The
// population *and* the fault draws derive from the run seed, so a sweep
// measures the spread over independent populations — which the old bench
// driver (one hardcoded population per cell) could not.
#pragma once

#include <string>

#include "runtime/scenario.h"

namespace findep::scenarios {

class SafetyConditionScenario : public runtime::Scenario {
 public:
  struct Params {
    double zipf_exponent = 1.0;
    std::size_t replicas = 100;
    std::size_t trials = 2000;
  };

  explicit SafetyConditionScenario(Params params) : params_(params) {}

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] runtime::MetricRecord run(
      const runtime::RunContext& ctx) const override;

 private:
  Params params_;
};

}  // namespace findep::scenarios
