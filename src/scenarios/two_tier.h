// Two-tier voting scenario (§V): mix attested and non-attested replicas,
// weight attested replicas by α, and measure the resilience of the
// effective voting-power distribution. Replaces the fraction × α loops of
// the old two_tier_resilience bench; the population now derives from the
// run seed, so a sweep shows the population-to-population spread the
// single hardcoded draw hid.
#pragma once

#include <cstddef>
#include <string>

#include "runtime/scenario.h"

namespace findep::scenarios {

class TwoTierScenario : public runtime::Scenario {
 public:
  struct Params {
    double attested_fraction = 0.5;
    double alpha = 2.0;  // attested weight multiplier
    std::size_t replicas = 60;
  };

  explicit TwoTierScenario(Params params);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] runtime::MetricRecord run(
      const runtime::RunContext& ctx) const override;

 private:
  Params params_;
};

}  // namespace findep::scenarios
