// Nakamoto-substrate scenarios: fork rate vs propagation delay, the
// double-spend race (closed form cross-validated by a seeded Monte-Carlo),
// and the pool-software compromise pipeline (one component fault → the
// combined hashrate of every pool sharing it → double-spend success).
// Replaces the setup loops of the old nakamoto_attack bench driver.
#pragma once

#include <string>

#include "runtime/scenario.h"

namespace findep::scenarios {

/// Fork/stale rate of an honest mining race at one delay/interval point.
class ForkRateScenario : public runtime::Scenario {
 public:
  struct Params {
    double mean_one_way_delay = 1.0;  // seconds
    double mean_block_interval = 120.0;
    std::size_t miners = 10;
    /// Horizon in units of the block interval.
    double horizon_blocks = 2000.0;
  };

  explicit ForkRateScenario(Params params) : params_(params) {}

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] runtime::MetricRecord run(
      const runtime::RunContext& ctx) const override;

 private:
  Params params_;
};

/// Double-spend success for attacker share q: Nakamoto closed form at
/// z ∈ {1, 2, 6}, Monte-Carlo at z = 6, and confirmations for <0.1% risk.
class DoubleSpendScenario : public runtime::Scenario {
 public:
  struct Params {
    double attacker_share = 0.1;  // q
    std::size_t trials = 40000;
  };

  explicit DoubleSpendScenario(Params params) : params_(params) {}

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] runtime::MetricRecord run(
      const runtime::RunContext& ctx) const override;

 private:
  Params params_;
};

/// Pool-software compromise: one component fault → aggregated hashrate →
/// double-spend success, over the Example-1 pool snapshot. `kind` selects
/// the software-assignment case; the zipf-skewed assignments derive from
/// the run seed.
class PoolCompromiseScenario : public runtime::Scenario {
 public:
  enum class Kind {
    kBestCase,     // every pool a unique configuration (paper's best case)
    kRealistic,    // zipf-skewed assignment from the standard catalog
    kMonoculture,  // zipf-skewed assignment from the monoculture catalog
  };

  struct Params {
    Kind kind = Kind::kRealistic;
  };

  explicit PoolCompromiseScenario(Params params) : params_(params) {}

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] runtime::MetricRecord run(
      const runtime::RunContext& ctx) const override;

 private:
  Params params_;
};

}  // namespace findep::scenarios
