// The bft_batching family: the throughput side of request batching.
//
// It registers a second declarative slice over the *same* scenario class
// as bft_scaling — batch size × committee size at a fixed offered block
// of requests — so its instances are named by protocol configuration
// alone ("bft_scaling/n=10 b=8 r=16"), not by family. That is deliberate:
// a bft_batching instance dialed back to the bft_scaling defaults
// (`--set batch_size=1 --set requests=5`) produces the *identical*
// scenario, which is what lets CI `cmp` the two families' JSON to enforce
// the no-batching-equals-today invariant on every push.
//
// The default grid is disjoint from bft_scaling's (batch_size ≥ 2 here,
// exactly 1 there), so the full catalog never contains duplicate
// instances and distributed-sweep merges stay overlap-free.
#include <memory>

#include "runtime/registry.h"
#include "scenarios/bft_scaling.h"

namespace findep::scenarios {
namespace {

const runtime::ScenarioRegistration kBftBatching{{
    .name = "bft_batching",
    .description = "PBFT request batching: protocol messages per committed "
                   "request and throughput vs batch size x committee size",
    .grids =
        {
            runtime::ParamGrid{{"batch_size", {2, 4, 8, 16}},
                               {"n", {4, 10, 25}},
                               {"requests", {16}},
                               {"offered_load", {0.0}}},
            // Batching under the HotStuff lane: the pipeline amortizes a
            // whole batch behind one proposal per round, so the
            // msgs-per-committed-request curve falls faster in batch
            // size than PBFT's (whose three phases each pay the
            // quadratic fan-out regardless of batch width).
            runtime::ParamGrid{{"batch_size", {2, 8}},
                               {"n", {4, 10, 25}},
                               {"requests", {16}},
                               {"offered_load", {0.0}},
                               {"protocol", {"hotstuff"}}},
        },
    .factory =
        [](const runtime::ParamSet& p) -> std::unique_ptr<runtime::Scenario> {
      return BftScalingScenario::from_params(p, "honest");
    },
}};

}  // namespace
}  // namespace findep::scenarios
