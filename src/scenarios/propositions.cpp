#include "scenarios/propositions.h"

#include <cmath>
#include <memory>
#include <vector>

#include "bft/cluster.h"
#include "config/sampler.h"
#include "diversity/datasets.h"
#include "diversity/metrics.h"
#include "diversity/propositions.h"
#include "diversity/resilience.h"
#include "faults/adversary.h"
#include "runtime/registry.h"
#include "support/assert.h"
#include "support/table.h"

namespace findep::scenarios {

// --- Proposition 1 ---------------------------------------------------------

Prop1Scenario::Prop1Scenario(Params params) : params_(params) {
  FINDEP_REQUIRE(params_.skew >= 1.0);
  FINDEP_REQUIRE(params_.kappa >= 2);
}

std::string Prop1Scenario::name() const {
  return "prop1_entropy/skew=" + support::Table::format_cell(params_.skew);
}

runtime::MetricRecord Prop1Scenario::run(const runtime::RunContext&) const {
  const std::size_t kappa = params_.kappa;
  const diversity::ConfigDistribution base =
      diversity::ConfigDistribution::uniform(kappa);

  // Uniform growth: every configuration ×2.
  const diversity::Prop1Result uniform = diversity::check_proposition1(
      base, std::vector<double>(kappa, 2.0));
  // Skewed growth: configuration i grows by 1 + (skew-1)·i/(κ-1).
  std::vector<double> growth(kappa);
  for (std::size_t i = 0; i < kappa; ++i) {
    growth[i] = 1.0 + (params_.skew - 1.0) * static_cast<double>(i) /
                          static_cast<double>(kappa - 1);
  }
  const diversity::Prop1Result skewed =
      diversity::check_proposition1(base, growth);

  runtime::MetricRecord metrics;
  metrics.set("h_uniform_growth", uniform.entropy_after);
  metrics.set("h_skewed_growth", skewed.entropy_after);
  metrics.set("entropy_lost_bits",
              skewed.entropy_before - skewed.entropy_after);
  metrics.set("prop1_holds", uniform.holds() && skewed.holds() ? 1.0 : 0.0);
  return metrics;
}

// --- Proposition 2 ---------------------------------------------------------

std::string Prop2Scenario::name() const {
  return "prop2_unique/extra=" + std::to_string(params_.extra);
}

runtime::MetricRecord Prop2Scenario::run(const runtime::RunContext&) const {
  const diversity::ConfigDistribution oligopoly =
      diversity::datasets::bitcoin_best_case_distribution(params_.extra);
  const std::size_t k = oligopoly.support_size();
  const diversity::ConfigDistribution uniform =
      diversity::ConfigDistribution::uniform(k);

  runtime::MetricRecord metrics;
  metrics.set("replicas_k", static_cast<double>(k));
  metrics.set("h_oligopoly", diversity::shannon_entropy(oligopoly));
  metrics.set("log2_k_optimum", std::log2(static_cast<double>(k)));
  metrics.set("gap_bits", diversity::kl_from_uniform(oligopoly));
  metrics.set("h_uniform_control", diversity::shannon_entropy(uniform));
  metrics.set("faults_over_third_oligopoly",
              static_cast<double>(diversity::min_faults_to_exceed(
                  oligopoly, diversity::kBftThreshold)));
  metrics.set("faults_over_third_uniform",
              static_cast<double>(diversity::min_faults_to_exceed(
                  uniform, diversity::kBftThreshold)));
  return metrics;
}

// --- Proposition 3, adversary side -----------------------------------------

namespace {

/// Builds a (κ, ω) population: κ distinct configurations, ω independent
/// operators per configuration, one replica each.
faults::OperatedPopulation kappa_omega_population(std::size_t kappa,
                                                  std::size_t omega) {
  const config::ComponentCatalog catalog = config::standard_catalog();
  config::ConfigurationSampler sampler(catalog, config::SamplerOptions{});
  const auto configs = sampler.distinct_configurations(kappa);
  faults::OperatedPopulation pop;
  faults::OperatorId next_operator = 0;
  for (std::size_t c = 0; c < kappa; ++c) {
    for (std::size_t o = 0; o < omega; ++o) {
      pop.replicas.push_back(
          diversity::ReplicaRecord{configs[c], 1.0, true});
      pop.operator_of.push_back(next_operator++);
    }
  }
  return pop;
}

}  // namespace

Prop3Scenario::Prop3Scenario(Params params) : params_(params) {
  FINDEP_REQUIRE(params_.omega >= 1);
  FINDEP_REQUIRE(params_.kappa >= 1);
}

std::string Prop3Scenario::name() const {
  return "prop3_abundance/omega=" + std::to_string(params_.omega);
}

runtime::MetricRecord Prop3Scenario::run(const runtime::RunContext&) const {
  const auto pop = kappa_omega_population(params_.kappa, params_.omega);
  faults::FaultInjector injector(pop.replicas);
  const double op_fraction =
      faults::OperatorAdversary{1}.attack(pop).compromised_fraction;
  const double vuln_fraction =
      injector.worst_case_components(1).compromised_fraction;
  const diversity::Prop3Result analytic =
      diversity::analyze_proposition3(params_.kappa, params_.omega);

  runtime::MetricRecord metrics;
  metrics.set("replicas", static_cast<double>(pop.replicas.size()));
  metrics.set("one_operator_defects", op_fraction);
  metrics.set("one_component_fault", vuln_fraction);
  metrics.set("analytic_operator", analytic.operator_fraction);
  metrics.set("analytic_vulnerability", analytic.vulnerability_fraction);
  return metrics;
}

// --- Proposition 3, cost side ----------------------------------------------

namespace {

std::uint64_t measured_messages(std::size_t n, int requests,
                                std::uint64_t seed) {
  bft::ClusterOptions opt;
  opt.seed = seed;
  bft::BftCluster cluster(n, opt);
  for (int i = 0; i < requests; ++i) cluster.submit();
  cluster.run_until_executed(static_cast<std::size_t>(requests), 120.0);
  return cluster.network().stats().messages_sent /
         static_cast<std::uint64_t>(requests);
}

}  // namespace

Prop3CostScenario::Prop3CostScenario(Params params) : params_(params) {
  FINDEP_REQUIRE(params_.n >= 4);
  FINDEP_REQUIRE(params_.requests > 0);
}

std::string Prop3CostScenario::name() const {
  return "prop3_cost/n=" + std::to_string(params_.n);
}

runtime::MetricRecord Prop3CostScenario::run(
    const runtime::RunContext& ctx) const {
  // Each instance re-measures its own n=4 baseline so ratio_to_n4 is a
  // self-contained per-seed metric; the extra n=4 cluster is a few
  // dozen simulated messages, noise next to the n-sized run.
  const std::uint64_t base = measured_messages(4, params_.requests, ctx.seed);
  const std::uint64_t msgs =
      params_.n == 4 ? base
                     : measured_messages(params_.n, params_.requests,
                                         ctx.seed);
  const double quad = (static_cast<double>(params_.n) / 4.0) *
                      (static_cast<double>(params_.n) / 4.0);

  runtime::MetricRecord metrics;
  metrics.set("msgs_per_request", static_cast<double>(msgs));
  metrics.set("ratio_to_n4",
              static_cast<double>(msgs) / static_cast<double>(base));
  metrics.set("quadratic_reference", quad);
  return metrics;
}

// --- registrations ---------------------------------------------------------

namespace {

const runtime::ScenarioRegistration kProp1{{
    .name = "prop1_entropy",
    .description = "Prop. 1: non-uniform abundance growth strictly loses "
                   "entropy, uniform growth preserves it (κ = 16)",
    .grids = {runtime::ParamGrid{
        {"skew", {1.0, 1.5, 2.0, 3.0, 5.0, 8.0, 16.0, 32.0}},
        {"kappa", {16}},
    }},
    .factory =
        [](const runtime::ParamSet& p) -> std::unique_ptr<runtime::Scenario> {
      return std::make_unique<Prop1Scenario>(Prop1Scenario::Params{
          .skew = p.get_double("skew"), .kappa = p.get_size("kappa")});
    },
}};

const runtime::ScenarioRegistration kProp2{{
    .name = "prop2_unique",
    .description = "Prop. 2: dust-weight unique miners don't buy the "
                   "Bitcoin oligopoly any resilience",
    .grids = {runtime::ParamGrid{
        {"extra", {1, 10, 100, 1000, 10000}},
    }},
    .factory =
        [](const runtime::ParamSet& p) -> std::unique_ptr<runtime::Scenario> {
      return std::make_unique<Prop2Scenario>(
          Prop2Scenario::Params{.extra = p.get_size("extra")});
    },
}};

const runtime::ScenarioRegistration kProp3{{
    .name = "prop3_abundance",
    .description = "Prop. 3: abundance ω dilutes operator power (1/κω) "
                   "but not vulnerability blast radius (1/κ)",
    .grids = {runtime::ParamGrid{
        {"omega", {1, 2, 4, 8, 16}},
        {"kappa", {8}},
    }},
    .factory =
        [](const runtime::ParamSet& p) -> std::unique_ptr<runtime::Scenario> {
      return std::make_unique<Prop3Scenario>(Prop3Scenario::Params{
          .omega = p.get_size("omega"), .kappa = p.get_size("kappa")});
    },
}};

const runtime::ScenarioRegistration kProp3Cost{{
    .name = "prop3_cost",
    .description = "Prop. 3 cost side: measured PBFT messages per request "
                   "vs cluster size κω, against (n/4)²",
    .grids = {runtime::ParamGrid{
        {"n", {4, 8, 12, 16, 24}},
    }},
    .factory =
        [](const runtime::ParamSet& p) -> std::unique_ptr<runtime::Scenario> {
      return std::make_unique<Prop3CostScenario>(
          Prop3CostScenario::Params{.n = p.get_size("n")});
    },
}};

}  // namespace

}  // namespace findep::scenarios
