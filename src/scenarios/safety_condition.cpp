#include "scenarios/safety_condition.h"

#include <memory>
#include <vector>

#include "config/sampler.h"
#include "diversity/analyzer.h"
#include "diversity/metrics.h"
#include "diversity/resilience.h"
#include "faults/injector.h"
#include "runtime/registry.h"
#include "support/table.h"

namespace findep::scenarios {

std::string SafetyConditionScenario::name() const {
  return "safety_condition/zipf=" +
         support::Table::format_cell(params_.zipf_exponent);
}

runtime::MetricRecord SafetyConditionScenario::run(
    const runtime::RunContext& ctx) const {
  support::Rng rng(ctx.seed);
  const config::ComponentCatalog catalog = config::standard_catalog();
  config::SamplerOptions options;
  options.zipf_exponent = params_.zipf_exponent;
  options.attestable_fraction = 0.5;
  config::ConfigurationSampler sampler(catalog, options);

  std::vector<diversity::ReplicaRecord> population;
  for (const auto& cfg :
       sampler.sample_population(rng, params_.replicas)) {
    population.push_back(diversity::ReplicaRecord{cfg, 1.0, true});
  }
  const double entropy = diversity::shannon_entropy(
      diversity::DiversityAnalyzer::distribution_of(population));

  faults::FaultInjector injector(population);
  support::Rng mc = rng.fork(1);

  runtime::MetricRecord metrics;
  metrics.set("entropy_bits", entropy);
  metrics.set("p_third_k1",
              injector.break_probability(1, diversity::kBftThreshold,
                                         params_.trials, mc));
  metrics.set("p_third_k2",
              injector.break_probability(2, diversity::kBftThreshold,
                                         params_.trials, mc));
  metrics.set("p_third_k4",
              injector.break_probability(4, diversity::kBftThreshold,
                                         params_.trials, mc));
  metrics.set("p_half_k4",
              injector.break_probability(4, diversity::kNakamotoThreshold,
                                         params_.trials, mc));
  metrics.set("worst_k1",
              injector.worst_case_components(1).compromised_fraction);
  return metrics;
}

namespace {

const runtime::ScenarioRegistration kSafetyCondition{{
    .name = "safety_condition",
    .description = "§II-C Monte-Carlo: P[compromise > threshold] under k "
                   "random component faults vs population skew",
    .grids = {runtime::ParamGrid{
        {"zipf", {0.0, 0.5, 1.0, 1.5, 2.0, 3.0}},
        {"replicas", {100}},
        {"trials", {2000}},
    }},
    .factory =
        [](const runtime::ParamSet& p) -> std::unique_ptr<runtime::Scenario> {
      return std::make_unique<SafetyConditionScenario>(
          SafetyConditionScenario::Params{
              .zipf_exponent = p.get_double("zipf"),
              .replicas = p.get_size("replicas"),
              .trials = p.get_size("trials")});
    },
}};

}  // namespace

}  // namespace findep::scenarios
