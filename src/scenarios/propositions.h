// Propositions 1–3 (§IV-B) as scenario families, replacing the three
// hand-rolled prop* bench drivers:
//  - prop1_entropy: abundance growth vs entropy for a κ-optimal base.
//  - prop2_unique: dust-weight unique replicas added to the Bitcoin
//    oligopoly vs the uniform control.
//  - prop3_abundance: abundance ω vs the operator / vulnerability
//    adversaries (analytic and injected).
//  - prop3_cost: the cost side — measured PBFT messages per request vs
//    cluster size, against the (n/4)² reference.
#pragma once

#include <cstddef>
#include <string>

#include "runtime/scenario.h"

namespace findep::scenarios {

/// Proposition 1 at one growth skew: uniform growth preserves entropy,
/// skewed growth strictly loses bits.
class Prop1Scenario : public runtime::Scenario {
 public:
  struct Params {
    /// max/min growth factor across the support.
    double skew = 2.0;
    std::size_t kappa = 16;
  };

  explicit Prop1Scenario(Params params);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] runtime::MetricRecord run(
      const runtime::RunContext& ctx) const override;

 private:
  Params params_;
};

/// Proposition 2 at one extension size: the oligopoly's entropy saturates
/// while the uniform control tracks log2(k).
class Prop2Scenario : public runtime::Scenario {
 public:
  struct Params {
    /// Number of dust-weight unique miners added to the 17-pool snapshot.
    std::size_t extra = 100;
  };

  explicit Prop2Scenario(Params params) : params_(params) {}

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] runtime::MetricRecord run(
      const runtime::RunContext& ctx) const override;

 private:
  Params params_;
};

/// Proposition 3 at one abundance ω: worst-case operator defection vs one
/// component fault over a (κ, ω) population, next to the analytic values.
class Prop3Scenario : public runtime::Scenario {
 public:
  struct Params {
    std::size_t omega = 1;
    std::size_t kappa = 8;
  };

  explicit Prop3Scenario(Params params);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] runtime::MetricRecord run(
      const runtime::RunContext& ctx) const override;

 private:
  Params params_;
};

/// Proposition 3's price: measured PBFT messages per request at cluster
/// size n (= κω), compared against quadratic growth from n = 4.
class Prop3CostScenario : public runtime::Scenario {
 public:
  struct Params {
    std::size_t n = 4;
    int requests = 3;
  };

  explicit Prop3CostScenario(Params params);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] runtime::MetricRecord run(
      const runtime::RunContext& ctx) const override;

 private:
  Params params_;
};

}  // namespace findep::scenarios
