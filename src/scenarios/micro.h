// Microbenchmark family: wall-clock timings of the hot primitives
// (SHA-256, Merkle trees, entropy metrics, analyzer runs) through the
// standard scenario interface, so `findep-bench` can sweep them next to
// the experiments. The google-benchmark driver (`bench/micro_core.cpp`)
// remains the precision instrument; this family is the always-available
// smoke-level view.
//
// NOTE: timings are *measured*, not derived from the seed — this family
// is registered with `deterministic = false` and is exempt from the
// bit-identical sweep contract. The `checksum` metric is deterministic
// and guards against the compiler optimizing the measured work away.
#pragma once

#include <string>

#include "runtime/scenario.h"

namespace findep::scenarios {

class MicroScenario : public runtime::Scenario {
 public:
  struct Params {
    /// One of: sha256_4k, merkle_build_1k, merkle_prove_1k, entropy_4k,
    /// config_digest, analyzer_n100, sim_schedule_pop, sim_timer_churn,
    /// sim_broadcast_100 (the sim_* rows are the event-engine hot path:
    /// schedule/pop, BFT-style timer churn, network broadcast fan-out).
    std::string op = "sha256_4k";
  };

  explicit MicroScenario(Params params);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] runtime::MetricRecord run(
      const runtime::RunContext& ctx) const override;

 private:
  Params params_;
};

}  // namespace findep::scenarios
