#include "scenarios/component_cap.h"

#include <memory>
#include <vector>

#include "committee/diversity_aware.h"
#include "config/sampler.h"
#include "diversity/metrics.h"
#include "runtime/registry.h"
#include "support/assert.h"
#include "support/table.h"

namespace findep::scenarios {

ComponentCapScenario::ComponentCapScenario(Params params) : params_(params) {
  FINDEP_REQUIRE(params_.component_cap > 0.0 && params_.component_cap <= 1.0);
  FINDEP_REQUIRE(params_.config_cap > 0.0 && params_.config_cap <= 1.0);
  FINDEP_REQUIRE(params_.candidates >= 4);
}

std::string ComponentCapScenario::name() const {
  return "component_cap/cap=" +
         support::Table::format_cell(params_.component_cap);
}

runtime::MetricRecord ComponentCapScenario::run(
    const runtime::RunContext& ctx) const {
  crypto::KeyRegistry keys;
  committee::StakeRegistry stake;
  const config::ComponentCatalog catalog = config::standard_catalog();
  config::SamplerOptions opts;
  opts.zipf_exponent = params_.zipf_exponent;
  opts.attestable_fraction = 1.0;
  config::ConfigurationSampler sampler(catalog, opts);
  support::Rng rng(ctx.seed);
  std::vector<committee::ParticipantId> everyone;
  for (std::size_t i = 0; i < params_.candidates; ++i) {
    const auto kp = crypto::KeyPair::derive(support::mix64(ctx.seed) + i);
    keys.enroll(kp);
    everyone.push_back(stake.add("p" + std::to_string(i),
                                 rng.uniform(1.0, 3.0), sampler.sample(rng),
                                 true, kp.public_key()));
  }

  committee::SelectionPolicy policy;
  policy.per_config_cap = params_.config_cap;
  policy.per_component_cap = params_.component_cap;
  const committee::Committee c =
      committee::form_committee(stake, everyone, policy);

  runtime::MetricRecord metrics;
  metrics.set("worst_component_exposure", c.worst_component_exposure);
  metrics.set("worst_config_share",
              diversity::berger_parker(c.distribution));
  metrics.set("admitted_power_pct", c.admitted_fraction * 100.0);
  metrics.set("entropy_bits", c.entropy_bits);
  metrics.set("faults_over_third", static_cast<double>(c.bft.min_faults));
  return metrics;
}

namespace {

const runtime::ScenarioRegistration kComponentCap{{
    .name = "component_cap",
    .description = "component-aware committee caps: worst-component "
                   "exposure vs admitted honest power (§II-C residual)",
    .grids = {runtime::ParamGrid{
        {"cap", {1.0, 0.5, 1.0 / 3.0, 0.25, 0.15, 0.10}},
        {"candidates", {40}},
        {"zipf", {1.0}},
    }},
    .factory =
        [](const runtime::ParamSet& p) -> std::unique_ptr<runtime::Scenario> {
      return std::make_unique<ComponentCapScenario>(
          ComponentCapScenario::Params{
              .component_cap = p.get_double("cap"),
              .candidates = p.get_size("candidates"),
              .zipf_exponent = p.get_double("zipf")});
    },
}};

}  // namespace

}  // namespace findep::scenarios
