#include "scenarios/proactive_recovery.h"

#include <memory>
#include <vector>

#include "config/catalog.h"
#include "diversity/manager.h"
#include "faults/recovery.h"
#include "runtime/registry.h"
#include "support/assert.h"
#include "support/rng.h"
#include "support/table.h"

namespace findep::scenarios {

ProactiveRecoveryScenario::ProactiveRecoveryScenario(Params params)
    : params_(params) {
  FINDEP_REQUIRE(params_.period_days >= 0.0);
  FINDEP_REQUIRE(params_.replicas > 0);
  FINDEP_REQUIRE(params_.horizon_days > 0.0);
}

std::string ProactiveRecoveryScenario::name() const {
  return "proactive_recovery/period=" +
         (params_.period_days == 0.0
              ? std::string("none")
              : support::Table::format_cell(params_.period_days) + "d");
}

runtime::MetricRecord ProactiveRecoveryScenario::run(
    const runtime::RunContext& ctx) const {
  const config::ComponentCatalog catalog = config::standard_catalog();
  faults::SynthesisOptions synth;
  synth.mean_vulns_per_component = params_.mean_vulns_per_component;
  synth.horizon_days = params_.horizon_days;
  synth.mean_patch_latency_days = params_.mean_patch_latency_days;
  synth.seed = ctx.seed;
  const faults::VulnerabilityCatalog vulns =
      faults::synthesize_catalog(catalog, synth);

  std::vector<diversity::ReplicaRecord> population;
  for (const auto& cfg :
       diversity::LazarusStyleAssigner(catalog).assign(params_.replicas)) {
    population.push_back(diversity::ReplicaRecord{cfg, 1.0, true});
  }
  faults::PatchLagModel patching;
  patching.mean_deploy_lag_days = params_.mean_deploy_lag_days;
  patching.seed = support::mix64(ctx.seed ^ 0x1a95);

  const std::size_t samples =
      static_cast<std::size_t>(params_.horizon_days) + 1;
  const faults::ExposureTimeline timeline =
      params_.period_days == 0.0
          ? faults::compute_exposure(population, vulns,
                                     params_.horizon_days, samples,
                                     patching)
          : faults::compute_exposure_with_recovery(
                population, vulns, params_.horizon_days, samples, patching,
                faults::RecoverySchedule{.period_days = params_.period_days,
                                         .staggered = true});

  runtime::MetricRecord metrics;
  metrics.set("peak_exposed_pct", timeline.peak_exposed_fraction * 100.0);
  metrics.set("days_over_third",
              timeline.time_above_bft_threshold * params_.horizon_days);
  metrics.set("days_over_half",
              timeline.time_above_majority_threshold * params_.horizon_days);
  metrics.set("peak_open_vulns",
              static_cast<double>(timeline.peak_open_vulnerabilities));
  return metrics;
}

namespace {

const runtime::ScenarioRegistration kProactiveRecovery{{
    .name = "proactive_recovery",
    .description = "one-year exposure vs rejuvenation period, "
                   "Lazarus-diverse fleet (§III-A); period=0 is the "
                   "patch-lag-only baseline",
    .grids = {runtime::ParamGrid{
        {"period_days", {0.0, 180.0, 90.0, 30.0, 14.0, 7.0, 2.0}},
        {"replicas", {24}},
    }},
    .factory =
        [](const runtime::ParamSet& p) -> std::unique_ptr<runtime::Scenario> {
      return std::make_unique<ProactiveRecoveryScenario>(
          ProactiveRecoveryScenario::Params{
              .period_days = p.get_double("period_days"),
              .replicas = p.get_size("replicas")});
    },
}};

}  // namespace

}  // namespace findep::scenarios
