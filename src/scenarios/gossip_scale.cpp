#include "scenarios/gossip_scale.h"

#include <memory>
#include <vector>

#include "nakamoto/miner.h"
#include "runtime/registry.h"

namespace findep::scenarios {

std::string GossipScaleScenario::name() const {
  return "gossip_scale/n=" + std::to_string(params_.nodes) +
         " deg=" + std::to_string(params_.degree);
}

runtime::MetricRecord GossipScaleScenario::run(
    const runtime::RunContext& ctx) const {
  nakamoto::NakamotoOptions options;
  options.mean_block_interval = params_.mean_block_interval;
  options.gossip_degree = params_.degree;
  // Wide-area latencies: blocks take a few gossip hops to cover the
  // overlay, so propagation is a real burst of work, not a single tick.
  options.network.min_latency = 0.05;
  options.network.mean_extra_latency = 0.1;
  options.seed = ctx.seed;
  nakamoto::NakamotoSim sim(std::vector<double>(params_.nodes, 1.0),
                            options);
  sim.run_for(params_.mean_block_interval * params_.horizon_blocks);

  const nakamoto::ChainStats stats = sim.stats();
  runtime::MetricRecord metrics;
  metrics.set("blocks_mined", static_cast<double>(stats.total_blocks));
  metrics.set("stale_rate_pct", stats.stale_rate * 100.0);
  metrics.set("messages_delivered",
              static_cast<double>(sim.network().stats().messages_delivered));
  metrics.set("events_executed",
              static_cast<double>(sim.simulator().executed_count()));
  return metrics;
}

namespace {

const runtime::ScenarioRegistration kGossipScale{{
    .name = "gossip_scale",
    .description = "10k-node Nakamoto gossip sweep: block propagation at "
                   "full network scale (event-engine stress shape)",
    .grids = {runtime::ParamGrid{
        {"n", {10000.0}},
        {"degree", {4.0}},
    }},
    .factory =
        [](const runtime::ParamSet& p) -> std::unique_ptr<runtime::Scenario> {
      return std::make_unique<GossipScaleScenario>(GossipScaleScenario::Params{
          .nodes = static_cast<std::size_t>(p.get_double("n")),
          .degree = static_cast<std::size_t>(p.get_double("degree"))});
    },
}};

}  // namespace

}  // namespace findep::scenarios
