// Bridges library-layer instrumentation into the runtime's counter
// footer. Lives in scenarios/ because it is the layer that may depend on
// both runtime and the domain libraries.
#include <chrono>

#include "diversity/analyzer.h"
#include "runtime/counters.h"
#include "sim/simulator.h"

namespace findep::scenarios {

namespace {

const bool kAnalyzerCounters = [] {
  runtime::register_process_counter("analyzer_cache_hits", [] {
    return diversity::DiversityAnalyzer::cache_stats().hits;
  });
  runtime::register_process_counter("analyzer_cache_misses", [] {
    return diversity::DiversityAnalyzer::cache_stats().misses;
  });
  return true;
}();

// Event-engine throughput. process_events_executed() aggregates at
// Simulator destruction, so the footer reflects completed runs — which
// is when it is sampled. events_per_second divides by process uptime
// (registration ≈ static init ≈ process start); it is a coarse fleet
// health signal, not a benchmark — the micro family measures the engine
// properly.
const bool kSimCounters = [] {
  static const auto start = std::chrono::steady_clock::now();
  runtime::register_process_counter("sim_events_executed", [] {
    return sim::process_events_executed();
  });
  runtime::register_process_counter("sim_events_per_second", [] {
    const double elapsed = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - start)
                               .count();
    const std::uint64_t events = sim::process_events_executed();
    return elapsed > 0.0
               ? static_cast<std::uint64_t>(
                     static_cast<double>(events) / elapsed)
               : events;
  });
  return true;
}();

}  // namespace

}  // namespace findep::scenarios
