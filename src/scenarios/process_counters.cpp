// Bridges library-layer instrumentation into the runtime's counter
// footer. Lives in scenarios/ because it is the layer that may depend on
// both runtime and the domain libraries.
#include "diversity/analyzer.h"
#include "runtime/counters.h"

namespace findep::scenarios {

namespace {

const bool kAnalyzerCounters = [] {
  runtime::register_process_counter("analyzer_cache_hits", [] {
    return diversity::DiversityAnalyzer::cache_stats().hits;
  });
  runtime::register_process_counter("analyzer_cache_misses", [] {
    return diversity::DiversityAnalyzer::cache_stats().misses;
  });
  return true;
}();

}  // namespace

}  // namespace findep::scenarios
