#include "scenarios/micro.h"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <vector>

#include "config/sampler.h"
#include "crypto/keys.h"
#include "crypto/merkle.h"
#include "crypto/sha256.h"
#include "diversity/analyzer.h"
#include "diversity/metrics.h"
#include "net/envelope.h"
#include "net/network.h"
#include "runtime/registry.h"
#include "sim/simulator.h"
#include "support/rng.h"

namespace findep::scenarios {

namespace {

/// Keeps a value observable so the measured loop cannot be elided. The
/// sweep pool times ops on several threads at once, so the sink must be
/// atomic (relaxed is enough — the value is never read back, it only has
/// to count as an observable side effect).
std::atomic<std::uint64_t> g_micro_sink{0};

struct OpResult {
  std::size_t iterations = 0;
  double seconds = 0.0;
  std::uint64_t checksum = 0;
};

template <typename Body>
OpResult time_op(std::size_t iterations, Body&& body) {
  OpResult result;
  result.iterations = iterations;
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < iterations; ++i) {
    result.checksum ^= body(i);
  }
  const auto stop = std::chrono::steady_clock::now();
  g_micro_sink.store(result.checksum, std::memory_order_relaxed);
  result.seconds = std::chrono::duration<double>(stop - start).count();
  return result;
}

OpResult run_op(const std::string& op, std::uint64_t seed) {
  if (op == "sha256_4k") {
    const std::vector<std::uint8_t> data(4096, 0xab);
    return time_op(2048, [&](std::size_t) {
      return crypto::sha256(data).prefix64();
    });
  }
  if (op == "merkle_build_1k" || op == "merkle_prove_1k") {
    std::vector<crypto::Digest> leaves;
    leaves.reserve(1024);
    for (std::uint64_t i = 0; i < 1024; ++i) {
      leaves.push_back(crypto::Sha256{}.update_u64(i).finish());
    }
    if (op == "merkle_build_1k") {
      return time_op(64, [&](std::size_t) {
        return crypto::MerkleTree(leaves).root().prefix64();
      });
    }
    const crypto::MerkleTree tree(leaves);
    return time_op(4096, [&](std::size_t i) {
      const std::size_t index = i % leaves.size();
      const auto proof = tree.prove(index);
      return static_cast<std::uint64_t>(
          crypto::MerkleTree::verify(leaves[index], proof, tree.root()));
    });
  }
  if (op == "sign" || op == "verify" || op == "batch_verify_32") {
    // The signature primitives behind the crypto cost model
    // (crypto/cost.h): what one sign / verify / 32-proof quorum check
    // actually costs this build. The simulation charges *modeled*
    // nanoseconds for these, so the rows exist to keep the real
    // implementation honest-cheap (an accidental O(n) registry scan or
    // allocation storm shows up here long before it skews a sweep).
    const crypto::KeyPair keys = crypto::KeyPair::derive(seed);
    crypto::KeyRegistry registry;
    registry.enroll(keys);
    const crypto::Digest message =
        crypto::Sha256{}.update_u64(seed).finish();
    if (op == "sign") {
      return time_op(16384, [&](std::size_t i) {
        return keys.sign(crypto::Sha256{}.update_u64(i).finish())
            .tag.prefix64();
      });
    }
    if (op == "verify") {
      const crypto::Signature sig = keys.sign(message);
      return time_op(16384, [&](std::size_t) {
        return static_cast<std::uint64_t>(
            registry.verify(keys.public_key(), message, sig));
      });
    }
    // batch_verify_32: one 32-signature quorum proof, the shape a
    // NEW-VIEW or StateResponse batch-verifies per envelope.
    std::vector<crypto::Digest> messages;
    std::vector<crypto::Signature> sigs;
    for (std::uint64_t i = 0; i < 32; ++i) {
      messages.push_back(crypto::Sha256{}.update_u64(i).finish());
      sigs.push_back(keys.sign(messages.back()));
    }
    return time_op(1024, [&](std::size_t) {
      std::uint64_t ok = 0;
      for (std::size_t i = 0; i < sigs.size(); ++i) {
        ok += static_cast<std::uint64_t>(
            registry.verify(keys.public_key(), messages[i], sigs[i]));
      }
      return ok;
    });
  }
  if (op == "entropy_4k") {
    support::Rng rng(seed);
    std::vector<double> weights(4096);
    for (double& w : weights) w = rng.uniform(0.1, 10.0);
    return time_op(512, [&](std::size_t) {
      return static_cast<std::uint64_t>(
          diversity::shannon_entropy(weights) * 1e6);
    });
  }
  if (op == "config_digest") {
    const config::ComponentCatalog catalog = config::standard_catalog();
    config::ConfigurationSampler sampler(catalog,
                                         config::SamplerOptions{});
    support::Rng rng(seed);
    const auto cfg = sampler.sample(rng);
    return time_op(8192, [&](std::size_t) {
      return cfg.digest().prefix64();
    });
  }
  if (op == "sim_schedule_pop") {
    // Steady-state event-engine hot loop: one schedule + one pop/execute
    // per iteration against a queue pre-filled to 10k-node-sweep depth,
    // with pseudo-random inter-event gaps (the shape every protocol
    // substrate produces). ns_per_op is the cost of a schedule+pop pair.
    sim::Simulator sim;
    support::Rng rng(seed);
    std::uint64_t pops = 0;
    for (int i = 0; i < 16384; ++i) {
      sim.schedule_after(rng.uniform(0.0, 1.0), [&pops] { ++pops; });
    }
    // Delays are drawn outside the timed loop (the row measures the
    // engine, not the generator), from a cache-resident table so the
    // loop is not also streaming megabytes of pre-drawn doubles.
    std::vector<double> delays(8192);
    for (double& d : delays) d = rng.uniform(0.0, 1.0);
    const std::size_t dmask = delays.size() - 1;
    return time_op(262144, [&, dmask](std::size_t i) {
      sim.schedule_after(delays[i & dmask], [&pops] { ++pops; });
      sim.run(1);
      return pops;
    });
  }
  if (op == "sim_far_future_insert") {
    // Insert-while-draining with every arrival far beyond the calendar
    // window (the long-horizon timer pattern: mining schedules, epoch
    // rotations). The year-wrapped layout links these modulo the ring in
    // O(1); an engine that parks them in a side structure pays a
    // log-depth push here and a migration later. ns_per_op is one far
    // insert + one pop/execute.
    sim::Simulator sim;
    support::Rng rng(seed);
    std::uint64_t pops = 0;
    for (int i = 0; i < 16384; ++i) {
      sim.schedule_after(rng.uniform(0.0, 1.0), [&pops] { ++pops; });
    }
    std::vector<double> gaps(8192);
    for (double& d : gaps) d = rng.uniform(0.0, 1.0);
    const std::size_t gmask = gaps.size() - 1;
    return time_op(262144, [&, gmask](std::size_t i) {
      // 1e6 s ahead of a sub-second-width calendar: always many laps out.
      sim.schedule_after(1.0e6 + gaps[i & gmask], [&pops] { ++pops; });
      sim.run(1);
      return pops;
    });
  }
  if (op == "sim_timer_churn") {
    // The BFT request/batch-timer pattern: a live timer is cancelled and
    // re-armed on every executed request, and its captured state (here a
    // shared_ptr, standing in for the replica closure) must die with the
    // cancellation, not with the eventual pop.
    // 512 concurrent timers ≈ a 128-replica cluster's worth of request/
    // batch/view-change/fetch timers, the cancel-heaviest real workload.
    // The iteration count is deliberately long: an engine that tombstones
    // cancels instead of reclaiming them pays per-op costs that *grow*
    // with churn volume (its queue never shrinks), and a short row hides
    // that slope.
    sim::Simulator sim;
    support::Rng rng(seed);
    const auto state = std::make_shared<std::uint64_t>(0);
    std::vector<sim::EventId> timers(512);
    for (std::size_t i = 0; i < timers.size(); ++i) {
      timers[i] = sim.schedule_after(1.0 + rng.uniform(0.0, 0.1),
                                     [state] { ++*state; });
    }
    std::vector<double> delays(8192);
    for (double& d : delays) d = 1.0 + rng.uniform(0.0, 0.1);
    const std::size_t tmask = timers.size() - 1;
    const std::size_t dmask = delays.size() - 1;
    return time_op(1048576, [&, tmask, dmask](std::size_t i) {
      const std::size_t t = i & tmask;
      sim.cancel(timers[t]);
      timers[t] = sim.schedule_after(delays[i & dmask],
                                     [state] { ++*state; });
      return static_cast<std::uint64_t>(timers[t]);
    });
  }
  if (op == "sim_broadcast_100") {
    // net::Network fan-out: one broadcast to 100 attached nodes, drained
    // through the event engine. ns_per_op is per *broadcast* (99
    // scheduled deliveries sharing one envelope body).
    sim::Simulator sim;
    net::NetworkOptions options;
    options.min_latency = 0.001;
    options.mean_extra_latency = 0.0;  // pure scheduling, no latency rng
    options.seed = seed;
    net::SimNetwork network(sim, options);
    std::uint64_t delivered = 0;
    for (net::NodeId n = 0; n < 100; ++n) {
      network.attach(n, [&delivered](const net::Message&) { ++delivered; });
    }
    const net::Envelope envelope(net::Probe{1, "fanout"});
    return time_op(4096, [&](std::size_t) {
      network.broadcast(0, envelope);
      sim.run();
      return delivered;
    });
  }
  if (op == "analyzer_n100") {
    const config::ComponentCatalog catalog = config::standard_catalog();
    config::ConfigurationSampler sampler(catalog,
                                         config::SamplerOptions{});
    support::Rng rng(seed);
    std::vector<diversity::ReplicaRecord> population;
    for (const auto& cfg : sampler.sample_population(rng, 100)) {
      population.push_back(diversity::ReplicaRecord{cfg, 1.0, true});
    }
    return time_op(64, [&](std::size_t i) {
      // Vary one power so every iteration misses the memo cache: this
      // times analyze(), not the cache lookup.
      population.front().power = 1.0 + static_cast<double>(i) * 1e-6;
      return static_cast<std::uint64_t>(
          diversity::DiversityAnalyzer::analyze(population).entropy_bits *
          1e6);
    });
  }
  throw std::invalid_argument("unknown micro op '" + op + "'");
}

}  // namespace

MicroScenario::MicroScenario(Params params) : params_(std::move(params)) {}

std::string MicroScenario::name() const { return "micro/" + params_.op; }

runtime::MetricRecord MicroScenario::run(
    const runtime::RunContext& ctx) const {
  const OpResult result = run_op(params_.op, ctx.seed);

  runtime::MetricRecord metrics;
  metrics.set("ns_per_op", result.seconds * 1e9 /
                               static_cast<double>(result.iterations));
  metrics.set("ops_per_sec",
              result.seconds > 0.0
                  ? static_cast<double>(result.iterations) / result.seconds
                  : 0.0);
  metrics.set("checksum_lo32",
              static_cast<double>(result.checksum & 0xffffffffULL));
  return metrics;
}

namespace {

const runtime::ScenarioRegistration kMicro{{
    .name = "micro",
    .description = "wall-clock microbenchmarks of the hot primitives "
                   "(timings measured, not seed-derived)",
    .grids = {runtime::ParamGrid{
        {"op", {"sha256_4k", "sign", "verify", "batch_verify_32",
                "merkle_build_1k", "merkle_prove_1k",
                "entropy_4k", "config_digest", "analyzer_n100",
                "sim_schedule_pop", "sim_timer_churn",
                "sim_far_future_insert", "sim_broadcast_100"}},
    }},
    .factory =
        [](const runtime::ParamSet& p) -> std::unique_ptr<runtime::Scenario> {
      return std::make_unique<MicroScenario>(
          MicroScenario::Params{.op = p.get_string("op")});
    },
    .deterministic = false,
}};

}  // namespace

}  // namespace findep::scenarios
