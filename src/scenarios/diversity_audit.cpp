#include "scenarios/diversity_audit.h"

#include <memory>
#include <vector>

#include "config/sampler.h"
#include "diversity/analyzer.h"
#include "diversity/optimality.h"
#include "runtime/registry.h"
#include "support/assert.h"
#include "support/table.h"

namespace findep::scenarios {

DiversityAuditScenario::DiversityAuditScenario(Params params)
    : params_(params) {
  FINDEP_REQUIRE(params_.replicas > 0);
}

std::string DiversityAuditScenario::name() const {
  return "diversity_audit/n=" + std::to_string(params_.replicas) +
         " zipf=" + support::Table::format_cell(params_.zipf_exponent);
}

runtime::MetricRecord DiversityAuditScenario::run(
    const runtime::RunContext& ctx) const {
  const config::ComponentCatalog catalog = config::standard_catalog();
  config::SamplerOptions options;
  options.zipf_exponent = params_.zipf_exponent;
  options.attestable_fraction = params_.attestable_fraction;
  config::ConfigurationSampler sampler(catalog, options);

  support::Rng rng(ctx.seed);
  std::vector<diversity::ReplicaRecord> population;
  for (const auto& cfg :
       sampler.sample_population(rng, params_.replicas)) {
    population.push_back(
        diversity::ReplicaRecord{cfg, 1.0, cfg.is_attestable()});
  }

  // One analyze() call covers everything; it is memoized across scenario
  // instances sharing a population (see DiversityAnalyzer).
  const diversity::DiversityReport report =
      diversity::DiversityAnalyzer::analyze(population);

  runtime::MetricRecord metrics;
  metrics.set("entropy_bits", report.entropy_bits);
  metrics.set("max_entropy_bits", report.max_entropy_bits);
  metrics.set("kappa_optimal",
              report.max_entropy_bits - report.entropy_bits < 1e-9 ? 1.0
                                                                   : 0.0);
  metrics.set("faults_over_third",
              static_cast<double>(report.bft.min_faults));
  metrics.set("worst_component_pct",
              report.worst_overall.has_value()
                  ? report.worst_overall->power_fraction * 100.0
                  : 0.0);
  return metrics;
}

namespace {

const runtime::ScenarioRegistration kDiversityAudit{{
    .name = "diversity_audit",
    .description = "quickstart: diversity of a sampled replica population "
                   "(§IV-A headline quantities)",
    .grids = {runtime::ParamGrid{
        {"replicas", {32}},
        {"zipf", {1.0}},
    }},
    .factory =
        [](const runtime::ParamSet& p) -> std::unique_ptr<runtime::Scenario> {
      return std::make_unique<DiversityAuditScenario>(
          DiversityAuditScenario::Params{
              .replicas = p.get_size("replicas"),
              .zipf_exponent = p.get_double("zipf")});
    },
}};

}  // namespace

}  // namespace findep::scenarios
