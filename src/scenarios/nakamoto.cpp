#include "scenarios/nakamoto.h"

#include "nakamoto/attack.h"
#include "nakamoto/miner.h"
#include "support/rng.h"
#include "support/table.h"

namespace findep::scenarios {

std::string ForkRateScenario::name() const {
  return "fork_rate/delay=" +
         support::Table::format_cell(params_.mean_one_way_delay) + "s";
}

runtime::MetricRecord ForkRateScenario::run(
    const runtime::RunContext& ctx) const {
  nakamoto::NakamotoOptions options;
  options.mean_block_interval = params_.mean_block_interval;
  options.network.min_latency = params_.mean_one_way_delay / 2.0;
  options.network.mean_extra_latency = params_.mean_one_way_delay / 2.0;
  options.seed = ctx.seed;
  nakamoto::NakamotoSim sim(std::vector<double>(params_.miners, 1.0),
                            options);
  sim.run_for(params_.mean_block_interval * params_.horizon_blocks);
  const nakamoto::ChainStats stats = sim.stats();

  runtime::MetricRecord metrics;
  metrics.set("delay_over_interval",
              params_.mean_one_way_delay / params_.mean_block_interval);
  metrics.set("blocks_mined", static_cast<double>(stats.total_blocks));
  metrics.set("stale_rate_pct", stats.stale_rate * 100.0);
  return metrics;
}

std::string DoubleSpendScenario::name() const {
  return "double_spend/q=" +
         support::Table::format_cell(params_.attacker_share);
}

runtime::MetricRecord DoubleSpendScenario::run(
    const runtime::RunContext& ctx) const {
  const double q = params_.attacker_share;
  support::Rng rng(ctx.seed);

  runtime::MetricRecord metrics;
  metrics.set("closed_z1", nakamoto::attack_success_closed_form(q, 1));
  metrics.set("closed_z2", nakamoto::attack_success_closed_form(q, 2));
  metrics.set("closed_z6", nakamoto::attack_success_closed_form(q, 6));
  metrics.set("monte_carlo_z6", nakamoto::attack_success_monte_carlo(
                                    q, 6, params_.trials, rng));
  metrics.set("z_for_0.1pct_risk", static_cast<double>(
                                       nakamoto::confirmations_for_risk(
                                           q, 0.001)));
  return metrics;
}

}  // namespace findep::scenarios
