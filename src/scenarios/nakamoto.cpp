#include "scenarios/nakamoto.h"

#include <memory>
#include <stdexcept>

#include "config/catalog.h"
#include "faults/injector.h"
#include "nakamoto/attack.h"
#include "nakamoto/miner.h"
#include "nakamoto/pools.h"
#include "runtime/registry.h"
#include "support/rng.h"
#include "support/table.h"

namespace findep::scenarios {

std::string ForkRateScenario::name() const {
  return "fork_rate/delay=" +
         support::Table::format_cell(params_.mean_one_way_delay) + "s";
}

runtime::MetricRecord ForkRateScenario::run(
    const runtime::RunContext& ctx) const {
  nakamoto::NakamotoOptions options;
  options.mean_block_interval = params_.mean_block_interval;
  options.network.min_latency = params_.mean_one_way_delay / 2.0;
  options.network.mean_extra_latency = params_.mean_one_way_delay / 2.0;
  options.seed = ctx.seed;
  nakamoto::NakamotoSim sim(std::vector<double>(params_.miners, 1.0),
                            options);
  sim.run_for(params_.mean_block_interval * params_.horizon_blocks);
  const nakamoto::ChainStats stats = sim.stats();

  runtime::MetricRecord metrics;
  metrics.set("delay_over_interval",
              params_.mean_one_way_delay / params_.mean_block_interval);
  metrics.set("blocks_mined", static_cast<double>(stats.total_blocks));
  metrics.set("stale_rate_pct", stats.stale_rate * 100.0);
  return metrics;
}

std::string DoubleSpendScenario::name() const {
  return "double_spend/q=" +
         support::Table::format_cell(params_.attacker_share);
}

runtime::MetricRecord DoubleSpendScenario::run(
    const runtime::RunContext& ctx) const {
  const double q = params_.attacker_share;
  support::Rng rng(ctx.seed);

  runtime::MetricRecord metrics;
  metrics.set("closed_z1", nakamoto::attack_success_closed_form(q, 1));
  metrics.set("closed_z2", nakamoto::attack_success_closed_form(q, 2));
  metrics.set("closed_z6", nakamoto::attack_success_closed_form(q, 6));
  metrics.set("monte_carlo_z6", nakamoto::attack_success_monte_carlo(
                                    q, 6, params_.trials, rng));
  metrics.set("z_for_0.1pct_risk", static_cast<double>(
                                       nakamoto::confirmations_for_risk(
                                           q, 0.001)));
  return metrics;
}

std::string PoolCompromiseScenario::name() const {
  switch (params_.kind) {
    case Kind::kBestCase:
      return "pool_compromise/best_case";
    case Kind::kRealistic:
      return "pool_compromise/realistic";
    case Kind::kMonoculture:
      return "pool_compromise/monoculture";
  }
  return "pool_compromise/?";
}

runtime::MetricRecord PoolCompromiseScenario::run(
    const runtime::RunContext& ctx) const {
  const config::ComponentCatalog catalog =
      params_.kind == Kind::kMonoculture ? config::monoculture_catalog()
                                         : config::standard_catalog();
  const nakamoto::PoolSet pools =
      params_.kind == Kind::kBestCase
          ? nakamoto::PoolSet::example1(catalog, true)
          : nakamoto::PoolSet::example1(catalog, false, ctx.seed);
  faults::FaultInjector injector(pools.as_population());
  const double q = injector.worst_case_components(1).compromised_fraction;

  runtime::MetricRecord metrics;
  metrics.set("worst_1fault_share", q);
  metrics.set("attack_z6", nakamoto::attack_success_closed_form(q, 6));
  metrics.set("attack_z24", nakamoto::attack_success_closed_form(q, 24));
  return metrics;
}

namespace {

const runtime::ScenarioRegistration kForkRate{{
    .name = "fork_rate",
    .description = "honest mining race: fork/stale rate vs one-way "
                   "propagation delay",
    .grids = {runtime::ParamGrid{
        {"delay", {0.1, 1.0, 5.0, 15.0, 40.0}},
    }},
    .factory =
        [](const runtime::ParamSet& p) -> std::unique_ptr<runtime::Scenario> {
      return std::make_unique<ForkRateScenario>(
          ForkRateScenario::Params{.mean_one_way_delay =
                                       p.get_double("delay")});
    },
}};

const runtime::ScenarioRegistration kDoubleSpend{{
    .name = "double_spend",
    .description = "double-spend race: Nakamoto closed form vs seeded "
                   "Monte-Carlo, per attacker share q",
    .grids = {runtime::ParamGrid{
        {"q", {0.05, 0.10, 0.20, 0.30, 0.40, 0.45}},
        {"trials", {40000}},
    }},
    .factory =
        [](const runtime::ParamSet& p) -> std::unique_ptr<runtime::Scenario> {
      return std::make_unique<DoubleSpendScenario>(
          DoubleSpendScenario::Params{.attacker_share = p.get_double("q"),
                                      .trials = p.get_size("trials")});
    },
}};

const runtime::ScenarioRegistration kPoolCompromise{{
    .name = "pool_compromise",
    .description = "§I pipeline: one component fault → aggregated pool "
                   "hashrate → double-spend success",
    .grids = {runtime::ParamGrid{
        {"case", {"best_case", "realistic", "monoculture"}},
    }},
    .factory =
        [](const runtime::ParamSet& p) -> std::unique_ptr<runtime::Scenario> {
      const std::string& c = p.get_string("case");
      const auto kind = c == "best_case"
                            ? PoolCompromiseScenario::Kind::kBestCase
                        : c == "monoculture"
                            ? PoolCompromiseScenario::Kind::kMonoculture
                            : PoolCompromiseScenario::Kind::kRealistic;
      if (c != "best_case" && c != "monoculture" && c != "realistic") {
        throw std::invalid_argument("unknown pool_compromise case '" + c +
                                    "'");
      }
      return std::make_unique<PoolCompromiseScenario>(
          PoolCompromiseScenario::Params{.kind = kind});
    },
}};

}  // namespace

}  // namespace findep::scenarios
