// Proactive-recovery scenario (§III-A's proactive-security pointer):
// one-year exposure of a Lazarus-diverse fleet as a function of the
// rejuvenation period, against patch-lag-only operation (period = 0).
// Replaces the hand-rolled period loop of the old bench; the CVE stream
// and deploy lags derive from the run seed, so a sweep replays many
// independent years.
#pragma once

#include <cstddef>
#include <string>

#include "runtime/scenario.h"

namespace findep::scenarios {

class ProactiveRecoveryScenario : public runtime::Scenario {
 public:
  struct Params {
    /// Days between rejuvenations of one replica; 0 = no recovery
    /// (patch-lag-only baseline).
    double period_days = 30.0;
    std::size_t replicas = 24;
    /// Vendors patch quickly, the fleet deploys slowly — the regime where
    /// rejuvenation helps most (it bounds the deploy tail, not zero-days).
    double mean_patch_latency_days = 5.0;
    double mean_deploy_lag_days = 45.0;
    double mean_vulns_per_component = 0.8;
    double horizon_days = 365.0;
  };

  explicit ProactiveRecoveryScenario(Params params);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] runtime::MetricRecord run(
      const runtime::RunContext& ctx) const override;

 private:
  Params params_;
};

}  // namespace findep::scenarios
