#include "scenarios/bft_scaling.h"

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "runtime/registry.h"
#include "support/assert.h"

namespace findep::scenarios {

BftScalingScenario::BftScalingScenario(Params params)
    : params_(std::move(params)) {
  FINDEP_REQUIRE(params_.n >= 4);
  FINDEP_REQUIRE(params_.requests > 0);
  if (params_.label.empty()) {
    params_.label = "n=" + std::to_string(params_.n);
  }
}

std::string BftScalingScenario::name() const {
  return "bft_scaling/" + params_.label;
}

runtime::MetricRecord BftScalingScenario::run(
    const runtime::RunContext& ctx) const {
  bft::ClusterOptions options;
  options.seed = ctx.seed;
  bft::BftCluster cluster(params_.n, options, params_.behaviors);
  for (int i = 0; i < params_.requests; ++i) cluster.submit();
  const bool completed = cluster.run_until_executed(
      static_cast<std::size_t>(params_.requests), params_.deadline);

  const auto requests = static_cast<std::uint64_t>(params_.requests);
  const net::TrafficStats& stats = cluster.network().stats();
  std::uint64_t view_changes = 0;
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    view_changes = std::max(view_changes,
                            cluster.replica(i).view_changes_started());
  }

  runtime::MetricRecord metrics;
  metrics.set("completed", completed ? 1.0 : 0.0);
  metrics.set("latency_ms",
              completed ? cluster.mean_latency() * 1000.0 : -1.0);
  metrics.set("msgs_per_request",
              static_cast<double>(stats.messages_sent / requests));
  metrics.set("kib_per_request",
              static_cast<double>(stats.bytes_sent / 1024 / requests));
  metrics.set("max_view_changes", static_cast<double>(view_changes));
  return metrics;
}

namespace {

/// Behaviour mixes selectable on the declarative `mix` axis. The size
/// sweep pairs every n with "honest"; the fault block pins n = 7 (the
/// paper's running example) against each mix.
std::vector<bft::Behavior> behaviors_for_mix(const std::string& mix) {
  using bft::Behavior;
  if (mix == "honest") return {};
  if (mix == "silent_backup") return {Behavior::kHonest, Behavior::kSilent};
  if (mix == "two_silent_backups") {
    return {Behavior::kHonest, Behavior::kSilent, Behavior::kSilent};
  }
  if (mix == "silent_primary") return {Behavior::kSilent};
  if (mix == "equivocating_primary") return {Behavior::kEquivocate};
  throw std::invalid_argument("unknown behaviour mix '" + mix + "'");
}

const runtime::ScenarioRegistration kBftScaling{{
    .name = "bft_scaling",
    .description = "PBFT scaling: latency / messages / bytes per request "
                   "vs cluster size and fault mix (§IV-B overhead)",
    .grids =
        {
            runtime::ParamGrid{{"n", {4, 7, 10, 16, 25, 40}},
                               {"mix", {"honest"}}},
            runtime::ParamGrid{{"n", {7}},
                               {"mix",
                                {"silent_backup", "two_silent_backups",
                                 "silent_primary", "equivocating_primary"}}},
        },
    .factory =
        [](const runtime::ParamSet& p) -> std::unique_ptr<runtime::Scenario> {
      const std::string mix = p.get_string("mix");
      const std::size_t n = p.get_size("n");
      return std::make_unique<BftScalingScenario>(BftScalingScenario::Params{
          .n = n,
          .behaviors = behaviors_for_mix(mix),
          .label = "n=" + std::to_string(n) +
                   (mix == "honest" ? "" : " " + mix)});
    },
}};

}  // namespace

}  // namespace findep::scenarios
