#include "scenarios/bft_scaling.h"

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "runtime/param.h"
#include "runtime/registry.h"
#include "support/assert.h"

namespace findep::scenarios {

BftScalingScenario::BftScalingScenario(Params params)
    : params_(std::move(params)) {
  FINDEP_REQUIRE(params_.n >= 4);
  FINDEP_REQUIRE(params_.requests > 0);
  FINDEP_REQUIRE(params_.batch_size >= 1);
  FINDEP_REQUIRE(params_.offered_load >= 0.0);
  FINDEP_REQUIRE(params_.workers >= 1);
  if (params_.label.empty()) {
    params_.label = "n=" + std::to_string(params_.n);
  }
}

std::string BftScalingScenario::name() const {
  return "bft_scaling/" + params_.label;
}

runtime::MetricRecord BftScalingScenario::run(
    const runtime::RunContext& ctx) const {
  bft::ClusterOptions options;
  options.seed = ctx.seed;
  options.replica.batch_size = params_.batch_size;
  options.replica.batch_timeout = params_.batch_timeout;
  options.replica.request_timeout = params_.request_timeout;
  options.replica.view_change_timeout = params_.view_change_timeout;
  options.replica.cost_model = params_.cost_model;
  options.replica.crypto_workers = params_.workers;
  options.protocol = params_.protocol;
  bft::BftCluster cluster(params_.n, options, params_.behaviors);
  if (params_.offered_load > 0.0) {
    // Open-loop arrivals: request i enters at i / rate. Submission runs
    // as a simulation event so traces record the true arrival time.
    for (int i = 0; i < params_.requests; ++i) {
      cluster.simulator().schedule_after(
          static_cast<double>(i) / params_.offered_load,
          [&cluster] { (void)cluster.submit(); });
    }
  } else {
    for (int i = 0; i < params_.requests; ++i) cluster.submit();
  }
  const bool completed = cluster.run_until_executed(
      static_cast<std::size_t>(params_.requests), params_.deadline);

  const auto requests = static_cast<std::uint64_t>(params_.requests);
  const net::TrafficStats& stats = cluster.network().stats();
  // progress_disruptions() is view_changes_started() on a PBFT node, so
  // the metric (and its name, kept for catalog stability) is unchanged
  // there; on HotStuff it counts pacemaker timeouts.
  std::uint64_t view_changes = 0;
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    view_changes = std::max(view_changes,
                            cluster.node(i).progress_disruptions());
  }
  const std::size_t committed = cluster.completed_requests();
  const double span = cluster.last_completion_time();

  runtime::MetricRecord metrics;
  metrics.set("completed", completed ? 1.0 : 0.0);
  metrics.set("latency_ms",
              completed ? cluster.mean_latency() * 1000.0 : -1.0);
  // Historical metrics, deliberately kept in integer division: the CI
  // no-batching invariant cmp's this record byte-for-byte against the
  // unbatched protocol's output. msgs_per_committed_request below is the
  // exact-ratio replacement.
  metrics.set("msgs_per_request",
              static_cast<double>(stats.messages_sent / requests));
  metrics.set("kib_per_request",
              static_cast<double>(stats.bytes_sent / 1024 / requests));
  // Protocol efficiency at request granularity: total traffic amortized
  // over requests some honest replica actually executed (-1 when none
  // committed), and the committed throughput in requests/second.
  metrics.set("msgs_per_committed_request",
              committed > 0 ? static_cast<double>(stats.messages_sent) /
                                  static_cast<double>(committed)
                            : -1.0);
  metrics.set("requests_per_second",
              span > 0.0 ? static_cast<double>(committed) / span : 0.0);
  metrics.set("max_view_changes", static_cast<double>(view_changes));
  if (params_.protocol_axis) {
    // Commit-latency distribution (simulated clock, nearest-rank). Only
    // emitted for protocol-comparison cells so legacy records stay
    // byte-identical; deterministic per (instance, seed) like every
    // other simulated quantity, so the perf gate may pin these exactly.
    metrics.set("commit_latency_p50_ms",
                committed > 0 ? cluster.latency_percentile(0.5) * 1000.0
                              : -1.0);
    metrics.set("commit_latency_p99_ms",
                committed > 0 ? cluster.latency_percentile(0.99) * 1000.0
                              : -1.0);
  }
  if (!params_.cost_model.is_free()) {
    // Modeled-crypto observability. Gated on the cost model so the
    // crypto=free record stays byte-identical to historical output (the
    // CI inertness cmp); committed_requests is the raw count behind
    // requests_per_second — the quantity the worker-count sweep pins in
    // the perf gate.
    metrics.set("committed_requests", static_cast<double>(committed));
    metrics.set("verify_tasks",
                static_cast<double>(cluster.verify_tasks()));
    metrics.set("verify_dropped_stale",
                static_cast<double>(cluster.verify_dropped_stale()));
  }
  return metrics;
}

namespace {

/// Behaviour mixes selectable on the declarative `mix` axis. The size
/// sweep pairs every n with "honest"; the fault block pins n = 7 (the
/// paper's running example) against each mix.
std::vector<bft::Behavior> behaviors_for_mix(const std::string& mix) {
  using bft::Behavior;
  if (mix == "honest") return {};
  if (mix == "silent_backup") return {Behavior::kHonest, Behavior::kSilent};
  if (mix == "two_silent_backups") {
    return {Behavior::kHonest, Behavior::kSilent, Behavior::kSilent};
  }
  if (mix == "silent_primary") return {Behavior::kSilent};
  if (mix == "equivocating_primary") return {Behavior::kEquivocate};
  throw std::invalid_argument("unknown behaviour mix '" + mix + "'");
}

}  // namespace

std::string BftScalingScenario::grid_label(std::size_t n,
                                           const std::string& mix,
                                           std::size_t batch_size,
                                           int requests,
                                           double offered_load,
                                           const std::string& crypto,
                                           std::size_t workers,
                                           const std::string& protocol) {
  std::string label = "n=" + std::to_string(n);
  if (mix != "honest") label += " " + mix;
  if (batch_size != 1) label += " b=" + std::to_string(batch_size);
  if (requests != 5) label += " r=" + std::to_string(requests);
  if (offered_load != 0.0) {
    label += " load=" + runtime::ParamValue(offered_load).to_string();
  }
  // A non-free cost model always prints its worker count (the modeled
  // lane sweeps it, so every cell must render distinctly); under free
  // crypto a non-default worker count still prints, guarding against
  // duplicate labels if someone sweeps `workers` with crypto=free.
  if (crypto != "free") label += " " + crypto;
  if (workers != 1 || crypto != "free") {
    label += " w=" + std::to_string(workers);
  }
  // The protocol suffix is always last (see the header doc).
  if (!protocol.empty()) label += " proto=" + protocol;
  return label;
}

std::unique_ptr<runtime::Scenario> BftScalingScenario::from_params(
    const runtime::ParamSet& p, const std::string& mix) {
  const std::size_t n = p.get_size("n");
  const std::size_t batch_size = p.get_size("batch_size");
  const int requests = static_cast<int>(p.get_int("requests"));
  const double offered_load = p.get_double("offered_load");
  // Optional axes: bft_batching's grid (and older saved grids) predate
  // the cost model, so absent axes mean the historical free behaviour.
  const std::string crypto =
      p.has("crypto") ? p.get_string("crypto") : "free";
  const std::size_t workers = p.has("workers") ? p.get_size("workers") : 1;
  // The protocol axis is optional the same way: absent means the
  // historical PBFT lane with no label suffix and no extra metrics.
  const std::string protocol =
      p.has("protocol") ? p.get_string("protocol") : "";
  // A non-free cost model is a throughput study, not a liveness one:
  // park the timers so a saturated single-core replica is measured
  // instead of view-changed (see Params::request_timeout).
  const bool modeled = crypto != "free";
  return std::make_unique<BftScalingScenario>(BftScalingScenario::Params{
      .n = n,
      .behaviors = behaviors_for_mix(mix),
      .requests = requests,
      .batch_size = batch_size,
      .offered_load = offered_load,
      .request_timeout = modeled ? 30.0 : 1.0,
      .view_change_timeout = modeled ? 45.0 : 1.5,
      .cost_model = crypto::CostModel::parse(crypto),
      .workers = workers,
      .protocol = protocol.empty() ? replication::Protocol::kPbft
                                   : replication::parse_protocol(protocol),
      .protocol_axis = !protocol.empty(),
      .label = grid_label(n, mix, batch_size, requests, offered_load,
                          crypto, workers, protocol)});
}

namespace {

const runtime::ScenarioRegistration kBftScaling{{
    .name = "bft_scaling",
    .description = "PBFT scaling: latency / messages / bytes per request "
                   "vs cluster size and fault mix (§IV-B overhead)",
    .grids =
        {
            runtime::ParamGrid{{"n", {4, 7, 10, 16, 25, 40}},
                               {"mix", {"honest"}},
                               {"batch_size", {1}},
                               {"requests", {5}},
                               {"offered_load", {0.0}},
                               {"crypto", {"free"}},
                               {"workers", {1}}},
            runtime::ParamGrid{{"n", {7}},
                               {"mix",
                                {"silent_backup", "two_silent_backups",
                                 "silent_primary", "equivocating_primary"}},
                               {"batch_size", {1}},
                               {"requests", {5}},
                               {"offered_load", {0.0}},
                               {"crypto", {"free"}},
                               {"workers", {1}}},
            // The multicore-replica lane: modeled crypto cost, worker
            // count swept at two committee sizes under a batched request
            // block heavy enough that per-replica verify work (not the
            // network latency floor) dominates the span — that is what
            // makes committed-requests/sec scale near-linearly in the
            // worker count. The perf gate pins every cell's
            // committed_requests and requests_per_second, and CI asserts
            // the w=8 : w=1 throughput ratio stays >= 3.
            runtime::ParamGrid{{"n", {4, 10}},
                               {"mix", {"honest"}},
                               {"batch_size", {8}},
                               {"requests", {2048}},
                               {"offered_load", {0.0}},
                               {"crypto", {"modeled"}},
                               {"workers", {1, 2, 4, 8}}},
            // The protocol-comparison lane: the same request block
            // through PBFT's all-to-all commit and HotStuff's chained
            // leader-relayed pipeline, swept across committee sizes.
            // msgs_per_committed_request is quadratic in n on the PBFT
            // side and linear on the HotStuff side, so the ordering
            // flips as n grows (asserted in tests, pinned in the perf
            // gate for every cell).
            runtime::ParamGrid{{"n", {4, 10, 25, 50}},
                               {"mix", {"honest"}},
                               {"batch_size", {4}},
                               {"requests", {64}},
                               {"offered_load", {0.0}},
                               {"crypto", {"free"}},
                               {"workers", {1}},
                               {"protocol", {"pbft", "hotstuff"}}},
        },
    .factory =
        [](const runtime::ParamSet& p) -> std::unique_ptr<runtime::Scenario> {
      return BftScalingScenario::from_params(p, p.get_string("mix"));
    },
}};

}  // namespace

}  // namespace findep::scenarios
