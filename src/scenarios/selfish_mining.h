// Selfish-mining scenario (Eyal–Sirer baseline, §I "majority is not
// enough"): one attacker hashrate α per instance, simulated at the three
// canonical race-win fractions γ ∈ {0, 0.5, 1}. Replaces the Rng reuse
// across cells of the old bench driver — each seed gets independent
// substreams per γ.
#pragma once

#include <string>

#include "runtime/scenario.h"

namespace findep::scenarios {

class SelfishMiningScenario : public runtime::Scenario {
 public:
  struct Params {
    double alpha = 0.25;
    std::size_t rounds = 1'000'000;
  };

  explicit SelfishMiningScenario(Params params) : params_(params) {}

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] runtime::MetricRecord run(
      const runtime::RunContext& ctx) const override;

 private:
  Params params_;
};

}  // namespace findep::scenarios
