// The PBFT scaling scenario (§IV-B overhead side of the (κ, ω)
// trade-off): one cluster size / behaviour mix per instance, swept across
// seeds by the runtime. Replaces the hand-rolled run_cluster() loop of
// the old bench driver — seeds now come exclusively from the RunContext,
// so a whole sweep is reproducible from one --seed flag.
#pragma once

#include <string>
#include <vector>

#include "bft/cluster.h"
#include "runtime/scenario.h"

namespace findep::scenarios {

class BftScalingScenario : public runtime::Scenario {
 public:
  struct Params {
    std::size_t n = 4;
    /// May be shorter than n; missing entries are honest.
    std::vector<bft::Behavior> behaviors;
    int requests = 5;
    double deadline = 240.0;
    /// Optional display label ("silent primary"); default "n=<n>".
    std::string label;
  };

  explicit BftScalingScenario(Params params);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] runtime::MetricRecord run(
      const runtime::RunContext& ctx) const override;

 private:
  Params params_;
};

}  // namespace findep::scenarios
