// The PBFT scaling scenario (§IV-B overhead side of the (κ, ω)
// trade-off): one cluster size / behaviour mix per instance, swept across
// seeds by the runtime. Replaces the hand-rolled run_cluster() loop of
// the old bench driver — seeds now come exclusively from the RunContext,
// so a whole sweep is reproducible from one --seed flag.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "bft/cluster.h"
#include "runtime/param.h"
#include "runtime/scenario.h"

namespace findep::scenarios {

class BftScalingScenario : public runtime::Scenario {
 public:
  struct Params {
    std::size_t n = 4;
    /// May be shorter than n; missing entries are honest.
    std::vector<bft::Behavior> behaviors;
    int requests = 5;
    /// Primary-side batching: requests agreed per consensus instance.
    std::size_t batch_size = 1;
    /// Seconds a partial batch may wait before the primary cuts it.
    double batch_timeout = 0.05;
    /// Client arrival rate in requests/second; 0 = all at t = 0.
    double offered_load = 0.0;
    double deadline = 240.0;
    /// Optional display label ("silent primary"); default "n=<n>".
    std::string label;
  };

  /// The shared label convention for grid-built instances: "n=<n>"
  /// plus " <mix>" / " b=<batch>" / " r=<requests>" / " load=<rate>"
  /// suffixes only for non-default values — so a bft_batching instance
  /// dialed back to the defaults renders *byte-identically* to the
  /// equivalent bft_scaling instance (the CI no-batching invariant).
  [[nodiscard]] static std::string grid_label(std::size_t n,
                                              const std::string& mix,
                                              std::size_t batch_size,
                                              int requests,
                                              double offered_load);

  /// Shared factory for the bft_scaling / bft_batching registrations.
  [[nodiscard]] static std::unique_ptr<runtime::Scenario> from_params(
      const runtime::ParamSet& p, const std::string& mix);

  explicit BftScalingScenario(Params params);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] runtime::MetricRecord run(
      const runtime::RunContext& ctx) const override;

 private:
  Params params_;
};

}  // namespace findep::scenarios
