// The PBFT scaling scenario (§IV-B overhead side of the (κ, ω)
// trade-off): one cluster size / behaviour mix per instance, swept across
// seeds by the runtime. Replaces the hand-rolled run_cluster() loop of
// the old bench driver — seeds now come exclusively from the RunContext,
// so a whole sweep is reproducible from one --seed flag.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "bft/cluster.h"
#include "crypto/cost.h"
#include "runtime/param.h"
#include "runtime/scenario.h"

namespace findep::scenarios {

class BftScalingScenario : public runtime::Scenario {
 public:
  struct Params {
    std::size_t n = 4;
    /// May be shorter than n; missing entries are honest.
    std::vector<bft::Behavior> behaviors;
    int requests = 5;
    /// Primary-side batching: requests agreed per consensus instance.
    std::size_t batch_size = 1;
    /// Seconds a partial batch may wait before the primary cuts it.
    double batch_timeout = 0.05;
    /// Client arrival rate in requests/second; 0 = all at t = 0.
    double offered_load = 0.0;
    double deadline = 240.0;
    /// Liveness timers, passed through to ReplicaOptions. The modeled
    /// lane parks them high: a single-core replica grinding through a
    /// large verify backlog is exactly what the worker sweep measures,
    /// and the historical 1s timeout (tuned for zero-cost crypto) would
    /// view-change it mid-measurement.
    double request_timeout = 1.0;
    double view_change_timeout = 1.5;
    /// Modeled crypto cost (the `crypto` axis). The default free model
    /// keeps the instance bit-identical to historical output; a non-free
    /// model charges sign/verify time and emits extra metrics
    /// (committed_requests, verify_tasks, verify_dropped_stale).
    crypto::CostModel cost_model{};
    /// Modeled verification cores per replica (the `workers` axis; only
    /// meaningful with a non-free cost model).
    std::size_t workers = 1;
    /// Ordering protocol every replica runs (the `protocol` axis).
    replication::Protocol protocol = replication::Protocol::kPbft;
    /// True when the instance came from a grid that spells the protocol
    /// out. Gates the commit-latency percentile metrics so every record
    /// from a legacy (protocol-less) grid stays byte-identical to
    /// historical output.
    bool protocol_axis = false;
    /// Optional display label ("silent primary"); default "n=<n>".
    std::string label;
  };

  /// The shared label convention for grid-built instances: "n=<n>"
  /// plus " <mix>" / " b=<batch>" / " r=<requests>" / " load=<rate>" /
  /// " modeled w=<workers>" suffixes only for non-default values — so a
  /// bft_batching instance dialed back to the defaults renders
  /// *byte-identically* to the equivalent bft_scaling instance (the CI
  /// no-batching invariant). `protocol` is empty for legacy grids; when a
  /// grid carries the protocol axis the label ends in " proto=<name>"
  /// (always last, so CI end-of-line anchors on legacy labels never match
  /// a protocol cell).
  [[nodiscard]] static std::string grid_label(std::size_t n,
                                              const std::string& mix,
                                              std::size_t batch_size,
                                              int requests,
                                              double offered_load,
                                              const std::string& crypto,
                                              std::size_t workers,
                                              const std::string& protocol);

  /// Shared factory for the bft_scaling / bft_batching registrations.
  [[nodiscard]] static std::unique_ptr<runtime::Scenario> from_params(
      const runtime::ParamSet& p, const std::string& mix);

  explicit BftScalingScenario(Params params);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] runtime::MetricRecord run(
      const runtime::RunContext& ctx) const override;

 private:
  Params params_;
};

}  // namespace findep::scenarios
