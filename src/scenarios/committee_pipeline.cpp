#include "scenarios/committee_pipeline.h"

#include <memory>
#include <stdexcept>
#include <vector>

#include "attest/authority.h"
#include "attest/registry.h"
#include "bft/cluster.h"
#include "committee/diversity_aware.h"
#include "committee/sortition.h"
#include "config/sampler.h"
#include "diversity/metrics.h"
#include "faults/injector.h"
#include "runtime/registry.h"
#include "support/assert.h"
#include "support/table.h"

namespace findep::scenarios {

CommitteePipelineScenario::CommitteePipelineScenario(Params params)
    : params_(params) {
  FINDEP_REQUIRE(params_.participants >= 8);
  FINDEP_REQUIRE(params_.expected_committee >= 4.0);
  FINDEP_REQUIRE(params_.per_config_cap > 0.0 &&
                 params_.per_config_cap <= 1.0);
  FINDEP_REQUIRE(params_.requests > 0);
}

std::string CommitteePipelineScenario::name() const {
  return "committee_pipeline/cap=" +
         support::Table::format_cell(params_.per_config_cap) +
         " n=" + std::to_string(params_.participants);
}

runtime::MetricRecord CommitteePipelineScenario::run(
    const runtime::RunContext& ctx) const {
  // 1. Permissionless population with skewed software choices, all
  //    TEE-capable; everyone attests to a registry.
  crypto::KeyRegistry keys;
  support::Rng rng(ctx.seed);
  const config::ComponentCatalog catalog = config::standard_catalog();
  attest::AttestationAuthority authority(keys, rng);
  attest::AttestationRegistry attestation(keys, authority.root_key());
  config::ConfigurationSampler sampler(
      catalog, config::SamplerOptions{.zipf_exponent = params_.zipf_exponent,
                                      .attestable_fraction = 1.0});

  committee::StakeRegistry stake;
  std::vector<crypto::KeyPair> participant_keys;
  std::vector<attest::PlatformModule> platforms;
  platforms.reserve(params_.participants);
  for (std::size_t i = 0; i < params_.participants; ++i) {
    const auto cfg = sampler.sample(rng);
    const auto hw = cfg.component(config::ComponentKind::kTrustedHardware);
    platforms.emplace_back(keys, rng, authority, *hw, cfg);
    if (!attestation.admit(platforms.back().quote(attestation.challenge()),
                           1.0)) {
      throw std::runtime_error("attestation failed for participant " +
                               std::to_string(i));
    }
    participant_keys.push_back(
        crypto::KeyPair::derive(support::mix64(ctx.seed) + i));
    keys.enroll(participant_keys.back());
    stake.add("participant-" + std::to_string(i), rng.uniform(1.0, 4.0),
              cfg, true, participant_keys.back().public_key());
  }

  // 2. Sortition proposes candidates; the diversity policy forms the
  //    committee under the per-configuration cap.
  committee::Sortition sortition(stake, params_.expected_committee);
  const committee::SortitionResult seats =
      sortition.select(/*round=*/1, participant_keys);
  std::vector<committee::ParticipantId> candidates;
  for (const auto& seat : seats.seats) candidates.push_back(seat.participant);
  committee::SelectionPolicy policy;
  policy.per_config_cap = params_.per_config_cap;
  const committee::Committee formed =
      committee::form_committee(stake, candidates, policy);
  if (formed.members.size() < 4) {
    throw std::runtime_error("committee too small for BFT (" +
                             std::to_string(formed.members.size()) + ")");
  }

  // 3. Weighted PBFT under the worst single *configuration* fault — the
  //    failure unit the cap provably bounds.
  std::vector<diversity::ReplicaRecord> committee_population;
  std::vector<double> weights;
  for (const auto& member : formed.members) {
    committee_population.push_back(diversity::ReplicaRecord{
        stake.get(member.participant).configuration, member.weight, true});
    weights.push_back(member.weight);
  }
  const diversity::ConfigDistribution committee_dist =
      diversity::DiversityAnalyzer::distribution_of(committee_population);
  const auto worst_config = committee_dist.sorted_by_power().front();
  std::vector<bft::Behavior> behaviors(weights.size(),
                                       bft::Behavior::kHonest);
  double config_fault_power = 0.0;
  for (std::size_t i = 0; i < committee_population.size(); ++i) {
    if (committee_population[i].configuration.digest() == worst_config.id) {
      behaviors[i] = bft::Behavior::kSilent;
      config_fault_power += committee_population[i].power;
    }
  }
  bft::ClusterOptions cluster_options;
  cluster_options.seed = support::mix64(ctx.seed ^ 0xc0117e);
  bft::BftCluster cluster(weights, cluster_options, behaviors);
  for (int i = 0; i < params_.requests; ++i) cluster.submit();
  const bool live = cluster.run_until_executed(
      static_cast<std::size_t>(params_.requests), 120.0);

  // 4. The residual the paper warns about: the worst single *component*
  //    shared across distinct configurations.
  faults::FaultInjector injector(committee_population);
  const faults::CompromiseResult component_fault =
      injector.worst_case_components(1);

  // The §V claim this pipeline exists to demonstrate: under the worst
  // single configuration fault the capped committee stays live and
  // consistent. Failing it is an error (non-zero suite exit, red CI
  // smoke), exactly as the old example's exit code asserted.
  if (!live || !cluster.logs_consistent()) {
    throw std::runtime_error(
        std::string("consensus failed under the worst configuration "
                    "fault: ") +
        (live ? "" : "stalled ") +
        (cluster.logs_consistent() ? "" : "logs diverged"));
  }

  runtime::MetricRecord metrics;
  metrics.set("committee_size", static_cast<double>(formed.members.size()));
  metrics.set("entropy_bits", formed.entropy_bits);
  metrics.set("admitted_power_pct", formed.admitted_fraction * 100.0);
  metrics.set("faults_over_third",
              static_cast<double>(formed.bft.min_faults));
  metrics.set("config_fault_power_pct",
              config_fault_power / formed.total_weight * 100.0);
  metrics.set("consensus_live", live ? 1.0 : 0.0);
  metrics.set("logs_consistent", cluster.logs_consistent() ? 1.0 : 0.0);
  metrics.set("residual_component_pct",
              component_fault.compromised_fraction * 100.0);
  return metrics;
}

namespace {

const runtime::ScenarioRegistration kCommitteePipeline{{
    .name = "committee_pipeline",
    .description = "§V end to end: attest → sortition → capped committee "
                   "→ weighted PBFT under the worst configuration fault",
    .grids = {runtime::ParamGrid{
        {"cap", {0.25}},
        {"participants", {40}},
    }},
    .factory =
        [](const runtime::ParamSet& p) -> std::unique_ptr<runtime::Scenario> {
      return std::make_unique<CommitteePipelineScenario>(
          CommitteePipelineScenario::Params{
              .participants = p.get_size("participants"),
              .per_config_cap = p.get_double("cap")});
    },
}};

}  // namespace

}  // namespace findep::scenarios
