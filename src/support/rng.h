// Deterministic random-number generation for simulations.
//
// All stochastic components in findep (network latency, mining arrivals,
// vulnerability sampling, sortition) draw from an explicitly-seeded `Rng`
// so that every experiment is reproducible from its seed. The generator is
// xoshiro256++ seeded through splitmix64, which is fast, has a 2^256-1
// period, and passes BigCrush — more than adequate for discrete-event
// simulation (crypto-grade randomness is NOT provided here; see
// crypto/keys.h for key material, which is likewise simulation-grade).
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

namespace findep::support {

/// splitmix64 step; used for seeding and for cheap stateless hashing of
/// 64-bit values (e.g. deriving per-node seeds from a master seed).
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// Stateless mix of a single 64-bit value (one splitmix64 round).
[[nodiscard]] std::uint64_t mix64(std::uint64_t x) noexcept;

/// xoshiro256++ engine. Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 64-bit state words from `seed` via splitmix64.
  explicit Rng(std::uint64_t seed = 0xfeedface12345678ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept;

  /// Derives an independent child generator; `stream` distinguishes
  /// siblings derived from the same parent.
  [[nodiscard]] Rng fork(std::uint64_t stream) noexcept;

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() noexcept;

  /// Uniform double in [lo, hi). Requires lo <= hi.
  [[nodiscard]] double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0. Uses rejection sampling so
  /// the result is exactly uniform.
  [[nodiscard]] std::uint64_t below(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  [[nodiscard]] std::int64_t between(std::int64_t lo, std::int64_t hi);

  /// Bernoulli trial with success probability p in [0, 1].
  [[nodiscard]] bool chance(double p);

  /// Exponential variate with the given rate (mean 1/rate). Requires
  /// rate > 0. Used for Poisson-process inter-arrival times (mining).
  [[nodiscard]] double exponential(double rate);

  /// Normal variate (Box–Muller, no state cached).
  [[nodiscard]] double normal(double mean, double stddev);

  /// Poisson variate (Knuth for small mean, normal approximation above 64).
  [[nodiscard]] std::uint64_t poisson(double mean);

  /// Samples an index in [0, weights.size()) with probability proportional
  /// to weights[i]. Requires at least one strictly positive weight and no
  /// negative weights.
  [[nodiscard]] std::size_t categorical(std::span<const double> weights);

  /// Zipf-distributed rank in [0, n) with exponent s >= 0 (s = 0 is
  /// uniform). Models "monoculture" popularity skew of software components.
  [[nodiscard]] std::size_t zipf(std::size_t n, double s);

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& values) {
    if (values.size() < 2) return;
    for (std::size_t i = values.size() - 1; i > 0; --i) {
      using std::swap;
      swap(values[i], values[below(i + 1)]);
    }
  }

  /// k distinct indices sampled uniformly from [0, n). Requires k <= n.
  [[nodiscard]] std::vector<std::size_t> sample_indices(std::size_t n,
                                                        std::size_t k);

 private:
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace findep::support
