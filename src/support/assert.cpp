#include "support/assert.h"

#include <sstream>

namespace findep::support {

namespace {
std::string format_message(const char* kind, const char* expr,
                           const std::source_location& loc,
                           const std::string& msg) {
  std::ostringstream out;
  out << loc.file_name() << ':' << loc.line() << " [" << loc.function_name()
      << "] " << kind << " failed: " << expr;
  if (!msg.empty()) {
    out << " — " << msg;
  }
  return out.str();
}
}  // namespace

ContractViolation::ContractViolation(const char* kind, const char* expr,
                                     const std::source_location& loc,
                                     const std::string& msg)
    : std::logic_error(format_message(kind, expr, loc, msg)),
      kind_(kind),
      expr_(expr) {}

namespace detail {
void fail_contract(const char* kind, const char* expr,
                   const std::source_location& loc, const std::string& msg) {
  throw ContractViolation(kind, expr, loc, msg);
}
}  // namespace detail

}  // namespace findep::support
