// Contract-checking support for the findep libraries.
//
// The C++ Core Guidelines (I.6, I.8) recommend expressing preconditions and
// postconditions explicitly. We check contracts in every build type and
// raise `ContractViolation` so that both production code and the test suite
// observe violations deterministically (aborting inside a discrete-event
// simulation would lose the event trace that explains the failure).
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>

namespace findep::support {

/// Thrown when a FINDEP_REQUIRE / FINDEP_ENSURE / FINDEP_ASSERT contract
/// fails. Carries the failing expression and source location.
class ContractViolation : public std::logic_error {
 public:
  ContractViolation(const char* kind, const char* expr,
                    const std::source_location& loc, const std::string& msg);

  [[nodiscard]] const char* kind() const noexcept { return kind_; }
  [[nodiscard]] const char* expression() const noexcept { return expr_; }

 private:
  const char* kind_;
  const char* expr_;
};

namespace detail {
[[noreturn]] void fail_contract(const char* kind, const char* expr,
                                const std::source_location& loc,
                                const std::string& msg);
}  // namespace detail

}  // namespace findep::support

/// Precondition check: argument/state validation at function entry.
#define FINDEP_REQUIRE(expr)                                              \
  do {                                                                    \
    if (!(expr)) {                                                        \
      ::findep::support::detail::fail_contract(                           \
          "precondition", #expr, std::source_location::current(), "");    \
    }                                                                     \
  } while (false)

/// Precondition check with an explanatory message.
#define FINDEP_REQUIRE_MSG(expr, msg)                                     \
  do {                                                                    \
    if (!(expr)) {                                                        \
      ::findep::support::detail::fail_contract(                           \
          "precondition", #expr, std::source_location::current(), (msg)); \
    }                                                                     \
  } while (false)

/// Postcondition check: result validation before returning.
#define FINDEP_ENSURE(expr)                                               \
  do {                                                                    \
    if (!(expr)) {                                                        \
      ::findep::support::detail::fail_contract(                           \
          "postcondition", #expr, std::source_location::current(), "");   \
    }                                                                     \
  } while (false)

/// Internal-invariant check.
#define FINDEP_ASSERT(expr)                                               \
  do {                                                                    \
    if (!(expr)) {                                                        \
      ::findep::support::detail::fail_contract(                           \
          "invariant", #expr, std::source_location::current(), "");       \
    }                                                                     \
  } while (false)
