#include "support/rng.h"

#include <bit>
#include <cmath>
#include <numeric>

#include "support/assert.h"

namespace findep::support {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t mix64(std::uint64_t x) noexcept { return splitmix64(x); }

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t s = seed;
  for (auto& word : state_) {
    word = splitmix64(s);
  }
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result =
      std::rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = std::rotl(state_[3], 45);
  return result;
}

Rng Rng::fork(std::uint64_t stream) noexcept {
  // Mixing the parent's next output with the stream id yields streams that
  // are independent for simulation purposes.
  return Rng{mix64((*this)() ^ mix64(stream ^ 0xa02bdbf7bb3c0a7ULL))};
}

double Rng::uniform() noexcept {
  // 53 top bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  FINDEP_REQUIRE(lo <= hi);
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::below(std::uint64_t n) {
  FINDEP_REQUIRE(n > 0);
  // Lemire-style rejection to avoid modulo bias.
  const std::uint64_t threshold = (0 - n) % n;
  for (;;) {
    const std::uint64_t r = (*this)();
    if (r >= threshold) return r % n;
  }
}

std::int64_t Rng::between(std::int64_t lo, std::int64_t hi) {
  FINDEP_REQUIRE(lo <= hi);
  const auto span =
      static_cast<std::uint64_t>(hi - lo) + 1;  // hi-lo < 2^63, safe
  return lo + static_cast<std::int64_t>(span == 0 ? (*this)() : below(span));
}

bool Rng::chance(double p) {
  FINDEP_REQUIRE(p >= 0.0 && p <= 1.0);
  return uniform() < p;
}

double Rng::exponential(double rate) {
  FINDEP_REQUIRE(rate > 0.0);
  // uniform() can return 0; 1-u is in (0, 1].
  return -std::log(1.0 - uniform()) / rate;
}

double Rng::normal(double mean, double stddev) {
  FINDEP_REQUIRE(stddev >= 0.0);
  const double u1 = 1.0 - uniform();
  const double u2 = uniform();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(6.283185307179586 * u2);
}

std::uint64_t Rng::poisson(double mean) {
  FINDEP_REQUIRE(mean >= 0.0);
  if (mean == 0.0) return 0;
  if (mean > 64.0) {
    const double approx = std::round(normal(mean, std::sqrt(mean)));
    return approx <= 0.0 ? 0 : static_cast<std::uint64_t>(approx);
  }
  const double limit = std::exp(-mean);
  std::uint64_t k = 0;
  double product = uniform();
  while (product > limit) {
    ++k;
    product *= uniform();
  }
  return k;
}

std::size_t Rng::categorical(std::span<const double> weights) {
  FINDEP_REQUIRE(!weights.empty());
  double total = 0.0;
  for (const double w : weights) {
    FINDEP_REQUIRE_MSG(w >= 0.0, "categorical weights must be non-negative");
    total += w;
  }
  FINDEP_REQUIRE_MSG(total > 0.0, "categorical needs a positive weight");
  double target = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  // Floating-point underrun: fall back to the last positive weight.
  for (std::size_t i = weights.size(); i-- > 0;) {
    if (weights[i] > 0.0) return i;
  }
  return weights.size() - 1;
}

std::size_t Rng::zipf(std::size_t n, double s) {
  FINDEP_REQUIRE(n > 0);
  FINDEP_REQUIRE(s >= 0.0);
  if (n == 1) return 0;
  // Direct inversion over the normalized harmonic weights. n is small in
  // all findep uses (component catalogs), so O(n) per draw is fine.
  double norm = 0.0;
  for (std::size_t rank = 1; rank <= n; ++rank) {
    norm += 1.0 / std::pow(static_cast<double>(rank), s);
  }
  double target = uniform() * norm;
  for (std::size_t rank = 1; rank <= n; ++rank) {
    target -= 1.0 / std::pow(static_cast<double>(rank), s);
    if (target < 0.0) return rank - 1;
  }
  return n - 1;
}

std::vector<std::size_t> Rng::sample_indices(std::size_t n, std::size_t k) {
  FINDEP_REQUIRE(k <= n);
  // Floyd's algorithm: O(k) expected insertions, no O(n) scratch.
  std::vector<std::size_t> chosen;
  chosen.reserve(k);
  for (std::size_t j = n - k; j < n; ++j) {
    const std::size_t t = below(j + 1);
    bool already = false;
    for (const std::size_t c : chosen) {
      if (c == t) {
        already = true;
        break;
      }
    }
    chosen.push_back(already ? j : t);
  }
  return chosen;
}

}  // namespace findep::support
