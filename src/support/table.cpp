#include "support/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "support/assert.h"

namespace findep::support {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  FINDEP_REQUIRE(!headers_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  FINDEP_REQUIRE_MSG(cells.size() == headers_.size(),
                     "row width must match header width");
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& out) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) out << "  ";
      out << std::setw(static_cast<int>(widths[c])) << row[c];
    }
    out << '\n';
  };
  emit(headers_);
  std::size_t rule = 0;
  for (const std::size_t w : widths) rule += w + 2;
  out << std::string(rule > 2 ? rule - 2 : rule, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

void Table::print_csv(std::ostream& out) const {
  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) out << ',';
      out << row[c];
    }
    out << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

std::string Table::format_cell(const std::string& v) { return v; }
std::string Table::format_cell(const char* v) { return v; }

std::string Table::format_cell(double v) {
  std::ostringstream out;
  out << std::setprecision(6) << v;
  return out.str();
}

void print_banner(std::ostream& out, const std::string& title) {
  out << "\n== " << title << " ==\n";
}

}  // namespace findep::support
