#include "support/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "support/assert.h"

namespace findep::support {

void RunningStats::add(double x) noexcept {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const noexcept {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double percentile(std::span<const double> values, double q) {
  FINDEP_REQUIRE(!values.empty());
  FINDEP_REQUIRE(q >= 0.0 && q <= 1.0);
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lower = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lower);
  if (lower + 1 >= sorted.size()) return sorted.back();
  return sorted[lower] * (1.0 - frac) + sorted[lower + 1] * frac;
}

double mean_of(std::span<const double> values) {
  FINDEP_REQUIRE(!values.empty());
  double sum = 0.0;
  for (const double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  FINDEP_REQUIRE(lo < hi);
  FINDEP_REQUIRE(bins > 0);
}

void Histogram::add(double x) noexcept {
  const double span = hi_ - lo_;
  auto idx = static_cast<std::ptrdiff_t>(
      (x - lo_) / span * static_cast<double>(counts_.size()));
  idx = std::clamp<std::ptrdiff_t>(
      idx, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

std::uint64_t Histogram::count_in(std::size_t bucket) const {
  FINDEP_REQUIRE(bucket < counts_.size());
  return counts_[bucket];
}

double Histogram::bucket_low(std::size_t bucket) const {
  FINDEP_REQUIRE(bucket < counts_.size());
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(bucket);
}

std::string Histogram::to_string() const {
  std::ostringstream out;
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (i != 0) out << ' ';
    out << '[' << bucket_low(i) << ',' << (bucket_low(i) + width)
        << "):" << counts_[i];
  }
  return out.str();
}

}  // namespace findep::support
