// Aligned table rendering for the benchmark harness. Every bench binary
// regenerates a paper table/figure as rows printed through this class, so
// the output format is uniform and machine-extractable (optional CSV mode).
#pragma once

#include <concepts>
#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace findep::support {

/// Collects rows of stringified cells and renders them either as an
/// aligned, human-readable table or as CSV.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends a row; the cell count must equal the header count.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats each value with `format_cell`.
  template <typename... Ts>
  void add(const Ts&... values) {
    add_row({format_cell(values)...});
  }

  [[nodiscard]] std::size_t row_count() const noexcept {
    return rows_.size();
  }

  /// Renders with space-padded, right-aligned columns.
  void print(std::ostream& out) const;

  /// Renders as CSV (cell content never needs quoting in our usage).
  void print_csv(std::ostream& out) const;

  [[nodiscard]] static std::string format_cell(const std::string& v);
  [[nodiscard]] static std::string format_cell(const char* v);
  /// Doubles are rendered with six significant digits.
  [[nodiscard]] static std::string format_cell(double v);
  template <std::integral T>
  [[nodiscard]] static std::string format_cell(T v) {
    return std::to_string(v);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints a section banner ("== title ==") used to delimit experiments in
/// bench output.
void print_banner(std::ostream& out, const std::string& title);

}  // namespace findep::support
