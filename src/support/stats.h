// Streaming and batch statistics used by the benchmark harness and the
// Monte-Carlo experiments (attack-success rates, latency percentiles).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace findep::support {

/// Welford online mean/variance accumulator.
class RunningStats {
 public:
  void add(double x) noexcept;
  void merge(const RunningStats& other) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Percentile of a sample using linear interpolation between order
/// statistics. `q` in [0, 1]. Requires a non-empty sample. Copies & sorts.
[[nodiscard]] double percentile(std::span<const double> values, double q);

/// Arithmetic mean of a non-empty sample.
[[nodiscard]] double mean_of(std::span<const double> values);

/// Fixed-width histogram over [lo, hi) with `bins` buckets; values outside
/// the range are clamped into the first/last bucket.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;
  [[nodiscard]] std::size_t bucket_count() const noexcept {
    return counts_.size();
  }
  [[nodiscard]] std::uint64_t count_in(std::size_t bucket) const;
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] double bucket_low(std::size_t bucket) const;

  /// Compact single-line rendering ("[0.0,0.1):12 [0.1,0.2):3 ...").
  [[nodiscard]] std::string to_string() const;

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace findep::support
