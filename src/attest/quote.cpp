#include "attest/quote.h"

#include "support/assert.h"
#include "support/rng.h"

namespace findep::attest {

ConfigCommitment ConfigCommitment::commit(
    const config::ConfigurationId& config_digest,
    const crypto::Digest& salt) {
  return ConfigCommitment{crypto::Sha256{}
                              .update("findep/config-commit/v1")
                              .update(config_digest.bytes)
                              .update(salt.bytes)
                              .finish()};
}

PlatformModule::PlatformModule(crypto::KeyRegistry& registry,
                               support::Rng& rng,
                               const AttestationAuthority& authority,
                               config::ComponentId hardware,
                               config::ReplicaConfiguration configuration)
    : platform_keys_(crypto::KeyPair::generate(rng)),
      vote_keys_(crypto::KeyPair::generate(rng)),
      endorsement_(authority.endorse(platform_keys_.public_key(), hardware)),
      configuration_(std::move(configuration)) {
  FINDEP_REQUIRE_MSG(
      configuration_.component(config::ComponentKind::kTrustedHardware) ==
          std::optional<config::ComponentId>(hardware),
      "platform hardware must match the configuration's TEE component");
  registry.enroll(platform_keys_);
  registry.enroll(vote_keys_);
  for (std::size_t i = 0; i < salt_.bytes.size(); i += 8) {
    const std::uint64_t word = rng();
    for (std::size_t j = 0; j < 8; ++j) {
      salt_.bytes[i + j] = static_cast<std::uint8_t>(word >> (8 * j));
    }
  }
}

Quote PlatformModule::quote(const crypto::Digest& nonce) const {
  Quote q;
  q.platform_key = platform_keys_.public_key();
  q.endorsement = endorsement_;
  q.vote_key = vote_keys_.public_key();
  q.commitment = ConfigCommitment::commit(configuration_.digest(), salt_);
  q.nonce = nonce;
  q.signature = platform_keys_.sign(quote_message(q));
  return q;
}

CommitmentOpening PlatformModule::open_commitment() const {
  return CommitmentOpening{configuration_.digest(), salt_};
}

crypto::Digest quote_message(const Quote& q) {
  return crypto::Sha256{}
      .update("findep/quote/v1")
      .update(q.platform_key.id.bytes)
      .update(q.vote_key.id.bytes)
      .update(q.commitment.value.bytes)
      .update(q.nonce.bytes)
      .finish();
}

bool verify_quote(const crypto::KeyRegistry& registry,
                  const crypto::PublicKey& authority_root, const Quote& q,
                  const crypto::Digest& expected_nonce) {
  if (q.nonce != expected_nonce) return false;
  if (q.endorsement.platform_key != q.platform_key) return false;
  if (!AttestationAuthority::verify(registry, authority_root,
                                    q.endorsement)) {
    return false;
  }
  return registry.verify(q.platform_key, quote_message(q), q.signature);
}

bool verify_opening(const ConfigCommitment& commitment,
                    const CommitmentOpening& opening) {
  return ConfigCommitment::commit(opening.config_digest, opening.salt) ==
         commitment;
}

}  // namespace findep::attest
