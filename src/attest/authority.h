// Attestation authority — the trust anchor of the remote-attestation model
// (§III-B).
//
// Real deployments root attestation in vendor-provisioned hardware keys
// (TPM endorsement keys, SGX provisioning certificates) or in a unified
// service (Microsoft Azure Attestation, cited by the paper). We model the
// anchor as an authority that *endorses* platform keys: an endorsement is
// the authority's signature over (platform public key, trusted-hardware
// component). Everything downstream — quotes, vote-key binding, registry
// verification — builds on these endorsements.
#pragma once

#include "config/component.h"
#include "crypto/keys.h"

namespace findep::attest {

/// A vendor/authority statement that `platform_key` belongs to a genuine
/// device of type `hardware`.
struct Endorsement {
  crypto::PublicKey platform_key;
  config::ComponentId hardware;
  crypto::Signature signature;
};

/// Issues and verifies endorsements.
class AttestationAuthority {
 public:
  /// Creates an authority with a fresh root key, enrolled in `registry`.
  AttestationAuthority(crypto::KeyRegistry& registry, support::Rng& rng);

  [[nodiscard]] const crypto::PublicKey& root_key() const noexcept {
    return keys_.public_key();
  }

  /// Endorses a platform key for a trusted-hardware component.
  [[nodiscard]] Endorsement endorse(const crypto::PublicKey& platform_key,
                                    config::ComponentId hardware) const;

  /// Verifies an endorsement against this authority's root key using the
  /// given registry (any verifier can run this).
  [[nodiscard]] static bool verify(const crypto::KeyRegistry& registry,
                                   const crypto::PublicKey& root,
                                   const Endorsement& endorsement);

 private:
  crypto::KeyPair keys_;
};

}  // namespace findep::attest
