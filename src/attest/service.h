// Network endpoints for the attestation wire protocol (attest/wire.h):
// a verifier-side `RegistryService` that runs challenge–quote–admit over
// the simulated network, and the replica-side `EnrollmentClient` that
// drives a join. Together they turn the registry's configuration
// discovery (§III-B) into message-passing the experiments can meter —
// admission round-trips, bytes, and sim-time latency under churn.
#pragma once

#include <cstdint>

#include "attest/quote.h"
#include "attest/registry.h"
#include "attest/wire.h"
#include "net/network.h"

namespace findep::attest {

/// Verifier-side endpoint: attaches an AttestationRegistry to a network
/// node and serves ChallengeRequest / QuoteSubmission messages.
class RegistryService {
 public:
  RegistryService(net::SimNetwork& network, net::NodeId node,
                  AttestationRegistry& registry);

  RegistryService(const RegistryService&) = delete;
  RegistryService& operator=(const RegistryService&) = delete;

  [[nodiscard]] net::NodeId node() const noexcept { return node_; }
  [[nodiscard]] std::uint64_t challenges_issued() const noexcept {
    return challenges_issued_;
  }
  [[nodiscard]] std::uint64_t admitted() const noexcept { return admitted_; }
  [[nodiscard]] std::uint64_t rejected() const noexcept { return rejected_; }

 private:
  void on_message(const net::Message& msg);

  net::SimNetwork* network_;
  net::NodeId node_;
  AttestationRegistry* registry_;
  std::uint64_t challenges_issued_ = 0;
  std::uint64_t admitted_ = 0;
  std::uint64_t rejected_ = 0;
};

/// Replica-side endpoint: answers the service's challenge with a quote
/// from its platform module and records the admission verdict.
class EnrollmentClient {
 public:
  EnrollmentClient(net::SimNetwork& network, net::NodeId node,
                   net::NodeId service, const PlatformModule& platform,
                   diversity::VotingPower power);

  EnrollmentClient(const EnrollmentClient&) = delete;
  EnrollmentClient& operator=(const EnrollmentClient&) = delete;

  /// Kicks off the join (sends ChallengeRequest to the service).
  void enroll();

  [[nodiscard]] bool decided() const noexcept { return decided_; }
  [[nodiscard]] bool admitted() const noexcept { return admitted_; }
  /// Sim-time from enroll() to the admission decision (valid once
  /// decided()).
  [[nodiscard]] double enrollment_latency() const noexcept {
    return decided_at_ - enrolled_at_;
  }

 private:
  void on_message(const net::Message& msg);

  net::SimNetwork* network_;
  net::NodeId node_;
  net::NodeId service_;
  const PlatformModule* platform_;
  diversity::VotingPower power_;
  bool decided_ = false;
  bool admitted_ = false;
  double enrolled_at_ = 0.0;
  double decided_at_ = 0.0;
};

}  // namespace findep::attest
