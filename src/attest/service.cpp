#include "attest/service.h"

#include <type_traits>
#include <variant>

#include "support/assert.h"

namespace findep::attest {

namespace {
/// Wire-size model (bytes), mirroring the BFT layer's constants.
constexpr std::uint64_t kControlMessage = 128;
constexpr std::uint64_t kQuoteMessage = 1024;
}  // namespace

RegistryService::RegistryService(net::SimNetwork& network, net::NodeId node,
                                 AttestationRegistry& registry)
    : network_(&network), node_(node), registry_(&registry) {
  network_->attach(node_,
                   [this](const net::Message& msg) { on_message(msg); });
}

void RegistryService::on_message(const net::Message& msg) {
  const WireMessage* wire = msg.envelope.get<WireMessage>();
  if (wire == nullptr) return;  // foreign traffic
  std::visit(
      [&](const auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, ChallengeRequest>) {
          ++challenges_issued_;
          network_->send(node_, msg.from,
                         WireMessage(Challenge{registry_->challenge()}),
                         kControlMessage);
        } else if constexpr (std::is_same_v<T, QuoteSubmission>) {
          const bool ok = registry_->admit(m.quote, m.power);
          ++(ok ? admitted_ : rejected_);
          network_->send(
              node_, msg.from,
              WireMessage(AdmissionDecision{m.quote.vote_key, ok}),
              kControlMessage);
        }
        // Challenge / AdmissionDecision are verifier → replica only.
      },
      *wire);
}

EnrollmentClient::EnrollmentClient(net::SimNetwork& network, net::NodeId node,
                                   net::NodeId service,
                                   const PlatformModule& platform,
                                   diversity::VotingPower power)
    : network_(&network),
      node_(node),
      service_(service),
      platform_(&platform),
      power_(power) {
  network_->attach(node_,
                   [this](const net::Message& msg) { on_message(msg); });
}

void EnrollmentClient::enroll() {
  enrolled_at_ = network_->simulator().now();
  network_->send(node_, service_,
                 WireMessage(ChallengeRequest{platform_->vote_key()}),
                 kControlMessage);
}

void EnrollmentClient::on_message(const net::Message& msg) {
  const WireMessage* wire = msg.envelope.get<WireMessage>();
  if (wire == nullptr || msg.from != service_) return;
  std::visit(
      [&](const auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, Challenge>) {
          network_->send(
              node_, service_,
              WireMessage(QuoteSubmission{platform_->quote(m.nonce), power_}),
              kQuoteMessage);
        } else if constexpr (std::is_same_v<T, AdmissionDecision>) {
          if (m.vote_key == platform_->vote_key() && !decided_) {
            decided_ = true;
            admitted_ = m.admitted;
            decided_at_ = network_->simulator().now();
          }
        }
      },
      *wire);
}

}  // namespace findep::attest
