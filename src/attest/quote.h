// Quotes: the replica side of remote attestation.
//
// A `PlatformModule` models the TEE/TPM inside a replica. Given a verifier
// nonce it emits a `Quote` that simultaneously (Remark 3):
//  - measures the replica's configuration (as a salted *commitment*, so
//    configuration privacy is preserved against eavesdroppers — attackers
//    must not learn which replicas run a newly-vulnerable component),
//  - binds the replica's *vote key* to the measurement, proving that votes
//    signed with that key come from the attested configuration,
//  - proves freshness via the nonce.
#pragma once

#include <optional>

#include "attest/authority.h"
#include "config/replica_config.h"
#include "crypto/keys.h"

namespace findep::attest {

/// Salted commitment to a configuration digest.
struct ConfigCommitment {
  crypto::Digest value;

  bool operator==(const ConfigCommitment&) const = default;

  [[nodiscard]] static ConfigCommitment commit(
      const config::ConfigurationId& config_digest,
      const crypto::Digest& salt);
};

/// The attestation evidence a replica presents.
struct Quote {
  crypto::PublicKey platform_key;
  Endorsement endorsement;       // authority → platform key
  crypto::PublicKey vote_key;    // the key used to sign consensus votes
  ConfigCommitment commitment;   // salted configuration measurement
  crypto::Digest nonce;          // verifier challenge
  crypto::Signature signature;   // platform key over all of the above
};

/// Opening of a commitment, revealed to an authorized auditor only.
struct CommitmentOpening {
  config::ConfigurationId config_digest;
  crypto::Digest salt;
};

/// The TEE/TPM of one replica.
class PlatformModule {
 public:
  /// `hardware` must be the configuration's trusted-hardware component.
  PlatformModule(crypto::KeyRegistry& registry, support::Rng& rng,
                 const AttestationAuthority& authority,
                 config::ComponentId hardware,
                 config::ReplicaConfiguration configuration);

  [[nodiscard]] const crypto::PublicKey& platform_key() const noexcept {
    return platform_keys_.public_key();
  }
  [[nodiscard]] const crypto::PublicKey& vote_key() const noexcept {
    return vote_keys_.public_key();
  }
  [[nodiscard]] const config::ReplicaConfiguration& configuration()
      const noexcept {
    return configuration_;
  }

  /// Produces a fresh quote for the verifier's nonce.
  [[nodiscard]] Quote quote(const crypto::Digest& nonce) const;

  /// Reveals the commitment opening (auditor path).
  [[nodiscard]] CommitmentOpening open_commitment() const;

  /// Signs a consensus vote with the attested vote key (Remark 3: the
  /// vote demonstrably originates from the attested configuration).
  [[nodiscard]] crypto::Signature sign_vote(
      const crypto::Digest& vote) const {
    return vote_keys_.sign(vote);
  }

 private:
  crypto::KeyPair platform_keys_;
  crypto::KeyPair vote_keys_;
  Endorsement endorsement_;
  config::ReplicaConfiguration configuration_;
  crypto::Digest salt_;
};

/// Message covered by the quote signature (exposed for verifier reuse).
[[nodiscard]] crypto::Digest quote_message(const Quote& q);

/// Full verifier check: endorsement chain, quote signature, nonce match.
[[nodiscard]] bool verify_quote(const crypto::KeyRegistry& registry,
                                const crypto::PublicKey& authority_root,
                                const Quote& q,
                                const crypto::Digest& expected_nonce);

/// Auditor check: the opening matches the commitment.
[[nodiscard]] bool verify_opening(const ConfigCommitment& commitment,
                                  const CommitmentOpening& opening);

}  // namespace findep::attest
