// The verifier-side attestation registry: configuration discovery for
// permissionless populations (§III-B, Challenge 1).
//
// The registry runs challenge–response attestation with joining replicas,
// records (vote key → commitment, voting power), and can publish a Merkle
// root over its records so third parties can audit individual entries
// without downloading the registry. Auditors holding commitment openings
// can reconstruct the *configuration distribution* — the exact input the
// diversity core consumes — without the registry ever storing plaintext
// configurations (privacy, Remark 3).
#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "attest/quote.h"
#include "crypto/merkle.h"
#include "diversity/analyzer.h"
#include "diversity/distribution.h"
#include "support/rng.h"

namespace findep::attest {

/// One attested registry record.
struct RegistryRecord {
  crypto::PublicKey vote_key;
  ConfigCommitment commitment;
  config::ComponentId hardware;
  diversity::VotingPower power = 0.0;
};

class AttestationRegistry {
 public:
  AttestationRegistry(const crypto::KeyRegistry& keys,
                      crypto::PublicKey authority_root,
                      std::uint64_t nonce_seed = 0x5eed);

  /// Step 1: verifier issues a fresh challenge nonce for a joining replica.
  [[nodiscard]] crypto::Digest challenge();

  /// Step 2: replica answers with a quote; the registry verifies it
  /// (endorsement chain, signature, nonce freshness — each nonce is
  /// accepted once) and records the entry with the claimed voting power.
  /// Returns false (and records nothing) on any verification failure.
  bool admit(const Quote& q, diversity::VotingPower power);

  [[nodiscard]] std::size_t size() const noexcept { return records_.size(); }
  [[nodiscard]] const std::vector<RegistryRecord>& records() const noexcept {
    return records_;
  }
  [[nodiscard]] bool is_admitted(const crypto::PublicKey& vote_key) const;

  /// Merkle root over the records (for publication). Requires size() > 0.
  [[nodiscard]] crypto::Digest merkle_root() const;
  /// Inclusion proof for record `index` against merkle_root().
  [[nodiscard]] crypto::MerkleProof prove_record(std::size_t index) const;
  /// Leaf digest of a record (what the proofs commit to).
  [[nodiscard]] static crypto::Digest record_leaf(const RegistryRecord& rec);

  /// Auditor path: given openings (vote key → opening), reconstructs the
  /// configuration distribution of all records whose opening verifies.
  /// Records without a valid opening are aggregated into one correlated
  /// "unopened" configuration (worst case), mirroring TwoTierPolicy.
  [[nodiscard]] diversity::ConfigDistribution reconstruct_distribution(
      const std::unordered_map<crypto::PublicKey, CommitmentOpening>&
          openings) const;

 private:
  const crypto::KeyRegistry* keys_;
  crypto::PublicKey authority_root_;
  support::Rng nonce_rng_;
  std::unordered_map<crypto::Digest, bool> outstanding_nonces_;
  std::vector<RegistryRecord> records_;
  std::unordered_map<crypto::PublicKey, std::size_t> by_vote_key_;
};

}  // namespace findep::attest
