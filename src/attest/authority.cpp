#include "attest/authority.h"

#include "support/rng.h"

namespace findep::attest {

namespace {
crypto::Digest endorsement_message(const crypto::PublicKey& platform_key,
                                   config::ComponentId hardware) {
  return crypto::Sha256{}
      .update("findep/endorsement/v1")
      .update(platform_key.id.bytes)
      .update_u64(hardware.value)
      .finish();
}
}  // namespace

AttestationAuthority::AttestationAuthority(crypto::KeyRegistry& registry,
                                           support::Rng& rng)
    : keys_(crypto::KeyPair::generate(rng)) {
  registry.enroll(keys_);
}

Endorsement AttestationAuthority::endorse(
    const crypto::PublicKey& platform_key,
    config::ComponentId hardware) const {
  return Endorsement{platform_key, hardware,
                     keys_.sign(endorsement_message(platform_key, hardware))};
}

bool AttestationAuthority::verify(const crypto::KeyRegistry& registry,
                                  const crypto::PublicKey& root,
                                  const Endorsement& endorsement) {
  return registry.verify(
      root, endorsement_message(endorsement.platform_key, endorsement.hardware),
      endorsement.signature);
}

}  // namespace findep::attest
