#include "attest/registry.h"

#include <algorithm>

#include "support/assert.h"

namespace findep::attest {

AttestationRegistry::AttestationRegistry(const crypto::KeyRegistry& keys,
                                         crypto::PublicKey authority_root,
                                         std::uint64_t nonce_seed)
    : keys_(&keys),
      authority_root_(authority_root),
      nonce_rng_(nonce_seed) {}

crypto::Digest AttestationRegistry::challenge() {
  crypto::Digest nonce;
  for (std::size_t i = 0; i < nonce.bytes.size(); i += 8) {
    const std::uint64_t word = nonce_rng_();
    for (std::size_t j = 0; j < 8; ++j) {
      nonce.bytes[i + j] = static_cast<std::uint8_t>(word >> (8 * j));
    }
  }
  outstanding_nonces_[nonce] = true;
  return nonce;
}

bool AttestationRegistry::admit(const Quote& q,
                                diversity::VotingPower power) {
  FINDEP_REQUIRE(power >= 0.0);
  const auto nonce_it = outstanding_nonces_.find(q.nonce);
  if (nonce_it == outstanding_nonces_.end() || !nonce_it->second) {
    return false;  // unknown or replayed nonce
  }
  if (!verify_quote(*keys_, authority_root_, q, q.nonce)) {
    return false;
  }
  if (by_vote_key_.contains(q.vote_key)) {
    return false;  // duplicate enrolment for the same vote key
  }
  nonce_it->second = false;  // consume
  by_vote_key_.emplace(q.vote_key, records_.size());
  records_.push_back(RegistryRecord{q.vote_key, q.commitment,
                                    q.endorsement.hardware, power});
  return true;
}

bool AttestationRegistry::is_admitted(
    const crypto::PublicKey& vote_key) const {
  return by_vote_key_.contains(vote_key);
}

crypto::Digest AttestationRegistry::record_leaf(const RegistryRecord& rec) {
  return crypto::Sha256{}
      .update("findep/registry-record/v1")
      .update(rec.vote_key.id.bytes)
      .update(rec.commitment.value.bytes)
      .update_u64(rec.hardware.value)
      .update_u64(static_cast<std::uint64_t>(rec.power * 1e6))
      .finish();
}

crypto::Digest AttestationRegistry::merkle_root() const {
  FINDEP_REQUIRE(!records_.empty());
  std::vector<crypto::Digest> leaves;
  leaves.reserve(records_.size());
  for (const auto& rec : records_) leaves.push_back(record_leaf(rec));
  return crypto::MerkleTree(std::move(leaves)).root();
}

crypto::MerkleProof AttestationRegistry::prove_record(
    std::size_t index) const {
  FINDEP_REQUIRE(index < records_.size());
  std::vector<crypto::Digest> leaves;
  leaves.reserve(records_.size());
  for (const auto& rec : records_) leaves.push_back(record_leaf(rec));
  return crypto::MerkleTree(std::move(leaves)).prove(index);
}

diversity::ConfigDistribution AttestationRegistry::reconstruct_distribution(
    const std::unordered_map<crypto::PublicKey, CommitmentOpening>& openings)
    const {
  diversity::ConfigDistribution dist;
  double unopened_power = 0.0;
  std::size_t unopened_count = 0;
  for (const auto& rec : records_) {
    const auto it = openings.find(rec.vote_key);
    if (it != openings.end() && verify_opening(rec.commitment, it->second)) {
      dist.add(it->second.config_digest, rec.power, 1);
    } else {
      unopened_power += rec.power;
      ++unopened_count;
    }
  }
  if (unopened_power > 0.0) {
    const auto unknown_id = crypto::Sha256{}
                                .update("findep/registry-unopened/v1")
                                .finish();
    dist.add(unknown_id, unopened_power,
             std::max<std::size_t>(1, unopened_count));
  }
  return dist;
}

}  // namespace findep::attest
