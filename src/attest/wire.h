// Wire messages for network-driven attestation (§III-B): the
// challenge–quote–admit exchange between a joining replica and the
// verifier-side registry, expressed as plain data so the typed network
// envelope (net/envelope.h) can carry them. The service endpoints that
// speak this protocol live in attest/service.h.
#pragma once

#include <variant>

#include "attest/quote.h"
#include "diversity/distribution.h"

namespace findep::attest {

/// Replica → registry: "I want to join; challenge me."
struct ChallengeRequest {
  crypto::PublicKey vote_key;
};

/// Registry → replica: fresh nonce to quote over (accepted once).
struct Challenge {
  crypto::Digest nonce;
};

/// Replica → registry: the attestation evidence plus the claimed voting
/// power (the registry records the pair on successful verification).
struct QuoteSubmission {
  Quote quote;
  diversity::VotingPower power = 0.0;
};

/// Registry → replica: admission verdict for `vote_key`.
struct AdmissionDecision {
  crypto::PublicKey vote_key;
  bool admitted = false;
};

/// The attestation payload family carried by net::Envelope.
using WireMessage =
    std::variant<ChallengeRequest, Challenge, QuoteSubmission,
                 AdmissionDecision>;

}  // namespace findep::attest
