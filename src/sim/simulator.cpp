// Calendar-queue implementation. The determinism argument and the
// bucket-width policy are documented in DESIGN.md ("The event engine");
// the comments here cover only the local invariants.
//
// Structural invariants maintained between public calls (year-wrapped
// layout: every live event is linked into ring slot bucket_of(at) & mask,
// however many laps ahead that absolute bucket lies):
//   - ring slot lists are sorted by (at, seq) — a strict total order
//     because seq is unique — so a slot head is the slot minimum;
//   - the cursor never passes a *due* head (absolute bucket <= cursor),
//     so every event in a bucket strictly behind the cursor was clamped
//     into the cursor's slot at insert time and is due the moment its
//     slot is next visited;
//   - hence the first scanned slot whose head is due holds the global
//     minimum, and a full lap without a due head means every live event
//     sits in its natural slot at least one circumference ahead.
#include "sim/simulator.h"

#include <algorithm>
#include <atomic>
#include <utility>

namespace findep::sim {

namespace {

/// Calendar geometry bounds: kMinBuckets keeps tiny simulations dense,
/// kMaxBuckets caps the bucket-ends array at 1 MiB for 10k+-node sweeps
/// (the slab itself grows with pending events regardless).
constexpr std::size_t kMinBuckets = 16;
constexpr std::size_t kMaxBuckets = std::size_t{1} << 17;
/// Head-of-queue sample size for deriving the bucket width at rebuild.
constexpr std::size_t kWidthSample = 64;

/// Events executed by Simulators this process has destroyed.
std::atomic<std::uint64_t> g_events_executed{0};

std::size_t ceil_pow2(std::size_t v) {
  std::size_t n = 1;
  while (n < v) n <<= 1;
  return n;
}

}  // namespace

std::uint64_t process_events_executed() noexcept {
  return g_events_executed.load(std::memory_order_relaxed);
}

Simulator::Simulator()
    : buckets_(kMinBuckets),
      mask_(kMinBuckets - 1),
      grow_at_(2 * kMinBuckets) {}

Simulator::~Simulator() {
  g_events_executed.fetch_add(executed_, std::memory_order_relaxed);
}

std::uint32_t Simulator::grow_slab() {
  FINDEP_ASSERT(slab_.size() < kNil);
  slab_.emplace_back();
  fns_.emplace_back();
  return static_cast<std::uint32_t>(slab_.size() - 1);
}

std::uint32_t Simulator::find_next() {
  FINDEP_ASSERT(live_ != 0);
  // Shrink lazily, and only when sparseness actually hurts: a calendar
  // left oversized after a drain costs nothing unless pops are scanning
  // long runs of empty buckets. (Eager live-count shrinking would
  // oscillate on burst-drain workloads like broadcast fan-out.)
  if (scan_debt_ > 4 * buckets_.size() && buckets_.size() > kMinBuckets &&
      live_ * 4 < buckets_.size()) {
    rebuild();
  }
  std::uint64_t scanned = 0;
  for (;;) {
    const std::uint32_t head =
        buckets_[static_cast<std::size_t>(cur_bucket_ & mask_)].head;
    // A head is due only when its absolute bucket has been reached —
    // year-wrapped slots also hold events a lap (or more) ahead.
    if (head != kNil && bucket_of(slab_[head].at) <= cur_bucket_) {
      return head;
    }
    if (scanned++ > mask_) break;
    ++cur_bucket_;
    ++scan_debt_;
  }
  // A full lap without a due head: no clamped events exist (a clamped
  // event is due the moment its slot is visited), so every live event
  // sits in its natural slot at least one circumference ahead. Jump the
  // cursor straight to the earliest head instead of scanning.
  std::uint32_t best = kNil;
  for (const BucketEnds& ends : buckets_) {
    if (ends.head == kNil) continue;
    if (best == kNil) {
      best = ends.head;
      continue;
    }
    const Slot& a = slab_[ends.head];
    const Slot& b = slab_[best];
    if (a.at < b.at || (a.at == b.at && a.seq < b.seq)) best = ends.head;
  }
  FINDEP_ASSERT(best != kNil);
  cur_bucket_ = bucket_of(slab_[best].at);
  return best;
}

InlineCallback Simulator::extract(std::uint32_t idx) noexcept {
  Slot& s = slab_[idx];
  unlink(ring_of(s), idx);
  --live_;
  ++s.gen;
  InlineCallback fn = std::move(fns_[idx]);
  set_state(s, kFree);
  s.next = free_head_;
  free_head_ = idx;
  return fn;
}

void Simulator::execute(std::uint32_t idx) {
  FINDEP_ASSERT(slab_[idx].at >= now_);
  now_ = slab_[idx].at;
  // The slot is retired *before* the callback runs: a re-entrant
  // schedule_at may recycle it (and may grow the slab).
  InlineCallback fn = extract(idx);
  ++executed_;
  fn();
}

EventId Simulator::schedule_at(Time at, Callback fn) {
  FINDEP_REQUIRE_MSG(at >= now_, "cannot schedule into the past");
  FINDEP_REQUIRE(fn != nullptr);
  const std::uint32_t idx = acquire_slot();
  fns_[idx] = std::move(fn);
  return commit_schedule(idx, at);
}

EventId Simulator::schedule_after(Time delay, Callback fn) {
  FINDEP_REQUIRE(delay >= 0.0);
  return schedule_at(now_ + delay, std::move(fn));
}

void Simulator::step() {
  FINDEP_REQUIRE(has_pending());
  execute(find_next());
}

std::uint64_t Simulator::run(std::uint64_t max_events) {
  std::uint64_t executed = 0;
  while (live_ != 0 && executed < max_events) {
    execute(find_next());
    ++executed;
  }
  return executed;
}

std::uint64_t Simulator::run_until(Time deadline) {
  FINDEP_REQUIRE(deadline >= now_);
  std::uint64_t executed = 0;
  while (live_ != 0) {
    const std::uint64_t cursor_before = cur_bucket_;
    const std::uint32_t idx = find_next();
    if (slab_[idx].at > deadline) {
      // Rewind the scan so pre-deadline-horizon inserts keep landing in
      // their natural slots instead of clamping into a far cursor slot.
      // Safe bounds: never behind where the cursor has organically been
      // (clamped slots stay reachable) and never past the probed head's
      // bucket (which stays the scan minimum).
      const std::uint64_t resume =
          std::max(cursor_before, bucket_of(deadline));
      if (resume < cur_bucket_) cur_bucket_ = resume;
      break;
    }
    execute(idx);
    ++executed;
  }
  now_ = deadline;
  return executed;
}

void Simulator::maybe_rebuild() {
  const std::size_t n = buckets_.size();
  const bool grow = live_ > 2 * n && n < kMaxBuckets;
  // Re-width requests are rate-limited so a distribution the calendar
  // cannot split (e.g. sub-resolution timestamp spreads) degrades to
  // bounded walks instead of a rebuild per insert. Shrinking is handled
  // scan-driven in find_next().
  const bool rewidth =
      rebuild_pending_ &&
      next_seq_ - last_rebuild_seq_ > kWalkLimit + live_ / 8;
  if (grow || rewidth) rebuild();
}

void Simulator::rebuild() {
  ++rebuilds_;
  rebuild_pending_ = false;
  scan_debt_ = 0;
  last_rebuild_seq_ = next_seq_;

  std::vector<std::uint32_t> live;
  live.reserve(live_);
  for (std::uint32_t idx = 0;
       idx < static_cast<std::uint32_t>(slab_.size()); ++idx) {
    if (state_of(slab_[idx]) == kBucket) live.push_back(idx);
  }
  FINDEP_ASSERT(live.size() == live_);

  std::sort(live.begin(), live.end(),
            [this](std::uint32_t a, std::uint32_t b) {
              const Slot& sa = slab_[a];
              const Slot& sb = slab_[b];
              if (sa.at != sb.at) return sa.at < sb.at;
              return sa.seq < sb.seq;
            });

  // Width policy: twice the mean gap across the head-of-queue sample, so
  // a typical bucket holds a couple of soon-due events even when the full
  // horizon is wildly skewed (10k far-future mining timers vs. dense
  // near-term gossip deliveries). Falls back to the full span when the
  // head sample is all ties, and keeps the current width when every
  // timestamp is identical (the calendar cannot split ties anyway).
  if (live.size() >= 2) {
    const std::size_t k = std::min(kWidthSample, live.size());
    const Time first = slab_[live.front()].at;
    double span = slab_[live[k - 1]].at - first;
    std::size_t gaps = k - 1;
    if (span <= 0.0) {
      span = slab_[live.back()].at - first;
      gaps = live.size() - 1;
    }
    if (span > 0.0) {
      width_ =
          std::clamp(2.0 * span / static_cast<double>(gaps), 1e-9, 1e15);
      inv_width_ = 1.0 / width_;
    }
  }

  const std::size_t n =
      std::clamp(ceil_pow2(live.size()), kMinBuckets, kMaxBuckets);
  buckets_.assign(n, BucketEnds{});
  mask_ = n - 1;
  grow_at_ = n < kMaxBuckets ? 2 * n : SIZE_MAX;
  cur_bucket_ = bucket_of(live.empty() ? now_ : slab_[live.front()].at);
  // Sorted re-placement makes every bucket link a tail append (within a
  // slot, later laps arrive after earlier ones). Callbacks never move:
  // only the 32-byte key records are re-linked.
  for (const std::uint32_t idx : live) place(idx);
}

Simulator::EngineStats Simulator::engine_stats() const noexcept {
  EngineStats st;
  st.slab_slots = slab_.size();
  for (std::uint32_t i = free_head_; i != kNil; i = slab_[i].next) {
    ++st.free_slots;
  }
  st.buckets = buckets_.size();
  st.bucket_width = width_;
  st.rebuilds = rebuilds_;
  return st;
}

}  // namespace findep::sim
