#include "sim/simulator.h"

#include <utility>

namespace findep::sim {

EventId Simulator::schedule_at(Time at, Callback fn) {
  FINDEP_REQUIRE_MSG(at >= now_, "cannot schedule into the past");
  FINDEP_REQUIRE(fn != nullptr);
  const EventId id = next_id_++;
  queue_.push(Entry{at, next_seq_++, id, std::move(fn)});
  pending_.insert(id);
  return id;
}

EventId Simulator::schedule_after(Time delay, Callback fn) {
  FINDEP_REQUIRE(delay >= 0.0);
  return schedule_at(now_ + delay, std::move(fn));
}

bool Simulator::cancel(EventId id) {
  // Removing from pending_ is enough: pop_next drops queue entries whose
  // id is no longer pending, so the cancelled callback never runs.
  return pending_.erase(id) == 1;
}

Simulator::Entry Simulator::pop_next() {
  for (;;) {
    FINDEP_ASSERT(!queue_.empty());
    Entry entry = std::move(const_cast<Entry&>(queue_.top()));
    queue_.pop();
    if (pending_.erase(entry.id) == 1) {
      return entry;  // still live
    }
    // else: cancelled; skip the tombstone.
  }
}

void Simulator::step() {
  FINDEP_REQUIRE(has_pending());
  Entry entry = pop_next();
  FINDEP_ASSERT(entry.at >= now_);
  now_ = entry.at;
  ++executed_;
  entry.fn();
}

std::uint64_t Simulator::run(std::uint64_t max_events) {
  std::uint64_t executed = 0;
  while (has_pending() && executed < max_events) {
    step();
    ++executed;
  }
  return executed;
}

std::uint64_t Simulator::run_until(Time deadline) {
  FINDEP_REQUIRE(deadline >= now_);
  std::uint64_t executed = 0;
  while (has_pending()) {
    Entry entry = pop_next();
    if (entry.at > deadline) {
      // Not due yet: re-queue it (seq preserved, so FIFO order among equal
      // timestamps is unaffected) and mark it pending again.
      pending_.insert(entry.id);
      queue_.push(std::move(entry));
      break;
    }
    now_ = entry.at;
    ++executed_;
    ++executed;
    entry.fn();
  }
  now_ = deadline;
  return executed;
}

}  // namespace findep::sim
