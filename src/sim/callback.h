// Small-buffer-optimized, move-only callback for the event engine.
//
// Every event the simulator executes carries a closure. `std::function`
// heap-allocates any capture beyond ~2 words and its copyable-target
// requirement forces defensive copies, so the schedule/cancel/pop hot
// path paid one allocator round trip per event. `InlineCallback` stores
// captures up to `kInlineBytes` in place inside the event slot (a
// network delivery capture — owner pointer plus a 32-byte Message — fits
// comfortably) and only falls back to the heap for oversized closures.
// It is move-only: an event's closure has exactly one owner, the slot it
// lives in, until the pop hands it to the caller.
#pragma once

#include <cstddef>
#include <cstring>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace findep::sim {

/// Cache-line aligned: one event's closure is exactly one line in the
/// simulator's callback slab, so emplace/invoke/destroy never straddle.
class alignas(64) InlineCallback {
 public:
  /// In-place capture budget. Sized for the dominant producer (network
  /// delivery: this-pointer + Message{from, to, bytes, Envelope} = 40
  /// bytes) with headroom for one more captured word.
  static constexpr std::size_t kInlineBytes = 48;

  InlineCallback() noexcept = default;
  InlineCallback(std::nullptr_t) noexcept {}  // NOLINT: match std::function

  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<
                !std::is_same_v<D, InlineCallback> &&
                !std::is_same_v<D, std::nullptr_t> &&
                std::is_invocable_r_v<void, D&>>>
  InlineCallback(F&& fn)  // NOLINT(google-explicit-constructor)
      : vtable_(vtable_for<D>()) {
    if constexpr (fits_inline<D>()) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(fn));
    } else {
      ::new (static_cast<void*>(storage_)) D*(new D(std::forward<F>(fn)));
    }
  }

  InlineCallback(InlineCallback&& other) noexcept { take(other); }
  InlineCallback& operator=(InlineCallback&& other) noexcept {
    if (this != &other) {
      reset();
      take(other);
    }
    return *this;
  }
  InlineCallback(const InlineCallback&) = delete;
  InlineCallback& operator=(const InlineCallback&) = delete;

  ~InlineCallback() { reset(); }

  /// Constructs a closure in place (replacing any current one), without
  /// the relocate hop a construct-then-move-assign sequence would pay.
  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<
                !std::is_same_v<D, InlineCallback> &&
                !std::is_same_v<D, std::nullptr_t> &&
                std::is_invocable_r_v<void, D&>>>
  void emplace(F&& fn) {
    reset();
    if constexpr (fits_inline<D>()) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(fn));
    } else {
      ::new (static_cast<void*>(storage_)) D*(new D(std::forward<F>(fn)));
    }
    vtable_ = vtable_for<D>();
  }

  /// Destroys the held closure (and everything it captured) immediately.
  void reset() noexcept {
    if (vtable_ != nullptr) {
      if (vtable_->destroy != nullptr) vtable_->destroy(storage_);
      vtable_ = nullptr;
    }
  }

  void operator()() {
    vtable_->invoke(storage_);
  }

  [[nodiscard]] explicit operator bool() const noexcept {
    return vtable_ != nullptr;
  }
  [[nodiscard]] friend bool operator==(const InlineCallback& cb,
                                       std::nullptr_t) noexcept {
    return cb.vtable_ == nullptr;
  }

 private:
  /// `relocate`/`destroy` are null for trivially copyable inline targets
  /// (the common case: captures of pointers and PODs): moving is a plain
  /// byte copy and destruction a no-op, so the hot path pays a predicted
  /// branch instead of an indirect call.
  struct VTable {
    void (*invoke)(unsigned char*);
    void (*relocate)(unsigned char* from, unsigned char* to);
    void (*destroy)(unsigned char*);
  };

  template <typename D>
  static constexpr bool fits_inline() {
    return sizeof(D) <= kInlineBytes &&
           alignof(D) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<D>;
  }

  template <typename D>
  static const VTable* vtable_for() {
    if constexpr (fits_inline<D>() && std::is_trivially_copyable_v<D> &&
                  std::is_trivially_destructible_v<D>) {
      static constexpr VTable vt{
          [](unsigned char* s) { (*std::launder(reinterpret_cast<D*>(s)))(); },
          nullptr, nullptr};
      return &vt;
    } else if constexpr (fits_inline<D>()) {
      static constexpr VTable vt{
          [](unsigned char* s) { (*std::launder(reinterpret_cast<D*>(s)))(); },
          [](unsigned char* from, unsigned char* to) {
            D* src = std::launder(reinterpret_cast<D*>(from));
            ::new (static_cast<void*>(to)) D(std::move(*src));
            src->~D();
          },
          [](unsigned char* s) {
            std::launder(reinterpret_cast<D*>(s))->~D();
          }};
      return &vt;
    } else {
      static constexpr VTable vt{
          [](unsigned char* s) {
            (**std::launder(reinterpret_cast<D**>(s)))();
          },
          [](unsigned char* from, unsigned char* to) {
            D** src = std::launder(reinterpret_cast<D**>(from));
            ::new (static_cast<void*>(to)) D*(*src);
          },
          [](unsigned char* s) {
            delete *std::launder(reinterpret_cast<D**>(s));
          }};
      return &vt;
    }
  }

  void take(InlineCallback& other) noexcept {
    vtable_ = other.vtable_;
    if (vtable_ != nullptr) {
      if (vtable_->relocate != nullptr) {
        vtable_->relocate(other.storage_, storage_);
      } else {
        std::memcpy(storage_, other.storage_, kInlineBytes);
      }
      other.vtable_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
  const VTable* vtable_ = nullptr;
};

}  // namespace findep::sim
