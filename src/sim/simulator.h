// Deterministic discrete-event simulation engine.
//
// All findep protocol substrates (network, BFT, Nakamoto mining,
// attestation) execute on this engine: events are callbacks scheduled at
// simulated timestamps, and ties are broken by schedule order so a run is
// a pure function of (program, seed). Simulated time is in seconds.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "support/assert.h"

namespace findep::sim {

/// Simulated time in seconds since simulation start.
using Time = double;

/// Identifies a scheduled event so it can be cancelled (e.g. timers).
using EventId = std::uint64_t;

/// Event-driven simulator with a monotone clock.
///
/// Invariants: `now()` never decreases; callbacks scheduled at equal times
/// run in schedule order (FIFO); a callback may schedule further events at
/// `now()` or later.
class Simulator {
 public:
  using Callback = std::function<void()>;

  /// Schedules `fn` to run at absolute time `at` (>= now()). Returns an id
  /// usable with `cancel`.
  EventId schedule_at(Time at, Callback fn);

  /// Schedules `fn` to run `delay` (>= 0) seconds from now.
  EventId schedule_after(Time delay, Callback fn);

  /// Cancels a pending event. Returns false if the event already ran, was
  /// already cancelled, or never existed. O(1): the entry is tombstoned
  /// and skipped when popped.
  bool cancel(EventId id);

  [[nodiscard]] Time now() const noexcept { return now_; }
  [[nodiscard]] bool has_pending() const noexcept {
    return !pending_.empty();
  }
  [[nodiscard]] std::size_t pending_count() const noexcept {
    return pending_.size();
  }
  [[nodiscard]] std::uint64_t executed_count() const noexcept {
    return executed_;
  }

  /// Runs the next pending event. Requires has_pending().
  void step();

  /// Runs events until the queue drains or `max_events` have executed.
  /// Returns the number of events executed by this call.
  std::uint64_t run(std::uint64_t max_events = UINT64_MAX);

  /// Runs all events with time <= `deadline`, then advances the clock to
  /// exactly `deadline` (even if idle). Returns events executed.
  std::uint64_t run_until(Time deadline);

 private:
  struct Entry {
    Time at;
    std::uint64_t seq;
    EventId id;
    Callback fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  /// Pops the earliest non-cancelled event. Requires has_pending().
  Entry pop_next();

  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  std::unordered_set<EventId> pending_;  // ids scheduled but not yet run
  Time now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
  std::uint64_t executed_ = 0;
};

}  // namespace findep::sim
