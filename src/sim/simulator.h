// Deterministic discrete-event simulation engine.
//
// All findep protocol substrates (network, BFT, Nakamoto mining,
// attestation) execute on this engine: events are callbacks scheduled at
// simulated timestamps, and ties are broken by schedule order so a run is
// a pure function of (program, seed). Simulated time is in seconds.
//
// The implementation is a self-resizing *calendar queue* over a slab of
// generation-tagged event slots (see DESIGN.md, "The event engine"):
//
//   - every event links into the bucket ring modulo its size (the classic
//     year-wrapped layout): a far-future arrival costs the same O(1) as a
//     near-term one, and the pop scan simply skips heads whose absolute
//     bucket is still ahead of the cursor;
//   - event records are slab-allocated and recycled through a free list,
//     so steady-state scheduling performs no allocation at all. The slab
//     is split structure-of-arrays style: 32-byte key/link records that
//     inserts and cancels walk, and a parallel array of callbacks that
//     only the owning event ever touches;
//   - callbacks are `InlineCallback` (small-buffer-optimized), so typical
//     captures (network deliveries, protocol timers) never touch the
//     heap, and the templated schedule paths construct the closure
//     directly inside the event slot;
//   - `cancel` is O(1) pointer surgery keyed by a generation tag — no
//     hashing — and destroys the captured callback state immediately.
//
// The observable contract is unchanged from the binary-heap engine it
// replaced: same events, same order, bit-identical runs.
#pragma once

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "sim/callback.h"
#include "support/assert.h"

namespace findep::sim {

/// Simulated time in seconds since simulation start.
using Time = double;

/// Identifies a scheduled event so it can be cancelled (e.g. timers).
/// Encodes (generation << 32 | slot), so a stale id — already fired,
/// already cancelled, or recycled — is recognized in O(1).
using EventId = std::uint64_t;

/// Total events executed by every Simulator this process has destroyed
/// (each simulator flushes its executed count once, at destruction).
/// Feeds the `sim_events_*` process counters in the suite footer.
[[nodiscard]] std::uint64_t process_events_executed() noexcept;

/// Event-driven simulator with a monotone clock.
///
/// Invariants: `now()` never decreases; callbacks scheduled at equal times
/// run in schedule order (FIFO); a callback may schedule further events at
/// `now()` or later.
class Simulator {
 public:
  using Callback = InlineCallback;

  Simulator();
  ~Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Schedules `fn` to run at absolute time `at` (>= now()). Returns an id
  /// usable with `cancel`. The closure is constructed directly inside the
  /// event slot; nullable callables (e.g. std::function) must be
  /// non-null.
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, Callback> &&
                !std::is_same_v<std::decay_t<F>, std::nullptr_t>>>
  EventId schedule_at(Time at, F&& fn) {
    FINDEP_REQUIRE_MSG(at >= now_, "cannot schedule into the past");
    if constexpr (requires { fn == nullptr; }) {
      FINDEP_REQUIRE(fn != nullptr);
    }
    const std::uint32_t idx = acquire_slot();
    try {
      fns_[idx].emplace(std::forward<F>(fn));
    } catch (...) {
      release_slot(idx);
      throw;
    }
    return commit_schedule(idx, at);
  }
  /// Overload for a pre-built callback (and the nullptr contract check).
  EventId schedule_at(Time at, Callback fn);

  /// Schedules `fn` to run `delay` (>= 0) seconds from now.
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, Callback> &&
                !std::is_same_v<std::decay_t<F>, std::nullptr_t>>>
  EventId schedule_after(Time delay, F&& fn) {
    FINDEP_REQUIRE(delay >= 0.0);
    return schedule_at(now_ + delay, std::forward<F>(fn));
  }
  EventId schedule_after(Time delay, Callback fn);

  /// Cancels a pending event. Returns false if the event already ran, was
  /// already cancelled, or never existed. O(1), and the cancelled
  /// callback (with everything it captured) is destroyed immediately.
  bool cancel(EventId id);

  [[nodiscard]] Time now() const noexcept { return now_; }
  [[nodiscard]] bool has_pending() const noexcept { return live_ != 0; }
  [[nodiscard]] std::size_t pending_count() const noexcept { return live_; }
  [[nodiscard]] std::uint64_t executed_count() const noexcept {
    return executed_;
  }

  /// Runs the next pending event. Requires has_pending().
  void step();

  /// Runs events until the queue drains or `max_events` have executed.
  /// Returns the number of events executed by this call.
  std::uint64_t run(std::uint64_t max_events = UINT64_MAX);

  /// Runs all events with time <= `deadline`, then advances the clock to
  /// exactly `deadline` (even if idle). Returns events executed.
  std::uint64_t run_until(Time deadline);

  /// Observability for tests and the design doc: calendar geometry and
  /// slab usage. Never needed to *use* the simulator.
  struct EngineStats {
    std::size_t slab_slots = 0;      ///< total slots ever allocated
    std::size_t free_slots = 0;      ///< slots on the free list
    std::size_t buckets = 0;         ///< current calendar size
    double bucket_width = 0.0;       ///< seconds per bucket
    std::uint64_t rebuilds = 0;      ///< calendar resize/re-width count
  };
  [[nodiscard]] EngineStats engine_stats() const noexcept;

 private:
  static constexpr std::uint32_t kNil = 0xffffffffu;
  /// Sorted-insert walk length that flags the bucket width as too coarse
  /// for the current event distribution.
  static constexpr std::size_t kWalkLimit = 32;
  enum SlotState : std::uint32_t {
    kFree,    ///< on the free list
    kBucket,  ///< linked into a calendar bucket (possibly laps ahead)
  };

  /// Key/link record of one event slot: exactly 32 bytes, two per cache
  /// line, so sorted-insert walks and cancel unlinks touch half the
  /// memory the combined record would. The callback lives in the
  /// parallel `fns_` array. `ring_state` packs the bucket index the slot
  /// is linked into (low bits) with its SlotState (high bits).
  struct alignas(32) Slot {
    Time at = 0.0;
    std::uint64_t seq = 0;
    std::uint32_t prev = kNil;
    std::uint32_t next = kNil;
    std::uint32_t gen = 1;  ///< bumped when the id dies (fire/cancel)
    std::uint32_t ring_state = 0;
  };
  static constexpr std::uint32_t kStateShift = 24;
  static constexpr std::uint32_t kRingMask = (1u << kStateShift) - 1;

  [[nodiscard]] static SlotState state_of(const Slot& s) noexcept {
    return static_cast<SlotState>(s.ring_state >> kStateShift);
  }
  [[nodiscard]] static std::uint32_t ring_of(const Slot& s) noexcept {
    return s.ring_state & kRingMask;
  }
  static void set_state(Slot& s, SlotState state,
                        std::uint32_t ring = 0) noexcept {
    s.ring_state = (static_cast<std::uint32_t>(state) << kStateShift) | ring;
  }

  [[nodiscard]] std::uint64_t bucket_of(Time at) const noexcept;
  [[nodiscard]] std::uint32_t acquire_slot() {
    if (free_head_ != kNil) {
      const std::uint32_t idx = free_head_;
      free_head_ = slab_[idx].next;
      return idx;
    }
    return grow_slab();
  }
  [[nodiscard]] std::uint32_t grow_slab();
  void release_slot(std::uint32_t idx) noexcept;
  /// Links a freshly filled slot (at set, callback emplaced) into the
  /// calendar, assigns its seq, and returns its EventId.
  EventId commit_schedule(std::uint32_t idx, Time at);
  void place(std::uint32_t idx);
  void link_sorted(std::uint32_t ring, std::uint32_t idx);
  void unlink(std::uint32_t ring, std::uint32_t idx) noexcept;
  /// Index of the earliest live event, advancing the cursor to its
  /// bucket. Requires has_pending(). Does not remove the event.
  [[nodiscard]] std::uint32_t find_next();
  /// Unlinks `idx` (a bucket head), retires its id and returns its
  /// callback; the slot is back on the free list when this returns.
  [[nodiscard]] InlineCallback extract(std::uint32_t idx) noexcept;
  void execute(std::uint32_t idx);
  void rebuild();
  void maybe_rebuild();

  /// Head and tail of one calendar bucket's sorted list, packed so every
  /// bucket touch (append needs the tail, pop the head) is one 8-byte
  /// load from a single cache line.
  struct BucketEnds {
    std::uint32_t head = kNil;
    std::uint32_t tail = kNil;
  };

  std::vector<Slot> slab_;
  std::vector<InlineCallback> fns_;  ///< parallel to slab_
  std::uint32_t free_head_ = kNil;
  std::vector<BucketEnds> buckets_;
  double width_ = 1.0;
  double inv_width_ = 1.0;        ///< 1/width_: bucket_of multiplies
  std::uint64_t cur_bucket_ = 0;  ///< absolute index of the scan cursor
  std::uint64_t mask_ = 0;        ///< bucket count - 1 (power of two)
  std::size_t live_ = 0;          ///< schedulable (non-cancelled) events
  std::size_t grow_at_ = 0;       ///< live_ level that triggers a grow
  bool rebuild_pending_ = false;  ///< a sorted insert walked too far
  std::uint64_t scan_debt_ = 0;   ///< empty buckets scanned since rebuild
  std::uint64_t rebuilds_ = 0;
  std::uint64_t last_rebuild_seq_ = 0;  ///< rate-limits re-width rebuilds

  Time now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
};

// ——— Hot-path definitions ———
//
// The schedule/cancel fast path lives in the header so it compiles
// straight into the caller (the templated schedule_at already does):
// steady-state scheduling is a handful of inlined loads and stores, no
// cross-TU call. The cold machinery (cursor scans, far-future jumps,
// rebuilds) stays in simulator.cpp.

inline std::uint64_t Simulator::bucket_of(Time at) const noexcept {
  // Multiplying by the cached reciprocal is deterministic too (IEEE-754
  // is exact about which double it yields) — it only has to be
  // *consistent* within a run, since bucket boundaries affect structure,
  // never event order.
  const double q = at * inv_width_;
  // Cap so enormous horizons (or +inf) stay representable: everything
  // past the cap collapses into one final — still sorted — bucket.
  constexpr double kCap = 4.0e18;
  if (!(q < kCap)) return static_cast<std::uint64_t>(kCap);
  return static_cast<std::uint64_t>(q);
}

inline void Simulator::release_slot(std::uint32_t idx) noexcept {
  Slot& s = slab_[idx];
  fns_[idx].reset();
  set_state(s, kFree);
  s.next = free_head_;
  free_head_ = idx;
}

inline void Simulator::link_sorted(std::uint32_t ring, std::uint32_t idx) {
  Slot& s = slab_[idx];
  set_state(s, kBucket, ring);
  BucketEnds& ends = buckets_[ring];
  if (ends.tail == kNil) {
    s.prev = s.next = kNil;
    ends.head = ends.tail = idx;
    return;
  }
  Slot& t = slab_[ends.tail];
  if (t.at < s.at || (t.at == s.at && t.seq < s.seq)) {
    // Fast path: FIFO workloads (equal timestamps always carry a larger
    // seq) and rebuild re-placement (sorted ascending) append at the
    // tail.
    s.prev = ends.tail;
    s.next = kNil;
    t.next = idx;
    ends.tail = idx;
    return;
  }
  std::uint32_t cur = ends.head;
  std::size_t walked = 0;
  for (;;) {
    const Slot& c = slab_[cur];
    if (s.at < c.at || (s.at == c.at && s.seq < c.seq)) break;
    FINDEP_ASSERT(c.next != kNil);  // the tail compare guarantees a stop
    cur = c.next;
    ++walked;
  }
  Slot& c = slab_[cur];
  s.next = cur;
  s.prev = c.prev;
  c.prev = idx;
  if (s.prev == kNil) {
    ends.head = idx;
  } else {
    slab_[s.prev].next = idx;
  }
  if (walked > kWalkLimit) rebuild_pending_ = true;
}

inline void Simulator::unlink(std::uint32_t ring, std::uint32_t idx) noexcept {
  const Slot& s = slab_[idx];
  BucketEnds& ends = buckets_[ring];
  // Written as address selection (not control flow) so the compiler can
  // emit conditional moves: an event's list position is data-random, and
  // a mispredicted branch here costs more than both unconditional
  // stores. The untaken addresses are computed but never dereferenced.
  std::uint32_t* const prev_next =
      s.prev != kNil ? &slab_[s.prev].next : &ends.head;
  std::uint32_t* const next_prev =
      s.next != kNil ? &slab_[s.next].prev : &ends.tail;
  *prev_next = s.next;
  *next_prev = s.prev;
}

inline void Simulator::place(std::uint32_t idx) {
  Slot& s = slab_[idx];
  std::uint64_t b = bucket_of(s.at);
  if (b < cur_bucket_) {
    // Defensive: the cursor tracks bucket_of(now_) between public calls
    // (run_until rewinds after a probe), so an insert at >= now_ cannot
    // land behind it. If it ever does, clamping into the cursor slot is
    // still correct — the sorted link keeps it ahead of everything later
    // and the due check (absolute bucket <= cursor) fires on the next
    // visit.
    b = cur_bucket_;
  }
  // Year-wrapped layout: the link is modulo the ring no matter how far
  // ahead `b` lies. A head whose absolute bucket is still ahead of the
  // cursor is simply skipped by the pop scan, so a far-future insert
  // costs the same O(1) as a near-term one.
  link_sorted(static_cast<std::uint32_t>(b & mask_), idx);
}

inline EventId Simulator::commit_schedule(std::uint32_t idx, Time at) {
  Slot& s = slab_[idx];
  s.at = at;
  s.seq = next_seq_++;
  const EventId id = (static_cast<EventId>(s.gen) << 32) | idx;
  place(idx);
  ++live_;
  // One predictable branch on the hot path; the full (rate-limited)
  // policy runs only when growth or a re-width request makes it live.
  if (live_ > grow_at_ || rebuild_pending_) maybe_rebuild();
  return id;
}

inline bool Simulator::cancel(EventId id) {
  const auto idx = static_cast<std::uint32_t>(id & 0xffffffffu);
  const auto gen = static_cast<std::uint32_t>(id >> 32);
  if (idx >= slab_.size()) return false;
  Slot& s = slab_[idx];
  if (s.gen != gen) return false;  // already fired, cancelled, or recycled
  if (state_of(s) != kBucket) {
    return false;  // a free slot whose id was never issued
  }
  unlink(ring_of(s), idx);
  ++s.gen;
  release_slot(idx);  // destroys the captured closure state now
  --live_;
  return true;
}

}  // namespace findep::sim
