// VRF-based cryptographic sortition (Algorand-style), the membership
// selection mechanism §II-A cites for committee-based permissionless
// protocols.
//
// Each participant evaluates its VRF on the round seed; it wins a
// committee seat when the output (uniform in [0,1)) falls below
// expected_size · stake_i / total_stake. Seats are publicly verifiable
// from the VRF proof. Stake-proportional selection means committee
// *diversity* inherits the stake distribution — connecting sortition to
// the paper's entropy analysis.
#pragma once

#include <vector>

#include "committee/stake.h"
#include "crypto/vrf.h"

namespace findep::committee {

struct SortitionTicket {
  ParticipantId participant = 0;
  crypto::VrfOutput vrf;
  double threshold = 0.0;  // selection threshold the output beat
};

struct SortitionResult {
  std::vector<SortitionTicket> seats;
  crypto::Digest seed;
};

class Sortition {
 public:
  /// `expected_size`: expected number of seats per round.
  Sortition(const StakeRegistry& registry, double expected_size);

  /// Round seed (publicly derivable, e.g. from the previous block).
  [[nodiscard]] static crypto::Digest round_seed(std::uint64_t round);

  /// Runs selection for a round. `keys[i]` must be participant i's key
  /// pair (the registry stores only public keys).
  [[nodiscard]] SortitionResult select(
      std::uint64_t round, const std::vector<crypto::KeyPair>& keys) const;

  /// Verifies one ticket against the registry and round.
  [[nodiscard]] bool verify(const crypto::KeyRegistry& crypto_registry,
                            std::uint64_t round,
                            const SortitionTicket& ticket) const;

  /// Selection probability of a participant (min(1, C·s_i/S)).
  [[nodiscard]] double selection_probability(ParticipantId id) const;

 private:
  const StakeRegistry* registry_;
  double expected_size_;
};

}  // namespace findep::committee
