#include "committee/sortition.h"

#include <algorithm>

#include "support/assert.h"

namespace findep::committee {

Sortition::Sortition(const StakeRegistry& registry, double expected_size)
    : registry_(&registry), expected_size_(expected_size) {
  FINDEP_REQUIRE(expected_size > 0.0);
}

crypto::Digest Sortition::round_seed(std::uint64_t round) {
  return crypto::Sha256{}
      .update("findep/sortition-seed/v1")
      .update_u64(round)
      .finish();
}

double Sortition::selection_probability(ParticipantId id) const {
  const double total = registry_->total_stake();
  FINDEP_REQUIRE(total > 0.0);
  const double stake = registry_->effective_stake(id);
  return std::min(1.0, expected_size_ * stake / total);
}

SortitionResult Sortition::select(
    std::uint64_t round, const std::vector<crypto::KeyPair>& keys) const {
  FINDEP_REQUIRE(keys.size() == registry_->size());
  SortitionResult out;
  out.seed = round_seed(round);
  for (ParticipantId id = 0; id < registry_->size(); ++id) {
    const double p = selection_probability(id);
    if (p <= 0.0) continue;  // delegated-away or zero stake
    FINDEP_REQUIRE_MSG(
        keys[id].public_key() == registry_->get(id).key,
        "key pair order must match the registry");
    const crypto::VrfOutput vrf = crypto::vrf_evaluate(keys[id], out.seed);
    if (vrf.as_unit_double() < p) {
      out.seats.push_back(SortitionTicket{id, vrf, p});
    }
  }
  return out;
}

bool Sortition::verify(const crypto::KeyRegistry& crypto_registry,
                       std::uint64_t round,
                       const SortitionTicket& ticket) const {
  if (ticket.participant >= registry_->size()) return false;
  const Participant& p = registry_->get(ticket.participant);
  if (!crypto::vrf_verify(crypto_registry, p.key, round_seed(round),
                          ticket.vrf)) {
    return false;
  }
  return ticket.vrf.as_unit_double() <
         selection_probability(ticket.participant);
}

}  // namespace findep::committee
