// Diversity-aware committee formation — the enforcement mechanism the
// paper calls for (§II-C "identifying efficient ways to enforce the
// [safety] equation in a permissionless environment").
//
// Given sortition winners (stake-proportional, so possibly monocultural),
// the selector builds the final committee under a per-configuration power
// cap, optionally restricted to attested participants, and reports the
// achieved entropy/resilience next to the unconstrained baseline. This
// realizes the (κ, ω) trade: more distinct configurations admitted (κ↑),
// bounded power per configuration (cap ≈ 1/κ), operators per
// configuration as abundance (ω).
#pragma once

#include <vector>

#include "committee/stake.h"
#include "diversity/manager.h"
#include "diversity/metrics.h"

namespace findep::committee {

struct SelectionPolicy {
  /// Maximum fraction of committee power any single configuration may
  /// hold (1.0 = unconstrained).
  double per_config_cap = 1.0;
  /// Maximum fraction of committee power exposed to any single *component*
  /// (1.0 = unconstrained). Strictly stronger than the configuration cap:
  /// a vulnerability lives in a component, and distinct configurations
  /// sharing an OS still fall together (§II-B). Enforcing this bounds the
  /// true single-fault blast radius.
  double per_component_cap = 1.0;
  /// Require remote attestation for membership (§V tier-1 committee).
  bool attested_only = false;
  /// Weight multiplier for attested members when mixing tiers (§V).
  double attested_weight = 1.0;
};

struct CommitteeMember {
  ParticipantId participant = 0;
  double weight = 0.0;  // counted voting power in the committee
};

struct Committee {
  std::vector<CommitteeMember> members;
  diversity::ConfigDistribution distribution;
  double entropy_bits = 0.0;
  double total_weight = 0.0;
  /// Power admitted / power offered (1 − what the caps discarded).
  double admitted_fraction = 1.0;
  diversity::ResilienceSummary bft;
  /// Largest fraction of committee power sharing any single component
  /// (the true single-fault blast radius after cap enforcement).
  double worst_component_exposure = 0.0;
};

/// Forms a committee from `candidates` under `policy`.
///
/// Candidates are admitted greedily in decreasing stake order; a
/// candidate's weight is clipped so its configuration stays within
/// `per_config_cap` of the running committee power (computed against the
/// final total iteratively — two passes give a stable fixpoint for the
/// experiments' purposes).
[[nodiscard]] Committee form_committee(const StakeRegistry& registry,
                                       const std::vector<ParticipantId>&
                                           candidates,
                                       const SelectionPolicy& policy);

}  // namespace findep::committee
