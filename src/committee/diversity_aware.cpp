#include "committee/diversity_aware.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "support/assert.h"

namespace findep::committee {

namespace {

/// Iteratively rescales member weights until no single component carries
/// more than `cap` of the total (within 0.1% slack), by repeatedly
/// lowering the currently-worst component toward the cap. Caps below the
/// population's structural floor are unsatisfiable; the loop then returns
/// the best exposure reachable while retaining ≥ 20% of the offered
/// power, and the caller reports the achieved value.
void enforce_component_cap(std::vector<double>& weights,
                           const std::vector<std::vector<config::ComponentId>>&
                               member_components,
                           double cap) {
  double initial_total = 0.0;
  for (const double w : weights) initial_total += w;
  if (initial_total <= 0.0) return;

  // The iteration is not monotone in the exposure ratio (rescaling one
  // over-cap component shifts every share), and caps below the
  // population's structural floor never satisfy. We therefore keep the
  // best state seen — lowest worst-exposure ratio, subject to retaining
  // at least 20% of the offered power — and restore it on exit.
  std::vector<double> best_weights = weights;
  double best_worst = 2.0;  // > any possible ratio

  for (int iter = 0; iter < 512; ++iter) {
    double total = 0.0;
    for (const double w : weights) total += w;
    if (total < 0.2 * initial_total) break;  // feasibility frontier

    // Ordered map: the worst-component argmax below must break FP ties
    // by component id, not by hash-bucket layout.
    std::map<config::ComponentId, double> exposure;
    for (std::size_t m = 0; m < weights.size(); ++m) {
      for (const config::ComponentId c : member_components[m]) {
        exposure[c] += weights[m];
      }
    }
    config::ComponentId worst_component{};
    double worst = 0.0;
    for (const auto& [component, e] : exposure) {
      const double ratio = e / total;
      if (ratio > worst) {
        worst = ratio;
        worst_component = component;
      }
    }
    if (worst < best_worst) {
      best_worst = worst;
      best_weights = weights;
    }
    // Satisfied within 0.1% slack (the descent converges asymptotically;
    // exact equality would trade unbounded weight shrinkage for digits).
    if (worst <= cap * (1.0 + 1e-3)) break;

    // Directed descent: lower only the *worst* component toward the cap
    // (per-round factor floored at 0.5 to avoid overshooting the weight
    // frontier), so progress is concentrated on the offending members
    // instead of shrinking the whole committee proportionally.
    const double factor = std::max(cap / worst, 0.5);
    bool changed = false;
    for (std::size_t m = 0; m < weights.size(); ++m) {
      const auto& comps = member_components[m];
      if (std::find(comps.begin(), comps.end(), worst_component) !=
          comps.end()) {
        weights[m] *= factor;
        changed = true;
      }
    }
    if (!changed) break;
  }
  weights = best_weights;
}

}  // namespace

Committee form_committee(const StakeRegistry& registry,
                         const std::vector<ParticipantId>& candidates,
                         const SelectionPolicy& policy) {
  FINDEP_REQUIRE(policy.per_config_cap > 0.0 && policy.per_config_cap <= 1.0);
  FINDEP_REQUIRE(policy.per_component_cap > 0.0 &&
                 policy.per_component_cap <= 1.0);
  FINDEP_REQUIRE(policy.attested_weight >= 1.0);

  struct Offer {
    ParticipantId id;
    double weight;
    config::ConfigurationId config;
    std::vector<config::ComponentId> components;
  };
  std::vector<Offer> offers;
  double offered = 0.0;
  for (const ParticipantId id : candidates) {
    const Participant& p = registry.get(id);
    if (policy.attested_only && !p.attested) continue;
    const double stake = registry.effective_stake(id);
    if (stake <= 0.0) continue;
    const double weight =
        stake * (p.attested ? policy.attested_weight : 1.0);
    offers.push_back(Offer{id, weight, p.configuration.digest(),
                           p.configuration.components()});
    offered += weight;
  }

  Committee out;
  if (offers.empty()) return out;

  // Stage 1 — configuration cap. Per-configuration offered power, then
  // the fixpoint counted_j = min(power_j, cap · Σ counted).
  // Ordered maps: the fixpoint folds power totals in iteration order, and
  // FP addition is order-sensitive — digest order pins the result.
  std::map<config::ConfigurationId, double> config_power;
  for (const Offer& o : offers) config_power[o.config] += o.weight;
  std::map<config::ConfigurationId, double> counted = config_power;
  for (int iter = 0; iter < 64; ++iter) {
    double total = 0.0;
    for (const auto& [cfg, w] : counted) total += w;
    bool changed = false;
    for (auto& [cfg, w] : counted) {
      const double limit = policy.per_config_cap * total;
      const double next = std::min(config_power[cfg], limit);
      if (std::abs(next - w) > 1e-12) {
        w = next;
        changed = true;
      }
    }
    if (!changed) break;
  }

  std::vector<double> weights;
  std::vector<std::vector<config::ComponentId>> member_components;
  weights.reserve(offers.size());
  member_components.reserve(offers.size());
  for (const Offer& o : offers) {
    const double cfg_offered = config_power[o.config];
    const double cfg_counted = counted[o.config];
    const double scale = cfg_offered > 0.0 ? cfg_counted / cfg_offered : 0.0;
    weights.push_back(o.weight * scale);
    member_components.push_back(o.components);
  }

  // Stage 2 — component cap (strictly stronger; see SelectionPolicy).
  if (policy.per_component_cap < 1.0) {
    enforce_component_cap(weights, member_components,
                          policy.per_component_cap);
  }

  std::map<config::ComponentId, double> final_exposure;
  for (std::size_t m = 0; m < offers.size(); ++m) {
    const double weight = weights[m];
    if (weight <= 0.0) continue;
    out.members.push_back(CommitteeMember{offers[m].id, weight});
    out.distribution.add(offers[m].config, weight, 1);
    out.total_weight += weight;
    for (const config::ComponentId c : member_components[m]) {
      final_exposure[c] += weight;
    }
  }
  out.admitted_fraction = offered > 0.0 ? out.total_weight / offered : 0.0;
  if (out.total_weight > 0.0) {
    out.entropy_bits = diversity::shannon_entropy(out.distribution);
    out.bft = diversity::summarize_resilience(out.distribution,
                                              diversity::kBftThreshold);
    for (const auto& [component, exposure] : final_exposure) {
      out.worst_component_exposure = std::max(
          out.worst_component_exposure, exposure / out.total_weight);
    }
  }
  return out;
}

}  // namespace findep::committee
