// Stake registry with delegation.
//
// §II-A's third instantiation of voting power: membership-selected
// consensus committees. The registry tracks per-participant stake,
// configuration and attestation status, and models *delegation* — the
// §III-A concern that custodial platforms (exchanges) aggregate many
// users' stake behind a single operator and configuration, collapsing
// diversity.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "config/replica_config.h"
#include "crypto/keys.h"
#include "diversity/analyzer.h"

namespace findep::committee {

using ParticipantId = std::uint32_t;

struct Participant {
  ParticipantId id = 0;
  std::string name;
  double stake = 0.0;
  config::ReplicaConfiguration configuration;
  bool attested = false;
  crypto::PublicKey key;
  /// Set when the stake is delegated to a custodian; the custodian's
  /// configuration and operator control the voting power.
  std::optional<ParticipantId> delegated_to;
};

class StakeRegistry {
 public:
  /// Adds a participant; returns its id. Stake must be non-negative.
  ParticipantId add(std::string name, double stake,
                    config::ReplicaConfiguration configuration,
                    bool attested, crypto::PublicKey key);

  [[nodiscard]] const Participant& get(ParticipantId id) const;
  [[nodiscard]] std::size_t size() const noexcept {
    return participants_.size();
  }
  [[nodiscard]] double total_stake() const noexcept;

  /// Delegates `who`'s stake to `custodian` (undelegates when nullopt).
  /// Chained delegation is rejected (custodians cannot delegate).
  void delegate(ParticipantId who, std::optional<ParticipantId> custodian);

  /// Effective voting power per *controller*: a custodian controls its own
  /// stake plus everything delegated to it; delegators control nothing.
  /// Records carry the controller's configuration/attestation.
  [[nodiscard]] std::vector<diversity::ReplicaRecord> effective_population()
      const;

  /// Effective stake controlled by `id` (0 if delegated away).
  [[nodiscard]] double effective_stake(ParticipantId id) const;

 private:
  std::vector<Participant> participants_;
};

}  // namespace findep::committee
