#include "committee/stake.h"

#include "support/assert.h"

namespace findep::committee {

ParticipantId StakeRegistry::add(std::string name, double stake,
                                 config::ReplicaConfiguration configuration,
                                 bool attested, crypto::PublicKey key) {
  FINDEP_REQUIRE(stake >= 0.0);
  Participant p;
  p.id = static_cast<ParticipantId>(participants_.size());
  p.name = std::move(name);
  p.stake = stake;
  p.configuration = std::move(configuration);
  p.attested = attested;
  p.key = key;
  participants_.push_back(std::move(p));
  return participants_.back().id;
}

const Participant& StakeRegistry::get(ParticipantId id) const {
  FINDEP_REQUIRE(id < participants_.size());
  return participants_[id];
}

double StakeRegistry::total_stake() const noexcept {
  double total = 0.0;
  for (const auto& p : participants_) total += p.stake;
  return total;
}

void StakeRegistry::delegate(ParticipantId who,
                             std::optional<ParticipantId> custodian) {
  FINDEP_REQUIRE(who < participants_.size());
  if (custodian.has_value()) {
    FINDEP_REQUIRE(*custodian < participants_.size());
    FINDEP_REQUIRE_MSG(*custodian != who, "cannot delegate to oneself");
    FINDEP_REQUIRE_MSG(
        !participants_[*custodian].delegated_to.has_value(),
        "custodians cannot themselves delegate (no chains)");
    // The delegator must not be a custodian for someone else.
    for (const auto& p : participants_) {
      FINDEP_REQUIRE_MSG(p.delegated_to != std::optional(who),
                         "a custodian cannot delegate away");
    }
  }
  participants_[who].delegated_to = custodian;
}

double StakeRegistry::effective_stake(ParticipantId id) const {
  FINDEP_REQUIRE(id < participants_.size());
  if (participants_[id].delegated_to.has_value()) return 0.0;
  double stake = participants_[id].stake;
  for (const auto& p : participants_) {
    if (p.delegated_to == std::optional(id)) stake += p.stake;
  }
  return stake;
}

std::vector<diversity::ReplicaRecord> StakeRegistry::effective_population()
    const {
  std::vector<diversity::ReplicaRecord> out;
  for (const auto& p : participants_) {
    if (p.delegated_to.has_value()) continue;
    const double stake = effective_stake(p.id);
    if (stake <= 0.0) continue;
    out.push_back(diversity::ReplicaRecord{p.configuration, stake,
                                           p.attested});
  }
  return out;
}

}  // namespace findep::committee
