#include "crypto/sha256.h"

#include <bit>
#include <cstring>

#include "support/assert.h"

namespace findep::crypto {

namespace {

constexpr std::array<std::uint32_t, 64> kRoundConstants = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

constexpr std::array<std::uint32_t, 8> kInitialState = {
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
    0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19};

constexpr std::uint32_t big_sigma0(std::uint32_t x) noexcept {
  return std::rotr(x, 2) ^ std::rotr(x, 13) ^ std::rotr(x, 22);
}
constexpr std::uint32_t big_sigma1(std::uint32_t x) noexcept {
  return std::rotr(x, 6) ^ std::rotr(x, 11) ^ std::rotr(x, 25);
}
constexpr std::uint32_t small_sigma0(std::uint32_t x) noexcept {
  return std::rotr(x, 7) ^ std::rotr(x, 18) ^ (x >> 3);
}
constexpr std::uint32_t small_sigma1(std::uint32_t x) noexcept {
  return std::rotr(x, 17) ^ std::rotr(x, 19) ^ (x >> 10);
}

constexpr int hex_value(char c) noexcept {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

std::string Digest::to_hex() const {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(64);
  for (const std::uint8_t b : bytes) {
    out.push_back(kHex[b >> 4]);
    out.push_back(kHex[b & 0x0f]);
  }
  return out;
}

Digest Digest::from_hex(std::string_view hex) {
  FINDEP_REQUIRE_MSG(hex.size() == 64, "digest hex must be 64 chars");
  Digest d;
  for (std::size_t i = 0; i < 32; ++i) {
    const int hi = hex_value(hex[2 * i]);
    const int lo = hex_value(hex[2 * i + 1]);
    FINDEP_REQUIRE_MSG(hi >= 0 && lo >= 0, "digest hex must be [0-9a-fA-F]");
    d.bytes[i] = static_cast<std::uint8_t>((hi << 4) | lo);
  }
  return d;
}

std::uint64_t Digest::prefix64() const noexcept {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    v = (v << 8) | bytes[i];
  }
  return v;
}

Sha256::Sha256() noexcept : state_(kInitialState) {}

void Sha256::process_block(const std::uint8_t* block) noexcept {
  std::array<std::uint32_t, 64> w;
  for (std::size_t i = 0; i < 16; ++i) {
    w[i] = (static_cast<std::uint32_t>(block[4 * i]) << 24) |
           (static_cast<std::uint32_t>(block[4 * i + 1]) << 16) |
           (static_cast<std::uint32_t>(block[4 * i + 2]) << 8) |
           static_cast<std::uint32_t>(block[4 * i + 3]);
  }
  for (std::size_t i = 16; i < 64; ++i) {
    w[i] = small_sigma1(w[i - 2]) + w[i - 7] + small_sigma0(w[i - 15]) +
           w[i - 16];
  }

  std::uint32_t a = state_[0], b = state_[1], c = state_[2], d = state_[3];
  std::uint32_t e = state_[4], f = state_[5], g = state_[6], h = state_[7];

  for (std::size_t i = 0; i < 64; ++i) {
    const std::uint32_t t1 =
        h + big_sigma1(e) + ((e & f) ^ (~e & g)) + kRoundConstants[i] + w[i];
    const std::uint32_t t2 =
        big_sigma0(a) + ((a & b) ^ (a & c) ^ (b & c));
    h = g;
    g = f;
    f = e;
    e = d + t1;
    d = c;
    c = b;
    b = a;
    a = t1 + t2;
  }

  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
  state_[4] += e;
  state_[5] += f;
  state_[6] += g;
  state_[7] += h;
}

Sha256& Sha256::update(std::span<const std::uint8_t> data) noexcept {
  const std::uint8_t* p = data.data();
  std::size_t remaining = data.size();
  total_bytes_ += remaining;

  if (buffered_ != 0) {
    const std::size_t take = std::min(remaining, buffer_.size() - buffered_);
    std::memcpy(buffer_.data() + buffered_, p, take);
    buffered_ += take;
    p += take;
    remaining -= take;
    if (buffered_ == buffer_.size()) {
      process_block(buffer_.data());
      buffered_ = 0;
    }
  }
  while (remaining >= 64) {
    process_block(p);
    p += 64;
    remaining -= 64;
  }
  if (remaining != 0) {
    std::memcpy(buffer_.data(), p, remaining);
    buffered_ = remaining;
  }
  return *this;
}

Sha256& Sha256::update(std::string_view text) noexcept {
  return update(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(text.data()), text.size()));
}

Sha256& Sha256::update_u64(std::uint64_t value) noexcept {
  std::array<std::uint8_t, 8> le;
  for (auto& b : le) {
    b = static_cast<std::uint8_t>(value & 0xff);
    value >>= 8;
  }
  return update(le);
}

Digest Sha256::finish() {
  FINDEP_REQUIRE_MSG(!finished_, "Sha256 context reused after finish()");
  finished_ = true;

  const std::uint64_t bit_length = total_bytes_ * 8;
  // Padding: 0x80, zeros, then the 64-bit big-endian bit length.
  const std::uint8_t one = 0x80;
  update(std::span<const std::uint8_t>(&one, 1));
  const std::uint8_t zero = 0x00;
  while (buffered_ != 56) {
    update(std::span<const std::uint8_t>(&zero, 1));
  }
  std::array<std::uint8_t, 8> be;
  for (std::size_t i = 0; i < 8; ++i) {
    be[i] = static_cast<std::uint8_t>(bit_length >> (56 - 8 * i));
  }
  update(be);
  FINDEP_ASSERT(buffered_ == 0);

  Digest out;
  for (std::size_t i = 0; i < 8; ++i) {
    out.bytes[4 * i] = static_cast<std::uint8_t>(state_[i] >> 24);
    out.bytes[4 * i + 1] = static_cast<std::uint8_t>(state_[i] >> 16);
    out.bytes[4 * i + 2] = static_cast<std::uint8_t>(state_[i] >> 8);
    out.bytes[4 * i + 3] = static_cast<std::uint8_t>(state_[i]);
  }
  return out;
}

Digest sha256(std::span<const std::uint8_t> data) noexcept {
  return Sha256{}.update(data).finish();
}

Digest sha256(std::string_view text) noexcept {
  return Sha256{}.update(text).finish();
}

Digest sha256d(std::span<const std::uint8_t> data) noexcept {
  const Digest first = sha256(data);
  return sha256(first.bytes);
}

}  // namespace findep::crypto
