// Simulated Verifiable Random Function.
//
// Committee sortition (src/committee) needs a per-replica pseudo-random
// value that (a) the replica can compute privately, (b) everyone can verify
// afterwards, and (c) nobody can grind. We model this as a keyed hash whose
// verification goes through the same KeyRegistry oracle as signatures —
// the standard VRF interface (evaluate/verify + uniform output) with
// simulation-grade internals.
#pragma once

#include <cstdint>

#include "crypto/keys.h"
#include "crypto/sha256.h"

namespace findep::crypto {

/// VRF evaluation result: the pseudo-random output plus a proof binding it
/// to (public key, input).
struct VrfOutput {
  Digest value;
  Signature proof;

  /// Output mapped into [0, 1) — used for sortition thresholds.
  [[nodiscard]] double as_unit_double() const noexcept {
    return static_cast<double>(value.prefix64()) * 0x1.0p-64;
  }
};

/// Evaluates the VRF of `keys` on `input`.
[[nodiscard]] VrfOutput vrf_evaluate(const KeyPair& keys,
                                     const Digest& input);

/// Verifies that `out` is the unique VRF output of `pub` on `input`.
[[nodiscard]] bool vrf_verify(const KeyRegistry& registry,
                              const PublicKey& pub, const Digest& input,
                              const VrfOutput& out);

}  // namespace findep::crypto
