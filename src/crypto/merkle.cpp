#include "crypto/merkle.h"

#include "support/assert.h"

namespace findep::crypto {

Digest MerkleTree::hash_leaf(const Digest& payload) {
  const std::uint8_t tag = 0x00;
  return Sha256{}
      .update(std::span<const std::uint8_t>(&tag, 1))
      .update(payload.bytes)
      .finish();
}

Digest MerkleTree::hash_interior(const Digest& left, const Digest& right) {
  const std::uint8_t tag = 0x01;
  return Sha256{}
      .update(std::span<const std::uint8_t>(&tag, 1))
      .update(left.bytes)
      .update(right.bytes)
      .finish();
}

MerkleTree::MerkleTree(std::vector<Digest> leaves) {
  FINDEP_REQUIRE_MSG(!leaves.empty(), "Merkle tree needs at least one leaf");
  std::vector<Digest> level;
  level.reserve(leaves.size());
  for (const Digest& leaf : leaves) {
    level.push_back(hash_leaf(leaf));
  }
  levels_.push_back(std::move(level));

  while (levels_.back().size() > 1) {
    const auto& below = levels_.back();
    std::vector<Digest> above;
    above.reserve((below.size() + 1) / 2);
    for (std::size_t i = 0; i + 1 < below.size(); i += 2) {
      above.push_back(hash_interior(below[i], below[i + 1]));
    }
    if (below.size() % 2 == 1) {
      above.push_back(below.back());  // odd node promoted unchanged
    }
    levels_.push_back(std::move(above));
  }
  root_ = levels_.back().front();
}

MerkleProof MerkleTree::prove(std::size_t index) const {
  FINDEP_REQUIRE(index < leaf_count());
  MerkleProof proof;
  std::size_t pos = index;
  for (std::size_t depth = 0; depth + 1 < levels_.size(); ++depth) {
    const auto& level = levels_[depth];
    const std::size_t sibling =
        (pos % 2 == 0) ? pos + 1 : pos - 1;
    if (sibling < level.size()) {
      proof.push_back(MerkleStep{level[sibling], pos % 2 == 0});
    }
    // When there is no sibling (odd promoted node) no step is emitted —
    // the node carries up unchanged, matching the construction.
    pos /= 2;
  }
  return proof;
}

bool MerkleTree::verify(const Digest& leaf, const MerkleProof& proof,
                        const Digest& root) {
  Digest running = hash_leaf(leaf);
  for (const MerkleStep& step : proof) {
    running = step.sibling_on_right
                  ? hash_interior(running, step.sibling)
                  : hash_interior(step.sibling, running);
  }
  return running == root;
}

}  // namespace findep::crypto
