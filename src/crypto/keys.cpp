#include "crypto/keys.h"

#include "support/assert.h"
#include "support/rng.h"

namespace findep::crypto {

namespace {
constexpr std::string_view kPublicKeyDomain = "findep/pubkey/v1";
constexpr std::string_view kSignatureDomain = "findep/sig/v1";

PublicKey public_from_secret(const Digest& secret) {
  return PublicKey{
      Sha256{}.update(kPublicKeyDomain).update(secret.bytes).finish()};
}

Signature sign_with(const Digest& secret,
                    std::span<const std::uint8_t> message) {
  // Domain-separate signing from other HMAC uses of the same secret.
  const Digest keyed =
      Sha256{}.update(kSignatureDomain).update(secret.bytes).finish();
  return Signature{hmac_sha256(keyed.bytes, message)};
}
}  // namespace

KeyPair KeyPair::generate(support::Rng& rng) {
  Digest secret;
  for (std::size_t i = 0; i < secret.bytes.size(); i += 8) {
    const std::uint64_t word = rng();
    for (std::size_t j = 0; j < 8; ++j) {
      secret.bytes[i + j] = static_cast<std::uint8_t>(word >> (8 * j));
    }
  }
  return KeyPair{secret, public_from_secret(secret)};
}

KeyPair KeyPair::derive(std::uint64_t seed) {
  const Digest secret =
      Sha256{}.update("findep/keyseed/v1").update_u64(seed).finish();
  return KeyPair{secret, public_from_secret(secret)};
}

Signature KeyPair::sign(std::span<const std::uint8_t> message) const {
  return sign_with(secret_, message);
}

Signature KeyPair::sign(std::string_view message) const {
  return sign(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(message.data()),
      message.size()));
}

Signature KeyPair::sign(const Digest& message) const {
  return sign(std::span<const std::uint8_t>(message.bytes));
}

bool KeyRegistry::enroll(const KeyPair& keys) {
  const auto [it, inserted] =
      keys_.emplace(keys.public_key().id, keys.secret_for_oracle());
  return inserted || it->second == keys.secret_for_oracle();
}

bool KeyRegistry::is_enrolled(const PublicKey& pub) const {
  return keys_.contains(pub.id);
}

std::optional<Digest> KeyRegistry::secret_of(const PublicKey& pub) const {
  const auto it = keys_.find(pub.id);
  if (it == keys_.end()) return std::nullopt;
  return it->second;
}

bool KeyRegistry::verify(const PublicKey& pub,
                         std::span<const std::uint8_t> message,
                         const Signature& sig) const {
  const auto secret = secret_of(pub);
  if (!secret.has_value()) return false;
  return sign_with(*secret, message) == sig;
}

bool KeyRegistry::verify(const PublicKey& pub, std::string_view message,
                         const Signature& sig) const {
  return verify(pub,
                std::span<const std::uint8_t>(
                    reinterpret_cast<const std::uint8_t*>(message.data()),
                    message.size()),
                sig);
}

bool KeyRegistry::verify(const PublicKey& pub, const Digest& message,
                         const Signature& sig) const {
  return verify(pub, std::span<const std::uint8_t>(message.bytes), sig);
}

}  // namespace findep::crypto
