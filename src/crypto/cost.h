// Modeled CPU cost of the signature primitives.
//
// The simulation's signatures are toy-cheap HMACs (keys.h), which hides
// the dominant real-world cost of BFT serving: a production replica
// spends most of its cycles signing and verifying. The cost model makes
// that cost an explicit, *simulated-time* quantity: protocol code charges
// sign/verify/batch-verify durations through the simulator clock (sends
// are delayed by sign time, verifications occupy a modeled worker for
// verify time) without ever reading the wall clock — runs stay a pure
// function of (program, seed).
//
// `CostModel::free()` is all-zero and is the default everywhere: free
// runs take the exact pre-cost-model code paths (no extra events, no
// worker pool), so they are bit-identical to the historical protocol.
// `CostModel::modeled()` carries Ed25519-class single-core figures; both
// are selectable as the `crypto` scenario axis (`crypto=free,modeled`).
#pragma once

#include <cstddef>
#include <string>

namespace findep::crypto {

/// Per-operation CPU cost in nanoseconds of single-core compute.
/// All-zero (`is_free()`) disables cost modeling entirely.
struct CostModel {
  double sign_ns = 0.0;
  double verify_ns = 0.0;
  /// Batch verification amortizes per-signature work: a batch of k
  /// signatures costs base + k * item (item < verify_ns is what makes
  /// quorum proofs cheaper to check than k independent verifies).
  double batch_verify_base_ns = 0.0;
  double batch_verify_item_ns = 0.0;

  /// The default: zero cost, no modeling, bit-identical to the
  /// historical protocol.
  [[nodiscard]] static CostModel free() noexcept { return {}; }

  /// Ed25519-class single-core figures (order-of-magnitude honest, not
  /// calibrated to a specific CPU): sign ~50us, verify ~130us, batch
  /// verify ~20us base + ~70us per signature (roughly half the
  /// per-signature cost of independent verifies, the classic
  /// batch-verification payoff).
  [[nodiscard]] static CostModel modeled() noexcept {
    return {.sign_ns = 50'000.0,
            .verify_ns = 130'000.0,
            .batch_verify_base_ns = 20'000.0,
            .batch_verify_item_ns = 70'000.0};
  }

  /// Parses a `crypto` axis value: "free" or "modeled". Throws
  /// std::invalid_argument on anything else.
  [[nodiscard]] static CostModel parse(const std::string& name);

  [[nodiscard]] bool is_free() const noexcept {
    return sign_ns == 0.0 && verify_ns == 0.0 &&
           batch_verify_base_ns == 0.0 && batch_verify_item_ns == 0.0;
  }

  // Simulated-time charges (seconds, the simulator's unit).
  [[nodiscard]] double sign_seconds() const noexcept {
    return sign_ns * 1e-9;
  }
  [[nodiscard]] double verify_seconds() const noexcept {
    return verify_ns * 1e-9;
  }
  [[nodiscard]] double batch_verify_seconds(std::size_t k) const noexcept {
    return (batch_verify_base_ns +
            batch_verify_item_ns * static_cast<double>(k)) *
           1e-9;
  }
};

}  // namespace findep::crypto
