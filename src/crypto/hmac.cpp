#include "crypto/hmac.h"

#include <array>

namespace findep::crypto {

Digest hmac_sha256(std::span<const std::uint8_t> key,
                   std::span<const std::uint8_t> message) {
  constexpr std::size_t kBlock = 64;
  std::array<std::uint8_t, kBlock> padded{};
  if (key.size() > kBlock) {
    const Digest hashed = sha256(key);
    std::copy(hashed.bytes.begin(), hashed.bytes.end(), padded.begin());
  } else {
    std::copy(key.begin(), key.end(), padded.begin());
  }

  std::array<std::uint8_t, kBlock> inner_pad;
  std::array<std::uint8_t, kBlock> outer_pad;
  for (std::size_t i = 0; i < kBlock; ++i) {
    inner_pad[i] = static_cast<std::uint8_t>(padded[i] ^ 0x36);
    outer_pad[i] = static_cast<std::uint8_t>(padded[i] ^ 0x5c);
  }

  const Digest inner =
      Sha256{}.update(inner_pad).update(message).finish();
  return Sha256{}.update(outer_pad).update(inner.bytes).finish();
}

Digest hmac_sha256(std::span<const std::uint8_t> key,
                   std::string_view message) {
  return hmac_sha256(
      key, std::span<const std::uint8_t>(
               reinterpret_cast<const std::uint8_t*>(message.data()),
               message.size()));
}

}  // namespace findep::crypto
