// Simulation-grade digital signatures with an explicit PKI model.
//
// The protocols in findep need the *interface contract* of signatures —
// unforgeability without the secret key, binding of votes to identities —
// not number-theoretic hardness. We therefore model signing as
// HMAC-SHA256 under the secret key and model the "mathematics" of public
// verification as an explicit `KeyRegistry` oracle mapping public keys to
// verification material. This keeps every protocol message byte-exact and
// deterministic while the faults library separately models *implementation*
// flaws (e.g. a broken crypto library leaking keys), exactly the split the
// paper's adversary model makes (§II-B).
//
// Not suitable for production cryptography, by design.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string_view>
#include <unordered_map>

#include "crypto/hmac.h"
#include "crypto/sha256.h"

namespace findep::support {
class Rng;
}

namespace findep::crypto {

/// Public identity of a signer (digest of its secret seed).
struct PublicKey {
  Digest id;

  auto operator<=>(const PublicKey&) const = default;
  [[nodiscard]] std::string to_hex() const { return id.to_hex(); }
};

/// Detached signature tag.
struct Signature {
  Digest tag;

  bool operator==(const Signature&) const = default;
};

/// Signing key. Copyable (replicas hand keys to TEEs in the attestation
/// model) but the secret never appears in protocol messages.
class KeyPair {
 public:
  /// Generates a key pair from the simulation RNG.
  [[nodiscard]] static KeyPair generate(support::Rng& rng);

  /// Deterministic derivation from a seed — convenient for assigning one
  /// key per node id in large simulations.
  [[nodiscard]] static KeyPair derive(std::uint64_t seed);

  [[nodiscard]] const PublicKey& public_key() const noexcept { return pub_; }

  [[nodiscard]] Signature sign(std::span<const std::uint8_t> message) const;
  [[nodiscard]] Signature sign(std::string_view message) const;
  [[nodiscard]] Signature sign(const Digest& message) const;

  /// Exposes the secret seed to the key registry and the VRF; protocol
  /// code has no reason to call this.
  [[nodiscard]] const Digest& secret_for_oracle() const noexcept {
    return secret_;
  }

 private:
  KeyPair(Digest secret, PublicKey pub) : secret_(secret), pub_(pub) {}

  Digest secret_;
  PublicKey pub_;
};

/// The verification oracle standing in for public-key mathematics. Every
/// simulation owns one registry; verification succeeds iff the signature
/// was produced by the registered key for that public key.
class KeyRegistry {
 public:
  /// Registers a key pair; idempotent for the same pair. Returns false if
  /// a *different* secret was already registered under the public key
  /// (which would indicate a broken test setup).
  bool enroll(const KeyPair& keys);

  [[nodiscard]] bool is_enrolled(const PublicKey& pub) const;

  [[nodiscard]] bool verify(const PublicKey& pub,
                            std::span<const std::uint8_t> message,
                            const Signature& sig) const;
  [[nodiscard]] bool verify(const PublicKey& pub, std::string_view message,
                            const Signature& sig) const;
  [[nodiscard]] bool verify(const PublicKey& pub, const Digest& message,
                            const Signature& sig) const;

  [[nodiscard]] std::size_t size() const noexcept { return keys_.size(); }

  /// Oracle-only accessor used by the VRF to model output *uniqueness*
  /// (a real VRF proof pins the output; here the oracle recomputes it).
  /// Protocol code must never consult this.
  [[nodiscard]] std::optional<Digest> oracle_secret(
      const PublicKey& pub) const {
    return secret_of(pub);
  }

 private:
  [[nodiscard]] std::optional<Digest> secret_of(const PublicKey& pub) const;

  std::unordered_map<Digest, Digest> keys_;  // pub id -> secret
};

}  // namespace findep::crypto

template <>
struct std::hash<findep::crypto::PublicKey> {
  std::size_t operator()(const findep::crypto::PublicKey& k) const noexcept {
    return std::hash<findep::crypto::Digest>{}(k.id);
  }
};
