// SHA-256 (FIPS 180-4), implemented from scratch.
//
// The paper assumes "the security of the used cryptographic primitives and
// protocols, but not their implementations" (§II-B). We implement the hash
// for real — it anchors configuration digests, Merkle commitments, block
// ids and the simulated signature scheme — and model *implementation*
// flaws separately in the faults library.
#pragma once

#include <array>
#include <compare>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>

namespace findep::crypto {

/// A 256-bit digest. Ordered and hashable so it can key maps.
struct Digest {
  std::array<std::uint8_t, 32> bytes{};

  auto operator<=>(const Digest&) const = default;

  /// Lowercase hex, 64 chars.
  [[nodiscard]] std::string to_hex() const;

  /// Parses 64 hex chars. Throws ContractViolation on malformed input.
  [[nodiscard]] static Digest from_hex(std::string_view hex);

  /// First 8 bytes as big-endian integer — convenient for PoW-style
  /// threshold comparisons and cheap map keys.
  [[nodiscard]] std::uint64_t prefix64() const noexcept;
};

/// Incremental SHA-256 context.
class Sha256 {
 public:
  Sha256() noexcept;

  Sha256& update(std::span<const std::uint8_t> data) noexcept;
  Sha256& update(std::string_view text) noexcept;
  /// Appends an integer in little-endian byte order (domain separation of
  /// numeric fields in protocol messages).
  Sha256& update_u64(std::uint64_t value) noexcept;

  /// Finalizes and returns the digest. The context must not be reused
  /// afterwards (enforced by contract).
  [[nodiscard]] Digest finish();

 private:
  void process_block(const std::uint8_t* block) noexcept;

  std::array<std::uint32_t, 8> state_{};
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t buffered_ = 0;
  std::uint64_t total_bytes_ = 0;
  bool finished_ = false;
};

/// One-shot helpers.
[[nodiscard]] Digest sha256(std::span<const std::uint8_t> data) noexcept;
[[nodiscard]] Digest sha256(std::string_view text) noexcept;
/// sha256(sha256(x)) — Bitcoin-style double hash for block ids.
[[nodiscard]] Digest sha256d(std::span<const std::uint8_t> data) noexcept;

}  // namespace findep::crypto

template <>
struct std::hash<findep::crypto::Digest> {
  std::size_t operator()(
      const findep::crypto::Digest& d) const noexcept {
    // The digest is already uniform; fold the first bytes.
    std::size_t h = 0;
    for (std::size_t i = 0; i < sizeof(std::size_t); ++i) {
      h = (h << 8) | d.bytes[i];
    }
    return h;
  }
};
