// HMAC-SHA256 (RFC 2104 / FIPS 198-1), built on the local SHA-256.
// Used for keyed commitments (configuration privacy, Remark 3) and as the
// PRF inside the simulated signature and VRF schemes.
#pragma once

#include <span>
#include <string_view>

#include "crypto/sha256.h"

namespace findep::crypto {

/// HMAC-SHA256 over `message` with `key`. Keys longer than the 64-byte
/// block are pre-hashed per the RFC.
[[nodiscard]] Digest hmac_sha256(std::span<const std::uint8_t> key,
                                 std::span<const std::uint8_t> message);

[[nodiscard]] Digest hmac_sha256(std::span<const std::uint8_t> key,
                                 std::string_view message);

}  // namespace findep::crypto
