// Binary Merkle tree with inclusion proofs.
//
// Used for block transaction commitments in the Nakamoto substrate and for
// attested-configuration registries (a verifier can check one replica's
// attested configuration against a published registry root without seeing
// the whole registry — part of the configuration-privacy story of §III-B).
#pragma once

#include <cstddef>
#include <vector>

#include "crypto/sha256.h"

namespace findep::crypto {

/// One step of a Merkle inclusion proof.
struct MerkleStep {
  Digest sibling;
  /// True when the sibling is on the right of the running hash.
  bool sibling_on_right = false;

  bool operator==(const MerkleStep&) const = default;
};

using MerkleProof = std::vector<MerkleStep>;

/// Immutable Merkle tree over a list of leaf digests.
///
/// Leaves are domain-separated from interior nodes (prefix bytes 0x00 /
/// 0x01) so a leaf value cannot be reinterpreted as an interior node
/// (second-preimage hardening). Odd nodes are promoted, not duplicated, so
/// the CVE-2012-2459-style duplicate-leaf ambiguity does not arise.
class MerkleTree {
 public:
  /// Builds a tree over `leaves` (raw leaf payload digests; the tree
  /// applies leaf domain separation itself). Requires at least one leaf.
  explicit MerkleTree(std::vector<Digest> leaves);

  [[nodiscard]] const Digest& root() const noexcept { return root_; }
  [[nodiscard]] std::size_t leaf_count() const noexcept {
    return levels_.front().size();
  }

  /// Inclusion proof for leaf `index`.
  [[nodiscard]] MerkleProof prove(std::size_t index) const;

  /// Verifies that `leaf` is included under `root` at the position encoded
  /// by `proof`.
  [[nodiscard]] static bool verify(const Digest& leaf,
                                   const MerkleProof& proof,
                                   const Digest& root);

  [[nodiscard]] static Digest hash_leaf(const Digest& payload);
  [[nodiscard]] static Digest hash_interior(const Digest& left,
                                            const Digest& right);

 private:
  std::vector<std::vector<Digest>> levels_;  // levels_[0] = leaf hashes
  Digest root_;
};

}  // namespace findep::crypto
