#include "crypto/cost.h"

#include <stdexcept>

namespace findep::crypto {

CostModel CostModel::parse(const std::string& name) {
  if (name == "free") return free();
  if (name == "modeled") return modeled();
  throw std::invalid_argument("unknown crypto cost model '" + name +
                              "' (expected free or modeled)");
}

}  // namespace findep::crypto
