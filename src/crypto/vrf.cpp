#include "crypto/vrf.h"

namespace findep::crypto {

namespace {
constexpr std::string_view kVrfDomain = "findep/vrf/v1";

Digest vrf_value(const Digest& secret, const Digest& input) {
  const Digest keyed =
      Sha256{}.update(kVrfDomain).update(secret.bytes).finish();
  return hmac_sha256(keyed.bytes, input.bytes);
}

Digest proof_message(const Digest& input, const Digest& value) {
  return Sha256{}
      .update("findep/vrf-proof/v1")
      .update(input.bytes)
      .update(value.bytes)
      .finish();
}
}  // namespace

VrfOutput vrf_evaluate(const KeyPair& keys, const Digest& input) {
  const Digest value = vrf_value(keys.secret_for_oracle(), input);
  return VrfOutput{value, keys.sign(proof_message(input, value))};
}

bool vrf_verify(const KeyRegistry& registry, const PublicKey& pub,
                const Digest& input, const VrfOutput& out) {
  // The proof signature binds (input, value) to the key...
  if (!registry.verify(pub, proof_message(input, out.value), out.proof)) {
    return false;
  }
  // ...and the oracle recomputes the value, modelling VRF *uniqueness*: a
  // key holder cannot get a self-chosen "random" value accepted.
  const auto secret = registry.oracle_secret(pub);
  return secret.has_value() && vrf_value(*secret, input) == out.value;
}

}  // namespace findep::crypto
