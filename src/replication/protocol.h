// OrderingProtocol: the seam between the protocol-neutral NodeHarness
// below and a concrete ordering protocol above.
//
// A protocol implements exactly three inbound hooks — dispatch_payload
// (an authenticated envelope), verify_stale_check (may this payload be
// shed from the verify queue?), verify_extra_cost (quorum proofs riding
// the envelope, batch-verified) — plus submit() for client ingress, and
// drives everything else through the harness' broadcast()/send_to() and
// simulator timers. The observable surface below is what the cluster
// harness, scenario metrics and campaign outcome classifier read, so a
// new protocol plugs into every existing experiment by implementing it.
//
// To add a third protocol (e.g. an attestation-backed MinBFT using
// src/attest/ trusted counters): derive from OrderingProtocol, reuse
// CheckpointStore/StateFetchMachine from replication/durability.h for
// the durable tail, add its wire messages to bft::Payload, and register
// the axis value in parse_protocol + the cluster factory. Nothing in the
// harness or the scenario plumbing changes.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "bft/messages.h"
#include "net/network.h"
#include "replication/harness.h"
#include "runtime/workers.h"

namespace findep::replication {

// The wire/protocol vocabulary stays in findep::bft (the message set is
// shared by every protocol); pull it in so protocol implementations read
// naturally.
using bft::Batch;
using bft::Checkpoint;
using bft::Commit;
using bft::Envelope;
using bft::ExecutedEntry;
using bft::NewView;
using bft::Payload;
using bft::PrePrepare;
using bft::Prepare;
using bft::PreparedEntry;
using bft::ReplicaId;
using bft::Request;
using bft::SeqNum;
using bft::SignedCheckpoint;
using bft::SignedViewChange;
using bft::StateRequest;
using bft::StateResponse;
using bft::View;
using bft::ViewChange;

class OrderingProtocol {
 public:
  virtual ~OrderingProtocol() = default;
  OrderingProtocol(const OrderingProtocol&) = delete;
  OrderingProtocol& operator=(const OrderingProtocol&) = delete;

  /// Attaches the network handler. Call once before the simulation runs.
  virtual void start() = 0;
  /// Client entry point: hands a request to this replica.
  virtual void submit(const Request& request) = 0;

  // --- harness → protocol ----------------------------------------------
  /// The post-authentication half of message receipt: routes the payload
  /// to its handler. Reached through the inline crypto=free path and the
  /// worker-pool completion path alike, so offloading cannot drift from
  /// the inline dispatch semantics.
  virtual void dispatch_payload(const Envelope& env, net::NodeId raw_from,
                                std::uint64_t raw_bytes) = 0;
  /// Stale predicate for a verify-pool task carrying `payload`, or null
  /// when the payload class never goes stale.
  [[nodiscard]] virtual runtime::WorkerPool::StaleCheck verify_stale_check(
      const Payload& payload) const {
    (void)payload;
    return nullptr;
  }
  /// Modeled verify cost beyond the envelope signature itself: quorum
  /// proofs embedded in `payload`, batch-verified in one pool task.
  [[nodiscard]] virtual double verify_extra_cost(
      const Payload& payload) const {
    (void)payload;
    return 0.0;
  }

  // --- protocol-neutral observables ------------------------------------
  [[nodiscard]] virtual const std::vector<ExecutedEntry>& executed()
      const = 0;
  [[nodiscard]] virtual SeqNum last_executed() const = 0;
  [[nodiscard]] virtual SeqNum stable_checkpoint() const = 0;
  /// State digest of this replica's stable checkpoint (meaningful only
  /// when stable_checkpoint() > 0).
  [[nodiscard]] virtual const crypto::Digest& stable_checkpoint_digest()
      const = 0;
  /// Ordering-progress disruptions the protocol recorded: PBFT view
  /// changes started, HotStuff pacemaker timeouts fired. The campaign
  /// outcome classifier counts these as detection evidence.
  [[nodiscard]] virtual std::uint64_t progress_disruptions() const = 0;
  /// True if this replica ever witnessed a leader-regime disruption
  /// (even one it did not initiate — e.g. it installed a view or round
  /// advanced past a timeout started elsewhere).
  [[nodiscard]] virtual bool observed_disruption() const = 0;
  /// Proposals deferred by flow control (0 for protocols without it).
  [[nodiscard]] virtual std::uint64_t proposals_deferred() const {
    return 0;
  }
  /// Completed (verified + adopted) state transfers.
  [[nodiscard]] virtual std::uint64_t state_transfers_completed() const = 0;
  /// State responses rejected for a bad proof, bad entries or a state
  /// digest mismatch (each followed by a retry at another peer).
  [[nodiscard]] virtual std::uint64_t state_transfers_rejected() const = 0;
  /// StateRequest messages sent (first attempts and retries).
  [[nodiscard]] virtual std::uint64_t state_transfer_requests() const = 0;
  /// Wire bytes of every StateResponse received (adopted or rejected).
  [[nodiscard]] virtual std::uint64_t state_transfer_bytes() const = 0;
  /// (request id, simulated time) pairs recorded when a request first
  /// executes on this replica, in execution order. The protocol-
  /// comparison scenarios join them against client submit times to
  /// derive commit-latency percentiles. State-transfer splices are NOT
  /// recorded (the adopting replica did not witness the commit).
  [[nodiscard]] virtual const std::vector<std::pair<std::uint64_t, double>>&
  commit_times() const = 0;

  // --- harness-backed observables --------------------------------------
  [[nodiscard]] ReplicaId id() const noexcept { return harness_.id(); }
  [[nodiscard]] Behavior behavior() const noexcept {
    return harness_.options().behavior;
  }
  [[nodiscard]] std::uint64_t corrupted_rejected() const noexcept {
    return harness_.corrupted_rejected();
  }
  [[nodiscard]] std::uint64_t verify_tasks() const noexcept {
    return harness_.verify_tasks();
  }
  [[nodiscard]] std::uint64_t verify_dropped_stale() const noexcept {
    return harness_.verify_dropped_stale();
  }
  [[nodiscard]] double verify_busy_seconds() const noexcept {
    return harness_.verify_busy_seconds();
  }
  [[nodiscard]] const NodeHarness& harness() const noexcept {
    return harness_;
  }

 protected:
  OrderingProtocol(ReplicaId id, std::vector<double> weights,
                   std::vector<crypto::PublicKey> directory,
                   crypto::KeyRegistry& registry, crypto::KeyPair keys,
                   net::SimNetwork& network, ReplicaOptions options,
                   Protocol kind)
      : harness_(*this, id, std::move(weights), std::move(directory),
                 registry, std::move(keys), network, std::move(options),
                 kind) {}

  NodeHarness harness_;
};

}  // namespace findep::replication
