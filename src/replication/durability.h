// Shared durability layer: checkpointing and checkpoint-anchored state
// transfer, reusable by any ordering protocol.
//
// CheckpointStore tracks checkpoint votes (digest-keyed, one vote per
// sender per seq, watermark-windowed against Byzantine bloat), adopts
// stable checkpoints with their signed vote quorum as proof, and decides
// when this replica should emit its own checkpoint.
//
// StateFetchMachine is the claims-driven fetch loop from the churn work:
// it records peers' signed claims of stable/executed seqs, detects when
// > 1/3 of voting power credibly certifies state above our execution
// horizon (so at least one *honest* peer can prove a stable checkpoint
// there), and runs the grace → fetch → retry-elsewhere timer machine.
// The protocol supplies two hooks: its execution horizon and the actual
// StateRequest send; everything else — including the replica-local RNG
// for peer choice — lives here, so PBFT and HotStuff share one tested
// recovery path.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "bft/messages.h"
#include "replication/harness.h"
#include "sim/simulator.h"
#include "support/rng.h"

namespace findep::replication {

class CheckpointStore {
 public:
  explicit CheckpointStore(const NodeHarness& harness)
      : harness_(&harness) {}

  /// Decides whether this replica should broadcast its own checkpoint at
  /// `last_executed`: returns the seq to checkpoint (recording it as
  /// sent), or 0 when below the interval threshold or already sent.
  [[nodiscard]] bft::SeqNum maybe_emit(bft::SeqNum last_executed,
                                       bft::SeqNum interval);

  /// Tracks a peer's signed checkpoint vote. Votes are only *tracked*
  /// within a bounded window above the stable checkpoint (allowing for
  /// our own in-flight execution horizon, which can legitimately run
  /// ahead of stability); anything beyond is dropped — a Byzantine peer
  /// advertising arbitrary far-future seqs cannot bloat the vote map.
  /// One vote per sender per seq (first wins). Returns true when the
  /// vote completed a quorum and the stable checkpoint advanced (the
  /// proof is the signed vote quorum); the caller prunes its own
  /// consensus state in response.
  [[nodiscard]] bool on_vote(const bft::Checkpoint& cp, bft::ReplicaId from,
                             const crypto::Signature& signature,
                             bft::SeqNum last_executed,
                             bft::SeqNum interval);

  /// State-transfer adoption: takes over a proven remote checkpoint (and
  /// its proof, so we can serve transfers ourselves) when it is at or
  /// above the current stable seq, retires any pending own checkpoint at
  /// or below the result, and prunes dead votes.
  void maybe_adopt(const bft::Checkpoint& checkpoint,
                   const std::vector<bft::SignedCheckpoint>& proof);

  [[nodiscard]] bft::SeqNum stable() const noexcept { return stable_; }
  [[nodiscard]] const crypto::Digest& digest() const noexcept {
    return digest_;
  }
  /// The signed vote quorum that made stable() stable — what a
  /// StateResponse hands a requester as proof.
  [[nodiscard]] const std::vector<bft::SignedCheckpoint>& proof()
      const noexcept {
    return proof_;
  }

 private:
  void prune_votes();

  const NodeHarness* harness_;
  bft::SeqNum stable_ = 0;
  crypto::Digest digest_;
  std::vector<bft::SignedCheckpoint> proof_;
  bft::SeqNum last_sent_ = 0;
  /// seq -> state digest -> voters (digest-keyed so a Byzantine replica
  /// cannot contribute to a checkpoint it does not actually hold).
  std::map<bft::SeqNum, std::map<crypto::Digest,
                                 std::map<bft::ReplicaId,
                                          bft::SignedCheckpoint>>>
      votes_;
};

class StateFetchMachine {
 public:
  struct Hooks {
    /// The protocol's execution horizon (its last executed seq).
    std::function<bft::SeqNum()> horizon;
    /// Sends StateRequest{horizon} to the chosen peer.
    std::function<void(bft::ReplicaId)> send_request;
  };

  StateFetchMachine(const NodeHarness& harness, Hooks hooks);

  /// Records a peer's signed claim of a stable/executed seq (checkpoint
  /// votes, view-change stable fields, new-view proofs, QC heights). One
  /// cell per replica, so Byzantine peers cannot bloat it. A raised
  /// claim may tip the > 1/3 evidence threshold, so this re-runs
  /// maybe_schedule() — the only trigger a laggard whose vote window the
  /// cluster ran past ever sees.
  void note_claim(bft::ReplicaId from, bft::SeqNum seq);

  /// The highest seq claimed at-or-above by > 1/3 of voting power beyond
  /// our execution horizon — at least one *honest* replica can prove a
  /// stable checkpoint there. 0 when we are not credibly behind.
  [[nodiscard]] bft::SeqNum catchup_target() const;

  /// Arms the grace timer when we are credibly behind and no fetch is in
  /// flight.
  void maybe_schedule();

  /// A response from `from` failed verification: retry elsewhere
  /// immediately instead of waiting out the timer (no-op when no fetch
  /// is in flight).
  void on_rejected(bft::ReplicaId from);

  /// A response was verified and adopted: stand down.
  void on_adopted();

  void disarm();

  /// StateRequest messages sent (first attempts and retries).
  [[nodiscard]] std::uint64_t requests_sent() const noexcept {
    return requests_sent_;
  }

 private:
  /// One fetch attempt: re-check the target, pick a random up-to-date
  /// peer (avoiding the previous one when possible), send StateRequest,
  /// re-arm the retry timer.
  void tick();

  const NodeHarness* harness_;
  Hooks hooks_;
  /// Highest checkpoint/stable seq each peer has credibly (signed)
  /// claimed; fixed size n. Feeds catchup_target().
  std::vector<bft::SeqNum> peer_claims_;
  /// The timer doubles as the state (armed = a fetch is scheduled or
  /// awaiting a response).
  std::optional<sim::EventId> timer_;
  std::optional<bft::ReplicaId> last_fetch_peer_;
  support::Rng st_rng_;
  std::uint64_t requests_sent_ = 0;
};

/// Verifies a checkpoint's signed vote quorum: distinct in-directory
/// senders, votes matching the checkpoint, valid signatures, quorum
/// weight. Shared by every protocol's state-transfer receive path.
[[nodiscard]] bool verify_checkpoint_proof(
    const NodeHarness& harness, const bft::Checkpoint& checkpoint,
    const std::vector<bft::SignedCheckpoint>& proof);

/// State digest of `log` extended by `extra` (what checkpoint emission
/// hashes, and what a state response's entries must reproduce).
[[nodiscard]] crypto::Digest state_digest_over(
    const std::vector<bft::ExecutedEntry>& log,
    const std::vector<bft::ExecutedEntry>& extra);

}  // namespace findep::replication
