#include "replication/harness.h"

#include <algorithm>
#include <utility>
#include <variant>

#include "replication/protocol.h"
#include "support/assert.h"

namespace findep::replication {

NodeHarness::NodeHarness(OrderingProtocol& protocol, bft::ReplicaId id,
                         std::vector<double> weights,
                         std::vector<crypto::PublicKey> directory,
                         crypto::KeyRegistry& registry, crypto::KeyPair keys,
                         net::SimNetwork& network, ReplicaOptions options,
                         Protocol kind)
    : protocol_(&protocol),
      id_(id),
      weights_(std::move(weights)),
      directory_(std::move(directory)),
      registry_(&registry),
      keys_(std::move(keys)),
      network_(&network),
      options_(std::move(options)) {
  FINDEP_REQUIRE(id_ < weights_.size());
  FINDEP_REQUIRE(weights_.size() == directory_.size());
  FINDEP_REQUIRE(weights_.size() >= 4);  // tolerate at least one fault
  validate_replica_options(options_, kind);
  for (const double w : weights_) {
    FINDEP_REQUIRE(w > 0.0);
    total_weight_ += w;
  }
  FINDEP_REQUIRE_MSG(directory_[id_] == keys_.public_key(),
                     "key pair must match the directory entry");
  if (!options_.cost_model.is_free()) {
    verify_pool_ = std::make_unique<runtime::WorkerPool>(
        network_->simulator(), options_.crypto_workers);
  }
}

double NodeHarness::weight_of(bft::ReplicaId r) const {
  FINDEP_REQUIRE(r < weights_.size());
  return weights_[r];
}

double NodeHarness::vote_weight(
    const std::map<bft::ReplicaId, double>& votes) const {
  double sum = 0.0;
  for (const auto& [replica, weight] : votes) sum += weight;
  return sum;
}

void NodeHarness::start() {
  FINDEP_REQUIRE_MSG(!started_, "start() called twice");
  started_ = true;
  network_->attach(id_,
                   [this](const net::Message& msg) { on_message(msg); });
}

void NodeHarness::broadcast(bft::Payload payload) {
  if (options_.behavior == Behavior::kSilent) return;
  const std::uint64_t bytes = bft::payload_wire_bytes(payload);
  // One shared body for the whole fan-out (every replica is attached, so
  // the network broadcast reaches exactly the other replicas)...
  const net::Envelope wire(
      bft::make_envelope(id_, keys_, std::move(payload)));
  if (options_.cost_model.is_free()) {
    network_->broadcast(id_, wire, bytes);
    // ...then the "send to yourself" leg, sharing the same body.
    network_->send(id_, id_, wire, bytes);
    return;
  }
  // Modeled signing occupies the protocol core: back-to-back sends
  // serialize behind the sign accumulator, and the wire only leaves once
  // its signature is done. One signature covers the whole fan-out.
  sim::Simulator& sim = network_->simulator();
  sign_ready_at_ = std::max(sign_ready_at_, sim.now()) +
                   options_.cost_model.sign_seconds();
  sim.schedule_at(sign_ready_at_, [this, wire, bytes] {
    network_->broadcast(id_, wire, bytes);
    network_->send(id_, id_, wire, bytes);
  });
}

void NodeHarness::send_to(net::NodeId to, bft::Payload payload) {
  if (options_.behavior == Behavior::kSilent) return;
  const std::uint64_t bytes = bft::payload_wire_bytes(payload);
  // Forwarding a client request is a relay of the client's own signed
  // message, not a statement by this replica — a real deployment ships
  // the client envelope through unchanged, so relays are never charged
  // sign time (and must not serialize behind protocol sends: a backup
  // relaying a big request burst would otherwise delay its own votes by
  // the whole burst's worth of signing).
  const bool relay = std::holds_alternative<bft::Request>(payload);
  const net::Envelope wire(
      bft::make_envelope(id_, keys_, std::move(payload)));
  if (options_.cost_model.is_free() || relay) {
    network_->send(id_, to, wire, bytes);
    return;
  }
  sim::Simulator& sim = network_->simulator();
  sign_ready_at_ = std::max(sign_ready_at_, sim.now()) +
                   options_.cost_model.sign_seconds();
  sim.schedule_at(sign_ready_at_, [this, to, wire, bytes] {
    network_->send(id_, to, wire, bytes);
  });
}

void NodeHarness::on_message(const net::Message& raw) {
  if (raw.corrupted) {
    // In-flight bit flip: the signature check a real deployment runs over
    // the wire bytes fails, so the message dies before any dispatch. The
    // rejection is counted — observable detection of the fault.
    ++corrupted_rejected_;
    return;
  }
  if (options_.behavior == Behavior::kSilent) return;
  const bft::Envelope* env = raw.envelope.get<bft::Envelope>();
  if (env == nullptr) return;  // foreign traffic
  // Authentication: the claimed sender key must be the directory entry
  // (clients are outside the directory and allowed for Request only).
  const bool from_replica = env->sender < weights_.size();
  if (from_replica && directory_[env->sender] != env->sender_key) return;
  if (verify_pool_ == nullptr || env->sender == id_) {
    // crypto=free (no pool), or our own loopback leg — a replica does
    // not re-verify its own signature, so the self-send stays on the
    // historical inline path even under a modeled cost.
    if (!bft::verify_envelope(*registry_, *env)) return;
    protocol_->dispatch_payload(*env, raw.from, raw.bytes);
    return;
  }
  offload_verify(raw, *env);
}

void NodeHarness::offload_verify(const net::Message& raw,
                                 const bft::Envelope& env) {
  // Client requests are speculative: every protocol tolerates them late
  // (they only seed batches), so quorum-forming consensus and recovery
  // traffic always verifies first.
  const runtime::TaskPriority priority =
      std::holds_alternative<bft::Request>(env.payload)
          ? runtime::TaskPriority::kSpeculative
          : runtime::TaskPriority::kCritical;
  // Quorum proofs ride one envelope and are batch-verified; the protocol
  // declares the extra cost (a NEW-VIEW carries its view-change quorum, a
  // proposal its QC, a state response its checkpoint vote quorum).
  // Everything else is one signature check.
  const double cost = options_.cost_model.verify_seconds() +
                      protocol_->verify_extra_cost(env.payload);
  // Keep the shared envelope body alive until the completion runs; the
  // completion re-reads it and takes the exact inline dispatch path.
  net::Envelope keep = raw.envelope;
  const net::NodeId from = raw.from;
  const std::uint64_t bytes = raw.bytes;
  verify_pool_->submit(
      priority, cost, protocol_->verify_stale_check(env.payload),
      [this, keep = std::move(keep), from, bytes](bool dropped) {
        if (dropped) return;
        const bft::Envelope* env = keep.get<bft::Envelope>();
        FINDEP_ASSERT(env != nullptr);
        if (!bft::verify_envelope(*registry_, *env)) return;
        protocol_->dispatch_payload(*env, from, bytes);
      });
}

}  // namespace findep::replication
