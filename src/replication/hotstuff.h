// Chained HotStuff over the layered replication core.
//
// The pipelined, linear-communication lane of the protocol axis: one
// block proposal per round, each block extending the highest known
// quorum certificate (parent == justify.block_digest), votes sent to the
// *next* round's leader who aggregates them into a QC — so a decision
// costs O(n) messages where PBFT's all-to-all prepare/commit costs
// O(n²). Commit uses the two-chain rule (the DiemBFT / HotStuff-2
// refinement of the original 3-chain): a block b0 is committed once two
// QCs span consecutive rounds above it — b1 with b1.justify == QC(b0)
// and b1.round == b0.round + 1, certified by QC(b1). Safety comes from
// the vote rule: a replica votes for b only if b.justify is at least as
// fresh as the highest QC it has adopted (and at most once per round),
// so any block certified after a committed two-chain must descend from
// it. Two-chain matters for liveness under crashed leaders, not just
// latency: with a fixed leader = round mod n rotation, a commit needs a
// run of *consecutive* live-leader rounds (proposers of r and r+1 plus
// the collector of QC(r+1) at r+2 — three in a row), and three is the
// longest run some <1/3 crash patterns leave standing (e.g. replicas
// {2,5} dead in n=7 caps the live run at {6,0,1}); the 3-chain rule
// would need four and stall forever. Leadership rotates round-robin with
// an exponential-backoff pacemaker: a round that makes no progress times
// out, the timeout (carrying the sender's high-QC) is broadcast, a
// > 2/3 timeout quorum licenses the new round's leader to propose
// without a fresh QC, and a replica seeing > 1/3 timeout weight for a
// later round joins the timeout itself (amplification) even when its
// own pacemaker is idle.
//
// Reuses the shared layers end to end: NodeHarness for authentication,
// modeled crypto and weighted quorums; bft::Batch and the primary-side
// cut policy (batch_size / batch_timeout) for batching; CheckpointStore
// and StateFetchMachine for the durable tail — a HotStuff checkpoint
// proof is verifiable by a PBFT-era verifier and vice versa, because
// both hash the same executed-entry log.
//
// Byzantine behaviours mirror the PBFT lane where they translate:
//   kSilent     — never sends anything.
//   kEquivocate — as leader, proposes conflicting blocks for the same
//                 round to different halves of the cluster. The QC rules
//                 reject this structurally: honest votes split between
//                 two digests, neither reaches quorum, and the round
//                 times out onto the next leader.
//   kCollude    — equivocates as leader and votes for *every* proposal
//                 it hears, ignoring SafeNode and its own vote history.
//   kCensor     — drops odd-id requests at ingress.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "bft/messages.h"
#include "net/network.h"
#include "replication/durability.h"
#include "replication/protocol.h"
#include "sim/simulator.h"

namespace findep::replication {

using bft::HsBlock;
using bft::HsBlockRequest;
using bft::HsBlockResponse;
using bft::HsProposal;
using bft::HsQcNotice;
using bft::HsSignedVote;
using bft::HsTimeout;
using bft::HsVote;
using bft::QuorumCert;
using Round = std::uint64_t;

class HotStuff final : public OrderingProtocol {
 public:
  /// Same contract as replication::Pbft: `weights[i]` is replica i's
  /// voting power, `directory[i]` its public key, `keys` must match
  /// `directory[id]` and be enrolled in `registry`.
  HotStuff(ReplicaId id, std::vector<double> weights,
           std::vector<crypto::PublicKey> directory,
           crypto::KeyRegistry& registry, crypto::KeyPair keys,
           net::SimNetwork& network, ReplicaOptions options);

  void start() override;
  void submit(const Request& request) override;

  [[nodiscard]] Round round() const noexcept { return round_; }
  [[nodiscard]] const QuorumCert& high_qc() const noexcept {
    return high_qc_;
  }
  [[nodiscard]] SeqNum committed_height() const noexcept {
    return committed_height_;
  }
  /// Pacemaker timeouts this replica fired (its own round expiries, not
  /// timeouts merely received from peers).
  [[nodiscard]] std::uint64_t timeouts_fired() const noexcept {
    return timeouts_fired_;
  }

  [[nodiscard]] const std::vector<ExecutedEntry>& executed()
      const noexcept override {
    return executed_;
  }
  [[nodiscard]] SeqNum last_executed() const noexcept override {
    return last_executed_;
  }
  [[nodiscard]] SeqNum stable_checkpoint() const noexcept override {
    return ckpt_.stable();
  }
  [[nodiscard]] const crypto::Digest& stable_checkpoint_digest()
      const noexcept override {
    return ckpt_.digest();
  }
  /// HotStuff's ordering-progress disruptions are its pacemaker
  /// timeouts.
  [[nodiscard]] std::uint64_t progress_disruptions()
      const noexcept override {
    return timeouts_fired_;
  }
  [[nodiscard]] bool observed_disruption() const noexcept override {
    return observed_disruption_;
  }
  [[nodiscard]] std::uint64_t state_transfers_completed()
      const noexcept override {
    return state_transfers_completed_;
  }
  [[nodiscard]] std::uint64_t state_transfers_rejected()
      const noexcept override {
    return state_transfers_rejected_;
  }
  [[nodiscard]] std::uint64_t state_transfer_requests()
      const noexcept override {
    return fetch_.requests_sent();
  }
  [[nodiscard]] std::uint64_t state_transfer_bytes()
      const noexcept override {
    return state_transfer_bytes_;
  }
  [[nodiscard]] const std::vector<std::pair<std::uint64_t, double>>&
  commit_times() const noexcept override {
    return commit_times_;
  }

  [[nodiscard]] ReplicaId leader_of(Round r) const noexcept {
    return static_cast<ReplicaId>(r % harness_.n());
  }
  [[nodiscard]] bool is_leader() const noexcept {
    return leader_of(round_) == id();
  }

  // --- harness → protocol ----------------------------------------------
  void dispatch_payload(const Envelope& env, net::NodeId raw_from,
                        std::uint64_t raw_bytes) override;
  [[nodiscard]] runtime::WorkerPool::StaleCheck verify_stale_check(
      const Payload& payload) const override;
  [[nodiscard]] double verify_extra_cost(
      const Payload& payload) const override;

 private:
  /// Vote accumulator for one (round, block digest) pair. The signed
  /// votes become the QC's proof when quorum weight is reached.
  struct VoteSet {
    SeqNum height = 0;
    std::map<ReplicaId, HsSignedVote> votes;
  };

  // --- dispatch ---------------------------------------------------------
  void on_request(const Request& request, net::NodeId from);
  void on_proposal(const HsProposal& p, ReplicaId from);
  void on_vote(const HsVote& v, ReplicaId from,
               const crypto::Signature& signature);
  void on_timeout(const HsTimeout& t, ReplicaId from);
  void on_qc_notice(const HsQcNotice& notice);
  void on_block_request(const HsBlockRequest& req, ReplicaId from);
  void on_block_response(const HsBlockResponse& resp);
  void on_checkpoint(const Checkpoint& cp, ReplicaId from,
                     const crypto::Signature& signature);
  void on_state_request(const StateRequest& sr, ReplicaId from);
  void on_state_response(const StateResponse& resp, ReplicaId from);

  // --- chain / safety ---------------------------------------------------
  /// Verifies a QC: distinct in-directory voters whose signatures cover
  /// HsVote{round, height, block_digest}, with quorum weight. The
  /// genesis QC (round 0) is the one vote-free certificate.
  [[nodiscard]] bool verify_qc(const QuorumCert& qc) const;
  /// Adopts `qc` as high-QC if it certifies a later round, then runs the
  /// commit rule. Returns true if high-QC advanced.
  bool update_high_qc(const QuorumCert& qc);
  /// The two-chain commit rule: commit the block high_qc_'s justify
  /// certifies when the two certificates span consecutive rounds.
  /// Missing ancestors trigger a block fetch.
  void try_commit();
  /// SafeNode: may this replica vote for `b`?
  [[nodiscard]] bool safe_to_vote(const HsBlock& b) const;
  void store_block(const HsBlock& b);
  /// Executes the committed chain up through `block` (ascending height),
  /// deduplicating request ids exactly like the PBFT batch unroll.
  void commit_chain(const HsBlock& block);
  void request_missing_block(const crypto::Digest& digest);

  // --- proposing --------------------------------------------------------
  /// Proposes in round_ if this replica leads it, has not proposed in it
  /// yet, and holds the license to (a QC from the previous round or a
  /// timeout quorum for this one). Returns true if a proposal (or a
  /// deferred partial-batch cut) is in flight.
  bool try_propose();
  void propose(Batch batch);
  /// Request ids already carried by the uncommitted chain from high_qc_
  /// down (a new proposal must not repeat them).
  [[nodiscard]] std::unordered_map<std::uint64_t, bool> chain_ids() const;
  /// Requests pending here and absent from both the executed log and the
  /// uncommitted chain, in arrival order.
  [[nodiscard]] std::vector<Request> eligible_requests() const;
  /// True while the certified chain still carries uncommitted real
  /// batches — leaders must keep extending it (with no-op blocks if
  /// necessary) until the two-chain rule flushes them.
  [[nodiscard]] bool needs_flush() const;

  // --- pacemaker --------------------------------------------------------
  /// Enters `r` (if beyond the current round) driven by a QC or timeout
  /// quorum; QC-driven entry resets the backoff.
  void enter_round(Round r, bool via_qc);
  /// Arms the round timer iff there is unfinished work (pending requests
  /// or an unflushed chain); disarms it otherwise. A quiescent cluster
  /// keeps no timer, so drained runs terminate.
  void ensure_pacemaker();
  void round_expired();
  void disarm_round_timer();
  void arm_batch_timer();
  void disarm_batch_timer();

  void maybe_checkpoint();
  void prune_blocks();
  [[nodiscard]] crypto::Digest state_digest_with(
      const std::vector<ExecutedEntry>& extra) const;

  // --- helpers ----------------------------------------------------------
  [[nodiscard]] const ReplicaOptions& options() const noexcept {
    return harness_.options();
  }
  [[nodiscard]] sim::Simulator& sim() const noexcept {
    return harness_.simulator();
  }
  void broadcast(Payload payload) { harness_.broadcast(std::move(payload)); }
  void send_to(net::NodeId to, Payload payload) {
    harness_.send_to(to, std::move(payload));
  }
  [[nodiscard]] double weight_of(ReplicaId r) const {
    return harness_.weight_of(r);
  }
  [[nodiscard]] bool is_quorum(double weight) const noexcept {
    return harness_.is_quorum(weight);
  }

  /// Block store keyed by digest: the uncommitted chain suffix plus the
  /// genesis anchor (committed blocks are pruned at checkpoints).
  std::map<crypto::Digest, HsBlock> blocks_;
  crypto::Digest genesis_digest_;

  QuorumCert high_qc_;
  Round round_ = 1;
  Round last_voted_round_ = 0;
  Round last_proposed_round_ = 0;
  /// Highest round for which this replica holds a > 2/3 timeout quorum
  /// (its license to propose without a fresh QC).
  Round tc_round_ = 0;

  SeqNum committed_height_ = 0;
  SeqNum last_executed_ = 0;
  std::vector<ExecutedEntry> executed_;
  std::unordered_map<std::uint64_t, bool> executed_ids_;
  std::unordered_map<std::uint64_t, Request> pending_requests_;
  /// (request id, simulated commit time) per request executed here —
  /// feeds the commit-latency percentiles in the protocol-comparison
  /// scenarios.
  std::vector<std::pair<std::uint64_t, double>> commit_times_;

  /// round -> block digest -> vote accumulator (leader side).
  std::map<Round, std::map<crypto::Digest, VoteSet>> votes_;
  /// round -> timeout voters and weights. Every replica accumulates
  /// these (timeouts are broadcast): leaders watch for the > 2/3 quorum
  /// that licenses proposing, everyone watches for the > 1/3 weight that
  /// triggers timeout amplification.
  std::map<Round, std::map<ReplicaId, double>> timeout_votes_;
  /// Highest round this replica has broadcast its own HsTimeout for
  /// (pacemaker expiry or amplification join) — one announcement per
  /// round.
  Round timeout_sent_round_ = 0;

  /// Shared durability layer (identical to the PBFT lane).
  CheckpointStore ckpt_;
  StateFetchMachine fetch_;
  std::uint64_t state_transfers_completed_ = 0;
  std::uint64_t state_transfers_rejected_ = 0;
  std::uint64_t state_transfer_bytes_ = 0;

  std::uint64_t timeouts_fired_ = 0;
  bool observed_disruption_ = false;
  /// Current pacemaker backoff multiplier (1 after QC progress, grows by
  /// pacemaker_backoff per expiry up to pacemaker_max_backoff).
  double backoff_ = 1.0;

  /// Digests already asked for via HsBlockRequest (one ask per orphan).
  std::map<crypto::Digest, bool> requested_blocks_;

  std::optional<sim::EventId> round_timer_;
  std::optional<sim::EventId> batch_timer_;
};

}  // namespace findep::replication
