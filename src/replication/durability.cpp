#include "replication/durability.h"

#include <algorithm>
#include <utility>

#include "support/assert.h"

namespace findep::replication {

bft::SeqNum CheckpointStore::maybe_emit(bft::SeqNum last_executed,
                                        bft::SeqNum interval) {
  if (last_executed < stable_ + interval) return 0;
  if (last_executed <= last_sent_) return 0;
  last_sent_ = last_executed;
  return last_executed;
}

bool CheckpointStore::on_vote(const bft::Checkpoint& cp, bft::ReplicaId from,
                              const crypto::Signature& signature,
                              bft::SeqNum last_executed,
                              bft::SeqNum interval) {
  if (cp.seq <= stable_) return false;
  const bft::SeqNum window_top =
      std::max(stable_, last_executed) + 2 * interval;
  if (cp.seq > window_top) return false;
  auto& by_digest = votes_[cp.seq];
  // One vote per sender per seq (first wins): bounds the per-seq digest
  // fan-out an equivocating voter could otherwise create.
  for (const auto& [digest, votes] : by_digest) {
    if (votes.contains(from)) return false;
  }
  auto& votes = by_digest[cp.state_digest];
  votes[from] = bft::SignedCheckpoint{from, cp, signature};
  double weight = 0.0;
  for (const auto& [voter, vote] : votes) {
    weight += harness_->weight_of(voter);
  }
  if (!harness_->is_quorum(weight)) return false;

  stable_ = cp.seq;
  digest_ = cp.state_digest;
  proof_.clear();
  proof_.reserve(votes.size());
  for (const auto& [voter, vote] : votes) {
    proof_.push_back(vote);
  }
  // Adopting a remote stable checkpoint retires any pending own
  // checkpoint at or below it: re-broadcasting a stale own checkpoint
  // for an already-stable seq would only feed dead vote rounds (two
  // simultaneous laggards could otherwise stall the next quorum).
  last_sent_ = std::max(last_sent_, stable_);
  prune_votes();
  return true;
}

void CheckpointStore::maybe_adopt(
    const bft::Checkpoint& checkpoint,
    const std::vector<bft::SignedCheckpoint>& proof) {
  if (checkpoint.seq >= stable_) {
    stable_ = checkpoint.seq;
    digest_ = checkpoint.state_digest;
    proof_ = proof;
  }
  last_sent_ = std::max(last_sent_, stable_);
  prune_votes();
}

void CheckpointStore::prune_votes() {
  for (auto it = votes_.begin(); it != votes_.end();) {
    it = it->first <= stable_ ? votes_.erase(it) : std::next(it);
  }
}

StateFetchMachine::StateFetchMachine(const NodeHarness& harness, Hooks hooks)
    : harness_(&harness),
      hooks_(std::move(hooks)),
      st_rng_(support::mix64(harness.options().rng_seed)) {
  FINDEP_REQUIRE(hooks_.horizon != nullptr);
  FINDEP_REQUIRE(hooks_.send_request != nullptr);
  peer_claims_.assign(harness.n(), 0);
}

void StateFetchMachine::note_claim(bft::ReplicaId from, bft::SeqNum seq) {
  if (from >= peer_claims_.size() || from == harness_->id()) return;
  if (seq <= peer_claims_[from]) return;
  peer_claims_[from] = seq;
  maybe_schedule();
}

bft::SeqNum StateFetchMachine::catchup_target() const {
  // Highest seq S with > 1/3 of voting power claiming >= S beyond our
  // horizon: walk claims in descending order accumulating weight. The
  // 1/3 bound guarantees at least one *honest* claimant holds a provable
  // stable checkpoint at S — Byzantine peers alone (< 1/3) cannot
  // fabricate a target, and an inflated single claim is skipped over
  // until honest weight joins the count.
  const bft::SeqNum horizon = hooks_.horizon();
  std::vector<std::pair<bft::SeqNum, double>> claims;
  for (bft::ReplicaId r = 0; r < peer_claims_.size(); ++r) {
    if (r == harness_->id()) continue;
    if (peer_claims_[r] > horizon) {
      claims.emplace_back(peer_claims_[r], harness_->weight_of(r));
    }
  }
  std::sort(claims.begin(), claims.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  double weight = 0.0;
  for (const auto& [seq, w] : claims) {
    weight += w;
    if (harness_->is_third(weight)) return seq;
  }
  return 0;
}

void StateFetchMachine::maybe_schedule() {
  if (!harness_->options().enable_state_transfer) return;
  if (timer_.has_value()) return;  // already scheduled/awaiting
  if (catchup_target() == 0) return;
  // Grace period: in-flight slots usually commit from live traffic
  // within a round trip; fetch only if the gap persists.
  timer_ = harness_->simulator().schedule_after(
      harness_->options().state_transfer_grace, [this] {
        timer_.reset();
        tick();
      });
}

void StateFetchMachine::tick() {
  const bft::SeqNum target = catchup_target();
  if (target == 0) {
    // Caught up (live traffic or an earlier transfer closed the gap).
    last_fetch_peer_.reset();
    return;
  }
  // Candidates: every peer whose signed claim reaches the target. Avoid
  // re-asking the peer that just failed or timed out when there is a
  // choice ("retry elsewhere").
  std::vector<bft::ReplicaId> candidates;
  for (bft::ReplicaId r = 0; r < peer_claims_.size(); ++r) {
    if (r == harness_->id() || peer_claims_[r] < target) continue;
    candidates.push_back(r);
  }
  if (candidates.empty()) return;
  if (candidates.size() > 1 && last_fetch_peer_.has_value()) {
    std::erase(candidates, *last_fetch_peer_);
  }
  const bft::ReplicaId peer =
      candidates[st_rng_.below(candidates.size())];
  last_fetch_peer_ = peer;
  ++requests_sent_;
  hooks_.send_request(peer);
  timer_ = harness_->simulator().schedule_after(
      harness_->options().state_transfer_timeout, [this] {
        timer_.reset();
        tick();
      });
}

void StateFetchMachine::on_rejected(bft::ReplicaId from) {
  if (!timer_.has_value()) return;
  // Retry elsewhere immediately instead of waiting out the timer;
  // last_fetch_peer_ steers the pick away from this responder.
  disarm();
  last_fetch_peer_ = from;
  tick();
}

void StateFetchMachine::on_adopted() {
  disarm();
  last_fetch_peer_.reset();
}

void StateFetchMachine::disarm() {
  if (timer_.has_value()) {
    harness_->simulator().cancel(*timer_);
    timer_.reset();
  }
}

bool verify_checkpoint_proof(const NodeHarness& harness,
                             const bft::Checkpoint& checkpoint,
                             const std::vector<bft::SignedCheckpoint>& proof) {
  double weight = 0.0;
  std::vector<bool> seen(harness.n(), false);
  for (const bft::SignedCheckpoint& sc : proof) {
    if (sc.sender >= harness.n() || seen[sc.sender]) return false;
    if (sc.checkpoint.seq != checkpoint.seq ||
        sc.checkpoint.state_digest != checkpoint.state_digest) {
      return false;
    }
    if (!harness.registry().verify(harness.directory()[sc.sender],
                                   sc.checkpoint.digest(), sc.signature)) {
      return false;
    }
    seen[sc.sender] = true;
    weight += harness.weight_of(sc.sender);
  }
  return harness.is_quorum(weight);
}

crypto::Digest state_digest_over(
    const std::vector<bft::ExecutedEntry>& log,
    const std::vector<bft::ExecutedEntry>& extra) {
  crypto::Sha256 h;
  h.update("findep/bft/state/v1");
  for (const bft::ExecutedEntry& e : log) {
    h.update_u64(e.seq);
    h.update(e.request.digest().bytes);
  }
  for (const bft::ExecutedEntry& e : extra) {
    h.update_u64(e.seq);
    h.update(e.request.digest().bytes);
  }
  return h.finish();
}

}  // namespace findep::replication
