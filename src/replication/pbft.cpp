#include "replication/pbft.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <type_traits>
#include <variant>

#include "support/assert.h"

/// Protocol event tracing for debugging stalled clusters: set
/// FINDEP_BFT_TRACE=1 to log proposals, commits and view-change starts
/// with timestamps. Purely observational — tracing never changes
/// behaviour, so traced runs stay bit-identical to silent ones.
#define FINDEP_BFT_TRACE(...)                                        \
  do {                                                               \
    static const bool findep_bft_trace_enabled =                     \
        std::getenv("FINDEP_BFT_TRACE") != nullptr;                  \
    if (findep_bft_trace_enabled) {                                  \
      std::printf(__VA_ARGS__);                                      \
    }                                                                \
  } while (0)

namespace findep::replication {

Batch Pbft::noop_batch() { return Batch{}; }

Pbft::Pbft(ReplicaId id, std::vector<double> weights,
           std::vector<crypto::PublicKey> directory,
           crypto::KeyRegistry& registry, crypto::KeyPair keys,
           net::SimNetwork& network, ReplicaOptions options)
    : OrderingProtocol(id, std::move(weights), std::move(directory),
                       registry, std::move(keys), network,
                       std::move(options), Protocol::kPbft),
      ckpt_(harness_),
      fetch_(harness_,
             StateFetchMachine::Hooks{
                 [this] { return last_executed_; },
                 [this](ReplicaId peer) {
                   send_to(peer, StateRequest{last_executed_});
                 }}) {}

void Pbft::start() { harness_.start(); }

// --- dispatch --------------------------------------------------------------

double Pbft::verify_extra_cost(const Payload& payload) const {
  // Quorum proofs ride one envelope and are batch-verified: a NEW-VIEW
  // carries its view-change quorum, a state response its checkpoint vote
  // quorum.
  if (const auto* nv = std::get_if<NewView>(&payload)) {
    return options().cost_model.batch_verify_seconds(nv->proofs.size());
  }
  if (const auto* resp = std::get_if<StateResponse>(&payload)) {
    return options().cost_model.batch_verify_seconds(resp->proof.size());
  }
  return 0.0;
}

runtime::WorkerPool::StaleCheck Pbft::verify_stale_check(
    const Payload& payload) const {
  // Only messages the handler would provably ignore are shed: normal-case
  // traffic from views older than the installed one, and view-change /
  // new-view traffic for views already installed. (Future-view traffic is
  // NOT stale — dispatch buffers it for replay.) Checkpoints, requests
  // and state transfer never expire.
  return std::visit(
      [this](const auto& m) -> runtime::WorkerPool::StaleCheck {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, PrePrepare> ||
                      std::is_same_v<T, Prepare> ||
                      std::is_same_v<T, Commit>) {
          return [this, v = m.view] { return v < view_; };
        } else if constexpr (std::is_same_v<T, ViewChange>) {
          return [this, v = m.new_view] { return v <= view_; };
        } else if constexpr (std::is_same_v<T, NewView>) {
          return [this, v = m.view] { return v <= view_; };
        } else {
          return nullptr;
        }
      },
      payload);
}

void Pbft::dispatch_payload(const Envelope& env, net::NodeId raw_from,
                            std::uint64_t raw_bytes) {
  const bool from_replica = env.sender < harness_.n();
  std::visit(
      [&](const auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, Request>) {
          on_request(m, raw_from);
          return;
        } else {
          if (!from_replica) return;  // clients may only send requests
          if constexpr (std::is_same_v<T, PrePrepare> ||
                        std::is_same_v<T, Prepare> ||
                        std::is_same_v<T, Commit>) {
            if (m.view > view_) {
              // We lag behind a view change; replay after installation.
              future_messages_.push_back(env);
              return;
            }
          }
          if constexpr (std::is_same_v<T, PrePrepare>) {
            on_preprepare(m, env.sender);
          } else if constexpr (std::is_same_v<T, Prepare>) {
            on_prepare(m, env.sender);
          } else if constexpr (std::is_same_v<T, Commit>) {
            on_commit(m, env.sender);
          } else if constexpr (std::is_same_v<T, Checkpoint>) {
            on_checkpoint(m, env.sender, env.signature);
          } else if constexpr (std::is_same_v<T, ViewChange>) {
            on_viewchange(m, env.sender, env.signature);
          } else if constexpr (std::is_same_v<T, NewView>) {
            on_newview(m, env.sender);
          } else if constexpr (std::is_same_v<T, StateRequest>) {
            on_state_request(m, env.sender);
          } else if constexpr (std::is_same_v<T, StateResponse>) {
            state_transfer_bytes_ += raw_bytes;
            on_state_response(m, env.sender);
          }
          // HotStuff payloads fall through: a PBFT replica ignores the
          // other lane's traffic entirely.
        }
      },
      env.payload);
}

void Pbft::replay_future_messages() {
  std::vector<Envelope> pending;
  pending.swap(future_messages_);
  for (Envelope& env : pending) {
    std::visit(
        [&](const auto& m) {
          using T = std::decay_t<decltype(m)>;
          if constexpr (std::is_same_v<T, PrePrepare> ||
                        std::is_same_v<T, Prepare> ||
                        std::is_same_v<T, Commit>) {
            if (m.view > view_) {
              future_messages_.push_back(env);
              return;
            }
            if constexpr (std::is_same_v<T, PrePrepare>) {
              on_preprepare(m, env.sender);
            } else if constexpr (std::is_same_v<T, Prepare>) {
              on_prepare(m, env.sender);
            } else {
              on_commit(m, env.sender);
            }
          }
        },
        env.payload);
  }
}

// --- normal case ----------------------------------------------------------

void Pbft::submit(const Request& request) {
  if (options().behavior == Behavior::kSilent) return;
  on_request(request, id());
}

void Pbft::on_request(const Request& request, net::NodeId from) {
  if (request.id != 0 && executed_ids_.contains(request.id)) return;
  if (options().behavior == Behavior::kCensor && (request.id & 1) != 0) {
    return;  // client-selective starvation: odd-id requests vanish here
  }
  if (!pending_requests_.contains(request.id)) {
    track_request_deadline(request.id);
  }
  pending_requests_[request.id] = request;
  arm_request_timer();
  if (in_view_change_) return;
  if (is_primary()) {
    enqueue_for_proposal(request);
  } else if (from >= harness_.n() || from == id()) {
    // Came from a client (or local submit): relay to the primary.
    send_to(primary_of(view_), request);
  }
}

void Pbft::enqueue_for_proposal(const Request& request) {
  FINDEP_REQUIRE(is_primary());
  if (request.id != 0 &&
      (queued_ids_.contains(request.id) || assigned_.contains(request.id) ||
       executed_ids_.contains(request.id))) {
    return;
  }
  batch_queue_.push_back(request);
  if (request.id != 0) queued_ids_[request.id] = true;
  if (batch_queue_.size() >= options().batch_size) {
    // Cut synchronously: with batch_size = 1 every request is proposed
    // the moment it arrives and the batch timer is never armed, which is
    // exactly the unbatched protocol.
    cut_batch();
  } else {
    arm_batch_timer();
  }
}

void Pbft::cut_batch() {
  disarm_batch_timer();
  if (batch_queue_.empty()) return;
  if (next_seq_ > ckpt_.stable() + options().high_watermark_window) {
    // High-watermark back-pressure: the queue holds the batch until the
    // stable checkpoint advances (retry_deferred_cut), bounding in-flight
    // consensus state instead of letting a fast primary outrun a slow
    // checkpoint quorum without limit.
    cut_deferred_ = true;
    ++proposals_deferred_;
    return;
  }
  cut_deferred_ = false;
  Batch batch;
  batch.requests.swap(batch_queue_);
  for (const Request& r : batch.requests) {
    if (r.id != 0) queued_ids_.erase(r.id);
  }
  propose(std::move(batch));
}

void Pbft::retry_deferred_cut() {
  if (!cut_deferred_) return;
  cut_deferred_ = false;
  // A view change may have demoted us since the deferral; install_new_view
  // already voided the old queue in that case.
  if (!is_primary() || in_view_change_) return;
  cut_batch();  // re-defers itself if the watermark still binds
}

void Pbft::propose(Batch batch) {
  FINDEP_REQUIRE(is_primary());
  const SeqNum seq = next_seq_++;
  FINDEP_BFT_TRACE("t=%.3f [%u] propose seq=%llu view=%llu size=%zu\n",
                   sim().now(), id(), (unsigned long long)seq,
                   (unsigned long long)view_, batch.size());
  for (const Request& r : batch.requests) {
    if (r.id != 0) assigned_[r.id] = seq;
  }

  if (options().behavior == Behavior::kEquivocate ||
      options().behavior == Behavior::kCollude) {
    // Conflicting proposals: the real batch to the first half, a
    // fabricated one (every request forged) to the second half. A lone
    // equivocator is harmless — neither half can reach a prepared
    // certificate for a conflicting pair, because commit weight only
    // comes from replicas that prepared that digest. A *colluding*
    // primary additionally throws its own prepare + commit weight behind
    // both digests (and colluding backups endorse whatever they hear),
    // which is what makes conflicting certificates reachable once
    // colluding power exceeds a third.
    Batch forged_batch;
    forged_batch.requests.reserve(batch.size());
    for (const Request& r : batch.requests) {
      Request forged = r;
      forged.id ^= 0x8000000000000000ULL;
      forged.operation = crypto::Sha256{}
                             .update("findep/forged/v1")
                             .update(r.operation.bytes)
                             .finish();
      forged_batch.requests.push_back(forged);
    }
    const PrePrepare real{view_, seq, std::move(batch)};
    const PrePrepare fake{view_, seq, std::move(forged_batch)};
    for (ReplicaId r = 0; r < harness_.n(); ++r) {
      if (r == id()) continue;
      send_to(r, r % 2 == 0 ? Payload{real} : Payload{fake});
    }
    if (options().behavior == Behavior::kCollude) {
      collude_endorse(view_, seq, real.batch.digest());
      collude_endorse(view_, seq, fake.batch.digest());
    }
    return;  // the equivocator does not even convince itself
  }

  broadcast(PrePrepare{view_, seq, std::move(batch)});
}

void Pbft::on_preprepare(const PrePrepare& pp, ReplicaId from) {
  if (in_view_change_ || pp.view != view_) return;
  if (options().behavior == Behavior::kCollude) {
    collude_endorse(pp.view, pp.seq, pp.batch.digest());
  }
  if (from != primary_of(pp.view)) return;
  // Reject by our own execution horizon, not the stable checkpoint: a
  // lagging replica may adopt a *remote* stable checkpoint above its own
  // last_executed_ and, with no state transfer, must still be able to
  // finish its in-flight slots below it (same in on_prepare/on_commit).
  if (pp.seq <= last_executed_) return;
  accept_preprepare(pp);
}

void Pbft::accept_preprepare(const PrePrepare& pp) {
  Slot& slot = slots_[pp.seq];
  const crypto::Digest digest = pp.batch.digest();
  if (slot.have_preprepare && slot.batch_digest != digest) {
    return;  // conflicting pre-prepare from an equivocating primary
  }
  slot.have_preprepare = true;
  slot.batch = pp.batch;
  slot.batch_digest = digest;
  // The primary's pre-prepare doubles as its prepare vote.
  slot.prepare_votes[digest][primary_of(pp.view)] =
      weight_of(primary_of(pp.view));

  if (!slot.sent_prepare && id() != primary_of(pp.view)) {
    slot.sent_prepare = true;
    slot.prepare_votes[digest][id()] = weight_of(id());
    broadcast(Prepare{pp.view, pp.seq, digest});
  }
  // Track the batch's requests for liveness even if they reached us only
  // via the primary.
  bool tracked = false;
  for (const Request& r : slot.batch.requests) {
    if (r.id != 0 && !executed_ids_.contains(r.id)) {
      if (!pending_requests_.contains(r.id)) track_request_deadline(r.id);
      pending_requests_[r.id] = r;
      tracked = true;
    }
  }
  if (tracked) arm_request_timer();
  maybe_prepared(pp.seq);
}

void Pbft::on_prepare(const Prepare& p, ReplicaId from) {
  if (in_view_change_ || p.view != view_) return;
  if (options().behavior == Behavior::kCollude) {
    collude_endorse(p.view, p.seq, p.request_digest);
  }
  if (p.seq <= last_executed_) return;
  Slot& slot = slots_[p.seq];
  slot.prepare_votes[p.request_digest][from] = weight_of(from);
  maybe_prepared(p.seq);
}

void Pbft::maybe_prepared(SeqNum seq) {
  const auto it = slots_.find(seq);
  if (it == slots_.end()) return;
  Slot& slot = it->second;
  if (!slot.have_preprepare || slot.prepared) return;
  const auto votes = slot.prepare_votes.find(slot.batch_digest);
  if (votes == slot.prepare_votes.end()) return;
  if (!is_quorum(vote_weight(votes->second))) return;

  slot.prepared = true;
  slot.prepared_view = view_;
  if (!slot.sent_commit) {
    slot.sent_commit = true;
    slot.commit_votes[slot.batch_digest][id()] = weight_of(id());
    broadcast(Commit{view_, seq, slot.batch_digest});
  }
  maybe_committed(seq);
}

void Pbft::on_commit(const Commit& c, ReplicaId from) {
  if (in_view_change_ || c.view != view_) return;
  if (options().behavior == Behavior::kCollude) {
    collude_endorse(c.view, c.seq, c.request_digest);
  }
  if (c.seq <= last_executed_) return;
  Slot& slot = slots_[c.seq];
  slot.commit_votes[c.request_digest][from] = weight_of(from);
  maybe_committed(c.seq);
}

void Pbft::collude_endorse(View v, SeqNum seq,
                           const crypto::Digest& digest) {
  FINDEP_ASSERT(options().behavior == Behavior::kCollude);
  if (v != view_ || in_view_change_) return;
  if (seq <= last_executed_) return;
  // Lend full weight to every digest exactly once: prepare and commit
  // with no conflict check, the classic vote-for-everything strategy.
  // The endorse set is pruned with slots_ when checkpoints advance.
  auto& endorsed = colluded_[seq];
  if (std::find(endorsed.begin(), endorsed.end(), digest) !=
      endorsed.end()) {
    return;
  }
  endorsed.push_back(digest);
  broadcast(Prepare{v, seq, digest});
  broadcast(Commit{v, seq, digest});
}

void Pbft::maybe_committed(SeqNum seq) {
  const auto it = slots_.find(seq);
  if (it == slots_.end()) return;
  Slot& slot = it->second;
  if (!slot.prepared || slot.committed) return;
  const auto votes = slot.commit_votes.find(slot.batch_digest);
  if (votes == slot.commit_votes.end()) return;
  if (!is_quorum(vote_weight(votes->second))) return;
  slot.committed = true;
  FINDEP_BFT_TRACE("t=%.3f [%u] committed seq=%llu view=%llu le=%llu\n",
                   sim().now(), id(), (unsigned long long)seq,
                   (unsigned long long)view_,
                   (unsigned long long)last_executed_);
  execute_ready();
}

void Pbft::execute_ready() {
  const SeqNum before = last_executed_;
  for (;;) {
    const auto it = slots_.find(last_executed_ + 1);
    if (it == slots_.end() || !it->second.committed) break;
    Slot& slot = it->second;
    ++last_executed_;
    // Unroll the batch into per-request log entries (all at this slot's
    // seq, in batch order). Dedup holds across batch boundaries: a
    // request id that already executed — in an earlier batch or earlier
    // in this one — is skipped, so a Byzantine primary repeating a
    // request cannot make it execute twice.
    for (const Request& r : slot.batch.requests) {
      if (r.id != 0) {
        if (executed_ids_.contains(r.id)) continue;
        executed_ids_[r.id] = true;
        pending_requests_.erase(r.id);
        commit_times_.emplace_back(r.id, sim().now());
      }
      executed_.push_back(ExecutedEntry{last_executed_, r});
    }
  }
  (void)before;
  if (pending_requests_.empty()) {
    // Fully drained: drop the timer and the (all-dead) deadline queue.
    disarm_request_timer();
    request_deadlines_.clear();
  }
  // Otherwise the armed timer stays put. Each request carries its own
  // arrival-based deadline, so progress on *other* requests neither
  // resets nor extends a pending one — a primary serving some clients
  // while starving another is detected within one request_timeout
  // (previously documented as the starvation caveat: the old single
  // timer reset on any progress). Executed ids are popped from the
  // deadline queue lazily, by the timer callback.
  maybe_checkpoint();
}

crypto::Digest Pbft::state_digest_with(
    const std::vector<ExecutedEntry>& extra) const {
  return state_digest_over(executed_, extra);
}

void Pbft::maybe_checkpoint() {
  const SeqNum seq =
      ckpt_.maybe_emit(last_executed_, options().checkpoint_interval);
  if (seq == 0) return;
  broadcast(Checkpoint{seq, state_digest_with({})});
}

void Pbft::on_checkpoint(const Checkpoint& cp, ReplicaId from,
                         const crypto::Signature& signature) {
  // A signed checkpoint is also a claim about the sender's execution
  // horizon; record it before any windowing so far-behind replicas can
  // detect credible progress beyond their vote window (state transfer).
  fetch_.note_claim(from, cp.seq);
  if (!ckpt_.on_vote(cp, from, signature, last_executed_,
                     options().checkpoint_interval)) {
    return;
  }
  // Prune consensus state at and below the stable checkpoint — but never
  // above our own execution horizon: a replica that lags behind a remote
  // checkpoint keeps its in-flight slots and can still finish them from
  // live traffic while a state transfer is pending.
  const SeqNum prune_to = std::min(ckpt_.stable(), last_executed_);
  for (auto it = slots_.begin(); it != slots_.end();) {
    it = it->first <= prune_to ? slots_.erase(it) : std::next(it);
  }
  colluded_.erase(colluded_.begin(), colluded_.upper_bound(prune_to));
  if (ckpt_.stable() > last_executed_) fetch_.maybe_schedule();
  retry_deferred_cut();  // the raised watermark may unblock a deferred cut
}

// --- timers ----------------------------------------------------------------

void Pbft::track_request_deadline(std::uint64_t request_id) {
  // Called exactly when `request_id` first enters pending_requests_, so
  // deadlines are arrival-ordered and nondecreasing: the front of the
  // deque is always the earliest live deadline. Retransmissions do not
  // reach here (the caller guards on !contains), so a retried request
  // keeps its original deadline instead of being silently extended.
  request_deadlines_.emplace_back(sim().now() + options().request_timeout,
                                  request_id);
}

void Pbft::refresh_request_deadlines() {
  // A view change is a cluster-wide progress event: every still-pending
  // request gets a fresh grace period under the new primary. Deadlines
  // are rewritten in place — the deque stays arrival-ordered and all
  // entries share one timestamp, so the nondecreasing invariant holds.
  const double deadline = sim().now() + options().request_timeout;
  for (auto& entry : request_deadlines_) entry.first = deadline;
}

void Pbft::arm_request_timer() {
  if (options().behavior == Behavior::kSilent) return;
  // Lazily shed entries whose request already executed (or was never
  // tracked locally): the deadline queue is append-only on arrival, so
  // the front may be stale.
  while (!request_deadlines_.empty() &&
         !pending_requests_.contains(request_deadlines_.front().second)) {
    request_deadlines_.pop_front();
  }
  if (request_timer_.has_value() || request_deadlines_.empty()) return;
  const double wait =
      std::max(0.0, request_deadlines_.front().first - sim().now());
  request_timer_ = sim().schedule_after(wait, [this] {
    request_timer_.reset();
    request_timer_fired();
  });
}

void Pbft::request_timer_fired() {
  while (!request_deadlines_.empty() &&
         !pending_requests_.contains(request_deadlines_.front().second)) {
    request_deadlines_.pop_front();
  }
  if (request_deadlines_.empty()) return;
  if (in_view_change_) return;  // install_new_view refreshes and re-arms
  // Epsilon absorbs the float roundoff of scheduling `deadline - now`
  // relative to a moved `now`; deadlines are seconds-scale, so 1ns of
  // slack cannot conflate two distinct timeouts.
  if (request_deadlines_.front().first <= sim().now() + 1e-9) {
    // The front request outlived its own timeout — progress elsewhere
    // does not excuse the primary (client-selective starvation is a
    // fault, not a scheduling artifact).
    start_view_change(view_ + 1);
    return;
  }
  // The old front was shed above and a later deadline surfaced: re-arm
  // for it. Never late, because deadlines are nondecreasing.
  arm_request_timer();
}

void Pbft::disarm_request_timer() {
  if (request_timer_.has_value()) {
    sim().cancel(*request_timer_);
    request_timer_.reset();
  }
}

void Pbft::arm_viewchange_timer(View target) {
  disarm_viewchange_timer();
  viewchange_timer_ = sim().schedule_after(
      options().view_change_timeout, [this, target] {
        viewchange_timer_.reset();
        if (in_view_change_ && pending_view_ == target) {
          start_view_change(target + 1);  // new primary also failed
        }
      });
}

void Pbft::disarm_viewchange_timer() {
  if (viewchange_timer_.has_value()) {
    sim().cancel(*viewchange_timer_);
    viewchange_timer_.reset();
  }
}

void Pbft::arm_batch_timer() {
  if (batch_timer_.has_value() || batch_queue_.empty()) return;
  batch_timer_ = sim().schedule_after(options().batch_timeout, [this] {
    batch_timer_.reset();
    // Cut whatever accumulated: a partial batch must not wait for
    // traffic that may never come (liveness of light load).
    if (!in_view_change_ && is_primary()) cut_batch();
  });
}

void Pbft::disarm_batch_timer() {
  if (batch_timer_.has_value()) {
    sim().cancel(*batch_timer_);
    batch_timer_.reset();
  }
}

// --- view change -------------------------------------------------------

void Pbft::start_view_change(View target) {
  if (target <= view_) return;
  if (in_view_change_ && target <= pending_view_) return;
  in_view_change_ = true;
  pending_view_ = target;
  ++view_changes_started_;
  FINDEP_BFT_TRACE("t=%.3f [%u] start_vc target=%llu le=%llu pending=%zu\n",
                   sim().now(), id(), (unsigned long long)target,
                   (unsigned long long)last_executed_,
                   pending_requests_.size());
  disarm_request_timer();
  disarm_batch_timer();

  ViewChange vc;
  vc.new_view = target;
  vc.last_executed = ckpt_.stable();
  for (const auto& [seq, slot] : slots_) {
    if (slot.prepared && seq > ckpt_.stable()) {
      vc.prepared.push_back(
          PreparedEntry{slot.prepared_view, seq, slot.batch});
    }
  }
  arm_viewchange_timer(target);
  broadcast(vc);
}

void Pbft::on_viewchange(const ViewChange& vc, ReplicaId from,
                         const crypto::Signature& signature) {
  // A view change states the sender's stable checkpoint — a signed claim
  // usable as state-transfer evidence.
  fetch_.note_claim(from, vc.last_executed);
  if (vc.new_view <= view_) return;
  auto& votes = viewchange_votes_[vc.new_view];
  const bool already =
      std::any_of(votes.begin(), votes.end(),
                  [from](const SignedViewChange& s) {
                    return s.sender == from;
                  });
  if (!already) {
    votes.push_back(SignedViewChange{from, vc, signature});
  }

  double weight = 0.0;
  for (const SignedViewChange& s : votes) weight += weight_of(s.sender);

  // Join rule: a third of the power already wants this view, so at least
  // one honest replica timed out — join to guarantee liveness.
  if (is_third(weight) &&
      (!in_view_change_ || pending_view_ < vc.new_view)) {
    start_view_change(vc.new_view);
  }
  if (primary_of(vc.new_view) == id()) {
    maybe_assemble_new_view(vc.new_view);
  }
}

std::vector<PrePrepare> Pbft::compute_reproposals(
    View target, const std::vector<SignedViewChange>& proofs) {
  SeqNum min_s = 0;
  SeqNum max_s = 0;
  for (const SignedViewChange& s : proofs) {
    min_s = std::max(min_s, s.vc.last_executed);
    for (const PreparedEntry& e : s.vc.prepared) {
      max_s = std::max(max_s, e.seq);
    }
  }
  std::vector<PrePrepare> out;
  for (SeqNum seq = min_s + 1; seq <= max_s; ++seq) {
    const PreparedEntry* best = nullptr;
    for (const SignedViewChange& s : proofs) {
      for (const PreparedEntry& e : s.vc.prepared) {
        if (e.seq != seq) continue;
        if (best == nullptr || e.view > best->view) best = &e;
      }
    }
    out.push_back(PrePrepare{
        target, seq, best != nullptr ? best->batch : noop_batch()});
  }
  return out;
}

void Pbft::maybe_assemble_new_view(View target) {
  if (view_ >= target || newview_assembled_for_ >= target) return;
  const auto it = viewchange_votes_.find(target);
  if (it == viewchange_votes_.end()) return;
  // Must include our own view change.
  const bool have_own =
      std::any_of(it->second.begin(), it->second.end(),
                  [this](const SignedViewChange& s) {
                    return s.sender == id();
                  });
  if (!have_own) return;
  double weight = 0.0;
  for (const SignedViewChange& s : it->second) weight += weight_of(s.sender);
  if (!is_quorum(weight)) return;

  newview_assembled_for_ = target;
  NewView nv;
  nv.view = target;
  nv.proofs = it->second;
  nv.reproposals = compute_reproposals(target, nv.proofs);
  broadcast(nv);
}

bool Pbft::verify_new_view(const NewView& nv) const {
  // Verify the view-change quorum: distinct senders, valid signatures,
  // matching target view, quorum weight.
  double weight = 0.0;
  std::vector<bool> seen(harness_.n(), false);
  for (const SignedViewChange& s : nv.proofs) {
    if (s.sender >= harness_.n() || seen[s.sender]) return false;
    if (s.vc.new_view != nv.view) return false;
    if (!harness_.registry().verify(harness_.directory()[s.sender],
                                    s.vc.digest(), s.signature)) {
      return false;
    }
    seen[s.sender] = true;
    weight += weight_of(s.sender);
  }
  if (!is_quorum(weight)) return false;

  // Recompute the re-proposals; a lying primary is rejected here.
  const std::vector<PrePrepare> expected =
      compute_reproposals(nv.view, nv.proofs);
  if (expected.size() != nv.reproposals.size()) return false;
  for (std::size_t i = 0; i < expected.size(); ++i) {
    if (expected[i].view != nv.reproposals[i].view ||
        expected[i].seq != nv.reproposals[i].seq ||
        !(expected[i].batch == nv.reproposals[i].batch)) {
      return false;
    }
  }
  return true;
}

void Pbft::on_newview(const NewView& nv, ReplicaId from) {
  if (nv.view <= view_) return;
  if (from != primary_of(nv.view)) return;
  if (!verify_new_view(nv)) return;
  install_new_view(nv);
}

void Pbft::install_new_view(const NewView& nv) {
  view_ = nv.view;
  in_view_change_ = false;
  pending_view_ = nv.view;
  last_new_view_ = nv;
  disarm_viewchange_timer();
  viewchange_votes_.erase(viewchange_votes_.begin(),
                          viewchange_votes_.upper_bound(nv.view));
  // The proofs are signed claims of their senders' stable checkpoints;
  // if a quorum certifies state above our horizon, we missed committed
  // traffic and should fetch rather than wait for the next checkpoint.
  for (const SignedViewChange& s : nv.proofs) {
    fetch_.note_claim(s.sender, s.vc.last_executed);
  }

  // Reset consensus state for unexecuted sequence numbers: votes from
  // earlier views are void in the new view.
  for (auto& [seq, slot] : slots_) {
    if (seq > last_executed_) slot = Slot{};
  }

  SeqNum max_seq = last_executed_;
  for (const PrePrepare& pp : nv.reproposals) {
    max_seq = std::max(max_seq, pp.seq);
    if (pp.seq <= last_executed_) continue;
    accept_preprepare(pp);
  }
  next_seq_ = max_seq + 1;
  assigned_.clear();
  // The old view's batch queue is void: its requests are still in
  // pending_requests_ and get re-driven below, through the new primary.
  disarm_batch_timer();
  batch_queue_.clear();
  queued_ids_.clear();
  cut_deferred_ = false;  // nothing queued, nothing deferred

  // Replay normal-case traffic that raced ahead of our installation.
  replay_future_messages();

  // Re-drive pending client requests in the new view, in request-id
  // order: the hash map's iteration order would otherwise decide how
  // requests pack into the new primary's batches — and with it every
  // downstream proposal, message and byte count.
  std::vector<const Request*> redrive;
  redrive.reserve(pending_requests_.size());
  // findep-lint: allow(unordered-iteration) -- collect-only walk; sorted by request id below before anything order-sensitive happens
  for (const auto& [rid, request] : pending_requests_) {
    redrive.push_back(&request);
  }
  std::sort(redrive.begin(), redrive.end(),
            [](const Request* a, const Request* b) { return a->id < b->id; });
  if (is_primary()) {
    for (const Request* request : redrive) {
      enqueue_for_proposal(*request);
    }
    // Don't leave a partial batch waiting on the timer: these requests
    // already aged through a whole view change.
    cut_batch();
  } else {
    for (const Request* request : redrive) {
      send_to(primary_of(view_), *request);
    }
  }
  refresh_request_deadlines();
  arm_request_timer();
  fetch_.maybe_schedule();
}

// --- state transfer --------------------------------------------------------

void Pbft::on_state_request(const StateRequest& sr, ReplicaId from) {
  if (ckpt_.stable() == 0 || ckpt_.proof().empty()) return;
  if (sr.last_executed >= ckpt_.stable()) return;  // nothing to prove
  // A replica that adopted a remote stable checkpoint it has not itself
  // executed up to cannot substantiate the digest — decline instead of
  // sending a response the requester would provably reject.
  if (last_executed_ < ckpt_.stable()) return;
  StateResponse resp;
  resp.request_from = sr.last_executed;
  resp.checkpoint = Checkpoint{ckpt_.stable(), ckpt_.digest()};
  resp.proof = ckpt_.proof();
  for (const ExecutedEntry& e : executed_) {
    if (e.seq > sr.last_executed && e.seq <= ckpt_.stable()) {
      resp.entries.push_back(e);
    }
  }
  resp.new_view = last_new_view_;
  send_to(from, std::move(resp));
}

void Pbft::on_state_response(const StateResponse& resp, ReplicaId from) {
  if (!options().enable_state_transfer) return;
  if (resp.checkpoint.seq <= last_executed_) return;  // stale/no-op

  const auto reject = [&] {
    ++state_transfers_rejected_;
    fetch_.on_rejected(from);
  };

  // 1. The checkpoint must be proven by a quorum of verifiable votes.
  if (!verify_checkpoint_proof(harness_, resp.checkpoint, resp.proof)) {
    return reject();
  }

  // 2. The entries must splice onto our own log — in range, seq-ordered —
  //    and reproduce the proven state digest exactly. Entries below our
  //    horizon are skipped (we may have executed further since asking);
  //    honest logs are prefix-consistent, so the remainder is precisely
  //    the suffix our log is missing, and the digest is the arbiter.
  std::vector<ExecutedEntry> suffix;
  suffix.reserve(resp.entries.size());
  SeqNum prev = last_executed_;
  for (const ExecutedEntry& e : resp.entries) {
    if (e.seq <= last_executed_) continue;
    if (e.seq < prev || e.seq > resp.checkpoint.seq) return reject();
    prev = e.seq;
    suffix.push_back(e);
  }
  if (state_digest_with(suffix) != resp.checkpoint.state_digest) {
    return reject();
  }

  // 3. Adopt: replay the suffix, advance the horizon to the checkpoint,
  //    take over the proof so we can serve transfers ourselves.
  for (const ExecutedEntry& e : suffix) {
    if (e.request.id != 0) {
      executed_ids_[e.request.id] = true;
      pending_requests_.erase(e.request.id);
    }
    executed_.push_back(e);
  }
  last_executed_ = resp.checkpoint.seq;
  ++state_transfers_completed_;
  ckpt_.maybe_adopt(resp.checkpoint, resp.proof);
  for (auto it = slots_.begin(); it != slots_.end();) {
    it = it->first <= last_executed_ ? slots_.erase(it) : std::next(it);
  }
  colluded_.erase(colluded_.begin(), colluded_.upper_bound(last_executed_));
  fetch_.on_adopted();

  if (resp.new_view.has_value() && resp.new_view->view > view_ &&
      verify_new_view(*resp.new_view)) {
    // We also missed a view change during the outage: the relayed
    // NEW-VIEW is self-certifying, so adopt the cluster's view (this
    // replays buffered future-view traffic and re-drives pending
    // requests).
    install_new_view(*resp.new_view);
  } else {
    if (in_view_change_) {
      // Our view change was a lone timeout caused by our own lag — the
      // proven checkpoint shows the cluster committing without us, in a
      // view we now share. Abandon it and rejoin the normal case; if we
      // are still starved the request timer below re-escalates.
      in_view_change_ = false;
      pending_view_ = view_;
      disarm_viewchange_timer();
    }
    disarm_request_timer();  // the adoption itself is execution progress
    execute_ready();
    replay_future_messages();
    // Catching up across the outage is cluster-wide progress for every
    // request still pending here, same as a view change.
    refresh_request_deadlines();
    arm_request_timer();
  }
  // Still behind a credible horizon (e.g. the responder itself lagged)?
  // Go again.
  fetch_.maybe_schedule();
  retry_deferred_cut();  // adoption advanced the stable checkpoint
}

}  // namespace findep::replication
