// Protocol-neutral replica configuration for the replication core.
//
// Every ordering protocol (src/replication/pbft.h, hotstuff.h) is driven
// by the same ReplicaOptions struct and the same validator — one set of
// knobs, one place that rejects misconfigurations with a specific
// message, regardless of which protocol the scenario axis selected.
// Protocol-specific knobs (the HotStuff pacemaker) live here too so a
// grid can flip `protocol=` without reshaping its option plumbing.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "crypto/cost.h"

namespace findep::replication {

/// Replica fault behaviours for the fault-injection experiments. The
/// protocol-independent ones (kSilent) are enforced by the NodeHarness;
/// the rest are interpreted by each ordering protocol: a PBFT primary or
/// a HotStuff round leader equivocates/censors over its proposals, and a
/// colluder lends its vote weight to every conflicting candidate it
/// hears of.
enum class Behavior : std::uint8_t {
  kHonest,
  kSilent,
  kEquivocate,
  kCollude,
  kCensor,
};

/// The ordering protocol behind the replication core — the `protocol`
/// scenario axis.
enum class Protocol : std::uint8_t {
  kPbft,
  kHotStuff,
};

/// Parses a `protocol` axis value: "pbft" or "hotstuff". Throws
/// std::invalid_argument on anything else.
[[nodiscard]] Protocol parse_protocol(const std::string& name);

/// Short axis-value name of a protocol ("pbft" / "hotstuff").
[[nodiscard]] const char* protocol_name(Protocol protocol) noexcept;

struct ReplicaOptions {
  /// Seconds a known-but-unexecuted request may age before a PBFT
  /// replica starts a view change.
  double request_timeout = 1.0;
  /// Patience for a new view to be installed before escalating further.
  double view_change_timeout = 1.5;
  /// Execute-to-checkpoint distance.
  std::uint64_t checkpoint_interval = 16;
  /// Leader-side batching: accumulate pending requests and cut a batch
  /// as soon as `batch_size` are queued, or `batch_timeout` simulated
  /// seconds after the first queued request — whichever comes first.
  /// batch_size = 1 cuts on every request immediately and never arms the
  /// timer, which is behaviourally identical to the unbatched protocol.
  /// batch_timeout must stay strictly below the protocol's liveness
  /// timer (request_timeout for PBFT, pacemaker_timeout for HotStuff) —
  /// a lone request waiting out a slower batch timer lets the liveness
  /// timers fire first, costing a spurious leader change per light-load
  /// lull. The validator rejects the misconfiguration outright.
  std::size_t batch_size = 1;
  double batch_timeout = 0.05;
  /// Checkpoint-anchored state transfer (off only for regression sweeps
  /// that need the historical stranding behaviour).
  bool enable_state_transfer = true;
  /// Grace before the first fetch once lag is observed: in-flight slots
  /// usually commit from live traffic within a round trip, so a fetch is
  /// only worth its bytes when the gap persists.
  double state_transfer_grace = 0.2;
  /// Patience per fetch attempt before retrying another random peer.
  double state_transfer_timeout = 1.0;
  /// Primary flow control: the PBFT primary never proposes a sequence
  /// number more than this far ahead of its stable checkpoint. Without
  /// the bound, a primary outrunning a slow checkpoint quorum piles up
  /// unbounded in-flight slots (each one full consensus state on every
  /// replica); with it, a stalled checkpoint back-pressures proposals
  /// instead of memory. Deferred batches stay queued and are cut as soon
  /// as the stable checkpoint advances. Must be at least
  /// 2 * checkpoint_interval, or the bound would bite during the
  /// perfectly healthy execute-ahead-of-stability phase.
  std::uint64_t high_watermark_window = 128;
  /// HotStuff pacemaker: base round timeout. Armed only while the chain
  /// is dirty (pending requests or uncommitted real blocks), so an idle
  /// cluster quiesces instead of spinning rounds forever.
  double pacemaker_timeout = 1.0;
  /// Exponential backoff multiplier applied per consecutive timeout
  /// (reset on certified progress), and the cap on the accumulated
  /// multiplier — round-robin rotation across a crashed leader pays the
  /// base timeout once per lap instead of compounding forever.
  double pacemaker_backoff = 2.0;
  double pacemaker_max_backoff = 64.0;
  /// Seed of the replica-local RNG (random peer choice during state
  /// transfer). The cluster harness derives one per replica from the
  /// cluster seed.
  std::uint64_t rng_seed = 0x5eedb1f7;
  Behavior behavior = Behavior::kHonest;
  /// Modeled CPU cost of the signature primitives. The default
  /// (CostModel::free()) disables cost modeling entirely: no worker
  /// pool is created, sends are not delayed, and runs are bit-identical
  /// to the historical protocol. A non-free model (a) serializes sends
  /// behind a per-replica signing accumulator and (b) offloads inbound
  /// signature verification onto `crypto_workers` modeled cores
  /// (runtime::WorkerPool) — consensus traffic at critical priority,
  /// client requests speculative, dead-view work shed on dequeue.
  crypto::CostModel cost_model{};
  /// Modeled verification cores per replica (>= 1). Only read when
  /// cost_model is non-free.
  std::size_t crypto_workers = 1;
};

/// The one option validator both protocols share: rejects every
/// misconfiguration with a specific message (support::ContractViolation).
/// Protocol-specific checks (the PBFT batch-vs-request-timer race, the
/// HotStuff pacemaker shape) are selected by `protocol`, so a grid
/// flipping the protocol axis gets the right guardrails automatically.
void validate_replica_options(const ReplicaOptions& options,
                              Protocol protocol);

}  // namespace findep::replication
