#include "replication/options.h"

#include <stdexcept>

#include "support/assert.h"

namespace findep::replication {

Protocol parse_protocol(const std::string& name) {
  if (name == "pbft") return Protocol::kPbft;
  if (name == "hotstuff") return Protocol::kHotStuff;
  throw std::invalid_argument("unknown protocol '" + name +
                              "' (expected pbft or hotstuff)");
}

const char* protocol_name(Protocol protocol) noexcept {
  switch (protocol) {
    case Protocol::kPbft:
      return "pbft";
    case Protocol::kHotStuff:
      return "hotstuff";
  }
  return "?";
}

void validate_replica_options(const ReplicaOptions& options,
                              Protocol protocol) {
  FINDEP_REQUIRE_MSG(options.request_timeout > 0.0,
                     "request_timeout must be positive");
  FINDEP_REQUIRE_MSG(options.view_change_timeout > 0.0,
                     "view_change_timeout must be positive");
  FINDEP_REQUIRE_MSG(options.checkpoint_interval > 0,
                     "checkpoint_interval must be >= 1: an interval of 0 "
                     "would re-checkpoint on every execution and never "
                     "bound the vote window");
  FINDEP_REQUIRE_MSG(options.batch_size >= 1, "batch_size must be >= 1");
  FINDEP_REQUIRE_MSG(options.batch_timeout > 0.0,
                     "batch_timeout must be positive");
  if (protocol == Protocol::kPbft) {
    FINDEP_REQUIRE_MSG(
        options.batch_timeout < options.request_timeout,
        "batch_timeout must stay strictly below request_timeout: a partial "
        "batch waiting out a slower batch timer lets the backups' request "
        "timers fire first, costing a spurious view change per lull");
  } else {
    FINDEP_REQUIRE_MSG(options.pacemaker_timeout > 0.0,
                       "pacemaker_timeout must be positive");
    FINDEP_REQUIRE_MSG(
        options.pacemaker_backoff >= 1.0,
        "pacemaker_backoff must be >= 1: a shrinking round timeout can "
        "never re-establish synchrony after a stall");
    FINDEP_REQUIRE_MSG(
        options.pacemaker_max_backoff >= options.pacemaker_backoff,
        "pacemaker_max_backoff must allow at least one backoff step");
    FINDEP_REQUIRE_MSG(
        options.batch_timeout < options.pacemaker_timeout,
        "batch_timeout must stay strictly below pacemaker_timeout: a "
        "partial batch waiting out a slower batch timer lets the round "
        "timer fire first, costing a spurious leader rotation per lull");
  }
  FINDEP_REQUIRE_MSG(options.state_transfer_grace > 0.0,
                     "state_transfer_grace must be positive");
  FINDEP_REQUIRE_MSG(options.state_transfer_timeout > 0.0,
                     "state_transfer_timeout must be positive");
  FINDEP_REQUIRE_MSG(
      options.high_watermark_window >= 2 * options.checkpoint_interval,
      "high_watermark_window must be at least 2 * checkpoint_interval: "
      "execution legitimately runs up to an interval ahead of stability, "
      "and a tighter bound would throttle a perfectly healthy primary");
  FINDEP_REQUIRE_MSG(options.crypto_workers >= 1,
                     "crypto_workers must be >= 1");
}

}  // namespace findep::replication
