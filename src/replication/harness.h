// NodeHarness: the protocol-neutral bottom layer of a replica.
//
// Owns everything an ordering protocol needs but that is not ordering
// logic: the network attachment, envelope authentication and signature
// verification (inline under crypto=free, offloaded onto a modeled
// runtime::WorkerPool otherwise), the outbound signing accumulator, and
// the weighted-quorum arithmetic. The ordering protocol above it
// (replication::Pbft, replication::HotStuff) receives fully
// authenticated payloads through OrderingProtocol::dispatch_payload and
// sends through broadcast()/send_to() — it never touches the wire or the
// crypto cost model directly, so a new protocol inherits the entire
// modeled-crypto machinery for free.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "bft/messages.h"
#include "net/network.h"
#include "replication/options.h"
#include "runtime/workers.h"
#include "sim/simulator.h"

namespace findep::replication {

class OrderingProtocol;

class NodeHarness {
 public:
  /// `weights[i]` is replica i's voting power; `directory[i]` its public
  /// key (both indexed by ReplicaId, same size). `keys` must match
  /// `directory[id]` and be enrolled in `registry`. Validates `options`
  /// for `kind` (the shared validator — one set of checks for every
  /// protocol).
  NodeHarness(OrderingProtocol& protocol, bft::ReplicaId id,
              std::vector<double> weights,
              std::vector<crypto::PublicKey> directory,
              crypto::KeyRegistry& registry, crypto::KeyPair keys,
              net::SimNetwork& network, ReplicaOptions options,
              Protocol kind);

  NodeHarness(const NodeHarness&) = delete;
  NodeHarness& operator=(const NodeHarness&) = delete;

  /// Attaches the network handler. Call once before the simulation runs.
  void start();

  // Byte accounting is derived from the payload itself
  // (payload_wire_bytes), so variable-length payloads — batches, view
  // changes carrying prepared batches, proposals carrying QCs — are
  // charged what they carry. Under a non-free cost model sends serialize
  // behind the per-replica signing accumulator.
  void broadcast(bft::Payload payload);
  void send_to(net::NodeId to, bft::Payload payload);

  [[nodiscard]] bft::ReplicaId id() const noexcept { return id_; }
  /// Cluster size (weights and directory share it).
  [[nodiscard]] std::size_t n() const noexcept { return weights_.size(); }
  [[nodiscard]] double weight_of(bft::ReplicaId r) const;
  [[nodiscard]] double vote_weight(
      const std::map<bft::ReplicaId, double>& votes) const;
  [[nodiscard]] double total_weight() const noexcept { return total_weight_; }
  [[nodiscard]] bool is_quorum(double weight) const noexcept {
    return weight > 2.0 * total_weight_ / 3.0;
  }
  [[nodiscard]] bool is_third(double weight) const noexcept {
    return weight > total_weight_ / 3.0;
  }

  [[nodiscard]] const ReplicaOptions& options() const noexcept {
    return options_;
  }
  [[nodiscard]] const std::vector<crypto::PublicKey>& directory()
      const noexcept {
    return directory_;
  }
  [[nodiscard]] crypto::KeyRegistry& registry() const noexcept {
    return *registry_;
  }
  [[nodiscard]] net::SimNetwork& network() const noexcept {
    return *network_;
  }
  [[nodiscard]] sim::Simulator& simulator() const noexcept {
    return network_->simulator();
  }

  /// Messages rejected because they arrived corrupted (the simulated
  /// equivalent of a signature-verification failure over flipped wire
  /// bits). A nonzero count is direct evidence the fault was *detected*.
  [[nodiscard]] std::uint64_t corrupted_rejected() const noexcept {
    return corrupted_rejected_;
  }
  /// Verification tasks submitted to the worker pool (0 under
  /// crypto=free, which never builds a pool).
  [[nodiscard]] std::uint64_t verify_tasks() const noexcept {
    return verify_pool_ != nullptr ? verify_pool_->stats().submitted : 0;
  }
  /// Pool tasks shed by the stale check (dead-view traffic dropped at
  /// dequeue without consuming worker time).
  [[nodiscard]] std::uint64_t verify_dropped_stale() const noexcept {
    return verify_pool_ != nullptr ? verify_pool_->stats().dropped_stale
                                   : 0;
  }
  /// Modeled worker-occupancy seconds spent verifying.
  [[nodiscard]] double verify_busy_seconds() const noexcept {
    return verify_pool_ != nullptr ? verify_pool_->stats().busy_seconds
                                   : 0.0;
  }

 private:
  void on_message(const net::Message& raw);
  /// Modeled-crypto inbound path: queues envelope verification on the
  /// worker pool (critical lane for consensus/recovery traffic,
  /// speculative for client requests; protocol-declared stale work shed
  /// on dequeue) and dispatches from the in-order completion.
  void offload_verify(const net::Message& raw, const bft::Envelope& env);

  OrderingProtocol* protocol_;
  bft::ReplicaId id_;
  std::vector<double> weights_;
  std::vector<crypto::PublicKey> directory_;
  double total_weight_ = 0.0;
  crypto::KeyRegistry* registry_;
  crypto::KeyPair keys_;
  net::SimNetwork* network_;
  ReplicaOptions options_;

  std::uint64_t corrupted_rejected_ = 0;
  bool started_ = false;

  /// Modeled verification cores; null under crypto=free (the historical
  /// inline path, bit-identical to pre-cost-model builds).
  std::unique_ptr<runtime::WorkerPool> verify_pool_;
  /// Signing accumulator: the simulated time at which the protocol core
  /// finishes its last queued signature. Each send under a non-free cost
  /// model is scheduled at max(now, sign_ready_at_) + sign_seconds, so
  /// back-to-back sends serialize the way one signing core would.
  double sign_ready_at_ = 0.0;
};

}  // namespace findep::replication
