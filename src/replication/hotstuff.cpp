#include "replication/hotstuff.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <type_traits>
#include <variant>

#include "support/assert.h"

/// Protocol event tracing, same switch as the PBFT lane: set
/// FINDEP_BFT_TRACE=1 to log proposals, commits and pacemaker expiries.
/// Purely observational — traced runs stay bit-identical to silent ones.
#define FINDEP_HS_TRACE(...)                                         \
  do {                                                               \
    static const bool findep_hs_trace_enabled =                      \
        std::getenv("FINDEP_BFT_TRACE") != nullptr;                  \
    if (findep_hs_trace_enabled) {                                   \
      std::printf(__VA_ARGS__);                                      \
    }                                                                \
  } while (0)

namespace findep::replication {

HotStuff::HotStuff(ReplicaId id, std::vector<double> weights,
                   std::vector<crypto::PublicKey> directory,
                   crypto::KeyRegistry& registry, crypto::KeyPair keys,
                   net::SimNetwork& network, ReplicaOptions options)
    : OrderingProtocol(id, std::move(weights), std::move(directory),
                       registry, std::move(keys), network,
                       std::move(options), Protocol::kHotStuff),
      ckpt_(harness_),
      fetch_(harness_,
             StateFetchMachine::Hooks{
                 [this] { return last_executed_; },
                 [this](ReplicaId peer) {
                   send_to(peer, StateRequest{last_executed_});
                 }}) {
  // Genesis anchor: round 0, height 0, zero parent, the one vote-free
  // QC. Every chain hangs off it; every replica derives the identical
  // digest, so genesis never travels on the wire.
  HsBlock genesis;
  genesis_digest_ = genesis.digest();
  blocks_[genesis_digest_] = genesis;
  high_qc_ = QuorumCert{0, 0, genesis_digest_, {}};
}

void HotStuff::start() { harness_.start(); }

void HotStuff::submit(const Request& request) {
  if (options().behavior == Behavior::kSilent) return;
  on_request(request, id());
}

// --- dispatch --------------------------------------------------------------

double HotStuff::verify_extra_cost(const Payload& payload) const {
  // Every QC rides one envelope and is batch-verified with its carrier.
  if (const auto* p = std::get_if<HsProposal>(&payload)) {
    return options().cost_model.batch_verify_seconds(
        p->block.justify.votes.size());
  }
  if (const auto* r = std::get_if<HsBlockResponse>(&payload)) {
    return options().cost_model.batch_verify_seconds(
        r->block.justify.votes.size());
  }
  if (const auto* t = std::get_if<HsTimeout>(&payload)) {
    return options().cost_model.batch_verify_seconds(
        t->high_qc.votes.size());
  }
  if (const auto* n = std::get_if<HsQcNotice>(&payload)) {
    return options().cost_model.batch_verify_seconds(n->qc.votes.size());
  }
  if (const auto* resp = std::get_if<StateResponse>(&payload)) {
    return options().cost_model.batch_verify_seconds(resp->proof.size());
  }
  return 0.0;
}

runtime::WorkerPool::StaleCheck HotStuff::verify_stale_check(
    const Payload& payload) const {
  // Only provably dead traffic is shed: votes for a round whose QC
  // window has passed and timeouts for rounds already entered. Proposals
  // are never shed — an old proposal can still carry a block a commit
  // walk needs.
  if (const auto* v = std::get_if<HsVote>(&payload)) {
    return [this, r = v->round] { return r + 1 < round_; };
  }
  if (const auto* t = std::get_if<HsTimeout>(&payload)) {
    return [this, r = t->round] { return r < round_; };
  }
  return nullptr;
}

void HotStuff::dispatch_payload(const Envelope& env, net::NodeId raw_from,
                                std::uint64_t raw_bytes) {
  const bool from_replica = env.sender < harness_.n();
  std::visit(
      [&](const auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, Request>) {
          on_request(m, raw_from);
        } else if constexpr (std::is_same_v<T, HsProposal>) {
          if (from_replica) on_proposal(m, env.sender);
        } else if constexpr (std::is_same_v<T, HsVote>) {
          if (from_replica) on_vote(m, env.sender, env.signature);
        } else if constexpr (std::is_same_v<T, HsTimeout>) {
          if (from_replica) on_timeout(m, env.sender);
        } else if constexpr (std::is_same_v<T, HsQcNotice>) {
          if (from_replica) on_qc_notice(m);
        } else if constexpr (std::is_same_v<T, HsBlockRequest>) {
          if (from_replica) on_block_request(m, env.sender);
        } else if constexpr (std::is_same_v<T, HsBlockResponse>) {
          if (from_replica) on_block_response(m);
        } else if constexpr (std::is_same_v<T, Checkpoint>) {
          if (from_replica) on_checkpoint(m, env.sender, env.signature);
        } else if constexpr (std::is_same_v<T, StateRequest>) {
          if (from_replica) on_state_request(m, env.sender);
        } else if constexpr (std::is_same_v<T, StateResponse>) {
          if (from_replica) {
            state_transfer_bytes_ += raw_bytes;
            on_state_response(m, env.sender);
          }
        }
        // PBFT payloads fall through: a HotStuff replica ignores the
        // other lane's traffic entirely.
      },
      env.payload);
}

// --- client ingress --------------------------------------------------------

void HotStuff::on_request(const Request& request, net::NodeId from) {
  if (request.id != 0 && executed_ids_.contains(request.id)) return;
  if (options().behavior == Behavior::kCensor && (request.id & 1) != 0) {
    return;  // client-selective starvation, same attack as the PBFT lane
  }
  const bool fresh = !pending_requests_.contains(request.id);
  pending_requests_[request.id] = request;
  if (fresh && (from >= harness_.n() || from == id())) {
    // Client origin: relay to the current round's leader and the next —
    // leadership rotates every round, so either may cut the batch this
    // request lands in. Relays ship the client's own signed message (no
    // sign cost), like PBFT's to-the-primary relay; round_expired()
    // re-relays to later leaders if these two stall.
    const ReplicaId cur = leader_of(round_);
    const ReplicaId next = leader_of(round_ + 1);
    if (cur != id()) send_to(cur, request);
    if (next != cur && next != id()) send_to(next, request);
  }
  try_propose();
  ensure_pacemaker();
}

// --- chain / safety --------------------------------------------------------

bool HotStuff::verify_qc(const QuorumCert& qc) const {
  if (qc.round == 0) {
    // The genesis QC is structural: no votes, and it must designate the
    // genesis block every replica derives locally.
    return qc.votes.empty() && qc.height == 0 &&
           qc.block_digest == genesis_digest_;
  }
  if (qc.votes.empty()) return false;
  const crypto::Digest vote_digest =
      HsVote{qc.round, qc.height, qc.block_digest}.digest();
  double weight = 0.0;
  std::vector<bool> seen(harness_.n(), false);
  for (const HsSignedVote& v : qc.votes) {
    if (v.voter >= harness_.n() || seen[v.voter]) return false;
    if (!harness_.registry().verify(harness_.directory()[v.voter],
                                    vote_digest, v.signature)) {
      return false;
    }
    seen[v.voter] = true;
    weight += weight_of(v.voter);
  }
  return is_quorum(weight);
}

void HotStuff::store_block(const HsBlock& b) {
  blocks_.emplace(b.digest(), b);
  requested_blocks_.erase(b.digest());
}

bool HotStuff::update_high_qc(const QuorumCert& qc) {
  if (qc.round <= high_qc_.round) return false;
  high_qc_ = qc;
  try_commit();
  return true;
}

void HotStuff::try_commit() {
  // Two-chain rule: b1 is the freshest certified block (high_qc_
  // certifies it); qc0 = b1.justify certifies b0. Commit b0 when the two
  // certificates span consecutive rounds — a QC over a direct
  // consecutive-round child proves no conflicting branch can ever be
  // certified above b0 (every later quorum intersects b1's voters, whose
  // vote rule pins them to justify rounds >= b0's). A run of three
  // consecutive live leaders suffices: proposers of r and r+1 plus the
  // collector of QC(r+1).
  const auto it1 = blocks_.find(high_qc_.block_digest);
  if (it1 == blocks_.end()) {
    request_missing_block(high_qc_.block_digest);
    return;
  }
  const HsBlock& b1 = it1->second;
  const QuorumCert& qc0 = b1.justify;
  if (b1.round != qc0.round + 1) {
    return;  // a timeout broke the chain; the next two-chain will commit
  }
  if (qc0.height <= committed_height_) return;
  const auto it0 = blocks_.find(qc0.block_digest);
  if (it0 == blocks_.end()) {
    request_missing_block(qc0.block_digest);
    return;
  }
  commit_chain(it0->second);
}

void HotStuff::commit_chain(const HsBlock& block) {
  // Collect the uncommitted ancestry of `block` (itself included), then
  // execute ascending. The walk must reach committed_height_ + 1
  // contiguously; a gap means a missing ancestor — fetch it and let the
  // next QC retry the commit.
  std::vector<const HsBlock*> chain;
  const HsBlock* cur = &block;
  for (;;) {
    if (cur->height <= committed_height_) break;
    chain.push_back(cur);
    const auto pit = blocks_.find(cur->parent);
    if (pit == blocks_.end()) break;
    cur = &pit->second;
  }
  if (chain.empty()) return;
  if (chain.back()->height > committed_height_ + 1) {
    request_missing_block(chain.back()->parent);
    return;
  }
  for (auto rit = chain.rbegin(); rit != chain.rend(); ++rit) {
    const HsBlock& blk = **rit;
    last_executed_ = blk.height;
    FINDEP_HS_TRACE("t=%.3f [%u] hs commit h=%llu round=%llu size=%zu\n",
                    sim().now(), id(), (unsigned long long)blk.height,
                    (unsigned long long)blk.round,
                    blk.batch.requests.size());
    // Same batch unroll and dedup as the PBFT execution path: a request
    // id that already executed is skipped, so a repeated request cannot
    // execute twice.
    for (const Request& r : blk.batch.requests) {
      if (r.id != 0) {
        if (executed_ids_.contains(r.id)) continue;
        executed_ids_[r.id] = true;
        pending_requests_.erase(r.id);
        commit_times_.emplace_back(r.id, sim().now());
      }
      executed_.push_back(ExecutedEntry{blk.height, r});
    }
  }
  committed_height_ = block.height;
  maybe_checkpoint();
  prune_blocks();
  ensure_pacemaker();
}

bool HotStuff::safe_to_vote(const HsBlock& b) const {
  if (b.round <= last_voted_round_) return false;  // one vote per round
  // Two-chain safety: vote only for proposals extending a QC at least as
  // fresh as the highest we hold. on_proposal adopts b.justify before
  // asking, so this refuses exactly the proposals extending a branch we
  // know to be superseded — which is what makes a committed two-chain
  // final (any later QC's quorum intersects the committing one in an
  // honest voter bound by this rule). Liveness after a refusal: the
  // round times out and HsTimeout carries our high-QC to the next
  // leader, which catches up before proposing.
  return b.justify.round >= high_qc_.round;
}

void HotStuff::request_missing_block(const crypto::Digest& digest) {
  if (digest == crypto::Digest{} || digest == genesis_digest_) return;
  if (requested_blocks_.contains(digest)) return;
  requested_blocks_[digest] = true;
  FINDEP_HS_TRACE("t=%.3f [%u] hs fetch-block\n", sim().now(), id());
  broadcast(HsBlockRequest{digest});
}

void HotStuff::on_block_request(const HsBlockRequest& req, ReplicaId from) {
  if (from == id()) return;
  const auto it = blocks_.find(req.block_digest);
  if (it == blocks_.end()) return;
  send_to(from, HsBlockResponse{it->second});
}

void HotStuff::on_block_response(const HsBlockResponse& resp) {
  const HsBlock& b = resp.block;
  if (!blocks_.contains(b.digest())) {
    if (b.parent != b.justify.block_digest) return;
    if (b.height != b.justify.height + 1) return;
    if (!verify_qc(b.justify)) return;
    store_block(b);
    update_high_qc(b.justify);
  }
  // Retry the commit rule even when the block was already known: the
  // copy that beat this response here (a late proposal, say) may have
  // arrived after our high-QC did, leaving the 3-chain walk blocked on
  // it without anything re-driving the commit.
  try_commit();
  ensure_pacemaker();
}

// --- proposals and votes ---------------------------------------------------

void HotStuff::on_proposal(const HsProposal& p, ReplicaId from) {
  const HsBlock& b = p.block;
  if (b.round == 0) return;
  if (from != leader_of(b.round)) return;  // not that round's leader
  if (b.parent != b.justify.block_digest) return;  // must extend its QC
  if (b.height != b.justify.height + 1) return;
  if (!verify_qc(b.justify)) return;
  if (b.round > b.justify.round + 1) {
    // The leader proposed past a round gap: evidence of a timeout quorum
    // somewhere, even if we never fired one ourselves.
    observed_disruption_ = true;
  }
  store_block(b);
  update_high_qc(b.justify);
  // Retry the commit rule unconditionally: this block may be the one a
  // fresher QC (adopted before the proposal arrived) was blocked on, in
  // which case update_high_qc above was a no-op and would never re-walk.
  try_commit();
  // A valid proposal for round r is proof the cluster reached r: enter
  // it (QC-driven — resets the pacemaker backoff).
  enter_round(b.round, /*via_qc=*/true);

  const bool collude = options().behavior == Behavior::kCollude;
  if (collude || safe_to_vote(b)) {
    last_voted_round_ = std::max(last_voted_round_, b.round);
    // Leader-collects-votes: the vote goes to the *next* round's leader
    // only — this is the linear message pattern.
    send_to(leader_of(b.round + 1), HsVote{b.round, b.height, b.digest()});
  }
  try_propose();
  ensure_pacemaker();
}

void HotStuff::on_vote(const HsVote& v, ReplicaId from,
                       const crypto::Signature& signature) {
  if (v.round == 0) return;
  if (leader_of(v.round + 1) != id()) return;  // not ours to collect
  if (v.round + 1 < round_) return;            // stale round
  if (high_qc_.round >= v.round) return;       // QC already formed
  auto& set = votes_[v.round][v.block_digest];
  set.height = v.height;
  if (set.votes.contains(from)) return;  // one vote per voter (first wins)
  set.votes[from] = HsSignedVote{from, signature};
  double weight = 0.0;
  for (const auto& [voter, sv] : set.votes) weight += weight_of(voter);
  if (!is_quorum(weight)) return;

  // Quorum: assemble the QC (voter-ordered — the map iterates replica
  // ids ascending, so every replica would build the identical proof).
  QuorumCert qc{v.round, v.height, v.block_digest, {}};
  qc.votes.reserve(set.votes.size());
  for (const auto& [voter, sv] : set.votes) qc.votes.push_back(sv);
  votes_.erase(votes_.begin(), votes_.upper_bound(v.round));
  FINDEP_HS_TRACE("t=%.3f [%u] hs qc round=%llu h=%llu\n", sim().now(),
                  id(), (unsigned long long)qc.round,
                  (unsigned long long)qc.height);
  update_high_qc(qc);
  enter_round(qc.round + 1, /*via_qc=*/true);
  if (!try_propose()) {
    // Tail quiescence: nothing to propose, so the QC — known only to us,
    // the collecting leader — would strand the final commit with every
    // peer one round behind. Announce the bare certificate; receivers
    // adopt it and run the commit rule, and the cluster drains
    // symmetrically.
    broadcast(HsQcNotice{high_qc_});
  }
  ensure_pacemaker();
}

void HotStuff::on_qc_notice(const HsQcNotice& notice) {
  if (notice.qc.round <= high_qc_.round) return;
  if (!verify_qc(notice.qc)) return;
  update_high_qc(notice.qc);
  // Round entry only — a notice triggers no vote and no proposal, so a
  // drained cluster quiesces with every replica in the same round.
  enter_round(notice.qc.round + 1, /*via_qc=*/true);
  ensure_pacemaker();
}

std::unordered_map<std::uint64_t, bool> HotStuff::chain_ids() const {
  std::unordered_map<std::uint64_t, bool> ids;
  crypto::Digest d = high_qc_.block_digest;
  for (;;) {
    const auto it = blocks_.find(d);
    if (it == blocks_.end()) break;
    const HsBlock& b = it->second;
    if (b.height <= committed_height_) break;
    for (const Request& r : b.batch.requests) {
      if (r.id != 0) ids[r.id] = true;
    }
    d = b.parent;
  }
  return ids;
}

std::vector<Request> HotStuff::eligible_requests() const {
  const std::unordered_map<std::uint64_t, bool> on_chain = chain_ids();
  std::vector<const Request*> all;
  all.reserve(pending_requests_.size());
  // findep-lint: allow(unordered-iteration) -- collect-only walk; sorted by request id below before anything order-sensitive happens
  for (const auto& [rid, request] : pending_requests_) {
    all.push_back(&request);
  }
  std::sort(all.begin(), all.end(),
            [](const Request* a, const Request* b) { return a->id < b->id; });
  std::vector<Request> out;
  for (const Request* r : all) {
    if (r->id != 0 &&
        (executed_ids_.contains(r->id) || on_chain.contains(r->id))) {
      continue;
    }
    out.push_back(*r);
  }
  return out;
}

bool HotStuff::needs_flush() const {
  // True while the certified chain carries uncommitted real batches: the
  // two-chain rule needs a further certified block on top of a batch
  // before it commits, so leaders must keep extending (with no-op blocks
  // when the queue is empty) until the tail flushes.
  crypto::Digest d = high_qc_.block_digest;
  for (;;) {
    const auto it = blocks_.find(d);
    if (it == blocks_.end()) return false;
    const HsBlock& b = it->second;
    if (b.height <= committed_height_) return false;
    if (!b.batch.requests.empty()) return true;
    d = b.parent;
  }
}

bool HotStuff::try_propose() {
  if (options().behavior == Behavior::kSilent) return false;
  if (leader_of(round_) != id()) return false;
  if (last_proposed_round_ >= round_) return false;
  // The license to propose in round r: a QC from r-1 (normal path) or a
  // timeout quorum for r (pacemaker path).
  if (high_qc_.round + 1 != round_ && tc_round_ < round_) return false;

  std::vector<Request> eligible = eligible_requests();
  if (eligible.empty()) {
    if (!needs_flush()) return false;  // clean chain, nothing to do
    propose(Batch{});                  // no-op block drives the 3-chain
    return true;
  }
  if (eligible.size() < options().batch_size) {
    // Partial batch: give stragglers batch_timeout to arrive (validated
    // < pacemaker_timeout, so the cut always lands before peers expire
    // the round). The armed timer counts as an in-flight proposal.
    arm_batch_timer();
    return true;
  }
  Batch batch;
  batch.requests = std::move(eligible);
  propose(std::move(batch));
  return true;
}

void HotStuff::propose(Batch batch) {
  FINDEP_REQUIRE(leader_of(round_) == id());
  disarm_batch_timer();
  last_proposed_round_ = round_;
  HsBlock b;
  b.round = round_;
  b.height = high_qc_.height + 1;
  b.parent = high_qc_.block_digest;
  b.justify = high_qc_;
  b.batch = std::move(batch);
  FINDEP_HS_TRACE("t=%.3f [%u] hs propose round=%llu h=%llu size=%zu\n",
                  sim().now(), id(), (unsigned long long)b.round,
                  (unsigned long long)b.height, b.batch.requests.size());

  if (options().behavior == Behavior::kEquivocate ||
      options().behavior == Behavior::kCollude) {
    // Conflicting blocks for the same round: the real one to the even
    // half, a forged one to the odd half. Honest votes split between the
    // two digests, neither reaches quorum weight, and the round times
    // out onto the next leader — the QC rules reject equivocation
    // structurally rather than by detection.
    HsBlock forged = b;
    forged.batch.requests.clear();
    forged.batch.requests.reserve(b.batch.requests.size());
    for (const Request& r : b.batch.requests) {
      Request f = r;
      f.id ^= 0x8000000000000000ULL;
      f.operation = crypto::Sha256{}
                        .update("findep/forged/v1")
                        .update(r.operation.bytes)
                        .finish();
      forged.batch.requests.push_back(f);
    }
    const HsProposal real{b};
    const HsProposal fake{forged};
    for (ReplicaId r = 0; r < harness_.n(); ++r) {
      if (r == id()) continue;
      send_to(r, r % 2 == 0 ? Payload{real} : Payload{fake});
    }
    return;  // the equivocator does not even convince itself
  }

  broadcast(HsProposal{std::move(b)});
}

// --- pacemaker -------------------------------------------------------------

void HotStuff::enter_round(Round r, bool via_qc) {
  if (r <= round_) return;
  round_ = r;
  if (via_qc) backoff_ = 1.0;  // certified progress resyncs the pacemaker
  // Dead collection state: votes can only complete for round_ - 1 and
  // up, timeout quorums only for round_ and up.
  if (round_ >= 2) {
    votes_.erase(votes_.begin(), votes_.upper_bound(round_ - 2));
  }
  timeout_votes_.erase(timeout_votes_.begin(),
                       timeout_votes_.lower_bound(round_));
  disarm_batch_timer();
  disarm_round_timer();
  ensure_pacemaker();
}

void HotStuff::ensure_pacemaker() {
  if (options().behavior == Behavior::kSilent) return;
  const bool dirty = !pending_requests_.empty() || needs_flush();
  if (!dirty) {
    // Quiescent: no timer, so a drained simulation terminates instead of
    // timing out forever on an empty chain.
    disarm_round_timer();
    return;
  }
  if (round_timer_.has_value()) return;
  round_timer_ = sim().schedule_after(
      options().pacemaker_timeout * backoff_, [this] {
        round_timer_.reset();
        round_expired();
      });
}

void HotStuff::round_expired() {
  ++timeouts_fired_;
  observed_disruption_ = true;
  backoff_ = std::min(backoff_ * options().pacemaker_backoff,
                      options().pacemaker_max_backoff);
  ++round_;
  FINDEP_HS_TRACE("t=%.3f [%u] hs timeout -> round=%llu backoff=%.1f\n",
                  sim().now(), id(), (unsigned long long)round_, backoff_);
  disarm_batch_timer();
  // A response that never came may be waiting behind a pruned request
  // mark; allow re-asking after the stall.
  requested_blocks_.clear();
  // Announce the expiry to everyone (carrying our high-QC, so a leader
  // behind on certificates catches up before proposing). Broadcast, not
  // a unicast to the new leader: peers that believe the system is
  // drained (a censoring replica dropped the very request we are stuck
  // on) keep no pacemaker of their own and must hear about the stall to
  // join the timeout quorum — see the amplification rule in on_timeout.
  timeout_sent_round_ = std::max(timeout_sent_round_, round_);
  broadcast(HsTimeout{round_, high_qc_});
  // Rotation must not starve requests the new leader never saw (direct
  // submits the old leader censored or crashed on): re-relay everything
  // still pending, in request-id order so every replica re-drives
  // identically.
  if (leader_of(round_) != id() && !pending_requests_.empty()) {
    std::vector<const Request*> redrive;
    redrive.reserve(pending_requests_.size());
    // findep-lint: allow(unordered-iteration) -- collect-only walk; sorted by request id below before anything order-sensitive happens
    for (const auto& [rid, request] : pending_requests_) {
      redrive.push_back(&request);
    }
    std::sort(redrive.begin(), redrive.end(),
              [](const Request* a, const Request* b) {
                return a->id < b->id;
              });
    for (const Request* r : redrive) {
      send_to(leader_of(round_), *r);
    }
  }
  ensure_pacemaker();
}

void HotStuff::on_timeout(const HsTimeout& t, ReplicaId from) {
  observed_disruption_ = true;
  if (t.round == 0) return;
  if (!verify_qc(t.high_qc)) return;
  update_high_qc(t.high_qc);
  // A timeout carrying a certificate older than ours marks the sender as
  // not merely slow but stranded — a healed partition, say, that starved
  // behind the split while the rest of the cluster committed and went
  // quiescent with nothing left to broadcast. Its round number says
  // nothing either way: exponential backoff can push a wedged replica's
  // round far *past* a quiescent cluster's even as its chain lags
  // behind. Hand it our chain head; it fetches the missing blocks and
  // catches up.
  if (t.high_qc.round < high_qc_.round) {
    send_to(from, HsQcNotice{high_qc_});
  }
  if (t.round < round_) {
    // Stale round: the cluster already moved past it; nothing to vote on.
    ensure_pacemaker();
    return;
  }
  auto& voters = timeout_votes_[t.round];
  voters[from] = weight_of(from);
  double weight = 0.0;
  for (const auto& [voter, w] : voters) weight += w;
  // Amplification (the Bracha-echo of pacemakers): more than a third of
  // the power expired t.round, so at least one *honest* replica is stuck
  // there — join its timeout even though our own pacemaker is idle. This
  // is what lets a quiescent minority drag the cluster forward: replicas
  // that dropped a request at ingress (censors) see nothing pending,
  // keep no timer, and would otherwise never help the honest holders of
  // that request reach a > 2/3 timeout quorum.
  if (options().behavior != Behavior::kSilent &&
      harness_.is_third(weight) && timeout_sent_round_ < t.round) {
    timeout_sent_round_ = t.round;
    broadcast(HsTimeout{t.round, high_qc_});
    enter_round(t.round, /*via_qc=*/false);
  }
  if (leader_of(t.round) == id() && is_quorum(weight)) {
    // > 2/3 of the power is ready for t.round: our license to propose
    // there without a fresh QC.
    tc_round_ = std::max(tc_round_, t.round);
    enter_round(t.round, /*via_qc=*/false);
    try_propose();
  }
  ensure_pacemaker();
}

void HotStuff::arm_batch_timer() {
  if (batch_timer_.has_value()) return;
  batch_timer_ = sim().schedule_after(options().batch_timeout, [this] {
    batch_timer_.reset();
    if (leader_of(round_) != id() || last_proposed_round_ >= round_) return;
    if (high_qc_.round + 1 != round_ && tc_round_ < round_) return;
    std::vector<Request> eligible = eligible_requests();
    if (eligible.empty() && !needs_flush()) return;
    Batch batch;
    batch.requests = std::move(eligible);
    propose(std::move(batch));
  });
}

void HotStuff::disarm_batch_timer() {
  if (batch_timer_.has_value()) {
    sim().cancel(*batch_timer_);
    batch_timer_.reset();
  }
}

void HotStuff::disarm_round_timer() {
  if (round_timer_.has_value()) {
    sim().cancel(*round_timer_);
    round_timer_.reset();
  }
}

// --- durability ------------------------------------------------------------

crypto::Digest HotStuff::state_digest_with(
    const std::vector<ExecutedEntry>& extra) const {
  return state_digest_over(executed_, extra);
}

void HotStuff::maybe_checkpoint() {
  const SeqNum seq =
      ckpt_.maybe_emit(last_executed_, options().checkpoint_interval);
  if (seq == 0) return;
  broadcast(Checkpoint{seq, state_digest_with({})});
}

void HotStuff::prune_blocks() {
  // Committed-and-stable prefix blocks are dead weight: commit walks
  // stop at committed_height_ and laggards recover via state transfer,
  // not block fetch. Blocks between the stable checkpoint and the tip
  // stay, so peers can still repair orphan chains. Genesis is kept as
  // the structural anchor.
  const SeqNum keep_above =
      std::min<SeqNum>(ckpt_.stable(), committed_height_);
  // findep-lint: allow(unordered-iteration) -- this blocks_ is a std::map (digest-ordered, deterministic); the name merely collides with nakamoto's unordered block index in the include closure
  for (auto it = blocks_.begin(); it != blocks_.end();) {
    const bool prune = it->second.height <= keep_above &&
                       it->second.height > 0;
    it = prune ? blocks_.erase(it) : std::next(it);
  }
}

void HotStuff::on_checkpoint(const Checkpoint& cp, ReplicaId from,
                             const crypto::Signature& signature) {
  // Same claims bookkeeping as the PBFT lane: a signed checkpoint is
  // evidence of the sender's execution horizon.
  fetch_.note_claim(from, cp.seq);
  if (!ckpt_.on_vote(cp, from, signature, last_executed_,
                     options().checkpoint_interval)) {
    return;
  }
  prune_blocks();
  if (ckpt_.stable() > last_executed_) fetch_.maybe_schedule();
}

void HotStuff::on_state_request(const StateRequest& sr, ReplicaId from) {
  if (ckpt_.stable() == 0 || ckpt_.proof().empty()) return;
  if (sr.last_executed >= ckpt_.stable()) return;  // nothing to prove
  if (last_executed_ < ckpt_.stable()) return;     // cannot substantiate
  StateResponse resp;
  resp.request_from = sr.last_executed;
  resp.checkpoint = Checkpoint{ckpt_.stable(), ckpt_.digest()};
  resp.proof = ckpt_.proof();
  for (const ExecutedEntry& e : executed_) {
    if (e.seq > sr.last_executed && e.seq <= ckpt_.stable()) {
      resp.entries.push_back(e);
    }
  }
  // resp.new_view stays empty: HotStuff has no view-change artifact to
  // relay — the pacemaker resynchronizes rounds by itself.
  send_to(from, std::move(resp));
}

void HotStuff::on_state_response(const StateResponse& resp, ReplicaId from) {
  if (!options().enable_state_transfer) return;
  if (resp.checkpoint.seq <= last_executed_) return;  // stale/no-op

  const auto reject = [&] {
    ++state_transfers_rejected_;
    fetch_.on_rejected(from);
  };

  // Same three steps as the PBFT lane, sharing the proof verifier and
  // the digest arbiter (the two lanes hash identical executed-entry
  // logs, so a checkpoint proof is protocol-portable).
  if (!verify_checkpoint_proof(harness_, resp.checkpoint, resp.proof)) {
    return reject();
  }
  std::vector<ExecutedEntry> suffix;
  suffix.reserve(resp.entries.size());
  SeqNum prev = last_executed_;
  for (const ExecutedEntry& e : resp.entries) {
    if (e.seq <= last_executed_) continue;
    if (e.seq < prev || e.seq > resp.checkpoint.seq) return reject();
    prev = e.seq;
    suffix.push_back(e);
  }
  if (state_digest_with(suffix) != resp.checkpoint.state_digest) {
    return reject();
  }

  for (const ExecutedEntry& e : suffix) {
    if (e.request.id != 0) {
      executed_ids_[e.request.id] = true;
      pending_requests_.erase(e.request.id);
    }
    executed_.push_back(e);
  }
  last_executed_ = resp.checkpoint.seq;
  committed_height_ = std::max(committed_height_, last_executed_);
  ++state_transfers_completed_;
  ckpt_.maybe_adopt(resp.checkpoint, resp.proof);
  prune_blocks();
  fetch_.on_adopted();
  // The chain tip may now be contiguous with the adopted horizon.
  try_commit();
  ensure_pacemaker();
  fetch_.maybe_schedule();
}

}  // namespace findep::replication
