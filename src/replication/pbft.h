// The PBFT ordering protocol over the layered replication core.
//
// Implements the normal three-phase case (pre-prepare / prepare / commit)
// over *request batches* (one consensus instance orders a block of client
// requests; see ReplicaOptions::batch_size), checkpointing, and view
// changes with NEW-VIEW proof verification, using *weighted* quorums:
// each replica carries a voting power w_i and certificates require
// strictly more than 2/3 of the total power (for unit weights and
// n = 3f+1 this is exactly the classic 2f+1). Safety holds while
// Byzantine power ≤ 1/3 of total — precisely the budget the diversity
// core bounds via the configuration distribution.
//
// Byzantine behaviours built in for fault-injection experiments:
//   kSilent     — never sends anything (fail-stop from the start).
//   kEquivocate — as primary, proposes conflicting requests for the same
//                 sequence number to different halves of the cluster.
//   kCollude    — kEquivocate as primary, and additionally lends its
//                 commit weight to *every* digest it hears of (prepare +
//                 commit without conflict checks). A coalition of
//                 colluders with power > 1/3 of the total can drive two
//                 conflicting commit certificates through — the exact
//                 safety threshold of the paper — whereas any weaker
//                 coalition (and any number of plain equivocators)
//                 cannot.
//   kCensor     — as primary, silently ignores requests with odd ids
//                 (a client-selective starvation attack: the cluster
//                 keeps making progress on everything else).
//
// Checkpoint-anchored state transfer (DESIGN.md "State transfer"): a
// replica that observes credible evidence of committed state above its
// own execution horizon — a stable-checkpoint quorum it adopted, or
// > 1/3 of voting power claiming checkpoints it has not executed —
// fetches the missing log suffix from a random up-to-date peer, verifies
// the checkpoint digest against the signed vote quorum carried in the
// response, and resumes normal execution. The vote tracking and the
// fetch machine live in replication/durability.h, shared with every
// other protocol.
#pragma once

#include <deque>
#include <map>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "bft/messages.h"
#include "net/network.h"
#include "replication/durability.h"
#include "replication/protocol.h"
#include "sim/simulator.h"

namespace findep::replication {

class Pbft final : public OrderingProtocol {
 public:
  /// `weights[i]` is replica i's voting power; `directory[i]` its public
  /// key (both indexed by ReplicaId, same size). `keys` must match
  /// `directory[id]` and be enrolled in `registry`.
  Pbft(ReplicaId id, std::vector<double> weights,
       std::vector<crypto::PublicKey> directory,
       crypto::KeyRegistry& registry, crypto::KeyPair keys,
       net::SimNetwork& network, ReplicaOptions options);

  /// Attaches the network handler. Call once before the simulation runs.
  void start() override;

  /// Client entry point: hands a request to this replica (it forwards to
  /// the primary if needed and arms the liveness timer).
  void submit(const Request& request) override;

  [[nodiscard]] View view() const noexcept { return view_; }
  [[nodiscard]] const std::vector<ExecutedEntry>& executed()
      const noexcept override {
    return executed_;
  }
  [[nodiscard]] SeqNum last_executed() const noexcept override {
    return last_executed_;
  }
  [[nodiscard]] SeqNum stable_checkpoint() const noexcept override {
    return ckpt_.stable();
  }
  [[nodiscard]] std::uint64_t view_changes_started() const noexcept {
    return view_changes_started_;
  }
  /// PBFT's ordering-progress disruptions are its view changes.
  [[nodiscard]] std::uint64_t progress_disruptions()
      const noexcept override {
    return view_changes_started_;
  }
  [[nodiscard]] bool observed_disruption() const noexcept override {
    return view_changes_started_ > 0 || view_ > 0;
  }
  /// Batch cuts deferred by the high-watermark bound (primary only;
  /// each deferral event counts, including repeats for the same batch).
  [[nodiscard]] std::uint64_t proposals_deferred() const noexcept override {
    return proposals_deferred_;
  }
  [[nodiscard]] const crypto::Digest& stable_checkpoint_digest()
      const noexcept override {
    return ckpt_.digest();
  }
  [[nodiscard]] std::uint64_t state_transfers_completed()
      const noexcept override {
    return state_transfers_completed_;
  }
  [[nodiscard]] std::uint64_t state_transfers_rejected()
      const noexcept override {
    return state_transfers_rejected_;
  }
  [[nodiscard]] std::uint64_t state_transfer_requests()
      const noexcept override {
    return fetch_.requests_sent();
  }
  [[nodiscard]] std::uint64_t state_transfer_bytes()
      const noexcept override {
    return state_transfer_bytes_;
  }
  [[nodiscard]] const std::vector<std::pair<std::uint64_t, double>>&
  commit_times() const noexcept override {
    return commit_times_;
  }

  [[nodiscard]] ReplicaId primary_of(View v) const noexcept {
    return static_cast<ReplicaId>(v % harness_.n());
  }
  [[nodiscard]] bool is_primary() const noexcept {
    return primary_of(view_) == id();
  }

  /// The batch used to fill sequence gaps during view changes: empty, so
  /// executing it is a no-op at request granularity.
  [[nodiscard]] static Batch noop_batch();

  // --- harness → protocol ----------------------------------------------
  void dispatch_payload(const Envelope& env, net::NodeId raw_from,
                        std::uint64_t raw_bytes) override;
  [[nodiscard]] runtime::WorkerPool::StaleCheck verify_stale_check(
      const Payload& payload) const override;
  [[nodiscard]] double verify_extra_cost(
      const Payload& payload) const override;

 private:
  /// Consensus state of one sequence number. One slot agrees on one
  /// *batch*; execution unrolls the batch into per-request log entries.
  struct Slot {
    bool have_preprepare = false;
    Batch batch;
    crypto::Digest batch_digest;
    /// Votes keyed by digest then sender (handles out-of-order arrival
    /// and equivocation).
    std::map<crypto::Digest, std::map<ReplicaId, double>> prepare_votes;
    std::map<crypto::Digest, std::map<ReplicaId, double>> commit_votes;
    bool sent_prepare = false;
    bool sent_commit = false;
    bool prepared = false;
    View prepared_view = 0;
    bool committed = false;
  };

  // --- dispatch ---------------------------------------------------------
  void on_request(const Request& request, net::NodeId from);
  void on_preprepare(const PrePrepare& pp, ReplicaId from);
  void on_prepare(const Prepare& p, ReplicaId from);
  void on_commit(const Commit& c, ReplicaId from);
  void on_checkpoint(const Checkpoint& cp, ReplicaId from,
                     const crypto::Signature& signature);
  void on_viewchange(const ViewChange& vc, ReplicaId from,
                     const crypto::Signature& signature);
  void on_newview(const NewView& nv, ReplicaId from);
  void on_state_request(const StateRequest& sr, ReplicaId from);
  void on_state_response(const StateResponse& resp, ReplicaId from);

  // --- normal case ------------------------------------------------------
  void enqueue_for_proposal(const Request& request);
  void cut_batch();
  /// Re-attempts a batch cut that the high-watermark bound deferred.
  /// Called wherever the stable checkpoint advances.
  void retry_deferred_cut();
  void propose(Batch batch);
  void accept_preprepare(const PrePrepare& pp);
  void maybe_prepared(SeqNum seq);
  void maybe_committed(SeqNum seq);
  void execute_ready();
  void maybe_checkpoint();

  // --- view change ------------------------------------------------------
  void replay_future_messages();
  void start_view_change(View target);
  void maybe_assemble_new_view(View target);
  [[nodiscard]] static std::vector<PrePrepare> compute_reproposals(
      View target, const std::vector<SignedViewChange>& proofs);
  /// Verifies a NEW-VIEW's embedded view-change quorum and recomputed
  /// re-proposals (shared by on_newview and state-transfer adoption —
  /// NEW-VIEW is self-certifying, so it can be relayed).
  [[nodiscard]] bool verify_new_view(const NewView& nv) const;
  void install_new_view(const NewView& nv);

  // --- state transfer ---------------------------------------------------
  /// State digest of this log extended by `extra` (what maybe_checkpoint
  /// hashes, and what a state response's entries must reproduce).
  [[nodiscard]] crypto::Digest state_digest_with(
      const std::vector<ExecutedEntry>& extra) const;

  // --- helpers ----------------------------------------------------------
  [[nodiscard]] const ReplicaOptions& options() const noexcept {
    return harness_.options();
  }
  [[nodiscard]] sim::Simulator& sim() const noexcept {
    return harness_.simulator();
  }
  void broadcast(Payload payload) { harness_.broadcast(std::move(payload)); }
  void send_to(net::NodeId to, Payload payload) {
    harness_.send_to(to, std::move(payload));
  }
  [[nodiscard]] double weight_of(ReplicaId r) const {
    return harness_.weight_of(r);
  }
  [[nodiscard]] double vote_weight(
      const std::map<ReplicaId, double>& votes) const {
    return harness_.vote_weight(votes);
  }
  [[nodiscard]] bool is_quorum(double weight) const noexcept {
    return harness_.is_quorum(weight);
  }
  [[nodiscard]] bool is_third(double weight) const noexcept {
    return harness_.is_third(weight);
  }
  /// Registers a liveness deadline for a request id that just became
  /// pending (no-op if one is already tracked — retransmissions must not
  /// push a starved request's deadline back).
  void track_request_deadline(std::uint64_t request_id);
  /// Rebases every tracked deadline to now + request_timeout (view
  /// installation and state-transfer adoption grant the new regime a
  /// fresh timeout, as the single-timer design did).
  void refresh_request_deadlines();
  void arm_request_timer();
  void disarm_request_timer();
  void request_timer_fired();
  /// kCollude: endorse (prepare + commit) a digest we heard of, once.
  void collude_endorse(View v, SeqNum seq, const crypto::Digest& digest);
  void arm_viewchange_timer(View target);
  void disarm_viewchange_timer();
  void arm_batch_timer();
  void disarm_batch_timer();

  View view_ = 0;
  bool in_view_change_ = false;
  View pending_view_ = 0;
  SeqNum next_seq_ = 1;  // primary's allocator
  std::map<SeqNum, Slot> slots_;
  SeqNum last_executed_ = 0;
  std::vector<ExecutedEntry> executed_;
  std::unordered_map<std::uint64_t, Request> pending_requests_;
  std::unordered_map<std::uint64_t, SeqNum> assigned_;  // primary only
  std::unordered_map<std::uint64_t, bool> executed_ids_;
  /// (request id, simulated commit time) per request executed here —
  /// feeds the commit-latency percentiles in the protocol-comparison
  /// scenarios. Recording is observationally pure: no messages, timers
  /// or branches depend on it, so legacy runs stay bit-identical.
  std::vector<std::pair<std::uint64_t, double>> commit_times_;

  /// Primary-side batching: requests accepted but not yet proposed, in
  /// arrival order, plus their ids for O(1) duplicate suppression.
  std::vector<Request> batch_queue_;
  std::unordered_map<std::uint64_t, bool> queued_ids_;
  /// A batch cut is waiting for the stable checkpoint to advance
  /// (high-watermark back-pressure).
  bool cut_deferred_ = false;
  std::uint64_t proposals_deferred_ = 0;

  /// Shared durability layer: checkpoint votes/proofs and the
  /// claims-driven state-transfer fetch machine.
  CheckpointStore ckpt_;
  StateFetchMachine fetch_;
  std::uint64_t state_transfers_completed_ = 0;
  std::uint64_t state_transfers_rejected_ = 0;
  std::uint64_t state_transfer_bytes_ = 0;

  std::map<View, std::vector<SignedViewChange>> viewchange_votes_;
  View newview_assembled_for_ = 0;
  std::uint64_t view_changes_started_ = 0;
  /// The NEW-VIEW we last installed, relayed inside state responses so a
  /// requester that missed the view change can re-verify and adopt it.
  std::optional<NewView> last_new_view_;

  /// Normal-case messages that arrived for a view we have not installed
  /// yet (we lag behind a view change); replayed after installation.
  /// Replaces the retransmission machinery of a real deployment.
  std::vector<Envelope> future_messages_;

  /// Per-request liveness deadlines in arrival order. Deadlines are
  /// nondecreasing (every entry is its arm-time + request_timeout), so
  /// one simulator timer armed for the front entry suffices; entries
  /// whose request already executed are popped lazily. This is what
  /// detects client-selective starvation: progress on *other* requests
  /// never pushes a starved request's deadline back.
  std::deque<std::pair<double, std::uint64_t>> request_deadlines_;
  /// kCollude bookkeeping: digests already endorsed per seq (pruned with
  /// slots_ at checkpoints).
  std::map<SeqNum, std::vector<crypto::Digest>> colluded_;

  std::optional<sim::EventId> request_timer_;
  std::optional<sim::EventId> viewchange_timer_;
  std::optional<sim::EventId> batch_timer_;
};

}  // namespace findep::replication
