// A replica's full configuration: one component per kind (trusted hardware
// optional), plus a canonical digest used as the configuration identity —
// the `d_i ∈ D` of §IV-A. Two replicas share a fault domain exactly when
// they share a component.
#pragma once

#include <array>
#include <optional>
#include <vector>

#include "config/catalog.h"
#include "config/component.h"
#include "crypto/sha256.h"

namespace findep::config {

/// Identity of a configuration in the space D (canonical digest).
using ConfigurationId = crypto::Digest;

/// Immutable-after-build replica configuration.
class ReplicaConfiguration {
 public:
  ReplicaConfiguration() = default;

  /// Sets the component for its kind (replacing any previous choice).
  void set(const Component& component);
  void set(const ComponentCatalog& catalog, ComponentId id);

  /// Removes the choice for `kind` (only meaningful for optional kinds).
  void clear(ComponentKind kind);

  [[nodiscard]] bool has(ComponentKind kind) const noexcept;
  [[nodiscard]] std::optional<ComponentId> component(
      ComponentKind kind) const noexcept;

  /// All chosen component ids, in kind order.
  [[nodiscard]] std::vector<ComponentId> components() const;

  /// True when every mandatory kind (everything except trusted hardware)
  /// has a component.
  [[nodiscard]] bool is_complete() const noexcept;

  /// True when the configuration includes a TEE/TPM and can therefore be
  /// remotely attested (the two-tier split of §V).
  [[nodiscard]] bool is_attestable() const noexcept {
    return has(ComponentKind::kTrustedHardware);
  }

  /// Canonical digest over (kind, component id) pairs. Equal digests ⇔
  /// equal configurations.
  [[nodiscard]] ConfigurationId digest() const;

  /// True when the two configurations share at least one component — i.e.
  /// a single component fault can affect both replicas.
  [[nodiscard]] bool shares_component_with(
      const ReplicaConfiguration& other) const noexcept;

  bool operator==(const ReplicaConfiguration&) const = default;

 private:
  std::array<std::optional<ComponentId>, kComponentKindCount> chosen_{};
};

}  // namespace findep::config
