// Software/hardware components making up a replica configuration.
//
// The paper decomposes a replica into trusted hardware, system software and
// application software, and singles out the wallet (key management) and the
// consensus module as the dependability-critical application components
// (§III-A). We model a configuration as one component choice per kind; a
// shared component is the unit of correlated failure.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <string>
#include <string_view>

namespace findep::config {

/// The axes of diversity. One replica picks (at most) one component per
/// kind; TrustedHardware is optional (§V considers populations where only
/// some replicas can attest).
enum class ComponentKind : std::uint8_t {
  kTrustedHardware,   // TEE/TPM: SGX, TrustZone, AMD PSP, IBM SSC...
  kOperatingSystem,   // system software (the "heaviest component", §III-A)
  kCryptoLibrary,     // §II-B: implementations may be flawed
  kConsensusClient,   // consensus module / full-node implementation
  kWallet,            // key & account management
  kDatabase,          // COTS state storage
  kNetworkStack,      // P2P / RPC networking library
};

inline constexpr std::size_t kComponentKindCount = 7;

/// All kinds in declaration order (for iteration).
[[nodiscard]] const std::array<ComponentKind, kComponentKindCount>&
all_component_kinds() noexcept;

[[nodiscard]] std::string_view to_string(ComponentKind kind) noexcept;

/// Catalog-scoped component identifier (dense, assigned by the catalog).
struct ComponentId {
  std::uint32_t value = 0;

  auto operator<=>(const ComponentId&) const = default;
};

/// A concrete COTS component (e.g. "Debian 12", "OpenSSL 3.2").
struct Component {
  ComponentId id;
  ComponentKind kind = ComponentKind::kOperatingSystem;
  std::string vendor;
  std::string name;
  std::string version;

  /// "vendor/name version" display form.
  [[nodiscard]] std::string display() const;
};

}  // namespace findep::config

template <>
struct std::hash<findep::config::ComponentId> {
  std::size_t operator()(const findep::config::ComponentId& id) const noexcept {
    return std::hash<std::uint32_t>{}(id.value);
  }
};
