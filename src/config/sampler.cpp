#include "config/sampler.h"

#include <numeric>

#include "support/assert.h"

namespace findep::config {

ConfigurationSampler::ConfigurationSampler(const ComponentCatalog& catalog,
                                           SamplerOptions options)
    : catalog_(&catalog), options_(options) {
  FINDEP_REQUIRE(options.zipf_exponent >= 0.0);
  FINDEP_REQUIRE(options.attestable_fraction >= 0.0 &&
                 options.attestable_fraction <= 1.0);
  for (const ComponentKind kind : all_component_kinds()) {
    if (kind == ComponentKind::kTrustedHardware) continue;
    FINDEP_REQUIRE_MSG(catalog.variety(kind) > 0,
                       "catalog must offer every mandatory kind");
  }
}

ReplicaConfiguration ConfigurationSampler::sample(support::Rng& rng) const {
  ReplicaConfiguration cfg;
  for (const ComponentKind kind : all_component_kinds()) {
    const auto choices = catalog_->of_kind(kind);
    if (kind == ComponentKind::kTrustedHardware) {
      if (choices.empty() || !rng.chance(options_.attestable_fraction)) {
        continue;
      }
    }
    const std::size_t rank =
        rng.zipf(choices.size(), options_.zipf_exponent);
    cfg.set(*catalog_, choices[rank]);
  }
  FINDEP_ENSURE(cfg.is_complete());
  return cfg;
}

std::vector<ReplicaConfiguration> ConfigurationSampler::sample_population(
    support::Rng& rng, std::size_t n) const {
  std::vector<ReplicaConfiguration> population;
  population.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    population.push_back(sample(rng));
  }
  return population;
}

std::vector<ReplicaConfiguration>
ConfigurationSampler::distinct_configurations(std::size_t count) const {
  // Configurations i and j coincide iff (j - i) is divisible by every
  // kind's variety, i.e. by their lcm — so distinctness holds up to lcm.
  std::size_t lcm = 1;
  for (const ComponentKind kind : all_component_kinds()) {
    const std::size_t v = catalog_->variety(kind);
    if (v > 0) lcm = std::lcm(lcm, v);
  }
  FINDEP_REQUIRE_MSG(count <= lcm,
                     "catalog too small for this many distinct configs");
  std::vector<ReplicaConfiguration> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    ReplicaConfiguration cfg;
    for (const ComponentKind kind : all_component_kinds()) {
      const auto choices = catalog_->of_kind(kind);
      if (choices.empty()) continue;
      cfg.set(*catalog_, choices[i % choices.size()]);
    }
    out.push_back(cfg);
  }
  return out;
}

}  // namespace findep::config
