// Samplers producing replica-configuration populations.
//
// Real deployments are not uniform over the configuration space: component
// popularity is heavily skewed (one OS and one full-node implementation
// dominate). The sampler models this with a per-kind Zipf exponent so
// experiments can sweep from monoculture (large s) to uniform diversity
// (s = 0), which directly moves the entropy measured by the core library.
#pragma once

#include <vector>

#include "config/catalog.h"
#include "config/replica_config.h"
#include "support/rng.h"

namespace findep::config {

/// Skew model for sampling: popularity rank r of a component within its
/// kind gets probability ∝ 1/r^s.
struct SamplerOptions {
  /// Zipf exponent per kind. 0 = uniform; ≈1 matches observed software
  /// market shares; ≥2 is near-monoculture.
  double zipf_exponent = 1.0;
  /// Probability that a replica has any trusted hardware at all.
  double attestable_fraction = 0.5;
};

/// Draws complete replica configurations from a catalog.
class ConfigurationSampler {
 public:
  ConfigurationSampler(const ComponentCatalog& catalog,
                       SamplerOptions options);

  /// Samples one complete configuration.
  [[nodiscard]] ReplicaConfiguration sample(support::Rng& rng) const;

  /// Samples a population of n configurations.
  [[nodiscard]] std::vector<ReplicaConfiguration> sample_population(
      support::Rng& rng, std::size_t n) const;

  /// Enumerates `count` maximally-distinct configurations by Latin-square
  /// rotation through each kind's variants: configuration i takes variant
  /// (i mod variety) of every kind. Adjacent configurations share no
  /// component when count <= min variety; used to construct κ-optimal
  /// populations for the Definition-1 experiments.
  [[nodiscard]] std::vector<ReplicaConfiguration> distinct_configurations(
      std::size_t count) const;

  [[nodiscard]] const ComponentCatalog& catalog() const noexcept {
    return *catalog_;
  }

 private:
  const ComponentCatalog* catalog_;  // non-owning; outlives the sampler
  SamplerOptions options_;
};

}  // namespace findep::config
