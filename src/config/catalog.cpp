#include "config/catalog.h"

#include "support/assert.h"

namespace findep::config {

namespace {
std::size_t kind_index(ComponentKind kind) {
  const auto idx = static_cast<std::size_t>(kind);
  FINDEP_REQUIRE(idx < kComponentKindCount);
  return idx;
}
}  // namespace

ComponentId ComponentCatalog::add(ComponentKind kind, std::string vendor,
                                  std::string name, std::string version) {
  const ComponentId id{static_cast<std::uint32_t>(components_.size())};
  components_.push_back(Component{id, kind, std::move(vendor),
                                  std::move(name), std::move(version)});
  by_kind_[kind_index(kind)].push_back(id);
  return id;
}

const Component& ComponentCatalog::get(ComponentId id) const {
  FINDEP_REQUIRE(id.value < components_.size());
  return components_[id.value];
}

std::span<const ComponentId> ComponentCatalog::of_kind(
    ComponentKind kind) const noexcept {
  return by_kind_[static_cast<std::size_t>(kind)];
}

double ComponentCatalog::configuration_space_size() const noexcept {
  double product = 1.0;
  for (const ComponentKind kind : all_component_kinds()) {
    const std::size_t v = variety(kind);
    if (kind == ComponentKind::kTrustedHardware) {
      product *= static_cast<double>(v + 1);  // "no TEE" is a valid choice
    } else if (v > 0) {
      product *= static_cast<double>(v);
    }
  }
  return product;
}

ComponentCatalog standard_catalog() {
  ComponentCatalog c;
  using K = ComponentKind;

  // Trusted hardware (§III-B lists exactly these families).
  c.add(K::kTrustedHardware, "Intel", "SGX", "SGX2");
  c.add(K::kTrustedHardware, "ARM", "TrustZone", "v8.4");
  c.add(K::kTrustedHardware, "AMD", "PSP", "SEV-SNP");
  c.add(K::kTrustedHardware, "IBM", "Secure Service Container", "z15");

  // System software.
  c.add(K::kOperatingSystem, "Debian", "Linux", "12");
  c.add(K::kOperatingSystem, "Canonical", "Ubuntu", "22.04");
  c.add(K::kOperatingSystem, "RedHat", "RHEL", "9");
  c.add(K::kOperatingSystem, "FreeBSD", "FreeBSD", "14.0");
  c.add(K::kOperatingSystem, "OpenBSD", "OpenBSD", "7.4");
  c.add(K::kOperatingSystem, "Microsoft", "Windows Server", "2022");
  c.add(K::kOperatingSystem, "Apple", "macOS", "14");
  c.add(K::kOperatingSystem, "Alpine", "Linux-musl", "3.19");

  // Crypto libraries.
  c.add(K::kCryptoLibrary, "OpenSSL", "libcrypto", "3.2");
  c.add(K::kCryptoLibrary, "LibreSSL", "libcrypto", "3.8");
  c.add(K::kCryptoLibrary, "BoringSSL", "libcrypto", "2024");
  c.add(K::kCryptoLibrary, "wolfSSL", "wolfCrypt", "5.6");
  c.add(K::kCryptoLibrary, "libsodium", "libsodium", "1.0.19");
  c.add(K::kCryptoLibrary, "Botan", "Botan", "3.3");

  // Consensus clients / full-node implementations.
  c.add(K::kConsensusClient, "Bitcoin Core", "bitcoind", "26.0");
  c.add(K::kConsensusClient, "btcsuite", "btcd", "0.24");
  c.add(K::kConsensusClient, "libbitcoin", "bn", "3.8");
  c.add(K::kConsensusClient, "bcoin", "bcoin", "2.2");
  c.add(K::kConsensusClient, "Hyperledger", "Sawtooth-PoET", "1.2");
  c.add(K::kConsensusClient, "BFT-SMaRt", "bftsmart", "1.2");
  c.add(K::kConsensusClient, "Damysus", "damysus", "1.0");

  // Wallets / key management (§III-A: built-in, third-party, custodial).
  c.add(K::kWallet, "Bitcoin Core", "built-in wallet", "26.0");
  c.add(K::kWallet, "Electrum", "desktop wallet", "4.5");
  c.add(K::kWallet, "Ledger", "hardware wallet", "Nano S+");
  c.add(K::kWallet, "Trezor", "hardware wallet", "Model T");
  c.add(K::kWallet, "MetaMask", "web wallet", "11");
  c.add(K::kWallet, "Exchange", "custodial", "n/a");

  // Databases.
  c.add(K::kDatabase, "Google", "LevelDB", "1.23");
  c.add(K::kDatabase, "Meta", "RocksDB", "8.10");
  c.add(K::kDatabase, "Oracle", "BerkeleyDB", "18.1");
  c.add(K::kDatabase, "SQLite", "SQLite", "3.45");
  c.add(K::kDatabase, "Symas", "LMDB", "0.9.31");

  // Network stacks.
  c.add(K::kNetworkStack, "Kernel", "BSD sockets", "native");
  c.add(K::kNetworkStack, "libevent", "libevent", "2.1");
  c.add(K::kNetworkStack, "Boost", "Asio", "1.84");
  c.add(K::kNetworkStack, "ZeroMQ", "libzmq", "4.3");
  c.add(K::kNetworkStack, "gRPC", "grpc-core", "1.62");

  return c;
}

ComponentCatalog monoculture_catalog() {
  ComponentCatalog c;
  using K = ComponentKind;
  c.add(K::kTrustedHardware, "Intel", "SGX", "SGX2");
  c.add(K::kOperatingSystem, "Canonical", "Ubuntu", "22.04");
  c.add(K::kCryptoLibrary, "OpenSSL", "libcrypto", "3.2");
  c.add(K::kConsensusClient, "Bitcoin Core", "bitcoind", "26.0");
  c.add(K::kWallet, "Bitcoin Core", "built-in wallet", "26.0");
  c.add(K::kDatabase, "Google", "LevelDB", "1.23");
  c.add(K::kNetworkStack, "Kernel", "BSD sockets", "native");
  return c;
}

}  // namespace findep::config
