#include "config/replica_config.h"

#include "support/assert.h"

namespace findep::config {

namespace {
std::size_t kind_index(ComponentKind kind) {
  const auto idx = static_cast<std::size_t>(kind);
  FINDEP_REQUIRE(idx < kComponentKindCount);
  return idx;
}
}  // namespace

void ReplicaConfiguration::set(const Component& component) {
  chosen_[kind_index(component.kind)] = component.id;
}

void ReplicaConfiguration::set(const ComponentCatalog& catalog,
                               ComponentId id) {
  set(catalog.get(id));
}

void ReplicaConfiguration::clear(ComponentKind kind) {
  chosen_[kind_index(kind)].reset();
}

bool ReplicaConfiguration::has(ComponentKind kind) const noexcept {
  return chosen_[static_cast<std::size_t>(kind)].has_value();
}

std::optional<ComponentId> ReplicaConfiguration::component(
    ComponentKind kind) const noexcept {
  return chosen_[static_cast<std::size_t>(kind)];
}

std::vector<ComponentId> ReplicaConfiguration::components() const {
  std::vector<ComponentId> out;
  out.reserve(kComponentKindCount);
  for (const auto& choice : chosen_) {
    if (choice.has_value()) out.push_back(*choice);
  }
  return out;
}

bool ReplicaConfiguration::is_complete() const noexcept {
  for (const ComponentKind kind : all_component_kinds()) {
    if (kind == ComponentKind::kTrustedHardware) continue;
    if (!has(kind)) return false;
  }
  return true;
}

ConfigurationId ReplicaConfiguration::digest() const {
  crypto::Sha256 h;
  h.update("findep/config/v1");
  for (std::size_t i = 0; i < kComponentKindCount; ++i) {
    h.update_u64(i);
    h.update_u64(chosen_[i].has_value()
                     ? static_cast<std::uint64_t>(chosen_[i]->value) + 1
                     : 0);
  }
  return h.finish();
}

bool ReplicaConfiguration::shares_component_with(
    const ReplicaConfiguration& other) const noexcept {
  for (std::size_t i = 0; i < kComponentKindCount; ++i) {
    if (chosen_[i].has_value() && other.chosen_[i].has_value() &&
        *chosen_[i] == *other.chosen_[i]) {
      return true;
    }
  }
  return false;
}

}  // namespace findep::config
