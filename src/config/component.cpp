#include "config/component.h"

#include <array>

namespace findep::config {

const std::array<ComponentKind, kComponentKindCount>&
all_component_kinds() noexcept {
  static const std::array<ComponentKind, kComponentKindCount> kinds = {
      ComponentKind::kTrustedHardware, ComponentKind::kOperatingSystem,
      ComponentKind::kCryptoLibrary,   ComponentKind::kConsensusClient,
      ComponentKind::kWallet,          ComponentKind::kDatabase,
      ComponentKind::kNetworkStack,
  };
  return kinds;
}

std::string_view to_string(ComponentKind kind) noexcept {
  switch (kind) {
    case ComponentKind::kTrustedHardware:
      return "trusted-hardware";
    case ComponentKind::kOperatingSystem:
      return "operating-system";
    case ComponentKind::kCryptoLibrary:
      return "crypto-library";
    case ComponentKind::kConsensusClient:
      return "consensus-client";
    case ComponentKind::kWallet:
      return "wallet";
    case ComponentKind::kDatabase:
      return "database";
    case ComponentKind::kNetworkStack:
      return "network-stack";
  }
  return "unknown";
}

std::string Component::display() const {
  std::string out = vendor;
  out += '/';
  out += name;
  out += ' ';
  out += version;
  return out;
}

}  // namespace findep::config
