// Catalog of available components (the space from which replica
// configurations are drawn). `standard_catalog()` ships a realistic COTS
// inventory mirroring the paper's §III-A discussion.
#pragma once

#include <span>
#include <vector>

#include "config/component.h"

namespace findep::config {

/// Owning registry of components; ids are dense indices into the catalog.
class ComponentCatalog {
 public:
  /// Registers a component; returns its assigned id.
  ComponentId add(ComponentKind kind, std::string vendor, std::string name,
                  std::string version);

  [[nodiscard]] const Component& get(ComponentId id) const;
  [[nodiscard]] std::size_t size() const noexcept { return components_.size(); }

  /// All components of one kind, in registration order.
  [[nodiscard]] std::span<const ComponentId> of_kind(
      ComponentKind kind) const noexcept;

  /// Number of distinct choices for a kind (the diversity ceiling of that
  /// axis; e.g. trusted hardware has few — Remark 2).
  [[nodiscard]] std::size_t variety(ComponentKind kind) const noexcept {
    return of_kind(kind).size();
  }

  /// Upper bound on distinct configurations: product over kinds of
  /// variety(kind) (counting the optional trusted-hardware axis as
  /// variety+1 for "absent").
  [[nodiscard]] double configuration_space_size() const noexcept;

 private:
  std::vector<Component> components_;
  std::array<std::vector<ComponentId>, kComponentKindCount> by_kind_{};
};

/// A realistic COTS inventory: 4 TEE families, 8 operating systems,
/// 6 crypto libraries, 7 consensus clients, 6 wallets, 5 databases,
/// 5 network stacks. Names are real product families; versions are
/// representative.
[[nodiscard]] ComponentCatalog standard_catalog();

/// A deliberately impoverished catalog (one or two choices per kind) used
/// to study monocultures.
[[nodiscard]] ComponentCatalog monoculture_catalog();

}  // namespace findep::config
