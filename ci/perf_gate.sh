#!/usr/bin/env sh
# Hard performance gate for CI (and local use).
#
# Runs the measured `micro` family and the deterministic `bft_batching`,
# `bft_churn` and `campaign` families through findep-bench and compares
# against ci/micro_baseline.csv:
#
#   kind=time   rows (micro ns_per_op): FAIL when the measured mean
#               exceeds baseline x tolerance (default 1.5x — shared
#               runners are noisy, so time baselines carry headroom).
#   kind=count  rows (bft_batching messages-per-request counters, the
#               protocol-comparison lane's message counts and
#               commit-latency percentiles for pbft and hotstuff both,
#               bft_churn committed_requests / stranded_replicas, and the
#               campaign outcome classification): FAIL on anything but
#               exact equality of the printed value — these are
#               seed-derived protocol counts, so any drift is a real
#               behaviour change, not noise. The bft_churn
#               stranded_replicas rows are the state-transfer invariant:
#               0 with transfer enabled, the crashed count with it
#               disabled (regression-pinned both ways). The campaign rows
#               pin fault_detected / recovered / safety_violated per
#               gated cell — including the paper's safety threshold (the
#               above-third diverse collusion cell violates, the
#               below-third lazarus one never does).
#
# A baselined row that disappears from the current run also fails (a
# renamed scenario must be rebaselined deliberately, not silently).
#
# usage: ci/perf_gate.sh [--update-baseline] [--tolerance X]
#                        [--baseline FILE] [--only SUBSTR] [--list-rows]
#                        path/to/findep-bench
#
# --only SUBSTR gates only baselined rows whose scenario name contains
# SUBSTR (e.g. --only sim_ for the event-engine rows, --only bft_churn
# for one family) and skips benchmarking families with no matching rows
# — the local iterate-on-one-row loop drops from minutes to seconds.
# A SUBSTR that matches no baselined row is a hard failure (a typo'd
# substring must not report a vacuous pass); use --list-rows to see what
# can be matched. Incompatible with --update-baseline (a partial rewrite
# would silently drop every other row).
#
# --list-rows prints every baselined scenario/metric/kind (filtered by
# --only when given) and exits without benchmarking anything.
#
# --update-baseline rewrites the baseline from the current run. Count
# rows are safe to take verbatim (deterministic); REVIEW the time rows
# before committing — a fast workstation's timings become the budget CI
# runners must meet within the tolerance. See README "Rebaselining".
set -eu

script_dir=$(dirname "$0")
baseline="$script_dir/micro_baseline.csv"
tolerance=1.5
update=0
list_rows=0
only=""
bench=""
while [ $# -gt 0 ]; do
  case "$1" in
    --update-baseline) update=1 ;;
    --tolerance) shift; tolerance="$1" ;;
    --baseline) shift; baseline="$1" ;;
    --only) shift; only="$1" ;;
    --list-rows) list_rows=1 ;;
    -*) echo "unknown flag '$1'" >&2; exit 2 ;;
    *) bench="$1" ;;
  esac
  shift
done
if [ "$update" = 1 ] && [ -n "$only" ]; then
  echo "--only cannot be combined with --update-baseline" >&2
  exit 2
fi
if [ "$list_rows" = 1 ]; then
  awk -F, -v only="$only" \
    'NR == 1 {print $1 "," $2 "," $3; next}
     only == "" || index($1, only) {print $1 "," $2 "," $3}' "$baseline"
  exit 0
fi
if [ -z "$bench" ]; then
  echo "usage: $0 [--update-baseline] [--tolerance X] [--baseline FILE]" \
       "path/to/findep-bench" >&2
  exit 2
fi
if [ -n "$only" ]; then
  # A --only that selects nothing must fail loudly, not pass vacuously
  # (the classic typo'd-substring green build).
  if ! awk -F, -v only="$only" \
      'NR > 1 && index($1, only) {found = 1} END {exit found ? 0 : 1}' \
      "$baseline"; then
    echo "FAIL --only '$only' matches no baselined row" \
         "(run with --list-rows to see what can be matched)" >&2
    exit 1
  fi
fi

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

# With --only, a family is benchmarked only when the baseline holds a
# matching row for it. The row prefix is the emitting family's scenario
# namespace (the bft_batching family emits rows under bft_scaling/);
# the optional second argument further requires a substring anywhere in
# the row, separating blocks that share a namespace (the batching rows
# vs the modeled-crypto lane, both under bft_scaling/).
need() {
  [ -z "$only" ] && return 0
  awk -F, -v only="$only" -v prefix="$1" -v req="${2:-}" \
    'NR > 1 && index($1, only) && index($1, prefix) == 1 &&
     (req == "" || index($0, req)) {found = 1}
     END {exit found ? 0 : 1}' "$baseline"
}

# scenario,metric,mean for every gated row of the current run.
: > "$tmp/current_time.csv"
: > "$tmp/current_count.csv"
if need "micro/"; then
  "$bench" --family micro --seeds 3 --csv --out "$tmp/micro.csv" > /dev/null
  awk -F, 'FNR > 1 && $4 == "ns_per_op" {print $2 "," $4 "," $5}' \
    "$tmp/micro.csv" > "$tmp/current_time.csv"
fi
if need "bft_scaling/" ",msgs"; then
  "$bench" --family bft_batching --seeds 2 --csv --out "$tmp/batching.csv" \
    > /dev/null
  awk -F, 'FNR > 1 && ($4 == "msgs_per_request" ||
                       $4 == "msgs_per_committed_request") \
           {print $2 "," $4 "," $5}' "$tmp/batching.csv" \
    >> "$tmp/current_count.csv"
fi
if need "bft_scaling/" " modeled"; then
  # The multicore lane: modeled crypto cost over the {1,2,4,8}-worker
  # grid. committed_requests pins that every cell still commits the full
  # load; requests_per_second pins the exact simulated-clock throughput
  # of every (n, workers) point — the scaling curve itself is the
  # regression surface (a scheduling or cost-charging change shows up as
  # a drifted count, not a noisy timing).
  "$bench" --family bft_scaling --only modeled --seeds 1 \
    --csv --out "$tmp/modeled.csv" > /dev/null
  awk -F, 'FNR > 1 && ($4 == "committed_requests" ||
                       $4 == "requests_per_second") \
           {print $2 "," $4 "," $5}' "$tmp/modeled.csv" \
    >> "$tmp/current_count.csv"
fi
if need "bft_scaling/" " proto="; then
  # The protocol-comparison lane: pbft vs hotstuff over n = {4,10,25,50}.
  # Message counts and the simulated-clock commit-latency percentiles are
  # seed-deterministic, so every cell of both protocols is exact-pinned —
  # the linear-vs-quadratic crossover is itself the regression surface (a
  # vote-path or pacemaker change shows up as a drifted count here before
  # it shows up anywhere else).
  "$bench" --family bft_scaling --only " proto=" --seeds 1 \
    --csv --out "$tmp/protocol.csv" > /dev/null
  awk -F, 'FNR > 1 && ($4 == "msgs_per_request" ||
                       $4 == "msgs_per_committed_request" ||
                       $4 == "commit_latency_p50_ms" ||
                       $4 == "commit_latency_p99_ms") \
           {print $2 "," $4 "," $5}' "$tmp/protocol.csv" \
    >> "$tmp/current_count.csv"
fi
if need "bft_churn/"; then
  "$bench" --family bft_churn --seeds 1 --csv --out "$tmp/churn.csv" \
    > /dev/null
  awk -F, 'FNR > 1 && ($4 == "committed_requests" ||
                       $4 == "stranded_replicas") \
           {print $2 "," $4 "," $5}' "$tmp/churn.csv" \
    >> "$tmp/current_count.csv"
fi
if need "campaign/"; then
  # A 3-target x 3-fault slice of the campaign grid at one seed; the
  # outcome classification of each cell is deterministic. Protocol-lane
  # cells are carved out here — the dedicated block below pins them with
  # a wider metric set.
  "$bench" --family campaign --set target=uniform,diverse,lazarus \
    --set fault=crash,partition,collude --set rate=1 --seeds 1 \
    --exclude " proto=" --csv --out "$tmp/campaign.csv" > /dev/null
  awk -F, 'FNR > 1 && ($4 == "fault_detected" || $4 == "recovered" ||
                       $4 == "safety_violated") \
           {print $2 "," $4 "," $5}' "$tmp/campaign.csv" \
    >> "$tmp/current_count.csv"
fi
if need "campaign/" " proto="; then
  # The campaign's hotstuff lane (uniform/diverse x all four fault
  # kinds): the outcome classification plus the committed-request count
  # of every cell is deterministic at one seed, and the diversity story —
  # uniform fleets stall, diverse fleets recover — must hold for the
  # rotating-leader protocol exactly as it does for pbft.
  "$bench" --family campaign --only " proto=" --seeds 1 \
    --csv --out "$tmp/campaign_proto.csv" > /dev/null
  awk -F, 'FNR > 1 && ($4 == "fault_detected" || $4 == "recovered" ||
                       $4 == "safety_violated" ||
                       $4 == "committed_requests") \
           {print $2 "," $4 "," $5}' "$tmp/campaign_proto.csv" \
    >> "$tmp/current_count.csv"
fi

if [ "$update" = 1 ]; then
  {
    echo "scenario,metric,kind,baseline"
    awk -F, '{print $1 "," $2 ",time," $3}' "$tmp/current_time.csv"
    awk -F, '{print $1 "," $2 ",count," $3}' "$tmp/current_count.csv"
  } > "$baseline"
  rows=$(($(wc -l < "$baseline") - 1))
  echo "rebaselined $rows rows into $baseline"
  echo "NOTE: review the kind=time rows for headroom before committing."
  exit 0
fi

awk -F, -v tol="$tolerance" -v only="$only" '
  NR == FNR {
    if (FNR > 1 && (only == "" || index($1, only))) {
      kind[$1 SUBSEP $2] = $3; base[$1 SUBSEP $2] = $4
    }
    next
  }
  {
    key = $1 SUBSEP $2
    if (!(key in base)) next  # not yet baselined: run --update-baseline
    seen[key] = 1
    if (kind[key] == "time") {
      if ($3 + 0 > base[key] * tol) {
        printf "FAIL %s %s: %.0f ns/op is %+.1f%% vs baseline %.0f" \
               " (tolerance %sx allows %+.0f%%)\n",
               $1, $2, $3, ($3 / base[key] - 1) * 100, base[key], tol,
               (tol - 1) * 100
        failed = 1
      }
    } else if ($3 != base[key]) {
      if (base[key] + 0 != 0) {
        printf "FAIL %s %s: %s != baseline %s (%+.2f%%," \
               " deterministic counter drifted)\n",
               $1, $2, $3, base[key], ($3 / base[key] - 1) * 100
      } else {
        printf "FAIL %s %s: %s != baseline %s" \
               " (deterministic counter drifted)\n",
               $1, $2, $3, base[key]
      }
      failed = 1
    }
  }
  END {
    for (key in base) {
      if (!(key in seen)) {
        split(key, parts, SUBSEP)
        printf "FAIL %s %s: baselined row missing from the current run\n",
               parts[1], parts[2]
        failed = 1
      }
    }
    exit failed ? 1 : 0
  }
' "$baseline" "$tmp/current_time.csv" "$tmp/current_count.csv"
if [ -n "$only" ]; then
  echo "perf gate OK for rows matching '$only'" \
       "($baseline, tolerance ${tolerance}x on time rows)"
else
  echo "perf gate OK ($baseline, tolerance ${tolerance}x on time rows)"
fi
