// Quickstart: write a Scenario and sweep it across seeds in ~40 lines.
//
// A Scenario is one experiment as a pure function of its seed: build a
// population, measure it, return metrics. The runtime sweeps it across
// --seeds seeds on a worker pool and merges results deterministically.
//
// Build & run:
//   cmake -B build -S . && cmake --build build -j
//   ./build/examples/quickstart --seeds 8 --threads 4
#include "config/sampler.h"
#include "diversity/analyzer.h"
#include "diversity/metrics.h"
#include "diversity/optimality.h"
#include "diversity/resilience.h"
#include "runtime/suite.h"

namespace {

using namespace findep;

// 32 replicas drawing COTS components with market-share-like popularity
// skew; metrics are the paper's headline quantities (§IV-A).
class DiversityAuditScenario : public runtime::Scenario {
 public:
  std::string name() const override { return "diversity_audit/n=32"; }

  runtime::MetricRecord run(const runtime::RunContext& ctx) const override {
    const config::ComponentCatalog catalog = config::standard_catalog();
    config::SamplerOptions options;
    options.zipf_exponent = 1.0;        // market-share-like skew
    options.attestable_fraction = 0.5;  // half the replicas have a TEE
    config::ConfigurationSampler sampler(catalog, options);

    support::Rng rng(ctx.seed);
    std::vector<diversity::ReplicaRecord> population;
    for (const auto& cfg : sampler.sample_population(rng, 32)) {
      population.push_back(
          diversity::ReplicaRecord{cfg, 1.0, cfg.is_attestable()});
    }

    const diversity::ConfigDistribution dist =
        diversity::DiversityAnalyzer::distribution_of(population);
    runtime::MetricRecord metrics;
    metrics.set("entropy_bits", diversity::shannon_entropy(dist));
    metrics.set("max_entropy_bits",
                diversity::max_entropy_bits(dist.support_size()));
    metrics.set("kappa_optimal",
                diversity::is_kappa_optimal(dist, dist.support_size())
                    ? 1.0
                    : 0.0);
    metrics.set("faults_to_exceed_third",
                static_cast<double>(diversity::min_faults_to_exceed(
                    dist, diversity::kBftThreshold)));
    return metrics;
  }
};

}  // namespace

int main(int argc, char** argv) {
  runtime::ScenarioSuite suite(
      "Quickstart: diversity of a sampled replica population");
  suite.emplace<DiversityAuditScenario>();
  return suite.run_main(argc, argv);
}
