// Quickstart: run a registered scenario family, or write your own.
//
// Every experiment is a *scenario family* — a declarative bundle of
//   1. a Scenario class whose run(ctx) is a pure function of its seed
//      (build a population, measure it, return metrics), and
//   2. a static ScenarioRegistration naming the family, its default
//      ParamGrid (named axes, cartesian-expanded), and a factory from one
//      grid point to a Scenario instance.
// See src/scenarios/diversity_audit.cpp for the smallest complete
// example (~70 lines); registering it there makes it reachable from
// findep-bench, from this binary, and from the tests alike.
//
// The runtime sweeps every instance across --seeds seeds on one global
// work queue and merges results deterministically.
//
// Build & run:
//   cmake -B build -S . && cmake --build build -j
//   ./build/examples/quickstart --seeds 8 --threads 4
//   ./build/examples/quickstart --set zipf=0,1,2 --set replicas=64
#include "runtime/registry.h"

int main(int argc, char** argv) {
  return findep::runtime::run_families_main(
      argc, argv, {"diversity_audit"},
      "Quickstart: diversity of a sampled replica population");
}
