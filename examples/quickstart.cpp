// Quickstart: measure the diversity of a replica population in ~40 lines.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <iostream>

#include "config/sampler.h"
#include "diversity/analyzer.h"
#include "diversity/metrics.h"
#include "diversity/optimality.h"

int main() {
  using namespace findep;

  // 1. A population: 32 replicas drawing COTS components with realistic
  //    popularity skew (one OS and one node implementation dominate).
  const config::ComponentCatalog catalog = config::standard_catalog();
  config::SamplerOptions options;
  options.zipf_exponent = 1.0;       // market-share-like skew
  options.attestable_fraction = 0.5; // half the replicas have a TEE
  config::ConfigurationSampler sampler(catalog, options);

  support::Rng rng(/*seed=*/2023);
  std::vector<diversity::ReplicaRecord> population;
  for (const auto& cfg : sampler.sample_population(rng, 32)) {
    population.push_back(diversity::ReplicaRecord{cfg, /*power=*/1.0,
                                                  cfg.is_attestable()});
  }

  // 2. Analyze it: entropy (§IV-A), κ-optimality gap, fault counts.
  const diversity::DiversityReport report =
      diversity::DiversityAnalyzer::analyze(population);
  std::cout << report.to_string(&catalog) << '\n';

  // 3. The paper's headline quantities, individually:
  const diversity::ConfigDistribution dist =
      diversity::DiversityAnalyzer::distribution_of(population);
  std::cout << "Shannon entropy H(p):        "
            << diversity::shannon_entropy(dist) << " bits\n";
  std::cout << "max possible (log2 k'):      "
            << diversity::max_entropy_bits(dist.support_size()) << " bits\n";
  std::cout << "κ-optimal (Definition 1)?    "
            << (diversity::is_kappa_optimal(dist, dist.support_size())
                    ? "yes"
                    : "no")
            << '\n';
  std::cout << "worst-case faults to exceed 1/3: "
            << diversity::min_faults_to_exceed(dist,
                                               diversity::kBftThreshold)
            << '\n';
  return 0;
}
