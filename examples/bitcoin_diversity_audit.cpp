// Example 1 end-to-end: audit Bitcoin's fault independence from the
// 2023-02-02 mining-pool snapshot, exactly as §IV-B of the paper does —
// then go one step further and execute the attack the numbers predict.
#include <cmath>
#include <iostream>

#include "diversity/datasets.h"
#include "diversity/manager.h"
#include "diversity/metrics.h"
#include "diversity/optimality.h"
#include "diversity/resilience.h"
#include "faults/injector.h"
#include "nakamoto/attack.h"
#include "nakamoto/pools.h"

int main() {
  using namespace findep;
  using namespace findep::diversity;

  std::cout << "=== Bitcoin diversity audit (Example 1) ===\n\n";

  // Step 1: the best-case distribution — every pool a unique config,
  // residual hashrate spread over 101 miners (118 miners total).
  const ConfigDistribution bitcoin =
      datasets::bitcoin_best_case_distribution(101);
  const double h = shannon_entropy(bitcoin);
  std::cout << "miners: " << bitcoin.support_size()
            << ", best-case entropy: " << h << " bits (max "
            << max_entropy_bits(bitcoin.support_size()) << ")\n";
  std::cout << "effective configurations 2^H: " << std::exp2(h)
            << "  -> no more diverse than a "
            << equivalent_uniform_configs(h)
            << "-replica uniform BFT system\n";
  std::cout << "dominance (largest pool):    " << berger_parker(bitcoin)
            << '\n';
  const ResilienceSummary bft = summarize_resilience(bitcoin, kBftThreshold);
  const ResilienceSummary nak =
      summarize_resilience(bitcoin, kNakamotoThreshold);
  std::cout << "independent faults to pass 1/3: " << bft.min_faults
            << ", to pass 1/2: " << nak.min_faults << "\n\n";

  // Step 2: drop the best-case assumption — give pools realistic
  // Zipf-skewed software stacks and find the worst shared component.
  const config::ComponentCatalog catalog = config::standard_catalog();
  const nakamoto::PoolSet pools =
      nakamoto::PoolSet::example1(catalog, /*distinct_configs=*/false, 7);
  faults::FaultInjector injector(pools.as_population());
  const faults::CompromiseResult worst = injector.worst_case_components(1);
  std::cout << "with realistic software monoculture, ONE component fault "
               "compromises "
            << worst.compromised_fraction * 100.0 << "% of hashrate ("
            << worst.compromised.size() << " pools)\n";

  // Step 3: what that hashrate buys the attacker (double-spend odds).
  const double q = worst.compromised_fraction;
  std::cout << "double-spend success with that hashrate:\n";
  for (const unsigned z : {1u, 2u, 6u, 12u, 24u}) {
    std::cout << "  z=" << z << " confirmations: "
              << nakamoto::attack_success_closed_form(q, z) << '\n';
  }

  // Step 4: what a weight cap (a diversity-enforcement policy) would do.
  const WeightCapPolicy cap(0.10);
  const CappedDistribution capped = cap.apply(bitcoin);
  std::cout << "\nwith a 10% per-configuration voting cap: H rises from "
            << h << " to " << shannon_entropy(capped.distribution)
            << " bits, counting " << capped.retained_fraction * 100.0
            << "% of power; faults to pass 1/3 rise from "
            << bft.min_faults << " to "
            << min_faults_to_exceed(capped.distribution, kBftThreshold)
            << '\n';
  return 0;
}
