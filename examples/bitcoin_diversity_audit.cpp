// Example 1 end-to-end: audit Bitcoin's fault independence from the
// 2023-02-02 mining-pool snapshot, exactly as §IV-B of the paper does —
// then go one step further and execute the attack the numbers predict,
// and the weight-cap enforcement that would blunt it.
//
// Thin driver: the `bitcoin_audit` family lives in
// src/scenarios/bitcoin.cpp; its metrics walk the audit's four steps
// (best-case entropy → worst shared component → double-spend odds →
// capped distribution). Sweep --seeds to vary the realistic software
// assignment; try `--set cap=0.05,0.1,0.2` for other enforcement levels.
#include "runtime/registry.h"

int main(int argc, char** argv) {
  return findep::runtime::run_families_main(
      argc, argv, {"bitcoin_audit"},
      "Bitcoin diversity audit (Example 1), attack and cap enforcement");
}
