// Full §V pipeline: permissionless participants attest their
// configurations, a diversity-aware committee is formed from sortition
// winners under a per-configuration cap, the committee runs weighted PBFT,
// and a correlated component fault is injected to show the margin held.
#include <iostream>

#include "attest/registry.h"
#include "bft/cluster.h"
#include "committee/diversity_aware.h"
#include "committee/sortition.h"
#include "config/sampler.h"
#include "diversity/metrics.h"
#include "faults/injector.h"

int main() {
  using namespace findep;

  std::cout << "=== diversity-aware committee, end to end ===\n\n";

  // 1. Permissionless population: 40 participants, skewed software
  //    choices, all TEE-capable; everyone attests to a registry.
  crypto::KeyRegistry keys;
  support::Rng rng(99);
  const config::ComponentCatalog catalog = config::standard_catalog();
  attest::AttestationAuthority authority(keys, rng);
  attest::AttestationRegistry attestation(keys, authority.root_key());
  config::ConfigurationSampler sampler(
      catalog, config::SamplerOptions{.zipf_exponent = 1.0,
                                      .attestable_fraction = 1.0});

  committee::StakeRegistry stake;
  std::vector<crypto::KeyPair> participant_keys;
  std::vector<attest::PlatformModule> platforms;
  for (std::size_t i = 0; i < 40; ++i) {
    const auto cfg = sampler.sample(rng);
    const auto hw = cfg.component(config::ComponentKind::kTrustedHardware);
    platforms.emplace_back(keys, rng, authority, *hw, cfg);
    if (!attestation.admit(platforms.back().quote(attestation.challenge()),
                           1.0)) {
      std::cerr << "attestation failed\n";
      return 1;
    }
    participant_keys.push_back(crypto::KeyPair::derive(7000 + i));
    keys.enroll(participant_keys.back());
    stake.add("participant-" + std::to_string(i), rng.uniform(1.0, 4.0),
              cfg, true, participant_keys.back().public_key());
  }
  std::cout << "attested participants: " << attestation.size()
            << " (registry merkle root "
            << attestation.merkle_root().to_hex().substr(0, 16) << "...)\n";

  // 2. Sortition proposes candidates; the diversity policy (25% cap per
  //    configuration) forms the committee.
  committee::Sortition sortition(stake, /*expected_size=*/20.0);
  const committee::SortitionResult seats =
      sortition.select(/*round=*/1, participant_keys);
  std::vector<committee::ParticipantId> candidates;
  for (const auto& seat : seats.seats) {
    candidates.push_back(seat.participant);
  }
  committee::SelectionPolicy policy;
  policy.per_config_cap = 0.25;
  const committee::Committee formed =
      committee::form_committee(stake, candidates, policy);
  std::cout << "sortition winners: " << candidates.size()
            << ", committee size: " << formed.members.size()
            << ", H = " << formed.entropy_bits << " bits, admitted "
            << formed.admitted_fraction * 100.0 << "% of offered power\n";
  std::cout << "worst-case faults to pass 1/3: " << formed.bft.min_faults
            << (formed.bft.single_point_of_failure
                    ? "  (SINGLE POINT OF FAILURE!)"
                    : "")
            << "\n\n";
  if (formed.members.size() < 4) {
    std::cerr << "committee too small for BFT demo\n";
    return 1;
  }

  // 3. The committee runs weighted PBFT; inject the worst single
  //    *configuration* fault — the failure unit the cap provably bounds —
  //    as silent replicas and watch consensus survive.
  std::vector<diversity::ReplicaRecord> committee_population;
  std::vector<double> weights;
  for (const auto& member : formed.members) {
    committee_population.push_back(diversity::ReplicaRecord{
        stake.get(member.participant).configuration, member.weight, true});
    weights.push_back(member.weight);
  }
  const diversity::ConfigDistribution committee_dist =
      diversity::DiversityAnalyzer::distribution_of(committee_population);
  const auto worst_config = committee_dist.sorted_by_power().front();
  std::vector<bft::Behavior> behaviors(weights.size(),
                                       bft::Behavior::kHonest);
  double config_fault_power = 0.0;
  std::size_t silenced = 0;
  for (std::size_t i = 0; i < committee_population.size(); ++i) {
    if (committee_population[i].configuration.digest() == worst_config.id) {
      behaviors[i] = bft::Behavior::kSilent;
      config_fault_power += committee_population[i].power;
      ++silenced;
    }
  }
  std::cout << "injecting worst single CONFIGURATION fault: silences "
            << silenced << " members, "
            << config_fault_power / formed.total_weight * 100.0
            << "% of power (cap guarantees <= 25%)\n";
  bft::BftCluster cluster(weights, bft::ClusterOptions{}, behaviors);
  for (int i = 0; i < 5; ++i) cluster.submit();
  const bool live = cluster.run_until_executed(5, 120.0);
  std::cout << "consensus under the fault: "
            << (live ? "LIVE (5/5 requests executed)" : "STALLED")
            << ", logs consistent: "
            << (cluster.logs_consistent() ? "yes" : "NO") << "\n\n";

  // 4. The residual risk the paper warns about: a *component* shared
  //    across distinct configurations (e.g. one OS) can still exceed the
  //    threshold — configuration-level diversity is necessary, not
  //    sufficient. We report it rather than hide it.
  faults::FaultInjector injector(committee_population);
  const faults::CompromiseResult component_fault =
      injector.worst_case_components(1);
  std::cout << "residual risk: the worst single COMPONENT fault would "
               "still compromise "
            << component_fault.compromised_fraction * 100.0
            << "% of committee power across "
            << component_fault.compromised.size()
            << " members — enforcing per-axis component caps is the open "
               "challenge the paper poses (§II-C).\n";
  return live && cluster.logs_consistent() ? 0 : 1;
}
