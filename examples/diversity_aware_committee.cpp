// Full §V pipeline: permissionless participants attest their
// configurations, a diversity-aware committee is formed from sortition
// winners under a per-configuration cap, the committee runs weighted
// PBFT, and the worst single configuration fault is injected to show the
// margin held (consensus_live / logs_consistent metrics), next to the
// residual *component* exposure the paper's Challenge 2 warns about.
//
// Thin driver: the `committee_pipeline` family lives in
// src/scenarios/committee_pipeline.cpp. Try `--set cap=0.1,0.25,0.5` to
// watch the cap trade admitted power against the fault margin.
#include "runtime/registry.h"

int main(int argc, char** argv) {
  return findep::runtime::run_families_main(
      argc, argv, {"committee_pipeline"},
      "Diversity-aware committee, end to end (attest -> sortition -> "
      "capped committee -> weighted PBFT under fault)");
}
