// The campaign engine: spec parsing and rejection, target fleets, fault
// planning, outcome classification on known-good and known-violated runs,
// cell seed-determinism, the paper's safety-threshold cross-check, and
// the distributed shard pipeline's byte-identity for campaign cells.
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bft/cluster.h"
#include "campaign/cell.h"
#include "campaign/fault.h"
#include "campaign/outcome.h"
#include "campaign/report.h"
#include "campaign/spec.h"
#include "campaign/target.h"
#include "config/catalog.h"
#include "runtime/suite.h"
#include "runtime/task.h"

namespace findep {
namespace {

using campaign::CampaignCellScenario;
using campaign::CampaignSpec;
using campaign::FaultKind;
using campaign::FaultPlan;

// --- spec parsing -----------------------------------------------------------

TEST(CampaignSpec, ParsesAxesCommentsAndSeeds) {
  const CampaignSpec spec = campaign::parse_campaign_spec(
      "# nightly resilience campaign\n"
      "target = uniform, diverse\n"
      "\n"
      "fault  = crash, collude, corrupt   # three kinds\n"
      "rate   = 1.0, 0.5\n"
      "seeds  = 3\n");
  ASSERT_EQ(spec.overrides.size(), 3u);
  EXPECT_EQ(spec.overrides[0].first, "target");
  EXPECT_EQ(spec.overrides[0].second,
            (std::vector<std::string>{"uniform", "diverse"}));
  EXPECT_EQ(spec.overrides[1].first, "fault");
  EXPECT_EQ(spec.overrides[1].second,
            (std::vector<std::string>{"crash", "collude", "corrupt"}));
  EXPECT_EQ(spec.overrides[2].first, "rate");
  ASSERT_TRUE(spec.seeds.has_value());
  EXPECT_EQ(*spec.seeds, 3u);

  // 2 targets x 3 faults x 2 rates x default n axis (one value).
  EXPECT_EQ(campaign::campaign_grid(spec).size(), 12u);
}

TEST(CampaignSpec, AppliedGridKeepsDefaultAxes) {
  const CampaignSpec spec =
      campaign::parse_campaign_spec("fault = crash\nrate = 0.5\n");
  const runtime::ParamGrid grid = campaign::campaign_grid(spec);
  // All four default targets survive; fault and rate collapse to one.
  EXPECT_EQ(grid.size(), 4u);
  const std::vector<runtime::ParamSet> cells = grid.expand();
  for (const runtime::ParamSet& cell : cells) {
    EXPECT_EQ(cell.get_string("fault"), "crash");
    EXPECT_EQ(cell.get_double("rate"), 0.5);
    EXPECT_EQ(cell.get_size("n"), 7u);
  }
}

TEST(CampaignSpec, RejectsMalformedAndUnknown) {
  // Unknown axis, with line context.
  try {
    (void)campaign::parse_campaign_spec("target = uniform\nbogus = 1\n");
    FAIL() << "unknown axis accepted";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("bogus"), std::string::npos);
  }
  // No '='.
  EXPECT_THROW((void)campaign::parse_campaign_spec("target uniform\n"),
               std::invalid_argument);
  // Unknown target / fault names die at parse time.
  EXPECT_THROW((void)campaign::parse_campaign_spec("target = windows_me\n"),
               std::invalid_argument);
  EXPECT_THROW((void)campaign::parse_campaign_spec("fault = gamma_ray\n"),
               std::invalid_argument);
  // Rate domain and n floor.
  EXPECT_THROW((void)campaign::parse_campaign_spec("rate = 0\n"),
               std::invalid_argument);
  EXPECT_THROW((void)campaign::parse_campaign_spec("rate = 1.5\n"),
               std::invalid_argument);
  EXPECT_THROW((void)campaign::parse_campaign_spec("n = 3\n"),
               std::invalid_argument);
  EXPECT_THROW((void)campaign::parse_campaign_spec("seeds = 0\n"),
               std::invalid_argument);
}

TEST(CampaignSpec, RejectsDuplicatesAndOverlaps) {
  // Duplicate axis line.
  EXPECT_THROW(
      (void)campaign::parse_campaign_spec("fault = crash\nfault = censor\n"),
      std::invalid_argument);
  // Duplicate value within an axis = two identical cells (overlap).
  try {
    (void)campaign::parse_campaign_spec("fault = crash, censor, crash\n");
    FAIL() << "overlapping cells accepted";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("twice"), std::string::npos);
  }
  EXPECT_THROW((void)campaign::parse_campaign_spec("seeds = 2\nseeds = 3\n"),
               std::invalid_argument);
}

// --- target fleets ----------------------------------------------------------

TEST(CampaignTarget, RegisteredFamiliesBuildDeterministicFleets) {
  for (const campaign::TargetFamily& family : campaign::target_families()) {
    support::Rng rng_a(7);
    support::Rng rng_b(7);
    const auto fleet_a = family.build(7, rng_a);
    const auto fleet_b = family.build(7, rng_b);
    ASSERT_EQ(fleet_a.size(), 7u) << family.name;
    ASSERT_EQ(fleet_b.size(), 7u) << family.name;
    for (std::size_t i = 0; i < fleet_a.size(); ++i) {
      EXPECT_EQ(fleet_a[i].configuration.digest(),
                fleet_b[i].configuration.digest())
          << family.name << " replica " << i;
    }
  }
}

TEST(CampaignTarget, UniformIsMonocultureLazarusSpreads) {
  support::Rng rng(11);
  const auto mono = campaign::build_target_fleet("uniform", 5, rng);
  for (const auto& record : mono) {
    EXPECT_EQ(record.configuration.digest(), mono[0].configuration.digest());
  }
  support::Rng rng2(11);
  const auto laz = campaign::build_target_fleet("lazarus", 5, rng2);
  for (std::size_t i = 1; i < laz.size(); ++i) {
    EXPECT_FALSE(
        laz[i].configuration.shares_component_with(laz[i - 1].configuration))
        << "adjacent lazarus replicas " << i - 1 << "," << i;
  }
}

TEST(CampaignTarget, UnknownTargetThrowsListingRegistered) {
  support::Rng rng(1);
  try {
    (void)campaign::build_target_fleet("beos", 4, rng);
    FAIL() << "unknown target accepted";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("lazarus"), std::string::npos);
  }
}

// --- fault planning ---------------------------------------------------------

TEST(CampaignFault, KindNamesRoundTrip) {
  for (const auto& [name, kind] : campaign::fault_kinds()) {
    EXPECT_EQ(campaign::parse_fault_kind(name), kind);
    EXPECT_EQ(campaign::to_string(kind), name);
  }
  EXPECT_THROW((void)campaign::parse_fault_kind("meteor"),
               std::invalid_argument);
}

TEST(CampaignFault, PlanIsDeterministicInFleetAndRng) {
  support::Rng fleet_rng(3);
  const auto fleet = campaign::build_target_fleet("diverse", 7, fleet_rng);
  const config::ComponentCatalog catalog = config::standard_catalog();
  support::Rng rng_a(21);
  support::Rng rng_b(21);
  const FaultPlan a =
      campaign::plan_fault(FaultKind::kCrash, 0.5, fleet, catalog, rng_a);
  const FaultPlan b =
      campaign::plan_fault(FaultKind::kCrash, 0.5, fleet, catalog, rng_b);
  EXPECT_EQ(a.component, b.component);
  EXPECT_EQ(a.victims, b.victims);
  EXPECT_EQ(a.exposed_fraction, b.exposed_fraction);
}

TEST(CampaignFault, ByzantineKindsExploitTheWorstComponent) {
  support::Rng fleet_rng(5);
  const auto fleet = campaign::build_target_fleet("skewed", 7, fleet_rng);
  const config::ComponentCatalog catalog = config::standard_catalog();
  const auto report = diversity::DiversityAnalyzer::analyze(fleet);
  ASSERT_TRUE(report.worst_overall.has_value());
  support::Rng rng(9);
  const FaultPlan plan =
      campaign::plan_fault(FaultKind::kCollude, 1.0, fleet, catalog, rng);
  // The adversary's blast radius is exactly the analyzer's worst
  // component share, and at rate 1 every exposed replica succumbs.
  EXPECT_DOUBLE_EQ(plan.exposed_fraction,
                   report.worst_overall->power_fraction);
  EXPECT_DOUBLE_EQ(plan.victim_fraction, plan.exposed_fraction);
  EXPECT_TRUE(campaign::is_byzantine(plan.kind));

  const auto behaviors = campaign::planned_behaviors(plan, 7);
  std::size_t colluders = 0;
  for (const bft::Behavior b : behaviors) {
    colluders += b == bft::Behavior::kCollude ? 1 : 0;
  }
  EXPECT_EQ(colluders, plan.victims.size());
}

// --- outcome classification -------------------------------------------------

bft::ClusterOptions fast_options(std::uint64_t seed) {
  bft::ClusterOptions options;
  options.seed = seed;
  options.network.min_latency = 0.005;
  options.network.mean_extra_latency = 0.01;
  return options;
}

TEST(CampaignOutcome, KnownGoodRunClassifiesRecovered) {
  bft::BftCluster cluster(4, fast_options(17));
  for (int i = 0; i < 5; ++i) (void)cluster.submit();
  cluster.run_for(10.0);
  FaultPlan plan;  // empty crash plan: nothing was injected
  plan.kind = FaultKind::kCrash;
  const campaign::Outcome outcome =
      campaign::classify_outcome(cluster, plan, 5);
  EXPECT_TRUE(outcome.recovered);
  EXPECT_FALSE(outcome.detected);
  EXPECT_FALSE(outcome.safety_violated);
  EXPECT_FALSE(outcome.liveness_stalled);
  EXPECT_EQ(outcome.committed, 5u);
  EXPECT_GE(outcome.recovery_time_s, 0.0);
}

TEST(CampaignOutcome, KnownViolationClassifiesSafetyViolated) {
  // The adversarial suite's above-threshold coalition (weights 2+2 of
  // W = 7 > W/3), reclassified through the campaign taxonomy.
  std::vector<double> weights = {2.0, 2.0, 1.0, 1.0, 1.0};
  std::vector<bft::Behavior> behaviors = {
      bft::Behavior::kCollude, bft::Behavior::kCollude, bft::Behavior::kHonest,
      bft::Behavior::kHonest, bft::Behavior::kHonest};
  bft::BftCluster cluster(weights, fast_options(35), behaviors);
  (void)cluster.submit();
  cluster.run_for(30.0);
  ASSERT_FALSE(cluster.logs_consistent());

  FaultPlan plan;
  plan.kind = FaultKind::kCollude;
  plan.victims = {0, 1};
  const campaign::Outcome outcome =
      campaign::classify_outcome(cluster, plan, 1);
  EXPECT_TRUE(outcome.safety_violated);
  EXPECT_FALSE(outcome.recovered);
  EXPECT_TRUE(outcome.detected);  // honest replicas view-changed
}

// --- cells ------------------------------------------------------------------

TEST(CampaignCell, RunsAreSeedDeterministic) {
  const CampaignCellScenario cell(CampaignCellScenario::Params{
      .target = "diverse", .fault = "partition", .rate = 0.5, .n = 7});
  const runtime::RunContext ctx{.seed = 42, .run_index = 0};
  const runtime::MetricRecord a = cell.run(ctx);
  const runtime::MetricRecord b = cell.run(ctx);
  EXPECT_TRUE(a == b);
  EXPECT_TRUE(a.has("fault_detected"));
  EXPECT_TRUE(a.has("safety_violated"));
}

TEST(CampaignCell, RejectsInvalidParameters) {
  EXPECT_THROW(CampaignCellScenario(CampaignCellScenario::Params{
                   .target = "no_such_target"}),
               std::invalid_argument);
  EXPECT_THROW(
      CampaignCellScenario(CampaignCellScenario::Params{.fault = "meteor"}),
      std::invalid_argument);
}

// The paper's safety condition, reproduced as campaign cells: a colluding
// coalition whose shared-component power exceeds W/3 can violate safety;
// the Lazarus-style fleet caps every component at 2/7 < 1/3, so the same
// adversary never can (its damage is bounded to liveness).
TEST(CampaignCell, SafetyThresholdCrossCheck) {
  const CampaignCellScenario diverse_collude(CampaignCellScenario::Params{
      .target = "diverse", .fault = "collude", .rate = 1.0, .n = 7});
  const CampaignCellScenario lazarus_collude(CampaignCellScenario::Params{
      .target = "lazarus", .fault = "collude", .rate = 1.0, .n = 7});
  const CampaignCellScenario diverse_crash(CampaignCellScenario::Params{
      .target = "diverse", .fault = "crash", .rate = 1.0, .n = 7});

  std::size_t violations = 0;
  for (std::size_t i = 0; i < 6; ++i) {
    const runtime::RunContext ctx{.seed = runtime::derive_seed(1, i),
                                  .run_index = i};
    const runtime::MetricRecord dc = diverse_collude.run(ctx);
    if (dc.get("safety_violated") > 0.0) {
      ++violations;
      // A violation requires an above-threshold coalition.
      EXPECT_GT(dc.get("victim_fraction"), 1.0 / 3.0);
    }
    const runtime::MetricRecord lz = lazarus_collude.run(ctx);
    EXPECT_LT(lz.get("victim_fraction"), 1.0 / 3.0);
    EXPECT_EQ(lz.get("safety_violated"), 0.0)
        << "below-threshold coalition violated safety at run " << i;
    const runtime::MetricRecord cr = diverse_crash.run(ctx);
    EXPECT_EQ(cr.get("safety_violated"), 0.0);
    EXPECT_EQ(cr.get("recovered"), 1.0)
        << "sub-third crash not recovered at run " << i;
  }
  EXPECT_GE(violations, 4u)
      << "above-threshold collusion should usually violate safety";
}

// --- the reporter -----------------------------------------------------------

TEST(CampaignReport, AggregatesRatesByGroup) {
  const CampaignCellScenario cells[] = {
      CampaignCellScenario(CampaignCellScenario::Params{
          .target = "diverse", .fault = "collude", .rate = 1.0, .n = 7}),
      CampaignCellScenario(CampaignCellScenario::Params{
          .target = "diverse", .fault = "crash", .rate = 1.0, .n = 7}),
      CampaignCellScenario(CampaignCellScenario::Params{
          .target = "lazarus", .fault = "crash", .rate = 1.0, .n = 7}),
  };
  std::vector<runtime::TaskResult> results;
  for (std::size_t c = 0; c < 3; ++c) {
    for (std::size_t i = 0; i < 2; ++i) {
      runtime::TaskResult result;
      result.family = "campaign";
      result.scenario = cells[c].name();
      result.sequence = c;
      result.record.seed = runtime::derive_seed(1, i);
      result.record.run_index = i;
      result.record.metrics = cells[c].run(
          runtime::RunContext{.seed = result.record.seed, .run_index = i});
      results.push_back(std::move(result));
    }
  }
  // An errored record must be counted and skipped, not aggregated.
  runtime::TaskResult errored;
  errored.family = "campaign";
  errored.scenario = "campaign/target=diverse fault=crash rate=1 n=7";
  errored.record.error = "boom";
  results.push_back(errored);
  // Foreign families are ignored.
  runtime::TaskResult foreign;
  foreign.family = "bft_scaling";
  foreign.scenario = "bft_scaling/n=7";
  foreign.record.metrics.set("latency", 1.0);
  results.push_back(foreign);

  const campaign::CampaignReport report =
      campaign::build_campaign_report(results);
  EXPECT_EQ(report.cells, 6u);
  EXPECT_EQ(report.errored_cells, 1u);

  ASSERT_EQ(report.by_target.size(), 2u);
  EXPECT_EQ(report.by_target[0].key, "diverse");
  EXPECT_EQ(report.by_target[0].cells, 4u);
  EXPECT_EQ(report.by_target[1].key, "lazarus");
  EXPECT_EQ(report.by_target[1].cells, 2u);

  ASSERT_EQ(report.by_fault.size(), 2u);
  EXPECT_EQ(report.by_fault[0].key, "collude");
  EXPECT_EQ(report.by_fault[1].key, "crash");
  EXPECT_EQ(report.by_fault[1].cells, 4u);
  // Sub-third crashes recover; rates are well-formed probabilities.
  EXPECT_EQ(report.by_fault[1].recovered_rate, 1.0);
  for (const auto& group : report.by_component_kind) {
    EXPECT_GE(group.detected_rate, 0.0);
    EXPECT_LE(group.detected_rate, 1.0);
    EXPECT_NE(group.key, "?");
  }

  const std::string rendered = report.to_string();
  EXPECT_NE(rendered.find("by faulted component kind"), std::string::npos);
  EXPECT_NE(rendered.find("diverse"), std::string::npos);
  EXPECT_NE(rendered.find("6 cells"), std::string::npos);
}

// --- distributed byte-identity ---------------------------------------------

runtime::FamilySelection campaign_selection() {
  const runtime::ScenarioFamily* family =
      runtime::ScenarioRegistry::global().find("campaign");
  EXPECT_NE(family, nullptr);
  std::vector<runtime::ParamGrid> grids = family->grids;
  for (runtime::ParamGrid& grid : grids) {
    grid.override_axis("target", {"uniform", "diverse"});
    grid.override_axis("fault", {"crash", "corrupt", "collude"});
    grid.override_axis("rate", {"1"});
  }
  return {{family, std::move(grids)}};
}

std::string run_in_process(const runtime::FamilySelection& selection,
                           const runtime::SuiteOptions& options) {
  runtime::ScenarioSuite suite("");
  for (const auto& [family, grids] : selection) {
    for (auto& scenario : runtime::instantiate_family(*family, grids)) {
      suite.add(std::move(scenario));
    }
  }
  std::ostringstream out, err;
  EXPECT_EQ(suite.run(options, out, err), 0) << err.str();
  return out.str();
}

TEST(CampaignDistributed, TwoShardMergeIsByteIdenticalToInProcess) {
  const runtime::FamilySelection selection = campaign_selection();
  runtime::SuiteOptions options;
  options.sweep = {.base_seed = 7, .num_seeds = 2, .threads = 0};
  options.json = true;
  const std::string in_process = run_in_process(selection, options);

  // Round-robin shard the emitted tasks across two workers, then merge.
  std::ostringstream tasks;
  (void)runtime::emit_task_catalog(selection, options.sweep, "", "", tasks);
  std::vector<std::string> shard_tasks(2);
  std::istringstream task_lines(tasks.str());
  std::string line;
  std::size_t index = 0;
  while (std::getline(task_lines, line)) {
    shard_tasks[index++ % 2] += line + '\n';
  }
  EXPECT_GT(index, 2u);

  std::vector<std::string> paths;
  for (std::size_t s = 0; s < 2; ++s) {
    std::istringstream in(shard_tasks[s]);
    std::ostringstream out, err;
    EXPECT_EQ(runtime::run_worker(in, out, err, /*threads=*/0), 0)
        << err.str();
    const std::string path = ::testing::TempDir() + "findep_campaign_shard_" +
                             std::to_string(s) + ".jsonl";
    std::ofstream file(path);
    file << out.str();
    paths.push_back(path);
  }

  std::ostringstream merged, err;
  EXPECT_EQ(runtime::merge_shards(paths, false, true, merged, err), 0)
      << err.str();
  EXPECT_EQ(merged.str(), in_process);
  EXPECT_NE(in_process.find("campaign/target=diverse fault=collude"),
            std::string::npos);

  // The report runs off the same shards without disturbing them.
  std::ostringstream report_out, report_err;
  EXPECT_EQ(campaign::report_main(paths, report_out, report_err), 0)
      << report_err.str();
  EXPECT_NE(report_out.str().find("by target"), std::string::npos);
}

}  // namespace
}  // namespace findep
