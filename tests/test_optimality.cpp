// Definitions 1 and 2 as predicates: the iff conditions and gap metrics.
#include <gtest/gtest.h>

#include <cmath>

#include "diversity/metrics.h"
#include "diversity/optimality.h"
#include "support/assert.h"
#include "support/rng.h"

namespace findep::diversity {
namespace {

TEST(Definition1, UniformSupportIsKappaOptimal) {
  const std::vector<double> p = {0.25, 0.25, 0.25, 0.25};
  EXPECT_TRUE(is_kappa_optimal(p, 4));
  EXPECT_FALSE(is_kappa_optimal(p, 3));
  EXPECT_FALSE(is_kappa_optimal(p, 5));
}

TEST(Definition1, ZeroEntriesExcludedFromSupport) {
  const std::vector<double> p = {0.5, 0.0, 0.5, 0.0};
  EXPECT_TRUE(is_kappa_optimal(p, 2));
  EXPECT_FALSE(is_kappa_optimal(p, 4));
}

TEST(Definition1, NonUniformFails) {
  const std::vector<double> p = {0.4, 0.3, 0.3};
  EXPECT_FALSE(is_kappa_optimal(p, 3));
}

TEST(Definition1, ToleranceAbsorbsFloatNoise) {
  const std::vector<double> p = {1.0 / 3.0, 1.0 / 3.0,
                                 1.0 - 2.0 / 3.0};
  EXPECT_TRUE(is_kappa_optimal(p, 3));
}

TEST(Definition1, UnnormalizedWeightsWork) {
  const std::vector<double> p = {5.0, 5.0, 5.0};
  EXPECT_TRUE(is_kappa_optimal(p, 3));
}

TEST(Definition1, KappaOptimalIffEntropyIsMaximal) {
  support::Rng rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t k = 2 + rng.below(16);
    std::vector<double> p(k);
    for (auto& x : p) x = rng.uniform(0.01, 1.0);
    const bool optimal = is_kappa_optimal(p, k, 1e-12);
    const double gap =
        std::log2(static_cast<double>(k)) - shannon_entropy(p);
    // Entropy is maximal exactly at the uniform distribution.
    EXPECT_EQ(optimal, gap < 1e-9) << "trial " << trial;
  }
}

TEST(Definition1, DistributionOverload) {
  EXPECT_TRUE(is_kappa_optimal(ConfigDistribution::uniform(6), 6));
  ConfigDistribution skew = ConfigDistribution::from_shares(
      std::vector<double>{0.6, 0.4});
  EXPECT_FALSE(is_kappa_optimal(skew, 2));
  EXPECT_EQ(kappa_of(skew), 2u);
}

TEST(Definition2, RequiresUniformAbundance) {
  ConfigDistribution dist = ConfigDistribution::uniform(4, 3);
  EXPECT_TRUE(is_kappa_omega_optimal(dist, 4, 3));
  EXPECT_FALSE(is_kappa_omega_optimal(dist, 4, 2));

  // Break one configuration's abundance (power unchanged).
  dist.scale(dist.entries()[0].id, 1.0, 2);
  EXPECT_FALSE(is_kappa_omega_optimal(dist, 4, 3));
  // Power still uniform, so Definition 1 still holds.
  EXPECT_TRUE(is_kappa_optimal(dist, 4));
}

TEST(MaxEntropy, Log2Kappa) {
  EXPECT_DOUBLE_EQ(max_entropy_bits(1), 0.0);
  EXPECT_DOUBLE_EQ(max_entropy_bits(8), 3.0);
  EXPECT_THROW((void)max_entropy_bits(0), support::ContractViolation);
}

TEST(OptimalityGap, ZeroForUniformPositiveOtherwise) {
  EXPECT_NEAR(optimality_gap_bits(ConfigDistribution::uniform(8)), 0.0,
              1e-12);
  const ConfigDistribution skew = ConfigDistribution::from_shares(
      std::vector<double>{0.9, 0.05, 0.05});
  EXPECT_GT(optimality_gap_bits(skew), 0.5);
}

TEST(EquivalentUniformConfigs, CeilOfTwoToH) {
  EXPECT_EQ(equivalent_uniform_configs(0.0), 1u);
  EXPECT_EQ(equivalent_uniform_configs(3.0), 8u);
  EXPECT_EQ(equivalent_uniform_configs(3.1), 9u);
  EXPECT_EQ(equivalent_uniform_configs(1.0), 2u);
}

TEST(EquivalentUniformConfigs, InverseOfMaxEntropy) {
  for (std::size_t k : {1u, 2u, 5u, 8u, 17u, 100u}) {
    EXPECT_EQ(equivalent_uniform_configs(max_entropy_bits(k)), k);
  }
}

}  // namespace
}  // namespace findep::diversity
