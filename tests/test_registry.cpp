// The declarative layer: ParamValue/ParamSet/ParamGrid, the scenario
// registry, the global (scenario, seed) work queue's determinism across
// whole families, and golden CSV/JSON output for a parameterized family.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "runtime/metrics.h"
#include "runtime/param.h"
#include "runtime/registry.h"
#include "runtime/suite.h"
#include "runtime/sweep.h"

namespace findep::runtime {
namespace {

// --- ParamValue ------------------------------------------------------------

TEST(ParamValue, TypedAccessAndCoercion) {
  EXPECT_EQ(ParamValue(7).as_int(), 7);
  EXPECT_EQ(ParamValue(7).as_size(), 7u);
  EXPECT_DOUBLE_EQ(ParamValue(7).as_double(), 7.0);  // int -> double ok
  EXPECT_DOUBLE_EQ(ParamValue(0.5).as_double(), 0.5);
  EXPECT_TRUE(ParamValue(true).as_bool());
  EXPECT_EQ(ParamValue("abc").as_string(), "abc");

  EXPECT_THROW((void)ParamValue(0.5).as_int(), std::invalid_argument);
  EXPECT_THROW((void)ParamValue(-3).as_size(), std::invalid_argument);
  EXPECT_THROW((void)ParamValue("x").as_double(), std::invalid_argument);
  EXPECT_THROW((void)ParamValue(1).as_string(), std::invalid_argument);
}

TEST(ParamValue, RendersRoundTrippably) {
  EXPECT_EQ(ParamValue(42).to_string(), "42");
  EXPECT_EQ(ParamValue(0.25).to_string(), "0.25");
  EXPECT_EQ(ParamValue(60.0).to_string(), "60");  // no 6e+01
  EXPECT_EQ(ParamValue(1.0 / 3.0).to_string(), "0.3333333333333333");
  EXPECT_EQ(ParamValue(true).to_string(), "true");
  EXPECT_EQ(ParamValue("skewed").to_string(), "skewed");
}

TEST(ParamValue, ParsesWithTheAxisType) {
  EXPECT_EQ(ParamValue::parse_as("12", ParamValue(1)).as_int(), 12);
  EXPECT_DOUBLE_EQ(ParamValue::parse_as("0.5", ParamValue(1.0)).as_double(),
                   0.5);
  EXPECT_TRUE(ParamValue::parse_as("true", ParamValue(false)).as_bool());
  EXPECT_EQ(ParamValue::parse_as("xy", ParamValue("a")).as_string(), "xy");

  EXPECT_THROW((void)ParamValue::parse_as("0.5", ParamValue(1)),
               std::invalid_argument);
  EXPECT_THROW((void)ParamValue::parse_as("abc", ParamValue(1.0)),
               std::invalid_argument);
  EXPECT_THROW((void)ParamValue::parse_as("2", ParamValue(true)),
               std::invalid_argument);
}

// --- ParamSet / ParamGrid --------------------------------------------------

TEST(ParamSet, KeepsInsertionOrderAndRendersLabel) {
  ParamSet set;
  set.set("n", ParamValue(7));
  set.set("mix", ParamValue("honest"));
  set.set("n", ParamValue(9));  // overwrite keeps position
  EXPECT_EQ(set.label(), "n=9 mix=honest");
  EXPECT_EQ(set.get_int("n"), 9);
  EXPECT_THROW((void)set.get("absent"), std::invalid_argument);
}

TEST(ParamGrid, ExpandsCartesianProductFirstAxisSlowest) {
  const ParamGrid grid{{"a", {1, 2, 3}}, {"b", {"x", "y"}}};
  ASSERT_EQ(grid.size(), 6u);
  const auto points = grid.expand();
  ASSERT_EQ(points.size(), 6u);
  // First axis outermost, exactly like the nested loops it replaces.
  const std::vector<std::string> expected = {"a=1 b=x", "a=1 b=y",
                                             "a=2 b=x", "a=2 b=y",
                                             "a=3 b=x", "a=3 b=y"};
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(points[i].label(), expected[i]) << i;
  }
}

TEST(ParamGrid, EmptyGridExpandsToOneEmptyPoint) {
  const ParamGrid grid;
  EXPECT_EQ(grid.size(), 1u);
  const auto points = grid.expand();
  ASSERT_EQ(points.size(), 1u);
  EXPECT_TRUE(points[0].entries().empty());
}

TEST(ParamGrid, RejectsMalformedAxes) {
  ParamGrid grid;
  grid.add_axis("a", {ParamValue(1)});
  EXPECT_THROW(grid.add_axis("a", {ParamValue(2)}), std::invalid_argument);
  EXPECT_THROW(grid.add_axis("b", {}), std::invalid_argument);
  EXPECT_THROW(grid.add_axis("c", {ParamValue(1), ParamValue("x")}),
               std::invalid_argument);
  // int + double on one numeric axis is fine.
  grid.add_axis("d", {ParamValue(1), ParamValue(2.5)});
}

TEST(ParamGrid, OverridesAxesWithTypedParsing) {
  ParamGrid grid{{"n", {4, 7}}, {"skew", {0.5, 1.0}}};
  EXPECT_TRUE(grid.override_axis("n", {"16", "32"}));
  EXPECT_FALSE(grid.override_axis("absent", {"1"}));
  EXPECT_THROW(grid.override_axis("n", {"banana"}), std::invalid_argument);
  EXPECT_THROW(grid.override_axis("skew", {}), std::invalid_argument);

  const auto points = grid.expand();
  ASSERT_EQ(points.size(), 4u);
  EXPECT_EQ(points[0].get_int("n"), 16);
  EXPECT_EQ(points[3].label(), "n=32 skew=1");
}

TEST(ParamGrid, MixedNumericAxisAcceptsDoubleOverrides) {
  ParamGrid grid;
  grid.add_axis("d", {ParamValue(1), ParamValue(2.5)});
  // The axis's own default values must be settable from the CLI.
  EXPECT_TRUE(grid.override_axis("d", {"2.5", "3"}));
  const auto points = grid.expand();
  ASSERT_EQ(points.size(), 2u);
  EXPECT_DOUBLE_EQ(points[0].get_double("d"), 2.5);
  EXPECT_DOUBLE_EQ(points[1].get_double("d"), 3.0);
}

// --- ScenarioRegistry ------------------------------------------------------

class LabeledScenario : public Scenario {
 public:
  explicit LabeledScenario(std::string name, double value = 0.0)
      : name_(std::move(name)), value_(value) {}
  std::string name() const override { return name_; }
  MetricRecord run(const RunContext& ctx) const override {
    MetricRecord m;
    m.set("value", value_);
    m.set("index", static_cast<double>(ctx.run_index));
    return m;
  }

 private:
  std::string name_;
  double value_;
};

TEST(ScenarioRegistry, RejectsDuplicateAndInvalidFamilies) {
  ScenarioRegistry registry;  // local; the global one stays untouched
  ScenarioFamily family;
  family.name = "dup";
  family.factory = [](const ParamSet&) {
    return std::make_unique<LabeledScenario>("dup/x");
  };
  registry.register_family(family);
  EXPECT_THROW(registry.register_family(family), std::invalid_argument);

  ScenarioFamily unnamed;
  unnamed.factory = family.factory;
  EXPECT_THROW(registry.register_family(unnamed), std::invalid_argument);

  ScenarioFamily no_factory;
  no_factory.name = "nofactory";
  EXPECT_THROW(registry.register_family(no_factory),
               std::invalid_argument);
}

TEST(ScenarioRegistry, ListsFamiliesSortedAndFindsByName) {
  ScenarioRegistry registry;
  for (const char* name : {"zeta", "alpha", "mid"}) {
    ScenarioFamily family;
    family.name = name;
    family.factory = [](const ParamSet&) {
      return std::make_unique<LabeledScenario>("x");
    };
    registry.register_family(std::move(family));
  }
  const auto families = registry.families();
  ASSERT_EQ(families.size(), 3u);
  EXPECT_EQ(families[0]->name, "alpha");
  EXPECT_EQ(families[2]->name, "zeta");
  EXPECT_NE(registry.find("mid"), nullptr);
  EXPECT_EQ(registry.find("nope"), nullptr);
}

TEST(ScenarioRegistry, GlobalRegistryCarriesTheFullCatalog) {
  // The acceptance list: every former bench driver and example is
  // reachable through the registry.
  const ScenarioRegistry& registry = ScenarioRegistry::global();
  for (const char* name :
       {"attestation_churn", "bft_scaling", "bitcoin_audit",
        "committee_pipeline", "component_cap", "diversity_audit",
        "double_spend", "example1_entropy", "fig1_entropy", "fork_rate",
        "micro", "pool_compromise", "proactive_recovery", "prop1_entropy",
        "prop2_unique", "prop3_abundance", "prop3_cost",
        "safety_condition", "selfish_mining", "two_tier",
        "vulnerability_window"}) {
    EXPECT_NE(registry.find(name), nullptr) << name;
  }
  EXPECT_GE(registry.size(), 21u);
}

// The old fig1 driver's exit code asserted the paper's headline bound
// (entropy below an 8-replica uniform BFT's 3 bits for every x); keep
// that guarantee as a test now that the driver is a thin invocation.
TEST(ScenarioRegistry, Fig1EntropyStaysBelowBft8ForEveryX) {
  const ScenarioFamily* family =
      ScenarioRegistry::global().find("fig1_entropy");
  ASSERT_NE(family, nullptr);
  for (const auto& scenario : instantiate_family(*family, family->grids)) {
    const MetricRecord metrics = scenario->run(RunContext{1, 0});
    EXPECT_LT(metrics.get("entropy_bits"), 3.0) << scenario->name();
    EXPECT_GT(metrics.get("gap_to_bft8_bits"), 0.0) << scenario->name();
  }
}

TEST(ScenarioRegistry, InstantiateExpandsEveryGrid) {
  const ScenarioFamily* family =
      ScenarioRegistry::global().find("bft_scaling");
  ASSERT_NE(family, nullptr);
  const auto scenarios = instantiate_family(*family, family->grids);
  EXPECT_EQ(scenarios.size(), family->instance_count());
  // 6 sizes + 4 fault mixes + the modeled-crypto worker lane (2 sizes ×
  // 4 worker counts) + the protocol-comparison lane (4 sizes × 2
  // protocols).
  EXPECT_EQ(scenarios.size(), 26u);
}

// --- the global work queue vs serial ---------------------------------------

// The tentpole acceptance: a suite-level sweep over several *real*
// families through the global (scenario, seed) queue is bit-identical to
// the serial run. Families chosen to cover distinct subsystems
// (diversity sampling, two-tier policy, Monte-Carlo fault injection,
// pool compromise).
TEST(GlobalQueue, SuiteSweepBitIdenticalToSerialAcrossFamilies) {
  const ScenarioRegistry& registry = ScenarioRegistry::global();
  std::vector<std::unique_ptr<Scenario>> scenarios;
  for (const char* name :
       {"diversity_audit", "two_tier", "safety_condition",
        "pool_compromise"}) {
    const ScenarioFamily* family = registry.find(name);
    ASSERT_NE(family, nullptr) << name;
    // Shrink the heavier grids so the test stays fast.
    std::vector<ParamGrid> grids = family->grids;
    for (ParamGrid& grid : grids) {
      grid.override_axis("alpha", {"1", "4"});
      grid.override_axis("attested_fraction", {"0.5"});
      grid.override_axis("zipf", {"1"});
      grid.override_axis("trials", {"200"});
    }
    for (auto& scenario : instantiate_family(*family, grids)) {
      scenarios.push_back(std::move(scenario));
    }
  }
  ASSERT_GE(scenarios.size(), 7u);

  std::vector<const Scenario*> pointers;
  for (const auto& scenario : scenarios) pointers.push_back(scenario.get());

  const auto serial =
      SweepRunner({.base_seed = 11, .num_seeds = 3, .threads = 1})
          .run_all(pointers);
  const auto parallel =
      SweepRunner({.base_seed = 11, .num_seeds = 3, .threads = 8})
          .run_all(pointers);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t s = 0; s < serial.size(); ++s) {
    ASSERT_EQ(serial[s].size(), parallel[s].size());
    for (std::size_t i = 0; i < serial[s].size(); ++i) {
      ASSERT_TRUE(serial[s][i].ok()) << pointers[s]->name();
      ASSERT_TRUE(parallel[s][i].ok()) << pointers[s]->name();
      EXPECT_EQ(serial[s][i].seed, parallel[s][i].seed);
      // operator== compares doubles exactly: bit-identical, not "close".
      EXPECT_TRUE(serial[s][i].metrics == parallel[s][i].metrics)
          << pointers[s]->name() << " seed index " << i;
    }
  }
}

TEST(GlobalQueue, FillsWorkersAcrossScenariosAtOneSeed) {
  // 6 one-seed scenarios on 6 threads: the global queue must execute all
  // of them (the old per-scenario pools would have used 1 thread each in
  // sequence — observable only as wasted wall-clock, so here we just pin
  // the result shape).
  std::vector<std::unique_ptr<Scenario>> owned;
  std::vector<const Scenario*> pointers;
  for (int i = 0; i < 6; ++i) {
    owned.push_back(std::make_unique<LabeledScenario>(
        "q/" + std::to_string(i), static_cast<double>(i)));
    pointers.push_back(owned.back().get());
  }
  const auto results =
      SweepRunner({.base_seed = 5, .num_seeds = 1, .threads = 6})
          .run_all(pointers);
  ASSERT_EQ(results.size(), 6u);
  for (std::size_t s = 0; s < results.size(); ++s) {
    ASSERT_EQ(results[s].size(), 1u);
    EXPECT_DOUBLE_EQ(results[s][0].metrics.get("value"),
                     static_cast<double>(s));
  }
}

// --- golden output for a parameterized family ------------------------------

/// Deterministic parameterized family whose metrics are exact small
/// integers, so CSV/JSON bytes are stable across platforms.
class GoldenScenario : public Scenario {
 public:
  GoldenScenario(std::int64_t a, std::int64_t b) : a_(a), b_(b) {}
  std::string name() const override {
    return "golden/a=" + std::to_string(a_) + " b=" + std::to_string(b_);
  }
  MetricRecord run(const RunContext& ctx) const override {
    MetricRecord m;
    m.set("combined", static_cast<double>(a_ * 10 + b_));
    m.set("index", static_cast<double>(ctx.run_index));
    return m;
  }

 private:
  std::int64_t a_;
  std::int64_t b_;
};

TEST(GoldenOutput, CsvAndJsonForParameterizedFamily) {
  ScenarioFamily family;
  family.name = "golden";
  family.grids = {ParamGrid{{"a", {1, 2}}, {"b", {3, 4}}}};
  family.factory = [](const ParamSet& p) {
    return std::make_unique<GoldenScenario>(p.get_int("a"), p.get_int("b"));
  };

  ScenarioSuite suite("");
  for (auto& scenario : instantiate_family(family, family.grids)) {
    suite.add(std::move(scenario));
  }
  SuiteOptions options;
  options.sweep = {.base_seed = 9, .num_seeds = 1, .threads = 2};

  std::ostringstream csv, err;
  options.csv = true;
  ASSERT_EQ(suite.run(options, csv, err), 0);
  EXPECT_EQ(csv.str(),
            "family,scenario,seeds,metric,mean,stddev,min,max\n"
            "golden,golden/a=1 b=3,1,combined,13,0,13,13\n"
            "golden,golden/a=1 b=3,1,index,0,0,0,0\n"
            "golden,golden/a=1 b=4,1,combined,14,0,14,14\n"
            "golden,golden/a=1 b=4,1,index,0,0,0,0\n"
            "golden,golden/a=2 b=3,1,combined,23,0,23,23\n"
            "golden,golden/a=2 b=3,1,index,0,0,0,0\n"
            "golden,golden/a=2 b=4,1,combined,24,0,24,24\n"
            "golden,golden/a=2 b=4,1,index,0,0,0,0\n");

  std::ostringstream json, err2;
  options.csv = false;
  options.json = true;
  ASSERT_EQ(suite.run(options, json, err2), 0);
  const std::string seed = std::to_string(derive_seed(9, 0));
  std::string expected = "{\n  \"scenarios\": [";
  bool first = true;
  for (const char* name :
       {"golden/a=1 b=3", "golden/a=1 b=4", "golden/a=2 b=3",
        "golden/a=2 b=4"}) {
    const int combined = (name[9] - '0') * 10 + (name[13] - '0');
    expected += first ? "\n" : ",\n";
    first = false;
    expected += "    {\"name\": \"" + std::string(name) +
                "\", \"family\": \"golden\", \"runs\": [\n      {\"seed\": " +
                seed + ", \"metrics\": {\"combined\": " +
                std::to_string(combined) + ", \"index\": 0}}\n    ]}";
  }
  expected += "\n  ]\n}\n";
  EXPECT_EQ(json.str(), expected);
}

// --- option validation -----------------------------------------------------

TEST(SuiteOptionsFlags, RejectsZeroNegativeAndGarbageNumerics) {
  const auto parse = [](std::vector<const char*> args) {
    args.insert(args.begin(), "prog");
    SuiteOptions options;
    std::ostringstream err;
    const bool ok = parse_suite_options(static_cast<int>(args.size()),
                                        args.data(), options, err);
    return std::make_pair(ok, err.str());
  };

  auto [ok_zero, err_zero] = parse({"--seeds", "0"});
  EXPECT_FALSE(ok_zero);
  EXPECT_NE(err_zero.find("--seeds"), std::string::npos);
  EXPECT_NE(err_zero.find("'0'"), std::string::npos);

  EXPECT_FALSE(parse({"--seeds", "-3"}).first);
  EXPECT_FALSE(parse({"--seeds", "abc"}).first);
  EXPECT_FALSE(parse({"--seed", "-1"}).first);
  EXPECT_FALSE(parse({"--seed", "1.5"}).first);
  EXPECT_FALSE(parse({"--threads", "many"}).first);
  EXPECT_FALSE(parse({"--threads"}).first);  // missing value
  EXPECT_TRUE(parse({"--threads", "0"}).first);  // 0 = hardware default

  auto [ok_err, message] = parse({"--seeds", "abc"});
  EXPECT_FALSE(ok_err);
  EXPECT_NE(message.find("error:"), std::string::npos);
  EXPECT_NE(message.find("usage:"), std::string::npos);
}

TEST(SuiteOptionsFlags, ParsesFamilyAndSetFlags) {
  const char* argv[] = {"prog", "--family", "a,b",       "--family",
                        "c",    "--set",    "axis=1,2.5", "--set",
                        "op=fast"};
  SuiteOptions options;
  std::ostringstream err;
  ASSERT_TRUE(parse_suite_options(9, argv, options, err));
  ASSERT_EQ(options.families.size(), 3u);
  EXPECT_EQ(options.families[0], "a");
  EXPECT_EQ(options.families[2], "c");
  ASSERT_EQ(options.sets.size(), 2u);
  EXPECT_EQ(options.sets[0].axis, "axis");
  ASSERT_EQ(options.sets[0].values.size(), 2u);
  EXPECT_EQ(options.sets[0].values[1], "2.5");
  EXPECT_EQ(options.sets[1].axis, "op");

  const char* bad_set[] = {"prog", "--set", "novalue"};
  SuiteOptions options2;
  std::ostringstream err2;
  EXPECT_FALSE(parse_suite_options(3, bad_set, options2, err2));
  const char* empty_value[] = {"prog", "--set", "a=1,,2"};
  SuiteOptions options3;
  std::ostringstream err3;
  EXPECT_FALSE(parse_suite_options(3, empty_value, options3, err3));
}

}  // namespace
}  // namespace findep::runtime
