// Resilience order statistics: worst-case compromise and fault counting.
#include <gtest/gtest.h>

#include "diversity/datasets.h"
#include "diversity/resilience.h"
#include "support/assert.h"
#include "support/rng.h"

namespace findep::diversity {
namespace {

TEST(WorstCase, SumsTopShares) {
  const std::vector<double> p = {0.4, 0.1, 0.3, 0.2};
  EXPECT_DOUBLE_EQ(worst_case_compromise(p, 0), 0.0);
  EXPECT_DOUBLE_EQ(worst_case_compromise(p, 1), 0.4);
  EXPECT_DOUBLE_EQ(worst_case_compromise(p, 2), 0.7);
  EXPECT_NEAR(worst_case_compromise(p, 4), 1.0, 1e-12);
  EXPECT_NEAR(worst_case_compromise(p, 10), 1.0, 1e-12);  // clamped
}

TEST(WorstCase, MonotoneInJ) {
  support::Rng rng(3);
  std::vector<double> p(20);
  for (auto& x : p) x = rng.uniform(0.0, 1.0);
  p[3] = 0.0;  // zero entries are fine
  double prev = 0.0;
  for (std::size_t j = 0; j <= p.size(); ++j) {
    const double w = worst_case_compromise(p, j);
    EXPECT_GE(w, prev - 1e-12);
    prev = w;
  }
}

TEST(MinFaults, UniformMatchesClosedForm) {
  // κ-optimal with κ configs: breaking threshold τ needs ⌊κτ⌋+1 faults.
  for (std::size_t k : {3u, 4u, 9u, 10u, 30u}) {
    const std::vector<double> p(k, 1.0 / static_cast<double>(k));
    EXPECT_EQ(min_faults_to_exceed(p, kBftThreshold),
              static_cast<std::size_t>(static_cast<double>(k) / 3.0) + 1)
        << k;
    EXPECT_EQ(min_faults_to_exceed(p, kNakamotoThreshold), k / 2 + 1) << k;
  }
}

TEST(MinFaults, OligopolyBreaksWithOne) {
  const std::vector<double> p = {0.6, 0.2, 0.2};
  EXPECT_EQ(min_faults_to_exceed(p, kNakamotoThreshold), 1u);
  EXPECT_EQ(min_faults_to_exceed(p, kBftThreshold), 1u);
}

TEST(MinFaults, UnreachableThreshold) {
  const std::vector<double> p = {0.5, 0.5};
  EXPECT_EQ(min_faults_to_exceed(p, 1.0), 3u);  // support + 1
}

TEST(MinFaults, Example1BitcoinNumbers) {
  // With the paper's pool distribution: Foundry (34.2%) alone breaks the
  // BFT third; the top-2 (54.2%) break the honest majority.
  const ConfigDistribution bitcoin =
      datasets::bitcoin_best_case_distribution(100);
  EXPECT_EQ(min_faults_to_exceed(bitcoin, kBftThreshold), 1u);
  EXPECT_EQ(min_faults_to_exceed(bitcoin, kNakamotoThreshold), 2u);
}

TEST(SafetyMargin, SignsMatchCompromise) {
  const ConfigDistribution uniform = ConfigDistribution::uniform(9);
  EXPECT_GT(safety_margin(uniform, 2, kBftThreshold), 0.0);   // 2/9 < 1/3
  EXPECT_LT(safety_margin(uniform, 4, kBftThreshold), 0.0);   // 4/9 > 1/3
}

TEST(Summary, FieldsCoherent) {
  const ConfigDistribution skew = ConfigDistribution::from_shares(
      std::vector<double>{0.45, 0.3, 0.25});
  const ResilienceSummary s = summarize_resilience(skew, kBftThreshold);
  EXPECT_DOUBLE_EQ(s.threshold, kBftThreshold);
  EXPECT_EQ(s.support, 3u);
  EXPECT_EQ(s.min_faults, 1u);
  EXPECT_DOUBLE_EQ(s.single_fault_power, 0.45);
  EXPECT_TRUE(s.single_point_of_failure);

  const ResilienceSummary u =
      summarize_resilience(ConfigDistribution::uniform(10), kBftThreshold);
  EXPECT_FALSE(u.single_point_of_failure);
  EXPECT_EQ(u.min_faults, 4u);
}

TEST(Resilience, MoreUniformNeverNeedsFewerFaults) {
  // Property: the uniform distribution maximizes min_faults among all
  // distributions with the same support.
  support::Rng rng(11);
  for (int trial = 0; trial < 100; ++trial) {
    const std::size_t k = 3 + rng.below(20);
    std::vector<double> p(k);
    for (auto& x : p) x = rng.uniform(0.01, 1.0);
    const std::vector<double> uniform(k, 1.0);
    EXPECT_GE(min_faults_to_exceed(uniform, kBftThreshold),
              min_faults_to_exceed(p, kBftThreshold))
        << "trial " << trial;
  }
}

TEST(Resilience, RejectsEmptyOrZero) {
  EXPECT_THROW((void)worst_case_compromise(std::vector<double>{}, 1),
               support::ContractViolation);
  EXPECT_THROW(
      (void)min_faults_to_exceed(std::vector<double>{0.0, 0.0}, 0.3),
      support::ContractViolation);
}

}  // namespace
}  // namespace findep::diversity
