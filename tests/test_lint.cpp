// Golden-fixture tests for findep-lint (tools/lint). Each rule gets a
// fixture file full of deliberate violations plus adjacent clean idioms;
// the expectations pin exact (line, rule) pairs, so both a rule that
// stops firing (a lost in-tree protection) and one that starts
// over-firing (a new false positive) fail here. The fixture directory is
// excluded from the lint_tree gate by Options::exclude_substrings.
#include "lint/lint.h"

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace {

using findep::lint::Finding;
using findep::lint::Options;
using findep::lint::run_lint;

std::string fixture(const std::string& name) {
  return std::string(FINDEP_LINT_FIXTURE_DIR) + "/" + name;
}

/// The (line, rule) pairs of every finding in `file`, sorted.
std::vector<std::pair<int, std::string>> findings_in(
    const std::vector<Finding>& findings, const std::string& file) {
  std::vector<std::pair<int, std::string>> out;
  for (const Finding& f : findings) {
    if (f.file.find(file) != std::string::npos) {
      out.emplace_back(f.line, f.rule);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

Options fixture_options() {
  Options options;
  options.exclude_substrings.clear();  // we scan fixtures on purpose
  return options;
}

TEST(LintWallClock, FlagsEveryClockReadButNotMemberCalls) {
  const auto findings =
      run_lint({fixture("wall_clock.cpp")}, fixture_options());
  EXPECT_EQ(findings_in(findings, "wall_clock.cpp"),
            (std::vector<std::pair<int, std::string>>{
                {15, "wall-clock"},   // steady_clock
                {16, "wall-clock"},   // system_clock
                {17, "wall-clock"},   // high_resolution_clock
                {18, "wall-clock"},   // std::time(nullptr)
            }));
  // The `sim.time()` member call and the suppressed accessor declaration
  // produce nothing — 4 findings total.
  EXPECT_EQ(findings.size(), 4u);
}

TEST(LintWallClock, AllowlistSilencesTheWholeFile) {
  Options options = fixture_options();
  options.wall_clock_allowlist.push_back("wall_clock_allowed.cpp");
  const auto findings =
      run_lint({fixture("wall_clock_allowed.cpp")}, options);
  EXPECT_TRUE(findings.empty())
      << "allowlisted file still produced findings";

  // Without the allowlist entry the same file trips the rule — the
  // allowlist is doing the work, not the rule going blind.
  const auto unlisted =
      run_lint({fixture("wall_clock_allowed.cpp")}, fixture_options());
  EXPECT_EQ(unlisted.size(), 2u);
  for (const Finding& f : unlisted) EXPECT_EQ(f.rule, "wall-clock");
}

TEST(LintAmbientRng, FlagsGlobalRngAndDefaultEnginesOnly) {
  const auto findings =
      run_lint({fixture("ambient_rng.cpp")}, fixture_options());
  EXPECT_EQ(findings_in(findings, "ambient_rng.cpp"),
            (std::vector<std::pair<int, std::string>>{
                {8, "ambient-rng"},   // rand()
                {9, "ambient-rng"},   // std::random_device
                {10, "ambient-rng"},  // default-constructed mt19937
                {11, "ambient-rng"},  // std::mt19937() temporary
            }));
  // Seeded engines and reference parameters are the sanctioned idiom.
  EXPECT_EQ(findings.size(), 4u);
}

TEST(LintUnorderedIteration, ResolvesNamesThroughIncludesAndAliases) {
  // The header declares the members (one directly unordered, one through
  // a using-alias); the .cpp iterates them — the same split as
  // replica.h/replica.cpp in the real tree.
  const auto findings = run_lint(
      {fixture("unordered_iter.h"), fixture("unordered_iter.cpp")},
      fixture_options());
  EXPECT_EQ(findings_in(findings, "unordered_iter.cpp"),
            (std::vector<std::pair<int, std::string>>{
                {10, "unordered-iteration"},  // range-for over member
                {13, "unordered-iteration"},  // .begin() walk of alias
            }));
  // The vector loop, the suppressed fold and the count() lookup are
  // clean; the header declares but never iterates.
  EXPECT_EQ(findings.size(), 2u);
}

TEST(LintPointerKeyed, FlagsPointerKeysNotPointerValues) {
  const auto findings =
      run_lint({fixture("pointer_key.cpp")}, fixture_options());
  EXPECT_EQ(findings_in(findings, "pointer_key.cpp"),
            (std::vector<std::pair<int, std::string>>{
                {13, "pointer-keyed-container"},  // map<Node*, int>
                {14, "pointer-keyed-container"},  // set<const Node*>
                {15, "pointer-keyed-container"},  // unordered_set<int*>
            }));
  EXPECT_EQ(findings.size(), 3u);
}

TEST(LintUninitMember, FlagsBareScalarsInConfiguredFilesOnly) {
  Options options = fixture_options();
  options.uninit_member_files.push_back("lint_fixtures/uninit_member.h");
  const auto findings =
      run_lint({fixture("uninit_member.h")}, options);
  EXPECT_EQ(findings_in(findings, "uninit_member.h"),
            (std::vector<std::pair<int, std::string>>{
                {14, "uninit-member"},  // std::uint64_t id;
                {15, "uninit-member"},  // SeqNum seq; (scalar alias)
                {16, "uninit-member"},  // double weight;
                {27, "uninit-member"},  // nested struct scalar
            }));
  EXPECT_EQ(findings.size(), 4u);

  // The same file NOT on the uninit-member list produces nothing: the
  // rule is scoped to wire-message headers.
  const auto unscoped =
      run_lint({fixture("uninit_member.h")}, fixture_options());
  EXPECT_TRUE(unscoped.empty());
}

TEST(LintSuppressions, HonoredMalformedWrongRuleUnusedAndUnknown) {
  const auto findings =
      run_lint({fixture("suppressions.cpp")}, fixture_options());
  EXPECT_EQ(findings_in(findings, "suppressions.cpp"),
            (std::vector<std::pair<int, std::string>>{
                {16, "bad-suppression"},     // no '-- justification'
                {17, "wall-clock"},          // malformed doesn't suppress
                {19, "unused-suppression"},  // wrong rule matched nothing
                {20, "wall-clock"},          // wrong rule doesn't suppress
                {22, "bad-suppression"},     // unknown rule name
                {22, "unused-suppression"},  // ...and it matched nothing
                {23, "wall-clock"},          // unknown rule doesn't suppress
                {25, "unused-suppression"},  // stale exemption
            }));
}

TEST(LintCatalog, EveryRuleIsDocumented) {
  const auto catalog = findep::lint::rule_catalog();
  std::vector<std::string> names;
  for (const auto& rule : catalog) {
    EXPECT_FALSE(rule.summary.empty()) << rule.name;
    names.push_back(rule.name);
  }
  const std::vector<std::string> expected = {
      "wall-clock",         "ambient-rng",
      "unordered-iteration", "pointer-keyed-container",
      "uninit-member",      "bad-suppression",
      "unused-suppression"};
  EXPECT_EQ(names, expected);
}

TEST(LintCollect, FixtureDirectoryIsExcludedByDefault) {
  // The default exclude list keeps the deliberate violations out of the
  // lint_tree gate: collecting the fixture dir with default options
  // yields nothing.
  const auto files = findep::lint::collect_sources(
      {std::string(FINDEP_LINT_FIXTURE_DIR)}, Options{});
  EXPECT_TRUE(files.empty());
}

}  // namespace
