// runtime::WorkerPool: the ordered-completion contract under randomized
// load, differentially against a serial reference model.
//
// The reference exploits the pool's central guarantee: within a lane,
// completions fire in submission order and a task whose stale predicate
// is fixed at submission is dropped iff that predicate is true — both
// independent of the worker count and of how task costs interleave. So
// the expected completion sequence of a randomized schedule can be
// computed by a trivial serial replay, and the same schedule must
// reproduce it at 1, 2 and 8 workers.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "runtime/workers.h"
#include "sim/simulator.h"
#include "support/rng.h"

namespace findep::runtime {
namespace {

struct Completion {
  std::uint64_t id = 0;
  bool dropped = false;

  bool operator==(const Completion&) const = default;
};

/// One randomized task: lane, modeled cost, submit time, and a stale
/// verdict fixed at generation time (so the expected drop outcome does
/// not depend on dequeue timing).
struct PlannedTask {
  std::uint64_t id = 0;
  TaskPriority priority = TaskPriority::kCritical;
  double submit_at = 0.0;
  double cost = 0.0;
  bool stale = false;
};

std::vector<PlannedTask> random_schedule(std::uint64_t seed,
                                         std::size_t count) {
  support::Rng rng(seed);
  std::vector<PlannedTask> tasks;
  tasks.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    PlannedTask t;
    t.id = i;
    t.priority = rng.uniform() < 0.4 ? TaskPriority::kSpeculative
                                     : TaskPriority::kCritical;
    t.submit_at = rng.uniform() * 1e-2;
    // Include zero-cost tasks: completions must still be well-ordered
    // when several finish at the same instant.
    t.cost = rng.uniform() < 0.1 ? 0.0 : rng.uniform() * 1e-3;
    t.stale = rng.uniform() < 0.2;
    tasks.push_back(t);
  }
  return tasks;
}

/// The serial reference: per lane, submission order with the fixed stale
/// verdicts. (Submission order = submit_at order; ties resolved by id,
/// matching the generator which never produces duplicate times in
/// practice and the simulator's FIFO tie-break when it does.)
std::vector<std::vector<Completion>> reference_completions(
    std::vector<PlannedTask> tasks) {
  std::stable_sort(tasks.begin(), tasks.end(),
                   [](const PlannedTask& a, const PlannedTask& b) {
                     return a.submit_at < b.submit_at;
                   });
  std::vector<std::vector<Completion>> lanes(kPriorityLanes);
  for (const PlannedTask& t : tasks) {
    lanes[static_cast<std::size_t>(t.priority)].push_back(
        Completion{t.id, t.stale});
  }
  return lanes;
}

std::vector<std::vector<Completion>> run_pool(
    const std::vector<PlannedTask>& tasks, std::size_t workers) {
  sim::Simulator sim;
  WorkerPool pool(sim, workers);
  std::vector<std::vector<Completion>> lanes(kPriorityLanes);
  auto* const sink = &lanes;
  for (const PlannedTask& t : tasks) {
    // Field-wise capture: the simulator's inline callbacks carry at most
    // 48 bytes, so the whole PlannedTask cannot ride along.
    sim.schedule_at(t.submit_at, [&pool, sink, priority = t.priority,
                                  cost = t.cost, stale = t.stale,
                                  id = t.id] {
      pool.submit(
          priority, cost, [stale] { return stale; },
          [sink, lane = static_cast<std::size_t>(priority),
           id](bool dropped) {
            (*sink)[lane].push_back(Completion{id, dropped});
          });
    });
  }
  sim.run();
  EXPECT_EQ(pool.queued(), 0u);
  EXPECT_EQ(pool.in_flight(), 0u);
  EXPECT_EQ(pool.stats().submitted, tasks.size());
  EXPECT_EQ(pool.stats().completed + pool.stats().dropped_stale,
            tasks.size());
  return lanes;
}

TEST(WorkerPool, RandomizedDifferentialAgainstSerialReference) {
  for (const std::uint64_t seed : {11ULL, 22ULL, 33ULL}) {
    const std::vector<PlannedTask> tasks = random_schedule(seed, 200);
    const auto expected = reference_completions(tasks);
    for (const std::size_t workers : {1, 2, 8}) {
      const auto actual = run_pool(tasks, workers);
      ASSERT_EQ(actual.size(), expected.size());
      for (std::size_t lane = 0; lane < expected.size(); ++lane) {
        EXPECT_EQ(actual[lane], expected[lane])
            << "lane " << lane << " diverged from the serial reference "
            << "at seed " << seed << " with " << workers << " workers";
      }
    }
  }
}

TEST(WorkerPool, CompletionsReenterInSubmissionOrderWithinLane) {
  // Two workers, one expensive task then one cheap one in the same lane:
  // the cheap task's *work* finishes first, but its completion is gated
  // behind the expensive predecessor (the reorder buffer), and fires at
  // the predecessor's finish time.
  sim::Simulator sim;
  WorkerPool pool(sim, 2);
  std::vector<std::pair<char, double>> order;
  pool.submit(TaskPriority::kCritical, 1.0, nullptr,
              [&](bool) { order.emplace_back('A', sim.now()); });
  pool.submit(TaskPriority::kCritical, 0.1, nullptr,
              [&](bool) { order.emplace_back('B', sim.now()); });
  sim.run();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0].first, 'A');
  EXPECT_EQ(order[1].first, 'B');
  EXPECT_DOUBLE_EQ(order[0].second, 1.0);
  EXPECT_DOUBLE_EQ(order[1].second, 1.0);  // gated, not 0.1
}

TEST(WorkerPool, CriticalLaneDequeuesAheadOfSpeculative) {
  // Fill the single worker, queue speculative work first and critical
  // work second: the critical tasks must still all run first.
  sim::Simulator sim;
  WorkerPool pool(sim, 1);
  std::vector<int> order;
  pool.submit(TaskPriority::kCritical, 1.0, nullptr, [](bool) {});
  for (int i = 0; i < 3; ++i) {
    pool.submit(TaskPriority::kSpeculative, 0.1, nullptr,
                [&order, i](bool) { order.push_back(100 + i); });
  }
  for (int i = 0; i < 3; ++i) {
    pool.submit(TaskPriority::kCritical, 0.1, nullptr,
                [&order, i](bool) { order.push_back(i); });
  }
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 100, 101, 102}));
}

TEST(WorkerPool, StaleWorkIsDroppedAtDequeueWithoutWorkerTime) {
  // The predicate flips while the task waits behind the blocker; the
  // drop happens when a worker would pick it up, consumes no modeled
  // time, and still completes (flagged) in lane order.
  sim::Simulator sim;
  WorkerPool pool(sim, 1);
  bool stale = false;
  sim.schedule_at(0.5, [&stale] { stale = true; });
  double blocker_done = -1.0;
  double victim_done = -1.0;
  bool victim_dropped = false;
  pool.submit(TaskPriority::kCritical, 1.0, nullptr,
              [&](bool) { blocker_done = sim.now(); });
  pool.submit(
      TaskPriority::kCritical, 0.25, [&stale] { return stale; },
      [&](bool dropped) {
        victim_done = sim.now();
        victim_dropped = dropped;
      });
  sim.run();
  EXPECT_DOUBLE_EQ(blocker_done, 1.0);
  EXPECT_TRUE(victim_dropped);
  EXPECT_DOUBLE_EQ(victim_done, 1.0);  // dropped at dequeue, not +0.25
  EXPECT_EQ(pool.stats().dropped_stale, 1u);
  EXPECT_DOUBLE_EQ(pool.stats().busy_seconds, 1.0);  // no victim time
}

TEST(WorkerPool, CompletionMaySubmitMoreWork) {
  // Re-entrant submission from a completion callback folds into the
  // dispatch loop instead of recursing.
  sim::Simulator sim;
  WorkerPool pool(sim, 2);
  int chained = 0;
  pool.submit(TaskPriority::kCritical, 0.1, nullptr, [&](bool) {
    pool.submit(TaskPriority::kSpeculative, 0.1, nullptr,
                [&](bool) { ++chained; });
  });
  sim.run();
  EXPECT_EQ(chained, 1);
  EXPECT_EQ(pool.stats().completed, 2u);
}

TEST(WorkerPool, BusySecondsAccountPerWorkerOccupancy) {
  sim::Simulator sim;
  WorkerPool pool(sim, 4);
  for (int i = 0; i < 8; ++i) {
    pool.submit(TaskPriority::kCritical, 0.5, nullptr, [](bool) {});
  }
  sim.run();
  EXPECT_DOUBLE_EQ(pool.stats().busy_seconds, 4.0);
  // 8 tasks of 0.5 s over 4 workers: two full waves, makespan 1.0 s.
  EXPECT_DOUBLE_EQ(sim.now(), 1.0);
}

}  // namespace
}  // namespace findep::runtime
