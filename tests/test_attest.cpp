// Remote attestation: endorsement chain, quotes, nonce freshness, vote-key
// binding, commitment privacy, registry reconstruction.
#include <gtest/gtest.h>

#include "attest/registry.h"
#include "config/sampler.h"
#include "diversity/metrics.h"
#include "support/assert.h"

namespace findep::attest {
namespace {

struct Fixture {
  crypto::KeyRegistry keys;
  support::Rng rng{42};
  config::ComponentCatalog catalog = config::standard_catalog();
  AttestationAuthority authority{keys, rng};

  config::ReplicaConfiguration attestable_config(std::size_t variant) {
    config::ConfigurationSampler sampler(
        catalog, config::SamplerOptions{.zipf_exponent = 0.0,
                                        .attestable_fraction = 1.0});
    auto configs = sampler.distinct_configurations(variant + 1);
    return configs[variant];
  }

  PlatformModule make_platform(std::size_t variant) {
    const auto cfg = attestable_config(variant);
    const auto hw = cfg.component(config::ComponentKind::kTrustedHardware);
    return PlatformModule(keys, rng, authority, *hw, cfg);
  }
};

TEST(Authority, EndorsementVerifies) {
  Fixture f;
  const crypto::KeyPair platform = crypto::KeyPair::generate(f.rng);
  f.keys.enroll(platform);
  const Endorsement e =
      f.authority.endorse(platform.public_key(), config::ComponentId{0});
  EXPECT_TRUE(
      AttestationAuthority::verify(f.keys, f.authority.root_key(), e));
}

TEST(Authority, WrongRootRejected) {
  Fixture f;
  AttestationAuthority other(f.keys, f.rng);
  const crypto::KeyPair platform = crypto::KeyPair::generate(f.rng);
  const Endorsement e =
      f.authority.endorse(platform.public_key(), config::ComponentId{0});
  EXPECT_FALSE(
      AttestationAuthority::verify(f.keys, other.root_key(), e));
}

TEST(Authority, TamperedHardwareIdRejected) {
  Fixture f;
  const crypto::KeyPair platform = crypto::KeyPair::generate(f.rng);
  Endorsement e =
      f.authority.endorse(platform.public_key(), config::ComponentId{0});
  e.hardware = config::ComponentId{1};
  EXPECT_FALSE(
      AttestationAuthority::verify(f.keys, f.authority.root_key(), e));
}

TEST(Quote, FreshQuoteVerifies) {
  Fixture f;
  const PlatformModule platform = f.make_platform(0);
  const crypto::Digest nonce = crypto::sha256("nonce-1");
  const Quote q = platform.quote(nonce);
  EXPECT_TRUE(verify_quote(f.keys, f.authority.root_key(), q, nonce));
}

TEST(Quote, WrongNonceRejected) {
  Fixture f;
  const PlatformModule platform = f.make_platform(0);
  const Quote q = platform.quote(crypto::sha256("nonce-a"));
  EXPECT_FALSE(verify_quote(f.keys, f.authority.root_key(), q,
                            crypto::sha256("nonce-b")));
}

TEST(Quote, SwappedVoteKeyRejected) {
  // Remark 3: the vote key is bound inside the signed quote; replacing it
  // invalidates the signature.
  Fixture f;
  const PlatformModule platform = f.make_platform(0);
  const crypto::Digest nonce = crypto::sha256("nonce-2");
  Quote q = platform.quote(nonce);
  const crypto::KeyPair hijacker = crypto::KeyPair::generate(f.rng);
  f.keys.enroll(hijacker);
  q.vote_key = hijacker.public_key();
  EXPECT_FALSE(verify_quote(f.keys, f.authority.root_key(), q, nonce));
}

TEST(Quote, MismatchedEndorsementRejected) {
  Fixture f;
  const PlatformModule a = f.make_platform(0);
  const PlatformModule b = f.make_platform(1);
  const crypto::Digest nonce = crypto::sha256("nonce-3");
  Quote q = a.quote(nonce);
  q.endorsement = b.quote(nonce).endorsement;  // someone else's chain
  EXPECT_FALSE(verify_quote(f.keys, f.authority.root_key(), q, nonce));
}

TEST(Quote, PlatformRequiresMatchingHardware) {
  Fixture f;
  auto cfg = f.attestable_config(0);
  const auto other_hw =
      f.catalog.of_kind(config::ComponentKind::kTrustedHardware)[1];
  EXPECT_THROW(
      PlatformModule(f.keys, f.rng, f.authority, other_hw, cfg),
      support::ContractViolation);
}

TEST(Commitment, OpensOnlyWithRightSaltAndConfig) {
  Fixture f;
  const PlatformModule platform = f.make_platform(0);
  const Quote q = platform.quote(crypto::sha256("n"));
  const CommitmentOpening opening = platform.open_commitment();
  EXPECT_TRUE(verify_opening(q.commitment, opening));

  CommitmentOpening wrong_cfg = opening;
  wrong_cfg.config_digest = crypto::sha256("other-config");
  EXPECT_FALSE(verify_opening(q.commitment, wrong_cfg));

  CommitmentOpening wrong_salt = opening;
  wrong_salt.salt = crypto::sha256("other-salt");
  EXPECT_FALSE(verify_opening(q.commitment, wrong_salt));
}

TEST(Commitment, HidesConfiguration) {
  // Two platforms with the same configuration produce different
  // commitments (salted) — an observer cannot link them.
  Fixture f;
  const auto cfg = f.attestable_config(0);
  const auto hw = cfg.component(config::ComponentKind::kTrustedHardware);
  PlatformModule p1(f.keys, f.rng, f.authority, *hw, cfg);
  PlatformModule p2(f.keys, f.rng, f.authority, *hw, cfg);
  EXPECT_NE(p1.quote(crypto::sha256("n")).commitment,
            p2.quote(crypto::sha256("n")).commitment);
}

TEST(Registry, ChallengeAdmitHappyPath) {
  Fixture f;
  AttestationRegistry registry(f.keys, f.authority.root_key());
  const PlatformModule platform = f.make_platform(0);
  const crypto::Digest nonce = registry.challenge();
  EXPECT_TRUE(registry.admit(platform.quote(nonce), 5.0));
  EXPECT_EQ(registry.size(), 1u);
  EXPECT_TRUE(registry.is_admitted(platform.vote_key()));
}

TEST(Registry, NonceReplayRejected) {
  Fixture f;
  AttestationRegistry registry(f.keys, f.authority.root_key());
  const PlatformModule a = f.make_platform(0);
  const PlatformModule b = f.make_platform(1);
  const crypto::Digest nonce = registry.challenge();
  EXPECT_TRUE(registry.admit(a.quote(nonce), 1.0));
  EXPECT_FALSE(registry.admit(b.quote(nonce), 1.0));  // replayed nonce
}

TEST(Registry, UnknownNonceRejected) {
  Fixture f;
  AttestationRegistry registry(f.keys, f.authority.root_key());
  const PlatformModule platform = f.make_platform(0);
  EXPECT_FALSE(
      registry.admit(platform.quote(crypto::sha256("made-up")), 1.0));
}

TEST(Registry, DuplicateVoteKeyRejected) {
  Fixture f;
  AttestationRegistry registry(f.keys, f.authority.root_key());
  const PlatformModule platform = f.make_platform(0);
  EXPECT_TRUE(registry.admit(platform.quote(registry.challenge()), 1.0));
  EXPECT_FALSE(registry.admit(platform.quote(registry.challenge()), 1.0));
}

TEST(Registry, MerkleProofsCoverRecords) {
  Fixture f;
  AttestationRegistry registry(f.keys, f.authority.root_key());
  std::vector<PlatformModule> platforms;
  for (std::size_t i = 0; i < 5; ++i) {
    platforms.push_back(f.make_platform(i));
    ASSERT_TRUE(
        registry.admit(platforms.back().quote(registry.challenge()), 1.0));
  }
  const crypto::Digest root = registry.merkle_root();
  for (std::size_t i = 0; i < registry.size(); ++i) {
    const crypto::Digest leaf =
        AttestationRegistry::record_leaf(registry.records()[i]);
    EXPECT_TRUE(
        crypto::MerkleTree::verify(leaf, registry.prove_record(i), root));
  }
}

TEST(Registry, ReconstructionSeparatesOpenedAndUnopened) {
  Fixture f;
  AttestationRegistry registry(f.keys, f.authority.root_key());
  std::vector<PlatformModule> platforms;
  for (std::size_t i = 0; i < 4; ++i) {
    platforms.push_back(f.make_platform(i));
    ASSERT_TRUE(
        registry.admit(platforms.back().quote(registry.challenge()), 1.0));
  }
  // Open only the first two.
  std::unordered_map<crypto::PublicKey, CommitmentOpening> openings;
  openings[platforms[0].vote_key()] = platforms[0].open_commitment();
  openings[platforms[1].vote_key()] = platforms[1].open_commitment();

  const diversity::ConfigDistribution dist =
      registry.reconstruct_distribution(openings);
  // 2 opened configs + 1 aggregated unopened bucket.
  EXPECT_EQ(dist.support_size(), 3u);
  EXPECT_DOUBLE_EQ(dist.total_power(), 4.0);
  // The unopened bucket carries 2 units of power.
  double max_power = 0.0;
  for (const auto& e : dist.entries()) {
    max_power = std::max(max_power, e.power);
  }
  EXPECT_DOUBLE_EQ(max_power, 2.0);
}

TEST(Registry, BogusOpeningFallsIntoUnopenedBucket) {
  Fixture f;
  AttestationRegistry registry(f.keys, f.authority.root_key());
  const PlatformModule platform = f.make_platform(0);
  ASSERT_TRUE(registry.admit(platform.quote(registry.challenge()), 1.0));
  std::unordered_map<crypto::PublicKey, CommitmentOpening> openings;
  CommitmentOpening bogus = platform.open_commitment();
  bogus.config_digest = crypto::sha256("lie");
  openings[platform.vote_key()] = bogus;
  const auto dist = registry.reconstruct_distribution(openings);
  EXPECT_EQ(dist.support_size(), 1u);  // only the unopened bucket
}

}  // namespace
}  // namespace findep::attest
