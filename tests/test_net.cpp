// Simulated network and gossip overlay.
#include <gtest/gtest.h>

#include <string>

#include "net/gossip.h"
#include "net/network.h"
#include "support/assert.h"

namespace findep::net {
namespace {

NetworkOptions fast_network() {
  NetworkOptions opt;
  opt.min_latency = 0.01;
  opt.mean_extra_latency = 0.01;
  return opt;
}

TEST(Network, DeliversWithLatencyFloor) {
  sim::Simulator sim;
  SimNetwork net(sim, fast_network());
  double delivered_at = -1.0;
  std::string received;
  net.attach(1, [&](const Message& m) {
    delivered_at = sim.now();
    const Probe* probe = m.envelope.get<Probe>();
    ASSERT_NE(probe, nullptr);
    received = probe->note;
  });
  net.send(0, 1, Probe{0, "hello"});
  sim.run();
  EXPECT_EQ(received, "hello");
  EXPECT_GE(delivered_at, 0.01);
}

TEST(Network, SelfSendIsImmediate) {
  sim::Simulator sim;
  SimNetwork net(sim, fast_network());
  double delivered_at = -1.0;
  net.attach(3, [&](const Message&) { delivered_at = sim.now(); });
  net.send(3, 3, Probe{42, {}});
  sim.run();
  EXPECT_DOUBLE_EQ(delivered_at, 0.0);
}

TEST(Network, UnattachedDestinationCountsDropped) {
  sim::Simulator sim;
  SimNetwork net(sim, fast_network());
  net.send(0, 7, Probe{1, {}});
  sim.run();
  EXPECT_EQ(net.stats().messages_dropped, 1u);
  EXPECT_EQ(net.stats().messages_delivered, 0u);
}

TEST(Network, DropProbabilityLosesAboutThatFraction) {
  sim::Simulator sim;
  NetworkOptions opt = fast_network();
  opt.drop_probability = 0.3;
  SimNetwork net(sim, opt);
  int received = 0;
  net.attach(1, [&](const Message&) { ++received; });
  constexpr int kN = 2000;
  for (int i = 0; i < kN; ++i) net.send(0, 1, Probe{i, {}});
  sim.run();
  EXPECT_NEAR(received, kN * 7 / 10, kN / 20);
  EXPECT_EQ(net.stats().messages_sent, static_cast<std::uint64_t>(kN));
  EXPECT_EQ(net.stats().messages_delivered + net.stats().messages_dropped,
            static_cast<std::uint64_t>(kN));
}

TEST(Network, PartitionsCutCrossGroupTraffic) {
  sim::Simulator sim;
  SimNetwork net(sim, fast_network());
  int a_received = 0, b_received = 0;
  net.attach(0, [&](const Message&) { ++a_received; });
  net.attach(1, [&](const Message&) { ++b_received; });
  net.set_partition_group(0, 1);  // node 0 isolated from group 0
  net.send(0, 1, Probe{1, {}});
  net.send(1, 0, Probe{2, {}});
  sim.run();
  EXPECT_EQ(a_received + b_received, 0);

  net.heal_partitions();
  net.send(0, 1, Probe{3, {}});
  sim.run();
  EXPECT_EQ(b_received, 1);
}

TEST(Network, FilterDropsSelectedLinks) {
  sim::Simulator sim;
  SimNetwork net(sim, fast_network());
  int received = 0;
  net.attach(1, [&](const Message&) { ++received; });
  net.attach(2, [&](const Message&) { ++received; });
  net.set_filter([](NodeId from, NodeId to) {
    return !(from == 0 && to == 1);  // adversary cuts 0 -> 1 only
  });
  net.send(0, 1, Probe{1, {}});
  net.send(0, 2, Probe{2, {}});
  sim.run();
  EXPECT_EQ(received, 1);
  net.set_filter(nullptr);
  net.send(0, 1, Probe{3, {}});
  sim.run();
  EXPECT_EQ(received, 2);
}

TEST(Network, DelayPolicyPostponesDelivery) {
  sim::Simulator sim;
  NetworkOptions opt;
  opt.min_latency = 0.01;
  opt.mean_extra_latency = 0.0;
  SimNetwork net(sim, opt);
  double delivered_at = -1.0;
  net.attach(1, [&](const Message&) { delivered_at = sim.now(); });
  net.set_delay_policy([](NodeId, NodeId) { return 5.0; });
  net.send(0, 1, Probe{1, {}});
  sim.run();
  EXPECT_GE(delivered_at, 5.01);
}

TEST(Network, BroadcastReachesEveryoneButSender) {
  sim::Simulator sim;
  SimNetwork net(sim, fast_network());
  std::vector<int> hits(4, 0);
  for (NodeId n = 0; n < 4; ++n) {
    net.attach(n, [&hits, n](const Message&) { ++hits[n]; });
  }
  net.broadcast(2, Probe{0, "all"});
  sim.run();
  EXPECT_EQ(hits[0], 1);
  EXPECT_EQ(hits[1], 1);
  EXPECT_EQ(hits[2], 0);
  EXPECT_EQ(hits[3], 1);
}

TEST(Network, BytesAccounting) {
  sim::Simulator sim;
  SimNetwork net(sim, fast_network());
  net.attach(1, [](const Message&) {});
  net.send(0, 1, Probe{1, {}}, 1000);
  net.send(0, 1, Probe{2, {}}, 24);
  sim.run();
  EXPECT_EQ(net.stats().bytes_sent, 1024u);
  net.reset_stats();
  EXPECT_EQ(net.stats().bytes_sent, 0u);
}

TEST(Gossip, FloodReachesEveryNodeExactlyOnce) {
  sim::Simulator sim;
  SimNetwork net(sim, fast_network());
  std::vector<NodeId> nodes;
  for (NodeId n = 0; n < 20; ++n) nodes.push_back(n);
  std::vector<int> deliveries(nodes.size(), 0);
  GossipOverlay overlay(net, nodes, 4, 7,
                        [&](NodeId node, const GossipItem&) {
                          ++deliveries[node];
                        });
  GossipItem item;
  item.id = crypto::sha256("item-1");
  overlay.publish(5, item);
  sim.run();
  for (std::size_t n = 0; n < nodes.size(); ++n) {
    EXPECT_EQ(deliveries[n], 1) << "node " << n;
    EXPECT_TRUE(overlay.has_seen(static_cast<NodeId>(n), item.id));
  }
}

TEST(Gossip, DuplicatePublishIsDeduplicated) {
  sim::Simulator sim;
  SimNetwork net(sim, fast_network());
  std::vector<NodeId> nodes = {0, 1, 2, 3};
  int total = 0;
  GossipOverlay overlay(net, nodes, 2, 8,
                        [&](NodeId, const GossipItem&) { ++total; });
  GossipItem item;
  item.id = crypto::sha256("dup");
  overlay.publish(0, item);
  overlay.publish(1, item);  // concurrent second origin
  sim.run();
  EXPECT_EQ(total, 4);  // once per node despite two origins
}

TEST(Gossip, DistinctItemsBothPropagate) {
  sim::Simulator sim;
  SimNetwork net(sim, fast_network());
  std::vector<NodeId> nodes = {0, 1, 2, 3, 4, 5};
  int total = 0;
  GossipOverlay overlay(net, nodes, 3, 9,
                        [&](NodeId, const GossipItem&) { ++total; });
  GossipItem a, b;
  a.id = crypto::sha256("a");
  b.id = crypto::sha256("b");
  overlay.publish(0, a);
  overlay.publish(3, b);
  sim.run();
  EXPECT_EQ(total, 12);
}

TEST(Gossip, NeighboursAreValidNodes) {
  sim::Simulator sim;
  SimNetwork net(sim, fast_network());
  std::vector<NodeId> nodes = {0, 1, 2, 3, 4, 5, 6, 7};
  GossipOverlay overlay(net, nodes, 3, 10,
                        [](NodeId, const GossipItem&) {});
  for (const NodeId n : nodes) {
    for (const NodeId neighbour : overlay.neighbours(n)) {
      EXPECT_NE(neighbour, n);
      EXPECT_LT(neighbour, nodes.size());
    }
    EXPECT_GE(overlay.neighbours(n).size(), 1u);
  }
}

}  // namespace
}  // namespace findep::net
