// Extension features: component-aware committee caps, proactive recovery,
// and the selfish-mining baseline.
#include <gtest/gtest.h>

#include <cmath>

#include "committee/diversity_aware.h"
#include "config/sampler.h"
#include "diversity/manager.h"
#include "faults/recovery.h"
#include "nakamoto/selfish.h"
#include "support/assert.h"

namespace findep {
namespace {

// --- component-aware committee caps --------------------------------------

struct CommitteeFixture {
  crypto::KeyRegistry crypto_registry;
  committee::StakeRegistry stake;
  config::ComponentCatalog catalog = config::standard_catalog();

  void add(const config::ReplicaConfiguration& cfg, double power) {
    const auto keys = crypto::KeyPair::derive(4000 + stake.size());
    stake.add("p" + std::to_string(stake.size()), power, cfg, true,
              keys.public_key());
  }
  [[nodiscard]] std::vector<committee::ParticipantId> everyone() const {
    std::vector<committee::ParticipantId> all;
    for (committee::ParticipantId i = 0; i < stake.size(); ++i) {
      all.push_back(i);
    }
    return all;
  }
};

TEST(ComponentCap, BoundsSharedComponentExposure) {
  // 4 distinct configurations, but two of them share one OS. The config
  // cap alone leaves that OS at 50%; the component cap pushes it to 1/3.
  CommitteeFixture f;
  config::ConfigurationSampler sampler(f.catalog, config::SamplerOptions{});
  auto configs = sampler.distinct_configurations(4);
  const auto shared_os =
      *configs[0].component(config::ComponentKind::kOperatingSystem);
  configs[1].set(f.catalog, shared_os);
  for (const auto& cfg : configs) f.add(cfg, 1.0);

  committee::SelectionPolicy config_only;
  config_only.per_config_cap = 0.30;
  const committee::Committee loose =
      committee::form_committee(f.stake, f.everyone(), config_only);
  EXPECT_GT(loose.worst_component_exposure, 0.45);

  committee::SelectionPolicy strict = config_only;
  strict.per_component_cap = 1.0 / 3.0;
  const committee::Committee tight =
      committee::form_committee(f.stake, f.everyone(), strict);
  // The cap is enforced within the documented 0.1% slack.
  EXPECT_LE(tight.worst_component_exposure, (1.0 / 3.0) * 1.002);
  EXPECT_LT(tight.admitted_fraction, loose.admitted_fraction + 1e-12);
  EXPECT_EQ(tight.members.size(), 4u);  // scaled, not excluded
}

TEST(ComponentCap, UnsatisfiableCapReportsHonestly) {
  // Every member shares the same network stack: no scaling can push that
  // component below 100%. The committee must not collapse to zero.
  CommitteeFixture f;
  config::ConfigurationSampler sampler(f.catalog, config::SamplerOptions{});
  auto configs = sampler.distinct_configurations(4);
  const auto shared =
      *configs[0].component(config::ComponentKind::kNetworkStack);
  for (auto& cfg : configs) cfg.set(f.catalog, shared);
  for (const auto& cfg : configs) f.add(cfg, 1.0);

  committee::SelectionPolicy policy;
  policy.per_component_cap = 0.25;
  const committee::Committee c =
      committee::form_committee(f.stake, f.everyone(), policy);
  EXPECT_EQ(c.members.size(), 4u);
  EXPECT_GT(c.total_weight, 0.5);  // not collapsed
  EXPECT_NEAR(c.worst_component_exposure, 1.0, 1e-9);  // reported truth
}

TEST(ComponentCap, NoOpWhenAlreadyDiverse) {
  CommitteeFixture f;
  config::ConfigurationSampler sampler(f.catalog, config::SamplerOptions{});
  for (const auto& cfg : sampler.distinct_configurations(4)) {
    f.add(cfg, 1.0);
  }
  committee::SelectionPolicy policy;
  policy.per_component_cap = 0.5;  // TEE axis has 4 variants over 4 members
  const committee::Committee c =
      committee::form_committee(f.stake, f.everyone(), policy);
  EXPECT_NEAR(c.admitted_fraction, 1.0, 1e-9);
  EXPECT_LE(c.worst_component_exposure, 0.5 + 1e-9);
}

// --- proactive recovery -----------------------------------------------

std::vector<diversity::ReplicaRecord> recovery_population() {
  const config::ComponentCatalog catalog = config::standard_catalog();
  std::vector<diversity::ReplicaRecord> population;
  for (const auto& cfg :
       diversity::LazarusStyleAssigner(catalog).assign(8)) {
    population.push_back(diversity::ReplicaRecord{cfg, 1.0, true});
  }
  return population;
}

faults::VulnerabilityCatalog one_vuln(const config::ComponentId component) {
  faults::VulnerabilityCatalog catalog;
  faults::Vulnerability v;
  v.component = component;
  v.discovered_at = 10.0;
  v.patched_at = 20.0;
  catalog.add(v);
  return catalog;
}

TEST(Recovery, BoundsDeployLagByPeriod) {
  const auto population = recovery_population();
  const auto os = *population[0].configuration.component(
      config::ComponentKind::kOperatingSystem);
  const auto vulns = one_vuln(os);

  faults::PatchLagModel patching;
  patching.mean_deploy_lag_days = 1e9;  // replicas never patch alone

  // Without recovery the exposure runs to the horizon.
  const auto lazy =
      faults::compute_exposure(population, vulns, 100.0, 201, patching);
  EXPECT_GT(lazy.points.back().exposed_fraction, 0.0);

  // Weekly recovery ends it within one period of the patch release.
  faults::RecoverySchedule weekly;
  weekly.period_days = 7.0;
  const auto recovered = faults::compute_exposure_with_recovery(
      population, vulns, 100.0, 201, patching, weekly);
  EXPECT_DOUBLE_EQ(recovered.points.back().exposed_fraction, 0.0);
  for (const auto& point : recovered.points) {
    if (point.t > 20.0 + 7.0 + 1.0) {
      EXPECT_DOUBLE_EQ(point.exposed_fraction, 0.0) << point.t;
    }
  }
}

TEST(Recovery, NoPrePatchBenefit) {
  // Recovery cannot end exposure while the vulnerability is unpatched
  // (the fresh image still contains the flawed component).
  const auto population = recovery_population();
  const auto os = *population[0].configuration.component(
      config::ComponentKind::kOperatingSystem);
  const auto vulns = one_vuln(os);
  faults::PatchLagModel patching;
  patching.mean_deploy_lag_days = 0.001;  // immediate patch adoption
  faults::RecoverySchedule daily;
  daily.period_days = 1.0;
  const auto timeline = faults::compute_exposure_with_recovery(
      population, vulns, 40.0, 401, patching, daily);
  // Exposure exists inside the zero-day window [10, 20) despite daily
  // recovery.
  bool exposed_mid_window = false;
  for (const auto& point : timeline.points) {
    if (point.t > 11.0 && point.t < 19.0 && point.exposed_fraction > 0.0) {
      exposed_mid_window = true;
    }
  }
  EXPECT_TRUE(exposed_mid_window);
}

TEST(Recovery, ShorterPeriodsNeverIncreaseExposure) {
  const config::ComponentCatalog catalog = config::standard_catalog();
  faults::SynthesisOptions synth;
  synth.mean_vulns_per_component = 1.0;
  synth.horizon_days = 200.0;
  synth.mean_patch_latency_days = 20.0;
  const auto vulns = faults::synthesize_catalog(catalog, synth);
  const auto population = recovery_population();
  faults::PatchLagModel patching;
  patching.mean_deploy_lag_days = 30.0;

  double prev_peak = 1.1;
  double prev_above = 1.1;
  for (const double period : {1000.0, 90.0, 30.0, 7.0}) {
    faults::RecoverySchedule schedule;
    schedule.period_days = period;
    const auto timeline = faults::compute_exposure_with_recovery(
        population, vulns, 200.0, 201, patching, schedule);
    EXPECT_LE(timeline.peak_exposed_fraction, prev_peak + 1e-9) << period;
    EXPECT_LE(timeline.time_above_bft_threshold, prev_above + 1e-9)
        << period;
    prev_peak = timeline.peak_exposed_fraction;
    prev_above = timeline.time_above_bft_threshold;
  }
}

// --- selfish mining -----------------------------------------------------

TEST(SelfishMining, ThresholdFormula) {
  EXPECT_NEAR(nakamoto::selfish_mining_threshold(0.0), 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(nakamoto::selfish_mining_threshold(1.0), 0.0, 1e-12);
  EXPECT_NEAR(nakamoto::selfish_mining_threshold(0.5), 0.25, 1e-12);
}

TEST(SelfishMining, UnprofitableBelowThresholdGammaZero) {
  support::Rng rng(1);
  const auto result =
      nakamoto::simulate_selfish_mining(0.25, 0.0, 2'000'000, rng);
  EXPECT_LT(result.revenue_share(), 0.25);
  EXPECT_LT(result.advantage(), 0.0);
}

TEST(SelfishMining, ProfitableAboveThresholdGammaZero) {
  support::Rng rng(2);
  const auto result =
      nakamoto::simulate_selfish_mining(0.40, 0.0, 2'000'000, rng);
  EXPECT_GT(result.revenue_share(), 0.40);
}

TEST(SelfishMining, GammaLowersTheBar) {
  // α = 0.3 loses at γ = 0 but wins at γ = 1 (threshold 1/3 vs 0).
  support::Rng rng(3);
  const auto shy =
      nakamoto::simulate_selfish_mining(0.30, 0.0, 2'000'000, rng);
  const auto strong =
      nakamoto::simulate_selfish_mining(0.30, 1.0, 2'000'000, rng);
  EXPECT_LT(shy.revenue_share(), 0.30);
  EXPECT_GT(strong.revenue_share(), 0.30);
}

TEST(SelfishMining, MatchesEyalSirerClosedFormAtKnownPoint) {
  // Eyal–Sirer give R(α=1/3, γ=0) = 1/3 (the break-even point).
  support::Rng rng(4);
  const auto result = nakamoto::simulate_selfish_mining(1.0 / 3.0, 0.0,
                                                        4'000'000, rng);
  EXPECT_NEAR(result.revenue_share(), 1.0 / 3.0, 0.004);
}

TEST(SelfishMining, RevenueMonotoneInAlpha) {
  support::Rng rng(5);
  double prev = -1.0;
  for (const double alpha : {0.1, 0.2, 0.3, 0.4, 0.45}) {
    const auto result =
        nakamoto::simulate_selfish_mining(alpha, 0.5, 1'000'000, rng);
    EXPECT_GT(result.revenue_share(), prev) << alpha;
    prev = result.revenue_share();
  }
}

TEST(SelfishMining, RejectsMajorityAttacker) {
  support::Rng rng(6);
  EXPECT_THROW(
      (void)nakamoto::simulate_selfish_mining(0.5, 0.0, 1000, rng),
      support::ContractViolation);
}

}  // namespace
}  // namespace findep
