// DiversityAnalyzer: population → report, per-axis entropy, blast radii.
#include <gtest/gtest.h>

#include <utility>

#include "config/sampler.h"
#include "diversity/analyzer.h"
#include "diversity/metrics.h"
#include "support/assert.h"

namespace findep::diversity {
namespace {

std::vector<ReplicaRecord> distinct_population(std::size_t n,
                                               double power_each = 1.0) {
  const config::ComponentCatalog catalog = config::standard_catalog();
  config::ConfigurationSampler sampler(catalog, config::SamplerOptions{});
  std::vector<ReplicaRecord> population;
  for (const auto& cfg : sampler.distinct_configurations(n)) {
    population.push_back(ReplicaRecord{cfg, power_each, true});
  }
  return population;
}

TEST(Analyzer, RejectsEmptyOrPowerlessPopulations) {
  EXPECT_THROW((void)DiversityAnalyzer::analyze({}),
               support::ContractViolation);
  auto population = distinct_population(4, 0.0);
  EXPECT_THROW((void)DiversityAnalyzer::analyze(population),
               support::ContractViolation);
}

TEST(Analyzer, UniformDistinctPopulationReport) {
  const auto population = distinct_population(8);
  const DiversityReport report = DiversityAnalyzer::analyze(population);
  EXPECT_EQ(report.replica_count, 8u);
  EXPECT_DOUBLE_EQ(report.total_power, 8.0);
  EXPECT_EQ(report.support, 8u);
  EXPECT_NEAR(report.entropy_bits, 3.0, 1e-9);
  EXPECT_NEAR(report.evenness, 1.0, 1e-9);
  EXPECT_NEAR(report.effective_configs, 8.0, 1e-6);
  EXPECT_DOUBLE_EQ(report.dominance, 0.125);
  EXPECT_DOUBLE_EQ(report.attested_fraction, 1.0);
  EXPECT_EQ(report.bft.min_faults, 3u);       // ⌊8/3⌋+1
  EXPECT_EQ(report.nakamoto.min_faults, 5u);  // 8/2+1
}

TEST(Analyzer, MonocultureCollapsesToOneConfig) {
  const config::ComponentCatalog catalog = config::monoculture_catalog();
  config::ConfigurationSampler sampler(
      catalog, config::SamplerOptions{.zipf_exponent = 0.0,
                                      .attestable_fraction = 1.0});
  support::Rng rng(1);
  std::vector<ReplicaRecord> population;
  for (const auto& cfg : sampler.sample_population(rng, 20)) {
    population.push_back(ReplicaRecord{cfg, 1.0, true});
  }
  const DiversityReport report = DiversityAnalyzer::analyze(population);
  EXPECT_EQ(report.support, 1u);
  EXPECT_DOUBLE_EQ(report.entropy_bits, 0.0);
  EXPECT_TRUE(report.bft.single_point_of_failure);
  ASSERT_TRUE(report.worst_overall.has_value());
  EXPECT_DOUBLE_EQ(report.worst_overall->power_fraction, 1.0);
}

TEST(Analyzer, ComponentBlastRadiusExceedsConfigDominance) {
  // Two configs that share an OS: the per-component blast radius must see
  // the union even though configurations differ.
  const config::ComponentCatalog catalog = config::standard_catalog();
  const auto os = catalog.of_kind(config::ComponentKind::kOperatingSystem);
  const auto lib = catalog.of_kind(config::ComponentKind::kCryptoLibrary);

  config::ReplicaConfiguration a, b;
  for (const auto kind : config::all_component_kinds()) {
    const auto choices = catalog.of_kind(kind);
    if (choices.empty()) continue;
    a.set(catalog, choices[0]);
    b.set(catalog, choices[0]);
  }
  b.set(catalog, lib[1]);  // differs only in crypto library
  ASSERT_NE(a.digest(), b.digest());

  const std::vector<ReplicaRecord> population = {
      ReplicaRecord{a, 1.0, true}, ReplicaRecord{b, 1.0, true}};
  const DiversityReport report = DiversityAnalyzer::analyze(population);
  EXPECT_EQ(report.support, 2u);
  EXPECT_DOUBLE_EQ(report.dominance, 0.5);  // config level
  ASSERT_TRUE(report.worst_overall.has_value());
  // The shared OS affects 100% of power.
  EXPECT_DOUBLE_EQ(report.worst_overall->power_fraction, 1.0);
  EXPECT_EQ(report.worst_overall->replicas, 2u);
  (void)os;
}

TEST(Analyzer, PerKindEntropyIsZeroForSharedAxis) {
  const config::ComponentCatalog catalog = config::standard_catalog();
  auto population = distinct_population(4);
  // Force every replica onto one wallet.
  const auto wallet = catalog.of_kind(config::ComponentKind::kWallet)[0];
  for (auto& rec : population) {
    rec.configuration.set(catalog, wallet);
  }
  const DiversityReport report = DiversityAnalyzer::analyze(population);
  EXPECT_NEAR(report.kind_entropy_bits.at(config::ComponentKind::kWallet),
              0.0, 1e-12);
  EXPECT_GT(report.kind_entropy_bits.at(
                config::ComponentKind::kOperatingSystem),
            1.9);
}

TEST(Analyzer, AttestedFractionIsPowerWeighted) {
  auto population = distinct_population(4);
  population[0].attested = false;
  population[0].power = 7.0;  // 7 of 10 total
  const DiversityReport report = DiversityAnalyzer::analyze(population);
  EXPECT_NEAR(report.attested_fraction, 0.3, 1e-12);
}

TEST(Analyzer, DistributionOfSkipsUnattestedWhenAsked) {
  auto population = distinct_population(4);
  population[2].attested = false;
  const ConfigDistribution all =
      DiversityAnalyzer::distribution_of(population, true);
  const ConfigDistribution attested_only =
      DiversityAnalyzer::distribution_of(population, false);
  EXPECT_EQ(all.support_size(), 4u);
  EXPECT_EQ(attested_only.support_size(), 3u);
}

TEST(Analyzer, ReportRendersHumanReadably) {
  const config::ComponentCatalog catalog = config::standard_catalog();
  const DiversityReport report =
      DiversityAnalyzer::analyze(distinct_population(8));
  const std::string text = report.to_string(&catalog);
  EXPECT_NE(text.find("8 replicas"), std::string::npos);
  EXPECT_NE(text.find("H="), std::string::npos);
  EXPECT_NE(text.find("worst single component"), std::string::npos);
  // Without a catalog it still renders ids.
  EXPECT_NE(report.to_string().find("component#"), std::string::npos);
}

TEST(Analyzer, WorstPerKindCoversPresentKinds) {
  const DiversityReport report =
      DiversityAnalyzer::analyze(distinct_population(6));
  // All 7 kinds present (distinct_configurations sets every kind).
  EXPECT_EQ(report.worst_per_kind.size(), config::kComponentKindCount);
  for (const ComponentExposure& exp : report.worst_per_kind) {
    EXPECT_GT(exp.power_fraction, 0.0);
    EXPECT_LE(exp.power_fraction, 1.0);
    EXPECT_GE(exp.replicas, 1u);
  }
}

TEST(AnalyzerCache, MemoizesIdenticalPopulations) {
  DiversityAnalyzer::reset_cache();
  const auto population = distinct_population(8);

  const DiversityReport first = DiversityAnalyzer::analyze(population);
  auto stats = DiversityAnalyzer::cache_stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 1u);

  // A copy of the population (same digests/powers/flags) must hit.
  const auto copy = population;
  const DiversityReport second = DiversityAnalyzer::analyze(copy);
  stats = DiversityAnalyzer::cache_stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);

  // Cached and computed reports agree exactly.
  EXPECT_EQ(first.entropy_bits, second.entropy_bits);
  EXPECT_EQ(first.support, second.support);
  EXPECT_EQ(first.bft.min_faults, second.bft.min_faults);
  ASSERT_TRUE(second.worst_overall.has_value());
  EXPECT_EQ(first.worst_overall->power_fraction,
            second.worst_overall->power_fraction);
}

TEST(AnalyzerCache, DistinguishesPowerAttestationAndOrder) {
  DiversityAnalyzer::reset_cache();
  auto population = distinct_population(4);
  (void)DiversityAnalyzer::analyze(population);

  auto repowered = population;
  repowered.front().power = 2.0;
  (void)DiversityAnalyzer::analyze(repowered);

  auto unattested = population;
  unattested.front().attested = false;
  (void)DiversityAnalyzer::analyze(unattested);

  auto reordered = population;
  std::swap(reordered.front(), reordered.back());
  (void)DiversityAnalyzer::analyze(reordered);

  const auto stats = DiversityAnalyzer::cache_stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 4u);
}

}  // namespace
}  // namespace findep::diversity
