// Chained HotStuff behind the protocol axis: happy path, the pipeline's
// rotation edges (leader crash mid-chain, a certified-but-uncommitted
// batch surviving rotation, equivocation), and the linear-vs-quadratic
// message crossover against PBFT. Safety is asserted via log
// prefix-consistency, exactly as the PBFT suite does.
#include <gtest/gtest.h>

#include <cstdint>

#include "bft/cluster.h"
#include "support/assert.h"

namespace findep::bft {
namespace {

ClusterOptions fast_options(std::uint64_t seed = 1) {
  ClusterOptions opt;
  opt.network.min_latency = 0.005;
  opt.network.mean_extra_latency = 0.01;
  opt.replica.pacemaker_timeout = 0.5;
  opt.replica.batch_timeout = 0.05;
  opt.protocol = replication::Protocol::kHotStuff;
  opt.seed = seed;
  return opt;
}

/// Honest replicas' pacemaker expiries, summed.
std::uint64_t total_timeouts(BftCluster& cluster,
                             const std::vector<Behavior>& behaviors) {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    if (i < behaviors.size() && behaviors[i] != Behavior::kHonest) continue;
    total += cluster.hotstuff(i).timeouts_fired();
  }
  return total;
}

TEST(HotStuff, HappyPathExecutesAndAgrees) {
  BftCluster cluster(4, fast_options());
  for (int i = 0; i < 5; ++i) cluster.submit();
  EXPECT_TRUE(cluster.run_until_executed(5, 30.0));
  EXPECT_TRUE(cluster.logs_consistent());
  EXPECT_GT(cluster.mean_latency(), 0.0);
  // A clean run needs no pacemaker intervention.
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    EXPECT_EQ(cluster.hotstuff(i).timeouts_fired(), 0u) << i;
  }
}

class HotStuffSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(HotStuffSizes, ExecutesAcrossClusterSizes) {
  BftCluster cluster(GetParam(), fast_options(GetParam()));
  for (int i = 0; i < 3; ++i) cluster.submit();
  EXPECT_TRUE(cluster.run_until_executed(3, 60.0)) << GetParam();
  EXPECT_TRUE(cluster.logs_consistent());
}

INSTANTIATE_TEST_SUITE_P(Sizes, HotStuffSizes,
                         ::testing::Values(4, 7, 10));

TEST(HotStuff, LeaderCrashMidChainTimesOutOntoNextLeader) {
  // Commit a first wave, then crash a rotation slot outright. The next
  // leaders extend the highest QC across the dead replica's rounds: with
  // the two-chain rule a run of three consecutive live leaders commits,
  // and n = 4 with one crash always has one.
  BftCluster cluster(4, fast_options(7));
  for (int i = 0; i < 4; ++i) cluster.submit();
  ASSERT_TRUE(cluster.run_until_executed(4, 30.0));
  const SeqNum before = cluster.hotstuff(0).committed_height();
  ASSERT_GT(before, 0u);

  cluster.network().set_node_down(2, true);
  for (int i = 0; i < 6; ++i) cluster.submit();
  // All 10 requests execute on the live replicas despite the dead
  // rotation slot (replica 2's rounds burn a timeout each lap). The dead
  // replica itself can never catch up, so progress is asserted via
  // completed requests, not the all-honest-replicas bar.
  cluster.run_for(120.0);
  EXPECT_EQ(cluster.completed_requests(), 10u);
  EXPECT_TRUE(cluster.logs_consistent());
  bool timed_out = false;
  SeqNum after = 0;
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    if (i == 2) continue;
    timed_out |= cluster.hotstuff(i).timeouts_fired() > 0;
    after = std::max(after, cluster.hotstuff(i).committed_height());
  }
  EXPECT_TRUE(timed_out);
  EXPECT_GT(after, before);  // the chain kept extending past the crash
}

TEST(HotStuff, CertifiedBatchSurvivesRotationAcrossPartition) {
  // Wedge a minority (two of seven, including upcoming leaders) behind a
  // partition while it still holds a pending batch: the majority side
  // keeps rotating and commits that batch without them, the wedge times
  // out round after round, and after the heal its stale timeouts (which
  // carry an outdated high-QC) draw a catch-up QC notice from the
  // quiescent majority — the batch the wedge was cut off from commits
  // for them too instead of forking or vanishing.
  BftCluster cluster(7, fast_options(11));
  for (int i = 0; i < 3; ++i) cluster.submit();
  ASSERT_TRUE(cluster.run_until_executed(3, 30.0));

  for (int i = 0; i < 6; ++i) cluster.submit();  // lands on every replica
  cluster.network().set_partition_group(1, 1);
  cluster.network().set_partition_group(2, 1);
  cluster.run_for(40.0);  // majority commits the batch; the wedge starves

  cluster.network().heal_partitions();
  EXPECT_TRUE(cluster.run_until_executed(9, 120.0));
  EXPECT_TRUE(cluster.logs_consistent());
  // Every replica — the wedged minority included — converged on the full
  // log (possibly via state transfer rather than block replay).
  EXPECT_EQ(cluster.completed_requests(), 9u);
  EXPECT_EQ(cluster.stranded_replicas(), 0u);
}

TEST(HotStuff, EquivocatingLeaderRejectedByQcRules) {
  // Replica 1 (leader of round 1) proposes conflicting blocks to the two
  // halves of the cluster. Honest votes split, neither digest reaches
  // quorum weight, the round times out onto the next leader — and no
  // forged request (ids carry the 2^63 marker bit) ever executes.
  std::vector<Behavior> behaviors(4, Behavior::kHonest);
  behaviors[1] = Behavior::kEquivocate;
  BftCluster cluster(4, fast_options(13), behaviors);
  for (int i = 0; i < 4; ++i) cluster.submit();
  EXPECT_TRUE(cluster.run_until_executed(4, 90.0));
  EXPECT_TRUE(cluster.logs_consistent());
  EXPECT_GT(total_timeouts(cluster, behaviors), 0u);
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    if (behaviors[i] != Behavior::kHonest) continue;
    for (const auto& entry : cluster.node(i).executed()) {
      EXPECT_EQ(entry.request.id & 0x8000000000000000ULL, 0u)
          << "forged request executed on replica " << i;
    }
  }
}

TEST(HotStuff, LinearMessagingBeatsPbftQuadraticAtN25) {
  // The protocol-axis acceptance claim: per committed request, HotStuff's
  // vote-to-next-leader pattern costs O(n) messages where PBFT's
  // all-to-all prepare/commit costs O(n²). At n = 25 the gap is not
  // subtle.
  const std::size_t kN = 25;
  const int kRequests = 8;

  auto run = [&](replication::Protocol protocol) {
    ClusterOptions opt = fast_options(17);
    opt.protocol = protocol;
    BftCluster cluster(kN, opt);
    for (int i = 0; i < kRequests; ++i) cluster.submit();
    EXPECT_TRUE(cluster.run_until_executed(kRequests, 120.0));
    EXPECT_TRUE(cluster.logs_consistent());
    return static_cast<double>(
               cluster.network().stats().messages_delivered) /
           static_cast<double>(cluster.completed_requests());
  };

  const double hotstuff = run(replication::Protocol::kHotStuff);
  const double pbft = run(replication::Protocol::kPbft);
  EXPECT_LT(hotstuff, pbft);
  // The crossover is structural, not marginal: expect at least 2x.
  EXPECT_LT(2.0 * hotstuff, pbft);
}

}  // namespace
}  // namespace findep::bft
