// SHA-256 / HMAC against official vectors; simulated signatures and VRF.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "crypto/cost.h"
#include "crypto/hmac.h"
#include "crypto/keys.h"
#include "crypto/sha256.h"
#include "crypto/vrf.h"
#include "support/assert.h"
#include "support/rng.h"

namespace findep::crypto {
namespace {

std::vector<std::uint8_t> bytes_of(std::string_view s) {
  return {s.begin(), s.end()};
}

// --- SHA-256 (FIPS 180-4 / NIST CAVP vectors) -------------------------------

TEST(Sha256, EmptyString) {
  EXPECT_EQ(sha256("").to_hex(),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(sha256("abc").to_hex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(sha256("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")
                .to_hex(),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, ExactBlockBoundary) {
  // 64 bytes: exercises the padding path that adds a full extra block.
  const std::string block(64, 'a');
  EXPECT_EQ(sha256(block).to_hex(),
            "ffe054fe7ae0cb6dc65c3af9b61d5209f439851db43d0ba5997337df154668eb");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(h.finish().to_hex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  const std::string msg = "the quick brown fox jumps over the lazy dog";
  for (std::size_t split = 0; split <= msg.size(); ++split) {
    Sha256 h;
    h.update(std::string_view(msg).substr(0, split));
    h.update(std::string_view(msg).substr(split));
    EXPECT_EQ(h.finish(), sha256(msg)) << "split=" << split;
  }
}

TEST(Sha256, ContextReuseRejected) {
  Sha256 h;
  (void)h.update("x").finish();
  EXPECT_THROW((void)h.finish(), support::ContractViolation);
}

TEST(Sha256, UpdateU64LittleEndian) {
  Sha256 a;
  a.update_u64(0x0102030405060708ULL);
  const std::array<std::uint8_t, 8> le = {0x08, 0x07, 0x06, 0x05,
                                          0x04, 0x03, 0x02, 0x01};
  EXPECT_EQ(a.finish(), sha256(std::span<const std::uint8_t>(le)));
}

TEST(Sha256, DoubleHash) {
  const auto data = bytes_of("hello");
  const Digest once = sha256(std::span<const std::uint8_t>(data));
  EXPECT_EQ(sha256d(data), sha256(once.bytes));
}

TEST(Digest, HexRoundTrip) {
  const Digest d = sha256("roundtrip");
  EXPECT_EQ(Digest::from_hex(d.to_hex()), d);
}

TEST(Digest, FromHexRejectsMalformed) {
  EXPECT_THROW((void)Digest::from_hex("abc"), support::ContractViolation);
  std::string bad(64, 'g');
  EXPECT_THROW((void)Digest::from_hex(bad), support::ContractViolation);
}

TEST(Digest, Prefix64BigEndian) {
  Digest d{};
  d.bytes[0] = 0x01;
  d.bytes[7] = 0xff;
  EXPECT_EQ(d.prefix64(), 0x01000000000000ffULL);
}

TEST(Digest, OrderingAndHash) {
  const Digest a = sha256("a");
  const Digest b = sha256("b");
  EXPECT_NE(a, b);
  EXPECT_TRUE(a < b || b < a);
  EXPECT_NE(std::hash<Digest>{}(a), std::hash<Digest>{}(b));
}

// --- HMAC-SHA256 (RFC 4231 vectors) --------------------------------------

TEST(Hmac, Rfc4231Case1) {
  const std::vector<std::uint8_t> key(20, 0x0b);
  EXPECT_EQ(hmac_sha256(key, "Hi There").to_hex(),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(Hmac, Rfc4231Case2) {
  const auto key = bytes_of("Jefe");
  EXPECT_EQ(hmac_sha256(key, "what do ya want for nothing?").to_hex(),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(Hmac, Rfc4231Case3) {
  const std::vector<std::uint8_t> key(20, 0xaa);
  const std::vector<std::uint8_t> data(50, 0xdd);
  EXPECT_EQ(hmac_sha256(key, data).to_hex(),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(Hmac, LongKeyIsPreHashed) {
  const std::vector<std::uint8_t> key(131, 0xaa);
  EXPECT_EQ(
      hmac_sha256(key, "Test Using Larger Than Block-Size Key - Hash Key First")
          .to_hex(),
      "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(Hmac, DifferentKeysDiffer) {
  const auto k1 = bytes_of("key1");
  const auto k2 = bytes_of("key2");
  EXPECT_NE(hmac_sha256(k1, "msg"), hmac_sha256(k2, "msg"));
}

// --- Signatures --------------------------------------------------------

TEST(Keys, SignVerifyRoundTrip) {
  support::Rng rng(1);
  const KeyPair keys = KeyPair::generate(rng);
  KeyRegistry registry;
  EXPECT_TRUE(registry.enroll(keys));
  const Signature sig = keys.sign("hello world");
  EXPECT_TRUE(registry.verify(keys.public_key(), "hello world", sig));
}

TEST(Keys, VerifyRejectsWrongMessage) {
  support::Rng rng(2);
  const KeyPair keys = KeyPair::generate(rng);
  KeyRegistry registry;
  registry.enroll(keys);
  const Signature sig = keys.sign("msg-a");
  EXPECT_FALSE(registry.verify(keys.public_key(), "msg-b", sig));
}

TEST(Keys, VerifyRejectsWrongSigner) {
  support::Rng rng(3);
  const KeyPair alice = KeyPair::generate(rng);
  const KeyPair mallory = KeyPair::generate(rng);
  KeyRegistry registry;
  registry.enroll(alice);
  registry.enroll(mallory);
  const Signature forged = mallory.sign("pay mallory");
  EXPECT_FALSE(registry.verify(alice.public_key(), "pay mallory", forged));
}

TEST(Keys, UnenrolledKeyNeverVerifies) {
  support::Rng rng(4);
  const KeyPair keys = KeyPair::generate(rng);
  KeyRegistry registry;
  EXPECT_FALSE(registry.is_enrolled(keys.public_key()));
  EXPECT_FALSE(
      registry.verify(keys.public_key(), "msg", keys.sign("msg")));
}

TEST(Keys, DeriveIsDeterministic) {
  const KeyPair a = KeyPair::derive(42);
  const KeyPair b = KeyPair::derive(42);
  const KeyPair c = KeyPair::derive(43);
  EXPECT_EQ(a.public_key(), b.public_key());
  EXPECT_NE(a.public_key(), c.public_key());
}

TEST(Keys, SignatureBindsToSigner) {
  // Same message, different keys -> different tags (no cross-key replay).
  const KeyPair a = KeyPair::derive(1);
  const KeyPair b = KeyPair::derive(2);
  EXPECT_NE(a.sign("m"), b.sign("m"));
}

TEST(Keys, EnrollIdempotentAndCollisionSafe) {
  const KeyPair a = KeyPair::derive(7);
  KeyRegistry registry;
  EXPECT_TRUE(registry.enroll(a));
  EXPECT_TRUE(registry.enroll(a));
  EXPECT_EQ(registry.size(), 1u);
}

// --- VRF ----------------------------------------------------------------

TEST(Vrf, DeterministicPerKeyAndInput) {
  const KeyPair keys = KeyPair::derive(11);
  const Digest input = sha256("round-1");
  const VrfOutput a = vrf_evaluate(keys, input);
  const VrfOutput b = vrf_evaluate(keys, input);
  EXPECT_EQ(a.value, b.value);
  EXPECT_EQ(a.proof, b.proof);
}

TEST(Vrf, VerifiesAgainstRegistry) {
  const KeyPair keys = KeyPair::derive(12);
  KeyRegistry registry;
  registry.enroll(keys);
  const Digest input = sha256("round-2");
  const VrfOutput out = vrf_evaluate(keys, input);
  EXPECT_TRUE(vrf_verify(registry, keys.public_key(), input, out));
}

TEST(Vrf, RejectsWrongInput) {
  const KeyPair keys = KeyPair::derive(13);
  KeyRegistry registry;
  registry.enroll(keys);
  const VrfOutput out = vrf_evaluate(keys, sha256("x"));
  EXPECT_FALSE(vrf_verify(registry, keys.public_key(), sha256("y"), out));
}

TEST(Vrf, UniquenessSelfChosenValueRejected) {
  // A malicious key holder signs a value it likes; verification must
  // reject because the oracle recomputes the true VRF value.
  const KeyPair keys = KeyPair::derive(14);
  KeyRegistry registry;
  registry.enroll(keys);
  const Digest input = sha256("round-3");
  VrfOutput forged = vrf_evaluate(keys, input);
  forged.value = sha256("a value I prefer");
  // Re-sign so the proof matches the forged value.
  forged.proof = keys.sign(Sha256{}
                               .update("findep/vrf-proof/v1")
                               .update(input.bytes)
                               .update(forged.value.bytes)
                               .finish());
  EXPECT_FALSE(vrf_verify(registry, keys.public_key(), input, forged));
}

TEST(Vrf, OutputsAreUniformish) {
  // Smoke check: mean of unit outputs over many keys near 0.5.
  double sum = 0.0;
  constexpr int kN = 2000;
  const Digest input = sha256("round-4");
  for (int i = 0; i < kN; ++i) {
    sum += vrf_evaluate(KeyPair::derive(static_cast<std::uint64_t>(i)),
                        input)
               .as_unit_double();
  }
  EXPECT_NEAR(sum / kN, 0.5, 0.03);
}

// --- crypto cost model (crypto/cost.h) --------------------------------------

TEST(CostModel, FreeIsTheAllZeroDefault) {
  const CostModel model;
  EXPECT_TRUE(model.is_free());
  EXPECT_TRUE(CostModel::free().is_free());
  EXPECT_EQ(CostModel::free().sign_seconds(), 0.0);
  EXPECT_EQ(CostModel::free().batch_verify_seconds(1000), 0.0);
}

TEST(CostModel, ModeledChargesSimulatedSeconds) {
  const CostModel model = CostModel::modeled();
  EXPECT_FALSE(model.is_free());
  EXPECT_DOUBLE_EQ(model.sign_seconds(), 50e-6);
  EXPECT_DOUBLE_EQ(model.verify_seconds(), 130e-6);
  // Batch verification beats k independent verifies for any quorum the
  // protocol batches (the entire point of the base + per-item split).
  EXPECT_LT(model.batch_verify_seconds(32), 32 * model.verify_seconds());
  EXPECT_DOUBLE_EQ(model.batch_verify_seconds(0), 20e-6);
}

TEST(CostModel, ParsesTheScenarioAxisValues) {
  EXPECT_TRUE(CostModel::parse("free").is_free());
  EXPECT_FALSE(CostModel::parse("modeled").is_free());
  EXPECT_THROW(CostModel::parse("ed25519"), std::invalid_argument);
  EXPECT_THROW(CostModel::parse(""), std::invalid_argument);
}

}  // namespace
}  // namespace findep::crypto
