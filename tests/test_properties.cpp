// Cross-cutting property sweeps over the diversity core: invariants that
// must hold for *every* distribution, checked over randomized inputs
// (TEST_P over seeds). These complement the example-based tests with the
// algebraic structure the paper's definitions rely on.
#include <gtest/gtest.h>

#include <cmath>

#include "config/sampler.h"
#include "diversity/manager.h"
#include "diversity/metrics.h"
#include "diversity/optimality.h"
#include "diversity/resilience.h"
#include "support/rng.h"

namespace findep::diversity {
namespace {

class PropertySweep : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  support::Rng rng_{GetParam() * 0x9e3779b97f4a7c15ULL + 1};

  std::vector<double> random_weights(std::size_t min_k = 2,
                                     std::size_t max_k = 40) {
    const std::size_t k =
        min_k + rng_.below(max_k - min_k + 1);
    std::vector<double> w(k);
    for (auto& x : w) x = rng_.uniform(0.001, 1.0);
    return w;
  }
};

TEST_P(PropertySweep, HillNumbersAreNonIncreasingInOrder) {
  const auto w = random_weights();
  double prev = hill_number(w, 0.0);
  for (const double q : {0.5, 1.0, 2.0, 4.0, 8.0}) {
    const double h = hill_number(w, q);
    EXPECT_LE(h, prev * (1.0 + 1e-9));
    EXPECT_GE(h, 1.0 - 1e-9);  // at least one effective configuration
    prev = h;
  }
}

TEST_P(PropertySweep, HillInfinityApproachesInverseDominance) {
  const auto w = random_weights();
  // ^∞D = 1 / max p_i; order 64 is a tight stand-in.
  EXPECT_NEAR(hill_number(w, 64.0), 1.0 / berger_parker(w),
              0.35 / berger_parker(w));
}

TEST_P(PropertySweep, EntropyBoundsBergerParker) {
  // H ≥ −log2(max p_i) is false in general, but H ≤ log2(1/p_max) + ...
  // The always-true direction: H(p) ≥ log2(1 / Σp_i²) ≥ log2(1/p_max)
  // fails too; the valid chain is Rényi ordering: H ≥ H_2 ≥ H_∞.
  const auto w = random_weights();
  const double h = shannon_entropy(w);
  const double h2 = renyi_entropy(w, 2.0);
  const double h_inf = -std::log2(berger_parker(w));
  EXPECT_GE(h, h2 - 1e-9);
  EXPECT_GE(h2, h_inf - 1e-9);
}

TEST_P(PropertySweep, WorstCaseCompromiseIsConcaveInJ) {
  // Adding the j-th largest share gains no more than the (j-1)-th did.
  const auto w = random_weights();
  double prev_gain = 1.1;
  double prev = 0.0;
  for (std::size_t j = 1; j <= w.size(); ++j) {
    const double now = worst_case_compromise(w, j);
    const double gain = now - prev;
    EXPECT_LE(gain, prev_gain + 1e-9) << j;
    prev_gain = gain;
    prev = now;
  }
}

TEST_P(PropertySweep, MinFaultsConsistentWithWorstCase) {
  // j* = min_faults_to_exceed(τ) iff worst_case(j*−1) ≤ τ < worst_case(j*).
  const auto w = random_weights();
  for (const double tau : {0.1, kBftThreshold, kNakamotoThreshold, 0.9}) {
    const std::size_t j = min_faults_to_exceed(w, tau);
    if (j <= w.size()) {
      EXPECT_GT(worst_case_compromise(w, j), tau);
    }
    if (j > 1 && j - 1 <= w.size()) {
      EXPECT_LE(worst_case_compromise(w, j - 1), tau + 1e-9);
    }
  }
}

TEST_P(PropertySweep, CappingNeverLowersEntropyOrResilience) {
  const auto w = random_weights();
  const ConfigDistribution dist = ConfigDistribution::from_shares(w);
  const double cap = rng_.uniform(0.05, 1.0);
  const CappedDistribution capped = WeightCapPolicy(cap).apply(dist);
  EXPECT_GE(shannon_entropy(capped.distribution),
            shannon_entropy(dist) - 1e-9);
  EXPECT_GE(min_faults_to_exceed(capped.distribution, kBftThreshold),
            min_faults_to_exceed(dist, kBftThreshold));
  EXPECT_LE(capped.retained_fraction, 1.0 + 1e-12);
  EXPECT_GT(capped.retained_fraction, 0.0);
}

TEST_P(PropertySweep, EquivalentUniformConfigsIsMonotone) {
  const auto a = random_weights();
  const auto b = random_weights();
  const double ha = shannon_entropy(a);
  const double hb = shannon_entropy(b);
  if (ha <= hb) {
    EXPECT_LE(equivalent_uniform_configs(ha),
              equivalent_uniform_configs(hb));
  } else {
    EXPECT_GE(equivalent_uniform_configs(ha),
              equivalent_uniform_configs(hb));
  }
}

TEST_P(PropertySweep, TwoTierUnknownShareMonotoneInAlpha) {
  // Random mixed population: raising α never raises the unknown share and
  // never lowers min_faults.
  const std::size_t n = 6 + rng_.below(20);
  const config::ComponentCatalog catalog = config::standard_catalog();
  config::ConfigurationSampler sampler(catalog, config::SamplerOptions{});
  const auto configs = sampler.distinct_configurations(n);
  std::vector<ReplicaRecord> population;
  for (std::size_t i = 0; i < n; ++i) {
    ReplicaRecord rec;
    rec.configuration = configs[i];
    rec.power = rng_.uniform(0.5, 2.0);
    rec.attested = rng_.chance(0.6);
    population.push_back(rec);
  }
  // Ensure at least one of each tier so both branches exist.
  population[0].attested = true;
  population[1].attested = false;

  double prev_unknown = 1.1;
  std::size_t prev_faults = 0;
  for (const double alpha : {1.0, 2.0, 4.0, 8.0}) {
    const TwoTierOutcome out = TwoTierPolicy(alpha).apply(population);
    EXPECT_LE(out.unknown_share, prev_unknown + 1e-9);
    EXPECT_GE(out.bft.min_faults + 1, prev_faults);  // non-decreasing ±1
    prev_unknown = out.unknown_share;
    prev_faults = out.bft.min_faults;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropertySweep,
                         ::testing::Range<std::uint64_t>(1, 33));

}  // namespace
}  // namespace findep::diversity
